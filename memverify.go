// Package memverify is a library-scale reproduction of "Caches and Hash
// Trees for Efficient Memory Integrity Verification" (Gassend, Suh,
// Clarke, van Dijk, Devadas — HPCA 2003): a processor simulator whose
// unified L2 cache integrates hash-tree machinery to verify untrusted
// external memory, together with the naive, cached (c), multi-block (m)
// and incremental-MAC (i) schemes the paper evaluates, the nine
// SPEC-CPU2000-like workloads it measures, and a harness that regenerates
// every table and figure of its evaluation section.
//
// Quick start:
//
//	cfg := memverify.DefaultConfig()        // Table 1 parameters
//	cfg.Scheme = memverify.SchemeCached     // the paper's best scheme
//	cfg.Benchmark, _ = memverify.BenchmarkByName("swim")
//	m, err := memverify.Run(cfg)
//	fmt.Println(m) // IPC, miss rates, bus traffic, violations
//
// The deeper layers are exposed for direct use: internal/htree is a
// standalone Merkle-tree library over flat memory, internal/integrity
// holds the verification engines, and internal/figures regenerates the
// paper's evaluation.
package memverify

import (
	"memverify/internal/core"
	"memverify/internal/figures"
	"memverify/internal/trace"
)

// Scheme selects a verification engine; see the constants below.
type Scheme = core.Scheme

// The paper's five schemes.
const (
	// SchemeBase is a standard processor without verification.
	SchemeBase = core.SchemeBase
	// SchemeNaive verifies with an uncached hash tree.
	SchemeNaive = core.SchemeNaive
	// SchemeCached is the paper's contribution: tree nodes cached in L2.
	SchemeCached = core.SchemeCached
	// SchemeMulti uses multi-block chunks.
	SchemeMulti = core.SchemeMulti
	// SchemeIncr uses incremental MACs with 1-bit timestamps.
	SchemeIncr = core.SchemeIncr
)

// Config describes one simulation; DefaultConfig returns Table 1.
type Config = core.Config

// Metrics is a simulation's results.
type Metrics = core.Metrics

// Machine is an assembled simulated computer for fine-grained control.
type Machine = core.Machine

// Profile parameterizes a synthetic workload.
type Profile = trace.Profile

// FigureParams drives regeneration of the paper's tables and figures.
type FigureParams = figures.Params

// DefaultConfig returns the paper's architectural parameters (Table 1).
func DefaultConfig() Config { return core.DefaultConfig() }

// Run simulates cfg and returns its metrics.
func Run(cfg Config) (Metrics, error) { return core.Run(cfg) }

// NewMachine assembles a machine without running it.
func NewMachine(cfg Config) (*Machine, error) { return core.NewMachine(cfg) }

// Benchmarks returns the nine SPEC CPU2000 workload profiles of §6.3.
func Benchmarks() []Profile { return trace.Benchmarks }

// BenchmarkByName returns the named workload profile.
func BenchmarkByName(name string) (Profile, bool) { return trace.ByName(name) }

// DefaultFigureParams returns a per-point budget that regenerates the
// full figure suite in minutes.
func DefaultFigureParams() FigureParams { return figures.DefaultParams() }
