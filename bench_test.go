package memverify

// One benchmark per table and figure of the paper's evaluation section:
// each runs the same code cmd/figures uses, at a reduced per-point budget
// so `go test -bench=.` completes in minutes. IPC-style results are
// attached as custom benchmark metrics; run cmd/figures for the full
// tables.

import (
	"flag"
	"io"
	"testing"

	"memverify/internal/figures"
	"memverify/internal/prefetch"
	"memverify/internal/stats"
	"memverify/internal/telemetry"
	"memverify/internal/trace"
)

// benchWorkers selects the figure benchmarks' sweep parallelism; the
// default mirrors cmd/figures (all cores). `go test -bench Fig -workers 1`
// measures the serial reference.
var benchWorkers = flag.Int("workers", 0, "concurrent simulations in figure benchmarks (0 = all cores)")

// benchParams is the reduced per-point budget used by the benchmarks.
func benchParams() figures.Params {
	return figures.Params{
		Instructions: 30_000,
		Warmup:       20_000,
		Seed:         1,
		Benchmarks:   trace.Benchmarks,
		Workers:      *benchWorkers,
		Progress:     io.Discard,
	}
}

// run executes one simulation and reports its IPC as a metric.
func reportIPC(b *testing.B, name string, ipc float64) {
	b.ReportMetric(ipc, name+"-IPC")
}

// BenchmarkTable1Params measures machine construction under the paper's
// architectural parameters (Table 1).
func BenchmarkTable1Params(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := NewMachine(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3 regenerates Figure 3 (IPC of base/c/naive) for each of the
// paper's six L2 configurations.
func BenchmarkFig3(b *testing.B) {
	for _, cc := range figures.Fig3Configs {
		cc := cc
		name := sizeName(cc.L2Size) + "-" + blockName(cc.L2Block)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := benchParams()
				t := p.Fig3(cc)
				_ = t.String()
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return itoa(n>>20) + "MB"
	default:
		return itoa(n>>10) + "KB"
	}
}

func blockName(n int) string { return itoa(n) + "B" }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkFig4 regenerates Figure 4 (program-data miss rates, base vs c).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchParams()
		_ = p.Fig4().String()
	}
}

// BenchmarkFig5 regenerates Figure 5 (extra accesses per miss and
// normalized bandwidth).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchParams()
		_ = p.Fig5().String()
	}
}

// BenchmarkFig6 regenerates Figure 6 (IPC vs hash throughput).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchParams()
		_ = p.Fig6().String()
	}
}

// BenchmarkFig7 regenerates Figure 7 (IPC vs hash buffer size).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchParams()
		_ = p.Fig7().String()
	}
}

// BenchmarkFig8 regenerates Figure 8 (c-64B / c-128B / m-64B / i-64B).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchParams()
		_ = p.Fig8().String()
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// instructions per second) for each scheme on one workload — the number
// that decides how large a figure budget is affordable.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for _, s := range []Scheme{SchemeBase, SchemeCached, SchemeNaive} {
		s := s
		b.Run(string(s), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Scheme = s
			cfg.Benchmark = trace.Swim
			cfg.Instructions = 50_000
			cfg.Warmup = 0
			var lastIPC float64
			b.SetBytes(int64(cfg.Instructions)) // bytes ~ instructions
			// Allocation regression gate: the per-access hot path must not
			// allocate; what remains is one-time machine construction.
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mt, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				lastIPC = mt.IPC
			}
			reportIPC(b, string(s), lastIPC)
		})
	}
}

// BenchmarkSpeculative measures what the speculative verification
// pipeline buys on the throughput workload: the same cold Swim
// configuration as BenchmarkSimulatorThroughput, blocking vs speculative
// per scheme. The IPC metric is simulated throughput — the quantity the
// pipeline improves by hiding check latency and coalescing in-flight
// tree walks; base runs no verification and so defines the ceiling the
// speculative naive and cached runs close toward. scripts/bench_async.sh
// records the blocking/speculative IPC pairs and the naive-vs-base
// overhead ratio in BENCH_async.json.
func BenchmarkSpeculative(b *testing.B) {
	for _, s := range []Scheme{SchemeBase, SchemeCached, SchemeNaive} {
		for _, spec := range []bool{false, true} {
			s, spec := s, spec
			name := string(s) + "/blocking"
			if spec {
				name = string(s) + "/speculative"
			}
			b.Run(name, func(b *testing.B) {
				cfg := DefaultConfig()
				cfg.Scheme = s
				cfg.Benchmark = trace.Swim
				cfg.Instructions = 50_000
				cfg.Warmup = 0
				cfg.Speculative = spec
				var lastIPC float64
				b.SetBytes(int64(cfg.Instructions)) // bytes ~ instructions
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					mt, err := Run(cfg)
					if err != nil {
						b.Fatal(err)
					}
					lastIPC = mt.IPC
				}
				reportIPC(b, string(s), lastIPC)
			})
		}
	}
}

// BenchmarkFunctionalThroughput measures functional-simulation speed —
// real data movement plus verification — for each protected scheme under
// every hash-execution mode. The full/timing ratio is the tentpole
// speedup recorded in BENCH_hashmode.json; memo sits in between while
// keeping real digests.
func BenchmarkFunctionalThroughput(b *testing.B) {
	for _, s := range []Scheme{SchemeNaive, SchemeCached, SchemeMulti, SchemeIncr} {
		for _, mode := range []string{"full", "timing", "memo"} {
			s, mode := s, mode
			b.Run(string(s)+"/"+mode, func(b *testing.B) {
				cfg := DefaultConfig()
				cfg.Scheme = s
				cfg.Benchmark = trace.Art
				// Construction (tree initialization) plus a steady-state
				// stretch — the same mix every functional sweep point pays.
				cfg.Instructions = 100_000
				cfg.Warmup = 0
				cfg.Functional = true
				cfg.HashMode = mode
				cfg.HashAlg = "md5"
				cfg.ProtectedBytes = 8 << 20
				if s == SchemeMulti || s == SchemeIncr {
					cfg.ChunkBlocks = 2
				}
				var lastIPC float64
				b.SetBytes(int64(cfg.Instructions)) // bytes ~ instructions
				for i := 0; i < b.N; i++ {
					mt, err := Run(cfg)
					if err != nil {
						b.Fatal(err)
					}
					lastIPC = mt.IPC
				}
				reportIPC(b, string(s), lastIPC)
			})
		}
	}
}

// BenchmarkTelemetryOverhead pins the observability layer's throughput
// contract: "disabled" runs the same workload as SimulatorThroughput/c
// with no recorder attached (this must stay within 2% of an
// uninstrumented build — ci.sh compares it against SimulatorThroughput),
// while "enabled" attaches a full recorder so the cost of tracing is
// visible; scripts/bench_telemetry.sh records the ratio in
// BENCH_telemetry.json.
func BenchmarkTelemetryOverhead(b *testing.B) {
	base := func() Config {
		cfg := DefaultConfig()
		cfg.Scheme = SchemeCached
		cfg.Benchmark = trace.Swim
		cfg.Instructions = 50_000
		cfg.Warmup = 0
		return cfg
	}
	b.Run("disabled", func(b *testing.B) {
		cfg := base()
		b.SetBytes(int64(cfg.Instructions))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		cfg := base()
		b.SetBytes(int64(cfg.Instructions))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// A fresh small ring per run keeps iterations independent.
			cfg.Telemetry = telemetry.NewRecorder(1 << 16)
			if _, err := Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPrefetch measures what tree-ancestor prefetching and a
// dedicated verification cache buy on a tree-walk-bound configuration: a
// tiny direct-mapped L2 streaming through a working set far larger than
// the cache, so nearly every access misses and pays an ancestor walk.
// The IPC metric is simulated throughput — the quantity prefetching
// improves (prefetch fills overlap demand work in simulated time);
// wall-clock ns/op necessarily grows slightly because the simulator
// executes the extra prefetch machinery. scripts/bench_prefetch.sh
// records the off/on IPC ratios in BENCH_prefetch.json.
func BenchmarkPrefetch(b *testing.B) {
	base := func() Config {
		cfg := DefaultConfig()
		cfg.Scheme = SchemeCached
		// Strided sweeps jumping a whole record block per touch (so every
		// miss climbs fresh ancestors), spaced by hot-set compute that
		// leaves the bus idle between misses — latency-bound, which is the
		// regime ancestor prefetching targets. The high hot fraction is
		// what creates the bus slack: at lower values the walk traffic
		// saturates the FIFO bus and prefetches merely reorder the queue.
		cfg.Benchmark = trace.Profile{
			Name: "treewalk",
			Load: 0.30, Store: 0.02,
			WorkingSet: 32 << 20, HotSet: 4 << 10, HotFrac: 0.99,
			SeqFrac: 1.0, SeqStride: 4096, Streams: 1,
			DepNear: 0.6,
		}
		cfg.Instructions = 50_000
		cfg.Warmup = 0
		cfg.ProtectedBytes = 64 << 20
		cfg.L2Size = 16 << 10
		cfg.L2Ways = 2
		return cfg
	}
	on := prefetch.DefaultConfig()
	on.Enabled = true
	for _, v := range []struct {
		name string
		pf   prefetch.Config
		vc   int
	}{
		{"off/shared", prefetch.Config{}, 0},
		{"on/shared", on, 0},
		{"off/dedicated", prefetch.Config{}, 64},
		{"on/dedicated", on, 64},
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			cfg := base()
			cfg.Prefetch = v.pf
			cfg.VerifyCacheLines = v.vc
			cfg.VerifyCacheAssoc = 4
			var lastIPC float64
			b.SetBytes(int64(cfg.Instructions)) // bytes ~ instructions
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mt, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				lastIPC = mt.IPC
			}
			reportIPC(b, "stream", lastIPC)
		})
	}
}

// BenchmarkGeoMeanOverheads reports the geometric-mean c/base IPC ratio
// over all nine benchmarks at the default 1 MB configuration — the
// paper's headline "less than X%" number, as a benchmark metric.
func BenchmarkGeoMeanOverheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var ratios []float64
		for _, bench := range trace.Benchmarks {
			var ipc [2]float64
			for j, s := range []Scheme{SchemeBase, SchemeCached} {
				cfg := DefaultConfig()
				cfg.Scheme = s
				cfg.Benchmark = bench
				cfg.Instructions = 30_000
				cfg.Warmup = 20_000
				mt, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				ipc[j] = mt.IPC
			}
			ratios = append(ratios, ipc[1]/ipc[0])
		}
		b.ReportMetric(stats.GeoMean(ratios), "c/base-geomean")
	}
}
