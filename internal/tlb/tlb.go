// Package tlb models the instruction and data translation lookaside
// buffers of Table 1 (4-way, 128 entries). The simulator verifies
// physical memory with an identity mapping (§5.6's simplified
// organization), so the TLB contributes timing only: a miss charges the
// page-walk penalty and installs the translation.
package tlb

// Config describes a TLB's geometry and miss cost.
type Config struct {
	Entries     int    // total translations held
	Ways        int    // associativity
	PageSize    uint64 // bytes per page; power of two
	MissPenalty uint64 // cycles for the hardware walk on a miss
}

// DefaultConfig returns Table 1's 4-way, 128-entry TLB over 8 KB pages
// (SimpleScalar's default page size) with a 30-cycle walk.
func DefaultConfig() Config {
	return Config{Entries: 128, Ways: 4, PageSize: 8 << 10, MissPenalty: 30}
}

// Stats counts TLB events.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type entry struct {
	page  uint64
	valid bool
	lru   uint64
}

// TLB is a set-associative translation buffer with true LRU.
type TLB struct {
	cfg       Config
	sets      [][]entry
	nsets     uint64
	pageShift uint
	clock     uint64
	Stat      Stats
}

// New builds a TLB. It panics on inconsistent geometry (a configuration
// programming error).
func New(cfg Config) *TLB {
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic("tlb: entries must be a positive multiple of ways")
	}
	if cfg.PageSize == 0 || cfg.PageSize&(cfg.PageSize-1) != 0 {
		panic("tlb: page size must be a positive power of two")
	}
	nsets := cfg.Entries / cfg.Ways
	if nsets&(nsets-1) != 0 {
		panic("tlb: set count must be a power of two")
	}
	t := &TLB{cfg: cfg, nsets: uint64(nsets)}
	t.sets = make([][]entry, nsets)
	for i := range t.sets {
		t.sets[i] = make([]entry, cfg.Ways)
	}
	for ps := cfg.PageSize; ps > 1; ps >>= 1 {
		t.pageShift++
	}
	return t
}

// Config returns the TLB's geometry.
func (t *TLB) Config() Config { return t.cfg }

// Lookup translates the page containing addr at cycle now and returns the
// cycle the translation is available: now on a hit, now+MissPenalty on a
// miss (the walk installs the translation).
func (t *TLB) Lookup(now uint64, addr uint64) uint64 {
	t.Stat.Accesses++
	page := addr >> t.pageShift
	set := t.sets[page&(t.nsets-1)]
	victim := 0
	for i := range set {
		if set[i].valid && set[i].page == page {
			t.clock++
			set[i].lru = t.clock
			return now
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	t.Stat.Misses++
	t.clock++
	set[victim] = entry{page: page, valid: true, lru: t.clock}
	return now + t.cfg.MissPenalty
}

// ResetStats zeroes the counters (contents are untouched).
func (t *TLB) ResetStats() { t.Stat = Stats{} }
