package tlb

import "testing"

func TestHitAndMiss(t *testing.T) {
	tl := New(Config{Entries: 8, Ways: 2, PageSize: 4096, MissPenalty: 30})
	if done := tl.Lookup(100, 0x1234); done != 130 {
		t.Errorf("cold lookup done at %d, want 130", done)
	}
	if done := tl.Lookup(200, 0x1FFF); done != 200 {
		t.Errorf("same-page lookup done at %d, want 200 (hit)", done)
	}
	if done := tl.Lookup(300, 0x2000); done != 330 {
		t.Errorf("next-page lookup done at %d, want 330 (miss)", done)
	}
	if tl.Stat.Accesses != 3 || tl.Stat.Misses != 2 {
		t.Errorf("stats %+v", tl.Stat)
	}
	if got := tl.Stat.MissRate(); got != 2.0/3.0 {
		t.Errorf("miss rate %f", got)
	}
}

func TestLRUWithinSet(t *testing.T) {
	// One set, two ways, 4K pages: pages 0, nsets, 2*nsets... collide.
	tl := New(Config{Entries: 2, Ways: 2, PageSize: 4096, MissPenalty: 10})
	tl.Lookup(0, 0*4096) // page 0
	tl.Lookup(0, 1*4096) // page 1
	tl.Lookup(0, 0*4096) // touch page 0; page 1 becomes LRU
	tl.Lookup(0, 2*4096) // evicts page 1
	if done := tl.Lookup(0, 0*4096); done != 0 {
		t.Error("page 0 should still hit")
	}
	if done := tl.Lookup(0, 1*4096); done == 0 {
		t.Error("page 1 should have been evicted")
	}
}

func TestCapacity(t *testing.T) {
	cfg := Config{Entries: 128, Ways: 4, PageSize: 8192, MissPenalty: 30}
	tl := New(cfg)
	// Touch exactly Entries distinct pages, then re-touch: all hits.
	for i := 0; i < cfg.Entries; i++ {
		tl.Lookup(0, uint64(i)*cfg.PageSize)
	}
	tl.ResetStats()
	for i := 0; i < cfg.Entries; i++ {
		tl.Lookup(0, uint64(i)*cfg.PageSize)
	}
	if tl.Stat.Misses != 0 {
		t.Errorf("%d misses re-touching a resident set", tl.Stat.Misses)
	}
}

func TestMissRateEmpty(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty miss rate should be 0")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	bad := []Config{
		{Entries: 0, Ways: 1, PageSize: 4096},
		{Entries: 7, Ways: 2, PageSize: 4096},
		{Entries: 8, Ways: 2, PageSize: 1000},
		{Entries: 24, Ways: 4, PageSize: 4096}, // 6 sets: not a power of two
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Entries != 128 || cfg.Ways != 4 {
		t.Errorf("Table 1 specifies 4-way 128-entry TLBs, got %+v", cfg)
	}
}
