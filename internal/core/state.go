package core

import (
	"fmt"

	"memverify/internal/integrity"
)

// This file is the machine side of the persistence layer (internal/persist):
// a functional machine's complete authenticated state is its external-memory
// image — data chunks plus the interior chunks holding every stored
// hash/MAC record, including the scheme-i records whose stamp bits live in
// the record bytes — together with the secure on-chip root register.
// Everything else (caches, memo tables, the pending-check window) is
// reconstructible or must be empty at a commit point anyway.

// SaveState drains the machine to a commit point and returns a snapshot of
// its protected state: the full external-memory image of the hash-tree
// region ([0, Layout.Size())) and a copy of the secure root register. It
// is an implicit barrier — Flush writes back every dirty line and resolves
// every outstanding speculative check — so on return external memory is
// authoritative: every clean cached line matches it and the stored records
// cover exactly the returned image.
//
// SaveState fails on a non-functional machine (there are no bytes to
// save), on the base scheme (no root to seal), under the timing-only hash
// unit (its records are vacuous stand-ins), and on a halted machine
// (tampered state must not be checkpointed as if it were committed).
func (m *Machine) SaveState() (img []byte, root []byte, err error) {
	if err := m.persistable(); err != nil {
		return nil, nil, err
	}
	m.Flush()
	if m.halted {
		return nil, nil, fmt.Errorf("%w (%v)", ErrHalted, m.haltCause)
	}
	img = make([]byte, m.Layout.Size())
	m.backing.Read(0, img)
	return img, append([]byte(nil), m.Sys.Root...), nil
}

// Root returns a copy of the secure root register: the root hash, or the
// root chunk's MAC record in the i scheme. Call Flush (or SaveState)
// first if the root must cover all program writes issued so far.
func (m *Machine) Root() []byte {
	return append([]byte(nil), m.Sys.Root...)
}

// StateSize returns the size in bytes of the protected-state image
// SaveState and RestoreState exchange.
func (m *Machine) StateSize() uint64 { return m.Layout.Size() }

// RestoreState installs a previously saved protected-state image and root
// register, replacing whatever state the machine holds. The image bytes
// are written straight into external memory, every protected line is
// dropped from the caches without write-back (a stale dirty line must not
// resurface over the restored bytes), the memo table forgets any digests
// of the displaced image, and the root register is loaded from root — the
// trusted anchor the restored tree is subsequently verified against.
//
// RestoreState does not verify anything itself: reads after it go through
// the ordinary verification walk, so a restored image that disagrees with
// root (tampering, or a rolled-back snapshot) is detected on consumption.
// internal/persist forces that detection eagerly by re-reading the whole
// region after restore.
func (m *Machine) RestoreState(img []byte, root []byte) error {
	if err := m.persistable(); err != nil {
		return err
	}
	if uint64(len(img)) != m.Layout.Size() {
		return fmt.Errorf("core: state image is %d bytes, protected region needs %d",
			len(img), m.Layout.Size())
	}
	if len(root) != m.Layout.HashSize {
		return fmt.Errorf("core: root is %d bytes, layout stores %d-byte records",
			len(root), m.Layout.HashSize)
	}
	m.backing.Write(0, img)
	for ba := uint64(0); ba < m.Layout.Size(); ba += uint64(m.Cfg.L2Block) {
		m.L2.Invalidate(ba)
		if m.VC != nil {
			m.VC.Invalidate(ba)
		}
	}
	m.Sys.Exec.InvalidateMemo()
	m.Sys.Root = append(m.Sys.Root[:0], root...)
	// A restore is a reboot: the halt latch clears and detection starts
	// over against the restored state. Counters are left alone — callers
	// diff them around the post-restore verification pass.
	m.halted = false
	m.haltCause = nil
	return nil
}

// persistable checks the configuration constraints shared by SaveState
// and RestoreState.
func (m *Machine) persistable() error {
	if !m.Cfg.Functional {
		return fmt.Errorf("core: state persistence requires a functional machine")
	}
	if m.Cfg.Scheme == SchemeBase {
		return fmt.Errorf("core: the base scheme has no authenticated state to persist")
	}
	if m.Sys.Exec.Mode() == integrity.HashTiming {
		return fmt.Errorf("core: timing-only hash execution stores vacuous records; persistence requires hash mode full or memo")
	}
	return nil
}
