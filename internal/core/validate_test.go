package core

import (
	"strings"
	"testing"
)

// TestValidateRejectsBadConfigs pins the contract that every
// misconfiguration reachable from Config — including geometry the engine
// and substrate constructors would panic on — comes back from NewMachine
// as a descriptive error, never a panic.
func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string // substring of the expected error
	}{
		{"unknown scheme", func(c *Config) { c.Scheme = "z" }, "unknown scheme"},
		{"zero chunk blocks", func(c *Config) { c.ChunkBlocks = 0 }, "ChunkBlocks"},
		{"scheme c multi-block", func(c *Config) { c.ChunkBlocks = 2 }, "scheme c"},
		{"scheme m single block", func(c *Config) { c.Scheme = SchemeMulti }, "ChunkBlocks >= 2"},
		{"scheme i wrong MAC size", func(c *Config) {
			c.Scheme = SchemeIncr
			c.ChunkBlocks = 2
			c.HashSize = 8
		}, "MAC records"},
		{"scheme i chunk too wide", func(c *Config) {
			c.Scheme = SchemeIncr
			c.ChunkBlocks = 16
		}, "at most"},
		{"L1 block not power of two", func(c *Config) { c.L1Block = 48 }, "L1 block"},
		{"L1 zero ways", func(c *Config) { c.L1Ways = 0 }, "L1 ways"},
		{"L2 size not multiple", func(c *Config) { c.L2Size = 1000 }, "L2 size"},
		{"L2 set count not power of two", func(c *Config) { c.L2Size = 3 * (c.L2Ways * c.L2Block) }, "set count"},
		{"zero hash size", func(c *Config) { c.HashSize = 0 }, "HashSize"},
		{"chunk not multiple of hash", func(c *Config) { c.HashSize = 24 }, "not a multiple of HashSize"},
		{"degenerate arity", func(c *Config) { c.HashSize = 64 }, "arity"},
		{"zero hash buffers", func(c *Config) { c.HashBuffers = 0 }, "HashBuffers"},
		{"zero hash throughput", func(c *Config) { c.HashBytesPerCycle = 0 }, "HashBytesPerCycle"},
		{"unknown hash algorithm", func(c *Config) { c.HashAlg = "crc32" }, "crc32"},
		{"zero bus beat", func(c *Config) { c.BusBeatBytes = 0 }, "bus beat"},
		{"TLB entries not multiple of ways", func(c *Config) { c.TLB.Entries = 3; c.TLB.Ways = 2 }, "TLB entries"},
		{"TLB page size not power of two", func(c *Config) { c.TLB.PageSize = 3000 }, "page size"},
		{"zero fetch width", func(c *Config) { c.CPU.FetchWidth = 0 }, "CPU widths"},
		{"zero instructions", func(c *Config) { c.Instructions = 0 }, "instruction budget"},
		{"nothing protected", func(c *Config) { c.ProtectedBytes = 0 }, "nothing to protect"},
		{"unknown violation policy", func(c *Config) { c.ViolationPolicy = "panic" }, "panic"},
		{"unknown hash mode", func(c *Config) { c.HashMode = "approximate" }, "approximate"},
		{"functional region too large", func(c *Config) {
			c.Functional = true
			c.ProtectedBytes = 1 << 30
		}, "256 MiB"},
		{"benchmark exceeds protection", func(c *Config) {
			c.ProtectedBytes = 1 << 20
			c.Benchmark.WorkingSet = 2 << 20
		}, "footprint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("NewMachine panicked instead of returning an error: %v", r)
				}
			}()
			m, err := NewMachine(cfg)
			if err == nil {
				t.Fatalf("NewMachine accepted the config (machine %v)", m != nil)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateAcceptsDefaults pins that every scheme's canonical
// configuration still passes validation.
func TestValidateAcceptsDefaults(t *testing.T) {
	for _, scheme := range []Scheme{SchemeBase, SchemeNaive, SchemeCached, SchemeMulti, SchemeIncr} {
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		if scheme == SchemeMulti || scheme == SchemeIncr {
			cfg.ChunkBlocks = 4
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("scheme %s: %v", scheme, err)
		}
	}
}
