package core

import (
	"bytes"
	"math/rand"
	"testing"

	"memverify/internal/hashalg"
	"memverify/internal/integrity"
)

// vcInvariant checks, for every chunk, that the chunk's current stored
// record (the cached slot copy when its block is resident, else the slot
// bytes in memory) equals the hash of the chunk's memory image, and that
// no block is resident in both caches. Hash-record schemes only (no MAC
// stamp bits).
func vcInvariant(t *testing.T, m *Machine, op int) {
	t.Helper()
	s := m.Sys
	l := s.Layout
	img := make([]byte, l.ChunkSize)
	slot := make([]byte, l.HashSize)
	for c := uint64(0); c < l.TotalChunks; c++ {
		s.Mem.Read(l.ChunkAddr(c), img)
		want := hashalg.Truncate(s.Alg.Sum(img), l.HashSize)
		var got []byte
		if addr, ok := l.HashAddr(c); ok {
			owner := s.L2
			if s.VC != nil && l.IsInterior(l.ChunkOf(addr)) {
				owner = s.VC
			}
			ba := s.L2.BlockAddr(addr)
			if ln := owner.Peek(ba); ln != nil {
				got = ln.Data[addr-ba : addr-ba+uint64(l.HashSize)]
			} else {
				s.Mem.Read(addr, slot)
				got = slot
			}
			if other := s.VC; other != nil {
				if owner == s.VC {
					other = s.L2
				}
				if other.Peek(ba) != nil && owner.Peek(ba) != nil {
					t.Fatalf("op %d: chunk %d slot block %#x resident in both caches", op, c, ba)
				}
			}
		} else {
			got = s.Root
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("op %d: chunk %d: stored record diverged from hash(memory image)", op, c)
		}
	}
}

// TestDedicatedVerifyCacheConsistency drives a multi-block machine with a
// tiny dedicated verification cache through random traffic and checks the
// store invariant — every stored record covers exactly the chunk's memory
// image — after every few operations. The 8-set cache makes same-chunk
// victim evictions inside fillChunk routine; this caught a stale clean
// re-install of a just-written-back sibling that a shared L2's set count
// had made astronomically rare (the bug surfaced as false violations on
// untampered traffic under schemes m and i).
func TestDedicatedVerifyCacheConsistency(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		for _, scheme := range []Scheme{SchemeMulti, SchemeIncr} {
			cfg := DefaultConfig()
			cfg.Scheme = scheme
			cfg.ChunkBlocks = 4
			cfg.Functional = true
			cfg.ProtectedBytes = 32 << 20
			cfg.L2Size = 16 << 10
			cfg.L2Ways = 2
			cfg.VerifyCacheLines = 32
			cfg.VerifyCacheAssoc = 4
			m, err := NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m.ObserveViolations(func(v *integrity.ViolationError) {
				t.Fatalf("seed %d %s: false violation on clean traffic: %v", seed, scheme, v)
			})
			rng := rand.New(rand.NewSource(seed))
			mirror := map[uint64]byte{}
			buf := make([]byte, 8)
			for op := 0; op < 4000; op++ {
				addr := uint64(rng.Intn(1<<20)) &^ 7
				if rng.Intn(2) == 0 {
					for i := range buf {
						buf[i] = byte(rng.Int())
						mirror[addr+uint64(i)] = buf[i]
					}
					if err := m.StoreBytes(addr, buf); err != nil {
						t.Fatalf("seed %d %s op %d store: %v", seed, scheme, op, err)
					}
				} else {
					if err := m.LoadBytes(addr, buf); err != nil {
						t.Fatalf("seed %d %s op %d load: %v", seed, scheme, op, err)
					}
					for i := range buf {
						if want, ok := mirror[addr+uint64(i)]; ok && buf[i] != want {
							t.Fatalf("seed %d %s op %d: delivered data diverged at %#x", seed, scheme, op, addr+uint64(i))
						}
					}
				}
				// The MAC stamp bits make the i-scheme record a function
				// of write-back history, so the hash oracle only applies
				// to m; i still gets the mirror and false-violation checks.
				if scheme == SchemeMulti && op%100 == 0 {
					vcInvariant(t, m, op)
				}
			}
		}
	}
}
