package core

import (
	"memverify/internal/cache"
	"memverify/internal/telemetry"
)

// FillRegistry snapshots the machine's per-component counters, residency
// gauges, latency histograms and bus occupancy windows into reg — the
// -metrics output of a single simulation. mt is the Metrics the run
// returned (the registry reuses its derived rates instead of recomputing
// them). Counter names are stable: they are part of the
// memverify-metrics-v1 schema.
func (m *Machine) FillRegistry(reg *telemetry.Registry, mt *Metrics) {
	reg.Add("cpu.instructions", mt.Result.Instructions)
	reg.Add("cpu.cycles", mt.Result.Cycles)
	reg.Add("cpu.loads", mt.Result.Loads)
	reg.Add("cpu.stores", mt.Result.Stores)

	st := &mt.L2Stats
	reg.Add("l2.data_accesses", st.Accesses[cache.Data]+st.Writes[cache.Data])
	reg.Add("l2.data_misses", mt.L2DataMisses)
	reg.Add("l2.hash_accesses", mt.L2HashAccesses)
	reg.Add("l2.hash_misses", st.Misses[cache.Hash]+st.WriteMiss[cache.Hash])
	reg.Add("l2.evictions", st.Evictions[cache.Data]+st.Evictions[cache.Hash])
	reg.Add("l2.writebacks", st.WriteBacks[cache.Data]+st.WriteBacks[cache.Hash])

	is := &mt.IntegrityStats
	reg.Add("integrity.demand_block_reads", is.DemandBlockReads)
	reg.Add("integrity.extra_block_reads", is.ExtraBlockReads)
	reg.Add("integrity.extra_writeback_reads", is.ExtraWriteBackReads)
	reg.Add("integrity.checks", is.Checks)
	reg.Add("integrity.violations", is.Violations)
	reg.Add("integrity.evictions", is.Evictions)
	reg.Add("integrity.mac_updates", is.MACUpdates)

	reg.Add("bus.data_bytes", mt.BusDataBytes)
	reg.Add("bus.hash_bytes", mt.BusHashBytes)
	reg.Add("bus.busy_cycles", m.Bus.BusyCycles())
	reg.Add("hash.ops", mt.HashOps)
	reg.Add("hash.bytes", mt.HashBytesHashed)
	reg.Add("hash.buffer_waits", m.Sys.Unit.ReadBuf.Waits()+m.Sys.Unit.WriteBuf.Waits())
	reg.Add("dram.reads", mt.DRAMReads)
	reg.Add("dram.writes", mt.DRAMWrites)

	reg.SetGauge("cpu.ipc", mt.IPC)
	reg.SetGauge("l2.data_miss_rate", mt.DataMissRate)
	reg.SetGauge("l2.hash_miss_rate", mt.L2HashMissRate)
	reg.SetGauge("bus.utilization", mt.BusUtilization)
	reg.SetGauge("integrity.extra_per_miss", mt.ExtraPerMiss)

	// Tree-node cache residency: what fraction of the L2 the hash tree
	// occupies right now (§6.4.1's cache-pollution axis).
	// Residency is a level, not an accumulation — exported as gauges so a
	// live scrape of a store (which re-fills a fresh registry every sample)
	// never shows a "counter" moving backwards as lines are evicted.
	totalLines := m.Cfg.L2Size / m.Cfg.L2Block
	reg.SetGauge("l2.resident_lines_data", float64(m.L2.ResidentLinesClass(cache.Data)))
	reg.SetGauge("l2.resident_lines_hash", float64(m.L2.ResidentLinesClass(cache.Hash)))
	if totalLines > 0 {
		reg.SetGauge("l2.hash_residency",
			float64(m.L2.ResidentLinesClass(cache.Hash))/float64(totalLines))
	}

	// Dedicated verification cache: counters plus hit-rate and residency
	// gauges (all absent-as-zero when sharing the L2).
	if m.VC != nil {
		vs := &mt.VCStats
		reg.Add("vc.accesses", mt.VCAccesses)
		reg.Add("vc.misses", vs.Misses[cache.Hash]+vs.WriteMiss[cache.Hash])
		reg.Add("vc.evictions", vs.Evictions[cache.Hash])
		reg.Add("vc.writebacks", vs.WriteBacks[cache.Hash])
		reg.SetGauge("vc.resident_lines", float64(m.VC.ResidentLinesClass(cache.Hash)))
		reg.SetGauge("vc.hit_rate", mt.VCHitRate)
		if m.Cfg.VerifyCacheLines > 0 {
			reg.SetGauge("vc.occupancy",
				float64(m.VC.ResidentLinesClass(cache.Hash))/float64(m.Cfg.VerifyCacheLines))
		}
	}

	// Tree-ancestor prefetcher decisions (all zero when disabled).
	ps := &mt.PrefetchStats
	reg.Add("prefetch.observed", ps.Observed)
	reg.Add("prefetch.predicted", ps.Predicted)
	reg.Add("prefetch.issued", ps.Issued)
	reg.Add("prefetch.useful", ps.Useful)
	reg.Add("prefetch.late", ps.Late)
	reg.Add("prefetch.dropped_resident", ps.DroppedResident)
	reg.Add("prefetch.dropped_budget", ps.DroppedBudget)
	reg.Add("prefetch.dropped_bus", ps.DroppedBus)
	if ps.Issued > 0 {
		reg.SetGauge("prefetch.accuracy", float64(ps.Useful)/float64(ps.Issued))
	}

	// Speculative verification pipeline (all zero in blocking mode).
	if m.Cfg.Speculative {
		sp := &mt.Spec
		reg.Add("spec.checks", sp.Checks)
		reg.Add("spec.writebacks", sp.Writebacks)
		reg.Add("spec.window_stalls", sp.WindowStalls)
		reg.Add("spec.window_stall_cycles", sp.WindowStallCycles)
		reg.Add("spec.pending_peak", sp.PendingPeak)
		reg.Add("spec.overlap_cycles", sp.OverlapCycles)
		reg.Add("spec.deferred_violations", sp.DeferredViolations)
		reg.Add("spec.resolved_violations", sp.ResolvedViolations)
		reg.Add("spec.coalesced", sp.Coalesced)
		reg.Add("spec.saved_block_reads", sp.SavedBlockReads)
		reg.Add("spec.barriers", sp.Barriers)
		reg.Add("spec.barrier_wait_cycles", sp.BarrierWaitCycles)
		if n := sp.Checks + sp.Writebacks; n > 0 {
			reg.SetGauge("spec.avg_overlap_cycles", float64(sp.OverlapCycles)/float64(n))
		}
	}

	if h := m.Sys.PathExtras; h != nil {
		reg.MergeHistogram("integrity.path_extras", h)
	}
	if w := m.Bus.WindowCycles(); w > 0 {
		reg.Add("bus.window_cycles", w)
		reg.AppendSeries("bus.busy_cycles_per_window", m.Bus.Windows()...)
	}
	m.Cfg.Telemetry.FillRegistry(reg)
}

// AccumulateMetrics folds a completed run's Metrics into reg — the
// aggregation path for figure sweeps, which only hold Metrics (the
// machines are gone by the time the registry is written). Probe
// histograms and bus windows come from the sweep's shared Recorder via
// Recorder.FillRegistry.
func AccumulateMetrics(reg *telemetry.Registry, mt *Metrics) {
	reg.Add("cpu.instructions", mt.Result.Instructions)
	reg.Add("cpu.cycles", mt.Result.Cycles)
	st := &mt.L2Stats
	reg.Add("l2.data_accesses", st.Accesses[cache.Data]+st.Writes[cache.Data])
	reg.Add("l2.data_misses", mt.L2DataMisses)
	reg.Add("l2.hash_accesses", mt.L2HashAccesses)
	is := &mt.IntegrityStats
	reg.Add("integrity.demand_block_reads", is.DemandBlockReads)
	reg.Add("integrity.extra_block_reads", is.ExtraBlockReads)
	reg.Add("integrity.checks", is.Checks)
	reg.Add("integrity.violations", is.Violations)
	reg.Add("bus.data_bytes", mt.BusDataBytes)
	reg.Add("bus.hash_bytes", mt.BusHashBytes)
	reg.Add("hash.ops", mt.HashOps)
	reg.Add("dram.reads", mt.DRAMReads)
	reg.Add("dram.writes", mt.DRAMWrites)
	reg.Add("vc.accesses", mt.VCAccesses)
	reg.Add("prefetch.issued", mt.PrefetchStats.Issued)
	reg.Add("prefetch.useful", mt.PrefetchStats.Useful)
	reg.Add("spec.checks", mt.Spec.Checks)
	reg.Add("spec.overlap_cycles", mt.Spec.OverlapCycles)
	reg.Add("sweep.points", 1)
}
