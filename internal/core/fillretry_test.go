package core

import (
	"bytes"
	"testing"

	"memverify/internal/trace"
)

// TestFillSurvivesPathConflict regression-tests the bounded refetch in the
// direct-access paths: in a small direct-mapped L2, a chunk's tree path
// can land in the same set as the data block it authenticates, so the
// verification walk evicts the freshly fetched block. The hierarchy must
// refetch (the walk left the path resident, so the second fill sticks)
// instead of panicking.
func TestFillSurvivesPathConflict(t *testing.T) {
	for _, scheme := range []Scheme{SchemeNaive, SchemeCached, SchemeMulti, SchemeIncr} {
		t.Run(string(scheme), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Scheme = scheme
			cfg.Benchmark = trace.Uniform("conflict", 8<<10)
			cfg.Benchmark.CodeSet = 4 << 10
			cfg.ProtectedBytes = 512 << 10
			cfg.L2Size = 8 << 10
			cfg.L2Ways = 1
			cfg.Functional = true
			if scheme == SchemeMulti || scheme == SchemeIncr {
				cfg.ChunkBlocks = 2
			}
			m, err := NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := bytes.Repeat([]byte{0xC3}, 16<<10)
			if err := m.StoreBytes(0, want); err != nil {
				t.Fatal(err)
			}
			m.EvictProtected()
			got := make([]byte, len(want))
			if err := m.LoadBytes(0, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Error("contents corrupted by refetch")
			}
			if v := m.Sys.Stat.Violations; v != 0 {
				t.Errorf("refetch raised %d violations", v)
			}
		})
	}
}
