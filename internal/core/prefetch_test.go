package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"memverify/internal/cache"
	"memverify/internal/prefetch"
)

// enabledPrefetch is the benchmark sizing with the engine switched on.
func enabledPrefetch() prefetch.Config {
	cfg := prefetch.DefaultConfig()
	cfg.Enabled = true
	return cfg
}

// prefetchVariant describes one machine configuration of the equivalence
// matrix: the ancestor prefetcher and/or the dedicated verification cache
// switched on relative to the plain baseline.
type prefetchVariant struct {
	name     string
	prefetch bool
	vc       bool
}

var prefetchVariants = []prefetchVariant{
	{"prefetch", true, false},
	{"vc", false, true},
	{"prefetch+vc", true, true},
}

// driveWorkload runs a seeded store/load mix — sequential sweeps (the
// prefetcher's food) interleaved with random accesses — against m and
// returns every loaded byte concatenated, then the final root after a
// flush.
//
// After the flush it also performs a verified cold reload of the first
// pages (EvictProtected forces every block back through the checking
// path against the just-flushed root), whose bytes land in loaded too —
// so loaded equality across machines implies identical final memory
// contents AND a root each machine's own tree accepts.
func driveWorkload(t *testing.T, m *Machine, seed int64) (loaded, root []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	span := m.ProgSpan()
	buf := make([]byte, 256)
	for i := 0; i < 60; i++ {
		switch rng.Intn(3) {
		case 0: // sequential sweep of stores then loads
			base := uint64(rng.Intn(int(span - 4096)))
			rng.Read(buf[:128])
			for k := 0; k < 8; k++ {
				if err := m.StoreBytes(base+uint64(k*512), buf[:128]); err != nil {
					t.Fatal(err)
				}
			}
			for k := 0; k < 8; k++ {
				if err := m.LoadBytes(base+uint64(k*512), buf[:128]); err != nil {
					t.Fatal(err)
				}
				loaded = append(loaded, buf[:128]...)
			}
		case 1: // random store
			off := uint64(rng.Intn(int(span - 256)))
			n := 1 + rng.Intn(255)
			rng.Read(buf[:n])
			if err := m.StoreBytes(off, buf[:n]); err != nil {
				t.Fatal(err)
			}
		default: // random load
			off := uint64(rng.Intn(int(span - 256)))
			n := 1 + rng.Intn(255)
			if err := m.LoadBytes(off, buf[:n]); err != nil {
				t.Fatal(err)
			}
			loaded = append(loaded, buf[:n]...)
		}
	}
	m.Flush()
	root = append([]byte(nil), m.Sys.Root...)
	m.EvictProtected()
	cold := make([]byte, 16<<10)
	if err := m.LoadBytes(0, cold); err != nil {
		t.Fatal(err)
	}
	loaded = append(loaded, cold...)
	m.Flush()
	return loaded, root
}

// TestPrefetchEquivalence is the semantic-invisibility gate of the
// prefetcher and the dedicated verification cache: over every tree scheme
// and hash execution mode, a machine with prefetching and/or a dedicated
// cache enabled must deliver byte-identical data (including a verified
// cold reload against the final root) and converge to the same root as
// the plain baseline (metrics may differ; bytes may not), with zero
// violations anywhere.
//
// Scheme i is the one exception on raw root bytes: its XorMAC record
// packs per-block write-back stamp bits into the encrypted tag, so the
// root is a function of write-back *history*, not just memory contents —
// a different cache geometry legitimately lands on a different (equally
// valid) root. There the verified cold reload inside driveWorkload is
// the equivalence check: it proves each machine's root accepts the same
// final memory image.
func TestPrefetchEquivalence(t *testing.T) {
	for _, scheme := range []Scheme{SchemeNaive, SchemeCached, SchemeMulti, SchemeIncr} {
		for _, mode := range []string{"full", "timing", "memo"} {
			t.Run(fmt.Sprintf("%s-%s", scheme, mode), func(t *testing.T) {
				base, err := NewMachine(cleanConfig(scheme, mode))
				if err != nil {
					t.Fatal(err)
				}
				wantData, wantRoot := driveWorkload(t, base, 42)
				if base.Sys.Stat.Violations != 0 {
					t.Fatalf("baseline flagged %d violations", base.Sys.Stat.Violations)
				}
				rootIsContentPure := scheme != SchemeIncr || mode == "timing"
				for _, v := range prefetchVariants {
					t.Run(v.name, func(t *testing.T) {
						cfg := cleanConfig(scheme, mode)
						if v.prefetch {
							cfg.Prefetch = enabledPrefetch()
						}
						if v.vc {
							cfg.VerifyCacheLines = 64
							cfg.VerifyCacheAssoc = 4
						}
						m, err := NewMachine(cfg)
						if err != nil {
							t.Fatal(err)
						}
						gotData, gotRoot := driveWorkload(t, m, 42)
						if !bytes.Equal(gotData, wantData) {
							t.Fatalf("delivered data diverged from the prefetch-off baseline")
						}
						if rootIsContentPure && !bytes.Equal(gotRoot, wantRoot) {
							t.Fatalf("final root diverged: got %x, want %x", gotRoot, wantRoot)
						}
						if m.Sys.Stat.Violations != 0 {
							t.Fatalf("variant flagged %d violations (first: %v)",
								m.Sys.Stat.Violations, m.Sys.First)
						}
					})
				}
			})
		}
	}
}

// TestPrefetcherIssues pins that the sequential sweeps in the workload
// actually exercise the engine: on the cached scheme with a small L2, the
// prefetcher must observe the demand stream and issue prefetches.
func TestPrefetcherIssues(t *testing.T) {
	cfg := cleanConfig(SchemeCached, "full")
	cfg.L2Size = 8 << 10
	cfg.Prefetch = enabledPrefetch()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, m, 7)
	st := m.Sys.Prefetch.Stats()
	if st.Observed == 0 {
		t.Fatal("prefetcher observed no demand accesses")
	}
	if st.Issued == 0 {
		t.Fatalf("prefetcher never issued (stats %+v)", st)
	}
	mt := m.Snapshot()
	if mt.PrefetchStats != st {
		t.Fatalf("metrics carry stale prefetch stats: %+v vs %+v", mt.PrefetchStats, st)
	}
}

// TestDedicatedVerifyCacheRouting pins the routing contract: with a
// dedicated verification cache configured, interior (hash) chunks live in
// the VC — the shared L2 sees no hash-class traffic at all — and the
// metrics report the VC's activity.
func TestDedicatedVerifyCacheRouting(t *testing.T) {
	cfg := cleanConfig(SchemeCached, "full")
	cfg.VerifyCacheLines = 64
	cfg.VerifyCacheAssoc = 4
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, m, 11)
	if m.VC == nil {
		t.Fatal("machine built no dedicated verification cache")
	}
	mt := m.Snapshot()
	if mt.VCAccesses == 0 {
		t.Fatal("dedicated verification cache saw no accesses")
	}
	if got := mt.L2Stats.Accesses[cache.Hash] + mt.L2Stats.Writes[cache.Hash]; got != 0 {
		t.Fatalf("shared L2 saw %d hash-class accesses despite the dedicated cache", got)
	}
	if mt.VCHitRate <= 0 || mt.VCHitRate > 1 {
		t.Fatalf("implausible VC hit rate %v", mt.VCHitRate)
	}
}

// TestBaseSchemeIgnoresPrefetchConfig pins the honest-no-op contract: the
// base scheme has no tree, so a prefetch/VC request must build neither.
func TestBaseSchemeIgnoresPrefetchConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = SchemeBase
	cfg.Prefetch = enabledPrefetch()
	cfg.VerifyCacheLines = 64
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.VC != nil || m.Sys.Prefetch != nil {
		t.Fatal("base scheme built a verification cache or prefetcher")
	}
}
