package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"memverify/internal/trace"
)

// cleanConfig is a small functional machine for falsification-free runs.
func cleanConfig(scheme Scheme, mode string) Config {
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	cfg.Functional = true
	cfg.HashAlg = "fnv128"
	cfg.HashMode = mode
	cfg.ProtectedBytes = 256 << 10
	cfg.L2Size = 32 << 10
	cfg.Benchmark = trace.Uniform("cleanrun", 64<<10)
	cfg.Benchmark.CodeSet = 8 << 10
	cfg.Instructions = 60_000
	cfg.Warmup = 10_000
	if scheme == SchemeMulti || scheme == SchemeIncr {
		cfg.ChunkBlocks = 2
	}
	return cfg
}

// TestCleanRunNoFalsePositives is the false-positive regression gate: a
// full simulated run with no adversary must flag zero violations under
// every scheme and hash execution mode.
func TestCleanRunNoFalsePositives(t *testing.T) {
	for _, scheme := range []Scheme{SchemeNaive, SchemeCached, SchemeMulti, SchemeIncr} {
		for _, mode := range []string{"full", "memo"} {
			t.Run(fmt.Sprintf("%s-%s", scheme, mode), func(t *testing.T) {
				m, err := NewMachine(cleanConfig(scheme, mode))
				if err != nil {
					t.Fatal(err)
				}
				mt := m.Run()
				if mt.Violations != 0 {
					t.Fatalf("clean run flagged %d violations (first: %v)", mt.Violations, m.Sys.First)
				}
				if m.Sys.First != nil {
					t.Fatalf("clean run recorded a first violation: %v", m.Sys.First)
				}
				if m.Halted() {
					t.Fatalf("clean run halted the machine")
				}
			})
		}
	}
}

// TestHaltPolicy pins the §5.8 security-exception semantics: once a
// violation is detected under ViolationPolicy "halt", every subsequent
// load and store returns ErrHalted.
func TestHaltPolicy(t *testing.T) {
	cfg := cleanConfig(SchemeCached, "full")
	cfg.ViolationPolicy = "halt"
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StoreBytes(0, bytes.Repeat([]byte{0x42}, 64)); err != nil {
		t.Fatal(err)
	}
	m.EvictProtected()
	m.Adversary().Corrupt(m.ProgAddr(3), 0x10)
	if err := m.LoadBytes(0, make([]byte, 64)); err == nil {
		t.Fatal("tampered load not flagged")
	}
	if !m.Halted() {
		t.Fatal("machine not halted after detection")
	}
	if m.HaltCause() == nil {
		t.Fatal("halted machine has no recorded cause")
	}
	if err := m.LoadBytes(512, make([]byte, 8)); !errors.Is(err, ErrHalted) {
		t.Fatalf("load after halt returned %v, want ErrHalted", err)
	}
	if err := m.StoreBytes(512, []byte{1}); !errors.Is(err, ErrHalted) {
		t.Fatalf("store after halt returned %v, want ErrHalted", err)
	}
}

// TestRecordPolicyContinues pins the default containment behaviour: under
// "record" the violation is counted and execution continues.
func TestRecordPolicyContinues(t *testing.T) {
	m, err := NewMachine(cleanConfig(SchemeCached, "full"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StoreBytes(0, bytes.Repeat([]byte{0x42}, 64)); err != nil {
		t.Fatal(err)
	}
	m.EvictProtected()
	m.Adversary().Corrupt(m.ProgAddr(3), 0x10)
	if err := m.LoadBytes(0, make([]byte, 64)); err == nil {
		t.Fatal("tampered load not flagged")
	}
	if m.Halted() {
		t.Fatal("record policy halted the machine")
	}
	if err := m.LoadBytes(4096, make([]byte, 8)); err != nil {
		t.Fatalf("clean load after recorded violation failed: %v", err)
	}
	if got := m.Sys.Stat.Violations; got == 0 {
		t.Fatal("violation not recorded")
	}
}

// TestRetryPolicyDistinguishes pins the retry policy's classification at
// machine level: a transient glitch is suppressed (a transient retry, no
// violation), persistent tampering is flagged (a persistent retry).
func TestRetryPolicyDistinguishes(t *testing.T) {
	cfg := cleanConfig(SchemeCached, "full")
	cfg.ViolationPolicy = "retry"
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StoreBytes(0, bytes.Repeat([]byte{0x42}, 64)); err != nil {
		t.Fatal(err)
	}
	m.EvictProtected()

	// Transient: the next read of the chunk sees corrupted bytes, memory
	// stays clean; the retry probe verifies and suppresses the violation.
	adv := m.Adversary()
	base := m.Layout.ChunkAddr(m.Layout.ChunkOf(m.ProgAddr(0)))
	adv.Glitch(base, uint64(m.Layout.ChunkSize), 0x40, 1)
	if err := m.LoadBytes(0, make([]byte, 64)); err != nil {
		t.Fatalf("glitched load flagged a violation despite retry: %v", err)
	}
	if got := m.Sys.Stat.RetriesTransient; got != 1 {
		t.Fatalf("RetriesTransient = %d, want 1", got)
	}
	if got := m.Sys.Stat.Violations; got != 0 {
		t.Fatalf("transient glitch recorded %d violations", got)
	}

	// Persistent: stored bytes corrupted; the retry probe fails again.
	m.EvictProtected()
	adv.Corrupt(m.ProgAddr(7), 0x01)
	if err := m.LoadBytes(0, make([]byte, 64)); err == nil {
		t.Fatal("persistent tamper not flagged under retry")
	}
	if got := m.Sys.Stat.RetriesPersistent; got == 0 {
		t.Fatal("persistent tamper did not advance RetriesPersistent")
	}
	if got := m.Sys.Stat.Violations; got == 0 {
		t.Fatal("persistent tamper not recorded as a violation")
	}
}
