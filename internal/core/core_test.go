package core

import (
	"bytes"
	"strings"
	"testing"

	"memverify/internal/trace"
)

// smallCfg returns a quick functional configuration for tests.
func smallCfg(scheme Scheme) Config {
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	cfg.Benchmark = trace.Uniform("test", 256<<10)
	cfg.Benchmark.CodeSet = 16 << 10
	cfg.Instructions = 20_000
	cfg.Warmup = 5_000
	cfg.ProtectedBytes = 1 << 20
	cfg.L2Size = 64 << 10
	cfg.Functional = true
	cfg.HashAlg = "md5"
	if scheme == SchemeMulti || scheme == SchemeIncr {
		cfg.ChunkBlocks = 2
	}
	return cfg
}

func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Scheme = "bogus" },
		func(c *Config) { c.Scheme = SchemeCached; c.ChunkBlocks = 2 },
		func(c *Config) { c.Scheme = SchemeMulti; c.ChunkBlocks = 1 },
		func(c *Config) { c.Scheme = SchemeIncr; c.ChunkBlocks = 1 },
		func(c *Config) { c.Scheme = SchemeNaive; c.ChunkBlocks = 2 },
		func(c *Config) { c.Instructions = 0 },
		func(c *Config) { c.ProtectedBytes = 0 },
		func(c *Config) { c.Functional = true; c.ProtectedBytes = 1 << 30 },
		func(c *Config) { c.Benchmark.WorkingSet = c.ProtectedBytes * 2 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestRunAllSchemes(t *testing.T) {
	for _, s := range []Scheme{SchemeBase, SchemeNaive, SchemeCached, SchemeMulti, SchemeIncr} {
		t.Run(string(s), func(t *testing.T) {
			mt, err := Run(smallCfg(s))
			if err != nil {
				t.Fatal(err)
			}
			if mt.Violations != 0 {
				t.Errorf("honest run raised %d violations", mt.Violations)
			}
			if mt.IPC <= 0 || mt.IPC > 4 {
				t.Errorf("implausible IPC %f", mt.IPC)
			}
			if mt.Result.Instructions != 20_000 {
				t.Errorf("instructions %d", mt.Result.Instructions)
			}
			if s != SchemeBase && mt.HashOps == 0 {
				t.Error("protected scheme did no hashing")
			}
			if s == SchemeBase && mt.BusHashBytes != 0 {
				t.Error("base scheme produced hash traffic")
			}
		})
	}
}

func TestSchemeOrdering(t *testing.T) {
	// The paper's central result at this machine's scale: base >= c >> naive.
	ipc := map[Scheme]float64{}
	for _, s := range []Scheme{SchemeBase, SchemeCached, SchemeNaive} {
		cfg := smallCfg(s)
		cfg.Functional = false
		cfg.ProtectedBytes = 64 << 20
		cfg.Instructions = 100_000
		cfg.Warmup = 50_000
		mt, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ipc[s] = mt.IPC
	}
	if !(ipc[SchemeBase] >= ipc[SchemeCached]) {
		t.Errorf("base %f < c %f", ipc[SchemeBase], ipc[SchemeCached])
	}
	if !(ipc[SchemeCached] > ipc[SchemeNaive]*1.5) {
		t.Errorf("c %f not well above naive %f", ipc[SchemeCached], ipc[SchemeNaive])
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(smallCfg(SchemeCached))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallCfg(SchemeCached))
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC != b.IPC || a.BusBytes != b.BusBytes || a.L2DataMisses != b.L2DataMisses {
		t.Errorf("identical configs diverged: %+v vs %+v", a, b)
	}
}

func TestStoreLoadBytesRoundTrip(t *testing.T) {
	m, err := NewMachine(smallCfg(SchemeCached))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("certified result: 42")
	if err := m.StoreBytes(4096, payload); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	got := make([]byte, len(payload))
	if err := m.LoadBytes(4096, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("read back %q", got)
	}
}

func TestAdversaryTamperDetectedThroughMachine(t *testing.T) {
	for _, s := range []Scheme{SchemeCached, SchemeMulti, SchemeIncr, SchemeNaive} {
		t.Run(string(s), func(t *testing.T) {
			m, err := NewMachine(smallCfg(s))
			if err != nil {
				t.Fatal(err)
			}
			payload := bytes.Repeat([]byte{0xAB}, 64)
			if err := m.StoreBytes(0, payload); err != nil {
				t.Fatal(err)
			}
			m.Flush()
			// Drop all cached copies, corrupt memory, read back.
			for ba := uint64(0); ba < m.Layout.Size(); ba += uint64(m.Cfg.L2Block) {
				m.L2.Invalidate(ba)
			}
			m.Adversary().Corrupt(m.ProgAddr(3), 0x40)
			got := make([]byte, 64)
			if err := m.LoadBytes(0, got); err == nil {
				t.Fatal("tampering went undetected")
			}
		})
	}
}

func TestBaseDoesNotDetectTampering(t *testing.T) {
	m, err := NewMachine(smallCfg(SchemeBase))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StoreBytes(0, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	for ba := uint64(0); ba < m.Layout.Size(); ba += uint64(m.Cfg.L2Block) {
		m.L2.Invalidate(ba)
	}
	m.Adversary().Corrupt(m.ProgAddr(0), 0xFF)
	got := make([]byte, 4)
	if err := m.LoadBytes(0, got); err != nil {
		t.Fatalf("base scheme raised: %v", err)
	}
	if got[0] != 1^0xFF {
		t.Errorf("expected silently corrupted data, got %#x", got[0])
	}
}

func TestWarmupResetsCounters(t *testing.T) {
	cfg := smallCfg(SchemeCached)
	cfg.Warmup = 10_000
	cfg.Instructions = 10_000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mt := m.Run()
	// Measured instructions must be the post-warm-up budget only.
	if mt.Result.Instructions != 10_000 {
		t.Errorf("measured %d instructions", mt.Result.Instructions)
	}
	// A warm cache means the measured miss count is well below the
	// all-inclusive count a cold run of 20k instructions would see.
	cold := smallCfg(SchemeCached)
	cold.Warmup = 0
	cold.Instructions = 20_000
	cmt, err := Run(cold)
	if err != nil {
		t.Fatal(err)
	}
	if mt.L2DataMisses >= cmt.L2DataMisses {
		t.Errorf("warmed misses %d >= cold misses %d", mt.L2DataMisses, cmt.L2DataMisses)
	}
}

func TestTable1Contents(t *testing.T) {
	cfg := DefaultConfig()
	out := cfg.Table1()
	for _, want := range []string{
		"1 GHz", "64KB, 2-way, 32B line", "Unified, 1MB, 4-way, 64B line",
		"80 cycles", "200 MHz, 8-B wide (1.6 GB/s)", "4 / 4 per cycle",
		"64", "128", "3.2 GB/s", "16", "128 bits",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsString(t *testing.T) {
	mt, err := Run(smallCfg(SchemeCached))
	if err != nil {
		t.Fatal(err)
	}
	s := mt.String()
	if !strings.Contains(s, "test/c") || !strings.Contains(s, "IPC") {
		t.Errorf("summary: %s", s)
	}
}

func TestUnprotectedBaseBeyondTree(t *testing.T) {
	m, err := NewMachine(smallCfg(SchemeCached))
	if err != nil {
		t.Fatal(err)
	}
	if m.UnprotectedBase() < m.Layout.Size() {
		t.Error("unprotected base inside the protected region")
	}
	if m.UnprotectedBase()%uint64(m.Cfg.L2Block) != 0 {
		t.Error("unprotected base not block aligned")
	}
}

func TestProgAddrMapsIntoDataRegion(t *testing.T) {
	m, err := NewMachine(smallCfg(SchemeCached))
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []uint64{0, 8, 4096, m.Cfg.Benchmark.WorkingSet - 8} {
		a := m.ProgAddr(off)
		if a < m.Layout.DataStart() || a >= m.Layout.Size() {
			t.Errorf("ProgAddr(%d) = %#x outside data region", off, a)
		}
		if !m.Layout.IsData(m.Layout.ChunkOf(a)) {
			t.Errorf("ProgAddr(%d) maps into an interior chunk", off)
		}
	}
}

func TestIPCConsistency(t *testing.T) {
	mt, err := Run(smallCfg(SchemeCached))
	if err != nil {
		t.Fatal(err)
	}
	want := float64(mt.Result.Instructions) / float64(mt.Result.Cycles)
	if mt.IPC != want {
		t.Errorf("IPC %f != instructions/cycles %f", mt.IPC, want)
	}
}

// TestCryptoBarrierThroughMachine checks §5.8 end to end: a crypto
// instruction cannot commit before the hierarchy's outstanding checks.
func TestCryptoBarrierThroughMachine(t *testing.T) {
	cfg := smallCfg(SchemeCached)
	cfg.Benchmark.CryptoEvery = 1000
	mt, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Violations != 0 {
		t.Fatalf("violations: %d", mt.Violations)
	}
	// The barrier can only slow things down relative to the same workload
	// without crypto ops.
	cfg2 := smallCfg(SchemeCached)
	mt2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if mt.IPC > mt2.IPC*1.05 {
		t.Errorf("crypto-barrier run faster than plain run: %f vs %f", mt.IPC, mt2.IPC)
	}
}
