package core_test

import (
	"fmt"

	"memverify/internal/core"
	"memverify/internal/trace"
)

// Example runs one simulation on the paper's machine and prints whether
// verification raised anything.
func Example() {
	cfg := core.DefaultConfig() // Table 1
	cfg.Scheme = core.SchemeCached
	cfg.Benchmark, _ = trace.ByName("gzip")
	cfg.Instructions = 50_000
	cfg.Warmup = 10_000

	m, err := core.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("violations:", m.Violations)
	fmt.Println("hash traffic exists:", m.BusHashBytes > 0)
	// Output:
	// violations: 0
	// hash traffic exists: true
}

// Example_functional drives a functional machine end to end: store, flush
// (the §5.8 barrier), tamper, detect.
func Example_functional() {
	cfg := core.DefaultConfig()
	cfg.Scheme = core.SchemeCached
	cfg.Benchmark = trace.Uniform("demo", 64<<10)
	cfg.Benchmark.CodeSet = 16 << 10
	cfg.ProtectedBytes = 1 << 20
	cfg.Functional = true
	cfg.HashAlg = "sha1"

	m, err := core.NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	if err := m.StoreBytes(0, []byte("secret state")); err != nil {
		panic(err)
	}
	m.Flush()

	for ba := uint64(0); ba < m.Layout.Size(); ba += uint64(m.Cfg.L2Block) {
		m.L2.Invalidate(ba)
	}
	m.Adversary().Corrupt(m.ProgAddr(2), 0x80)

	buf := make([]byte, 12)
	if err := m.LoadBytes(0, buf); err != nil {
		fmt.Println("tamper detected")
	}
	// Output:
	// tamper detected
}
