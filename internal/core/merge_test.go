package core

import (
	"bytes"
	"math"
	"testing"
)

// TestSnapshotCountsDirectAccesses pins Snapshot: a machine driven only
// through LoadBytes/StoreBytes must report its activity without a CPU run.
func TestSnapshotCountsDirectAccesses(t *testing.T) {
	m, err := NewMachine(smallCfg(SchemeCached))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StoreBytes(0, bytes.Repeat([]byte{0x21}, 4096)); err != nil {
		t.Fatal(err)
	}
	m.EvictProtected() // the reloads below must miss and verify
	if err := m.LoadBytes(0, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	mt := m.Snapshot()
	if got := mt.L2Stats.Accesses[0] + mt.L2Stats.Writes[0]; got == 0 {
		t.Error("snapshot reports no L2 data traffic")
	}
	if mt.IntegrityStats.Checks == 0 {
		t.Error("snapshot reports no verifications")
	}
	if mt.Result.Cycles != m.Now() {
		t.Errorf("snapshot cycles %d, machine clock %d", mt.Result.Cycles, m.Now())
	}
	if mt.Violations != 0 {
		t.Errorf("clean run reports %d violations", mt.Violations)
	}
}

// TestMergeMetrics checks the aggregation contract: counters sum, derived
// rates are recomputed from the summed counters (so merging a run with
// itself doubles every counter while leaving every rate unchanged).
func TestMergeMetrics(t *testing.T) {
	mt, err := Run(smallCfg(SchemeCached))
	if err != nil {
		t.Fatal(err)
	}
	double := MergeMetrics(mt, mt)
	if double.Result.Instructions != 2*mt.Result.Instructions {
		t.Errorf("instructions %d, want %d", double.Result.Instructions, 2*mt.Result.Instructions)
	}
	if double.L2DataMisses != 2*mt.L2DataMisses {
		t.Errorf("L2 data misses %d, want %d", double.L2DataMisses, 2*mt.L2DataMisses)
	}
	if double.IntegrityStats.Checks != 2*mt.IntegrityStats.Checks {
		t.Errorf("checks %d, want %d", double.IntegrityStats.Checks, 2*mt.IntegrityStats.Checks)
	}
	if double.BusBytes != 2*mt.BusBytes || double.HashOps != 2*mt.HashOps {
		t.Errorf("bus bytes %d hash ops %d, want doubles", double.BusBytes, double.HashOps)
	}
	for name, pair := range map[string][2]float64{
		"IPC":            {double.IPC, mt.IPC},
		"DataMissRate":   {double.DataMissRate, mt.DataMissRate},
		"L2HashMissRate": {double.L2HashMissRate, mt.L2HashMissRate},
		"ExtraPerMiss":   {double.ExtraPerMiss, mt.ExtraPerMiss},
		"BusUtilization": {double.BusUtilization, mt.BusUtilization},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-9 {
			t.Errorf("%s changed under self-merge: %g vs %g", name, pair[0], pair[1])
		}
	}
	if got := MergeMetrics(); got.Scheme != "" || got.BusBytes != 0 {
		t.Errorf("empty merge not zero: %+v", got)
	}
	if one := MergeMetrics(mt); one.Scheme != mt.Scheme || one.BusBytes != mt.BusBytes {
		t.Errorf("single merge lost fields")
	}
}
