package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"memverify/internal/bus"
	"memverify/internal/cache"
	"memverify/internal/cpu"
	"memverify/internal/dram"
	"memverify/internal/htree"
	"memverify/internal/integrity"
	"memverify/internal/mem"
	"memverify/internal/prefetch"
	"memverify/internal/telemetry"
	"memverify/internal/tlb"
	"memverify/internal/trace"
)

// Machine is one assembled simulated computer: core, caches, verification
// engine, bus, DRAM and (in functional mode) real memory contents.
type Machine struct {
	Cfg    Config
	Bus    *bus.Bus
	DRAM   *dram.DRAM
	L1I    *cache.Cache
	L1D    *cache.Cache
	L2     *cache.Cache
	VC     *cache.Cache // dedicated verification cache; nil = shared L2
	ITLB   *tlb.TLB
	DTLB   *tlb.TLB
	Sys    *integrity.System
	Engine integrity.Engine
	Layout *htree.Layout
	CPU    *cpu.CPU

	backing *mem.Sparse
	adv     *mem.Adversary
	tel     *telemetry.Trace // nil unless Cfg.Telemetry is attached

	policy    integrity.ViolationPolicy
	halted    bool
	haltCause *integrity.ViolationError
	observer  func(*integrity.ViolationError)

	codeBase uint64
	codeSize uint64
	dataBase uint64
	dataSize uint64
	storeSeq uint64
	now      uint64 // advancing store-stamp clock for direct accesses
}

// ErrHalted is returned by LoadBytes and StoreBytes once a machine running
// under ViolationPolicy "halt" has detected an integrity violation — the
// machine-level security exception of §5.8. Use errors.Is to test for it;
// the wrapped message carries the first violation.
var ErrHalted = errors.New("core: machine halted by integrity violation")

// NewMachine assembles a machine from cfg.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{Cfg: cfg}
	m.Bus = bus.New(cfg.BusBeatBytes, cfg.BusCyclesPerBeat)
	m.DRAM = dram.New(cfg.MemLatency, m.Bus)
	m.backing = mem.NewSparse()

	m.L1I = cache.New(cache.Config{Name: "L1I", Size: cfg.L1Size, Ways: cfg.L1Ways, BlockSize: cfg.L1Block})
	m.L1D = cache.New(cache.Config{Name: "L1D", Size: cfg.L1Size, Ways: cfg.L1Ways, BlockSize: cfg.L1Block})
	m.ITLB = tlb.New(cfg.TLB)
	m.DTLB = tlb.New(cfg.TLB)
	m.L2 = cache.New(cache.Config{
		Name: "L2", Size: cfg.L2Size, Ways: cfg.L2Ways, BlockSize: cfg.L2Block,
		DataBearing: cfg.Functional,
	})
	// The dedicated verification cache and the ancestor prefetcher only
	// make sense for the tree-caching schemes: base has no tree, and the
	// naive scheme never caches tree nodes by definition.
	treeCaching := cfg.Scheme == SchemeCached || cfg.Scheme == SchemeMulti || cfg.Scheme == SchemeIncr
	if treeCaching && cfg.VerifyCacheLines > 0 {
		m.VC = cache.New(cache.Config{
			Name: "VC", Size: cfg.VerifyCacheLines * cfg.L2Block,
			Ways: cfg.verifyCacheWays(), BlockSize: cfg.L2Block,
			DataBearing: cfg.Functional,
		})
	}

	chunkSize := cfg.L2Block * cfg.ChunkBlocks
	layout, err := htree.NewLayout(chunkSize, cfg.HashSize, cfg.ProtectedBytes)
	if err != nil {
		return nil, err
	}
	m.Layout = layout

	alg, err := hashFor(cfg.HashAlg)
	if err != nil {
		return nil, err
	}
	mode, err := integrity.ParseHashMode(cfg.HashMode)
	if err != nil {
		return nil, err
	}
	policy, err := integrity.ParseViolationPolicy(cfg.ViolationPolicy)
	if err != nil {
		return nil, err
	}
	m.policy = policy
	m.Sys = &integrity.System{
		L2:          m.L2,
		Mem:         m.backing,
		DRAM:        m.DRAM,
		Unit:        integrity.NewHashUnit(cfg.HashLatency, cfg.HashBytesPerCycle, cfg.HashBuffers, cfg.HashBuffers),
		Layout:      layout,
		Alg:         alg,
		L2Latency:   cfg.L2Latency,
		CheckReads:  true,
		Functional:  cfg.Functional,
		Exec:        integrity.NewHashExec(mode),
		Policy:      policy,
		OnViolation: m.noteViolation,
		VC:          m.VC,
		Speculative: cfg.Speculative,
	}
	if cfg.Speculative {
		m.Sys.Pending = integrity.NewPendingChecks(cfg.SpecWindow)
	}
	if treeCaching && cfg.Prefetch.Enabled {
		m.Sys.Prefetch = prefetch.New(cfg.Prefetch)
	}

	if rec := cfg.Telemetry; rec != nil {
		m.tel = rec.Trace
		m.tel.BeginProcess(fmt.Sprintf("%s/%s", cfg.Scheme, cfg.Benchmark.Name))
		m.Bus.Tel = rec.Trace
		m.DRAM.Tel = rec.Trace
		m.Sys.Unit.Tel = rec.Trace
		m.Sys.Tel = rec.Trace
		m.Sys.Probes = rec.Probes
		if p := rec.Probes; p != nil {
			m.Sys.Unit.ReadBuf.Occ = p.ReadBufOcc
			m.Sys.Unit.WriteBuf.Occ = p.WriteBufOcc
			if m.Sys.Pending != nil {
				m.Sys.Pending.Occ = p.SpecOcc
				m.Sys.Pending.Overlap = p.SpecOverlap
			}
		}
		if rec.BusWindowCycles > 0 {
			m.Bus.SetWindow(rec.BusWindowCycles)
		}
	}

	switch cfg.Scheme {
	case SchemeBase:
		m.Engine = integrity.NewBase(m.Sys)
	case SchemeNaive:
		m.Engine = integrity.NewNaive(m.Sys)
	case SchemeCached, SchemeMulti:
		m.Engine = integrity.NewCached(m.Sys)
	case SchemeIncr:
		m.Engine = integrity.NewIncr(m.Sys, []byte("memverify-machine-key"))
	}
	if cfg.Functional && cfg.Scheme != SchemeBase {
		m.Engine.(integrity.TreeInitializer).InitializeTree()
	}

	// Program layout inside the protected data region: code first, data
	// after, both block-aligned.
	m.dataBase = layout.DataStart()
	m.codeBase = m.dataBase
	m.codeSize = alignUp(cfg.Benchmark.CodeSet, uint64(cfg.L2Block))
	if m.codeSize == 0 {
		m.codeSize = uint64(cfg.L2Block)
	}
	m.dataSize = cfg.ProtectedBytes - m.codeSize
	m.CPU = cpu.New(cfg.CPU, (*hierarchy)(m))
	return m, nil
}

func alignUp(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }

// Run executes the configured benchmark — a warm-up period, a counter
// reset, then cfg.Instructions of measurement — and returns the metrics.
func (m *Machine) Run() Metrics {
	return m.RunWith(newGenerator(m.Cfg))
}

// RunWith runs the machine over an arbitrary instruction source (e.g. a
// recorded trace replay) under the configured warm-up and budget.
func (m *Machine) RunWith(gen trace.Generator) Metrics {
	if m.Cfg.Warmup > 0 {
		m.CPU.Run(gen, m.Cfg.Warmup)
		m.ResetStats()
	}
	res := m.CPU.Run(gen, m.Cfg.Instructions)
	return m.metrics(res)
}

// ResetStats zeroes every statistics counter (cache, bus, DRAM, hash unit,
// integrity) while leaving all architectural state warm.
func (m *Machine) ResetStats() {
	m.L1I.ResetStats()
	m.L1D.ResetStats()
	m.L2.ResetStats()
	if m.VC != nil {
		m.VC.ResetStats()
	}
	m.Sys.Prefetch.ResetStats()
	m.ITLB.ResetStats()
	m.DTLB.ResetStats()
	m.Bus.ResetCounters()
	m.DRAM.ResetCounters()
	m.Sys.Unit.ResetCounters()
	m.Sys.ResetStats()
}

// noteViolation is the machine's OnViolation hook: it applies the halt
// policy and relays the event to any registered observer. Detection is
// already recorded in Sys.Stat by the time it runs.
func (m *Machine) noteViolation(v *integrity.ViolationError) {
	if m.policy == integrity.PolicyHalt {
		m.halted = true
		if m.haltCause == nil {
			m.haltCause = v
		}
	}
	if m.observer != nil {
		m.observer(v)
	}
}

// ObserveViolations registers f to be called on every detected violation,
// in addition to the machine's own policy handling. Passing nil removes
// the observer.
func (m *Machine) ObserveViolations(f func(*integrity.ViolationError)) {
	m.observer = f
}

// Halted reports whether the halt policy has fired; HaltCause returns the
// violation that tripped it (nil while running).
func (m *Machine) Halted() bool { return m.halted }

// HaltCause returns the first violation that halted the machine.
func (m *Machine) HaltCause() *integrity.ViolationError { return m.haltCause }

// Now returns the machine's advancing cycle clock for direct functional
// accesses — the timestamp StoreBytes/LoadBytes/Flush operate at. Chaos
// campaigns read it to measure detection latency in cycles.
func (m *Machine) Now() uint64 { return m.now }

// ProgSpan returns the size in bytes of the program data region ProgAddr
// maps offsets into.
func (m *Machine) ProgSpan() uint64 { return m.dataSize }

// EvictProtected drains all dirty cached state and then invalidates every
// protected line, so the next access to any protected address must go to
// (attackable) external memory — the post-eviction starting point of the
// paper's attack analysis.
func (m *Machine) EvictProtected() {
	m.Flush()
	for ba := uint64(0); ba < m.Layout.Size(); ba += uint64(m.Cfg.L2Block) {
		m.L2.Invalidate(ba)
		if m.VC != nil {
			m.VC.Invalidate(ba)
		}
	}
}

// Adversary interposes (once) a physical attacker on the memory bus and
// returns it. Subsequent calls return the same adversary. Attaching one
// notifies the hash-execution layer: memo execution falls back to full
// recomputation, and timing-only execution panics — its checks are
// vacuous, so it cannot coexist with tampering.
func (m *Machine) Adversary() *mem.Adversary {
	if m.adv == nil {
		m.Sys.Exec.AdversaryAttached()
		m.adv = mem.NewAdversary(m.backing)
		m.Sys.Mem = m.adv
	}
	return m.adv
}

// ProgAddr maps a program data offset to its physical address inside the
// protected region.
func (m *Machine) ProgAddr(off uint64) uint64 {
	return m.codeBase + m.codeSize + off%m.dataSize
}

// UnprotectedBase returns the first physical address beyond the hash
// tree's reach — the region DMA transfers land in (§5.7.1).
func (m *Machine) UnprotectedBase() uint64 {
	return alignUp(m.Layout.Size(), uint64(m.Cfg.L2Block))
}

// Flush drains all dirty cached state through the engine — the
// cryptographic barrier of §5.8 and step 3 of initialization. It is an
// implicit barrier: in speculative mode every outstanding background
// check resolves (applying violation policy) before it returns. Unlike
// Barrier, it does not end the epoch or report a ViolationError.
func (m *Machine) Flush() {
	m.now = m.Engine.Flush(m.now)
	m.syncChecks()
}

// Barrier is the epoch commit point of the speculative verification
// pipeline — flush-before-commit in the §4.1 certified-execution sense:
// it blocks (in simulated time) until every outstanding background check
// and posted write-back has resolved, applies the violation policy to
// anything that was deferred, and returns the first ViolationError
// detected since the previous barrier (nil on a clean epoch). The
// returned violation's Epoch field names the epoch that contained it.
// Barrier is meaningful in blocking mode too, where it only advances the
// clock past the §5.8 background checks and reports the epoch's first
// violation.
func (m *Machine) Barrier() error {
	start := m.now
	if t := m.Sys.ChecksDone(); t > m.now {
		m.now = t
	}
	if p := m.Sys.Pending; p != nil {
		p.Stat.Barriers++
		p.Stat.BarrierWaitCycles += m.now - start
	}
	if v := m.Sys.EndEpoch(); v != nil {
		return v
	}
	return nil
}

// syncChecks makes the current operation an implicit barrier in
// speculative mode: the clock advances past every outstanding check and
// all deferred violations resolve. Blocking mode is untouched — nothing
// is ever deferred and the clock semantics stay bit-identical to the
// pre-speculative simulator.
func (m *Machine) syncChecks() {
	if !m.Cfg.Speculative {
		return
	}
	if t := m.Sys.ChecksDone(); t > m.now {
		m.now = t
	}
	m.Sys.ResolvePending(m.now)
}

// StoreBytes performs a program store of p at data offset off with real
// contents, through the normal L1/L2/engine write path (functional mode).
// Whole-block aligned spans take the §5.3 write-allocate optimization: a
// fully overwritten block is allocated without fetching or checking its
// old contents.
func (m *Machine) StoreBytes(off uint64, p []byte) error {
	if !m.Cfg.Functional {
		return fmt.Errorf("core: StoreBytes requires a functional machine")
	}
	if m.Sys.Pending != nil {
		m.Sys.ResolvePending(m.now)
	}
	if m.halted {
		return fmt.Errorf("%w (%v)", ErrHalted, m.haltCause)
	}
	h := (*hierarchy)(m)
	bs := uint64(m.Cfg.L2Block)
	for len(p) > 0 {
		a := m.ProgAddr(off)
		if a%bs == 0 && uint64(len(p)) >= bs {
			ln := m.L2.Write(a, cache.Data)
			for try := 0; ln == nil; try++ {
				if try == fillRetries {
					panic("core: full-write allocation failed")
				}
				m.now = m.Engine.AllocateFullWrite(m.now, a)
				ln = m.L2.Peek(a)
			}
			copy(ln.Data, p[:bs])
			off += bs
			p = p[bs:]
			continue
		}
		m.now = h.l2data(m.now, a, true, p[:1])
		off++
		p = p[1:]
	}
	return nil
}

// LoadBytes performs a verified program load of len(p) bytes at data
// offset off. Any integrity violation detected during the load chain is
// returned (and also recorded in the system stats).
func (m *Machine) LoadBytes(off uint64, p []byte) error {
	if !m.Cfg.Functional {
		return fmt.Errorf("core: LoadBytes requires a functional machine")
	}
	if m.Sys.Pending != nil {
		m.Sys.ResolvePending(m.now)
	}
	if m.halted {
		return fmt.Errorf("%w (%v)", ErrHalted, m.haltCause)
	}
	h := (*hierarchy)(m)
	before := m.Sys.Stat.Violations
	for i := range p {
		a := m.ProgAddr(off + uint64(i))
		m.now = h.l2data(m.now, a, false, p[i:i+1])
	}
	// In speculative mode the load returns its data before the background
	// check resolves; the violation surfaces at the next Barrier (or
	// poisons later accesses under the halt policy) instead of here.
	if !m.Cfg.Speculative && m.Sys.Stat.Violations > before {
		return m.Sys.First
	}
	return nil
}

// Port exposes the machine's memory hierarchy as a cpu.MemPort, letting
// callers drive custom cores or probes over the same caches and engine.
func (m *Machine) Port() cpu.MemPort { return (*hierarchy)(m) }

// hierarchy adapts the Machine to cpu.MemPort. It is the L1 layer: L1
// hits cost L1Latency; misses go to the L2, whose misses go through the
// verification engine.
type hierarchy Machine

// fillRetries bounds re-fetches when a verification walk evicts the very
// block it was fetched for — possible in a small, low-associativity L2
// where a chunk's tree path conflicts with the data block's set. The
// first walk leaves the path resident, so the refetch sticks immediately;
// exhausting the bound means the geometry cannot hold one data line plus
// its path, which is a configuration bug worth crashing on.
const fillRetries = 4

func (h *hierarchy) mapPC(pc uint64) uint64 { return h.codeBase + pc%h.codeSize }

func (h *hierarchy) mapData(addr uint64) uint64 {
	return h.codeBase + h.codeSize + addr%h.dataSize
}

// l2read performs an L2 read access for a block, returning completion.
func (h *hierarchy) l2read(now uint64, addr uint64) uint64 {
	if h.L2.Read(addr, cache.Data) != nil {
		h.tel.Emit(telemetry.TrackL2, telemetry.KindL2Read, now, now+h.Cfg.L2Latency, addr, 0)
		return now + h.Cfg.L2Latency
	}
	done := h.Engine.ReadBlock(now+h.Cfg.L2Latency, addr)
	h.tel.Emit(telemetry.TrackL2, telemetry.KindL2Read, now, done, addr, 1)
	return done
}

// l2write performs an L2 write access (a dirty L1 line arriving, or a
// direct functional store), write-allocating on a miss. In functional
// mode the written bytes are stamped so hashes really change.
func (h *hierarchy) l2write(now uint64, addr uint64) uint64 {
	ln := h.L2.Write(addr, cache.Data)
	done := now + h.Cfg.L2Latency
	miss := uint64(0)
	if ln == nil {
		miss = 1
		for try := 0; ln == nil; try++ {
			if try == fillRetries {
				panic("core: write-allocate failed to cache the block")
			}
			if t := h.Engine.ReadBlock(now+h.Cfg.L2Latency, addr); t > done {
				done = t
			}
			ln = h.L2.Write(addr, cache.Data)
		}
	}
	h.tel.Emit(telemetry.TrackL2, telemetry.KindL2Write, now, done, addr, miss)
	if ln.Data != nil {
		// Stamp the stored-to word with a fresh value so write-backs
		// propagate real changes through the hash machinery.
		off := (addr - ln.Addr) &^ 7
		if off+8 <= uint64(len(ln.Data)) {
			binary.LittleEndian.PutUint64(ln.Data[off:], h.storeSeq|1<<63)
			h.storeSeq++
		}
	}
	return done
}

// l2data is the byte-accurate variant used by Store/LoadBytes.
func (h *hierarchy) l2data(now uint64, addr uint64, write bool, p []byte) uint64 {
	if write {
		ln := h.L2.Write(addr, cache.Data)
		done := now + h.Cfg.L2Latency
		miss := uint64(0)
		if ln == nil {
			miss = 1
			for try := 0; ln == nil; try++ {
				if try == fillRetries {
					panic("core: write-allocate failed to cache the block")
				}
				if t := h.Engine.ReadBlock(now+h.Cfg.L2Latency, addr); t > done {
					done = t
				}
				ln = h.L2.Write(addr, cache.Data)
			}
		}
		copy(ln.Data[addr-ln.Addr:], p)
		h.tel.Emit(telemetry.TrackL2, telemetry.KindL2Write, now, done, addr, miss)
		return done
	}
	done := now + h.Cfg.L2Latency
	miss := uint64(0)
	ln := h.L2.Read(addr, cache.Data)
	if ln == nil {
		miss = 1
		for try := 0; ln == nil; try++ {
			if try == fillRetries {
				panic("core: fill failed to cache the block")
			}
			if t := h.Engine.ReadBlock(now+h.Cfg.L2Latency, addr); t > done {
				done = t
			}
			ln = h.L2.Peek(addr)
		}
	}
	copy(p, ln.Data[addr-ln.Addr:uint64(len(ln.Data))])
	h.tel.Emit(telemetry.TrackL2, telemetry.KindL2Read, now, done, addr, miss)
	return done
}

// Barrier implements cpu.BarrierPort: a cryptographic instruction may not
// complete before every outstanding integrity check has (§5.8). In
// speculative mode it also resolves deferred violations — the checks it
// just waited for have, by then, completed.
func (h *hierarchy) Barrier(now uint64) uint64 {
	if t := h.Sys.ChecksDone(); t > now {
		now = t
	}
	if h.Sys.Pending != nil {
		h.Sys.ResolvePending(now)
	}
	return now
}

// Fetch implements cpu.MemPort.
func (h *hierarchy) Fetch(now uint64, pc uint64) uint64 {
	a := h.mapPC(pc)
	now = h.ITLB.Lookup(now, a)
	if h.L1I.Read(a, cache.Data) != nil {
		return now + h.Cfg.L1Latency
	}
	t := h.l2read(now+h.Cfg.L1Latency, a)
	h.L1I.Fill(a, cache.Data, nil)
	return t
}

// Load implements cpu.MemPort.
func (h *hierarchy) Load(now uint64, addr uint64) uint64 {
	a := h.mapData(addr)
	now = h.DTLB.Lookup(now, a)
	if h.L1D.Read(a, cache.Data) != nil {
		return now + h.Cfg.L1Latency
	}
	t := h.l2read(now+h.Cfg.L1Latency, a)
	if ev := h.L1D.Fill(a, cache.Data, nil); ev.Valid && ev.Dirty {
		h.l2write(t, ev.Addr)
	}
	return t
}

// Store implements cpu.MemPort: the committed store writes into the L1D,
// allocating through the L2 on a miss.
func (h *hierarchy) Store(now uint64, addr uint64) uint64 {
	a := h.mapData(addr)
	now = h.DTLB.Lookup(now, a)
	if h.L1D.Write(a, cache.Data) != nil {
		return now + h.Cfg.L1Latency
	}
	t := h.l2read(now+h.Cfg.L1Latency, a)
	if ev := h.L1D.Fill(a, cache.Data, nil); ev.Valid && ev.Dirty {
		t = h.l2write(t, ev.Addr)
	}
	if h.L1D.Write(a, cache.Data) == nil {
		panic("core: L1D write-allocate failed")
	}
	return t
}
