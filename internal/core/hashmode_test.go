package core

import (
	"bytes"
	"reflect"
	"testing"
)

var allSchemes = []Scheme{SchemeBase, SchemeNaive, SchemeCached, SchemeMulti, SchemeIncr}

// TestHashModeMetricsEquivalence is the cross-mode equivalence suite: the
// hash-execution mode may change how digests are computed, never what the
// simulator measures. Every scheme must produce identical Metrics in
// full, timing and memo execution.
func TestHashModeMetricsEquivalence(t *testing.T) {
	for _, s := range allSchemes {
		s := s
		t.Run(string(s), func(t *testing.T) {
			run := func(mode string) Metrics {
				cfg := smallCfg(s)
				cfg.HashMode = mode
				mt, err := Run(cfg)
				if err != nil {
					t.Fatalf("mode %q: %v", mode, err)
				}
				return mt
			}
			full := run("full")
			for _, mode := range []string{"timing", "memo"} {
				if got := run(mode); !reflect.DeepEqual(got, full) {
					t.Errorf("mode %q metrics diverge from full:\nfull %+v\n%s %+v",
						mode, full, mode, got)
				}
			}
		})
	}
}

func TestHashModeValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HashMode = "bogus"
	if err := cfg.Validate(); err == nil {
		t.Error("unknown hash mode accepted")
	}
	// Timing-only execution never materializes the tree, so the functional
	// 256 MiB cap does not apply to it.
	cfg = DefaultConfig()
	cfg.Functional = true
	cfg.ProtectedBytes = 1 << 30
	cfg.Benchmark.WorkingSet = 16 << 20
	if err := cfg.Validate(); err == nil {
		t.Error("full-mode functional run over 256 MiB accepted")
	}
	cfg.HashMode = "timing"
	if err := cfg.Validate(); err != nil {
		t.Errorf("timing-mode functional run over 256 MiB rejected: %v", err)
	}
}

// TestTimingModeRejectsAdversary pins the machine-level guard: a
// timing-only machine cannot hand out an adversary, because its checks
// are vacuous.
func TestTimingModeRejectsAdversary(t *testing.T) {
	cfg := smallCfg(SchemeCached)
	cfg.HashMode = "timing"
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Adversary() did not panic on a timing-only machine")
		}
	}()
	m.Adversary()
}

// TestMemoModeDetectsTampering attaches an adversary to a memo-mode
// machine — which silently degrades the memo to full recomputation — and
// verifies a corrupted load is still caught.
func TestMemoModeDetectsTampering(t *testing.T) {
	cfg := smallCfg(SchemeCached)
	cfg.HashMode = "memo"
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StoreBytes(0, bytes.Repeat([]byte{0x5a}, 64)); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	for ba := uint64(0); ba < m.Layout.Size(); ba += uint64(m.Cfg.L2Block) {
		m.L2.Invalidate(ba)
	}
	m.Adversary().Corrupt(m.ProgAddr(5), 0x80)
	if err := m.LoadBytes(0, make([]byte, 64)); err == nil {
		t.Fatal("memo-mode machine missed the corrupted load")
	}
}
