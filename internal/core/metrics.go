package core

import (
	"fmt"

	"memverify/internal/bus"
	"memverify/internal/cache"
	"memverify/internal/cpu"
	"memverify/internal/hashalg"
	"memverify/internal/integrity"
	"memverify/internal/prefetch"
	"memverify/internal/trace"
)

// Metrics is everything one simulation reports; the figure harness
// combines Metrics from several runs into the paper's tables.
type Metrics struct {
	Scheme    Scheme
	Benchmark string

	Result cpu.Result
	IPC    float64

	// L2 behaviour.
	L2Stats         cache.Stats
	DataMissRate    float64 // program-data miss rate (Figure 4)
	L2DataMisses    uint64
	L2HashAccesses  uint64
	L2HashMissRate  float64
	IntegrityStats  integrity.Stats
	ExtraPerMiss    float64 // read-path additional memory blocks per L2 miss (Figure 5a)
	ExtraPerMissAll float64 // as above but including write-back-path reads
	BusBytes        uint64  // total bus traffic (Figure 5b numerator)
	BusDataBytes    uint64
	BusHashBytes    uint64
	BusUtilization  float64
	HashOps         uint64
	HashBytesHashed uint64
	Violations      uint64
	DRAMReads       uint64
	DRAMWrites      uint64
	ITLBMissRate    float64
	DTLBMissRate    float64

	// Dedicated verification cache (zero when sharing the L2).
	VCStats    cache.Stats
	VCAccesses uint64
	VCHitRate  float64

	// Tree-ancestor prefetcher (zero when disabled).
	PrefetchStats prefetch.Stats

	// Speculative verification pipeline (zero in blocking mode). A timing
	// artifact, not a functional counter: the cross-mode equivalence suite
	// zeroes it along with Result/IPC/BusUtilization before comparing.
	Spec integrity.SpecStats
}

func hashFor(name string) (hashalg.Algorithm, error) { return hashalg.New(name) }

func newGenerator(cfg Config) trace.Generator {
	return trace.NewSynthetic(cfg.Benchmark, cfg.Seed)
}

// metrics assembles a Metrics from the machine's counters after a run.
func (m *Machine) metrics(res cpu.Result) Metrics {
	st := m.L2.Stat
	dataMisses := st.Misses[cache.Data] + st.WriteMiss[cache.Data]
	out := Metrics{
		Scheme:          m.Cfg.Scheme,
		Benchmark:       m.Cfg.Benchmark.Name,
		Result:          res,
		IPC:             res.IPC(),
		L2Stats:         st,
		DataMissRate:    st.MissRate(cache.Data),
		L2DataMisses:    dataMisses,
		L2HashAccesses:  st.Accesses[cache.Hash] + st.Writes[cache.Hash],
		L2HashMissRate:  st.MissRate(cache.Hash),
		IntegrityStats:  m.Sys.Stat,
		BusBytes:        m.Bus.TotalBytes(),
		BusDataBytes:    m.Bus.Bytes(bus.Data),
		BusHashBytes:    m.Bus.Bytes(bus.Hash),
		BusUtilization:  m.Bus.Utilization(res.Cycles),
		HashOps:         m.Sys.Unit.Ops(),
		HashBytesHashed: m.Sys.Unit.BytesHashed(),
		Violations:      m.Sys.Stat.Violations,
		DRAMReads:       m.DRAM.Reads(),
		DRAMWrites:      m.DRAM.Writes(),
		ITLBMissRate:    m.ITLB.Stat.MissRate(),
		DTLBMissRate:    m.DTLB.Stat.MissRate(),
	}
	if dataMisses > 0 {
		readPath := m.Sys.Stat.ExtraBlockReads - m.Sys.Stat.ExtraWriteBackReads
		out.ExtraPerMiss = float64(readPath) / float64(dataMisses)
		out.ExtraPerMissAll = float64(m.Sys.Stat.ExtraBlockReads) / float64(dataMisses)
	}
	if m.VC != nil {
		out.VCStats = m.VC.Stat
		out.VCAccesses, out.VCHitRate = vcRates(m.VC.Stat)
	}
	out.PrefetchStats = m.Sys.Prefetch.Stats()
	if p := m.Sys.Pending; p != nil {
		out.Spec = p.Stat
	}
	return out
}

// vcRates derives the dedicated verification cache's access count and hit
// rate from its stats (tree nodes are Hash-class traffic).
func vcRates(st cache.Stats) (accesses uint64, hitRate float64) {
	accesses = st.Accesses[cache.Hash] + st.Writes[cache.Hash]
	if accesses > 0 {
		misses := st.Misses[cache.Hash] + st.WriteMiss[cache.Hash]
		hitRate = 1 - float64(misses)/float64(accesses)
	}
	return accesses, hitRate
}

// Snapshot assembles Metrics from the machine's current counters without a
// CPU run — the reporting path for machines driven directly through
// LoadBytes/StoreBytes (the shard store's workers). The cycle denominator
// for rate metrics is the machine's direct-access clock; instruction-side
// fields (Result, IPC, TLB rates) stay zero because no core executed.
// Snapshot is an implicit barrier in speculative mode: the clock advances
// past every outstanding check before the cycle count is read, so
// reported cycles always include the verification tail.
func (m *Machine) Snapshot() Metrics {
	m.syncChecks()
	return m.metrics(cpu.Result{Cycles: m.now})
}

// MergeMetrics folds per-machine Metrics into one aggregate: counters sum,
// and every derived rate is recomputed from the summed counters. The
// machines are assumed independent (per-shard buses, DRAMs and clocks), so
// aggregate cycles are total machine-cycles of work — not wall time — and
// BusUtilization is the cycle-weighted mean of the per-machine buses.
// Scheme and Benchmark are taken from the first element.
func MergeMetrics(ms ...Metrics) Metrics {
	if len(ms) == 0 {
		return Metrics{}
	}
	out := Metrics{Scheme: ms[0].Scheme, Benchmark: ms[0].Benchmark}
	var busBusy, itlbWeighted, dtlbWeighted float64
	for i := range ms {
		mt := &ms[i]
		out.Result.Instructions += mt.Result.Instructions
		out.Result.Cycles += mt.Result.Cycles
		out.Result.Loads += mt.Result.Loads
		out.Result.Stores += mt.Result.Stores
		out.Result.Branches += mt.Result.Branches
		out.Result.Mispredicts += mt.Result.Mispredicts
		for c := 0; c < len(mt.L2Stats.Accesses); c++ {
			out.L2Stats.Accesses[c] += mt.L2Stats.Accesses[c]
			out.L2Stats.Misses[c] += mt.L2Stats.Misses[c]
			out.L2Stats.Writes[c] += mt.L2Stats.Writes[c]
			out.L2Stats.WriteMiss[c] += mt.L2Stats.WriteMiss[c]
			out.L2Stats.Evictions[c] += mt.L2Stats.Evictions[c]
			out.L2Stats.WriteBacks[c] += mt.L2Stats.WriteBacks[c]
		}
		out.L2DataMisses += mt.L2DataMisses
		out.L2HashAccesses += mt.L2HashAccesses
		is, agg := &mt.IntegrityStats, &out.IntegrityStats
		agg.DemandBlockReads += is.DemandBlockReads
		agg.ExtraBlockReads += is.ExtraBlockReads
		agg.ExtraWriteBackReads += is.ExtraWriteBackReads
		agg.DataBlockWrites += is.DataBlockWrites
		agg.HashBlockWrites += is.HashBlockWrites
		agg.Checks += is.Checks
		agg.Violations += is.Violations
		agg.MACUpdates += is.MACUpdates
		agg.Evictions += is.Evictions
		agg.Retries += is.Retries
		agg.RetriesTransient += is.RetriesTransient
		agg.RetriesPersistent += is.RetriesPersistent
		for c := 0; c < len(mt.VCStats.Accesses); c++ {
			out.VCStats.Accesses[c] += mt.VCStats.Accesses[c]
			out.VCStats.Misses[c] += mt.VCStats.Misses[c]
			out.VCStats.Writes[c] += mt.VCStats.Writes[c]
			out.VCStats.WriteMiss[c] += mt.VCStats.WriteMiss[c]
			out.VCStats.Evictions[c] += mt.VCStats.Evictions[c]
			out.VCStats.WriteBacks[c] += mt.VCStats.WriteBacks[c]
		}
		ps, pagg := &mt.PrefetchStats, &out.PrefetchStats
		pagg.Observed += ps.Observed
		pagg.Predicted += ps.Predicted
		pagg.Issued += ps.Issued
		pagg.Useful += ps.Useful
		pagg.Late += ps.Late
		pagg.DroppedResident += ps.DroppedResident
		pagg.DroppedBudget += ps.DroppedBudget
		pagg.DroppedBus += ps.DroppedBus
		out.Spec.Merge(&mt.Spec)
		out.BusBytes += mt.BusBytes
		out.BusDataBytes += mt.BusDataBytes
		out.BusHashBytes += mt.BusHashBytes
		out.HashOps += mt.HashOps
		out.HashBytesHashed += mt.HashBytesHashed
		out.Violations += mt.Violations
		out.DRAMReads += mt.DRAMReads
		out.DRAMWrites += mt.DRAMWrites
		busBusy += mt.BusUtilization * float64(mt.Result.Cycles)
		itlbWeighted += mt.ITLBMissRate * float64(mt.Result.Instructions)
		dtlbWeighted += mt.DTLBMissRate * float64(mt.Result.Instructions)
	}
	out.IPC = out.Result.IPC()
	out.DataMissRate = out.L2Stats.MissRate(cache.Data)
	out.L2HashMissRate = out.L2Stats.MissRate(cache.Hash)
	if out.Result.Cycles > 0 {
		out.BusUtilization = busBusy / float64(out.Result.Cycles)
	}
	if out.Result.Instructions > 0 {
		out.ITLBMissRate = itlbWeighted / float64(out.Result.Instructions)
		out.DTLBMissRate = dtlbWeighted / float64(out.Result.Instructions)
	}
	if out.L2DataMisses > 0 {
		readPath := out.IntegrityStats.ExtraBlockReads - out.IntegrityStats.ExtraWriteBackReads
		out.ExtraPerMiss = float64(readPath) / float64(out.L2DataMisses)
		out.ExtraPerMissAll = float64(out.IntegrityStats.ExtraBlockReads) / float64(out.L2DataMisses)
	}
	out.VCAccesses, out.VCHitRate = vcRates(out.VCStats)
	return out
}

// Run builds a machine for cfg, executes it, and returns the metrics.
func Run(cfg Config) (Metrics, error) {
	m, err := NewMachine(cfg)
	if err != nil {
		return Metrics{}, err
	}
	return m.Run(), nil
}

// String gives a one-line summary for logs.
func (mt Metrics) String() string {
	return fmt.Sprintf("%s/%s: IPC %.3f, L2 data miss %.2f%%, +%.2f blk/miss, bus %.1f%% (%d hash B), violations %d",
		mt.Benchmark, mt.Scheme, mt.IPC, 100*mt.DataMissRate, mt.ExtraPerMiss,
		100*mt.BusUtilization, mt.BusHashBytes, mt.Violations)
}
