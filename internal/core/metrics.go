package core

import (
	"fmt"

	"memverify/internal/bus"
	"memverify/internal/cache"
	"memverify/internal/cpu"
	"memverify/internal/hashalg"
	"memverify/internal/integrity"
	"memverify/internal/trace"
)

// Metrics is everything one simulation reports; the figure harness
// combines Metrics from several runs into the paper's tables.
type Metrics struct {
	Scheme    Scheme
	Benchmark string

	Result cpu.Result
	IPC    float64

	// L2 behaviour.
	L2Stats         cache.Stats
	DataMissRate    float64 // program-data miss rate (Figure 4)
	L2DataMisses    uint64
	L2HashAccesses  uint64
	L2HashMissRate  float64
	IntegrityStats  integrity.Stats
	ExtraPerMiss    float64 // read-path additional memory blocks per L2 miss (Figure 5a)
	ExtraPerMissAll float64 // as above but including write-back-path reads
	BusBytes        uint64  // total bus traffic (Figure 5b numerator)
	BusDataBytes    uint64
	BusHashBytes    uint64
	BusUtilization  float64
	HashOps         uint64
	HashBytesHashed uint64
	Violations      uint64
	DRAMReads       uint64
	DRAMWrites      uint64
	ITLBMissRate    float64
	DTLBMissRate    float64
}

func hashFor(name string) (hashalg.Algorithm, error) { return hashalg.New(name) }

func newGenerator(cfg Config) trace.Generator {
	return trace.NewSynthetic(cfg.Benchmark, cfg.Seed)
}

// metrics assembles a Metrics from the machine's counters after a run.
func (m *Machine) metrics(res cpu.Result) Metrics {
	st := m.L2.Stat
	dataMisses := st.Misses[cache.Data] + st.WriteMiss[cache.Data]
	out := Metrics{
		Scheme:          m.Cfg.Scheme,
		Benchmark:       m.Cfg.Benchmark.Name,
		Result:          res,
		IPC:             res.IPC(),
		L2Stats:         st,
		DataMissRate:    st.MissRate(cache.Data),
		L2DataMisses:    dataMisses,
		L2HashAccesses:  st.Accesses[cache.Hash] + st.Writes[cache.Hash],
		L2HashMissRate:  st.MissRate(cache.Hash),
		IntegrityStats:  m.Sys.Stat,
		BusBytes:        m.Bus.TotalBytes(),
		BusDataBytes:    m.Bus.Bytes(bus.Data),
		BusHashBytes:    m.Bus.Bytes(bus.Hash),
		BusUtilization:  m.Bus.Utilization(res.Cycles),
		HashOps:         m.Sys.Unit.Ops(),
		HashBytesHashed: m.Sys.Unit.BytesHashed(),
		Violations:      m.Sys.Stat.Violations,
		DRAMReads:       m.DRAM.Reads(),
		DRAMWrites:      m.DRAM.Writes(),
		ITLBMissRate:    m.ITLB.Stat.MissRate(),
		DTLBMissRate:    m.DTLB.Stat.MissRate(),
	}
	if dataMisses > 0 {
		readPath := m.Sys.Stat.ExtraBlockReads - m.Sys.Stat.ExtraWriteBackReads
		out.ExtraPerMiss = float64(readPath) / float64(dataMisses)
		out.ExtraPerMissAll = float64(m.Sys.Stat.ExtraBlockReads) / float64(dataMisses)
	}
	return out
}

// Run builds a machine for cfg, executes it, and returns the metrics.
func Run(cfg Config) (Metrics, error) {
	m, err := NewMachine(cfg)
	if err != nil {
		return Metrics{}, err
	}
	return m.Run(), nil
}

// String gives a one-line summary for logs.
func (mt Metrics) String() string {
	return fmt.Sprintf("%s/%s: IPC %.3f, L2 data miss %.2f%%, +%.2f blk/miss, bus %.1f%% (%d hash B), violations %d",
		mt.Benchmark, mt.Scheme, mt.IPC, 100*mt.DataMissRate, mt.ExtraPerMiss,
		100*mt.BusUtilization, mt.BusHashBytes, mt.Violations)
}
