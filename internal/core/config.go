// Package core wires the substrates into the paper's simulated machine: a
// 4-wide out-of-order core with L1 I/D caches, a unified L2 integrated
// with the hash-tree verification machinery, a shared memory bus and
// external DRAM. It is the public entry point: build a Config, call Run
// (or NewMachine for finer control), read the Metrics.
package core

import (
	"fmt"

	"memverify/internal/cpu"
	"memverify/internal/hashalg"
	"memverify/internal/integrity"
	"memverify/internal/prefetch"
	"memverify/internal/stats"
	"memverify/internal/telemetry"
	"memverify/internal/tlb"
	"memverify/internal/trace"
)

// Scheme selects the verification engine, using the paper's labels.
type Scheme string

// The five schemes of the evaluation (§6).
const (
	// SchemeBase is a standard processor without verification.
	SchemeBase Scheme = "base"
	// SchemeNaive verifies with an uncached hash tree (§5.2).
	SchemeNaive Scheme = "naive"
	// SchemeCached caches tree nodes in the L2, one block per chunk (§5.3).
	SchemeCached Scheme = "c"
	// SchemeMulti is SchemeCached with multi-block chunks (§5.4).
	SchemeMulti Scheme = "m"
	// SchemeIncr is SchemeMulti with incremental MACs (§5.5).
	SchemeIncr Scheme = "i"
)

// Config describes one simulation. DefaultConfig returns Table 1; override
// fields and pass to Run.
type Config struct {
	Scheme       Scheme
	Benchmark    trace.Profile
	Instructions uint64
	// Warmup instructions run before counters reset and measurement
	// starts — the stand-in for the paper's 1.5 B-instruction skip.
	Warmup uint64
	Seed   uint64

	// L1 instruction and data caches.
	L1Size    int
	L1Ways    int
	L1Block   int
	L1Latency uint64

	// Unified L2.
	L2Size    int
	L2Ways    int
	L2Block   int
	L2Latency uint64

	// External memory and bus.
	MemLatency       uint64 // first-chunk DRAM latency in cycles
	BusBeatBytes     int
	BusCyclesPerBeat uint64

	// Hash machinery.
	ChunkBlocks       int     // L2 blocks per hash chunk (1 = scheme c)
	HashSize          int     // stored hash/MAC record bytes
	HashLatency       uint64  // hash pipeline latency in cycles
	HashBytesPerCycle float64 // hash throughput (GB/s at the 1 GHz clock)
	HashBuffers       int     // read and write buffer entries
	HashAlg           string  // "md5", "sha1" or "fnv128"

	// TLB configures the instruction and data translation buffers.
	TLB tlb.Config

	// ProtectedBytes is the size of the verified program region. The
	// paper protects the machine's full 4 GB physical memory; functional
	// runs use smaller regions so the tree can be materialized.
	ProtectedBytes uint64

	// Functional enables real data movement and verification. Timing is
	// identical either way; see integrity.System.Functional.
	Functional bool

	// HashMode selects how much real digest arithmetic functional runs
	// perform: "full" (or empty) computes every digest, "timing" charges
	// the modeled hash latency but skips the arithmetic (illegal once an
	// adversary attaches), "memo" computes digests but memoizes them per
	// chunk under a dirty generation. All three produce identical Metrics;
	// see integrity.HashMode.
	HashMode string

	// VerifyCacheLines, when > 0, gives the integrity layer a dedicated
	// verification cache: hash-tree (interior) chunks are held in a
	// separate cache of VerifyCacheLines lines of L2Block bytes instead of
	// competing with data in the shared L2 — the paper's dedicated-vs-
	// shared ablation. 0 (the default) keeps today's shared-L2 behaviour.
	// Ignored by the base scheme, which has no tree.
	VerifyCacheLines int
	// VerifyCacheAssoc is the dedicated verification cache's
	// associativity. 0 defaults to L2Ways.
	VerifyCacheAssoc int

	// Prefetch configures the tree-ancestor prefetcher: a delta-pattern
	// engine observing the integrity layer's chunk-access stream that
	// pulls predicted chunks' uncached tree ancestors into the cache ahead
	// of the demand miss. Prefetch fills are lowest-priority bus traffic
	// and are dropped under contention, so timing stays honest; data and
	// roots are byte-identical with the engine on or off. The zero value
	// disables it.
	Prefetch prefetch.Config

	// Speculative arms the speculative verification pipeline: on an L2
	// miss, data is delivered to the processor at the critical word while
	// the hash check drains through the hash unit in the background, and
	// dirty write-backs release the processor at write-buffer acceptance
	// (async commit). Delivered data, roots and all non-timing Metrics are
	// byte-identical to blocking mode; detection is deferred, never lost —
	// every outstanding check resolves at Machine.Barrier (and the
	// implicit barriers Flush, VerifyAll and Snapshot), where violation
	// policy is applied and any ViolationError reported with the epoch
	// that contained it. Off by default.
	Speculative bool

	// SpecWindow bounds the speculative pipeline's in-flight background
	// checks: delivery stalls once this many are outstanding. 0 selects
	// integrity.DefaultSpecWindow. Ignored unless Speculative is set.
	SpecWindow int

	// ViolationPolicy selects the containment behaviour after a detected
	// integrity violation: "record" (or empty) counts and continues,
	// "halt" makes every subsequent LoadBytes/StoreBytes return ErrHalted
	// (the §5.8 security exception), "retry" re-fetches a failing chunk
	// once to distinguish transient bus/DRAM faults from persistent
	// tampering. See integrity.ViolationPolicy.
	ViolationPolicy string

	// Telemetry, when non-nil, attaches the observability layer: every
	// timed component emits cycle-timestamped events into the recorder's
	// trace, the hash-buffer and verification-overhead probes are armed,
	// and the bus accumulates occupancy windows. nil (the default) is the
	// zero-overhead fast path. A recorder is single-goroutine: machines
	// sharing one must run serially.
	Telemetry *telemetry.Recorder

	CPU cpu.Config
}

// DefaultConfig returns the architectural parameters of Table 1 (OCR-lost
// digits reconstructed per DESIGN.md), with the gcc workload and a 1 M
// instruction budget.
func DefaultConfig() Config {
	return Config{
		Scheme:       SchemeCached,
		Benchmark:    trace.GCC,
		Instructions: 1_000_000,
		Warmup:       300_000,
		Seed:         1,

		L1Size:    64 << 10,
		L1Ways:    2,
		L1Block:   32,
		L1Latency: 1,

		L2Size:    1 << 20,
		L2Ways:    4,
		L2Block:   64,
		L2Latency: 10,

		MemLatency:       80,
		BusBeatBytes:     8,
		BusCyclesPerBeat: 5, // 200 MHz bus on a 1 GHz core = 1.6 GB/s

		ChunkBlocks:       1,
		HashSize:          16, // 128-bit hashes
		HashLatency:       80,
		HashBytesPerCycle: 3.2, // 3.2 GB/s = one 64 B hash per 20 cycles
		HashBuffers:       16,
		HashAlg:           "fnv128",

		TLB: tlb.DefaultConfig(),

		ProtectedBytes: 4 << 30,
		Functional:     false,

		CPU: cpu.DefaultConfig(),
	}
}

// Validate checks the configuration for consistency. Every misconfiguration
// reachable from Config — including geometry the engine and substrate
// constructors would otherwise panic on — is returned as a descriptive
// error, so NewMachine never panics on user input; panics below this layer
// flag genuine engine-invariant bugs only.
func (c *Config) Validate() error {
	switch c.Scheme {
	case SchemeBase, SchemeNaive, SchemeCached, SchemeMulti, SchemeIncr:
	default:
		return fmt.Errorf("core: unknown scheme %q", c.Scheme)
	}
	if c.ChunkBlocks < 1 {
		return fmt.Errorf("core: ChunkBlocks must be >= 1, got %d", c.ChunkBlocks)
	}
	if c.Scheme == SchemeCached && c.ChunkBlocks != 1 {
		return fmt.Errorf("core: scheme c requires ChunkBlocks == 1, got %d", c.ChunkBlocks)
	}
	if (c.Scheme == SchemeMulti || c.Scheme == SchemeIncr) && c.ChunkBlocks < 2 {
		return fmt.Errorf("core: scheme %s requires ChunkBlocks >= 2, got %d", c.Scheme, c.ChunkBlocks)
	}
	if c.Scheme == SchemeNaive && c.ChunkBlocks != 1 {
		return fmt.Errorf("core: the naive scheme is defined for ChunkBlocks == 1, got %d", c.ChunkBlocks)
	}
	if c.Scheme == SchemeIncr {
		if c.HashSize != hashalg.MACSize {
			return fmt.Errorf("core: scheme i stores %d-byte MAC records, got HashSize %d", hashalg.MACSize, c.HashSize)
		}
		if c.ChunkBlocks > hashalg.MaxMACBlocks {
			return fmt.Errorf("core: scheme i chunks span at most %d blocks (one stamp bit each), got %d",
				hashalg.MaxMACBlocks, c.ChunkBlocks)
		}
	}
	if err := validateCacheGeometry("L1", c.L1Size, c.L1Ways, c.L1Block); err != nil {
		return err
	}
	if err := validateCacheGeometry("L2", c.L2Size, c.L2Ways, c.L2Block); err != nil {
		return err
	}
	if c.VerifyCacheLines < 0 {
		return fmt.Errorf("core: VerifyCacheLines must be >= 0, got %d", c.VerifyCacheLines)
	}
	if c.VerifyCacheLines > 0 {
		if err := validateCacheGeometry("verification cache",
			c.VerifyCacheLines*c.L2Block, c.verifyCacheWays(), c.L2Block); err != nil {
			return err
		}
	}
	if err := c.Prefetch.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.HashSize <= 0 {
		return fmt.Errorf("core: HashSize must be positive, got %d", c.HashSize)
	}
	if chunk := c.L2Block * c.ChunkBlocks; c.Scheme != SchemeBase && chunk%c.HashSize != 0 {
		return fmt.Errorf("core: chunk size %d not a multiple of HashSize %d", chunk, c.HashSize)
	}
	if chunk := c.L2Block * c.ChunkBlocks; c.Scheme != SchemeBase && chunk/c.HashSize < 2 {
		return fmt.Errorf("core: tree arity %d < 2 (chunk %dB, hash %dB)", chunk/c.HashSize, chunk, c.HashSize)
	}
	if c.HashBuffers < 1 {
		return fmt.Errorf("core: HashBuffers must be >= 1, got %d", c.HashBuffers)
	}
	if c.HashBytesPerCycle <= 0 {
		return fmt.Errorf("core: HashBytesPerCycle must be positive, got %g", c.HashBytesPerCycle)
	}
	if _, err := hashalg.New(c.HashAlg); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.BusBeatBytes <= 0 || c.BusCyclesPerBeat == 0 {
		return fmt.Errorf("core: bus beat geometry must be positive (got %dB / %d cycles)",
			c.BusBeatBytes, c.BusCyclesPerBeat)
	}
	t := c.TLB
	if t.Entries <= 0 || t.Ways <= 0 || t.Entries%t.Ways != 0 {
		return fmt.Errorf("core: TLB entries %d must be a positive multiple of ways %d", t.Entries, t.Ways)
	}
	if nsets := t.Entries / t.Ways; nsets&(nsets-1) != 0 {
		return fmt.Errorf("core: TLB set count %d not a power of two", t.Entries/t.Ways)
	}
	if t.PageSize == 0 || t.PageSize&(t.PageSize-1) != 0 {
		return fmt.Errorf("core: TLB page size %d not a positive power of two", t.PageSize)
	}
	if c.CPU.FetchWidth <= 0 || c.CPU.CommitWidth <= 0 || c.CPU.RUUSize <= 0 || c.CPU.LSQSize <= 0 {
		return fmt.Errorf("core: CPU widths and window sizes must be positive")
	}
	if c.Instructions == 0 {
		return fmt.Errorf("core: zero instruction budget")
	}
	if c.ProtectedBytes == 0 && c.Scheme != SchemeBase {
		return fmt.Errorf("core: nothing to protect")
	}
	if _, err := integrity.ParseViolationPolicy(c.ViolationPolicy); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.SpecWindow < 0 {
		return fmt.Errorf("core: SpecWindow must be >= 0, got %d", c.SpecWindow)
	}
	if c.SpecWindow > 0 && !c.Speculative {
		return fmt.Errorf("core: SpecWindow set without Speculative")
	}
	mode, err := integrity.ParseHashMode(c.HashMode)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	// Timing-only execution never materializes the tree (initialization is
	// skipped and records are never compared), so the functional size cap
	// only binds when digests are real.
	if c.Functional && mode != integrity.HashTiming && c.ProtectedBytes > 256<<20 {
		return fmt.Errorf("core: functional mode materializes the tree; protect at most 256 MiB (asked for %d)", c.ProtectedBytes)
	}
	if c.Benchmark.WorkingSet+c.Benchmark.CodeSet > c.ProtectedBytes {
		return fmt.Errorf("core: benchmark footprint %d exceeds protected region %d",
			c.Benchmark.WorkingSet+c.Benchmark.CodeSet, c.ProtectedBytes)
	}
	return nil
}

// verifyCacheWays resolves the dedicated verification cache's
// associativity: VerifyCacheAssoc when set, else L2Ways, clamped to the
// line count so tiny caches degrade to fully associative.
func (c *Config) verifyCacheWays() int {
	ways := c.VerifyCacheAssoc
	if ways <= 0 {
		ways = c.L2Ways
	}
	if c.VerifyCacheLines > 0 && ways > c.VerifyCacheLines {
		ways = c.VerifyCacheLines
	}
	return ways
}

// validateCacheGeometry pre-checks what cache.New would panic on.
func validateCacheGeometry(name string, size, ways, block int) error {
	if block <= 0 || block&(block-1) != 0 {
		return fmt.Errorf("core: %s block size %d not a positive power of two", name, block)
	}
	if ways <= 0 {
		return fmt.Errorf("core: %s ways must be positive, got %d", name, ways)
	}
	if size <= 0 || size%(ways*block) != 0 {
		return fmt.Errorf("core: %s size %d not a positive multiple of ways*block (%d)", name, size, ways*block)
	}
	nsets := size / (ways * block)
	if nsets&(nsets-1) != 0 {
		return fmt.Errorf("core: %s set count %d not a power of two", name, nsets)
	}
	return nil
}

// Table1 renders the architectural parameters the way the paper's Table 1
// reports them.
func (c *Config) Table1() string {
	t := stats.NewTable("Table 1: Architectural parameters used in simulations",
		"Architectural parameters", "Specifications")
	add := func(k, v string) { t.AddRow(k, v) }
	add("Clock frequency", "1 GHz")
	add("L1 I-cache", fmt.Sprintf("%dKB, %d-way, %dB line", c.L1Size>>10, c.L1Ways, c.L1Block))
	add("L1 D-cache", fmt.Sprintf("%dKB, %d-way, %dB line", c.L1Size>>10, c.L1Ways, c.L1Block))
	add("L2 cache", fmt.Sprintf("Unified, %dMB, %d-way, %dB line", c.L2Size>>20, c.L2Ways, c.L2Block))
	add("L1 latency", fmt.Sprintf("%d cycle", c.L1Latency))
	add("L2 latency", fmt.Sprintf("%d cycles", c.L2Latency))
	add("Memory latency (first chunk)", fmt.Sprintf("%d cycles", c.MemLatency))
	add("I/D TLBs", fmt.Sprintf("%d-way, %d-entries", c.TLB.Ways, c.TLB.Entries))
	add("Memory bus", fmt.Sprintf("%d MHz, %d-B wide (%.1f GB/s)",
		1000/int(c.BusCyclesPerBeat), c.BusBeatBytes,
		float64(c.BusBeatBytes)/float64(c.BusCyclesPerBeat)))
	add("Fetch/decode width", fmt.Sprintf("%d / %d per cycle", c.CPU.FetchWidth, c.CPU.FetchWidth))
	add("Issue/commit width", fmt.Sprintf("%d / %d per cycle", c.CPU.IssueWidth, c.CPU.CommitWidth))
	add("Load/store queue size", fmt.Sprintf("%d", c.CPU.LSQSize))
	add("Register update unit size", fmt.Sprintf("%d", c.CPU.RUUSize))
	add("Hash latency", fmt.Sprintf("%d cycles", c.HashLatency))
	add("Hash throughput", fmt.Sprintf("%.1f GB/s", c.HashBytesPerCycle))
	add("Hash read/write buffer", fmt.Sprintf("%d", c.HashBuffers))
	add("Hash length", fmt.Sprintf("%d bits", c.HashSize*8))
	return t.String()
}
