package core

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"memverify/internal/integrity"
)

// specCfg returns the small functional configuration with the speculative
// pipeline armed.
func specCfg(scheme Scheme) Config {
	cfg := smallCfg(scheme)
	cfg.Speculative = true
	return cfg
}

// normalizeSpec zeroes the fields the speculative pipeline is allowed to
// change: timing (cycles, IPC, utilization, the pipeline's own counters)
// and background verification traffic (walk coalescing skips ancestor
// re-reads, so check counts, extra reads, hash work and hash-class bus
// bytes shrink). Everything functional must survive untouched: committed
// instructions, delivered loads/stores, L2 behaviour, demand traffic,
// write-backs, data-class bus bytes and detected violations.
func normalizeSpec(mt Metrics) Metrics {
	mt.Result.Cycles = 0
	mt.IPC = 0
	mt.BusUtilization = 0
	mt.Spec = integrity.SpecStats{}
	mt.IntegrityStats.Checks = 0
	mt.IntegrityStats.ExtraBlockReads = 0
	mt.IntegrityStats.ExtraWriteBackReads = 0
	mt.ExtraPerMiss = 0
	mt.ExtraPerMissAll = 0
	mt.BusBytes = 0
	mt.BusHashBytes = 0
	mt.HashOps = 0
	mt.HashBytesHashed = 0
	mt.DRAMReads = 0
	return mt
}

// TestSpeculativeMetricsEquivalence is the cross-mode equivalence suite
// extended to the speculative pipeline: over every scheme and hash
// execution mode, a speculative run must match its blocking twin on all
// functional metrics — the pipeline may only move cycles and background
// verification traffic.
func TestSpeculativeMetricsEquivalence(t *testing.T) {
	for _, s := range allSchemes {
		for _, mode := range []string{"full", "timing", "memo"} {
			s, mode := s, mode
			t.Run(string(s)+"/"+mode, func(t *testing.T) {
				run := func(spec bool) Metrics {
					cfg := smallCfg(s)
					cfg.HashMode = mode
					cfg.Speculative = spec
					mt, err := Run(cfg)
					if err != nil {
						t.Fatalf("speculative=%v: %v", spec, err)
					}
					return mt
				}
				blocking := normalizeSpec(run(false))
				speculative := normalizeSpec(run(true))
				if !reflect.DeepEqual(speculative, blocking) {
					t.Errorf("speculative functional metrics diverge from blocking:\nblocking    %+v\nspeculative %+v",
						blocking, speculative)
				}
			})
		}
	}
}

// TestSpeculativeDataRootEquivalence drives identical random direct-access
// traffic through a blocking and a speculative machine: every loaded byte
// and the final tree root must be identical — speculation is invisible in
// delivered data.
func TestSpeculativeDataRootEquivalence(t *testing.T) {
	for _, s := range allSchemes {
		for _, mode := range []string{"full", "timing", "memo"} {
			s, mode := s, mode
			t.Run(string(s)+"/"+mode, func(t *testing.T) {
				cfgB := smallCfg(s)
				cfgB.HashMode = mode
				cfgS := cfgB
				cfgS.Speculative = true
				mb, err := NewMachine(cfgB)
				if err != nil {
					t.Fatal(err)
				}
				ms, err := NewMachine(cfgS)
				if err != nil {
					t.Fatal(err)
				}
				span := uint64(64 << 10)
				rng := rand.New(rand.NewSource(7))
				for op := 0; op < 400; op++ {
					n := 1 + rng.Intn(200)
					off := rng.Uint64() % (span - uint64(n))
					if rng.Intn(2) == 0 {
						p := make([]byte, n)
						rng.Read(p)
						if err := mb.StoreBytes(off, p); err != nil {
							t.Fatal(err)
						}
						if err := ms.StoreBytes(off, p); err != nil {
							t.Fatal(err)
						}
					} else {
						pb := make([]byte, n)
						ps := make([]byte, n)
						if err := mb.LoadBytes(off, pb); err != nil {
							t.Fatal(err)
						}
						if err := ms.LoadBytes(off, ps); err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(pb, ps) {
							t.Fatalf("op %d: speculative load at %d returned different bytes", op, off)
						}
					}
				}
				if err := ms.Barrier(); err != nil {
					t.Fatalf("clean-run barrier reported %v", err)
				}
				mb.Flush()
				ms.Flush()
				if !bytes.Equal(mb.Sys.Root, ms.Sys.Root) {
					t.Errorf("final roots diverge: blocking %x speculative %x", mb.Sys.Root, ms.Sys.Root)
				}
				if v := ms.Sys.Stat.Violations; v != 0 {
					t.Errorf("clean speculative run recorded %d violations", v)
				}
			})
		}
	}
}

// runInterleaved drives one machine through the seeded traffic pattern:
// mixed stores and loads, an optional mid-run corruption, barriers
// sprinkled according to barSeed (0 = no barriers: the blocking
// reference), and a final evict-and-reread sweep over the corrupted
// block. It reports whether any violation surfaced by the end.
func runInterleaved(t *testing.T, m *Machine, opSeed, barSeed int64, tampered bool) bool {
	t.Helper()
	span := uint64(32 << 10)
	ops := rand.New(rand.NewSource(opSeed))
	var bar *rand.Rand
	if barSeed != 0 {
		bar = rand.New(rand.NewSource(barSeed))
	}
	detected := false
	corruptAt := ops.Uint64() % span
	for op := 0; op < 250; op++ {
		n := 1 + ops.Intn(128)
		off := ops.Uint64() % (span - uint64(n))
		if ops.Intn(2) == 0 {
			p := make([]byte, n)
			ops.Read(p)
			if err := m.StoreBytes(off, p); err != nil {
				detected = true
			}
		} else {
			if err := m.LoadBytes(off, make([]byte, n)); err != nil {
				detected = true
			}
		}
		if bar != nil && bar.Float64() < 0.15 {
			if err := m.Barrier(); err != nil {
				detected = true
			}
		}
		if tampered && op == 125 {
			m.EvictProtected()
			m.Adversary().Corrupt(m.ProgAddr(corruptAt), 0xA5)
		}
	}
	// Final sweep: evict everything, re-read the corrupted block's
	// neighbourhood, and commit the epoch.
	m.EvictProtected()
	start := corruptAt &^ 63
	if start+64 > span {
		start = span - 64
	}
	if err := m.LoadBytes(start, make([]byte, 64)); err != nil {
		detected = true
	}
	if err := m.Barrier(); err != nil {
		detected = true
	}
	return detected || m.Sys.Stat.Violations > 0
}

// TestSpeculativeBarrierInterleavingProperty is the seeded property test:
// however barriers are interleaved with the traffic, the detection
// outcome never changes. Every speculative interleaving must agree with
// the blocking reference — including runs where a later full-block store
// legitimately rebuilds the tampered block's hashes before any read
// (§5.3), which no mode detects.
func TestSpeculativeBarrierInterleavingProperty(t *testing.T) {
	for _, scheme := range []Scheme{SchemeNaive, SchemeCached} {
		for seed := int64(1); seed <= 4; seed++ {
			for _, tampered := range []bool{false, true} {
				scheme, seed, tampered := scheme, seed, tampered
				name := string(scheme) + "/clean"
				if tampered {
					name = string(scheme) + "/tampered"
				}
				t.Run(name, func(t *testing.T) {
					newMachine := func(spec bool) *Machine {
						cfg := smallCfg(scheme)
						cfg.Speculative = spec
						m, err := NewMachine(cfg)
						if err != nil {
							t.Fatal(err)
						}
						return m
					}
					want := runInterleaved(t, newMachine(false), seed, 0, tampered)
					if tampered && seed != 2 && !want {
						// Seed 2's corruption is overwritten by a full-block
						// store before any read; the others must detect.
						t.Fatalf("blocking reference missed the tamper")
					}
					for trial := int64(1); trial <= 3; trial++ {
						got := runInterleaved(t, newMachine(true), seed, seed*977+trial, tampered)
						if got != want {
							t.Errorf("seed %d trial %d: speculative detected=%v, blocking reference %v",
								seed, trial, got, want)
						}
					}
				})
			}
		}
	}
}

// TestSpeculativeHaltPoisoning pins the late-violation containment
// contract under PolicyHalt: the tampered load itself returns clean (the
// check is still in flight), the next barrier surfaces the violation with
// the epoch that contained it, and every subsequent access is poisoned
// with ErrHalted.
func TestSpeculativeHaltPoisoning(t *testing.T) {
	cfg := specCfg(SchemeNaive)
	cfg.ViolationPolicy = "halt"
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StoreBytes(0, bytes.Repeat([]byte{0x3c}, 64)); err != nil {
		t.Fatal(err)
	}
	// Two clean epochs first, so the attribution below is non-trivial.
	for i := 0; i < 2; i++ {
		if err := m.Barrier(); err != nil {
			t.Fatalf("clean barrier %d: %v", i, err)
		}
	}
	m.EvictProtected()
	m.Adversary().Corrupt(m.ProgAddr(8), 0xFF)
	if err := m.LoadBytes(0, make([]byte, 64)); err != nil {
		t.Fatalf("speculative load surfaced the violation inline: %v", err)
	}
	err = m.Barrier()
	if err == nil {
		t.Fatal("barrier after tampered load reported a clean epoch")
	}
	var v *integrity.ViolationError
	if !errors.As(err, &v) {
		t.Fatalf("barrier returned %T, want *ViolationError", err)
	}
	if v.Epoch != 2 {
		t.Errorf("violation attributed to epoch %d, want 2", v.Epoch)
	}
	if !m.Halted() {
		t.Error("machine not halted after the barrier resolved the violation")
	}
	if err := m.LoadBytes(0, make([]byte, 64)); !errors.Is(err, ErrHalted) {
		t.Errorf("post-halt load returned %v, want ErrHalted", err)
	}
}

// TestSpeculativeWindowBounds pins the bounded-window contract: a tiny
// window forces delivery stalls on a walk-heavy workload, and the stall
// counters say so.
func TestSpeculativeWindowBounds(t *testing.T) {
	cfg := specCfg(SchemeNaive)
	cfg.SpecWindow = 1
	mt, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Spec.Checks == 0 {
		t.Fatal("no speculative checks admitted")
	}
	// At admission the new check momentarily coexists with the oldest
	// one draining, so the peak may exceed the window by exactly one.
	if mt.Spec.PendingPeak > 2 {
		t.Errorf("window 1 saw pending peak %d", mt.Spec.PendingPeak)
	}
	if mt.Spec.WindowStalls == 0 {
		t.Error("window 1 never stalled delivery on a walk-heavy workload")
	}
	wide := specCfg(SchemeNaive)
	mtw, err := Run(wide)
	if err != nil {
		t.Fatal(err)
	}
	if mtw.IPC < mt.IPC {
		t.Errorf("default window IPC %.4f below window-1 IPC %.4f", mtw.IPC, mt.IPC)
	}
}
