package figures

import (
	"strings"
	"testing"

	"memverify/internal/core"
	"memverify/internal/trace"
)

// TestFigureOutputIdenticalAcrossHashModes runs a miniature figure batch
// (all five schemes over one benchmark) functionally under each hash
// execution mode and requires byte-identical CSV output: the mode is an
// execution strategy, never a modeling change.
func TestFigureOutputIdenticalAcrossHashModes(t *testing.T) {
	bench := trace.Uniform("hashmode-test", 128<<10)
	bench.CodeSet = 16 << 10
	run := func(mode string) string {
		p := Params{
			Instructions:   20_000,
			Warmup:         5_000,
			Seed:           1,
			Benchmarks:     []trace.Profile{bench},
			Workers:        1,
			Functional:     true,
			HashMode:       mode,
			ProtectedBytes: 1 << 20,
		}
		var sb strings.Builder
		p.Observer = func(cfg core.Config, mt core.Metrics) {
			WriteCSVRow(&sb, cfg, mt)
		}
		var pts []point
		for _, s := range []core.Scheme{core.SchemeBase, core.SchemeCached,
			core.SchemeNaive, core.SchemeMulti, core.SchemeIncr} {
			pts = append(pts, point{bench, func(c *core.Config) {
				schemeCfg(s)(c)
				c.L2Size = 64 << 10
				c.HashAlg = "md5"
			}})
		}
		p.runAll(pts)
		return sb.String()
	}
	full := run("full")
	if !strings.Contains(full, ",base,") || strings.Count(full, "\n") != 5 {
		t.Fatalf("unexpected full-mode output:\n%s", full)
	}
	for _, mode := range []string{"timing", "memo"} {
		if got := run(mode); got != full {
			t.Errorf("mode %q CSV diverges from full:\nfull:\n%s%s:\n%s", mode, full, mode, got)
		}
	}
}

// TestFunctionalOverridesApplied pins the Params plumbing: Functional,
// HashMode and ProtectedBytes land in every generated configuration.
func TestFunctionalOverridesApplied(t *testing.T) {
	p := DefaultParams()
	p.Functional = true
	p.HashMode = "timing"
	p.ProtectedBytes = 2 << 20
	cfg := p.config(point{trace.Benchmarks[0], schemeCfg(core.SchemeCached)})
	if !cfg.Functional || cfg.HashMode != "timing" || cfg.ProtectedBytes != 2<<20 {
		t.Errorf("overrides not applied: functional=%v mode=%q protected=%d",
			cfg.Functional, cfg.HashMode, cfg.ProtectedBytes)
	}
}
