// Package figures regenerates every table and figure of the paper's
// evaluation section (§6) from fresh simulations: the IPC comparisons of
// Figure 3, the miss-rate study of Figure 4, the extra-accesses and
// bandwidth analysis of Figure 5, the hash-throughput and buffer-size
// sweeps of Figures 6 and 7, and the reduced-memory-overhead schemes of
// Figure 8. Both cmd/figures and the repository's benchmark suite drive
// this package, so the printed output and the bench results come from the
// same code.
package figures

import (
	"fmt"
	"io"

	"memverify/internal/core"
	"memverify/internal/stats"
	"memverify/internal/sweep"
	"memverify/internal/telemetry"
	"memverify/internal/trace"
)

// Params sets the per-point simulation budget.
type Params struct {
	Instructions uint64
	Warmup       uint64
	Seed         uint64
	// Benchmarks defaults to the paper's nine SPEC profiles.
	Benchmarks []trace.Profile
	// Workers sets how many simulations run concurrently: 0 uses every
	// core, 1 runs serially. Output is identical either way — each figure
	// submits its whole batch to the sweep pool, which streams results in
	// submission order.
	Workers int
	// Progress, when non-nil, receives one line per completed run, in
	// submission order even under parallel execution.
	Progress io.Writer
	// Observer, when non-nil, receives every run's configuration and
	// metrics — the hook cmd/figures uses to emit machine-readable CSV
	// alongside the tables. Calls arrive in submission order, serialized
	// on one goroutine.
	Observer func(cfg core.Config, mt core.Metrics)
	// Functional switches every point to functional simulation (real data
	// movement and verification). Figures are identical either way; the
	// point of the switch is exercising the hash-execution modes below.
	Functional bool
	// HashMode selects the digest-execution mode for functional points:
	// "" / "full", "timing" or "memo" (see core.Config.HashMode).
	HashMode string
	// ProtectedBytes overrides the protected-region size when non-zero.
	// Functional full/memo runs must stay within the 256 MiB tree cap.
	ProtectedBytes uint64
	// Telemetry, when non-nil, attaches the recorder to every point's
	// machine. A recorder is single-goroutine, so runAll forces the sweep
	// serial while one is attached (Workers is ignored).
	Telemetry *telemetry.Recorder
	// Meter, when non-nil, shows live sweep progress on its writer: points
	// completed, throughput and ETA (cmd/figures -progress).
	Meter *telemetry.Meter
}

// DefaultParams returns a budget that completes the full figure suite in
// minutes on one core while preserving every figure's shape.
func DefaultParams() Params {
	return Params{Instructions: 200_000, Warmup: 150_000, Seed: 1, Benchmarks: trace.Benchmarks}
}

func (p *Params) benches() []trace.Profile {
	if len(p.Benchmarks) > 0 {
		return p.Benchmarks
	}
	return trace.Benchmarks
}

// point is one simulation of a figure's batch: a benchmark plus the
// configuration overrides that place it in the figure.
type point struct {
	bench  trace.Profile
	mutate func(*core.Config)
}

// config materializes a point's full configuration.
func (p *Params) config(pt point) core.Config {
	cfg := core.DefaultConfig()
	cfg.Benchmark = pt.bench
	cfg.Instructions = p.Instructions
	cfg.Warmup = p.Warmup
	cfg.Seed = p.Seed
	pt.mutate(&cfg)
	// Applied after mutate so figure-level overrides always win.
	if p.Functional {
		cfg.Functional = true
	}
	cfg.HashMode = p.HashMode
	if p.ProtectedBytes != 0 {
		cfg.ProtectedBytes = p.ProtectedBytes
	}
	cfg.Telemetry = p.Telemetry
	return cfg
}

// runAll executes a batch of points on the sweep pool and returns the
// metrics in submission order. Every configuration is validated up front,
// so a bad point panics before any simulation starts — the same failure
// point a serial run had. Progress and Observer fire in submission order
// regardless of the worker count.
func (p *Params) runAll(pts []point) []core.Metrics {
	cfgs := make([]core.Config, len(pts))
	for i, pt := range pts {
		cfgs[i] = p.config(pt)
		if err := cfgs[i].Validate(); err != nil {
			panic(fmt.Sprintf("figures: invalid configuration for %s: %v", pt.bench.Name, err))
		}
	}
	workers := p.Workers
	if p.Telemetry != nil {
		// The recorder is single-goroutine: tracing a sweep serializes it.
		workers = 1
	}
	pool := sweep.New(workers)
	pool.Meter = p.Meter
	mts, err := pool.Run(cfgs, func(_ int, cfg core.Config, mt core.Metrics) {
		if p.Progress != nil {
			fmt.Fprintf(p.Progress, "  %s\n", mt)
		}
		if p.Observer != nil {
			p.Observer(cfg, mt)
		}
	})
	if err != nil {
		// Unreachable: validation above is core.Run's only error source.
		panic(fmt.Sprintf("figures: run failed: %v", err))
	}
	return mts
}

// runOne executes a single configured simulation.
func (p *Params) runOne(bench trace.Profile, mutate func(*core.Config)) core.Metrics {
	return p.runAll([]point{{bench, mutate}})[0]
}

// CSVHeader is the column list WriteCSVRow emits values for.
const CSVHeader = "bench,scheme,l2_bytes,block_bytes,chunk_blocks,hash_gbps,hash_buffers,protected_bytes,ipc,l2_data_missrate,extra_per_miss,extra_per_miss_all,bus_bytes,bus_hash_bytes,bus_utilization,dram_reads,dram_writes,violations"

// WriteCSVRow renders one run in CSVHeader's column order.
func WriteCSVRow(w io.Writer, cfg core.Config, mt core.Metrics) {
	fmt.Fprintf(w, "%s,%s,%d,%d,%d,%.2f,%d,%d,%.5f,%.6f,%.4f,%.4f,%d,%d,%.5f,%d,%d,%d\n",
		cfg.Benchmark.Name, cfg.Scheme, cfg.L2Size, cfg.L2Block, cfg.ChunkBlocks,
		cfg.HashBytesPerCycle, cfg.HashBuffers, cfg.ProtectedBytes,
		mt.IPC, mt.DataMissRate, mt.ExtraPerMiss, mt.ExtraPerMissAll,
		mt.BusBytes, mt.BusHashBytes, mt.BusUtilization,
		mt.DRAMReads, mt.DRAMWrites, mt.Violations)
}

func schemeCfg(s core.Scheme) func(*core.Config) {
	return func(c *core.Config) {
		c.Scheme = s
		if s == core.SchemeMulti || s == core.SchemeIncr {
			c.ChunkBlocks = 2
		}
	}
}

// Fig3Config is one of the six cache configurations of Figure 3.
type Fig3Config struct {
	L2Size  int
	L2Block int
}

// Fig3Configs are the paper's six L2 configurations, in figure order
// (a)–(f).
var Fig3Configs = []Fig3Config{
	{256 << 10, 64}, {1 << 20, 64}, {4 << 20, 64},
	{256 << 10, 128}, {1 << 20, 128}, {4 << 20, 128},
}

// Fig3 reproduces Figure 3: IPC of base, c and naive for one L2
// configuration across all benchmarks.
func (p Params) Fig3(cc Fig3Config) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Figure 3 (%dKB, %dB): IPC of base / c / naive", cc.L2Size>>10, cc.L2Block),
		"bench", "base", "c", "naive", "c/base", "naive/base")
	schemes := []core.Scheme{core.SchemeBase, core.SchemeCached, core.SchemeNaive}
	var pts []point
	for _, b := range p.benches() {
		for _, s := range schemes {
			s := s
			pts = append(pts, point{b, func(c *core.Config) {
				schemeCfg(s)(c)
				c.L2Size = cc.L2Size
				c.L2Block = cc.L2Block
			}})
		}
	}
	mts := p.runAll(pts)
	for bi, b := range p.benches() {
		row := mts[bi*len(schemes):]
		t.AddRow(b.Name, row[0].IPC, row[1].IPC, row[2].IPC,
			row[1].IPC/row[0].IPC, row[2].IPC/row[0].IPC)
	}
	return t
}

// Fig4 reproduces Figure 4: L2 miss rates of program data for base and c,
// with 256 KB and 4 MB caches (64 B blocks).
func (p Params) Fig4() *stats.Table {
	t := stats.NewTable("Figure 4: L2 program-data miss rate (%), 64B blocks",
		"bench", "base-256K", "c-256K", "base-4M", "c-4M")
	var pts []point
	for _, b := range p.benches() {
		for _, size := range []int{256 << 10, 4 << 20} {
			for _, s := range []core.Scheme{core.SchemeBase, core.SchemeCached} {
				size, s := size, s
				pts = append(pts, point{b, func(c *core.Config) {
					schemeCfg(s)(c)
					c.L2Size = size
				}})
			}
		}
	}
	mts := p.runAll(pts)
	for bi, b := range p.benches() {
		row := mts[bi*4:]
		t.AddRow(b.Name, 100*row[0].DataMissRate, 100*row[1].DataMissRate,
			100*row[2].DataMissRate, 100*row[3].DataMissRate)
	}
	return t
}

// Fig5 reproduces Figure 5: (a) additional memory blocks loaded per L2
// miss and (b) memory bandwidth usage normalized to base, for c and naive
// with a 1 MB, 64 B L2.
func (p Params) Fig5() *stats.Table {
	t := stats.NewTable("Figure 5: additional accesses per miss and normalized bandwidth (1MB, 64B)",
		"bench", "extra/miss c", "extra/miss naive", "bandwidth c", "bandwidth naive")
	schemes := []core.Scheme{core.SchemeBase, core.SchemeCached, core.SchemeNaive}
	var pts []point
	for _, b := range p.benches() {
		for _, s := range schemes {
			pts = append(pts, point{b, schemeCfg(s)})
		}
	}
	mts := p.runAll(pts)
	for bi, b := range p.benches() {
		row := mts[bi*len(schemes):]
		base, c, naive := row[0], row[1], row[2]
		t.AddRow(b.Name, c.ExtraPerMiss, naive.ExtraPerMiss,
			stats.Ratio(c.BusBytes, base.BusBytes),
			stats.Ratio(naive.BusBytes, base.BusBytes))
	}
	return t
}

// Fig6Throughputs are the hash-unit throughputs of Figure 6 in GB/s.
var Fig6Throughputs = []float64{6.4, 3.2, 1.6, 0.8}

// Fig6 reproduces Figure 6: IPC of scheme c as the hash-unit throughput
// varies (1 MB, 64 B L2). 6.4 GB/s is one hash per 10 cycles; 1.6 GB/s
// equals the memory bus bandwidth.
func (p Params) Fig6() *stats.Table {
	t := stats.NewTable("Figure 6: IPC of c vs hash throughput (1MB, 64B)",
		"bench", "6.4 GB/s", "3.2 GB/s", "1.6 GB/s", "0.8 GB/s")
	var pts []point
	for _, b := range p.benches() {
		for _, tp := range Fig6Throughputs {
			tp := tp
			pts = append(pts, point{b, func(c *core.Config) {
				schemeCfg(core.SchemeCached)(c)
				c.HashBytesPerCycle = tp
			}})
		}
	}
	mts := p.runAll(pts)
	for bi, b := range p.benches() {
		row := []interface{}{b.Name}
		for i := range Fig6Throughputs {
			row = append(row, mts[bi*len(Fig6Throughputs)+i].IPC)
		}
		t.AddRow(row...)
	}
	return t
}

// Fig7Buffers are the read/write buffer sizes of Figure 7.
var Fig7Buffers = []int{1, 2, 4, 8, 16, 32}

// Fig7 reproduces Figure 7: IPC of scheme c as the hash buffer size
// varies (1 MB, 64 B L2).
func (p Params) Fig7() *stats.Table {
	t := stats.NewTable("Figure 7: IPC of c vs hash buffer size (1MB, 64B)",
		"bench", "1", "2", "4", "8", "16", "32")
	var pts []point
	for _, b := range p.benches() {
		for _, n := range Fig7Buffers {
			n := n
			pts = append(pts, point{b, func(c *core.Config) {
				schemeCfg(core.SchemeCached)(c)
				c.HashBuffers = n
			}})
		}
	}
	mts := p.runAll(pts)
	for bi, b := range p.benches() {
		row := []interface{}{b.Name}
		for i := range Fig7Buffers {
			row = append(row, mts[bi*len(Fig7Buffers)+i].IPC)
		}
		t.AddRow(row...)
	}
	return t
}

// Fig8 reproduces Figure 8: IPC of the reduced-memory-overhead schemes —
// c with 64 B and 128 B blocks, and m and i with two 64 B blocks per
// chunk — with a 1 MB L2.
func (p Params) Fig8() *stats.Table {
	t := stats.NewTable("Figure 8: IPC of c-64B / c-128B / m-64B / i-64B (1MB L2)",
		"bench", "c-64B", "c-128B", "m-64B", "i-64B")
	var pts []point
	for _, b := range p.benches() {
		pts = append(pts,
			point{b, schemeCfg(core.SchemeCached)},
			point{b, func(c *core.Config) {
				schemeCfg(core.SchemeCached)(c)
				c.L2Block = 128
			}},
			point{b, schemeCfg(core.SchemeMulti)},
			point{b, schemeCfg(core.SchemeIncr)})
	}
	mts := p.runAll(pts)
	for bi, b := range p.benches() {
		row := mts[bi*4:]
		t.AddRow(b.Name, row[0].IPC, row[1].IPC, row[2].IPC, row[3].IPC)
	}
	return t
}

// Table1 renders the architectural-parameters table.
func (p Params) Table1() string {
	cfg := core.DefaultConfig()
	return cfg.Table1()
}
