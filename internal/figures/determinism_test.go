package figures

import (
	"bytes"
	"testing"

	"memverify/internal/core"
	"memverify/internal/stats"
)

// renderSuite runs a representative slice of the figure suite with the
// given worker count and captures every output stream: the rendered
// tables, the Observer-driven CSV and the Progress log.
func renderSuite(workers int) (tables, csv, progress string) {
	var csvBuf, progBuf bytes.Buffer
	p := tinyParams()
	p.Workers = workers
	p.Progress = &progBuf
	p.Observer = func(cfg core.Config, mt core.Metrics) {
		WriteCSVRow(&csvBuf, cfg, mt)
	}
	ts := []*stats.Table{
		p.Fig3(Fig3Config{L2Size: 256 << 10, L2Block: 64}),
		p.Fig5(),
		p.Fig8(),
		p.AblationArity(),
	}
	var tblBuf bytes.Buffer
	for _, t := range ts {
		tblBuf.WriteString(t.String())
		tblBuf.WriteByte('\n')
	}
	return tblBuf.String(), csvBuf.String(), progBuf.String()
}

// TestSerialParallelIdentical is the determinism contract of the sweep
// rewiring: tables, CSV rows and progress lines must be byte-identical
// between workers=1 and a parallel pool, in content AND order.
func TestSerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the figure suite twice")
	}
	serialTables, serialCSV, serialProg := renderSuite(1)
	parTables, parCSV, parProg := renderSuite(4)

	if serialTables != parTables {
		t.Errorf("tables differ between serial and parallel runs:\nserial:\n%s\nparallel:\n%s",
			serialTables, parTables)
	}
	if serialCSV != parCSV {
		t.Errorf("CSV output differs between serial and parallel runs:\nserial:\n%s\nparallel:\n%s",
			serialCSV, parCSV)
	}
	if serialProg != parProg {
		t.Errorf("progress log differs between serial and parallel runs:\nserial:\n%s\nparallel:\n%s",
			serialProg, parProg)
	}
	if serialCSV == "" || serialProg == "" {
		t.Error("suite produced no observer/progress output; test is vacuous")
	}
}
