package figures

import (
	"strconv"
	"strings"
	"testing"

	"memverify/internal/trace"
)

func abParams() Params {
	return Params{
		Instructions: 12_000,
		Warmup:       5_000,
		Seed:         1,
		Benchmarks:   []trace.Profile{trace.Gzip},
	}
}

func TestAblationVerifyCache(t *testing.T) {
	out := abParams().AblationVerifyCache().String()
	mustContain(t, out, "dedicated verification cache", "shared+pf", "dedicated+pf", "gzip")
}

func TestAblationArity(t *testing.T) {
	out := abParams().AblationArity().String()
	mustContain(t, out, "arity", "8-ary", "4-ary", "gzip")
}

func TestAblationHashLatency(t *testing.T) {
	out := abParams().AblationHashLatency().String()
	mustContain(t, out, "hash latency", "320cy")
}

func TestAblationAssoc(t *testing.T) {
	out := abParams().AblationAssoc().String()
	mustContain(t, out, "associativity", "8-way")
}

func TestAblationTreeDepth(t *testing.T) {
	p := abParams()
	tbl := p.AblationTreeDepth()
	out := tbl.String()
	mustContain(t, out, "protected size", "naive 16GB")
	// The naive columns must strictly increase with protected size: the
	// tree deepens by one level per 4x.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	fields := strings.Fields(last)
	if len(fields) < 9 {
		t.Fatalf("row too short: %q", last)
	}
	var prev float64
	for i := 1; i <= 4; i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", fields[i], err)
		}
		if v <= prev {
			t.Errorf("naive extra/miss not increasing with tree depth: %v then %v", prev, v)
		}
		prev = v
	}
}
