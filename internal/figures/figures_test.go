package figures

import (
	"strings"
	"testing"

	"memverify/internal/core"
	"memverify/internal/trace"
)

// tinyParams keeps figure tests quick: two benchmarks, small budgets.
func tinyParams() Params {
	return Params{
		Instructions: 15_000,
		Warmup:       5_000,
		Seed:         1,
		Benchmarks:   []trace.Profile{trace.Gzip, trace.Twolf},
	}
}

func mustContain(t *testing.T, out string, wants ...string) {
	t.Helper()
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q:\n%s", w, out)
		}
	}
}

func TestFig3(t *testing.T) {
	out := tinyParams().Fig3(Fig3Config{L2Size: 256 << 10, L2Block: 64}).String()
	mustContain(t, out, "Figure 3", "256KB", "base", "naive", "gzip", "twolf")
	if len(Fig3Configs) != 6 {
		t.Errorf("paper has six L2 configurations, got %d", len(Fig3Configs))
	}
}

func TestFig4(t *testing.T) {
	out := tinyParams().Fig4().String()
	mustContain(t, out, "Figure 4", "base-256K", "c-4M", "gzip", "twolf")
}

func TestFig5(t *testing.T) {
	out := tinyParams().Fig5().String()
	mustContain(t, out, "Figure 5", "extra/miss c", "bandwidth naive")
}

func TestFig6(t *testing.T) {
	out := tinyParams().Fig6().String()
	mustContain(t, out, "Figure 6", "6.4 GB/s", "0.8 GB/s")
	if len(Fig6Throughputs) != 4 {
		t.Error("paper sweeps four throughputs")
	}
}

func TestFig7(t *testing.T) {
	out := tinyParams().Fig7().String()
	mustContain(t, out, "Figure 7", "16", "32")
}

func TestFig8(t *testing.T) {
	out := tinyParams().Fig8().String()
	mustContain(t, out, "Figure 8", "c-64B", "c-128B", "m-64B", "i-64B")
}

func TestTable1(t *testing.T) {
	mustContain(t, tinyParams().Table1(), "Table 1", "Hash throughput")
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.Instructions == 0 || p.Warmup == 0 {
		t.Error("zero default budgets")
	}
	if len(p.benches()) != 9 {
		t.Errorf("default benchmarks: %d, want the paper's nine", len(p.benches()))
	}
}

func TestCSVObserver(t *testing.T) {
	var rows []string
	p := tinyParams()
	p.Observer = func(cfg core.Config, mt core.Metrics) {
		var b strings.Builder
		WriteCSVRow(&b, cfg, mt)
		rows = append(rows, b.String())
	}
	p.Fig5()
	if len(rows) != 2*3 { // two benchmarks x three schemes
		t.Fatalf("observer saw %d runs, want 6", len(rows))
	}
	header := strings.Split(CSVHeader, ",")
	for _, r := range rows {
		fields := strings.Split(strings.TrimSpace(r), ",")
		if len(fields) != len(header) {
			t.Fatalf("row has %d fields, header has %d: %q", len(fields), len(header), r)
		}
	}
	if !strings.HasPrefix(rows[0], "gzip,base,") {
		t.Errorf("first row: %q", rows[0])
	}
}
