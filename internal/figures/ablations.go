package figures

import (
	"fmt"

	"memverify/internal/core"
	"memverify/internal/prefetch"
	"memverify/internal/stats"
)

// Ablation studies for the design choices the paper fixes by fiat: tree
// arity (the external-memory-overhead vs performance tradeoff the
// abstract promises), hash-unit latency (§6.2 claims longer latencies are
// absorbed by deeper buffers), L2 associativity (hash/data contention is
// a replacement phenomenon) and protected-region size (the naive scheme's
// log N cost against the cached scheme's locality).

// AblationVCLines is the dedicated verification cache sized for the
// dedicated-vs-shared sweep, in L2-block lines (128 × 64 B = 8 KB).
const AblationVCLines = 128

// ablationVCVariants are the four cache arrangements of the
// dedicated-vs-shared sweep: tree nodes sharing the L2 or living in a
// dedicated cache, each with the ancestor prefetcher off and on.
var ablationVCVariants = []struct {
	name     string
	vc       bool
	prefetch bool
}{
	{"shared", false, false},
	{"shared+pf", false, true},
	{"dedicated", true, false},
	{"dedicated+pf", true, true},
}

// AblationVerifyCache sweeps where the tree nodes live — sharing the L2
// with program data (the paper's arrangement, where hash lines pollute
// the working set) against a small dedicated verification cache — with
// and without tree-ancestor prefetching. A deliberately small L2
// (256 KB) makes the contention visible: that is where evicting data
// for hashes hurts and where a dedicated cache or a prefetcher buys the
// most back.
func (p Params) AblationVerifyCache() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ablation: dedicated verification cache (%d lines) and ancestor prefetch (scheme c, 256KB L2, 64B)", AblationVCLines),
		"bench", "shared", "shared+pf", "dedicated", "dedicated+pf", "dedicated/shared")
	pf := prefetch.DefaultConfig()
	pf.Enabled = true
	var pts []point
	for _, b := range p.benches() {
		for _, v := range ablationVCVariants {
			v := v
			pts = append(pts, point{b, func(c *core.Config) {
				schemeCfg(core.SchemeCached)(c)
				c.L2Size = 256 << 10
				if v.vc {
					c.VerifyCacheLines = AblationVCLines
					c.VerifyCacheAssoc = 4
				}
				if v.prefetch {
					c.Prefetch = pf
				}
			}})
		}
	}
	mts := p.runAll(pts)
	for bi, b := range p.benches() {
		row := mts[bi*len(ablationVCVariants):]
		t.AddRow(b.Name, row[0].IPC, row[1].IPC, row[2].IPC, row[3].IPC,
			row[2].IPC/row[0].IPC)
	}
	return t
}

// AblationArities are the stored-record sizes swept: 8 B records give an
// 8-ary tree (1/7 of memory for hashes), 16 B a 4-ary tree (1/3).
var AblationArities = []int{8, 16}

// AblationArity sweeps tree arity via the stored hash size for scheme c.
func (p Params) AblationArity() *stats.Table {
	t := stats.NewTable("Ablation: tree arity via hash size (scheme c, 1MB, 64B)",
		"bench", "IPC 8B-hash (8-ary)", "IPC 16B-hash (4-ary)", "extra/miss 8B", "extra/miss 16B")
	var pts []point
	for _, b := range p.benches() {
		for _, hs := range AblationArities {
			hs := hs
			pts = append(pts, point{b, func(c *core.Config) {
				schemeCfg(core.SchemeCached)(c)
				c.HashSize = hs
			}})
		}
	}
	mts := p.runAll(pts)
	for bi, b := range p.benches() {
		row := mts[bi*len(AblationArities):]
		t.AddRow(b.Name, row[0].IPC, row[1].IPC, row[0].ExtraPerMiss, row[1].ExtraPerMiss)
	}
	return t
}

// AblationHashLatencies are the pipeline depths swept, in cycles.
var AblationHashLatencies = []uint64{20, 80, 160, 320}

// AblationHashLatency sweeps the hash pipeline latency, scaling the
// buffers proportionally as §6.2 prescribes ("longer latency
// implementations could be accommodated ... by adding a proportional
// number of entries in the buffers").
func (p Params) AblationHashLatency() *stats.Table {
	t := stats.NewTable("Ablation: hash latency with proportional buffers (scheme c, 1MB, 64B)",
		"bench", "20cy/4buf", "80cy/16buf", "160cy/32buf", "320cy/64buf")
	var pts []point
	for _, b := range p.benches() {
		for _, lat := range AblationHashLatencies {
			lat := lat
			pts = append(pts, point{b, func(c *core.Config) {
				schemeCfg(core.SchemeCached)(c)
				c.HashLatency = lat
				c.HashBuffers = int(lat / 5)
			}})
		}
	}
	mts := p.runAll(pts)
	for bi, b := range p.benches() {
		row := []interface{}{b.Name}
		for i := range AblationHashLatencies {
			row = append(row, mts[bi*len(AblationHashLatencies)+i].IPC)
		}
		t.AddRow(row...)
	}
	return t
}

// AblationAssocs are the L2 associativities swept.
var AblationAssocs = []int{1, 2, 4, 8}

// AblationAssoc sweeps L2 associativity for base and c: contention between
// hash and data lines is a replacement phenomenon, so higher associativity
// softens it.
func (p Params) AblationAssoc() *stats.Table {
	t := stats.NewTable("Ablation: L2 associativity (1MB, 64B), IPC base/c per way count",
		"bench", "1-way c/base", "2-way c/base", "4-way c/base", "8-way c/base")
	var pts []point
	for _, b := range p.benches() {
		for _, ways := range AblationAssocs {
			for _, s := range []core.Scheme{core.SchemeBase, core.SchemeCached} {
				ways, s := ways, s
				pts = append(pts, point{b, func(c *core.Config) {
					schemeCfg(s)(c)
					c.L2Ways = ways
				}})
			}
		}
	}
	mts := p.runAll(pts)
	for bi, b := range p.benches() {
		row := []interface{}{b.Name}
		for wi := range AblationAssocs {
			pair := mts[(bi*len(AblationAssocs)+wi)*2:]
			row = append(row, fmt.Sprintf("%.3f", pair[1].IPC/pair[0].IPC))
		}
		t.AddRow(row...)
	}
	return t
}

// AblationProtectedSizes are the protected-region sizes swept.
var AblationProtectedSizes = []uint64{256 << 20, 1 << 30, 4 << 30, 16 << 30}

// AblationTreeDepth sweeps the protected-region size: the naive scheme's
// extra reads grow with log N (the tree deepens), while the cached
// scheme's stay flat — the core scaling argument of §5.3.
func (p Params) AblationTreeDepth() *stats.Table {
	t := stats.NewTable("Ablation: protected size vs extra reads per miss (256MB..16GB, 1MB L2)",
		"bench", "naive 256MB", "naive 1GB", "naive 4GB", "naive 16GB",
		"c 256MB", "c 1GB", "c 4GB", "c 16GB")
	var pts []point
	for _, b := range p.benches() {
		for _, s := range []core.Scheme{core.SchemeNaive, core.SchemeCached} {
			for _, sz := range AblationProtectedSizes {
				s, sz := s, sz
				pts = append(pts, point{b, func(c *core.Config) {
					schemeCfg(s)(c)
					c.ProtectedBytes = sz
				}})
			}
		}
	}
	mts := p.runAll(pts)
	perBench := 2 * len(AblationProtectedSizes)
	for bi, b := range p.benches() {
		row := []interface{}{b.Name}
		for i := 0; i < perBench; i++ {
			row = append(row, mts[bi*perBench+i].ExtraPerMiss)
		}
		t.AddRow(row...)
	}
	return t
}
