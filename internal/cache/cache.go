// Package cache implements the set-associative caches of the simulated
// memory hierarchy: L1 instruction, L1 data and the unified L2 the hash
// machinery integrates with.
//
// Caches are write-back, write-allocate, with true LRU replacement. Each
// line carries a traffic class (program data vs hash-tree node) so the
// harness can report the program-data miss rate of Figure 4 and the cache
// pollution analysis of §6.4.1. The L2 is data-bearing: lines hold their
// actual bytes, which is what makes cached hash-tree nodes trustworthy
// on-chip roots in the integrity engines.
package cache

import "fmt"

// Class labels the contents of a line.
type Class int

const (
	// Data is ordinary program data (or instructions).
	Data Class = iota
	// Hash is a hash-tree node chunk cached by the c/m/i schemes.
	Hash
	numClasses
)

// String returns "data" or "hash".
func (c Class) String() string {
	switch c {
	case Data:
		return "data"
	case Hash:
		return "hash"
	}
	return "unknown"
}

// Config describes a cache's geometry.
type Config struct {
	Name      string // for error messages and stat dumps
	Size      int    // total bytes; must be Ways*BlockSize*Sets
	Ways      int    // associativity
	BlockSize int    // line size in bytes; power of two
	// DataBearing controls whether lines store their bytes. Timing-only
	// caches (the L1s) leave it false; the L2 sets it so the integrity
	// machinery can treat cached chunks as trusted on-chip values.
	DataBearing bool
}

// Line is one cache line. Data is nil in timing-only caches.
type Line struct {
	Addr  uint64 // block-aligned address
	Data  []byte
	Class Class
	Valid bool
	Dirty bool
	lru   uint64
}

// Stats counts cache events, split by traffic class.
type Stats struct {
	Accesses   [2]uint64 // reads per class
	Misses     [2]uint64
	Writes     [2]uint64 // write accesses per class
	WriteMiss  [2]uint64
	Evictions  [2]uint64
	WriteBacks [2]uint64 // dirty evictions
}

// MissRate returns the read+write miss rate for a class.
func (s *Stats) MissRate(c Class) float64 {
	acc := s.Accesses[c] + s.Writes[c]
	if acc == 0 {
		return 0
	}
	return float64(s.Misses[c]+s.WriteMiss[c]) / float64(acc)
}

// Cache is a set-associative write-back cache.
type Cache struct {
	cfg    Config
	sets   [][]Line
	shift  uint // log2(BlockSize)
	mask   uint64
	clock  uint64 // LRU timestamp source
	nsets  int
	Stat   Stats
	filled int
	// filledClass tracks residency per traffic class so telemetry can
	// report how much of the L2 the hash tree occupies (§6.4.1).
	filledClass [numClasses]int
}

// New builds a cache. It panics on an inconsistent geometry, which is a
// programming error in the caller's configuration code.
func New(cfg Config) *Cache {
	if cfg.BlockSize <= 0 || cfg.BlockSize&(cfg.BlockSize-1) != 0 {
		panic(fmt.Sprintf("cache %s: block size %d not a positive power of two", cfg.Name, cfg.BlockSize))
	}
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: ways %d", cfg.Name, cfg.Ways))
	}
	if cfg.Size%(cfg.BlockSize*cfg.Ways) != 0 {
		panic(fmt.Sprintf("cache %s: size %d not divisible by ways*block", cfg.Name, cfg.Size))
	}
	nsets := cfg.Size / (cfg.BlockSize * cfg.Ways)
	if nsets == 0 || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a positive power of two", cfg.Name, nsets))
	}
	c := &Cache{cfg: cfg, nsets: nsets}
	// One flat backing array sliced per set: a large L2 has thousands of
	// sets, and simulation sweeps construct thousands of machines, so the
	// per-set allocations dominated machine-construction cost.
	lines := make([]Line, nsets*cfg.Ways)
	c.sets = make([][]Line, nsets)
	for i := range c.sets {
		c.sets[i] = lines[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	for bs := cfg.BlockSize; bs > 1; bs >>= 1 {
		c.shift++
	}
	c.mask = uint64(nsets - 1)
	return c
}

// Config returns the cache's geometry.
func (c *Cache) Config() Config { return c.cfg }

// BlockAddr returns addr rounded down to its block boundary.
func (c *Cache) BlockAddr(addr uint64) uint64 { return addr &^ (uint64(c.cfg.BlockSize) - 1) }

func (c *Cache) set(addr uint64) []Line { return c.sets[(addr>>c.shift)&c.mask] }

// Probe returns the line holding addr, updating LRU, or nil on miss.
// It records no statistics; use Read/Write for accounted accesses.
func (c *Cache) Probe(addr uint64) *Line {
	ba := c.BlockAddr(addr)
	set := c.set(ba)
	for i := range set {
		if set[i].Valid && set[i].Addr == ba {
			c.clock++
			set[i].lru = c.clock
			return &set[i]
		}
	}
	return nil
}

// Peek returns the line holding addr without touching LRU or statistics.
func (c *Cache) Peek(addr uint64) *Line {
	ba := c.BlockAddr(addr)
	set := c.set(ba)
	for i := range set {
		if set[i].Valid && set[i].Addr == ba {
			return &set[i]
		}
	}
	return nil
}

// Read performs an accounted read access and returns the hit line or nil.
func (c *Cache) Read(addr uint64, class Class) *Line {
	c.Stat.Accesses[class]++
	ln := c.Probe(addr)
	if ln == nil {
		c.Stat.Misses[class]++
	}
	return ln
}

// Write performs an accounted write access. On hit the line is marked
// dirty and returned; on miss it returns nil and the caller is expected to
// run the write-allocate path (fill then mark dirty).
func (c *Cache) Write(addr uint64, class Class) *Line {
	c.Stat.Writes[class]++
	ln := c.Probe(addr)
	if ln == nil {
		c.Stat.WriteMiss[class]++
		return nil
	}
	c.reclass(ln, class)
	ln.Dirty = true
	return ln
}

// reclass moves a resident line to a new traffic class, keeping the
// per-class residency counters in step so the later eviction decrements
// the class the line actually holds. Leaving the stale class in place
// made ResidentLinesClass drift and could drive filledClass negative.
func (c *Cache) reclass(ln *Line, class Class) {
	if ln.Class == class {
		return
	}
	c.filledClass[ln.Class]--
	c.filledClass[class]++
	ln.Class = class
}

// Fill inserts a block, evicting the set's LRU line if necessary. It
// returns a copy of the evicted line (Valid false if the set had room).
// data is retained only in data-bearing caches, where it is copied.
func (c *Cache) Fill(addr uint64, class Class, data []byte) Line {
	ba := c.BlockAddr(addr)
	set := c.set(ba)
	// The resident-refill scan must cover the whole set before a victim is
	// chosen: an Invalidate hole sitting at a lower way than the resident
	// line would otherwise become the victim and the set would hold two
	// lines for the same block.
	for i := range set {
		if set[i].Valid && set[i].Addr == ba {
			// Refill of a resident line: refresh contents in place.
			if c.cfg.DataBearing && data != nil {
				copy(set[i].Data, data)
			}
			c.reclass(&set[i], class)
			c.clock++
			set[i].lru = c.clock
			return Line{}
		}
	}
	victim := 0
	for i := range set {
		if !set[i].Valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	evicted := set[victim]
	if evicted.Valid {
		c.Stat.Evictions[evicted.Class]++
		if evicted.Dirty {
			c.Stat.WriteBacks[evicted.Class]++
		}
		c.filledClass[evicted.Class]--
		// The caller takes ownership of the victim's data buffer: the slot
		// below receives a brand-new buffer, so no alias to the evicted
		// bytes remains inside the cache.
	} else {
		c.filled++
	}
	c.filledClass[class]++
	c.clock++
	nl := Line{Addr: ba, Class: class, Valid: true, lru: c.clock}
	if c.cfg.DataBearing {
		nl.Data = make([]byte, c.cfg.BlockSize)
		if data != nil {
			copy(nl.Data, data)
		}
	}
	set[victim] = nl
	return evicted
}

// Invalidate drops the line holding addr, returning a copy of it (Valid
// false if absent). The caller owns any dirty data.
func (c *Cache) Invalidate(addr uint64) Line {
	ba := c.BlockAddr(addr)
	set := c.set(ba)
	for i := range set {
		if set[i].Valid && set[i].Addr == ba {
			ln := set[i]
			set[i] = Line{}
			c.filled--
			c.filledClass[ln.Class]--
			return ln
		}
	}
	return Line{}
}

// DirtyLines returns copies of every dirty resident line, in no particular
// order. Used by the initialization procedure's cache flush (§5.7.2).
func (c *Cache) DirtyLines() []Line {
	var out []Line
	for _, set := range c.sets {
		for i := range set {
			if set[i].Valid && set[i].Dirty {
				ln := set[i]
				if ln.Data != nil {
					d := make([]byte, len(ln.Data))
					copy(d, ln.Data)
					ln.Data = d
				}
				out = append(out, ln)
			}
		}
	}
	return out
}

// Clean marks the line holding addr as clean, if present.
func (c *Cache) Clean(addr uint64) {
	if ln := c.Peek(addr); ln != nil {
		ln.Dirty = false
	}
}

// ResidentLines returns the number of valid lines.
func (c *Cache) ResidentLines() int { return c.filled }

// ResidentLinesClass returns the number of valid lines holding the given
// traffic class.
func (c *Cache) ResidentLinesClass(class Class) int { return c.filledClass[class] }

// Sets returns the number of sets (exported for tests and doc output).
func (c *Cache) Sets() int { return c.nsets }

// ResetStats zeroes the event counters (contents are untouched) for
// post-warm-up measurement.
func (c *Cache) ResetStats() { c.Stat = Stats{} }
