package cache

import (
	"bytes"
	"testing"
)

func newTest(t *testing.T, size, ways, block int, data bool) *Cache {
	t.Helper()
	return New(Config{Name: "test", Size: size, Ways: ways, BlockSize: block, DataBearing: data})
}

func TestGeometry(t *testing.T) {
	c := newTest(t, 1024, 2, 64, false)
	if c.Sets() != 8 {
		t.Errorf("Sets = %d, want 8", c.Sets())
	}
	if c.BlockAddr(0x1234) != 0x1200 {
		t.Errorf("BlockAddr = %#x", c.BlockAddr(0x1234))
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []Config{
		{Size: 1024, Ways: 2, BlockSize: 48},    // not a power of two
		{Size: 1024, Ways: 0, BlockSize: 64},    // zero ways
		{Size: 1000, Ways: 2, BlockSize: 64},    // size not divisible
		{Size: 3 * 128, Ways: 3, BlockSize: 64}, // sets not a power of two (3/3 -> ok?) size 384/192=2... adjust
	}
	cases[3] = Config{Size: 64 * 2 * 3, Ways: 2, BlockSize: 64} // 3 sets
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New(%+v) did not panic", i, cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestReadMissFillHit(t *testing.T) {
	c := newTest(t, 1024, 2, 64, false)
	if c.Read(0x100, Data) != nil {
		t.Fatal("cold read hit")
	}
	c.Fill(0x100, Data, nil)
	ln := c.Read(0x13F, Data) // same block
	if ln == nil {
		t.Fatal("read after fill missed")
	}
	if ln.Addr != 0x100 {
		t.Errorf("line addr %#x", ln.Addr)
	}
	if c.Stat.Accesses[Data] != 2 || c.Stat.Misses[Data] != 1 {
		t.Errorf("stats: %+v", c.Stat)
	}
}

func TestWriteMissThenAllocate(t *testing.T) {
	c := newTest(t, 1024, 2, 64, false)
	if c.Write(0x200, Data) != nil {
		t.Fatal("write hit on empty cache")
	}
	c.Fill(0x200, Data, nil)
	ln := c.Write(0x200, Data)
	if ln == nil || !ln.Dirty {
		t.Fatal("write after allocate should hit and dirty the line")
	}
	if c.Stat.WriteMiss[Data] != 1 || c.Stat.Writes[Data] != 2 {
		t.Errorf("stats: %+v", c.Stat)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := newTest(t, 2*64, 2, 64, false) // one set, two ways
	c.Fill(0x000, Data, nil)
	c.Fill(0x040, Data, nil)
	c.Read(0x000, Data) // touch A so B is LRU
	ev := c.Fill(0x080, Data, nil)
	if !ev.Valid || ev.Addr != 0x040 {
		t.Fatalf("evicted %#x (valid %v), want 0x40", ev.Addr, ev.Valid)
	}
	if c.Peek(0x000) == nil || c.Peek(0x080) == nil {
		t.Error("wrong lines resident")
	}
}

func TestDirtyEvictionCarriesData(t *testing.T) {
	c := newTest(t, 2*64, 2, 64, true)
	data := bytes.Repeat([]byte{0xAB}, 64)
	c.Fill(0x000, Data, data)
	if ln := c.Write(0x000, Data); ln == nil {
		t.Fatal("write missed")
	}
	c.Fill(0x040, Data, nil)
	ev := c.Fill(0x080, Data, nil) // evicts 0x000 (LRU)
	if !ev.Valid || !ev.Dirty || ev.Addr != 0 {
		t.Fatalf("eviction: %+v", ev)
	}
	if !bytes.Equal(ev.Data, data) {
		t.Error("evicted line lost its data")
	}
	// The returned copy must not alias the new resident line.
	ev.Data[0] = 0x00
	c.Fill(0x000, Data, data)
	if ln := c.Peek(0x000); ln != nil && ln.Data[0] != 0xAB {
		t.Error("evicted copy aliases cache storage")
	}
}

func TestFillRefreshResident(t *testing.T) {
	c := newTest(t, 1024, 2, 64, true)
	c.Fill(0x100, Data, bytes.Repeat([]byte{1}, 64))
	ev := c.Fill(0x100, Data, bytes.Repeat([]byte{2}, 64))
	if ev.Valid {
		t.Error("refill of resident line evicted something")
	}
	if ln := c.Peek(0x100); ln.Data[0] != 2 {
		t.Error("refill did not refresh contents")
	}
}

func TestInvalidate(t *testing.T) {
	c := newTest(t, 1024, 2, 64, false)
	c.Fill(0x100, Hash, nil)
	ln := c.Invalidate(0x100)
	if !ln.Valid || ln.Class != Hash {
		t.Fatalf("invalidate returned %+v", ln)
	}
	if c.Peek(0x100) != nil {
		t.Error("line still resident after invalidate")
	}
	if c.ResidentLines() != 0 {
		t.Errorf("ResidentLines = %d", c.ResidentLines())
	}
	if c.Invalidate(0x999).Valid {
		t.Error("invalidating absent line returned valid")
	}
}

func TestDirtyLinesAndClean(t *testing.T) {
	c := newTest(t, 1024, 2, 64, false)
	c.Fill(0x000, Data, nil)
	c.Fill(0x040, Data, nil)
	c.Write(0x000, Data)
	dirty := c.DirtyLines()
	if len(dirty) != 1 || dirty[0].Addr != 0 {
		t.Fatalf("DirtyLines = %+v", dirty)
	}
	c.Clean(0x000)
	if len(c.DirtyLines()) != 0 {
		t.Error("Clean did not clean")
	}
}

func TestPerClassStats(t *testing.T) {
	c := newTest(t, 1024, 2, 64, false)
	c.Read(0x000, Data)
	c.Read(0x040, Hash)
	c.Fill(0x000, Data, nil)
	c.Fill(0x040, Hash, nil)
	c.Read(0x000, Data)
	c.Read(0x040, Hash)
	if c.Stat.Misses[Data] != 1 || c.Stat.Misses[Hash] != 1 {
		t.Errorf("misses: %+v", c.Stat)
	}
	if c.Stat.MissRate(Data) != 0.5 {
		t.Errorf("data miss rate %f", c.Stat.MissRate(Data))
	}
	var empty Stats
	if empty.MissRate(Data) != 0 {
		t.Error("empty MissRate should be 0")
	}
}

func TestTagOnlyHasNoData(t *testing.T) {
	c := newTest(t, 1024, 2, 64, false)
	c.Fill(0x100, Data, bytes.Repeat([]byte{7}, 64))
	if ln := c.Peek(0x100); ln.Data != nil {
		t.Error("tag-only cache retained data")
	}
}

func TestResetStats(t *testing.T) {
	c := newTest(t, 1024, 2, 64, false)
	c.Read(0, Data)
	c.ResetStats()
	if c.Stat.Accesses[Data] != 0 {
		t.Error("ResetStats failed")
	}
}
