package cache

import (
	"sort"
	"testing"
	"testing/quick"
)

// refCache is a deliberately simple reference model of a set-associative
// LRU cache: per-set slices ordered by recency.
type refCache struct {
	block uint64
	sets  int
	ways  int
	lru   map[int][]uint64 // set -> block addrs, most recent first
}

func newRef(size, ways, block int) *refCache {
	return &refCache{
		block: uint64(block),
		sets:  size / (ways * block),
		ways:  ways,
		lru:   make(map[int][]uint64),
	}
}

func (r *refCache) setOf(addr uint64) int {
	return int((addr / r.block) % uint64(r.sets))
}

func (r *refCache) touch(addr uint64) bool { // returns hit
	ba := addr &^ (r.block - 1)
	s := r.setOf(ba)
	lst := r.lru[s]
	for i, a := range lst {
		if a == ba {
			lst = append([]uint64{ba}, append(lst[:i], lst[i+1:]...)...)
			r.lru[s] = lst
			return true
		}
	}
	return false
}

func (r *refCache) fill(addr uint64) (evicted uint64, hadVictim bool) {
	ba := addr &^ (r.block - 1)
	s := r.setOf(ba)
	lst := r.lru[s]
	for _, a := range lst {
		if a == ba {
			return 0, false // already resident
		}
	}
	lst = append([]uint64{ba}, lst...)
	if len(lst) > r.ways {
		evicted = lst[len(lst)-1]
		lst = lst[:len(lst)-1]
		hadVictim = true
	}
	r.lru[s] = lst
	return evicted, hadVictim
}

func (r *refCache) resident() []uint64 {
	var all []uint64
	for _, lst := range r.lru {
		all = append(all, lst...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

// TestAgainstReferenceModel drives the cache and the reference model with
// the same random access stream and checks hit/miss decisions, evictions
// and the final resident set agree exactly.
func TestAgainstReferenceModel(t *testing.T) {
	const size, ways, block = 4096, 4, 64
	check := func(ops []uint16) bool {
		c := New(Config{Name: "dut", Size: size, Ways: ways, BlockSize: block})
		r := newRef(size, ways, block)
		for _, op := range ops {
			addr := uint64(op) * 8
			hitDUT := c.Probe(addr) != nil
			hitRef := r.touch(addr)
			if hitDUT != hitRef {
				t.Logf("addr %#x: dut hit=%v ref hit=%v", addr, hitDUT, hitRef)
				return false
			}
			if !hitDUT {
				ev := c.Fill(addr, Data, nil)
				// Probing on miss did not touch ref LRU; fill in ref.
				evRef, hadRef := r.fill(addr)
				if ev.Valid != hadRef {
					t.Logf("addr %#x: dut evicted=%v ref evicted=%v", addr, ev.Valid, hadRef)
					return false
				}
				if ev.Valid && ev.Addr != evRef {
					t.Logf("addr %#x: dut victim %#x ref victim %#x", addr, ev.Addr, evRef)
					return false
				}
			}
		}
		// Final resident sets must match.
		var dut []uint64
		for _, a := range r.resident() {
			if c.Peek(a) == nil {
				t.Logf("ref-resident %#x missing from dut", a)
				return false
			}
			dut = append(dut, a)
		}
		return len(dut) == c.ResidentLines()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
