package cache

import (
	"testing"

	"memverify/internal/trace"
)

// TestFillRefillReclasses pins the resident-refill fix: refilling a
// resident line under a different traffic class must move the line (and
// the residency counters) to the new class.
func TestFillRefillReclasses(t *testing.T) {
	c := newTest(t, 1024, 2, 64, false)
	c.Fill(0x100, Data, nil)
	if c.ResidentLinesClass(Data) != 1 || c.ResidentLinesClass(Hash) != 0 {
		t.Fatalf("after data fill: data %d hash %d", c.ResidentLinesClass(Data), c.ResidentLinesClass(Hash))
	}
	c.Fill(0x100, Hash, nil)
	if c.ResidentLinesClass(Data) != 0 || c.ResidentLinesClass(Hash) != 1 {
		t.Errorf("after hash refill: data %d hash %d", c.ResidentLinesClass(Data), c.ResidentLinesClass(Hash))
	}
	if ln := c.Peek(0x100); ln.Class != Hash {
		t.Errorf("refilled line class = %v, want hash", ln.Class)
	}
	// The eviction must decrement the class the line now holds.
	c.Invalidate(0x100)
	if c.ResidentLinesClass(Data) != 0 || c.ResidentLinesClass(Hash) != 0 {
		t.Errorf("after invalidate: data %d hash %d", c.ResidentLinesClass(Data), c.ResidentLinesClass(Hash))
	}
}

// TestWriteHitReclasses pins the same fix on the write-hit path.
func TestWriteHitReclasses(t *testing.T) {
	c := newTest(t, 1024, 2, 64, false)
	c.Fill(0x100, Hash, nil)
	if c.Write(0x100, Data) == nil {
		t.Fatal("write after fill missed")
	}
	if c.ResidentLinesClass(Data) != 1 || c.ResidentLinesClass(Hash) != 0 {
		t.Errorf("after data write hit: data %d hash %d", c.ResidentLinesClass(Data), c.ResidentLinesClass(Hash))
	}
	if ln := c.Peek(0x100); ln.Class != Data {
		t.Errorf("written line class = %v, want data", ln.Class)
	}
}

// TestClassAccountingInvariant is the enforced residency invariant:
// whatever randomized sequence of Fill/Write/Invalidate/refill runs, the
// per-class residency counters must stay non-negative, sum to the filled
// count, match a brute-force recount of the sets, and agree with an
// independent model of which class last touched each resident line. The
// model is maintained from the cache's own return values (evictions,
// invalidations, write hits), never from its internal counters, so a
// stale-class bug cannot hide. Seeds follow the fuzz-style seeding of the
// core/integrity property tests.
func TestClassAccountingInvariant(t *testing.T) {
	for _, seed := range []uint64{1, 7, 2026} {
		for _, dataBearing := range []bool{false, true} {
			rng := trace.NewRNG(seed)
			c := newTest(t, 8*64, 2, 64, dataBearing) // 4 sets x 2 ways: evictions early and often
			model := map[uint64]Class{}               // resident block addr -> class of last touch
			addrs := make([]uint64, 32)               // 4x capacity so refills and evictions mix
			for i := range addrs {
				addrs[i] = uint64(i * 64)
			}
			var block []byte
			if dataBearing {
				block = make([]byte, 64)
			}

			for op := 0; op < 4000; op++ {
				addr := addrs[rng.Intn(len(addrs))]
				class := Class(rng.Intn(int(numClasses)))
				switch rng.Intn(4) {
				case 0, 1: // Fill: fresh insert, refill of a resident line, or eviction
					ev := c.Fill(addr, class, block)
					if ev.Valid {
						if model[ev.Addr] != ev.Class {
							t.Fatalf("seed %d op %d: evicted %#x as %v, model says %v",
								seed, op, ev.Addr, ev.Class, model[ev.Addr])
						}
						delete(model, ev.Addr)
					}
					model[addr] = class
				case 2: // Write: reclasses on a hit, a pure miss otherwise
					if c.Write(addr, class) != nil {
						model[addr] = class
					}
				case 3:
					if ln := c.Invalidate(addr); ln.Valid {
						delete(model, addr)
					}
				}

				if got := c.ResidentLines(); got != len(model) {
					t.Fatalf("seed %d op %d: ResidentLines %d, model %d", seed, op, got, len(model))
				}
				sum := 0
				for cl := Class(0); cl < numClasses; cl++ {
					n := c.ResidentLinesClass(cl)
					if n < 0 {
						t.Fatalf("seed %d op %d: filledClass[%v] went negative (%d)", seed, op, cl, n)
					}
					sum += n
				}
				if sum != c.ResidentLines() {
					t.Fatalf("seed %d op %d: sum(filledClass) %d != filled %d", seed, op, sum, c.ResidentLines())
				}
				// Brute-force recount of the sets, checked against both the
				// counters and the model's view of every line's class.
				var recount [numClasses]int
				for _, set := range c.sets {
					for i := range set {
						if !set[i].Valid {
							continue
						}
						recount[set[i].Class]++
						if want, ok := model[set[i].Addr]; !ok {
							t.Fatalf("seed %d op %d: line %#x resident but not in model", seed, op, set[i].Addr)
						} else if set[i].Class != want {
							t.Fatalf("seed %d op %d: line %#x class %v, last touch was %v",
								seed, op, set[i].Addr, set[i].Class, want)
						}
					}
				}
				for cl := Class(0); cl < numClasses; cl++ {
					if recount[cl] != c.ResidentLinesClass(cl) {
						t.Fatalf("seed %d op %d: filledClass[%v] = %d, recount %d",
							seed, op, cl, c.ResidentLinesClass(cl), recount[cl])
					}
				}
			}
		}
	}
}
