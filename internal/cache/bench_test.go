package cache

import "testing"

func BenchmarkReadHit(b *testing.B) {
	c := New(Config{Name: "b", Size: 1 << 20, Ways: 4, BlockSize: 64})
	c.Fill(0x1000, Data, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Read(0x1000, Data)
	}
}

func BenchmarkFillEvict(b *testing.B) {
	c := New(Config{Name: "b", Size: 64 << 10, Ways: 4, BlockSize: 64})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Fill(uint64(i)*64, Data, nil)
	}
}

func BenchmarkFillEvictDataBearing(b *testing.B) {
	c := New(Config{Name: "b", Size: 64 << 10, Ways: 4, BlockSize: 64, DataBearing: true})
	data := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		c.Fill(uint64(i)*64, Data, data)
	}
}

// vcCache builds the dedicated verification cache's geometry: small (64
// lines), 4-way, data-bearing, holding only Hash-class tree nodes.
func vcCache() *Cache {
	return New(Config{Name: "VC", Size: 64 * 64, Ways: 4, BlockSize: 64, DataBearing: true})
}

func BenchmarkVerifyCacheFill(b *testing.B) {
	c := vcCache()
	data := make([]byte, 64)
	b.SetBytes(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Fill(uint64(i)*64, Hash, data)
	}
}

func BenchmarkVerifyCacheWriteHit(b *testing.B) {
	c := vcCache()
	c.Fill(0x1000, Hash, make([]byte, 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Write(0x1000, Hash)
	}
}

// BenchmarkVerifyCacheLookup measures Peek on a resident line — the
// residency probe the ancestor prefetcher runs on every prediction.
func BenchmarkVerifyCacheLookup(b *testing.B) {
	c := vcCache()
	c.Fill(0x1000, Hash, make([]byte, 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c.Peek(0x1000) == nil {
			b.Fatal("resident line not found")
		}
	}
}

// BenchmarkVerifyCacheLookupMiss is the same probe when the prediction's
// ancestor is absent (the case that leads to an issued prefetch).
func BenchmarkVerifyCacheLookupMiss(b *testing.B) {
	c := vcCache()
	c.Fill(0x1000, Hash, make([]byte, 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c.Peek(0x2000) != nil {
			b.Fatal("absent line found")
		}
	}
}
