package cache

import "testing"

func BenchmarkReadHit(b *testing.B) {
	c := New(Config{Name: "b", Size: 1 << 20, Ways: 4, BlockSize: 64})
	c.Fill(0x1000, Data, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Read(0x1000, Data)
	}
}

func BenchmarkFillEvict(b *testing.B) {
	c := New(Config{Name: "b", Size: 64 << 10, Ways: 4, BlockSize: 64})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Fill(uint64(i)*64, Data, nil)
	}
}

func BenchmarkFillEvictDataBearing(b *testing.B) {
	c := New(Config{Name: "b", Size: 64 << 10, Ways: 4, BlockSize: 64, DataBearing: true})
	data := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		c.Fill(uint64(i)*64, Data, data)
	}
}
