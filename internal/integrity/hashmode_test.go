package integrity

import (
	"testing"
)

func TestParseHashMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want HashMode
	}{
		{"", HashFull}, {"full", HashFull}, {"timing", HashTiming}, {"memo", HashMemo},
	} {
		got, err := ParseHashMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseHashMode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if got.String() == "" {
			t.Errorf("HashMode(%v).String() empty", got)
		}
	}
	if _, err := ParseHashMode("bogus"); err == nil {
		t.Error("ParseHashMode accepted an unknown mode")
	}
}

func TestHashExecNilIsFull(t *testing.T) {
	var x *HashExec
	if x.Mode() != HashFull {
		t.Errorf("nil exec mode = %v, want HashFull", x.Mode())
	}
	if x.MemoActive() {
		t.Error("nil exec claims an active memo")
	}
	// All mutators must be nil-safe no-ops.
	x.AdversaryAttached()
	x.Bump(1)
	if _, ok := x.Lookup(1); ok {
		t.Error("nil exec served a memo entry")
	}
}

func TestHashExecGenerations(t *testing.T) {
	x := NewHashExec(HashMemo)
	digest := []byte{1, 2, 3, 4, 5, 6, 7, 8}

	if _, ok := x.Lookup(3); ok {
		t.Fatal("lookup hit before any install")
	}
	x.Install(3, x.Gen(3), digest)
	got, ok := x.Lookup(3)
	if !ok || string(got) != string(digest) {
		t.Fatalf("lookup after install = %x, %v", got, ok)
	}

	// Any write invalidates: the entry stays installed but is never served.
	x.Bump(3)
	if _, ok := x.Lookup(3); ok {
		t.Fatal("stale-generation entry served after Bump")
	}

	// Installing at a generation captured before an interleaved Bump must
	// leave the entry unservable (the image it digests is already stale).
	g := x.Gen(5)
	x.Bump(5)
	x.Install(5, g, digest)
	if _, ok := x.Lookup(5); ok {
		t.Fatal("entry installed at a stale generation was served")
	}

	// Reinstalling at the current generation serves again.
	x.Install(3, x.Gen(3), digest)
	if _, ok := x.Lookup(3); !ok {
		t.Fatal("reinstalled entry not served")
	}

	if x.MemoHits() == 0 || x.MemoMisses() == 0 {
		t.Errorf("instrumentation not counting: hits=%d misses=%d", x.MemoHits(), x.MemoMisses())
	}
}

func TestHashExecOversizeDigestDropped(t *testing.T) {
	x := NewHashExec(HashMemo)
	big := make([]byte, maxRecordBytes+1)
	x.Install(1, x.Gen(1), big)
	if _, ok := x.Lookup(1); ok {
		t.Fatal("oversize digest was memoized")
	}
}

func TestAdversaryDisablesMemo(t *testing.T) {
	x := NewHashExec(HashMemo)
	x.Install(1, x.Gen(1), []byte{9})
	x.AdversaryAttached()
	if x.MemoActive() {
		t.Fatal("memo still active after adversary attached")
	}
	if _, ok := x.Lookup(1); ok {
		t.Fatal("memo served after adversary attached")
	}
}

func TestAdversaryPanicsTimingExec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AdversaryAttached did not panic in timing mode")
		}
	}()
	NewHashExec(HashTiming).AdversaryAttached()
}

// TestTimingConstructorsRejectAdversary pins the construction-time guard:
// every tree engine refuses to build a timing-only system whose memory is
// already wrapped in an adversary (the rig always interposes one).
func TestTimingConstructorsRejectAdversary(t *testing.T) {
	for _, scheme := range []string{"c", "naive", "i"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			cfg := defaultRig(scheme)
			cfg.exec = NewHashExec(HashTiming)
			defer func() {
				if recover() == nil {
					t.Fatalf("scheme %s built a timing-only engine over an adversary", scheme)
				}
			}()
			newRig(t, cfg)
		})
	}
}

// TestMemoRigDetectsTampering corrupts memory under memo execution. The
// rig's adversary means AdversaryAttached has turned the memo off, so
// detection must be exactly as good as full mode.
func TestMemoRigDetectsTampering(t *testing.T) {
	for _, scheme := range protectedSchemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			cfg := defaultRig(scheme)
			cfg.exec = NewHashExec(HashMemo)
			cfg.exec.AdversaryAttached()
			r := newRig(t, cfg)
			ba := r.dataBlocks()[3]
			data := make([]byte, r.sys.BlockSize())
			for i := range data {
				data[i] = byte(i + 1)
			}
			r.write(ba, data)
			r.flush()
			for _, b := range r.dataBlocks() {
				r.sys.L2.Invalidate(b)
			}
			r.adv.Corrupt(ba+1, 0x01)
			before := r.sys.Stat.Violations
			r.read(ba)
			if r.sys.Stat.Violations == before {
				t.Fatalf("scheme %s missed tampering in memo mode", scheme)
			}
		})
	}
}

// TestMemoRigMatchesFull replays the same random workload in full and memo
// execution over inert memory and requires identical statistics, an
// identical root, and (memo mode) a stored tree that still covers memory.
func TestMemoRigMatchesFull(t *testing.T) {
	for _, scheme := range protectedSchemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			run := func(x *HashExec) (Stats, string, *rig) {
				cfg := defaultRig(scheme)
				cfg.exec = x
				cfg.inert = true // no adversary, so the memo stays active
				r := newRig(t, cfg)
				r.randomWorkload(400)
				r.flush()
				return r.sys.Stat, string(r.sys.Root), r
			}
			fullStat, fullRoot, _ := run(NewHashExec(HashFull))
			memoStat, memoRoot, mr := run(NewHashExec(HashMemo))
			if fullStat != memoStat {
				t.Errorf("stats diverge:\nfull %+v\nmemo %+v", fullStat, memoStat)
			}
			if fullRoot != memoRoot {
				t.Errorf("roots diverge: full %x memo %x", fullRoot, memoRoot)
			}
			if mr.sys.Exec.MemoHits() == 0 {
				t.Error("memo run never served a memoized digest")
			}
			if err := mr.verifyMemoryTree(); err != nil {
				t.Errorf("memo-mode stored tree does not cover memory: %v", err)
			}
		})
	}
}
