package integrity

import (
	"bytes"
	"fmt"

	"memverify/internal/bus"
	"memverify/internal/cache"
	"memverify/internal/telemetry"
)

// noDemand marks a chunk fetch with no processor-demanded block (hash-slot
// fetches and write-back completion reads).
const noDemand = ^uint64(0)

// Cached implements the paper's integrated hash-tree/cache schemes: `c`
// (§5.3, one cache block per chunk) and `m` (§5.4, a chunk spanning
// several blocks). Tree nodes are cached in the L2; a cached node is
// trusted on-chip state and acts as the root of a smaller tree, so a miss
// stops recursing as soon as it finds an ancestor's hash resident.
//
// Re-entrancy: cache fills evict victims whose write-backs recurse back
// into the engine, so a verification can run in the middle of another
// chunk's write-back. Two disciplines keep the §5.3 invariant ("stored
// records cover chunks as they are in memory") observable at every
// re-entrant point: accesses to a line sitting in the write buffer are
// forwarded to it (never re-fetched from memory), and within one
// operation the stored record is fetched before the chunk image is
// composed, so both come from the same quiescent state.
//
// The incremental scheme `i` embeds Cached and replaces the write-back and
// verification hooks.
type Cached struct {
	sys    *System
	scheme string

	// verify checks a chunk's memory image against its stored record.
	verify func(c uint64, img, stored []byte) bool
	// record computes the stored record for a chunk's new image on
	// write-back. The result may live in scratch storage that the next
	// engine operation reuses: callers that hold it across re-entrant
	// work must copy it first.
	record func(c uint64, img []byte) []byte
	// evictFn processes a dirty victim; Incr overrides it with the
	// constant-work incremental write-back.
	evictFn func(now uint64, line cache.Line) uint64

	// stFree pools chunkState values across write-backs; a free list
	// because write-backs nest.
	stFree []*chunkState
}

// NewCached builds the c scheme (one block per chunk) or the m scheme
// (several blocks per chunk), depending on the layout's chunk size.
func NewCached(sys *System) *Cached {
	if sys.Layout == nil {
		panic("integrity: cached engine requires a tree layout")
	}
	if sys.Layout.ChunkSize%sys.BlockSize() != 0 {
		panic(fmt.Sprintf("integrity: chunk size %d not a multiple of block size %d",
			sys.Layout.ChunkSize, sys.BlockSize()))
	}
	sys.guardExecMode()
	e := &Cached{sys: sys}
	if sys.chunkBlocks() == 1 {
		e.scheme = "c"
	} else {
		e.scheme = "m"
	}
	e.verify = func(_ uint64, img, stored []byte) bool {
		return bytes.Equal(sys.hashChunkScratch(img), stored)
	}
	e.record = func(_ uint64, img []byte) []byte { return sys.hashChunkScratch(img) }
	if sys.skipDigests() {
		e.applyTimingMode()
	}
	e.evictFn = e.evictCached
	return e
}

// applyTimingMode swaps the digest closures for their timing-only forms:
// checks pass without touching the image and records are the deterministic
// hashalg.Tag stand-in. Shared with the embedded Incr engine.
func (e *Cached) applyTimingMode() {
	s := e.sys
	e.verify = func(uint64, []byte, []byte) bool { return true }
	e.record = func(c uint64, _ []byte) []byte { return s.timingTag(c) }
}

// Name implements Engine.
func (e *Cached) Name() string { return e.scheme }

// System implements Engine.
func (e *Cached) System() *System { return e.sys }

// InitializeTree computes every stored record bottom-up from current
// memory contents and installs the root, entering secure mode. Under the
// timing-only unit nothing ever compares stored records, so the walk —
// the dominant construction cost on large protected regions — is skipped
// entirely; in memo mode every record computed here is memoized, so the
// first demand read of an untouched chunk already reuses its digest.
func (e *Cached) InitializeTree() {
	s := e.sys
	if s.skipDigests() {
		s.Root = append(s.Root[:0], s.timingTag(0)...)
		return
	}
	img := make([]byte, s.Layout.ChunkSize)
	for c := s.Layout.TotalChunks - 1; ; c-- {
		s.Mem.Read(s.Layout.ChunkAddr(c), img)
		rec := e.record(c, img)
		s.Exec.Install(c, s.Exec.Gen(c), rec)
		if addr, ok := s.Layout.HashAddr(c); ok {
			s.Mem.Write(addr, rec)
			s.Exec.Bump(s.Layout.ChunkOf(addr))
		} else {
			s.Root = append(s.Root[:0], rec...)
		}
		if c == 0 {
			return
		}
	}
}

// ReadBlock implements Engine: the ReadAndCheck algorithm of §5.3/§5.4 for
// a processor-demanded block.
func (e *Cached) ReadBlock(now uint64, addr uint64) uint64 {
	s := e.sys
	if !s.Protected(addr) {
		return unprotectedRead(s, now, addr, e.evictFn)
	}
	c := s.Layout.ChunkOf(addr)
	before := s.Stat.ExtraBlockReads
	img, ready, _ := e.readAndCheckChunk(now, c, s.L2.BlockAddr(addr))
	e.fillChunk(ready, c, img, s.L2.BlockAddr(addr))
	s.putImg(img)
	s.observePath(s.Stat.ExtraBlockReads - before)
	e.maybePrefetch(ready, c)
	return ready
}

// maybePrefetch feeds one demand chunk access to the prefetch engine and,
// when the pattern table predicts the next chunk, pulls that chunk's
// uncached tree ancestors into the cache through the ordinary verified
// fetch path (which terminates at the first resident ancestor, preserving
// the cached-implies-verified invariant). The prediction is dropped — never
// queued — when the target's record block is already resident, the
// in-flight budget is full, or the bus is busy: prefetches are the lowest
// priority traffic and must not delay demand work. The demand read's
// completion time is returned unchanged by the caller; prefetch transfers
// occupy the bus like any other traffic, which is what makes the model
// honest, but they never alter delivered data or the tree.
func (e *Cached) maybePrefetch(now uint64, c uint64) {
	s := e.sys
	if s.Prefetch == nil || s.prefetching {
		return
	}
	pred, ok := s.Prefetch.Observe(now, c)
	if !ok || pred >= s.Layout.TotalChunks || s.Layout.IsInterior(pred) {
		return
	}
	slotAddr, ok := s.Layout.HashAddr(pred)
	if !ok {
		return // single-chunk tree: the root register is the only ancestor
	}
	parent := s.Layout.ChunkOf(slotAddr)
	if s.cacheFor(parent).Peek(s.L2.BlockAddr(slotAddr)) != nil {
		s.Prefetch.DropResident()
		return
	}
	if s.Prefetch.BudgetFull(now) {
		s.Prefetch.DropBudget()
		return
	}
	if s.DRAM.Bus.FreeAt() > now+s.Prefetch.MaxBusWait() {
		s.Prefetch.DropBus()
		return
	}
	s.prefetching = true
	val, done := e.readValue(now, slotAddr, s.Layout.HashSize)
	s.putRec(val)
	s.prefetching = false
	s.Prefetch.Launched(pred, done)
	// Clamp the telemetry span into a monotonic, non-overlapping sequence:
	// the out-of-order core hands the engine non-monotonic `now` values,
	// and one prefetch lane should render as one clean Perfetto row.
	begin, end := now, done
	if begin < s.prefLastEnd {
		begin = s.prefLastEnd
	}
	if end < begin {
		end = begin
	}
	s.prefLastEnd = end
	s.Tel.Emit(telemetry.TrackPrefetch, telemetry.KindPrefetch, begin, end, pred, parent)
}

// Evict implements Engine.
func (e *Cached) Evict(now uint64, line cache.Line) uint64 {
	return e.evictFn(now, line)
}

// AllocateFullWrite implements Engine. With one block per chunk the old
// contents contribute nothing to the next stored hash, so the fetch and
// check are skipped entirely (§5.3's optimization); multi-block chunks
// still need the sibling data authenticated and take the ordinary path.
func (e *Cached) AllocateFullWrite(now uint64, addr uint64) uint64 {
	s := e.sys
	if s.Protected(addr) && s.chunkBlocks() > 1 {
		done := e.ReadBlock(now, addr)
		ba := s.L2.BlockAddr(addr)
		for try := 0; s.L2.Write(ba, cache.Data) == nil; try++ {
			if try == fillRetries {
				panic("integrity: write-allocate failed to cache the block")
			}
			done = e.ReadBlock(done, addr)
		}
		return done
	}
	return allocateFullWrite(s, now, addr, e.evictFn)
}

// Flush implements Engine.
func (e *Cached) Flush(now uint64) uint64 {
	return flushVia(e.sys, now, e.evictFn)
}

// readAndCheckChunk is the ReadAndCheckChunk algorithm: fetch the chunk's
// stored record through the cache (recursing on a miss), assemble the
// chunk's memory image — clean cached blocks come from the cache, the
// rest from external memory — return data for speculative use as soon as
// it arrives, and hash/compare in the background.
//
// The stored record is fetched first: its recursion is the only place
// other write-backs can run, so composing the image afterwards guarantees
// record and image are snapshots of the same state.
//
// demandBA, when not noDemand, is the block address the processor is
// waiting on: it is issued as its own critical-word-first read and `ready`
// is its arrival. Otherwise `ready` is when the whole image is available.
//
// The returned image comes from the system's scratch pool; the caller must
// release it with putImg once it is done with it.
func (e *Cached) readAndCheckChunk(now uint64, c uint64, demandBA uint64) (img []byte, ready, checkDone uint64) {
	s := e.sys
	s.enter()
	defer s.leave()

	bs := s.BlockSize()
	base := s.Layout.ChunkAddr(c)
	_, bclass := s.classFor(c)
	start := now
	extrasBefore := s.Stat.ExtraBlockReads

	// 1. Fetch the chunk's stored record (through the cache; recursive).
	// The root lives in the secure register and is aliased, not copied;
	// every other record arrives in a pooled buffer released after the
	// compare below.
	var stored []byte
	storedPooled := false
	storedReady := start
	if c == 0 {
		stored = s.Root
	} else {
		slotAddr, _ := s.Layout.HashAddr(c)
		stored, storedReady = e.readValue(start, slotAddr, s.Layout.HashSize)
		storedPooled = true
	}

	// 2. Compose the memory image; no recursion from here to the compare.
	// The dirty generation is captured with the image so a memoized digest
	// is only reused if it still describes exactly these bytes.
	img, memBlocks := s.composeImage(c)
	imgGen := s.Exec.Gen(c)

	demandIdx := -1
	if demandBA != noDemand {
		demandIdx = int((demandBA - base) / uint64(bs))
	}
	ready = start + s.L2Latency
	dataDone := start
	extra := 0
	for _, i := range memBlocks {
		if i == demandIdx {
			crit, done := s.DRAM.Read(start, bs, bclass)
			s.Stat.DemandBlockReads++
			ready = crit
			if done > dataDone {
				dataDone = done
			}
		} else {
			extra++
		}
	}
	if extra > 0 {
		_, done := s.DRAM.Read(start, extra*bs, bus.Hash)
		s.countExtra(uint64(extra))
		if done > dataDone {
			dataDone = done
		}
	}
	if demandIdx < 0 {
		ready = dataDone
	}

	// 3. The arriving chunk enters the read buffer (Figure 2a) and stays
	// until its check completes. A full buffer back-pressures the
	// transfer: delivery — including the speculative copy to the
	// processor — waits for a free entry. The speculative pipeline
	// decouples delivery from buffer admission: the check is still delayed
	// by buffer pressure (bufStart), but the processor only stalls when
	// the bounded pending window fills.
	idx, bufStart := s.Unit.ReadBuf.Acquire(dataDone)
	if bufStart > dataDone && bufStart > ready && !s.Speculative {
		ready = bufStart
	}
	hdone := s.Unit.Hash(bufStart, s.Layout.ChunkSize)

	checkDone = hdone
	if storedReady > checkDone {
		checkDone = storedReady
	}
	if s.CheckReads {
		s.Stat.Checks++
		if s.Functional {
			// A memoized digest of the chunk's current memory image stands
			// in for rehashing it; a successful full verification installs
			// the stored record so the next clean access skips the hash.
			failed := false
			if memod, ok := s.Exec.Lookup(c); ok {
				failed = !bytes.Equal(memod, stored)
			} else if !e.verify(c, img, stored) {
				failed = true
			} else {
				s.Exec.Install(c, imgGen, stored)
			}
			if failed {
				detail := "stored record does not match memory image"
				if s.Policy == PolicyRetry {
					passed, rdone := s.retryVerify(checkDone, c, true, func(probe []byte) bool {
						ok := e.verify(c, probe, stored)
						if ok {
							// The re-fetch verified clean, so the first
							// transfer was the faulty one: deliver (and
							// later cache) the clean bytes, as re-issued
							// hardware would.
							copy(img, probe)
						}
						return ok
					})
					if rdone > checkDone {
						checkDone = rdone
					}
					if passed {
						failed = false // transient fault; the re-read is clean
					} else {
						detail = "stored record does not match memory image (persistent after re-fetch)"
					}
				}
				if failed {
					s.violation(checkDone, c, e.scheme, detail)
				}
			}
		}
	}
	if s.Trace != nil {
		s.Trace("verify", c)
	}
	if storedPooled {
		s.putRec(stored)
	}
	s.Unit.ReadBuf.Release(idx, checkDone)
	s.noteCheck(checkDone)
	if s.Speculative && s.Pending != nil && demandBA != noDemand {
		if floor := s.Pending.Admit(ready, checkDone, false); floor > ready {
			ready = floor
		}
		if s.Tel != nil {
			end := checkDone
			if end < ready {
				end = ready
			}
			s.Tel.Emit(telemetry.TrackSpec, telemetry.KindSpecCheck,
				ready, end, c, s.Pending.Outstanding(ready))
		}
	}
	s.Tel.Emit(telemetry.TrackIntegrity, telemetry.KindTreeWalk,
		now, checkDone, c, s.Stat.ExtraBlockReads-extrasBefore)
	if demandBA != noDemand && s.CheckReads {
		s.observeVerifyOverhead(ready, checkDone)
	}
	return img, ready, checkDone
}

// readValue is the internal ReadAndCheck for a record-sized value at addr:
// served from the L2 when its block is resident (a cached tree node is
// trusted), forwarded from the write buffer when its line is mid-eviction,
// and otherwise fetched, verified and cached recursively. The value is
// extracted from the freshly cached line *after* the recursion, so nested
// write-backs that ran meanwhile are reflected.
//
// The returned value lives in a pooled record buffer (nil in timing-only
// mode); the caller releases it with putRec.
func (e *Cached) readValue(now uint64, addr uint64, size int) ([]byte, uint64) {
	s := e.sys
	ba := s.L2.BlockAddr(addr)
	c := s.Layout.ChunkOf(addr)
	cclass, _ := s.classFor(c)
	for attempt := 0; ; attempt++ {
		if ln := s.cacheFor(c).Read(ba, cclass); ln != nil {
			if !s.Functional {
				return nil, now + s.L2Latency
			}
			off := addr - ba
			return append(s.getRec(size), ln.Data[off:off+uint64(size)]...), now + s.L2Latency
		}
		if data, ok := s.inflightData(ba); ok {
			if data == nil {
				return nil, now + s.L2Latency
			}
			off := addr - ba
			return append(s.getRec(size), data[off:off+uint64(size)]...), now + s.L2Latency
		}
		img, ready, _ := e.readAndCheckChunk(now, c, noDemand)
		e.fillChunk(ready, c, img, ba)
		s.putImg(img)
		now = ready
		if attempt > 4 {
			panic("integrity: slot block will not stay resident (engine bug)")
		}
	}
}

// writeValue is the Write operation of §5.3 applied to a stored record:
// modify it directly in the cache on a hit or in the write buffer when the
// line is mid-eviction; otherwise write-allocate by fetching and verifying
// the containing chunk first. allocated reports whether the slow
// (recursive) path ran, which callers use to detect that other write-backs
// may have interleaved.
func (e *Cached) writeValue(now uint64, addr uint64, val []byte) (done uint64, allocated bool) {
	s := e.sys
	ba := s.L2.BlockAddr(addr)
	c := s.Layout.ChunkOf(addr)
	cclass, _ := s.classFor(c)
	done = now
	ln := s.cacheFor(c).Write(ba, cclass)
	if ln == nil {
		if data, ok := s.inflightData(ba); ok {
			if s.Trace != nil {
				s.Trace("writeValue-forward", addr)
			}
			if data != nil && val != nil {
				copy(data[addr-ba:], val)
			}
			return now + s.L2Latency, false
		}
		allocated = true
		for try := 0; ln == nil; try++ {
			if try == fillRetries {
				panic("integrity: write-allocate failed to cache the slot block (engine bug)")
			}
			img, ready, _ := e.readAndCheckChunk(now, c, noDemand)
			e.fillChunk(ready, c, img, ba)
			done = ready
			ln = s.cacheFor(c).Write(ba, cclass)
		}
	}
	if s.Trace != nil {
		mode := uint64(0)
		if allocated {
			mode = 1
		}
		s.Trace("writeValue", addr, mode)
	}
	if ln.Data != nil && val != nil {
		copy(ln.Data[addr-ba:], val)
	}
	return done + s.L2Latency, allocated
}

// fillChunk installs the uncached blocks of chunk c into the cache,
// handling dirty victims through the engine's write-back. Blocks whose
// lines are sitting in the write buffer are skipped: re-inserting them
// would resurrect a stale copy.
//
// A dirty victim's write-back (and anything nested under it) may write
// blocks of this very chunk to memory — a dirty sibling in the same set
// is a routine victim in the small dedicated verification cache. The
// image was verified against memory as it stood at compose time, so once
// a write-back has run the remaining blocks can no longer be installed
// as clean copies: a clean line must equal memory, and a stale install
// here poisons every later verification of the chunk. The fill therefore
// stops at the first dirty eviction; skipped blocks simply miss and take
// the verified fetch path again. The block the caller actually needs
// resident (prio, or noDemand) goes first, so it is installed before any
// write-back can cut the fill short.
func (e *Cached) fillChunk(at uint64, c uint64, img []byte, prio uint64) {
	s := e.sys
	bs := s.BlockSize()
	base := s.Layout.ChunkAddr(c)
	cclass, _ := s.classFor(c)
	target := s.cacheFor(c)
	k := s.chunkBlocks()
	prioIdx := -1
	if prio != noDemand {
		prioIdx = int((prio - base) / uint64(bs))
	}
	for n := 0; n < k; n++ {
		i := n
		if prioIdx >= 0 {
			switch {
			case n == 0:
				i = prioIdx
			case n <= prioIdx:
				i = n - 1
			}
		}
		ba := base + uint64(i*bs)
		if target.Peek(ba) != nil {
			continue
		}
		if _, ok := s.inflightData(ba); ok {
			continue
		}
		var data []byte
		if img != nil {
			data = img[i*bs : (i+1)*bs]
		}
		if ev := target.Fill(ba, cclass, data); ev.Valid && ev.Dirty {
			e.evictFn(at, ev)
			return
		}
	}
}

// chunkState is one write-back's view of its chunk: which blocks are in
// hand (cached siblings plus the evicted line) and which are dirty. It is
// indexed by chunk-relative block number and pooled per write-back frame:
// a map here cost one allocation per eviction on the simulator's hottest
// path.
type chunkState struct {
	data    [][]byte // per-block live bytes; meaningful only where present
	present []bool
	dirty   []int
	count   int // number of blocks present
}

// reset prepares the state for a chunk of k blocks.
func (st *chunkState) reset(k int) {
	if cap(st.present) < k {
		st.data = make([][]byte, k)
		st.present = make([]bool, k)
	}
	st.data = st.data[:k]
	st.present = st.present[:k]
	for i := 0; i < k; i++ {
		st.data[i] = nil
		st.present[i] = false
	}
	st.dirty = st.dirty[:0]
	st.count = 0
}

// getState acquires a pooled chunkState; release with putState.
func (e *Cached) getState() *chunkState {
	if n := len(e.stFree); n > 0 {
		st := e.stFree[n-1]
		e.stFree = e.stFree[:n-1]
		return st
	}
	return &chunkState{}
}

func (e *Cached) putState(st *chunkState) { e.stFree = append(e.stFree, st) }

// collectChunk gathers the live chunk state around an evicted line into st.
func (e *Cached) collectChunk(st *chunkState, c uint64, evIdx int, evData []byte) {
	s := e.sys
	bs := s.BlockSize()
	base := s.Layout.ChunkAddr(c)
	st.reset(s.chunkBlocks())
	st.data[evIdx] = evData
	st.present[evIdx] = true
	st.dirty = append(st.dirty, evIdx)
	st.count = 1
	for i := 0; i < s.chunkBlocks(); i++ {
		if i == evIdx {
			continue
		}
		ba := base + uint64(i*bs)
		if ln := s.cacheFor(c).Peek(ba); ln != nil {
			st.data[i] = ln.Data
			st.present[i] = true
			st.count++
			if ln.Dirty {
				st.dirty = append(st.dirty, i)
			}
		}
	}
}

// evictCached is the Write-Back algorithm of §5.3/§5.4: assemble the
// chunk's new image (evicted line, cached siblings, and — after a
// verified completion read — memory for anything missing), hash it,
// update the parent record through the cache, and write the dirty blocks
// out. If the record update had to write-allocate (running other
// write-backs in the process), the image is re-collected and the record
// recomputed, so the final record and the written data always agree.
func (e *Cached) evictCached(now uint64, line cache.Line) uint64 {
	s := e.sys
	if !s.Protected(line.Addr) {
		return unprotectedEvict(s, now, line)
	}
	s.enter()
	defer s.leave()
	s.enterWriteBack()
	defer s.leaveWriteBack()
	s.Stat.Evictions++

	bs := s.BlockSize()
	c := s.Layout.ChunkOf(line.Addr)
	base := s.Layout.ChunkAddr(c)
	cclass, bclass := s.classFor(c)
	evIdx := int((line.Addr - base) / uint64(bs))

	// The line now sits in the write buffer; forward accesses to it.
	s.registerInflight(line.Addr, line.Data)
	defer s.unregisterInflight(line.Addr)

	idx, start := s.Unit.WriteBuf.Acquire(now)

	// §5.4 step 1: if the chunk is not entirely in hand, fetch and verify
	// the missing data. (For the c scheme k==1, so this never triggers.)
	st := e.getState()
	defer e.putState(st)
	e.collectChunk(st, c, evIdx, line.Data)
	dataReady := start
	if st.count < s.chunkBlocks() {
		img, ready, _ := e.readAndCheckChunk(start, c, noDemand)
		s.putImg(img)
		dataReady = ready
	}

	// Compute the record over the new image and install it in the parent.
	// A write-allocate inside writeValue can run nested write-backs that
	// change this chunk (a sibling evicted, a slot in this chunk updated
	// through forwarding), so re-collect and recompute until the update
	// lands without recursion.
	hdone := s.Unit.Hash(dataReady, s.Layout.ChunkSize)
	done := hdone
	var newImg []byte
	var recBuf []byte
	if s.Functional {
		newImg = s.getImg()
		defer s.putImg(newImg)
		// rec must survive the re-entrant writeValue below, so it gets its
		// own pooled buffer rather than the shared digest scratch.
		recBuf = s.getRec(s.Layout.HashSize)
	}
	for attempt := 0; ; attempt++ {
		e.collectChunk(st, c, evIdx, line.Data)
		if s.Functional {
			// Compose the new image from live state: in-hand blocks carry
			// the freshest on-chip values; everything else is whatever is
			// in memory right now (already authenticated by the completion
			// read above, or written by an interleaved nested write-back).
			for i := 0; i < s.chunkBlocks(); i++ {
				if st.present[i] {
					copy(newImg[i*bs:(i+1)*bs], st.data[i])
				} else {
					s.Mem.Read(base+uint64(i*bs), newImg[i*bs:(i+1)*bs])
				}
			}
		}
		var rec []byte
		if s.Functional {
			recBuf = append(recBuf[:0], e.record(c, newImg)...)
			rec = recBuf
		}
		if c == 0 {
			if rec != nil {
				s.Root = append(s.Root[:0], rec...)
			}
			break
		}
		slotAddr, _ := s.Layout.HashAddr(c)
		d, allocated := e.writeValue(done, slotAddr, rec)
		if d > done {
			done = d
		}
		if !allocated {
			break
		}
		if attempt > 8 {
			panic("integrity: record update will not converge (engine bug)")
		}
	}

	// Write the dirty blocks to memory and mark cached copies clean; the
	// record installed above covers exactly these bytes.
	for _, i := range st.dirty {
		ba := base + uint64(i*bs)
		if s.Functional {
			if i == evIdx {
				s.Mem.Write(ba, line.Data)
			} else {
				s.Mem.Write(ba, newImg[i*bs:(i+1)*bs])
			}
			s.Exec.Bump(c)
		}
		if d := s.DRAM.Write(hdone, bs, bclass); d > done {
			done = d
		}
		if cclass == cache.Hash {
			s.Stat.HashBlockWrites++
		} else {
			s.Stat.DataBlockWrites++
		}
		if i != evIdx {
			s.cacheFor(c).Clean(ba)
		}
	}
	// Memory now equals newImg and recBuf is its record: memoize so clean
	// re-reads (and the next eviction's completion read) skip the rehash.
	if recBuf != nil {
		s.Exec.Install(c, s.Exec.Gen(c), recBuf)
	}
	s.putRec(recBuf)
	s.Unit.WriteBuf.Release(idx, done)
	s.noteCheck(done)
	s.Tel.Emit(telemetry.TrackIntegrity, telemetry.KindWriteBack, now, done, c, 0)
	if s.Speculative && s.Pending != nil {
		// Async commit: release the processor at write-buffer acceptance;
		// the record update drains behind it, bounded by the pending window.
		return s.Pending.Admit(start, done, true)
	}
	return done
}

// unprotectedRead services a block outside the protected region: plain
// DRAM fill, no verification (the ReadWithoutChecking path of §5.7.1).
// Dirty victims — which may themselves be protected — are routed through
// the owning engine's write-back.
func unprotectedRead(s *System, now uint64, addr uint64, evict func(uint64, cache.Line) uint64) uint64 {
	bs := s.BlockSize()
	ba := s.L2.BlockAddr(addr)
	var data []byte
	if s.Functional {
		data = make([]byte, bs)
		s.Mem.Read(ba, data)
	}
	s.Stat.DemandBlockReads++
	critical, _ := s.DRAM.Read(now, bs, bus.Data)
	if ev := s.L2.Fill(ba, cache.Data, data); ev.Valid && ev.Dirty {
		evict(critical, ev)
	}
	return critical
}

// unprotectedEvict writes back a block outside the protected region. In
// speculative mode the write is posted: the processor continues at once
// while the transfer drains, and barriers wait for it via noteCheck.
func unprotectedEvict(s *System, now uint64, line cache.Line) uint64 {
	s.Stat.Evictions++
	s.Stat.DataBlockWrites++
	if s.Functional {
		s.Mem.Write(line.Addr, line.Data)
	}
	d := s.DRAM.Write(now, s.BlockSize(), bus.Data)
	if s.Speculative {
		s.noteCheck(d)
		return now
	}
	return d
}
