package integrity

import (
	"bytes"
	"fmt"
	"testing"

	"memverify/internal/bus"
	"memverify/internal/cache"
	"memverify/internal/dram"
	"memverify/internal/hashalg"
	"memverify/internal/htree"
	"memverify/internal/mem"
	"memverify/internal/trace"
)

// rig is a minimal functional machine around one engine: an L2, real
// memory behind an adversary, and a driver that reads and writes blocks
// the way the processor-side hierarchy does.
type rig struct {
	t      testing.TB
	sys    *System
	engine Engine
	adv    *mem.Adversary
	now    uint64
	rng    *trace.RNG
	shadow map[uint64][]byte // expected contents per block address
}

type rigConfig struct {
	scheme      string // "c", "m", "i", "naive", "base"
	protected   uint64
	l2Size      int
	blockSize   int
	chunkBlocks int
	exec        *HashExec // nil = full digest execution
	inert       bool      // wire memory without the adversary wrapper
}

func defaultRig(scheme string) rigConfig {
	cb := 1
	if scheme == "m" || scheme == "i" {
		cb = 2
	}
	return rigConfig{scheme: scheme, protected: 64 << 10, l2Size: 8 << 10, blockSize: 64, chunkBlocks: cb}
}

func newRig(t testing.TB, cfg rigConfig) *rig {
	t.Helper()
	b := bus.New(8, 5)
	d := dram.New(80, b)
	backing := mem.NewSparse()
	adv := mem.NewAdversary(backing)

	layout, err := htree.NewLayout(cfg.blockSize*cfg.chunkBlocks, 16, cfg.protected)
	if err != nil {
		t.Fatal(err)
	}
	l2 := cache.New(cache.Config{
		Name: "L2", Size: cfg.l2Size, Ways: 4, BlockSize: cfg.blockSize, DataBearing: true,
	})
	var sysMem mem.Memory = adv
	if cfg.inert {
		sysMem = backing
	}
	sys := &System{
		L2:         l2,
		Mem:        sysMem,
		DRAM:       d,
		Unit:       NewHashUnit(80, 3.2, 16, 16),
		Layout:     layout,
		Alg:        hashalg.MD5{},
		L2Latency:  10,
		CheckReads: true,
		Functional: true,
		Exec:       cfg.exec,
	}
	r := &rig{t: t, sys: sys, adv: adv, rng: trace.NewRNG(42), shadow: make(map[uint64][]byte)}
	switch cfg.scheme {
	case "c", "m":
		r.engine = NewCached(sys)
	case "i":
		r.engine = NewIncr(sys, []byte("rig key"))
	case "naive":
		r.engine = NewNaive(sys)
	case "base":
		r.engine = NewBase(sys)
	default:
		t.Fatalf("unknown scheme %q", cfg.scheme)
	}

	// Deterministic initial data contents, then build the tree.
	buf := make([]byte, layout.Size()-layout.DataStart())
	for i := range buf {
		buf[i] = byte(i*131 + 7)
	}
	backing.Write(layout.DataStart(), buf)
	if init, ok := r.engine.(TreeInitializer); ok && cfg.scheme != "base" {
		init.InitializeTree()
	}
	// Seed the shadow with initial contents.
	for ba := layout.DataStart(); ba < layout.Size(); ba += uint64(cfg.blockSize) {
		blk := make([]byte, cfg.blockSize)
		backing.Read(ba, blk)
		r.shadow[ba] = blk
	}
	return r
}

// dataBlocks returns the protected data block addresses.
func (r *rig) dataBlocks() []uint64 {
	var out []uint64
	bs := uint64(r.sys.BlockSize())
	for ba := r.sys.Layout.DataStart(); ba < r.sys.Layout.Size(); ba += bs {
		out = append(out, ba)
	}
	return out
}

// read performs a processor read of the block at addr and returns its
// bytes as the processor would see them.
func (r *rig) read(addr uint64) []byte {
	r.now += 3
	ba := r.sys.L2.BlockAddr(addr)
	ln := r.sys.L2.Read(ba, cache.Data)
	if ln == nil {
		r.now = r.engine.ReadBlock(r.now, ba)
		ln = r.sys.L2.Peek(ba)
		if ln == nil {
			r.t.Fatalf("block %#x not resident after ReadBlock", ba)
		}
	}
	return append([]byte(nil), ln.Data...)
}

// write performs a processor write of the whole block at addr.
func (r *rig) write(addr uint64, data []byte) {
	r.now += 3
	ba := r.sys.L2.BlockAddr(addr)
	ln := r.sys.L2.Write(ba, cache.Data)
	if ln == nil {
		r.now = r.engine.ReadBlock(r.now, ba)
		ln = r.sys.L2.Write(ba, cache.Data)
		if ln == nil {
			r.t.Fatalf("block %#x not resident after write-allocate", ba)
		}
	}
	copy(ln.Data, data)
	r.shadow[ba] = append([]byte(nil), data...)
}

func (r *rig) flush() { r.now = r.engine.Flush(r.now) }

// randomWorkload drives n random block reads and writes over the
// protected region.
func (r *rig) randomWorkload(n int) {
	blocks := r.dataBlocks()
	for i := 0; i < n; i++ {
		ba := blocks[r.rng.Intn(len(blocks))]
		if r.rng.Float64() < 0.4 {
			data := make([]byte, r.sys.BlockSize())
			for j := range data {
				data[j] = byte(r.rng.Uint64())
			}
			r.write(ba, data)
		} else {
			got := r.read(ba)
			if want := r.shadow[ba]; !bytes.Equal(got, want) {
				r.t.Fatalf("read %#x returned wrong data", ba)
			}
		}
	}
}

// verifyMemoryTree checks the full stored tree against memory contents
// using the reference implementation (for hash schemes) or the MAC (for
// the incremental scheme). Call after flush, when every stored record must
// cover memory exactly.
func (r *rig) verifyMemoryTree() error {
	if inc, ok := r.engine.(*Incr); ok {
		l := r.sys.Layout
		for c := uint64(0); c < l.TotalChunks; c++ {
			img := make([]byte, l.ChunkSize)
			r.sys.Mem.Read(l.ChunkAddr(c), img)
			var rec []byte
			if addr, ok := l.HashAddr(c); ok {
				rec = make([]byte, 16)
				r.sys.Mem.Read(addr, rec)
			} else {
				rec = r.sys.Root
			}
			var tag [16]byte
			copy(tag[:], rec)
			if !inc.MAC().Verify(tag, inc.splitBlocks(img)) {
				return fmt.Errorf("chunk %d MAC does not cover memory", c)
			}
		}
		return nil
	}
	tr := htree.NewTree(r.sys.Layout, r.sys.Alg, r.sys.Mem)
	tr.SetRoot(r.sys.Root)
	return tr.VerifyAll()
}

// protectedSchemes are the schemes under test everywhere.
var protectedSchemes = []string{"c", "m", "i", "naive"}
