package integrity

import "testing"

func TestPendingAdmitWindowFloor(t *testing.T) {
	p := NewPendingChecks(2)
	if got := p.Admit(10, 100, false); got != 10 {
		t.Errorf("first admission floored delivery to %d, want 10", got)
	}
	if got := p.Admit(20, 200, false); got != 20 {
		t.Errorf("second admission floored delivery to %d, want 20", got)
	}
	// Window full: the third admission waits for the oldest check (100).
	if got := p.Admit(30, 300, false); got != 100 {
		t.Errorf("full-window admission returned %d, want 100", got)
	}
	if p.Stat.WindowStalls != 1 || p.Stat.WindowStallCycles != 70 {
		t.Errorf("stall counters = %d/%d cycles, want 1/70",
			p.Stat.WindowStalls, p.Stat.WindowStallCycles)
	}
	// Oldest is now 200; an admission already past it does not stall.
	if got := p.Admit(250, 400, false); got != 250 {
		t.Errorf("post-drain admission returned %d, want 250", got)
	}
	if p.Stat.Checks != 4 {
		t.Errorf("admitted checks = %d, want 4", p.Stat.Checks)
	}
}

func TestPendingOutstandingAndOverlap(t *testing.T) {
	p := NewPendingChecks(4)
	p.Admit(0, 50, false)
	p.Admit(10, 80, true)
	if n := p.Outstanding(40); n != 2 {
		t.Errorf("outstanding at 40 = %d, want 2", n)
	}
	if n := p.Outstanding(60); n != 1 {
		t.Errorf("outstanding at 60 = %d, want 1", n)
	}
	if p.Stat.OverlapCycles != 50+70 {
		t.Errorf("overlap cycles = %d, want 120", p.Stat.OverlapCycles)
	}
	if p.Stat.Checks != 1 || p.Stat.Writebacks != 1 {
		t.Errorf("checks/writebacks = %d/%d, want 1/1", p.Stat.Checks, p.Stat.Writebacks)
	}
}

func TestPendingDeferredResolution(t *testing.T) {
	p := NewPendingChecks(4)
	var applied []uint64
	apply := func(v *ViolationError) { applied = append(applied, v.Chunk) }

	p.Defer(&ViolationError{Chunk: 1}, 100)
	p.Defer(&ViolationError{Chunk: 2}, 200)
	p.ResolveUpTo(50, apply)
	if len(applied) != 0 {
		t.Fatalf("violations resolved before their checks completed: %v", applied)
	}
	p.ResolveUpTo(150, apply)
	if len(applied) != 1 || applied[0] != 1 {
		t.Fatalf("resolve up to 150 applied %v, want [1]", applied)
	}
	p.ResolveAll(apply)
	if len(applied) != 2 || applied[1] != 2 {
		t.Fatalf("resolve all applied %v, want [1 2]", applied)
	}
	if p.PendingViolations() != 0 {
		t.Errorf("%d violations still parked after ResolveAll", p.PendingViolations())
	}
	if p.Stat.DeferredViolations != 2 || p.Stat.ResolvedViolations != 2 {
		t.Errorf("deferred/resolved = %d/%d, want 2/2",
			p.Stat.DeferredViolations, p.Stat.ResolvedViolations)
	}
}

func TestPendingCoverLifecycle(t *testing.T) {
	p := NewPendingChecks(2)
	img := []byte{1, 2, 3, 4}
	p.AddCover(7, img, 500)
	img[0] = 0xFF // the pinned copy must not alias the caller's buffer
	got, done, ok := p.Cover(7, 100)
	if !ok || done != 500 || got[0] != 1 {
		t.Fatalf("cover(7) = %v/%d/%v, want pinned copy at done 500", got, done, ok)
	}

	// The slot is recycled after window-depth further admissions.
	p.Admit(0, 10, false)
	p.Admit(0, 20, false)
	if _, _, ok := p.Cover(7, 100); !ok {
		t.Fatal("cover dropped while its slot was still resident")
	}
	p.Admit(0, 30, false)
	if _, _, ok := p.Cover(7, 100); ok {
		t.Fatal("cover survived its slot being recycled")
	}

	p.AddCover(8, []byte{9}, 50)
	p.DropCover(8)
	if _, _, ok := p.Cover(8, 0); ok {
		t.Fatal("cover survived DropCover")
	}

	p.AddCover(9, []byte{9}, 50)
	p.ResolveAll(nil)
	if _, _, ok := p.Cover(9, 0); ok {
		t.Fatal("cover survived the barrier path (ResolveAll)")
	}
}

func TestSpecStatsMerge(t *testing.T) {
	a := SpecStats{Checks: 1, PendingPeak: 3, Coalesced: 2, SavedBlockReads: 10}
	b := SpecStats{Checks: 2, PendingPeak: 5, Coalesced: 1, SavedBlockReads: 4, Barriers: 7}
	a.Merge(&b)
	if a.Checks != 3 || a.PendingPeak != 5 || a.Coalesced != 3 || a.SavedBlockReads != 14 || a.Barriers != 7 {
		t.Errorf("merge produced %+v", a)
	}
}
