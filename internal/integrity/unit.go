// Package integrity implements the paper's contribution: the hash-tree
// memory verification engines (naive, cached `c`, multi-block `m` and
// incremental `i`, plus an unprotected base) together with the hash
// checking/generating unit of Figure 2 — a pipelined hash datapath with
// bounded read and write buffers that sits next to the L2 cache.
package integrity

// BufferPool models a small set of hardware buffer entries (the "hash
// read/write buffer" of Table 1). An entry is acquired when a block enters
// the unit and released when its check or hash generation completes; when
// every entry is busy, new requests are delayed until the earliest release.
//
// Reservations are optimistic: Acquire immediately timestamps the entry at
// its start cycle and Release moves it forward, so recursive verification
// chains (a block's check waiting on its ancestor's fetch) serialize
// through a small pool instead of deadlocking — matching hardware that
// drains the chain through the same entries.
type BufferPool struct {
	busyUntil []uint64
	waits     uint64 // acquisitions that had to wait
	acquired  uint64
}

// NewBufferPool returns a pool with n entries. n must be positive.
func NewBufferPool(n int) *BufferPool {
	if n <= 0 {
		panic("integrity: buffer pool must have at least one entry")
	}
	return &BufferPool{busyUntil: make([]uint64, n)}
}

// Acquire reserves the soonest-free entry for a request arriving at cycle
// now. It returns the entry index and the cycle the reservation begins.
func (p *BufferPool) Acquire(now uint64) (entry int, start uint64) {
	best := 0
	for i, b := range p.busyUntil {
		if b < p.busyUntil[best] {
			best = i
		}
	}
	start = now
	if p.busyUntil[best] > start {
		start = p.busyUntil[best]
		p.waits++
	}
	// Claim the entry for at least one cycle so that simultaneous
	// acquisitions spread over distinct entries instead of all electing
	// the same one.
	p.busyUntil[best] = start + 1
	p.acquired++
	return best, start
}

// Release marks the entry busy until cycle at (monotonically — an earlier
// release never rewinds a later reservation).
func (p *BufferPool) Release(entry int, at uint64) {
	if p.busyUntil[entry] < at {
		p.busyUntil[entry] = at
	}
}

// Size returns the number of entries.
func (p *BufferPool) Size() int { return len(p.busyUntil) }

// Waits returns how many acquisitions were delayed by a full pool.
func (p *BufferPool) Waits() uint64 { return p.waits }

// HashUnit is the timing model of the hash checking/generating logic: a
// pipelined datapath with a fixed result latency and a sustained
// throughput, fed through the read (check) and write (generate) buffers.
type HashUnit struct {
	// Latency is cycles from a chunk entering the pipeline to its digest.
	Latency uint64
	// BytesPerCycle is the sustained hashing throughput (3.2 for the
	// paper's 3.2 GB/s unit on a 1 GHz core).
	BytesPerCycle float64
	// ReadBuf holds incoming blocks awaiting check; WriteBuf holds evicted
	// blocks awaiting hash generation.
	ReadBuf, WriteBuf *BufferPool

	pipeFree uint64
	ops      uint64
	bytes    uint64
}

// NewHashUnit builds a unit with the given latency, throughput and buffer
// sizes.
func NewHashUnit(latency uint64, bytesPerCycle float64, readEntries, writeEntries int) *HashUnit {
	if bytesPerCycle <= 0 {
		panic("integrity: hash throughput must be positive")
	}
	return &HashUnit{
		Latency:       latency,
		BytesPerCycle: bytesPerCycle,
		ReadBuf:       NewBufferPool(readEntries),
		WriteBuf:      NewBufferPool(writeEntries),
	}
}

// Hash schedules hashing of n bytes that may begin no earlier than cycle
// now and returns the cycle the digest is available. Throughput gating is
// pipelined: a chunk occupies the pipe entry stage for n/BytesPerCycle
// cycles while earlier chunks continue downstream.
func (u *HashUnit) Hash(now uint64, n int) (done uint64) {
	occupancy := uint64(float64(n)/u.BytesPerCycle + 0.999999)
	if occupancy == 0 {
		occupancy = 1
	}
	start := now
	if u.pipeFree > start {
		start = u.pipeFree
	}
	u.pipeFree = start + occupancy
	u.ops++
	u.bytes += uint64(n)
	lat := u.Latency
	if occupancy > lat {
		lat = occupancy
	}
	return start + lat
}

// Ops returns the number of hash computations performed.
func (u *HashUnit) Ops() uint64 { return u.ops }

// BytesHashed returns the total bytes pushed through the unit.
func (u *HashUnit) BytesHashed() uint64 { return u.bytes }

// ResetCounters zeroes the unit's operation counters (pipeline and buffer
// schedule state is preserved) for post-warm-up measurement.
func (u *HashUnit) ResetCounters() {
	u.ops, u.bytes = 0, 0
	u.ReadBuf.waits, u.ReadBuf.acquired = 0, 0
	u.WriteBuf.waits, u.WriteBuf.acquired = 0, 0
}
