// Package integrity implements the paper's contribution: the hash-tree
// memory verification engines (naive, cached `c`, multi-block `m` and
// incremental `i`, plus an unprotected base) together with the hash
// checking/generating unit of Figure 2 — a pipelined hash datapath with
// bounded read and write buffers that sits next to the L2 cache.
package integrity

import (
	"fmt"

	"memverify/internal/stats"
	"memverify/internal/telemetry"
)

// BufferPool models a small set of hardware buffer entries (the "hash
// read/write buffer" of Table 1). An entry is acquired when a block enters
// the unit and released when its check or hash generation completes; when
// every entry is busy, new requests are delayed until the earliest release.
//
// Reservations are optimistic: Acquire immediately timestamps the entry at
// its start cycle and Release moves it forward, so recursive verification
// chains (a block's check waiting on its ancestor's fetch) serialize
// through a small pool instead of deadlocking — matching hardware that
// drains the chain through the same entries.
type BufferPool struct {
	busyUntil []uint64
	waits     uint64 // acquisitions that had to wait
	acquired  uint64

	// Occ, when non-nil, observes the number of already-busy entries at
	// each acquisition — the buffer-pressure distribution behind Figure 7.
	Occ *stats.Histogram
}

// NewBufferPool returns a pool with n entries. n must be positive.
func NewBufferPool(n int) *BufferPool {
	if n <= 0 {
		panic("integrity: buffer pool must have at least one entry")
	}
	return &BufferPool{busyUntil: make([]uint64, n)}
}

// Acquire reserves the soonest-free entry for a request arriving at cycle
// now. It returns the entry index and the cycle the reservation begins.
func (p *BufferPool) Acquire(now uint64) (entry int, start uint64) {
	best := 0
	if p.Occ != nil {
		busy := uint64(0)
		for _, b := range p.busyUntil {
			if b > now {
				busy++
			}
		}
		p.Occ.Observe(busy)
	}
	for i, b := range p.busyUntil {
		if b < p.busyUntil[best] {
			best = i
		}
	}
	start = now
	if p.busyUntil[best] > start {
		start = p.busyUntil[best]
		p.waits++
	}
	// Claim the entry for at least one cycle so that simultaneous
	// acquisitions spread over distinct entries instead of all electing
	// the same one.
	p.busyUntil[best] = start + 1
	p.acquired++
	return best, start
}

// Release marks the entry busy until cycle at (monotonically — an earlier
// release never rewinds a later reservation).
func (p *BufferPool) Release(entry int, at uint64) {
	if p.busyUntil[entry] < at {
		p.busyUntil[entry] = at
	}
}

// Size returns the number of entries.
func (p *BufferPool) Size() int { return len(p.busyUntil) }

// Waits returns how many acquisitions were delayed by a full pool.
func (p *BufferPool) Waits() uint64 { return p.waits }

// HashUnit is the timing model of the hash checking/generating logic: a
// pipelined datapath with a fixed result latency and a sustained
// throughput, fed through the read (check) and write (generate) buffers.
type HashUnit struct {
	// Latency is cycles from a chunk entering the pipeline to its digest.
	Latency uint64
	// BytesPerCycle is the sustained hashing throughput (3.2 for the
	// paper's 3.2 GB/s unit on a 1 GHz core).
	BytesPerCycle float64
	// ReadBuf holds incoming blocks awaiting check; WriteBuf holds evicted
	// blocks awaiting hash generation.
	ReadBuf, WriteBuf *BufferPool
	// Tel, when non-nil, receives one hash-job event per Hash call.
	Tel *telemetry.Trace

	pipeFree uint64
	ops      uint64
	bytes    uint64
}

// NewHashUnit builds a unit with the given latency, throughput and buffer
// sizes.
func NewHashUnit(latency uint64, bytesPerCycle float64, readEntries, writeEntries int) *HashUnit {
	if bytesPerCycle <= 0 {
		panic("integrity: hash throughput must be positive")
	}
	return &HashUnit{
		Latency:       latency,
		BytesPerCycle: bytesPerCycle,
		ReadBuf:       NewBufferPool(readEntries),
		WriteBuf:      NewBufferPool(writeEntries),
	}
}

// Hash schedules hashing of n bytes that may begin no earlier than cycle
// now and returns the cycle the digest is available. Throughput gating is
// pipelined: a chunk occupies the pipe entry stage for n/BytesPerCycle
// cycles while earlier chunks continue downstream.
func (u *HashUnit) Hash(now uint64, n int) (done uint64) {
	occupancy := uint64(float64(n)/u.BytesPerCycle + 0.999999)
	if occupancy == 0 {
		occupancy = 1
	}
	start := now
	if u.pipeFree > start {
		start = u.pipeFree
	}
	u.pipeFree = start + occupancy
	u.ops++
	u.bytes += uint64(n)
	lat := u.Latency
	if occupancy > lat {
		lat = occupancy
	}
	u.Tel.Emit(telemetry.TrackHash, telemetry.KindHashJob, start, start+lat, uint64(n), 0)
	return start + lat
}

// Ops returns the number of hash computations performed.
func (u *HashUnit) Ops() uint64 { return u.ops }

// BytesHashed returns the total bytes pushed through the unit.
func (u *HashUnit) BytesHashed() uint64 { return u.bytes }

// ResetCounters zeroes the unit's operation counters (pipeline and buffer
// schedule state is preserved) for post-warm-up measurement.
func (u *HashUnit) ResetCounters() {
	u.ops, u.bytes = 0, 0
	u.ReadBuf.waits, u.ReadBuf.acquired = 0, 0
	u.WriteBuf.waits, u.WriteBuf.acquired = 0, 0
}

// HashMode selects how the hash unit *executes* digests, independently of
// the timing it models. Timing (latency, occupancy, buffer pressure) is
// charged identically in every mode — the modes only decide how much real
// digest arithmetic the simulator performs, the way SimpleScalar separates
// functional from detailed timing simulation.
type HashMode int

const (
	// HashFull computes every digest for real. Required whenever an
	// adversary may tamper with memory; the only mode in which violations
	// can be detected.
	HashFull HashMode = iota
	// HashTiming skips digest computation entirely, substituting the cheap
	// deterministic tag of hashalg.Tag for stored records and treating
	// every check as passing. Legal only while the adversary layer is
	// inert — engine constructors and Machine.Adversary enforce this.
	HashTiming
	// HashMemo computes real digests but memoizes them per chunk under a
	// dirty generation, so clean chunks are never rehashed on the verify
	// and eviction paths. Detection-equivalent to HashFull against an
	// inert memory; automatically bypassed when an adversary attaches.
	HashMemo
)

// String returns the mode's configuration name.
func (m HashMode) String() string {
	switch m {
	case HashFull:
		return "full"
	case HashTiming:
		return "timing"
	case HashMemo:
		return "memo"
	}
	return fmt.Sprintf("HashMode(%d)", int(m))
}

// ParseHashMode maps a configuration string to its mode. The empty string
// is HashFull, so zero-valued configs keep today's behaviour.
func ParseHashMode(s string) (HashMode, error) {
	switch s {
	case "", "full":
		return HashFull, nil
	case "timing":
		return HashTiming, nil
	case "memo":
		return HashMemo, nil
	}
	return HashFull, fmt.Errorf("integrity: unknown hash mode %q (want full, timing or memo)", s)
}

// maxRecordBytes bounds a stored record's length for inline memo storage:
// SHA-1's native 20-byte digest is the largest record any engine stores.
const maxRecordBytes = 20

// memoEntry is one memoized record: the digest of a chunk's memory image,
// tagged with the chunk's dirty generation at the time that image was
// current.
type memoEntry struct {
	gen    uint64
	n      uint8
	digest [maxRecordBytes]byte
}

// HashExec is the digest-execution layer under the engines: it carries the
// selected HashMode and, in HashMemo mode, the generation-tagged memo
// cache. Timing state lives in HashUnit; HashExec never affects modeled
// cycles.
//
// Generations: every engine write to a protected chunk's external-memory
// bytes bumps that chunk's generation (Bump). A memo entry is installed
// with the generation at which its image was read or written (Install) and
// is served only while the generations still match (Lookup), so any
// intervening write — including one from a re-entrant nested write-back —
// silently invalidates the entry instead of serving a stale digest.
//
// Chunk indexes are dense (0..TotalChunks-1), so both tables are flat
// slices grown on demand — tree initialization installs every chunk once,
// and a map here costs more than the hashing it saves.
type HashExec struct {
	mode    HashMode
	memoOff bool

	gen  []uint64
	memo []memoEntry

	hits, misses uint64
}

// NewHashExec returns an execution layer in the given mode.
func NewHashExec(mode HashMode) *HashExec {
	return &HashExec{mode: mode}
}

// ensure grows the tables to cover chunk c. Initialization walks chunks
// top index first, so one growth typically sizes the whole run.
func (x *HashExec) ensure(c uint64) {
	if c < uint64(len(x.gen)) {
		return
	}
	gen := make([]uint64, c+1)
	copy(gen, x.gen)
	x.gen = gen
	memo := make([]memoEntry, c+1)
	copy(memo, x.memo)
	x.memo = memo
}

// Mode returns the configured execution mode. A nil receiver reads as
// HashFull so a zero-valued System keeps today's behaviour.
func (x *HashExec) Mode() HashMode {
	if x == nil {
		return HashFull
	}
	return x.mode
}

// MemoActive reports whether memo lookups are being served.
func (x *HashExec) MemoActive() bool {
	return x != nil && x.mode == HashMemo && !x.memoOff
}

// AdversaryAttached tells the execution layer that memory is no longer
// inert. Timing-only execution cannot coexist with an adversary — its
// checks are vacuous — so it panics; memo execution degrades to full
// recomputation, because tampering bypasses the generation bookkeeping.
func (x *HashExec) AdversaryAttached() {
	if x == nil {
		return
	}
	switch x.mode {
	case HashTiming:
		panic("integrity: timing-only hash execution is illegal with an adversary attached (use hash mode full or memo)")
	case HashMemo:
		x.memoOff = true
	}
}

// Bump advances chunk c's dirty generation; call it for every engine write
// to the chunk's external-memory bytes.
func (x *HashExec) Bump(c uint64) {
	if !x.MemoActive() {
		return
	}
	x.ensure(c)
	x.gen[c]++
}

// Gen returns chunk c's current dirty generation.
func (x *HashExec) Gen(c uint64) uint64 {
	if !x.MemoActive() || c >= uint64(len(x.gen)) {
		return 0
	}
	return x.gen[c]
}

// Lookup returns the memoized record for chunk c when one is installed at
// the chunk's current generation. The returned slice aliases the entry;
// callers only compare against it.
func (x *HashExec) Lookup(c uint64) ([]byte, bool) {
	if !x.MemoActive() {
		return nil, false
	}
	if c >= uint64(len(x.memo)) {
		x.misses++
		return nil, false
	}
	e := &x.memo[c]
	if e.n == 0 || e.gen != x.gen[c] {
		x.misses++
		return nil, false
	}
	x.hits++
	return e.digest[:e.n], true
}

// Install memoizes digest as chunk c's record at generation gen (capture
// gen with Gen when the image is snapshotted; an interleaved Bump then
// leaves the entry installed but never served). Empty and oversized
// records are not memoizable.
func (x *HashExec) Install(c uint64, gen uint64, digest []byte) {
	if !x.MemoActive() || len(digest) == 0 || len(digest) > maxRecordBytes {
		return
	}
	x.ensure(c)
	e := &x.memo[c]
	e.gen = gen
	e.n = uint8(len(digest))
	copy(e.digest[:], digest)
}

// InvalidateMemo forgets every memoized record while leaving generations
// alone. Machine state restoration (core.Machine.RestoreState) rewrites
// external memory underneath the generation bookkeeping, so entries
// installed against the displaced image must never be served against the
// restored one.
func (x *HashExec) InvalidateMemo() {
	if x == nil {
		return
	}
	for i := range x.memo {
		x.memo[i] = memoEntry{}
	}
}

// MemoHits and MemoMisses report lookup traffic — simulator-side
// instrumentation only, deliberately kept out of Stats so that every hash
// mode produces byte-identical simulation statistics.
func (x *HashExec) MemoHits() uint64 { return x.hits }

// MemoMisses reports lookups that found no current entry.
func (x *HashExec) MemoMisses() uint64 { return x.misses }
