package integrity

import "memverify/internal/cache"

// Engine is the machinery between the L2 cache and external memory. The
// memory hierarchy calls ReadBlock on an L2 miss (read or write-allocate)
// and the engine performs whatever fetching, verification and cache
// filling its scheme requires, returning the cycle at which the requested
// block's critical word is available for speculative use (§5.8: execution
// continues while checks complete in the background; only the shared
// resources — bus, hash pipe, buffers — push back on performance).
//
// Dirty L2 evictions flow back through the engine internally (cache fills
// evict victims), and Flush drains all dirty state, cascading write-backs
// up the tree as in the initialization procedure of §5.7.2.
type Engine interface {
	// Name returns the paper's scheme label: base, naive, c, m or i.
	Name() string
	// ReadBlock services an L2 miss for the block containing addr at cycle
	// now. The block is filled into the L2; the return value is the cycle
	// its data is available to the processor.
	ReadBlock(now uint64, addr uint64) uint64
	// Evict processes a dirty line leaving the L2 and returns the cycle
	// the write-back (including any hash updates) completes.
	Evict(now uint64, line cache.Line) uint64
	// AllocateFullWrite prepares the block containing addr for a write
	// that overwrites it entirely: the §5.3 optimization — "if write
	// allocation simply marks unwritten words as invalid rather than
	// loading them from memory, then chunks that get entirely overwritten
	// don't have to be read from memory and checked". It installs a dirty
	// line without any memory read or verification and returns the cycle
	// the line is ready (engines whose chunks span several blocks fall
	// back to the ordinary fetch-and-check path, since the rest of the
	// chunk still needs authentic data). The caller must overwrite the
	// whole line before anything reads it.
	AllocateFullWrite(now uint64, addr uint64) uint64
	// Flush writes back every dirty line, cascading tree updates, and
	// returns the completion cycle. It is the §5.7.2 cache flush and the
	// barrier used before cryptographic instructions sign results.
	Flush(now uint64) uint64
	// System exposes the shared hardware for statistics and tests.
	System() *System
}

// Base is a standard processor without memory verification: L2 misses go
// straight to DRAM and dirty evictions are plain writes.
type Base struct {
	sys *System
}

// NewBase returns the unprotected baseline engine. sys.Layout and
// sys.Unit may be nil.
func NewBase(sys *System) *Base { return &Base{sys: sys} }

// Name implements Engine.
func (e *Base) Name() string { return "base" }

// System implements Engine.
func (e *Base) System() *System { return e.sys }

// ReadBlock implements Engine.
func (e *Base) ReadBlock(now uint64, addr uint64) uint64 {
	return unprotectedRead(e.sys, now, addr, e.Evict)
}

// Evict implements Engine.
func (e *Base) Evict(now uint64, line cache.Line) uint64 {
	return unprotectedEvict(e.sys, now, line)
}

// AllocateFullWrite implements Engine: the base scheme never needs the
// old contents for a full overwrite either.
func (e *Base) AllocateFullWrite(now uint64, addr uint64) uint64 {
	return allocateFullWrite(e.sys, now, addr, e.Evict)
}

// fillRetries bounds re-installs when a victim's write-back walk evicts
// the very line being allocated — possible in a small, low-associativity
// L2 where a chunk's tree path conflicts with the data set. The walk
// leaves the path resident, so the retry converges immediately; running
// out means the geometry cannot hold one line plus its path.
const fillRetries = 4

// allocateFullWrite installs a dirty, about-to-be-overwritten line with no
// memory traffic; shared by every engine whose chunk equals one block.
func allocateFullWrite(s *System, now uint64, addr uint64, evict func(uint64, cache.Line) uint64) uint64 {
	ba := s.L2.BlockAddr(addr)
	for try := 0; ; try++ {
		if ev := s.L2.Fill(ba, cache.Data, nil); ev.Valid && ev.Dirty {
			evict(now, ev)
		}
		if s.L2.Write(ba, cache.Data) != nil {
			return now + s.L2Latency
		}
		if try == fillRetries {
			panic("integrity: full-write allocation failed to cache the block")
		}
	}
}

// Flush implements Engine.
func (e *Base) Flush(now uint64) uint64 {
	done := now
	for _, ln := range e.sys.L2.DirtyLines() {
		e.sys.L2.Clean(ln.Addr)
		if d := e.Evict(done, ln); d > done {
			done = d
		}
	}
	// Speculative evictions return at write acceptance; a flush is a
	// barrier, so it waits for the posted writes to drain.
	if e.sys.Speculative {
		if t := e.sys.ChecksDone(); t > done {
			done = t
		}
	}
	return done
}

// flushVia drains dirty lines through ev until every cache is clean —
// the shared L2 and, when configured, the dedicated verification cache,
// whose lines the write-backs dirty with record updates. Shared by the
// protected engines.
func flushVia(s *System, now uint64, ev func(uint64, cache.Line) uint64) uint64 {
	done := now
	for pass := 0; ; pass++ {
		dirty := s.L2.DirtyLines()
		if s.VC != nil {
			dirty = append(dirty, s.VC.DirtyLines()...)
		}
		if len(dirty) == 0 {
			// A flush is a barrier: speculative write-backs returned at
			// write-buffer acceptance, so wait for their chains to drain.
			if s.Speculative {
				if t := s.ChecksDone(); t > done {
					done = t
				}
			}
			return done
		}
		if pass > s.Layout.Levels()+2 {
			panic("integrity: flush failed to converge (engine bug)")
		}
		for _, ln := range dirty {
			// The line may have been cleaned or re-dirtied by an earlier
			// write-back in this pass (m-scheme write-backs clean chunk
			// siblings; hash updates dirty parents). Re-check, then pull
			// the line out so Evict sees the same "in hand" state a
			// replacement victim would have.
			owner := s.cacheForAddr(ln.Addr)
			cur := owner.Peek(ln.Addr)
			if cur == nil || !cur.Dirty {
				continue
			}
			victim := owner.Invalidate(ln.Addr)
			if d := ev(done, victim); d > done {
				done = d
			}
		}
	}
}
