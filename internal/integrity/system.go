package integrity

import (
	"fmt"

	"memverify/internal/bus"
	"memverify/internal/cache"
	"memverify/internal/dram"
	"memverify/internal/hashalg"
	"memverify/internal/htree"
	"memverify/internal/mem"
	"memverify/internal/prefetch"
	"memverify/internal/stats"
	"memverify/internal/telemetry"
)

// Stats counts the integrity machinery's activity. Figure 5 is computed
// from these plus the bus byte counters.
type Stats struct {
	// DemandBlockReads counts blocks loaded from memory because the
	// processor asked for them (L2 data misses and write allocations).
	DemandBlockReads uint64
	// ExtraBlockReads counts blocks loaded from memory purely for
	// integrity: tree-node chunks, m-scheme chunk completion reads and
	// i-scheme old-value reads. ExtraWriteBackReads is the subset incurred
	// while servicing write-backs (hash-slot write-allocation, completion
	// reads, old-value reads); the paper's Figure 5a counts only the
	// read-path remainder — its naive bar is exactly the tree depth.
	ExtraBlockReads     uint64
	ExtraWriteBackReads uint64
	// DataBlockWrites and HashBlockWrites count block writes to memory.
	DataBlockWrites uint64
	HashBlockWrites uint64
	// Checks counts verifications performed; Violations counts failures.
	Checks     uint64
	Violations uint64
	// MACUpdates counts constant-work incremental MAC updates (i scheme).
	MACUpdates uint64
	// Evictions counts dirty L2 lines processed by the engine.
	Evictions uint64
	// Retries counts PolicyRetry re-fetch probes. RetriesTransient are
	// probes whose re-read verified clean (a transient bus/DRAM fault;
	// the violation is suppressed), RetriesPersistent probes that failed
	// again (persistent tampering; the violation is recorded).
	Retries           uint64
	RetriesTransient  uint64
	RetriesPersistent uint64
}

// ViolationError describes a detected integrity violation — the security
// exception of §5.8.
type ViolationError struct {
	Scheme string
	Chunk  uint64
	Detail string
	// Epoch is the barrier epoch the offending access ran in: 0 until the
	// first Machine.Barrier call, incrementing at each one. Under the
	// speculative pipeline a violation may resolve cycles after its access
	// retired; Epoch attributes it to the work the barrier was about to
	// commit.
	Epoch uint64
}

// Error implements error.
func (e *ViolationError) Error() string {
	return fmt.Sprintf("integrity(%s): violation at chunk %d: %s", e.Scheme, e.Chunk, e.Detail)
}

// System bundles the hardware shared by every engine: the L2 cache the
// machinery integrates with, the untrusted memory and its timing models,
// the hash unit, the tree layout and the secure root register.
type System struct {
	L2        *cache.Cache
	Mem       mem.Memory
	DRAM      *dram.DRAM
	Unit      *HashUnit
	Layout    *htree.Layout
	Alg       hashalg.Algorithm
	L2Latency uint64

	// VC, when non-nil, is the dedicated verification cache: interior
	// (hash-tree) chunks are cached here instead of competing with data in
	// the shared L2, reproducing the paper's dedicated-vs-shared ablation.
	// nil keeps every chunk in the L2. Data chunks and unprotected lines
	// always stay in the L2 either way.
	VC *cache.Cache

	// Prefetch, when non-nil, is the tree-ancestor prefetch engine: it
	// observes the demand chunk-access stream and, when its pattern table
	// predicts the next chunk, the engine pulls that chunk's uncached tree
	// ancestors into the cache as lowest-priority bus traffic (dropped,
	// never queued, when the bus is busy or the in-flight budget is full).
	// Prefetching is semantically invisible: delivered data and roots are
	// byte-identical with it on or off.
	Prefetch *prefetch.Prefetcher

	// CheckReads arms read verification. The initialization procedure of
	// §5.7.2 runs with it off ("turn on the hashing algorithm for writes
	// but not for reads") and arms it as its final step.
	CheckReads bool

	// Policy selects what happens after a failed verification: record and
	// continue (default), halt the machine, or retry the fetch once to
	// separate transient faults from tampering. See ViolationPolicy.
	Policy ViolationPolicy

	// Speculative arms the speculative verification pipeline: on a miss,
	// data is delivered to the processor as soon as the critical word
	// arrives while the hash check drains through the hash unit in the
	// background, bounded by the Pending window. Violations are still
	// detected at the same accesses (Stat is identical to blocking mode);
	// only their policy consequences wait for the check's completion cycle
	// or the next barrier. Off by default: blocking mode is bit-identical
	// to the pre-speculative simulator.
	Speculative bool

	// Pending tracks the speculative mode's outstanding background checks
	// and parked violations. Non-nil exactly when Speculative is set.
	Pending *PendingChecks

	// Epoch counts completed barriers; epochFirst is the first violation
	// detected since the last barrier, reported by Machine.Barrier.
	Epoch      uint64
	epochFirst *ViolationError

	// Functional selects whether the engines move and verify real bytes.
	// Timing never depends on data values, so large parameter sweeps (the
	// paper protects 4 GB) run with Functional off: no memory contents are
	// materialized, hashes are not actually computed, and all counters,
	// bus traffic and stall behaviour remain identical. Correctness and
	// attack tests run with it on over smaller protected regions.
	Functional bool

	// Exec selects how digests are executed in functional mode: computed
	// in full, skipped under the timing-only unit, or memoized per chunk
	// generation. nil means HashFull, so existing constructions are
	// unchanged. See HashExec.
	Exec *HashExec

	// Root is the secure on-chip register holding the root hash (or the
	// root chunk's MAC record in the i scheme).
	Root []byte

	// OnViolation, if non-nil, observes each violation as it is detected.
	// Detection is always recorded in Stat regardless.
	OnViolation func(*ViolationError)

	// Trace, if non-nil, receives engine events (operation name plus
	// addresses/values) — a debugging aid for the re-entrant write-back
	// machinery.
	Trace func(event string, args ...uint64)

	// Tel, when non-nil, receives cycle-timestamped telemetry spans for
	// tree-ancestor walks and engine write-backs; Probes, when non-nil,
	// feeds the per-access verification-overhead histogram. Both are nil
	// unless the machine was built with telemetry enabled.
	Tel    *telemetry.Trace
	Probes *telemetry.Probes

	Stat  Stats
	First *ViolationError

	// PathExtras distributes the number of extra blocks fetched per
	// demand miss — the direct measurement of the paper's thesis: naive
	// misses observe the full tree depth, cached misses usually observe
	// zero or one because a resident ancestor terminates the walk.
	PathExtras *stats.Histogram

	depth         int
	wbDepth       int
	lastCheckDone uint64

	// prefetching guards against the prefetch path re-triggering itself:
	// ancestor fetches issued for a prediction are not demand accesses.
	prefetching bool
	// prefLastEnd clamps prefetch telemetry spans into a monotonic,
	// non-overlapping sequence: the out-of-order core hands the engine
	// non-monotonic `now` values, and overlapping spans on one trace lane
	// render as garbage in Perfetto.
	prefLastEnd uint64

	// inflight tracks lines sitting in the write buffer mid-eviction,
	// keyed by block address. Hardware forwards accesses to write-buffer
	// entries; without forwarding, a nested write-back re-allocating the
	// same block would observe the half-committed state (data written,
	// record not yet — or resurrect a stale copy of the line) and either
	// raise a false violation or lose an update. Values are the live data
	// slices of the evicted lines (nil in timing-only mode).
	inflight map[uint64][]byte

	// Scratch storage reused across engine operations so the per-access
	// hot path allocates nothing in steady state. imgFree and recFree are
	// free lists, not single buffers, because the engines re-enter: a
	// buffer acquired by an outer operation must survive the nested
	// write-backs and verifications that run inside it. memScratch and
	// digestScratch are single buffers, legal only because their contents
	// are never held across a re-entrant call.
	imgFree       [][]byte
	recFree       [][]byte
	memScratch    []int
	digestScratch []byte
}

// getImg returns a chunk-image scratch buffer of ChunkSize bytes (zeroed
// is not guaranteed; every user overwrites it fully). Release with putImg.
func (s *System) getImg() []byte {
	if n := len(s.imgFree); n > 0 {
		b := s.imgFree[n-1]
		s.imgFree = s.imgFree[:n-1]
		return b
	}
	return make([]byte, s.Layout.ChunkSize)
}

// putImg returns an image buffer to the free list. nil is ignored so
// timing-only paths can release unconditionally.
func (s *System) putImg(b []byte) {
	if b != nil {
		s.imgFree = append(s.imgFree, b)
	}
}

// getRec returns a record-sized scratch buffer with at least n bytes of
// capacity and zero length. Release with putRec.
func (s *System) getRec(n int) []byte {
	if l := len(s.recFree); l > 0 {
		b := s.recFree[l-1]
		s.recFree = s.recFree[:l-1]
		if cap(b) >= n {
			return b[:0]
		}
	}
	if m := s.Alg.Size(); n < m {
		n = m
	}
	return make([]byte, 0, n)
}

// putRec returns a record buffer to the free list; nil is ignored.
func (s *System) putRec(b []byte) {
	if b != nil {
		s.recFree = append(s.recFree, b)
	}
}

// observePath records the number of integrity block reads one demand
// miss needed.
func (s *System) observePath(extras uint64) {
	if s.PathExtras == nil {
		s.PathExtras = stats.NewHistogram(1, 2, 3, 5, 9, 13)
	}
	s.PathExtras.Observe(extras)
}

// observeVerifyOverhead feeds the per-access verification-overhead probe:
// the cycles between a demand block being ready for speculative use and
// its background check completing.
func (s *System) observeVerifyOverhead(ready, checkDone uint64) {
	if s.Probes == nil || s.Probes.VerifyOverhead == nil {
		return
	}
	var d uint64
	if checkDone > ready {
		d = checkDone - ready
	}
	s.Probes.VerifyOverhead.Observe(d)
}

// noteCheck records the completion cycle of a background check or
// write-back, advancing the §5.8 barrier point.
func (s *System) noteCheck(done uint64) {
	if done > s.lastCheckDone {
		s.lastCheckDone = done
	}
}

// ChecksDone returns the cycle by which every verification and record
// update issued so far has completed — what a cryptographic barrier
// instruction must wait for (§5.8).
func (s *System) ChecksDone() uint64 { return s.lastCheckDone }

// registerInflight marks a block as sitting in the write buffer.
func (s *System) registerInflight(ba uint64, data []byte) {
	if s.inflight == nil {
		s.inflight = make(map[uint64][]byte)
	}
	s.inflight[ba] = data
}

// unregisterInflight removes the write-buffer entry.
func (s *System) unregisterInflight(ba uint64) { delete(s.inflight, ba) }

// inflightData returns the live data of an in-flight line and whether one
// exists for ba.
func (s *System) inflightData(ba uint64) ([]byte, bool) {
	d, ok := s.inflight[ba]
	return d, ok
}

// countExtra attributes n integrity block reads to the read or write-back
// path depending on the current engine context.
func (s *System) countExtra(n uint64) {
	s.Stat.ExtraBlockReads += n
	if s.wbDepth > 0 {
		s.Stat.ExtraWriteBackReads += n
	}
}

// enterWriteBack marks the start of write-back processing for extra-read
// attribution; leaveWriteBack ends it.
func (s *System) enterWriteBack() { s.wbDepth++ }
func (s *System) leaveWriteBack() { s.wbDepth-- }

const maxRecursion = 256

func (s *System) enter() {
	s.depth++
	if s.depth > maxRecursion {
		panic("integrity: verification recursion exceeded bound (engine bug)")
	}
}

func (s *System) leave() { s.depth-- }

// BlockSize returns the L2 line size.
func (s *System) BlockSize() int { return s.L2.Config().BlockSize }

// violation records a detected tamper event. at is the cycle the check
// that caught it completes: detection counters update immediately (the
// walk has functionally run), but in speculative mode the policy
// consequences — halt, observer callbacks — are deferred until simulated
// time reaches at or a barrier drains the pipeline.
func (s *System) violation(at uint64, chunk uint64, scheme, detail string) {
	v := &ViolationError{Scheme: scheme, Chunk: chunk, Detail: detail, Epoch: s.Epoch}
	s.Stat.Violations++
	if s.First == nil {
		s.First = v
	}
	if s.epochFirst == nil {
		s.epochFirst = v
	}
	if s.Speculative && s.Pending != nil {
		s.Pending.Defer(v, at)
		return
	}
	if s.OnViolation != nil {
		s.OnViolation(v)
	}
}

// ResolvePending applies the policy consequences of every deferred
// violation whose background check has completed by now. A no-op in
// blocking mode, where nothing is ever deferred.
func (s *System) ResolvePending(now uint64) {
	if s.Pending != nil {
		s.Pending.ResolveUpTo(now, s.OnViolation)
	}
}

// EndEpoch is the barrier commit point: it resolves every deferred
// violation (the caller has already waited for ChecksDone, which bounds
// all of their completion cycles), returns the first violation detected
// in the closing epoch, and opens the next one.
func (s *System) EndEpoch() *ViolationError {
	if s.Pending != nil {
		s.Pending.ResolveAll(s.OnViolation)
	}
	first := s.epochFirst
	s.epochFirst = nil
	s.Epoch++
	return first
}

// Protected reports whether addr falls inside the hash-protected region.
func (s *System) Protected(addr uint64) bool {
	return s.Layout != nil && addr < s.Layout.Size()
}

// classFor maps a chunk to its cache/bus traffic class.
func (s *System) classFor(c uint64) (cache.Class, bus.Class) {
	if s.Layout.IsInterior(c) {
		return cache.Hash, bus.Hash
	}
	return cache.Data, bus.Data
}

// cacheFor returns the cache holding chunk c's blocks: the dedicated
// verification cache for interior (hash-tree) chunks when one is
// configured, else the shared L2.
func (s *System) cacheFor(c uint64) *cache.Cache {
	if s.VC != nil && s.Layout.IsInterior(c) {
		return s.VC
	}
	return s.L2
}

// cacheForAddr is cacheFor keyed by block address; unprotected addresses
// always live in the L2.
func (s *System) cacheForAddr(addr uint64) *cache.Cache {
	if s.VC != nil && s.Protected(addr) && s.Layout.IsInterior(s.Layout.ChunkOf(addr)) {
		return s.VC
	}
	return s.L2
}

// chunkBlocks returns how many L2 blocks one chunk spans.
func (s *System) chunkBlocks() int { return s.Layout.ChunkSize / s.BlockSize() }

// composeImage assembles chunk c's memory-state image: blocks that are
// clean in the L2 are taken from the cache (they match memory and cost no
// bus traffic); every other block — uncached or cached-dirty — is read
// from external memory, because stored hashes cover memory contents, not
// dirty cached copies (the invariant of §5.3). It returns the image and
// the chunk-relative indices of blocks that came from memory.
//
// The image comes from the system's scratch pool — the caller must release
// it with putImg — while memBlocks aliases a single scratch slice that is
// only valid until the next composeImage call, so it must be consumed
// before any re-entrant engine work.
func (s *System) composeImage(c uint64) (img []byte, memBlocks []int) {
	bs := s.BlockSize()
	k := s.chunkBlocks()
	base := s.Layout.ChunkAddr(c)
	if s.Functional {
		img = s.getImg()
	}
	memBlocks = s.memScratch[:0]
	for i := 0; i < k; i++ {
		ba := base + uint64(i*bs)
		if ln := s.cacheFor(c).Peek(ba); ln != nil && !ln.Dirty {
			if img != nil {
				copy(img[i*bs:(i+1)*bs], ln.Data)
			}
			continue
		}
		if img != nil {
			s.Mem.Read(ba, img[i*bs:(i+1)*bs])
		}
		memBlocks = append(memBlocks, i)
	}
	s.memScratch = memBlocks
	return img, memBlocks
}

// hashChunk computes the stored-form hash of a chunk image in a fresh
// slice the caller owns.
func (s *System) hashChunk(img []byte) []byte {
	return hashalg.Truncate(s.Alg.Sum(img), s.Layout.HashSize)
}

// hashChunkScratch computes the stored-form hash of a chunk image into the
// system's digest scratch: zero allocations, but the result is only valid
// until the next hashChunkScratch call, so it must not be held across any
// re-entrant engine work. Comparison sites use it directly; sites that
// keep the record across recursion copy it into a pooled buffer first.
func (s *System) hashChunkScratch(img []byte) []byte {
	s.digestScratch = s.Alg.AppendSum(s.digestScratch[:0], img)
	return s.digestScratch[:s.Layout.HashSize]
}

// skipDigests reports whether the timing-only hash unit is selected:
// record slots receive hashalg.Tag stand-ins and every check passes
// without digest arithmetic.
func (s *System) skipDigests() bool { return s.Exec.Mode() == HashTiming }

// verifyData reports whether functional checks actually compare digests.
// Stats (Checks, Violations against an inert memory) are identical whether
// or not they do.
func (s *System) verifyData() bool { return s.Functional && !s.skipDigests() }

// timingTag renders chunk c's deterministic stand-in record into the
// digest scratch; like hashChunkScratch, the result is only valid until
// the scratch's next use.
func (s *System) timingTag(c uint64) []byte {
	n := s.Layout.HashSize
	if cap(s.digestScratch) < n {
		s.digestScratch = make([]byte, n)
	}
	d := s.digestScratch[:n]
	hashalg.Tag(c, d)
	return d
}

// guardExecMode is called by every verifying engine's constructor: the
// timing-only unit refuses to coexist with an adversarial memory, and the
// memo cache switches itself off against one (tampering bypasses its
// generation bookkeeping).
func (s *System) guardExecMode() {
	if _, ok := s.Mem.(*mem.Adversary); ok {
		s.Exec.AdversaryAttached()
	}
}

// slotBytes extracts chunk c's hash slot from its parent's image.
func (s *System) slotBytes(parentImg []byte, c uint64) []byte {
	_, slot, _ := s.Layout.Parent(c)
	return parentImg[slot*s.Layout.HashSize : (slot+1)*s.Layout.HashSize]
}

// ResetStats zeroes the integrity counters and forgets recorded
// violations, for post-warm-up measurement. Speculative pipeline counters
// reset too, but outstanding checks and parked violations survive —
// warm-up work still has to drain, and detection must never be lost.
func (s *System) ResetStats() {
	s.Stat = Stats{}
	s.First = nil
	s.epochFirst = nil
	if s.Pending != nil {
		s.Pending.Stat = SpecStats{}
	}
}
