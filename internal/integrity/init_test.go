package integrity

import (
	"bytes"
	"testing"
)

// TestInitializeByTouch runs the full §5.7.2 boot procedure for the hash
// engines and checks the resulting tree authenticates current memory.
func TestInitializeByTouch(t *testing.T) {
	for _, scheme := range []string{"c", "m", "naive"} {
		t.Run(scheme, func(t *testing.T) {
			cfg := defaultRig(scheme)
			if scheme == "m" {
				cfg.chunkBlocks = 2
			}
			cfg.protected = 16 << 10 // keep touching cheap
			r := newRig(t, cfg)

			// Wreck the stored tree so only the procedure can rebuild it.
			for c := uint64(0); c < r.sys.Layout.InteriorChunks; c++ {
				r.adv.Corrupt(r.sys.Layout.ChunkAddr(c), 0xFF)
			}
			r.sys.Root = nil

			done, err := InitializeByTouch(r.engine, 0)
			if err != nil {
				t.Fatal(err)
			}
			if done == 0 {
				t.Error("initialization consumed no cycles")
			}
			if !r.sys.CheckReads {
				t.Error("exceptions not re-armed after initialization")
			}
			r.evictAll()
			if err := r.verifyMemoryTree(); err != nil {
				t.Fatalf("tree not rebuilt correctly: %v", err)
			}
			// A normal read must verify cleanly now.
			r.sys.ResetStats()
			r.read(r.dataBlocks()[1])
			if r.sys.Stat.Violations != 0 {
				t.Fatalf("post-init read raised: %v", r.sys.First)
			}
		})
	}
}

// TestInitializeByTouchRejectsIncremental pins the paper's footnote: the i
// scheme cannot use the flush trick.
func TestInitializeByTouchRejectsIncremental(t *testing.T) {
	r := newRig(t, defaultRig("i"))
	if _, err := InitializeByTouch(r.engine, 0); err == nil {
		t.Fatal("touch initialization accepted for the i scheme")
	}
}

// TestInitializeByTouchNeedsFunctional checks the guard for timing-only
// systems.
func TestInitializeByTouchNeedsFunctional(t *testing.T) {
	r := newRig(t, defaultRig("c"))
	r.sys.Functional = false
	if _, err := InitializeByTouch(r.engine, 0); err == nil {
		t.Fatal("touch initialization accepted for a timing-only system")
	}
}

// TestInitializeTreeMatchesReference compares the engine's bottom-up build
// with the standalone htree implementation for the hash engines.
func TestInitializeTreeMatchesReference(t *testing.T) {
	for _, scheme := range []string{"c", "naive"} {
		r := newRig(t, defaultRig(scheme)) // rig already ran InitializeTree
		if err := r.verifyMemoryTree(); err != nil {
			t.Fatalf("%s: freshly initialized tree invalid: %v", scheme, err)
		}
	}
}

// TestFlushIsIdempotent flushes twice; the second flush must be a no-op.
func TestFlushIsIdempotent(t *testing.T) {
	for _, scheme := range protectedSchemes {
		r := newRig(t, defaultRig(scheme))
		r.randomWorkload(500)
		r.flush()
		writes := r.sys.Stat.DataBlockWrites + r.sys.Stat.HashBlockWrites
		r.flush()
		if w := r.sys.Stat.DataBlockWrites + r.sys.Stat.HashBlockWrites; w != writes {
			t.Errorf("%s: second flush wrote %d more blocks", scheme, w-writes)
		}
	}
}

// TestFlushActsAsBarrier mirrors §5.8: after a flush, everything the
// program wrote is authenticated in memory, so a signature computed over
// it would be safe to release.
func TestFlushActsAsBarrier(t *testing.T) {
	r := newRig(t, defaultRig("c"))
	payload := bytes.Repeat([]byte{0xC4}, r.sys.BlockSize())
	r.write(r.dataBlocks()[9], payload)
	r.flush()
	got := make([]byte, r.sys.BlockSize())
	r.sys.Mem.Read(r.dataBlocks()[9], got)
	if !bytes.Equal(got, payload) {
		t.Fatal("flush did not push the write to memory")
	}
	if err := r.verifyMemoryTree(); err != nil {
		t.Fatal(err)
	}
}
