package integrity

import (
	"fmt"

	"memverify/internal/cache"
)

// TreeInitializer is implemented by every protected engine: it computes
// all stored records from current memory contents and installs the root,
// entering secure mode instantly. It is the fast functional equivalent of
// the §5.7.2 boot procedure for simulations that skip initialization (the
// paper likewise ignores initialization overhead in its steady-state
// measurements).
type TreeInitializer interface {
	InitializeTree()
}

// InitializeByTouch performs the paper's actual initialization procedure
// (§5.7.2) through the cache and engine:
//
//  1. hashing is enabled for writes but not reads (CheckReads off, so no
//     exceptions are raised while the tree is still garbage),
//  2. every chunk to be covered is touched (written), leaving it dirty in
//     the cache,
//  3. the cache is flushed, cascading write-backs compute the whole tree,
//  4. verification exceptions are armed.
//
// It requires a functional system and returns the completion cycle. The
// incremental scheme must use InitializeTree instead: its write-backs only
// ever update records incrementally, so the flush trick cannot build MACs
// from scratch (§5.7.2's closing footnote); calling this on it returns an
// error.
func InitializeByTouch(e Engine, now uint64) (uint64, error) {
	s := e.System()
	if !s.Functional {
		return 0, fmt.Errorf("integrity: touch initialization requires a functional system")
	}
	if _, ok := e.(*Incr); ok {
		return 0, fmt.Errorf("integrity: the i scheme cannot initialize by touch; use InitializeTree")
	}
	s.CheckReads = false

	bs := uint64(s.BlockSize())
	t := now
	for ba := s.Layout.DataStart(); ba < s.Layout.Size(); ba += bs {
		// Touch: a write to each block. Write-allocate on miss, then dirty.
		if ln := s.L2.Write(ba, cache.Data); ln == nil {
			t = e.ReadBlock(t, ba)
			if ln := s.L2.Write(ba, cache.Data); ln == nil {
				panic("integrity: touched block not resident after allocation (engine bug)")
			}
		}
	}
	t = e.Flush(t)
	s.CheckReads = true
	return t, nil
}
