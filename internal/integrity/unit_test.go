package integrity

import "testing"

func TestBufferPoolImmediateWhenFree(t *testing.T) {
	p := NewBufferPool(2)
	_, start := p.Acquire(100)
	if start != 100 {
		t.Errorf("start %d, want 100", start)
	}
	if p.Waits() != 0 {
		t.Error("unexpected wait")
	}
}

func TestBufferPoolDelaysWhenFull(t *testing.T) {
	p := NewBufferPool(2)
	e0, _ := p.Acquire(0)
	e1, _ := p.Acquire(0)
	p.Release(e0, 500)
	p.Release(e1, 300)
	_, start := p.Acquire(10)
	if start != 300 {
		t.Errorf("third acquisition starts at %d, want 300 (earliest release)", start)
	}
	if p.Waits() != 1 {
		t.Errorf("Waits = %d, want 1", p.Waits())
	}
}

func TestBufferPoolReleaseMonotonic(t *testing.T) {
	p := NewBufferPool(1)
	e, _ := p.Acquire(0)
	p.Release(e, 100)
	p.Release(e, 50) // must not rewind
	_, start := p.Acquire(0)
	if start != 100 {
		t.Errorf("start %d, want 100", start)
	}
}

func TestBufferPoolSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBufferPool(0) did not panic")
		}
	}()
	NewBufferPool(0)
}

func TestHashUnitLatency(t *testing.T) {
	u := NewHashUnit(80, 3.2, 16, 16)
	if done := u.Hash(1000, 64); done != 1080 {
		t.Errorf("done %d, want 1080", done)
	}
	if u.Ops() != 1 || u.BytesHashed() != 64 {
		t.Errorf("ops %d bytes %d", u.Ops(), u.BytesHashed())
	}
}

func TestHashUnitThroughputGates(t *testing.T) {
	u := NewHashUnit(80, 3.2, 16, 16)
	// 64 bytes at 3.2 B/cycle occupies the pipe for 20 cycles.
	d1 := u.Hash(0, 64)
	d2 := u.Hash(0, 64)
	d3 := u.Hash(0, 64)
	if d1 != 80 || d2 != 100 || d3 != 120 {
		t.Errorf("pipelined completions %d,%d,%d want 80,100,120", d1, d2, d3)
	}
}

func TestHashUnitLongChunkLatency(t *testing.T) {
	// Occupancy above latency dominates the completion time.
	u := NewHashUnit(10, 1.0, 16, 16)
	if done := u.Hash(0, 64); done != 64 {
		t.Errorf("done %d, want 64 (occupancy-dominated)", done)
	}
}

func TestHashUnitIdleRestart(t *testing.T) {
	u := NewHashUnit(80, 3.2, 16, 16)
	u.Hash(0, 64)
	if done := u.Hash(10_000, 64); done != 10_080 {
		t.Errorf("done %d, want 10080", done)
	}
}

func TestHashUnitResetCounters(t *testing.T) {
	u := NewHashUnit(80, 3.2, 16, 16)
	u.Hash(0, 64)
	u.ResetCounters()
	if u.Ops() != 0 || u.BytesHashed() != 0 {
		t.Error("counters not reset")
	}
	// Pipe schedule must survive the reset.
	if done := u.Hash(0, 64); done != 100 {
		t.Errorf("done %d, want 100 (pipe state preserved)", done)
	}
}

func TestHashUnitBadThroughputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero throughput did not panic")
		}
	}()
	NewHashUnit(80, 0, 16, 16)
}
