package integrity

import (
	"fmt"

	"memverify/internal/bus"
	"memverify/internal/cache"
	"memverify/internal/hashalg"
	"memverify/internal/telemetry"
)

// Incr is the paper's `i` scheme (§5.5): the multi-block organization of
// `m`, but with each stored record an incremental XOR-MAC instead of a
// hash. On write-back only the evicted block is touched: the engine reads
// the parent MAC through the cache, reads the block's old value straight
// from memory *without checking it*, applies a constant-work MAC update,
// and flips the block's 1-bit timestamp — the stamp is what makes the
// unchecked read safe against the two attacks analyzed in §5.5.
type Incr struct {
	Cached
	mac *hashalg.XorMAC

	// blocks and recScratch are per-engine scratch reused by splitBlocks
	// and the record closure. Single buffers are enough: both are consumed
	// by the caller before any re-entrant engine work runs.
	blocks     [][]byte
	recScratch [hashalg.MACSize]byte
}

// NewIncr builds the incremental engine. The chunk may span at most
// hashalg.MaxMACBlocks cache blocks (one stamp bit per block), and the
// layout's hash size must be hashalg.MACSize.
func NewIncr(sys *System, key []byte) *Incr {
	if sys.Layout == nil {
		panic("integrity: incremental engine requires a tree layout")
	}
	if sys.Layout.HashSize != hashalg.MACSize {
		panic(fmt.Sprintf("integrity: incremental engine requires %d-byte records, layout has %d",
			hashalg.MACSize, sys.Layout.HashSize))
	}
	k := sys.Layout.ChunkSize / sys.BlockSize()
	if k > hashalg.MaxMACBlocks {
		panic(fmt.Sprintf("integrity: chunk spans %d blocks, max %d", k, hashalg.MaxMACBlocks))
	}
	e := &Incr{mac: hashalg.NewXorMAC(sys.Alg, key)}
	e.sys = sys
	e.scheme = "i"
	e.verify = func(_ uint64, img, stored []byte) bool {
		var tag [hashalg.MACSize]byte
		copy(tag[:], stored)
		return e.mac.Verify(tag, e.splitBlocks(img))
	}
	e.record = func(_ uint64, img []byte) []byte {
		// Fresh record over a full image. Preserving individual stamps is
		// unnecessary here: a full-chunk write-back re-stamps every block
		// at zero, and the stored record and memory change together. The
		// result lives in engine scratch, per the record contract.
		e.recScratch = e.mac.Compute(e.splitBlocks(img), 0)
		return e.recScratch[:]
	}
	e.evictFn = e.evictIncr
	sys.guardExecMode()
	if sys.skipDigests() {
		e.applyTimingMode()
	}
	return e
}

// MAC exposes the underlying XOR-MAC, used by attack-demonstration tests
// to disable timestamps.
func (e *Incr) MAC() *hashalg.XorMAC { return e.mac }

// splitBlocks slices img into block-sized views in the engine's reusable
// scratch slice; the result is only valid until the next splitBlocks call.
func (e *Incr) splitBlocks(img []byte) [][]byte {
	bs := e.sys.BlockSize()
	blocks := e.blocks[:0]
	for i := 0; i < len(img); i += bs {
		blocks = append(blocks, img[i:i+bs])
	}
	e.blocks = blocks
	return blocks
}

// evictIncr is the optimized Write-Back of §5.5.
func (e *Incr) evictIncr(now uint64, line cache.Line) uint64 {
	s := e.sys
	if !s.Protected(line.Addr) {
		return unprotectedEvict(s, now, line)
	}
	s.enter()
	defer s.leave()
	s.enterWriteBack()
	defer s.leaveWriteBack()
	s.Stat.Evictions++

	bs := s.BlockSize()
	c := s.Layout.ChunkOf(line.Addr)
	base := s.Layout.ChunkAddr(c)
	cclass, bclass := s.classFor(c)
	blockIdx := int((line.Addr - base) / uint64(bs))

	// The line sits in the write buffer; forward accesses to it.
	if s.Trace != nil {
		s.Trace("evictIncr-start", line.Addr, uint64(c))
	}
	s.registerInflight(line.Addr, line.Data)
	defer s.unregisterInflight(line.Addr)

	idx, start := s.Unit.WriteBuf.Acquire(now)

	// 2 (timing). Read the old value of the cache block from memory
	// directly — no check, and no need to fetch the rest of the chunk.
	_, rdone := s.DRAM.Read(start, bs, bus.Hash)
	s.countExtra(1)
	s.Stat.MACUpdates++

	// 1. Read the parent MAC using ReadAndCheck (through the cache). The
	// fetch can write-allocate and thereby run other write-backs that
	// change the record, so retry until a pass is recursion-free — after
	// which the slot block is resident (or forwarded) and the fetched tag
	// is current. Crucially the incremental update is applied exactly once,
	// to that final tag: re-applying a delta to a tag that already contains
	// it would cancel its own terms.
	tagReady := start
	done := rdone
	var tagBytes []byte
	if c == 0 {
		tagBytes = s.Root
	} else {
		slotAddr, _ := s.Layout.HashAddr(c)
		ba := s.L2.BlockAddr(slotAddr)
		slotCache := s.cacheFor(s.Layout.ChunkOf(slotAddr))
		for attempt := 0; ; attempt++ {
			_, inflight := s.inflightData(ba)
			resident := slotCache.Peek(ba) != nil || inflight
			// readValue hands back a pooled buffer; a stale previous
			// attempt's copy goes back to the pool before refetching.
			s.putRec(tagBytes)
			tagBytes, tagReady = e.readValue(start, slotAddr, hashalg.MACSize)
			if s.Trace != nil {
				flags := uint64(0)
				if !resident {
					flags = 1
				}
				s.Trace("evictIncr-fetch", line.Addr, uint64(c), flags)
			}
			if resident {
				break
			}
			if attempt > 8 {
				panic("integrity: record fetch will not converge (engine bug)")
			}
		}
	}

	// 3. Apply the constant-work update with a flipped stamp bit. The old
	// value lands in a pooled image buffer (chunk-sized; the leading block
	// is what the update consumes).
	var newTag [hashalg.MACSize]byte
	if s.Functional {
		if s.skipDigests() {
			// Timing-only execution: the stored record is the chunk's
			// deterministic tag, so no old value is consumed and no MAC
			// arithmetic runs (the timing charges above are unchanged).
			hashalg.Tag(c, newTag[:])
		} else {
			var tag [hashalg.MACSize]byte
			copy(tag[:], tagBytes)
			old := s.getImg()
			s.Mem.Read(line.Addr, old[:bs])
			newTag = e.mac.Update(tag, blockIdx, old[:bs], line.Data)
			s.putImg(old)
		}
	}
	if c != 0 {
		// tagBytes is consumed; the Root alias (c == 0) is never pooled.
		s.putRec(tagBytes)
	}

	// 4a. Store the new record. The slot block is resident or forwarded,
	// so this cannot recurse (nothing ran since the final fetch).
	if c == 0 {
		if s.Functional {
			s.Root = append(s.Root[:0], newTag[:]...)
		}
	} else {
		slotAddr, _ := s.Layout.HashAddr(c)
		var val []byte
		if s.Functional {
			val = newTag[:]
		}
		d, allocated := e.writeValue(tagReady, slotAddr, val)
		if allocated {
			panic("integrity: record store recursed after a resident fetch (engine bug)")
		}
		if d > done {
			done = d
		}
	}

	// Hash-unit work for the update (one block term plus the cipher).
	inputsReady := tagReady
	if rdone > inputsReady {
		inputsReady = rdone
	}
	hdone := s.Unit.Hash(inputsReady, bs)

	// Write the block so data and record change together.
	if s.Trace != nil {
		s.Trace("evictIncr-memwrite", line.Addr, uint64(c))
	}
	if s.Functional {
		s.Mem.Write(line.Addr, line.Data)
		s.Exec.Bump(c)
		if !s.skipDigests() {
			// The stored record tracks the memory image exactly (data and
			// record change together), so the fresh tag is the chunk's
			// current record — memoize it at the post-write generation.
			s.Exec.Install(c, s.Exec.Gen(c), newTag[:])
		}
	}
	if d := s.DRAM.Write(hdone, bs, bclass); d > done {
		done = d
	}
	if cclass == cache.Hash {
		s.Stat.HashBlockWrites++
	} else {
		s.Stat.DataBlockWrites++
	}
	s.Unit.WriteBuf.Release(idx, done)
	s.noteCheck(done)
	s.Tel.Emit(telemetry.TrackIntegrity, telemetry.KindWriteBack, now, done, c, 1)
	if s.Speculative && s.Pending != nil {
		// Async commit: release the processor at write-buffer acceptance;
		// the MAC update drains behind it, bounded by the pending window.
		return s.Pending.Admit(start, done, true)
	}
	return done
}

// InitializeTree computes every MAC record from scratch, bottom-up — the
// i-scheme initialization cannot use the touch-and-flush trick because
// write-backs only ever update records incrementally (§5.7.2, footnote).
func (e *Incr) InitializeTree() {
	s := e.sys
	if s.skipDigests() {
		// Timing-only execution never compares records, so the whole
		// bottom-up walk — the dominant construction cost — is skipped.
		s.Root = append(s.Root[:0], s.timingTag(0)...)
		return
	}
	img := make([]byte, s.Layout.ChunkSize)
	for c := s.Layout.TotalChunks - 1; ; c-- {
		s.Mem.Read(s.Layout.ChunkAddr(c), img)
		rec := e.record(c, img)
		// Children carry higher indexes, so every slot write into chunk c
		// has already landed: rec is the record of c's final image.
		s.Exec.Install(c, s.Exec.Gen(c), rec)
		if addr, ok := s.Layout.HashAddr(c); ok {
			s.Mem.Write(addr, rec)
			s.Exec.Bump(s.Layout.ChunkOf(addr))
		} else {
			s.Root = append(s.Root[:0], rec...)
		}
		if c == 0 {
			return
		}
	}
}
