package integrity

import (
	"bytes"
	"fmt"

	"memverify/internal/bus"
	"memverify/internal/cache"
	"memverify/internal/telemetry"
)

// Naive places the hash-tree machinery between the L2 and external memory
// without caching any tree node (§5.2's representative naive scheme):
// every L2 miss re-reads and re-verifies the chunk's entire ancestor path
// from memory, and every dirty write-back re-verifies the path and then
// rewrites every hash on it. Each miss therefore costs log_m(N) extra
// memory reads — the order-of-magnitude slowdown of Figure 3.
type Naive struct {
	sys *System

	// anc is the ancestor-image scratch reused across path verifications.
	// A single slice (not a pool) is enough: the naive engine never
	// re-enters itself — evictions triggered by its fills run to
	// completion before the next path walk starts.
	anc [][]byte
}

// NewNaive builds the naive engine. The layout's chunk size must equal the
// L2 block size (the configuration the paper evaluates).
func NewNaive(sys *System) *Naive {
	if sys.Layout == nil {
		panic("integrity: naive engine requires a tree layout")
	}
	if sys.Layout.ChunkSize != sys.BlockSize() {
		panic(fmt.Sprintf("integrity: naive engine requires chunk size == block size (%d != %d)",
			sys.Layout.ChunkSize, sys.BlockSize()))
	}
	sys.guardExecMode()
	return &Naive{sys: sys}
}

// Name implements Engine.
func (e *Naive) Name() string { return "naive" }

// System implements Engine.
func (e *Naive) System() *System { return e.sys }

// InitializeTree computes every stored hash bottom-up from memory. The
// timing-only unit skips the walk (nothing ever compares the records);
// memo mode memoizes every hash it computes.
func (e *Naive) InitializeTree() {
	s := e.sys
	if s.skipDigests() {
		s.Root = append(s.Root[:0], s.timingTag(0)...)
		return
	}
	img := make([]byte, s.Layout.ChunkSize)
	for c := s.Layout.TotalChunks - 1; ; c-- {
		s.Mem.Read(s.Layout.ChunkAddr(c), img)
		h := s.hashChunkScratch(img)
		s.Exec.Install(c, s.Exec.Gen(c), h)
		if addr, ok := s.Layout.HashAddr(c); ok {
			s.Mem.Write(addr, h)
			s.Exec.Bump(s.Layout.ChunkOf(addr))
		} else {
			s.Root = append(s.Root[:0], h...)
		}
		if c == 0 {
			return
		}
	}
}

// readChunkMem reads chunk c's bytes from external memory into a pooled
// image buffer the caller releases with putImg (functional mode only;
// timing-only runs return nil).
func (e *Naive) readChunkMem(c uint64) []byte {
	if !e.sys.Functional {
		return nil
	}
	img := e.sys.getImg()
	e.sys.Mem.Read(e.sys.Layout.ChunkAddr(c), img)
	return img
}

// checkAgainst verifies chunk cur's memory image curImg against the
// stored record want: served from the memo cache when a digest of exactly
// this image is still current, recomputed (and memoized) otherwise, and
// skipped entirely — always passing — under the timing-only unit. The
// Checks counter advances identically in every mode. at is the cycle the
// compared bytes are in hand; the return value is when the check —
// including any PolicyRetry re-fetch probe — completes.
func (e *Naive) checkAgainst(at uint64, cur uint64, curImg, want []byte, detail string) uint64 {
	s := e.sys
	s.Stat.Checks++
	if !s.verifyData() {
		return at
	}
	failed := false
	if memod, ok := s.Exec.Lookup(cur); ok {
		failed = !bytes.Equal(memod, want)
	} else if !bytes.Equal(s.hashChunkScratch(curImg), want) {
		failed = true
	} else {
		s.Exec.Install(cur, s.Exec.Gen(cur), want)
	}
	if failed {
		if s.Policy == PolicyRetry {
			passed, rdone := s.retryVerify(at, cur, false, func(probe []byte) bool {
				ok := bytes.Equal(s.hashChunkScratch(probe), want)
				if ok && curImg != nil {
					// Transient fault on the first transfer: replace the
					// delivered image with the clean re-read.
					copy(curImg, probe)
				}
				return ok
			})
			if rdone > at {
				at = rdone
			}
			if passed {
				return at // transient fault; the re-read is clean
			}
			detail += " (persistent after re-fetch)"
		}
		s.violation(at, cur, "naive", detail)
	}
	return at
}

// verifyPath checks img (the contents of chunk c as read from memory) and
// every ancestor, reading each ancestor chunk from memory, up to the
// secure root. It returns the cycle the final comparison completes and the
// memory image of c's parent path head (the ancestor chunks read), which
// Evict reuses to rewrite the path. The ancestor slice and its images are
// scratch storage: the caller must hand the images back via
// releaseAncestors before the next path walk.
func (e *Naive) verifyPath(start uint64, c uint64, img []byte, checkFirst bool) (done uint64, ancestors [][]byte) {
	s := e.sys
	ancestors = e.anc[:0]
	// The ancestor addresses are pure layout arithmetic, so all level
	// reads issue immediately and queue on the bus; each level's hash
	// starts when its data arrives. Nothing serializes level-to-level —
	// the bandwidth consumption is the cost, exactly as §5.1 argues.
	done = start
	cur := c
	curImg := img
	curReady := start // when this level's bytes are available to hash
	// Read walks may stop at an ancestor another in-flight walk has
	// already fetched: the pinned image is verified against (no memory
	// read) and the rest of the path inherits the covering check's
	// verdict — HMT-style multi-in-flight ancestor sharing. Update walks
	// (checkFirst == false) never coalesce: Evict rewrites every ancestor
	// image it read, so it must hold the full authenticated path.
	coalesce := checkFirst && s.Speculative && s.Pending != nil
	for {
		hdone := s.Unit.Hash(curReady, s.Layout.ChunkSize)
		if hdone > done {
			done = hdone
		}
		if cur == 0 {
			if s.CheckReads && (checkFirst || cur != c) {
				if d := e.checkAgainst(done, cur, curImg, s.Root, "root register mismatch"); d > done {
					done = d
				}
			}
			e.anc = ancestors
			return done, ancestors
		}
		parent, _, _ := s.Layout.Parent(cur)
		if coalesce {
			if pimg, cdone, ok := s.Pending.Cover(parent, start); ok {
				if s.CheckReads {
					var want []byte
					if s.verifyData() {
						want = s.slotBytes(pimg, cur)
					}
					if d := e.checkAgainst(done, cur, curImg, want,
						"stored hash does not match in-flight ancestor image"); d > done {
						done = d
					}
				}
				// The truncated path is only as good as the covering
				// check: this walk completes when it does.
				if cdone > done {
					done = cdone
				}
				p := s.Pending
				p.Stat.Coalesced++
				blocks := uint64(s.Layout.ChunkSize / s.BlockSize())
				for k := parent; ; {
					p.Stat.SavedBlockReads += blocks
					if k == 0 {
						break
					}
					k, _, _ = s.Layout.Parent(k)
				}
				e.anc = ancestors
				return done, ancestors
			}
		}
		parentImg := e.readChunkMem(parent)
		_, rdone := s.DRAM.Read(start, s.Layout.ChunkSize, bus.Hash)
		s.countExtra(uint64(s.Layout.ChunkSize / s.BlockSize()))
		ancestors = append(ancestors, parentImg)
		if s.CheckReads && (checkFirst || cur != c) {
			var want []byte
			if s.verifyData() {
				want = s.slotBytes(parentImg, cur)
			}
			if d := e.checkAgainst(rdone, cur, curImg, want, "stored hash does not match memory image"); d > done {
				done = d
			}
		}
		if rdone > done {
			done = rdone
		}
		cur = parent
		curImg = parentImg
		curReady = rdone
	}
}

// ReadBlock implements Engine: fetch the block, return it speculatively,
// and verify the whole ancestor path from memory in the background.
func (e *Naive) ReadBlock(now uint64, addr uint64) uint64 {
	s := e.sys
	if !s.Protected(addr) {
		return unprotectedRead(s, now, addr, e.Evict)
	}
	c := s.Layout.ChunkOf(addr)
	before := s.Stat.ExtraBlockReads
	img := e.readChunkMem(c)
	s.Stat.DemandBlockReads++
	critical, rdone := s.DRAM.Read(now, s.BlockSize(), bus.Data)
	// The arrived block enters the read buffer until its path check
	// completes; a full buffer delays delivery in blocking mode. The
	// speculative pipeline delivers at the critical word — buffer pressure
	// still delays the check itself (bufStart), but only the bounded
	// pending window below can push back on the processor.
	idx, bufStart := s.Unit.ReadBuf.Acquire(rdone)
	if bufStart > critical && !s.Speculative {
		critical = bufStart
	}
	done, anc := e.verifyPath(bufStart, c, img, true)
	if s.Speculative && s.Pending != nil {
		// Pin every ancestor this walk fetched for the lifetime of its
		// check, so overlapping walks can stop at a shared ancestor
		// instead of re-reading the whole upper path.
		k := c
		for _, aimg := range anc {
			k, _, _ = s.Layout.Parent(k)
			s.Pending.AddCover(k, aimg, done)
		}
	}
	e.releaseAncestors(anc)
	s.Unit.ReadBuf.Release(idx, done)
	s.noteCheck(done)
	if s.Speculative && s.Pending != nil {
		if floor := s.Pending.Admit(critical, done, false); floor > critical {
			critical = floor
		}
		if s.Tel != nil {
			end := done
			if end < critical {
				end = critical
			}
			s.Tel.Emit(telemetry.TrackSpec, telemetry.KindSpecCheck,
				critical, end, c, s.Pending.Outstanding(critical))
		}
	}

	s.observePath(s.Stat.ExtraBlockReads - before)
	s.Tel.Emit(telemetry.TrackIntegrity, telemetry.KindTreeWalk,
		now, done, c, s.Stat.ExtraBlockReads-before)
	if s.CheckReads {
		s.observeVerifyOverhead(critical, done)
	}
	ba := s.L2.BlockAddr(addr)
	// Fill copies img before the eviction below can re-enter the engine
	// and reuse the released buffer.
	ev := s.L2.Fill(ba, cache.Data, img)
	s.putImg(img)
	if ev.Valid && ev.Dirty {
		e.Evict(critical, ev)
	}
	return critical
}

// releaseAncestors hands the pooled ancestor images back to the system.
func (e *Naive) releaseAncestors(anc [][]byte) {
	for _, img := range anc {
		e.sys.putImg(img)
	}
}

// Evict implements Engine: verify the old ancestor path, then write the
// block and every recomputed hash on the path back to memory.
func (e *Naive) Evict(now uint64, line cache.Line) uint64 {
	s := e.sys
	if !s.Protected(line.Addr) {
		return unprotectedEvict(s, now, line)
	}
	s.Stat.Evictions++
	s.enterWriteBack()
	defer s.leaveWriteBack()
	c := s.Layout.ChunkOf(line.Addr)
	idx, start := s.Unit.WriteBuf.Acquire(now)

	// The ancestors' other slots flow into the recomputed hashes, so they
	// must be authenticated before being reused: verify the ancestor path.
	// The evicted block's own old value is NOT checked — it was verified
	// when it was allocated, and a fully overwritten block may never have
	// had its old value read at all (§5.3's optimization).
	oldImg := e.readChunkMem(c)
	_, rdone := s.DRAM.Read(start, s.Layout.ChunkSize, bus.Hash)
	s.countExtra(uint64(s.Layout.ChunkSize / s.BlockSize()))
	t, ancestors := e.verifyPath(rdone, c, oldImg, false)
	s.putImg(oldImg)

	// Write the new block, then rewrite every hash up the path. Writes
	// are posted (they occupy the bus but nothing waits on them); the
	// hash chain is serial because each parent's new hash depends on the
	// child's.
	if s.Functional {
		s.Mem.Write(line.Addr, line.Data)
		s.Exec.Bump(c)
	}
	s.DRAM.Write(t, s.BlockSize(), bus.Data)
	s.Stat.DataBlockWrites++

	// The hash chain is computed from the processor's own copy of the
	// chunk (the evicted line), never re-read from untrusted memory — a
	// dropped or substituted write must leave the stored hashes covering
	// what the processor *meant* to write, so the next read detects it.
	cur := c
	var curImg, lineCopy []byte
	if s.Functional {
		lineCopy = s.getImg()
		copy(lineCopy, line.Data)
		curImg = lineCopy
	}
	for level := 0; ; level++ {
		var h []byte
		if s.Functional {
			// The digest scratch is consumed (copied into the parent image
			// or the root) before the next iteration recomputes it.
			if s.skipDigests() {
				h = s.timingTag(cur)
			} else {
				h = s.hashChunkScratch(curImg)
				// cur's memory bytes are already final (the data write for
				// c, the slot rewrite for ancestors), so the digest can be
				// memoized at the current generation.
				s.Exec.Install(cur, s.Exec.Gen(cur), h)
			}
		}
		hd := s.Unit.Hash(t, s.Layout.ChunkSize)
		if hd > t {
			t = hd
		}
		if cur == 0 {
			if h != nil {
				s.Root = append(s.Root[:0], h...)
			}
			break
		}
		slotAddr, _ := s.Layout.HashAddr(cur)
		parent, _, _ := s.Layout.Parent(cur)
		if s.Pending != nil {
			// The rewrite makes any pinned pre-update image stale; a walk
			// verifying against it would flag a clean run.
			s.Pending.DropCover(parent)
		}
		parentImg := ancestors[level]
		if s.Functional {
			off := slotAddr - s.Layout.ChunkAddr(parent)
			copy(parentImg[off:], h)
			s.Mem.Write(s.Layout.ChunkAddr(parent), parentImg)
			s.Exec.Bump(parent)
		}
		s.DRAM.Write(t, s.Layout.ChunkSize, bus.Hash)
		s.Stat.HashBlockWrites += uint64(s.Layout.ChunkSize / s.BlockSize())
		cur = parent
		curImg = parentImg
	}
	s.putImg(lineCopy)
	e.releaseAncestors(ancestors)
	s.Unit.WriteBuf.Release(idx, t)
	s.noteCheck(t)
	s.Tel.Emit(telemetry.TrackIntegrity, telemetry.KindWriteBack, now, t, c, 0)
	if s.Speculative && s.Pending != nil {
		// Async commit: the processor is released once the line is accepted
		// into the write buffer; the serial hash chain drains behind it,
		// bounded by the pending window.
		return s.Pending.Admit(start, t, true)
	}
	return t
}

// AllocateFullWrite implements Engine: naive chunks equal blocks, so a
// full overwrite needs no fetch or path verification on allocation (the
// write-back will rebuild the path hashes from the new data).
func (e *Naive) AllocateFullWrite(now uint64, addr uint64) uint64 {
	return allocateFullWrite(e.sys, now, addr, e.Evict)
}

// Flush implements Engine.
func (e *Naive) Flush(now uint64) uint64 {
	return flushVia(e.sys, now, e.Evict)
}
