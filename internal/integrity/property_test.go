package integrity

import (
	"fmt"
	"testing"

	"memverify/internal/trace"
)

// TestRandomGeometriesStayConsistent fuzzes the configuration space:
// random L2 sizes, block sizes, chunk spans, buffer sizes and hash
// throughputs, across every protected scheme, each driven by a random
// workload. Whatever the geometry, an honest run must raise no violation
// and leave the stored tree covering memory after a flush.
func TestRandomGeometriesStayConsistent(t *testing.T) {
	rng := trace.NewRNG(2026)
	blockSizes := []int{32, 64, 128}
	l2Sizes := []int{4 << 10, 8 << 10, 32 << 10}
	spans := []int{1, 2, 4, 8}

	cases := 0
	for _, scheme := range protectedSchemes {
		for trial := 0; trial < 6; trial++ {
			bs := blockSizes[rng.Intn(len(blockSizes))]
			l2 := l2Sizes[rng.Intn(len(l2Sizes))]
			span := 1
			switch scheme {
			case "m", "i":
				span = spans[1+rng.Intn(len(spans)-1)]
			}
			// Keep arity >= 2: chunk must hold at least two 16 B records.
			if bs*span < 32 {
				bs = 64
			}
			cfg := rigConfig{
				scheme:      scheme,
				protected:   uint64(16<<10 + 16<<10*rng.Intn(3)),
				l2Size:      l2,
				blockSize:   bs,
				chunkBlocks: span,
			}
			name := fmt.Sprintf("%s/l2=%d/bs=%d/span=%d/prot=%d", scheme, l2, bs, span, cfg.protected)
			t.Run(name, func(t *testing.T) {
				r := newRig(t, cfg)
				// Randomize the hash unit, too.
				r.sys.Unit = NewHashUnit(uint64(20+rng.Intn(300)), 0.8+rng.Float64()*8,
					1+rng.Intn(32), 1+rng.Intn(32))
				r.randomWorkload(600)
				if r.sys.Stat.Violations != 0 {
					t.Fatalf("false positive: %v", r.sys.First)
				}
				r.flush()
				if err := r.verifyMemoryTree(); err != nil {
					t.Fatalf("tree inconsistent: %v", err)
				}
				// And tampering must still be caught.
				ba := r.dataBlocks()[rng.Intn(len(r.dataBlocks()))]
				r.evictAll()
				r.adv.Corrupt(ba+uint64(rng.Intn(bs)), 0x04)
				r.read(ba)
				if r.sys.Stat.Violations == 0 {
					t.Fatal("tampering undetected")
				}
			})
			cases++
		}
	}
	if cases != len(protectedSchemes)*6 {
		t.Fatalf("ran %d cases", cases)
	}
}

// TestStatsAccounting cross-checks the statistic counters against each
// other on a fixed run: every demand read corresponds to an L2 miss,
// write-backs to evictions, and hash traffic exists iff the scheme
// verifies.
func TestStatsAccounting(t *testing.T) {
	for _, scheme := range protectedSchemes {
		t.Run(scheme, func(t *testing.T) {
			r := newRig(t, defaultRig(scheme))
			r.randomWorkload(2000)
			st := &r.sys.Stat
			l2 := r.sys.L2.Stat

			if st.Checks == 0 {
				t.Error("no verifications performed")
			}
			if st.DemandBlockReads == 0 || st.ExtraBlockReads == 0 {
				t.Errorf("reads: demand %d extra %d", st.DemandBlockReads, st.ExtraBlockReads)
			}
			if st.ExtraWriteBackReads > st.ExtraBlockReads {
				t.Error("write-back extras exceed total extras")
			}
			// Every demand block read must correspond to a data-class L2
			// miss (read or write-allocate)... except the m/i schemes,
			// where one chunk fetch can demand multiple blocks.
			dataMisses := l2.Misses[0] + l2.WriteMiss[0]
			if scheme == "c" || scheme == "naive" {
				if st.DemandBlockReads > dataMisses {
					t.Errorf("demand reads %d > data misses %d", st.DemandBlockReads, dataMisses)
				}
			}
			if st.Evictions == 0 {
				t.Error("no evictions despite a thrashing workload")
			}
			if scheme == "i" && st.MACUpdates == 0 {
				t.Error("i scheme performed no MAC updates")
			}
			if scheme != "i" && st.MACUpdates != 0 {
				t.Errorf("%s scheme performed MAC updates", scheme)
			}
			if r.sys.Unit.Ops() == 0 {
				t.Error("hash unit idle")
			}
		})
	}
}

// TestViolationErrorFormatting exercises the error type.
func TestViolationErrorFormatting(t *testing.T) {
	v := &ViolationError{Scheme: "c", Chunk: 99, Detail: "boom"}
	if v.Error() == "" {
		t.Fatal("empty message")
	}
}
