package integrity

import (
	"fmt"

	"memverify/internal/bus"
)

// ViolationPolicy selects what the machine does when a verification fails
// — the containment semantics layered on the paper's §5.8 security
// exception. Detection itself is identical under every policy: the
// violation is always visible in Stats and to OnViolation observers
// before the policy acts.
type ViolationPolicy int

const (
	// PolicyRecord counts the violation and continues execution — the
	// measurement-friendly default (attack demonstrations want to observe
	// every detection, not just the first).
	PolicyRecord ViolationPolicy = iota
	// PolicyHalt raises the security exception of §5.8: the machine stops
	// trusting its memory and every subsequent program load or store
	// returns core.ErrHalted. Enforcement lives in core.Machine; engines
	// only report.
	PolicyHalt
	// PolicyRetry re-fetches and re-verifies a failing chunk once before
	// recording a violation, distinguishing a transient bus or DRAM fault
	// (the re-read passes: counted in Stats.RetriesTransient, no violation)
	// from persistent tampering (the re-read fails too: counted in
	// Stats.RetriesPersistent and recorded as a violation).
	PolicyRetry
)

// String returns the policy's configuration name.
func (p ViolationPolicy) String() string {
	switch p {
	case PolicyRecord:
		return "record"
	case PolicyHalt:
		return "halt"
	case PolicyRetry:
		return "retry"
	}
	return fmt.Sprintf("ViolationPolicy(%d)", int(p))
}

// ParseViolationPolicy maps a configuration string to its policy. The
// empty string is PolicyRecord, so zero-valued configs keep today's
// behaviour.
func ParseViolationPolicy(s string) (ViolationPolicy, error) {
	switch s {
	case "", "record":
		return PolicyRecord, nil
	case "halt":
		return PolicyHalt, nil
	case "retry":
		return PolicyRetry, nil
	}
	return PolicyRecord, fmt.Errorf("integrity: unknown violation policy %q (want record, halt or retry)", s)
}

// retryVerify is the PolicyRetry probe: it charges one more chunk fetch
// from external memory plus a hash, re-runs the check over the freshly
// read bytes, and classifies the fault. compose selects how the probe
// image is assembled: true uses composeImage (the c/m/i invariant — clean
// cached blocks are trusted on-chip state), false reads the raw chunk
// from memory (the naive engine's view).
//
// The probe re-reads only the failing chunk; a transient that hit the
// stored record's own fetch still classifies as persistent. That is the
// conservative direction: a transient mistaken for tampering raises the
// exception a real fault deserves anyway, whereas the reverse would
// swallow an attack.
func (s *System) retryVerify(now uint64, c uint64, compose bool, check func(img []byte) bool) (passed bool, done uint64) {
	s.Stat.Retries++
	var img []byte
	if compose {
		img, _ = s.composeImage(c)
	} else {
		img = s.getImg()
		s.Mem.Read(s.Layout.ChunkAddr(c), img)
	}
	_, done = s.DRAM.Read(now, s.Layout.ChunkSize, bus.Hash)
	s.countExtra(uint64(s.chunkBlocks()))
	if hd := s.Unit.Hash(done, s.Layout.ChunkSize); hd > done {
		done = hd
	}
	passed = check(img)
	s.putImg(img)
	if passed {
		s.Stat.RetriesTransient++
	} else {
		s.Stat.RetriesPersistent++
	}
	return passed, done
}
