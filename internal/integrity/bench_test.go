package integrity

import (
	"testing"

	"memverify/internal/trace"
)

// benchEngine builds a functional rig for engine micro-benchmarks.
func benchEngine(b *testing.B, scheme string) (*rig, []uint64) {
	b.Helper()
	r := newRig(b, defaultRig(scheme))
	return r, r.dataBlocks()
}

func BenchmarkEngineReadMiss(b *testing.B) {
	for _, scheme := range []string{"base", "naive", "c", "m", "i"} {
		scheme := scheme
		b.Run(scheme, func(b *testing.B) {
			r, blocks := benchEngine(b, scheme)
			rng := trace.NewRNG(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ba := blocks[rng.Intn(len(blocks))]
				r.sys.L2.Invalidate(ba)
				r.read(ba)
			}
		})
	}
}

func BenchmarkEngineWriteBack(b *testing.B) {
	for _, scheme := range []string{"c", "m", "i"} {
		scheme := scheme
		b.Run(scheme, func(b *testing.B) {
			r, blocks := benchEngine(b, scheme)
			data := make([]byte, r.sys.BlockSize())
			for i := 0; i < b.N; i++ {
				ba := blocks[i%len(blocks)]
				r.write(ba, data)
				victim := r.sys.L2.Invalidate(ba)
				r.engine.Evict(r.now, victim)
			}
		})
	}
}
