package integrity

import (
	"bytes"
	"testing"
)

// evictAll forces every cached copy of the protected region out so the
// next read must go to (possibly tampered) memory.
func (r *rig) evictAll() {
	r.flush()
	for ba := uint64(0); ba < r.sys.Layout.Size(); ba += uint64(r.sys.BlockSize()) {
		r.sys.L2.Invalidate(ba)
	}
}

// TestCorruptionDetected flips a byte of every protected data block in
// turn and expects each engine to flag the next read.
func TestCorruptionDetected(t *testing.T) {
	for _, scheme := range protectedSchemes {
		t.Run(scheme, func(t *testing.T) {
			r := newRig(t, defaultRig(scheme))
			r.randomWorkload(500)
			r.evictAll()
			blocks := r.dataBlocks()
			for i := 0; i < 16; i++ {
				ba := blocks[r.rng.Intn(len(blocks))]
				off := uint64(r.rng.Intn(r.sys.BlockSize()))
				mask := byte(1) << uint(r.rng.Intn(8))
				before := r.sys.Stat.Violations
				r.adv.Corrupt(ba+off, mask)
				r.read(ba)
				if r.sys.Stat.Violations == before {
					t.Fatalf("corruption of byte %#x undetected", ba+off)
				}
				// Undo the flip and drop the poisoned cached copy so the
				// next round starts from a consistent state.
				r.adv.Corrupt(ba+off, mask)
				r.sys.L2.Invalidate(ba)
				r.shadow[ba] = func() []byte {
					b := make([]byte, r.sys.BlockSize())
					r.sys.Mem.Read(ba, b)
					return b
				}()
			}
		})
	}
}

// TestCorruptionOfHashChunkDetected corrupts a stored tree node rather
// than data.
func TestCorruptionOfHashChunkDetected(t *testing.T) {
	for _, scheme := range protectedSchemes {
		t.Run(scheme, func(t *testing.T) {
			r := newRig(t, defaultRig(scheme))
			r.randomWorkload(300)
			r.evictAll()
			// Corrupt the stored record of the block we will read.
			ba := r.dataBlocks()[7]
			slotAddr, _ := r.sys.Layout.HashAddr(r.sys.Layout.ChunkOf(ba))
			r.adv.Corrupt(slotAddr+3, 0x80)
			r.read(ba)
			if r.sys.Stat.Violations == 0 {
				t.Fatal("corrupted stored record undetected")
			}
		})
	}
}

// TestReplayAttackDetected performs the XOM-style replay of §4.4: record a
// block (and its ancestor records), let the program overwrite it, then
// serve the stale bytes back. The tree must catch it because the root
// register cannot be replayed.
func TestReplayAttackDetected(t *testing.T) {
	for _, scheme := range protectedSchemes {
		t.Run(scheme, func(t *testing.T) {
			r := newRig(t, defaultRig(scheme))
			ba := r.dataBlocks()[3]
			r.write(ba, bytes.Repeat([]byte{0x01}, r.sys.BlockSize()))
			r.evictAll() // old value and matching tree are now in memory

			// Adversary snapshots the ENTIRE protected region — data and
			// every tree level. Even a full-memory replay must fail,
			// because the root hash lives on-chip.
			snap := r.adv.Snapshot(0, r.sys.Layout.Size())

			r.write(ba, bytes.Repeat([]byte{0x02}, r.sys.BlockSize()))
			r.evictAll() // new value written back through the tree

			r.adv.Replay(snap)
			r.read(ba)
			if r.sys.Stat.Violations == 0 {
				t.Fatal("full-memory replay undetected (root register should prevent this)")
			}
		})
	}
}

// TestSpliceAttackDetected makes reads of one block return another block's
// (individually valid) contents.
func TestSpliceAttackDetected(t *testing.T) {
	for _, scheme := range protectedSchemes {
		t.Run(scheme, func(t *testing.T) {
			r := newRig(t, defaultRig(scheme))
			r.randomWorkload(300)
			r.evictAll()
			blocks := r.dataBlocks()
			src, dst := blocks[10], blocks[20]
			// Only splice if contents differ, else the attack is vacuous.
			a, b := make([]byte, 64), make([]byte, 64)
			r.sys.Mem.Read(src, a)
			r.sys.Mem.Read(dst, b)
			if bytes.Equal(a, b) {
				r.write(src, bytes.Repeat([]byte{0x5A}, r.sys.BlockSize()))
				r.evictAll()
			}
			r.adv.Splice(dst, src, uint64(r.sys.BlockSize()))
			r.read(dst)
			if r.sys.Stat.Violations == 0 {
				t.Fatal("splice attack undetected")
			}
		})
	}
}

// TestDroppedWriteDetected has memory silently discard the processor's
// write-back; the stored record has moved on, so the next read of the
// stale data must fail.
func TestDroppedWriteDetected(t *testing.T) {
	for _, scheme := range protectedSchemes {
		t.Run(scheme, func(t *testing.T) {
			r := newRig(t, defaultRig(scheme))
			ba := r.dataBlocks()[5]
			r.read(ba)
			r.adv.DropWrites(ba, uint64(r.sys.BlockSize()))
			r.write(ba, bytes.Repeat([]byte{0x77}, r.sys.BlockSize()))
			r.evictAll()
			r.read(ba)
			if r.sys.Stat.Violations == 0 {
				t.Fatal("dropped write-back undetected")
			}
		})
	}
}

// TestUnprotectedRegionIsNotChecked verifies the DMA region semantics of
// §5.7.1: outside the tree, tampering is (by design) not detected.
func TestUnprotectedRegionIsNotChecked(t *testing.T) {
	cfg := defaultRig("c")
	r := newRig(t, cfg)
	unprot := (r.sys.Layout.Size() + 4095) &^ 4095
	r.write(unprot, bytes.Repeat([]byte{0xD3}, r.sys.BlockSize()))
	r.evictAll()
	r.adv.Corrupt(unprot, 0xFF)
	got := r.read(unprot)
	if r.sys.Stat.Violations != 0 {
		t.Fatal("unprotected region raised a violation")
	}
	if got[0] != (0xD3 ^ 0xFF) {
		t.Fatalf("unprotected read returned %#x", got[0])
	}
	if r.sys.Protected(unprot) {
		t.Error("address beyond the layout reported as protected")
	}
	if !r.sys.Protected(0) {
		t.Error("address 0 must be protected")
	}
}

// TestOnViolationCallback checks the observer fires with the details.
func TestOnViolationCallback(t *testing.T) {
	r := newRig(t, defaultRig("c"))
	var seen []*ViolationError
	r.sys.OnViolation = func(v *ViolationError) { seen = append(seen, v) }
	ba := r.dataBlocks()[0]
	r.read(ba)
	r.evictAll()
	r.adv.Corrupt(ba, 0x10)
	r.read(ba)
	if len(seen) == 0 {
		t.Fatal("callback not invoked")
	}
	if seen[0].Scheme != "c" || seen[0].Error() == "" {
		t.Errorf("violation details: %+v", seen[0])
	}
	if r.sys.First == nil {
		t.Error("First violation not recorded")
	}
	r.sys.ResetStats()
	if r.sys.First != nil || r.sys.Stat.Violations != 0 {
		t.Error("ResetStats did not clear violations")
	}
}

// TestCheckReadsOffSuppressesExceptions mirrors initialization step 1:
// with CheckReads off, corrupted data is read without an exception.
func TestCheckReadsOffSuppressesExceptions(t *testing.T) {
	r := newRig(t, defaultRig("c"))
	ba := r.dataBlocks()[2]
	r.read(ba)
	r.evictAll()
	r.adv.Corrupt(ba, 0x01)
	r.sys.CheckReads = false
	r.read(ba)
	if r.sys.Stat.Violations != 0 {
		t.Fatal("exception raised while CheckReads disabled")
	}
}

// TestFullWriteAllocationSkipsCheck pins the §5.3 optimization: a block
// about to be entirely overwritten is allocated without reading or
// checking memory — even a tampered old value raises nothing, and the
// tree ends up covering the new data.
func TestFullWriteAllocationSkipsCheck(t *testing.T) {
	for _, scheme := range []string{"c", "naive"} {
		t.Run(scheme, func(t *testing.T) {
			r := newRig(t, defaultRig(scheme))
			ba := r.dataBlocks()[6]
			r.evictAll()

			readsBefore := r.sys.Stat.DemandBlockReads + r.sys.Stat.ExtraBlockReads
			// Tamper with the block's memory: the old value is garbage,
			// but the program overwrites all of it anyway.
			r.adv.Corrupt(ba, 0xFF)

			r.now = r.engine.AllocateFullWrite(r.now, ba)
			ln := r.sys.L2.Peek(ba)
			if ln == nil || !ln.Dirty {
				t.Fatal("full-write allocation did not install a dirty line")
			}
			fresh := bytes.Repeat([]byte{0x3C}, r.sys.BlockSize())
			copy(ln.Data, fresh)
			r.shadow[ba] = fresh

			if got := r.sys.Stat.DemandBlockReads + r.sys.Stat.ExtraBlockReads; got != readsBefore {
				t.Errorf("full-write allocation read %d blocks from memory", got-readsBefore)
			}
			if r.sys.Stat.Violations != 0 {
				t.Fatalf("full-write allocation raised: %v", r.sys.First)
			}

			// After flushing, the tree must cover the new contents.
			r.flush()
			if err := r.verifyMemoryTree(); err != nil {
				t.Fatalf("tree inconsistent after full write: %v", err)
			}
			r.evictAll()
			if got := r.read(ba); !bytes.Equal(got, fresh) {
				t.Error("full write lost data")
			}
			if r.sys.Stat.Violations != 0 {
				t.Fatalf("post-write read raised: %v", r.sys.First)
			}
		})
	}
}

// TestFullWriteFallsBackForMultiBlockChunks: with chunks spanning several
// blocks the sibling data must still be fetched and checked, so the
// optimization is declined and tampering is detected.
func TestFullWriteFallsBackForMultiBlockChunks(t *testing.T) {
	for _, scheme := range []string{"m", "i"} {
		t.Run(scheme, func(t *testing.T) {
			r := newRig(t, defaultRig(scheme))
			ba := r.dataBlocks()[6]
			r.evictAll()
			r.adv.Corrupt(ba, 0xFF)
			r.now = r.engine.AllocateFullWrite(r.now, ba)
			if r.sys.Stat.Violations == 0 {
				t.Fatal("multi-block chunk allocation skipped the check")
			}
		})
	}
}

// TestIncrPredictedValueReplayEndToEnd mounts §5.5's first attack against
// the complete i engine: during write-back the adversary answers the
// unchecked old-value read with the (correctly predicted) new value and
// afterwards restores the stale memory. With the 1-bit timestamps folded
// into the MAC terms the next read detects it; with timestamps disabled
// the stale value verifies — exactly the vulnerability the paper analyzes.
func TestIncrPredictedValueReplayEndToEnd(t *testing.T) {
	run := func(stamped bool) (violations uint64) {
		r := newRig(t, defaultRig("i"))
		inc := r.engine.(*Incr)
		if !stamped {
			inc.MAC().Timestamps = false
			inc.InitializeTree() // records must match the unstamped terms
		}
		ba := r.dataBlocks()[4]
		bs := r.sys.BlockSize()

		// Authentic old value O sits in memory.
		oldVal := r.read(ba)
		r.evictAll()

		// The program writes the new value N (dirty in cache).
		_ = oldVal
		newVal := bytes.Repeat([]byte{0xA7}, bs)
		r.write(ba, newVal)

		// The adversary predicts N: before the write-back's unchecked
		// old-value read, memory is made to answer N...
		snap := r.adv.Snapshot(ba, uint64(bs)) // records O for later replay
		blk := make([]byte, bs)
		r.sys.Mem.Read(ba, blk)
		for i := range blk {
			r.adv.Corrupt(ba+uint64(i), blk[i]^newVal[i]) // memory := N
		}

		// Write-back happens; the engine reads "old" = N (the lie) and
		// then writes N (harmlessly, memory already holds it).
		victim := r.sys.L2.Invalidate(ba)
		r.engine.Evict(r.now, victim)

		// ...and afterwards the stale O is replayed forever.
		r.adv.Replay(snap)

		r.sys.ResetStats()
		r.read(ba)
		return r.sys.Stat.Violations
	}

	if v := run(true); v == 0 {
		t.Error("timestamps enabled: predicted-value replay went undetected")
	}
	if v := run(false); v != 0 {
		t.Error("timestamps disabled: attack should succeed, demonstrating the vulnerability the stamps close")
	}
}
