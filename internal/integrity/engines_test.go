package integrity

import (
	"bytes"
	"testing"
)

// TestWorkloadKeepsTreeConsistent drives each protected engine with a
// random read/write workload, flushes, and verifies every stored record
// covers memory exactly — the end-to-end functional invariant of §5.3.
func TestWorkloadKeepsTreeConsistent(t *testing.T) {
	for _, scheme := range protectedSchemes {
		t.Run(scheme, func(t *testing.T) {
			r := newRig(t, defaultRig(scheme))
			r.randomWorkload(3000)
			if r.sys.Stat.Violations != 0 {
				t.Fatalf("false positives during honest run: %v", r.sys.First)
			}
			r.flush()
			if r.sys.Stat.Violations != 0 {
				t.Fatalf("false positives during flush: %v", r.sys.First)
			}
			if len(r.sys.L2.DirtyLines()) != 0 {
				t.Fatal("dirty lines remain after flush")
			}
			if err := r.verifyMemoryTree(); err != nil {
				t.Fatalf("tree inconsistent with memory after flush: %v", err)
			}
		})
	}
}

// TestDataSurvivesEvictionRoundTrip writes every block, forces total
// eviction by thrashing, and reads everything back.
func TestDataSurvivesEvictionRoundTrip(t *testing.T) {
	for _, scheme := range protectedSchemes {
		t.Run(scheme, func(t *testing.T) {
			r := newRig(t, defaultRig(scheme))
			blocks := r.dataBlocks()
			for i, ba := range blocks {
				data := bytes.Repeat([]byte{byte(i + 1)}, r.sys.BlockSize())
				r.write(ba, data)
			}
			// Re-reading everything forces the earlier writes out through
			// the engine (the L2 is much smaller than the data region).
			for i, ba := range blocks {
				got := r.read(ba)
				if got[0] != byte(i+1) {
					t.Fatalf("block %d corrupted on round trip", i)
				}
			}
			if r.sys.Stat.Violations != 0 {
				t.Fatalf("violations on honest run: %v", r.sys.First)
			}
		})
	}
}

// TestBaseEngineDoesNoIntegrityWork checks that the baseline never hashes
// or touches the tree.
func TestBaseEngineDoesNoIntegrityWork(t *testing.T) {
	r := newRig(t, defaultRig("base"))
	r.randomWorkload(500)
	r.flush()
	if r.sys.Unit.Ops() != 0 {
		t.Errorf("base engine performed %d hash ops", r.sys.Unit.Ops())
	}
	if r.sys.Stat.ExtraBlockReads != 0 {
		t.Errorf("base engine made %d extra reads", r.sys.Stat.ExtraBlockReads)
	}
	if r.engine.Name() != "base" {
		t.Errorf("Name = %q", r.engine.Name())
	}
}

// TestNaiveExtraReadsEqualTreeDepth checks the log_m(N) cost: each cold
// read of an uncached block costs exactly Levels() ancestor reads.
func TestNaiveExtraReadsEqualTreeDepth(t *testing.T) {
	r := newRig(t, defaultRig("naive"))
	levels := uint64(r.sys.Layout.Levels())
	blocks := r.dataBlocks()
	before := r.sys.Stat.ExtraBlockReads
	for _, ba := range blocks[:8] {
		r.read(ba)
	}
	got := r.sys.Stat.ExtraBlockReads - before
	if got != 8*levels {
		t.Errorf("8 cold misses made %d extra reads, want %d (8 x %d levels)", got, 8*levels, levels)
	}
}

// TestCachedSchemeCutsExtraReads verifies the paper's headline: with tree
// nodes cached, sequential misses cost far fewer than Levels() extra reads.
func TestCachedSchemeCutsExtraReads(t *testing.T) {
	r := newRig(t, defaultRig("c"))
	blocks := r.dataBlocks()
	n := len(blocks) / 2 // stay within what the hash working set allows
	before := r.sys.Stat.ExtraBlockReads
	for _, ba := range blocks[:n] {
		r.read(ba)
	}
	extra := r.sys.Stat.ExtraBlockReads - before
	perMiss := float64(extra) / float64(n)
	if perMiss >= 1.0 {
		t.Errorf("cached scheme: %.2f extra reads per miss, want < 1", perMiss)
	}
	levels := float64(r.sys.Layout.Levels())
	if perMiss > levels/2 {
		t.Errorf("caching saved too little: %.2f vs %v levels", perMiss, levels)
	}
}

// TestSchemeNames pins the paper's labels.
func TestSchemeNames(t *testing.T) {
	for _, tc := range []struct{ scheme, want string }{
		{"c", "c"}, {"m", "m"}, {"i", "i"}, {"naive", "naive"},
	} {
		r := newRig(t, defaultRig(tc.scheme))
		if r.engine.Name() != tc.want {
			t.Errorf("scheme %s: Name = %q", tc.scheme, r.engine.Name())
		}
	}
}

// TestMultiBlockWriteBackCombinesSiblings dirties both blocks of a chunk
// and checks that evicting one writes back both (m scheme Write-Back,
// §5.4: "write the blocks that were dirty" and mark them clean).
func TestMultiBlockWriteBackCombinesSiblings(t *testing.T) {
	r := newRig(t, defaultRig("m"))
	l := r.sys.Layout
	base := l.ChunkAddr(l.InteriorChunks) // first data chunk
	bs := uint64(r.sys.BlockSize())

	d0 := bytes.Repeat([]byte{0xAA}, int(bs))
	d1 := bytes.Repeat([]byte{0xBB}, int(bs))
	r.write(base, d0)
	r.write(base+bs, d1)

	// Evict the first block via the engine directly.
	victim := r.sys.L2.Invalidate(base)
	if !victim.Dirty {
		t.Fatal("victim should be dirty")
	}
	r.engine.Evict(r.now, victim)

	// Both blocks must now be in memory, and the sibling marked clean.
	got := make([]byte, bs)
	r.sys.Mem.Read(base, got)
	if !bytes.Equal(got, d0) {
		t.Error("evicted block not written to memory")
	}
	r.sys.Mem.Read(base+bs, got)
	if !bytes.Equal(got, d1) {
		t.Error("dirty sibling not written back with the chunk")
	}
	if ln := r.sys.L2.Peek(base + bs); ln == nil || ln.Dirty {
		t.Error("sibling should remain cached and be marked clean")
	}
	if r.sys.Stat.Violations != 0 {
		t.Fatalf("violations: %v", r.sys.First)
	}
	// The stored hash must cover the new chunk contents.
	r.flush()
	if err := r.verifyMemoryTree(); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalWriteBackLeavesSiblingDirty checks the contrasting i
// behaviour: the constant-work write-back touches only the evicted block.
func TestIncrementalWriteBackLeavesSiblingDirty(t *testing.T) {
	r := newRig(t, defaultRig("i"))
	l := r.sys.Layout
	base := l.ChunkAddr(l.InteriorChunks)
	bs := uint64(r.sys.BlockSize())

	d0 := bytes.Repeat([]byte{0x11}, int(bs))
	d1 := bytes.Repeat([]byte{0x22}, int(bs))
	r.write(base, d0)
	r.write(base+bs, d1)

	victim := r.sys.L2.Invalidate(base)
	r.engine.Evict(r.now, victim)

	got := make([]byte, bs)
	r.sys.Mem.Read(base, got)
	if !bytes.Equal(got, d0) {
		t.Error("evicted block not written")
	}
	r.sys.Mem.Read(base+bs, got)
	if bytes.Equal(got, d1) {
		t.Error("sibling was written back; the i scheme must not touch it")
	}
	if ln := r.sys.L2.Peek(base + bs); ln == nil || !ln.Dirty {
		t.Error("sibling must remain dirty in the cache")
	}
	// Reading the chunk's other block back must still verify (the MAC
	// covers memory state: new block 0, old block 1).
	r.sys.L2.Invalidate(base)
	r.read(base)
	if r.sys.Stat.Violations != 0 {
		t.Fatalf("false positive after incremental write-back: %v", r.sys.First)
	}
}

// TestIncrStampsFlipPerWriteBack evicts the same block repeatedly and
// watches its timestamp bit flip in the stored record.
func TestIncrStampsFlipPerWriteBack(t *testing.T) {
	r := newRig(t, defaultRig("i"))
	inc := r.engine.(*Incr)
	l := r.sys.Layout
	base := l.ChunkAddr(l.InteriorChunks)
	slotAddr, _ := l.HashAddr(l.InteriorChunks)

	readStamp := func() byte {
		rec := make([]byte, 16)
		// The record may be cached (dirty) or in memory; prefer the cache.
		if ln := r.sys.L2.Peek(slotAddr); ln != nil {
			off := slotAddr - ln.Addr
			copy(rec, ln.Data[off:])
		} else {
			r.sys.Mem.Read(slotAddr, rec)
		}
		var tag [16]byte
		copy(tag[:], rec)
		return inc.MAC().Stamps(tag)
	}

	if s := readStamp(); s != 0 {
		t.Fatalf("initial stamps %08b, want 0", s)
	}
	for round := 1; round <= 3; round++ {
		data := bytes.Repeat([]byte{byte(round)}, r.sys.BlockSize())
		r.write(base, data)
		victim := r.sys.L2.Invalidate(base)
		r.engine.Evict(r.now, victim)
		want := byte(round % 2) // bit 0 flips each write-back
		if s := readStamp() & 1; s != want {
			t.Fatalf("round %d: stamp bit %d, want %d", round, s, want)
		}
	}
}

// TestTimingDeterminism re-runs the same workload and expects identical
// final cycle counts and statistics.
func TestTimingDeterminism(t *testing.T) {
	for _, scheme := range protectedSchemes {
		a := newRig(t, defaultRig(scheme))
		b := newRig(t, defaultRig(scheme))
		a.randomWorkload(800)
		b.randomWorkload(800)
		if a.now != b.now {
			t.Errorf("%s: cycle counts differ: %d vs %d", scheme, a.now, b.now)
		}
		if a.sys.Stat != b.sys.Stat {
			t.Errorf("%s: stats differ", scheme)
		}
	}
}

// TestSpeculativeReturnBeatsCheck verifies §5.8's performance property:
// the processor gets its data before the background check completes.
func TestSpeculativeReturnBeatsCheck(t *testing.T) {
	r := newRig(t, defaultRig("c"))
	ba := r.dataBlocks()[0]
	e := r.engine.(*Cached)
	c := r.sys.Layout.ChunkOf(ba)
	_, ready, checkDone := e.readAndCheckChunk(1000, c, ba)
	if ready >= checkDone {
		t.Errorf("data ready at %d, check done at %d: no speculation window", ready, checkDone)
	}
}

// TestEvictCleanVictimIsFree checks clean evictions do not reach the
// engine's write-back machinery (they are simply dropped).
func TestEvictCleanVictimIsFree(t *testing.T) {
	r := newRig(t, defaultRig("c"))
	blocks := r.dataBlocks()
	// Read (never write) far more blocks than the cache holds.
	for _, ba := range blocks {
		r.read(ba)
	}
	if w := r.sys.Stat.DataBlockWrites; w != 0 {
		t.Errorf("clean workload caused %d data writes", w)
	}
}

// TestPathLengthDistribution measures the paper's thesis directly: cold
// naive misses walk the whole tree (Levels() extra reads every time),
// while the cached scheme's misses usually stop at a resident ancestor.
func TestPathLengthDistribution(t *testing.T) {
	nv := newRig(t, defaultRig("naive"))
	levels := uint64(nv.sys.Layout.Levels())
	for _, ba := range nv.dataBlocks()[:32] {
		nv.read(ba)
	}
	h := nv.sys.PathExtras
	if h == nil || h.Count() != 32 {
		t.Fatalf("naive histogram count %v", h)
	}
	if h.Mean() != float64(levels) {
		t.Errorf("naive mean path %f, want exactly %d", h.Mean(), levels)
	}

	cd := newRig(t, defaultRig("c"))
	blocks := cd.dataBlocks()
	for _, ba := range blocks[:len(blocks)/2] {
		cd.read(ba)
	}
	hc := cd.sys.PathExtras
	if hc.Mean() >= float64(levels)/2 {
		t.Errorf("cached mean path %f not well below %d levels", hc.Mean(), levels)
	}
	// Most cached misses must finish with at most 2 extra reads (a cached
	// ancestor terminates the walk almost immediately).
	short := hc.Bucket(0) + hc.Bucket(1) + hc.Bucket(2)
	if float64(short) < 0.6*float64(hc.Count()) {
		t.Errorf("only %d/%d cached misses had short paths", short, hc.Count())
	}
}
