package integrity

import "memverify/internal/stats"

// SpecStats counts the speculative-verification pipeline's activity: how
// many checks ran in the background, how often the bounded in-flight
// window pushed back on delivery, how much verify latency was hidden
// behind the CPU (overlap), and how violations moved through the
// deferred-resolution path. Zero in blocking mode. Kept outside Stats so
// the cross-mode equivalence suite can compare Metrics minus timing.
type SpecStats struct {
	Checks     uint64 // demand-read checks admitted to the pending window
	Writebacks uint64 // write-back walks admitted to the pending window

	WindowStalls      uint64 // admissions that waited for a window slot
	WindowStallCycles uint64 // delivery cycles spent waiting for a slot
	PendingPeak       uint64 // peak outstanding checks observed at admission
	OverlapCycles     uint64 // sum of (check done - data delivered): hidden verify latency

	DeferredViolations uint64 // violations parked for later resolution
	ResolvedViolations uint64 // deferred violations whose policy has been applied

	Coalesced       uint64 // read walks cut short at an in-flight ancestor (HMT-style)
	SavedBlockReads uint64 // ancestor block reads those coalesced walks skipped

	Barriers          uint64 // explicit Machine.Barrier calls
	BarrierWaitCycles uint64 // cycles barriers spent draining outstanding checks
}

// Merge accumulates o into s. PendingPeak merges as a maximum, everything
// else sums — matching how core.MergeMetrics aggregates shards.
func (s *SpecStats) Merge(o *SpecStats) {
	s.Checks += o.Checks
	s.Writebacks += o.Writebacks
	s.WindowStalls += o.WindowStalls
	s.WindowStallCycles += o.WindowStallCycles
	if o.PendingPeak > s.PendingPeak {
		s.PendingPeak = o.PendingPeak
	}
	s.OverlapCycles += o.OverlapCycles
	s.DeferredViolations += o.DeferredViolations
	s.ResolvedViolations += o.ResolvedViolations
	s.Coalesced += o.Coalesced
	s.SavedBlockReads += o.SavedBlockReads
	s.Barriers += o.Barriers
	s.BarrierWaitCycles += o.BarrierWaitCycles
}

// DefaultSpecWindow is the pending-check window depth used when the
// configuration leaves SpecWindow at zero: enough to cover the hash
// buffers plus queued walks without letting checks pile up unboundedly.
const DefaultSpecWindow = 64

// coverEntry pins the memory image of one tree chunk for the lifetime of
// the window buffer slot holding the walk that fetched it.
type coverEntry struct {
	img  []byte
	done uint64 // the fetching walk's check completion (inherited by coalesced walks)
	seq  uint64 // admission count at registration; recycled after window-depth more
}

// deferredViolation is one detected-but-unresolved violation: the walk
// that found it has been issued, its policy consequences (halt, observer
// callback) apply once simulated time reaches resolveAt or a barrier
// drains the pipeline.
type deferredViolation struct {
	v         *ViolationError
	resolveAt uint64
}

// PendingChecks tracks the speculative mode's outstanding background
// verifications. It is a timing model, not a work queue: every check
// still executes functionally at the moment the access runs (the
// simulator is single-threaded), but its completion cycle is parked here
// so (a) delivery stalls when more than window-size checks would be in
// flight, and (b) violation policy is applied only when the check would
// actually have resolved — at its completion cycle or at a barrier.
//
// The window is a ring of the completion cycles of the last len(window)
// admitted checks. Admitting against a full ring returns the oldest
// completion cycle as the delivery floor: the CPU cannot retire a new
// speculative result until the oldest outstanding check has drained.
type PendingChecks struct {
	window []uint64
	head   int // oldest entry when count == len(window)
	count  int

	deferred []deferredViolation

	// cover maps a tree chunk to the image the walk occupying one of the
	// window's buffer slots fetched it with: a later read walk reaching
	// the chunk can stop there, verify against the pinned image and
	// inherit the covering check's verdict — the HMT-style sharing of
	// ancestors between multiple in-flight verifications. An entry stays
	// resident until its slot is recycled (window-depth admissions later)
	// or a barrier closes the epoch; a resident entry whose check has
	// already resolved is trusted on-chip state, exactly like a §5.8
	// buffer entry whose check has drained. The store is W×ChunkSize
	// bytes of dedicated buffer storage, not a cache: nothing survives a
	// barrier and there is no replacement policy beyond slot recycling.
	cover map[uint64]coverEntry
	seq   uint64 // admissions so far; stamps cover entries for recycling

	Stat SpecStats

	// Occ and Overlap are optional telemetry probes: outstanding checks
	// observed at each admission, and per-check hidden verify latency.
	Occ     *stats.Histogram
	Overlap *stats.Histogram
}

// NewPendingChecks returns a tracker with the given window depth
// (<= 0 selects DefaultSpecWindow).
func NewPendingChecks(window int) *PendingChecks {
	if window <= 0 {
		window = DefaultSpecWindow
	}
	return &PendingChecks{window: make([]uint64, window)}
}

// Window returns the configured window depth.
func (p *PendingChecks) Window() int { return len(p.window) }

// Outstanding returns how many tracked checks are still running at now.
func (p *PendingChecks) Outstanding(now uint64) uint64 {
	var n uint64
	for i := 0; i < p.count; i++ {
		if p.window[(p.head+i)%len(p.window)] > now {
			n++
		}
	}
	return n
}

// Admit records a background check completing at done whose data was
// ready for speculative delivery at now, and returns the delivery floor:
// now, or later if the bounded window forced the delivery to wait for
// the oldest outstanding check to drain.
func (p *PendingChecks) Admit(now, done uint64, writeback bool) uint64 {
	p.seq++
	if writeback {
		p.Stat.Writebacks++
	} else {
		p.Stat.Checks++
	}
	occ := p.Outstanding(now)
	if occ+1 > p.Stat.PendingPeak {
		p.Stat.PendingPeak = occ + 1
	}
	if p.Occ != nil {
		p.Occ.Observe(occ)
	}
	if done > now {
		p.Stat.OverlapCycles += done - now
		if p.Overlap != nil {
			p.Overlap.Observe(done - now)
		}
	}
	floor := now
	if p.count == len(p.window) {
		if oldest := p.window[p.head]; oldest > floor {
			p.Stat.WindowStalls++
			p.Stat.WindowStallCycles += oldest - floor
			floor = oldest
		}
		p.window[p.head] = done
		p.head = (p.head + 1) % len(p.window)
	} else {
		p.window[(p.head+p.count)%len(p.window)] = done
		p.count++
	}
	return floor
}

// Cover returns the pinned image and check-completion cycle of a
// window-resident walk covering chunk c. Entries whose buffer slot has
// been recycled (registered more than window-depth admissions ago) are
// dropped on the way.
func (p *PendingChecks) Cover(c uint64, start uint64) ([]byte, uint64, bool) {
	ent, ok := p.cover[c]
	if !ok {
		return nil, 0, false
	}
	if p.seq-ent.seq > uint64(len(p.window)) {
		delete(p.cover, c)
		return nil, 0, false
	}
	return ent.img, ent.done, true
}

// AddCover pins a copy of img as chunk c's resident image; the covering
// check completes at done. Re-registration refreshes the slot.
func (p *PendingChecks) AddCover(c uint64, img []byte, done uint64) {
	if p.cover == nil {
		p.cover = make(map[uint64]coverEntry)
	}
	ent := p.cover[c]
	if cap(ent.img) >= len(img) {
		ent.img = ent.img[:len(img)]
	} else {
		ent.img = make([]byte, len(img))
	}
	copy(ent.img, img)
	ent.done = done
	ent.seq = p.seq
	p.cover[c] = ent
}

// DropCover invalidates chunk c's pinned image. Update walks call this
// for every chunk they rewrite: the pinned image predates the update, and
// a later walk verifying against it would flag a clean run.
func (p *PendingChecks) DropCover(c uint64) {
	delete(p.cover, c)
}

// clearCover empties the cover store — the barrier path, after which no
// check is outstanding and no image is pinned.
func (p *PendingChecks) clearCover() {
	for c := range p.cover {
		delete(p.cover, c)
	}
}

// Defer parks a detected violation until simulated time reaches
// resolveAt (its check's completion cycle) or a barrier drains the
// pipeline. Detection statistics are recorded by the caller at detect
// time; only the policy consequences wait.
func (p *PendingChecks) Defer(v *ViolationError, resolveAt uint64) {
	p.Stat.DeferredViolations++
	p.deferred = append(p.deferred, deferredViolation{v: v, resolveAt: resolveAt})
}

// ResolveUpTo applies (in deferral order) every parked violation whose
// check has completed by now.
func (p *PendingChecks) ResolveUpTo(now uint64, apply func(*ViolationError)) {
	if len(p.deferred) == 0 {
		return
	}
	kept := p.deferred[:0]
	for _, d := range p.deferred {
		if d.resolveAt <= now {
			p.Stat.ResolvedViolations++
			if apply != nil {
				apply(d.v)
			}
		} else {
			kept = append(kept, d)
		}
	}
	tail := p.deferred[len(kept):]
	for i := range tail {
		tail[i] = deferredViolation{}
	}
	p.deferred = kept
}

// ResolveAll applies every parked violation regardless of time — the
// barrier path, which by construction waits for ChecksDone and therefore
// for every resolveAt.
func (p *PendingChecks) ResolveAll(apply func(*ViolationError)) {
	for _, d := range p.deferred {
		p.Stat.ResolvedViolations++
		if apply != nil {
			apply(d.v)
		}
	}
	p.deferred = p.deferred[:0]
	p.clearCover()
}

// PendingViolations returns how many detected violations are still
// awaiting resolution.
func (p *PendingChecks) PendingViolations() int { return len(p.deferred) }

// Reset clears tracked checks, parked violations and statistics.
func (p *PendingChecks) Reset() {
	for i := range p.window {
		p.window[i] = 0
	}
	p.head, p.count = 0, 0
	p.deferred = p.deferred[:0]
	p.clearCover()
	p.Stat = SpecStats{}
}
