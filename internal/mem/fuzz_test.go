package mem

import (
	"bytes"
	"testing"
)

// FuzzSparseOps drives the sparse memory with an op stream decoded from
// fuzz input and cross-checks it against a flat reference array.
func FuzzSparseOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0xFF, 0x00, 0x80, 0x7F})

	const space = 1 << 16
	f.Fuzz(func(t *testing.T, ops []byte) {
		s := NewSparse()
		ref := make([]byte, space)
		for i := 0; i+4 <= len(ops); i += 4 {
			addr := uint64(ops[i])<<8 | uint64(ops[i+1])
			n := int(ops[i+2])%64 + 1
			if int(addr)+n > space {
				n = space - int(addr)
			}
			if ops[i+3]&1 == 0 {
				payload := bytes.Repeat([]byte{ops[i+3]}, n)
				s.Write(addr, payload)
				copy(ref[addr:], payload)
			} else {
				got := make([]byte, n)
				s.Read(addr, got)
				if !bytes.Equal(got, ref[addr:int(addr)+n]) {
					t.Fatalf("read at %#x diverged from reference", addr)
				}
			}
		}
	})
}

// FuzzAdversaryNeverPanics exercises the attack mutators with arbitrary
// geometry.
func FuzzAdversaryNeverPanics(f *testing.F) {
	f.Add(uint16(0), uint16(64), uint16(32), byte(1))
	f.Fuzz(func(t *testing.T, a, b, c uint16, mode byte) {
		adv := NewAdversary(NewSparse())
		adv.Write(uint64(a), []byte{1, 2, 3})
		size := uint64(b)%1024 + 1
		switch mode % 4 {
		case 0:
			h := adv.Snapshot(uint64(a), size)
			adv.Replay(h)
			adv.StopReplay(h)
		case 1:
			adv.Splice(uint64(a), uint64(c), size)
		case 2:
			adv.DropWrites(uint64(a), size)
		case 3:
			adv.Corrupt(uint64(a), mode)
		}
		buf := make([]byte, size)
		adv.Read(uint64(a), buf)
		adv.Write(uint64(c), buf)
	})
}
