// Package mem provides the untrusted external memory of the paper's model:
// a sparse byte-addressable physical memory plus an adversary layer that
// can tamper with it (corruption, replay, splicing, dropped writes) the way
// a physical attacker on the memory bus would.
package mem

// Memory is byte-addressable storage. Read and Write transfer len(p) bytes
// at addr. Implementations are not required to be concurrency safe; the
// simulator is single-threaded per run.
type Memory interface {
	Read(addr uint64, p []byte)
	Write(addr uint64, p []byte)
}

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Sparse is a paged sparse memory. Unwritten bytes read as zero, so an
// arbitrarily large protected region costs only the pages actually touched.
// The zero value is not ready to use; call NewSparse.
type Sparse struct {
	pages map[uint64]*[pageSize]byte
}

// NewSparse returns an empty sparse memory.
func NewSparse() *Sparse {
	return &Sparse{pages: make(map[uint64]*[pageSize]byte)}
}

// Read implements Memory.
func (s *Sparse) Read(addr uint64, p []byte) {
	for len(p) > 0 {
		pageNum := addr >> pageShift
		off := addr & pageMask
		n := pageSize - off
		if uint64(len(p)) < n {
			n = uint64(len(p))
		}
		if pg, ok := s.pages[pageNum]; ok {
			copy(p[:n], pg[off:off+n])
		} else {
			clear(p[:n])
		}
		p = p[n:]
		addr += n
	}
}

// Write implements Memory.
func (s *Sparse) Write(addr uint64, p []byte) {
	for len(p) > 0 {
		pageNum := addr >> pageShift
		off := addr & pageMask
		n := pageSize - off
		if uint64(len(p)) < n {
			n = uint64(len(p))
		}
		pg, ok := s.pages[pageNum]
		if !ok {
			pg = new([pageSize]byte)
			s.pages[pageNum] = pg
		}
		copy(pg[off:off+n], p[:n])
		p = p[n:]
		addr += n
	}
}

// PageCount returns the number of pages materialized so far. Useful for
// asserting that sparse simulation stays sparse.
func (s *Sparse) PageCount() int { return len(s.pages) }
