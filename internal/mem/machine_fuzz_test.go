package mem_test

// This file fuzzes the full functional machine — caches, engine, adversary
// — rather than the mem package alone. It lives in the external test
// package because core imports mem; the fuzz target exercises the
// Adversary through the same interposition path the chaos campaigns use.

import (
	"testing"

	"memverify/internal/core"
	"memverify/internal/trace"
)

// fuzzMachine builds a tiny functional machine for the fuzzer.
func fuzzMachine(scheme core.Scheme) (*core.Machine, error) {
	cfg := core.DefaultConfig()
	cfg.Scheme = scheme
	cfg.Functional = true
	cfg.HashAlg = "fnv128"
	cfg.ProtectedBytes = 16 << 10
	cfg.L2Size = 2 << 10
	cfg.Benchmark = trace.Uniform("fuzz", 4<<10)
	cfg.Benchmark.CodeSet = 1 << 10
	if scheme == core.SchemeMulti || scheme == core.SchemeIncr {
		cfg.ChunkBlocks = 2
	}
	return core.NewMachine(cfg)
}

var fuzzSchemes = []core.Scheme{core.SchemeNaive, core.SchemeCached, core.SchemeMulti, core.SchemeIncr}

// FuzzMachineTamper drives a small functional machine through interleaved
// program accesses, cache flushes, and adversary corruption decoded from
// the fuzz input. Invariants: the machine never panics, clean accesses
// before any tampering never flag a violation, and once any post-eviction
// corruption leaves memory differing from what the tree covers, the run —
// including a final sweep through every corrupted chunk — detects it.
func FuzzMachineTamper(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x41, 0x05, 0x83, 0x00, 0x00, 0x10})
	f.Add([]byte{0x01, 0x22, 0x02, 0x00, 0x84, 0x7F, 0x00, 0x22})
	f.Add([]byte{0x03, 0x01, 0x05, 0xFF, 0x00, 0x01, 0x01, 0x02, 0x04, 0x33})
	f.Add([]byte{0x85, 0x11, 0x85, 0x11, 0x00, 0x11})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		scheme := fuzzSchemes[int(data[0])%len(fuzzSchemes)]
		m, err := fuzzMachine(scheme)
		if err != nil {
			t.Fatalf("machine: %v", err)
		}
		span := m.ProgSpan()
		blk := uint64(m.Cfg.L2Block)

		// diff tracks the cumulative XOR the adversary applied per address
		// (and a program offset that maps to it): a nonzero entry means
		// memory provably differs from the state the tree last covered
		// (corruption is only injected post-eviction, so no dirty cached
		// copy can silently heal it; program stores heal only via a
		// verified write-allocate, which detects first).
		type corr struct {
			xor byte
			off uint64
		}
		diff := map[uint64]corr{}
		mark := func(a uint64, x byte, off uint64) {
			c := diff[a]
			diff[a] = corr{xor: c.xor ^ x, off: off}
		}
		tampered := false

		ops := data[1:]
		if len(ops) > 128 {
			ops = ops[:128]
		}
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], ops[i+1]
			off := (uint64(arg) * 37) % span
			switch op % 6 {
			case 0: // verified load
				err := m.LoadBytes(off, make([]byte, 1+off%8))
				if err != nil && !tampered {
					t.Fatalf("clean load flagged a violation: %v", err)
				}
			case 1: // byte store (never a full block, so no unverified allocate)
				if err := m.StoreBytes(off, []byte{arg}); err != nil && !tampered {
					t.Fatalf("clean store failed: %v", err)
				}
			case 2: // cryptographic barrier
				m.Flush()
			case 3: // full eviction of protected state
				m.EvictProtected()
			case 4: // post-eviction single-byte corruption
				if arg == 0 {
					arg = 0xA5
				}
				m.EvictProtected()
				a := m.ProgAddr(off)
				m.Adversary().Corrupt(a, arg)
				mark(a, arg, off)
				tampered = true
			case 5: // post-eviction burst corruption
				m.EvictProtected()
				base := off - off%blk
				a := m.ProgAddr(base)
				mask := []byte{arg | 1, 0, arg, byte(i)}
				m.Adversary().CorruptBurst(a, mask)
				for j, b := range mask {
					mark(a+uint64(j), b, base+uint64(j))
				}
				tampered = true
			}
		}

		// Sweep: if any cumulative corruption survives, loading through the
		// corrupted bytes must detect it. (Self-cancelling XORs restore
		// memory exactly and are legitimately undetectable.)
		var liveOffs []uint64
		for _, d := range diff {
			if d.xor != 0 {
				liveOffs = append(liveOffs, d.off)
			}
		}
		if len(liveOffs) == 0 {
			return
		}
		if m.Sys.Stat.Violations == 0 {
			m.EvictProtected()
			for _, off := range liveOffs {
				_ = m.LoadBytes(off, make([]byte, 1))
			}
			if m.Sys.Stat.Violations == 0 {
				t.Fatalf("scheme %s: %d corrupted byte(s) never detected", scheme, len(liveOffs))
			}
		}
	})
}
