package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSparseZeroFill(t *testing.T) {
	m := NewSparse()
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = 0xFF
	}
	m.Read(12345, buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("unwritten byte %d reads %#x, want 0", i, b)
		}
	}
	if m.PageCount() != 0 {
		t.Errorf("reading materialized %d pages", m.PageCount())
	}
}

func TestSparseRoundTrip(t *testing.T) {
	m := NewSparse()
	check := func(addr uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		m.Write(uint64(addr), data)
		got := make([]byte, len(data))
		m.Read(uint64(addr), got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseCrossPage(t *testing.T) {
	m := NewSparse()
	data := make([]byte, 3*4096)
	for i := range data {
		data[i] = byte(i * 11)
	}
	const addr = 4096 - 100 // straddles three pages
	m.Write(addr, data)
	got := make([]byte, len(data))
	m.Read(addr, got)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page write/read mismatch")
	}
	if m.PageCount() != 4 {
		t.Errorf("PageCount = %d, want 4", m.PageCount())
	}
}

func TestSparseOverwrite(t *testing.T) {
	m := NewSparse()
	m.Write(100, []byte{1, 2, 3, 4})
	m.Write(102, []byte{9})
	got := make([]byte, 4)
	m.Read(100, got)
	if !bytes.Equal(got, []byte{1, 2, 9, 4}) {
		t.Fatalf("got %v", got)
	}
}

func TestSparseSparsity(t *testing.T) {
	m := NewSparse()
	// Touch bytes 1 GiB apart; only two pages should materialize.
	m.Write(0, []byte{1})
	m.Write(1<<30, []byte{2})
	if m.PageCount() != 2 {
		t.Errorf("PageCount = %d, want 2", m.PageCount())
	}
}

func TestAdversaryPassThrough(t *testing.T) {
	inner := NewSparse()
	a := NewAdversary(inner)
	a.Write(50, []byte{1, 2, 3})
	got := make([]byte, 3)
	a.Read(50, got)
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("pass-through mismatch: %v", got)
	}
	if a.Reads != 3 || a.Writes != 3 {
		t.Errorf("traffic counters: reads %d writes %d", a.Reads, a.Writes)
	}
}

func TestAdversaryCorrupt(t *testing.T) {
	inner := NewSparse()
	a := NewAdversary(inner)
	a.Write(10, []byte{0x0F})
	a.Corrupt(10, 0xF0)
	got := make([]byte, 1)
	a.Read(10, got)
	if got[0] != 0xFF {
		t.Fatalf("corrupted byte = %#x, want 0xFF", got[0])
	}
}

func TestAdversaryReplay(t *testing.T) {
	inner := NewSparse()
	a := NewAdversary(inner)
	a.Write(100, []byte("old value"))
	h := a.Snapshot(100, 9)
	a.Write(100, []byte("new value"))

	got := make([]byte, 9)
	a.Read(100, got)
	if string(got) != "new value" {
		t.Fatalf("inactive snapshot altered reads: %q", got)
	}
	a.Replay(h)
	a.Read(100, got)
	if string(got) != "old value" {
		t.Fatalf("replay did not serve stale data: %q", got)
	}
	a.StopReplay(h)
	a.Read(100, got)
	if string(got) != "new value" {
		t.Fatalf("stopping replay did not restore: %q", got)
	}
}

func TestAdversaryReplayPartialOverlap(t *testing.T) {
	inner := NewSparse()
	a := NewAdversary(inner)
	a.Write(0, []byte{1, 2, 3, 4})
	h := a.Snapshot(1, 2) // bytes 1..2
	a.Write(0, []byte{5, 6, 7, 8})
	a.Replay(h)
	got := make([]byte, 4)
	a.Read(0, got)
	if !bytes.Equal(got, []byte{5, 2, 3, 8}) {
		t.Fatalf("partial replay = %v, want [5 2 3 8]", got)
	}
}

func TestAdversarySplice(t *testing.T) {
	inner := NewSparse()
	a := NewAdversary(inner)
	a.Write(0, []byte("AAAA"))
	a.Write(64, []byte("BBBB"))
	a.Splice(0, 64, 4)
	got := make([]byte, 4)
	a.Read(0, got)
	if string(got) != "BBBB" {
		t.Fatalf("splice read = %q, want BBBB", got)
	}
	a.Read(64, got)
	if string(got) != "BBBB" {
		t.Fatalf("source region altered: %q", got)
	}
}

func TestAdversaryDropWrites(t *testing.T) {
	inner := NewSparse()
	a := NewAdversary(inner)
	a.Write(8, []byte{1, 2, 3, 4})
	a.DropWrites(9, 2)
	a.Write(8, []byte{9, 9, 9, 9})
	got := make([]byte, 4)
	a.Read(8, got)
	if !bytes.Equal(got, []byte{9, 2, 3, 9}) {
		t.Fatalf("drop-writes = %v, want [9 2 3 9]", got)
	}
}
