package mem

// Adversary wraps a Memory and models a physical attacker sitting on the
// memory bus (§3). The attacker can observe everything and substitute
// arbitrary values; the four mutators below cover the attack classes the
// paper analyzes:
//
//   - Corrupt: flip stored bits directly (simple tampering).
//   - Snapshot/Replay: return stale data previously stored at the same
//     address during the same execution (the XOM replay attack of §4.4).
//   - Splice: answer reads of one address with data stored at another
//     (address permutation attacks).
//   - DropWrites: silently discard the processor's writes to a region
//     ("only the first write to an address is ever actually performed").
//
// All mutations affect what readers observe; the integrity machinery is
// expected to detect every one of them on protected regions.
type Adversary struct {
	inner Memory

	replays []replayRegion
	splices []spliceRegion
	drops   []region

	// Reads and Writes count the traffic the adversary has observed, a
	// convenience for tests asserting that attacks happened where expected.
	Reads, Writes uint64
}

type region struct{ addr, size uint64 }

func (r region) contains(a uint64) bool { return a >= r.addr && a < r.addr+r.size }

type replayRegion struct {
	region
	data   []byte
	active bool
}

type spliceRegion struct {
	region
	src uint64
}

// NewAdversary wraps inner. With no mutations configured it is a
// transparent pass-through.
func NewAdversary(inner Memory) *Adversary {
	return &Adversary{inner: inner}
}

// Corrupt XORs the byte at addr with mask, directly in the underlying
// storage (bypassing any integrity machinery above).
func (a *Adversary) Corrupt(addr uint64, mask byte) {
	var b [1]byte
	a.inner.Read(addr, b[:])
	b[0] ^= mask
	a.inner.Write(addr, b[:])
}

// Snapshot records size bytes at addr and returns a replay handle. The
// snapshot is inert until Replay is called on the handle.
func (a *Adversary) Snapshot(addr, size uint64) int {
	data := make([]byte, size)
	a.inner.Read(addr, data)
	a.replays = append(a.replays, replayRegion{region: region{addr, size}, data: data})
	return len(a.replays) - 1
}

// Replay activates a snapshot: subsequent reads inside its region return
// the stale recorded bytes instead of current memory.
func (a *Adversary) Replay(handle int) { a.replays[handle].active = true }

// StopReplay deactivates a snapshot.
func (a *Adversary) StopReplay(handle int) { a.replays[handle].active = false }

// Splice makes reads of [dst, dst+size) return the bytes currently stored
// at the corresponding offset from src.
func (a *Adversary) Splice(dst, src, size uint64) {
	a.splices = append(a.splices, spliceRegion{region: region{dst, size}, src: src})
}

// DropWrites makes the memory silently discard writes to [addr, addr+size).
func (a *Adversary) DropWrites(addr, size uint64) {
	a.drops = append(a.drops, region{addr, size})
}

// Read implements Memory, applying active replays and splices byte-wise so
// that attacks spanning partial blocks behave like real bus substitution.
func (a *Adversary) Read(addr uint64, p []byte) {
	a.Reads += uint64(len(p))
	a.inner.Read(addr, p)
	if len(a.replays) == 0 && len(a.splices) == 0 {
		return
	}
	for i := range p {
		ai := addr + uint64(i)
		for _, sp := range a.splices {
			if sp.contains(ai) {
				var b [1]byte
				a.inner.Read(sp.src+(ai-sp.addr), b[:])
				p[i] = b[0]
			}
		}
		for _, rp := range a.replays {
			if rp.active && rp.contains(ai) {
				p[i] = rp.data[ai-rp.addr]
			}
		}
	}
}

// Write implements Memory, discarding bytes that land in drop regions.
func (a *Adversary) Write(addr uint64, p []byte) {
	a.Writes += uint64(len(p))
	if len(a.drops) == 0 {
		a.inner.Write(addr, p)
		return
	}
	for i := range p {
		ai := addr + uint64(i)
		dropped := false
		for _, d := range a.drops {
			if d.contains(ai) {
				dropped = true
				break
			}
		}
		if !dropped {
			a.inner.Write(ai, p[i:i+1])
		}
	}
}
