package mem

// Adversary wraps a Memory and models a physical attacker sitting on the
// memory bus (§3). The attacker can observe everything and substitute
// arbitrary values; the four mutators below cover the attack classes the
// paper analyzes:
//
//   - Corrupt: flip stored bits directly (simple tampering).
//   - Snapshot/Replay: return stale data previously stored at the same
//     address during the same execution (the XOM replay attack of §4.4).
//   - Splice: answer reads of one address with data stored at another
//     (address permutation attacks).
//   - DropWrites: silently discard the processor's writes to a region
//     ("only the first write to an address is ever actually performed").
//   - CorruptBurst: flip stored bits across a multi-byte run in one shot.
//   - Glitch: transient fault — a bounded number of reads observe
//     corrupted bytes while stored memory stays clean (what PolicyRetry
//     distinguishes from persistent tampering).
//   - Schedule: defer any of the above until a chosen number of bus
//     transactions from now, for attacks timed against live traffic.
//
// All mutations affect what readers observe; the integrity machinery is
// expected to detect every persistent one on protected regions.
type Adversary struct {
	inner Memory

	replays   []replayRegion
	splices   []spliceRegion
	drops     []region
	glitches  []glitchRegion
	schedules []schedule

	// OnRead and OnWrite, if non-nil, observe every memory transaction the
	// processor/engine side issues, before any mutation is applied. The
	// adversary's own mutators bypass them (they act on the underlying
	// storage directly), so observers see exactly the bus traffic a probe
	// on the memory interface would. Chaos campaigns use them to tell
	// whether tampered bytes were ever actually consumed or overwritten.
	OnRead  func(addr uint64, n int)
	OnWrite func(addr uint64, n int)

	// Reads and Writes count the traffic the adversary has observed, a
	// convenience for tests asserting that attacks happened where expected.
	Reads, Writes uint64

	events uint64 // read+write transactions observed, for Schedule
}

type region struct{ addr, size uint64 }

func (r region) contains(a uint64) bool { return a >= r.addr && a < r.addr+r.size }

type replayRegion struct {
	region
	data   []byte
	active bool
}

type spliceRegion struct {
	region
	src uint64
}

// glitchRegion models a transient bus/DRAM fault: reads overlapping the
// region observe the stored bytes XORed with mask, but the stored bytes
// themselves are untouched, so a re-fetch of the same address sees clean
// data again. remaining counts how many more overlapping Read transactions
// the glitch affects before it evaporates.
type glitchRegion struct {
	region
	mask      byte
	remaining int
}

// schedule is a deferred attack: fire f once after `after` more memory
// transactions (reads or writes) have been observed.
type schedule struct {
	at uint64
	f  func()
}

// NewAdversary wraps inner. With no mutations configured it is a
// transparent pass-through.
func NewAdversary(inner Memory) *Adversary {
	return &Adversary{inner: inner}
}

// Corrupt XORs the byte at addr with mask, directly in the underlying
// storage (bypassing any integrity machinery above).
func (a *Adversary) Corrupt(addr uint64, mask byte) {
	var b [1]byte
	a.inner.Read(addr, b[:])
	b[0] ^= mask
	a.inner.Write(addr, b[:])
}

// Snapshot records size bytes at addr and returns a replay handle. The
// snapshot is inert until Replay is called on the handle.
func (a *Adversary) Snapshot(addr, size uint64) int {
	data := make([]byte, size)
	a.inner.Read(addr, data)
	a.replays = append(a.replays, replayRegion{region: region{addr, size}, data: data})
	return len(a.replays) - 1
}

// Replay activates a snapshot: subsequent reads inside its region return
// the stale recorded bytes instead of current memory.
func (a *Adversary) Replay(handle int) { a.replays[handle].active = true }

// StopReplay deactivates a snapshot.
func (a *Adversary) StopReplay(handle int) { a.replays[handle].active = false }

// Splice makes reads of [dst, dst+size) return the bytes currently stored
// at the corresponding offset from src.
func (a *Adversary) Splice(dst, src, size uint64) {
	a.splices = append(a.splices, spliceRegion{region: region{dst, size}, src: src})
}

// DropWrites makes the memory silently discard writes to [addr, addr+size).
func (a *Adversary) DropWrites(addr, size uint64) {
	a.drops = append(a.drops, region{addr, size})
}

// CorruptBurst XORs a run of stored bytes starting at addr with mask,
// directly in the underlying storage. Zero mask bytes leave the
// corresponding stored byte alone, so sparse multi-bit patterns within the
// burst are expressible.
func (a *Adversary) CorruptBurst(addr uint64, mask []byte) {
	buf := make([]byte, len(mask))
	a.inner.Read(addr, buf)
	for i, m := range mask {
		buf[i] ^= m
	}
	a.inner.Write(addr, buf)
}

// Glitch arms a transient fault over [addr, addr+size): the next `reads`
// Read transactions that overlap the region observe its bytes XORed with
// mask, after which the fault evaporates. Stored memory is never modified,
// so a retry/re-fetch sees clean data — the signature PolicyRetry exists
// to distinguish from persistent tampering.
func (a *Adversary) Glitch(addr, size uint64, mask byte, reads int) {
	a.glitches = append(a.glitches, glitchRegion{region: region{addr, size}, mask: mask, remaining: reads})
}

// Schedule defers f until `after` more memory transactions (reads or
// writes, counted together) have been observed, then fires it exactly once
// — before the triggering transaction's data is served, so f can tamper
// with the very bytes that transaction returns. after == 0 fires on the
// next transaction.
func (a *Adversary) Schedule(after uint64, f func()) {
	a.schedules = append(a.schedules, schedule{at: a.events + after, f: f})
}

// Reset discards all armed mutations — replays, splices, drops, glitches,
// and pending schedules — returning the adversary to a transparent
// pass-through. Traffic counters and observer hooks are untouched.
func (a *Adversary) Reset() {
	a.replays = a.replays[:0]
	a.splices = a.splices[:0]
	a.drops = a.drops[:0]
	a.glitches = a.glitches[:0]
	a.schedules = a.schedules[:0]
}

// step counts one transaction and fires any schedules that have come due.
// Firing happens before the caller touches storage, so a scheduled attack
// can tamper with the bytes the triggering transaction itself observes.
func (a *Adversary) step() {
	a.events++
	if len(a.schedules) == 0 {
		return
	}
	kept := a.schedules[:0]
	for _, sc := range a.schedules {
		if a.events > sc.at {
			sc.f()
		} else {
			kept = append(kept, sc)
		}
	}
	a.schedules = kept
}

// Read implements Memory, applying active replays and splices byte-wise so
// that attacks spanning partial blocks behave like real bus substitution.
func (a *Adversary) Read(addr uint64, p []byte) {
	a.Reads += uint64(len(p))
	a.step()
	if a.OnRead != nil {
		a.OnRead(addr, len(p))
	}
	a.inner.Read(addr, p)
	if len(a.replays) == 0 && len(a.splices) == 0 && len(a.glitches) == 0 {
		return
	}
	for i := range p {
		ai := addr + uint64(i)
		for _, sp := range a.splices {
			if sp.contains(ai) {
				var b [1]byte
				a.inner.Read(sp.src+(ai-sp.addr), b[:])
				p[i] = b[0]
			}
		}
		for _, rp := range a.replays {
			if rp.active && rp.contains(ai) {
				p[i] = rp.data[ai-rp.addr]
			}
		}
		for gi := range a.glitches {
			g := &a.glitches[gi]
			if g.remaining > 0 && g.contains(ai) {
				p[i] ^= g.mask
			}
		}
	}
	// A glitch decays once per overlapping Read transaction, not per byte:
	// one bus transfer observes one transient fault.
	for gi := range a.glitches {
		g := &a.glitches[gi]
		if g.remaining > 0 && addr < g.addr+g.size && addr+uint64(len(p)) > g.addr {
			g.remaining--
		}
	}
}

// Write implements Memory, discarding bytes that land in drop regions.
func (a *Adversary) Write(addr uint64, p []byte) {
	a.Writes += uint64(len(p))
	a.step()
	if a.OnWrite != nil {
		a.OnWrite(addr, len(p))
	}
	if len(a.drops) == 0 {
		a.inner.Write(addr, p)
		return
	}
	for i := range p {
		ai := addr + uint64(i)
		dropped := false
		for _, d := range a.drops {
			if d.contains(ai) {
				dropped = true
				break
			}
		}
		if !dropped {
			a.inner.Write(ai, p[i:i+1])
		}
	}
}
