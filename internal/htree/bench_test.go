package htree

import (
	"testing"

	"memverify/internal/hashalg"
	"memverify/internal/mem"
)

func benchTree(b *testing.B, dataBytes uint64) *Tree {
	b.Helper()
	l, err := NewLayout(64, 16, dataBytes)
	if err != nil {
		b.Fatal(err)
	}
	m := mem.NewSparse()
	buf := make([]byte, dataBytes)
	for i := range buf {
		buf[i] = byte(i)
	}
	m.Write(l.DataStart(), buf)
	t := NewTree(l, hashalg.MD5{}, m)
	t.Build()
	return t
}

func BenchmarkBuild1MB(b *testing.B) {
	l, _ := NewLayout(64, 16, 1<<20)
	m := mem.NewSparse()
	t := NewTree(l, hashalg.MD5{}, m)
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		t.Build()
	}
}

func BenchmarkVerifyChunkColdPath(b *testing.B) {
	t := benchTree(b, 1<<20)
	leaf := t.Layout.TotalChunks - 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := t.VerifyChunk(leaf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteData(b *testing.B) {
	t := benchTree(b, 1<<20)
	payload := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		if err := t.WriteData(uint64(i%1024)*64, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProveAndCheck(b *testing.B) {
	t := benchTree(b, 1<<20)
	root := t.Root()
	leaf := t.Layout.TotalChunks - 1
	for i := 0; i < b.N; i++ {
		p := t.Prove(leaf)
		if err := CheckProof(t.Layout, hashalg.MD5{}, root, p); err != nil {
			b.Fatal(err)
		}
	}
}
