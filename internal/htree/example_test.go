package htree_test

import (
	"fmt"

	"memverify/internal/hashalg"
	"memverify/internal/htree"
	"memverify/internal/mem"
)

// Example builds a hash tree over a small protected region, updates it,
// and shows tamper detection — the standalone library behind the
// simulator's integrity engines.
func Example() {
	layout, err := htree.NewLayout(64, 16, 4096) // 64B chunks, 128-bit hashes
	if err != nil {
		panic(err)
	}
	memory := mem.NewSparse()
	tree := htree.NewTree(layout, hashalg.SHA1{}, memory)
	tree.Build() // root now lives "on chip" inside the Tree

	// Verified write and read.
	if err := tree.WriteData(128, []byte("authenticated!")); err != nil {
		panic(err)
	}
	buf := make([]byte, 14)
	if err := tree.ReadData(128, buf); err != nil {
		panic(err)
	}
	fmt.Printf("read: %s\n", buf)

	// A physical attacker flips one bit of external memory.
	adv := mem.NewAdversary(tree.Memory())
	tree.SetMemory(adv)
	adv.Corrupt(layout.DataStart()+130, 0x01)
	if err := tree.ReadData(128, buf); err != nil {
		fmt.Println("tamper detected")
	}
	// Output:
	// read: authenticated!
	// tamper detected
}

// ExampleTree_Prove produces a logarithmic inclusion proof that a verifier
// holding only the 16-byte root can check.
func ExampleTree_Prove() {
	layout, _ := htree.NewLayout(64, 16, 1<<20)
	memory := mem.NewSparse()
	memory.Write(layout.DataStart(), []byte("chunk zero data"))
	tree := htree.NewTree(layout, hashalg.SHA1{}, memory)
	tree.Build()

	proof := tree.Prove(layout.DataChunkFor(0))
	fmt.Printf("proof chunks: %d (tree of %d)\n", len(proof.Chunks), layout.TotalChunks)
	err := htree.CheckProof(layout, hashalg.SHA1{}, tree.Root(), proof)
	fmt.Println("valid:", err == nil)
	// Output:
	// proof chunks: 8 (tree of 21845)
	// valid: true
}
