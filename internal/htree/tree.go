package htree

import (
	"bytes"
	"fmt"

	"memverify/internal/hashalg"
	"memverify/internal/mem"
)

// Tree is a functional Merkle tree over a Layout in flat memory: the
// reference implementation the timed integrity engines are checked
// against, and a standalone library for applications that want verified
// storage without the processor simulator.
//
// The root hash is held inside the Tree value, modeling the secure
// on-chip register of Figure 1.
type Tree struct {
	Layout *Layout
	alg    hashalg.Algorithm
	memory mem.Memory
	root   []byte
}

// TamperError reports a verification failure: the chunk whose recomputed
// hash disagreed with its stored parent hash.
type TamperError struct {
	Chunk uint64
	Want  []byte // stored (trusted-side) hash
	Got   []byte // hash recomputed from memory contents
}

// Error implements error.
func (e *TamperError) Error() string {
	return fmt.Sprintf("htree: integrity violation at chunk %d: stored hash %x, computed %x", e.Chunk, e.Want, e.Got)
}

// NewTree wires a tree over memory with the given layout and hash
// algorithm. The tree is not valid until Build (or a full set of writes
// through UpdateData) has populated the stored hashes.
func NewTree(l *Layout, alg hashalg.Algorithm, memory mem.Memory) *Tree {
	if alg.Size() < l.HashSize {
		panic(fmt.Sprintf("htree: algorithm %s digest %dB shorter than layout hash %dB", alg.Name(), alg.Size(), l.HashSize))
	}
	return &Tree{Layout: l, alg: alg, memory: memory}
}

// Memory exposes the tree's backing store, e.g. for serializing the
// interior chunks or interposing an adversary.
func (t *Tree) Memory() mem.Memory { return t.memory }

// SetMemory swaps the backing store (used to interpose an adversary).
func (t *Tree) SetMemory(m mem.Memory) { t.memory = m }

// HashChunk computes the stored hash of chunk c from current memory.
func (t *Tree) HashChunk(c uint64) []byte {
	buf := make([]byte, t.Layout.ChunkSize)
	t.memory.Read(t.Layout.ChunkAddr(c), buf)
	return hashalg.Truncate(t.alg.Sum(buf), t.Layout.HashSize)
}

// Build computes every interior hash bottom-up and installs the root in
// the secure register, making the current memory contents authentic.
func (t *Tree) Build() {
	// Hash chunks from the last interior chunk down to 0; children always
	// have higher numbers than parents, so a reverse sweep sees children
	// finalized before their parent is hashed.
	for c := t.Layout.TotalChunks - 1; ; c-- {
		h := t.HashChunk(c)
		if addr, ok := t.Layout.HashAddr(c); ok {
			t.memory.Write(addr, h)
		} else {
			t.root = h
		}
		if c == 0 {
			break
		}
	}
}

// Root returns a copy of the secure root hash.
func (t *Tree) Root() []byte {
	r := make([]byte, len(t.root))
	copy(r, t.root)
	return r
}

// SetRoot installs a previously saved root (e.g. resuming a persisted
// tree).
func (t *Tree) SetRoot(r []byte) {
	t.root = make([]byte, len(r))
	copy(t.root, r)
}

// storedHash reads chunk c's hash from its parent (or the register).
func (t *Tree) storedHash(c uint64) []byte {
	addr, ok := t.Layout.HashAddr(c)
	if !ok {
		return t.Root()
	}
	h := make([]byte, t.Layout.HashSize)
	t.memory.Read(addr, h)
	return h
}

// VerifyChunk checks chunk c against its stored hash and then every
// ancestor against theirs, up to the secure root — a full cold
// verification path. It returns a *TamperError describing the first
// mismatch, or nil.
func (t *Tree) VerifyChunk(c uint64) error {
	for {
		got := t.HashChunk(c)
		want := t.storedHash(c)
		if !bytes.Equal(got, want) {
			return &TamperError{Chunk: c, Want: want, Got: got}
		}
		if c == 0 {
			return nil
		}
		c, _, _ = t.Layout.Parent(c)
	}
}

// VerifyAddr verifies the chunk containing physical address addr.
func (t *Tree) VerifyAddr(addr uint64) error {
	return t.VerifyChunk(t.Layout.ChunkOf(addr))
}

// VerifyAll sweeps every chunk. It is O(N·log N) and intended for tests
// and post-attack forensics, not the hot path.
func (t *Tree) VerifyAll() error {
	for c := uint64(0); c < t.Layout.TotalChunks; c++ {
		if err := t.VerifyChunk(c); err != nil {
			return err
		}
	}
	return nil
}

// ReadData verifies and reads len(p) bytes at offset off within the
// protected data region.
func (t *Tree) ReadData(off uint64, p []byte) error {
	addr := t.Layout.DataStart() + off
	end := addr + uint64(len(p))
	for ca := addr &^ (uint64(t.Layout.ChunkSize) - 1); ca < end; ca += uint64(t.Layout.ChunkSize) {
		if err := t.VerifyChunk(t.Layout.ChunkOf(ca)); err != nil {
			return err
		}
	}
	t.memory.Read(addr, p)
	return nil
}

// WriteData verifies the affected chunks, writes p at offset off within
// the protected data region, and updates every hash on the paths to the
// root, preserving the tree invariant.
func (t *Tree) WriteData(off uint64, p []byte) error {
	addr := t.Layout.DataStart() + off
	end := addr + uint64(len(p))
	// Check before modify, so a tampered chunk cannot be laundered by a
	// partial overwrite recomputing its hash.
	for ca := addr &^ (uint64(t.Layout.ChunkSize) - 1); ca < end; ca += uint64(t.Layout.ChunkSize) {
		if err := t.VerifyChunk(t.Layout.ChunkOf(ca)); err != nil {
			return err
		}
	}
	t.memory.Write(addr, p)
	for ca := addr &^ (uint64(t.Layout.ChunkSize) - 1); ca < end; ca += uint64(t.Layout.ChunkSize) {
		t.rehashPath(t.Layout.ChunkOf(ca))
	}
	return nil
}

// rehashPath recomputes the hashes from chunk c up to the root after c's
// contents changed.
func (t *Tree) rehashPath(c uint64) {
	for {
		h := t.HashChunk(c)
		addr, ok := t.Layout.HashAddr(c)
		if !ok {
			t.root = h
			return
		}
		t.memory.Write(addr, h)
		c, _, _ = t.Layout.Parent(c)
	}
}

// Proof is a self-contained inclusion proof for one chunk: the chunk's
// ancestors' contents. A verifier holding only the root can replay it.
type Proof struct {
	Chunk  uint64
	Chunks [][]byte // chunk c's bytes, then each ancestor chunk's bytes up to the root chunk
	Path   []uint64 // chunk numbers: c, parent(c), ..., 0
}

// Prove extracts an inclusion proof for chunk c from current memory.
func (t *Tree) Prove(c uint64) *Proof {
	p := &Proof{Chunk: c}
	for {
		buf := make([]byte, t.Layout.ChunkSize)
		t.memory.Read(t.Layout.ChunkAddr(c), buf)
		p.Chunks = append(p.Chunks, buf)
		p.Path = append(p.Path, c)
		if c == 0 {
			return p
		}
		c, _, _ = t.Layout.Parent(c)
	}
}

// CheckProof verifies an inclusion proof against a root hash using only
// the layout and algorithm — no memory access. It returns nil if the
// proof authenticates proof.Chunks[0] as chunk proof.Chunk under root.
func CheckProof(l *Layout, alg hashalg.Algorithm, root []byte, proof *Proof) error {
	if len(proof.Chunks) == 0 || len(proof.Chunks) != len(proof.Path) || proof.Path[0] != proof.Chunk {
		return fmt.Errorf("htree: malformed proof")
	}
	c := proof.Chunk
	for i, chunk := range proof.Chunks {
		if len(chunk) != l.ChunkSize {
			return fmt.Errorf("htree: proof chunk %d has size %d, want %d", i, len(chunk), l.ChunkSize)
		}
		if proof.Path[i] != c {
			return fmt.Errorf("htree: proof path mismatch at step %d", i)
		}
		h := hashalg.Truncate(alg.Sum(chunk), l.HashSize)
		parent, slot, isRoot := l.Parent(c)
		if isRoot {
			if !bytes.Equal(h, root) {
				return &TamperError{Chunk: c, Want: root, Got: h}
			}
			return nil
		}
		if i+1 >= len(proof.Chunks) {
			return fmt.Errorf("htree: proof truncated before root")
		}
		stored := proof.Chunks[i+1][slot*l.HashSize : (slot+1)*l.HashSize]
		if !bytes.Equal(h, stored) {
			return &TamperError{Chunk: c, Want: stored, Got: h}
		}
		c = parent
	}
	return fmt.Errorf("htree: proof did not reach root")
}
