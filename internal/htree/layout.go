// Package htree implements the hash-tree memory layout of §5.6 and a
// standalone functional Merkle tree over that layout.
//
// The protected physical memory is divided into equal-sized chunks,
// numbered consecutively from zero; a chunk's number times the chunk size
// is its address. Chunk 0 is the tree root (its hash lives in a secure
// on-chip register); the parent of chunk c>0 is ⌊(c−1)/m⌋ and the hash of
// chunk c occupies slot (c−1) mod m of its parent, where m is the tree's
// arity (chunk size divided by hash size). Interior chunks come first, so
// all the leaves — the program's data — are contiguous at the top of the
// protected region, exactly as the paper lays them out.
package htree

import "fmt"

// Layout captures the geometry of a hash tree in flat memory.
type Layout struct {
	// ChunkSize is the unit hashes are computed on, in bytes. In the c
	// scheme it equals the L2 block size; in the m and i schemes it spans
	// several blocks.
	ChunkSize int
	// HashSize is the stored hash (or MAC record) size in bytes.
	HashSize int
	// Arity m is ChunkSize/HashSize: how many child hashes one interior
	// chunk holds.
	Arity int
	// DataChunks is the number of leaf chunks (protected program data).
	DataChunks uint64
	// InteriorChunks is the number of hash chunks preceding the data.
	InteriorChunks uint64
	// TotalChunks = InteriorChunks + DataChunks.
	TotalChunks uint64
}

// NewLayout computes the layout protecting dataBytes of program data.
// dataBytes is rounded up to a whole number of chunks.
func NewLayout(chunkSize, hashSize int, dataBytes uint64) (*Layout, error) {
	if chunkSize <= 0 || hashSize <= 0 {
		return nil, fmt.Errorf("htree: chunk size %d and hash size %d must be positive", chunkSize, hashSize)
	}
	if chunkSize%hashSize != 0 {
		return nil, fmt.Errorf("htree: chunk size %d not a multiple of hash size %d", chunkSize, hashSize)
	}
	m := chunkSize / hashSize
	if m < 2 {
		return nil, fmt.Errorf("htree: arity %d < 2 (chunk %dB, hash %dB)", m, chunkSize, hashSize)
	}
	if dataBytes == 0 {
		return nil, fmt.Errorf("htree: nothing to protect")
	}
	d := (dataBytes + uint64(chunkSize) - 1) / uint64(chunkSize)
	// Smallest interior count I with m·I ≥ I+D−1, so the first data chunk
	// (index I) has no children inside the tree.
	var interior uint64
	if d > 1 {
		interior = (d - 1 + uint64(m) - 2) / uint64(m-1) // ceil((D-1)/(m-1))
	} else {
		interior = 1 // a single data chunk still needs a root above it
	}
	return &Layout{
		ChunkSize:      chunkSize,
		HashSize:       hashSize,
		Arity:          m,
		DataChunks:     d,
		InteriorChunks: interior,
		TotalChunks:    interior + d,
	}, nil
}

// Parent returns the parent chunk of c and the slot index of c's hash
// within it. isRoot is true for chunk 0, whose hash lives in the secure
// register rather than in any parent.
func (l *Layout) Parent(c uint64) (parent uint64, slot int, isRoot bool) {
	if c == 0 {
		return 0, 0, true
	}
	return (c - 1) / uint64(l.Arity), int((c - 1) % uint64(l.Arity)), false
}

// Child returns the chunk number of child i of interior chunk c and
// whether that child exists in the tree.
func (l *Layout) Child(c uint64, i int) (uint64, bool) {
	ch := c*uint64(l.Arity) + uint64(i) + 1
	return ch, ch < l.TotalChunks
}

// HashAddr returns the physical address where chunk c's hash is stored.
// ok is false for the root, whose hash is in the secure register.
func (l *Layout) HashAddr(c uint64) (addr uint64, ok bool) {
	p, slot, isRoot := l.Parent(c)
	if isRoot {
		return 0, false
	}
	return p*uint64(l.ChunkSize) + uint64(slot)*uint64(l.HashSize), true
}

// ChunkAddr returns the starting physical address of chunk c.
func (l *Layout) ChunkAddr(c uint64) uint64 { return c * uint64(l.ChunkSize) }

// ChunkOf returns the chunk containing physical address addr.
func (l *Layout) ChunkOf(addr uint64) uint64 { return addr / uint64(l.ChunkSize) }

// IsData reports whether chunk c is a leaf holding program data.
func (l *Layout) IsData(c uint64) bool { return c >= l.InteriorChunks }

// IsInterior reports whether chunk c holds child hashes.
func (l *Layout) IsInterior(c uint64) bool { return c < l.InteriorChunks }

// DataStart returns the physical address of the first data byte.
func (l *Layout) DataStart() uint64 { return l.InteriorChunks * uint64(l.ChunkSize) }

// Size returns the total physical footprint in bytes, tree included.
func (l *Layout) Size() uint64 { return l.TotalChunks * uint64(l.ChunkSize) }

// DataChunkFor maps an offset within the protected program region to its
// leaf chunk number.
func (l *Layout) DataChunkFor(dataOffset uint64) uint64 {
	return l.InteriorChunks + dataOffset/uint64(l.ChunkSize)
}

// Depth returns the number of parent hops from chunk c to the root.
func (l *Layout) Depth(c uint64) int {
	d := 0
	for c != 0 {
		c, _, _ = l.Parent(c)
		d++
	}
	return d
}

// Levels returns the depth of the deepest leaf: the number of stored
// hashes a cold verification of that leaf must read. This is the paper's
// log_m(N) cost — "tens of [hash] reads for each data access" without
// caching.
func (l *Layout) Levels() int { return l.Depth(l.TotalChunks - 1) }

// PathToRoot returns the chunk numbers on the path from c (exclusive) up
// to and including the root.
func (l *Layout) PathToRoot(c uint64) []uint64 {
	var path []uint64
	for c != 0 {
		p, _, _ := l.Parent(c)
		path = append(path, p)
		c = p
	}
	return path
}

// Overhead returns the fraction of protected memory consumed by hashes:
// 1/(m−1) in the paper's accounting.
func (l *Layout) Overhead() float64 {
	return float64(l.InteriorChunks) / float64(l.TotalChunks)
}
