package htree

import (
	"testing"
	"testing/quick"
)

func mustLayout(t *testing.T, chunk, hash int, data uint64) *Layout {
	t.Helper()
	l, err := NewLayout(chunk, hash, data)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewLayoutErrors(t *testing.T) {
	cases := []struct {
		chunk, hash int
		data        uint64
	}{
		{0, 16, 1024},  // zero chunk
		{64, 0, 1024},  // zero hash
		{60, 16, 1024}, // not a multiple
		{16, 16, 1024}, // arity 1
		{64, 16, 0},    // nothing to protect
	}
	for i, c := range cases {
		if _, err := NewLayout(c.chunk, c.hash, c.data); err == nil {
			t.Errorf("case %d: NewLayout(%d,%d,%d) succeeded", i, c.chunk, c.hash, c.data)
		}
	}
}

func TestLayoutSmall(t *testing.T) {
	// 64B chunks, 16B hashes (arity 4), 16 data chunks = 1KB protected.
	l := mustLayout(t, 64, 16, 1024)
	if l.Arity != 4 {
		t.Errorf("arity %d", l.Arity)
	}
	if l.DataChunks != 16 {
		t.Errorf("data chunks %d", l.DataChunks)
	}
	// ceil((16-1)/3) = 5 interior chunks.
	if l.InteriorChunks != 5 {
		t.Errorf("interior chunks %d, want 5", l.InteriorChunks)
	}
	if l.TotalChunks != 21 {
		t.Errorf("total chunks %d", l.TotalChunks)
	}
	if l.DataStart() != 5*64 {
		t.Errorf("data start %d", l.DataStart())
	}
	if l.Size() != 21*64 {
		t.Errorf("size %d", l.Size())
	}
}

func TestParentChildInverse(t *testing.T) {
	l := mustLayout(t, 64, 16, 1<<20)
	for c := uint64(1); c < l.TotalChunks; c++ {
		p, slot, isRoot := l.Parent(c)
		if isRoot {
			t.Fatalf("chunk %d reported as root", c)
		}
		child, ok := l.Child(p, slot)
		if !ok || child != c {
			t.Fatalf("Child(Parent(%d)) = %d (ok %v)", c, child, ok)
		}
	}
	if _, _, isRoot := l.Parent(0); !isRoot {
		t.Error("chunk 0 must be the root")
	}
}

func TestDataChunksAreLeaves(t *testing.T) {
	l := mustLayout(t, 64, 16, 64*1024)
	for c := uint64(0); c < l.TotalChunks; c++ {
		hasChild := false
		for i := 0; i < l.Arity; i++ {
			if _, ok := l.Child(c, i); ok {
				hasChild = true
			}
		}
		if l.IsData(c) && hasChild {
			t.Fatalf("data chunk %d has children", c)
		}
		if l.IsInterior(c) != !l.IsData(c) {
			t.Fatalf("chunk %d: interior/data partition broken", c)
		}
	}
	// Every interior chunk except possibly the ragged tail must have at
	// least one child.
	for c := uint64(0); c < l.InteriorChunks; c++ {
		if _, ok := l.Child(c, 0); !ok {
			t.Fatalf("interior chunk %d has no children at all", c)
		}
	}
}

func TestHashAddrInsideParent(t *testing.T) {
	l := mustLayout(t, 64, 16, 32*1024)
	for c := uint64(1); c < l.TotalChunks; c++ {
		addr, ok := l.HashAddr(c)
		if !ok {
			t.Fatalf("chunk %d has no hash address", c)
		}
		p, slot, _ := l.Parent(c)
		if l.ChunkOf(addr) != p {
			t.Fatalf("hash of %d stored in chunk %d, want parent %d", c, l.ChunkOf(addr), p)
		}
		if want := l.ChunkAddr(p) + uint64(slot*l.HashSize); addr != want {
			t.Fatalf("hash addr %#x, want %#x", addr, want)
		}
	}
	if _, ok := l.HashAddr(0); ok {
		t.Error("root hash must live in the secure register, not memory")
	}
}

func TestAddressChunkRoundTrip(t *testing.T) {
	l := mustLayout(t, 128, 16, 1<<20)
	check := func(off uint32) bool {
		addr := uint64(off) % l.Size()
		c := l.ChunkOf(addr)
		return l.ChunkAddr(c) <= addr && addr < l.ChunkAddr(c)+uint64(l.ChunkSize)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDataChunkFor(t *testing.T) {
	l := mustLayout(t, 64, 16, 4096)
	for off := uint64(0); off < 4096; off += 64 {
		c := l.DataChunkFor(off)
		if !l.IsData(c) {
			t.Fatalf("offset %d mapped to interior chunk %d", off, c)
		}
		if l.ChunkAddr(c) != l.DataStart()+off {
			t.Fatalf("offset %d: chunk addr %#x", off, l.ChunkAddr(c))
		}
	}
}

func TestDepthAndLevels(t *testing.T) {
	l := mustLayout(t, 64, 16, 1<<20) // 16384 data chunks, arity 4
	if l.Depth(0) != 0 {
		t.Error("root depth must be 0")
	}
	// Depth of any child is parent's depth + 1.
	for c := uint64(1); c < 200; c++ {
		p, _, _ := l.Parent(c)
		if l.Depth(c) != l.Depth(p)+1 {
			t.Fatalf("depth(%d) != depth(parent)+1", c)
		}
	}
	levels := l.Levels()
	// 4-ary tree over 16K leaves: about log4(16K) = 7 levels (+1 for the
	// layout's imbalance tolerance).
	if levels < 7 || levels > 9 {
		t.Errorf("Levels = %d, want ~7-9", levels)
	}
	if got := l.Depth(l.TotalChunks - 1); got != levels {
		t.Errorf("deepest leaf depth %d != Levels %d", got, levels)
	}
}

// TestLevelsMatchPaper checks the headline configuration: a 4 GB protected
// region with 64 B chunks and 128-bit hashes yields the paper's 13-level
// path ("thirteen additional memory reads").
func TestLevelsMatchPaper(t *testing.T) {
	l := mustLayout(t, 64, 16, 4<<30)
	if l.Levels() != 13 {
		t.Errorf("Levels = %d, want 13", l.Levels())
	}
}

func TestPathToRoot(t *testing.T) {
	l := mustLayout(t, 64, 16, 64*1024)
	c := l.TotalChunks - 1
	path := l.PathToRoot(c)
	if len(path) != l.Depth(c) {
		t.Fatalf("path length %d != depth %d", len(path), l.Depth(c))
	}
	if path[len(path)-1] != 0 {
		t.Error("path does not end at the root")
	}
	cur := c
	for _, p := range path {
		want, _, _ := l.Parent(cur)
		if p != want {
			t.Fatalf("path hop %d != parent %d", p, want)
		}
		cur = p
	}
}

func TestOverhead(t *testing.T) {
	// With arity 4, the paper says a quarter of memory goes to hashes;
	// asymptotically interior/total -> 1/4.
	l := mustLayout(t, 64, 16, 16<<20)
	if ov := l.Overhead(); ov < 0.24 || ov > 0.26 {
		t.Errorf("overhead %f, want ~0.25", ov)
	}
}

func TestLayoutSingleDataChunk(t *testing.T) {
	l := mustLayout(t, 64, 16, 10) // rounds up to one data chunk
	if l.DataChunks != 1 || l.InteriorChunks != 1 {
		t.Fatalf("layout: %+v", l)
	}
	// The single data chunk is chunk 1, child 0 of the root.
	p, slot, isRoot := l.Parent(1)
	if isRoot || p != 0 || slot != 0 {
		t.Errorf("Parent(1) = %d,%d,%v", p, slot, isRoot)
	}
}

func TestLayoutProperties(t *testing.T) {
	check := func(chunkPow, dataPow uint8) bool {
		chunk := 32 << (chunkPow % 3) // 32, 64, 128
		data := uint64(1) << (10 + dataPow%10)
		l, err := NewLayout(chunk, 16, data)
		if err != nil {
			return false
		}
		// Data region must cover the requested bytes.
		if l.DataChunks*uint64(l.ChunkSize) < data {
			return false
		}
		// Parent is always a lower-numbered interior chunk.
		for c := uint64(1); c < l.TotalChunks; c += 1 + l.TotalChunks/64 {
			p, _, _ := l.Parent(c)
			if p >= c || !l.IsInterior(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
