package htree

import (
	"bytes"
	"testing"
	"testing/quick"

	"memverify/internal/hashalg"
	"memverify/internal/mem"
)

func newTestTree(t *testing.T, dataBytes uint64) (*Tree, *mem.Sparse) {
	t.Helper()
	l, err := NewLayout(64, 16, dataBytes)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewSparse()
	// Fill the data region with a pattern so hashes are non-trivial.
	buf := make([]byte, l.DataChunks*uint64(l.ChunkSize))
	for i := range buf {
		buf[i] = byte(i*37 + 11)
	}
	m.Write(l.DataStart(), buf)
	tr := NewTree(l, hashalg.MD5{}, m)
	tr.Build()
	return tr, m
}

func TestBuildAndVerifyAll(t *testing.T) {
	tr, _ := newTestTree(t, 4096)
	if err := tr.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Root()) != 16 {
		t.Errorf("root length %d", len(tr.Root()))
	}
}

// TestAnySingleByteCorruptionDetected flips every byte of the protected
// region (data and interior hashes) in turn and checks the affected
// chunk's verification fails.
func TestAnySingleByteCorruptionDetected(t *testing.T) {
	tr, m := newTestTree(t, 1024)
	size := tr.Layout.Size()
	for addr := uint64(0); addr < size; addr += 7 { // stride keeps it fast
		var b [1]byte
		m.Read(addr, b[:])
		m.Write(addr, []byte{b[0] ^ 0x40})
		if err := tr.VerifyChunk(tr.Layout.ChunkOf(addr)); err == nil {
			t.Fatalf("corruption at %#x undetected", addr)
		}
		m.Write(addr, b[:]) // restore
		if err := tr.VerifyChunk(tr.Layout.ChunkOf(addr)); err != nil {
			t.Fatalf("restore at %#x did not verify: %v", addr, err)
		}
	}
}

func TestVerifyAllFindsDeepCorruption(t *testing.T) {
	tr, m := newTestTree(t, 8192)
	// Corrupt a stored hash inside an interior chunk.
	addr, _ := tr.Layout.HashAddr(tr.Layout.TotalChunks - 1)
	var b [1]byte
	m.Read(addr, b[:])
	m.Write(addr, []byte{b[0] ^ 1})
	err := tr.VerifyAll()
	if err == nil {
		t.Fatal("corrupted stored hash undetected")
	}
	if _, ok := err.(*TamperError); !ok {
		t.Fatalf("error type %T", err)
	}
}

func TestWriteDataUpdatesPath(t *testing.T) {
	tr, _ := newTestTree(t, 4096)
	rootBefore := tr.Root()
	if err := tr.WriteData(100, []byte("new contents!")); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(tr.Root(), rootBefore) {
		t.Error("root unchanged after data write")
	}
	if err := tr.VerifyAll(); err != nil {
		t.Fatalf("tree inconsistent after write: %v", err)
	}
	got := make([]byte, 13)
	if err := tr.ReadData(100, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "new contents!" {
		t.Errorf("read back %q", got)
	}
}

func TestWriteDataCrossChunk(t *testing.T) {
	tr, _ := newTestTree(t, 4096)
	payload := bytes.Repeat([]byte{0xEE}, 200) // spans 4 chunks
	if err := tr.WriteData(60, payload); err != nil {
		t.Fatal(err)
	}
	if err := tr.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 200)
	if err := tr.ReadData(60, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("cross-chunk payload mismatch")
	}
}

func TestWriteRefusesTamperedChunk(t *testing.T) {
	tr, m := newTestTree(t, 1024)
	// Tamper with the chunk about to be partially overwritten; the write
	// must detect it rather than launder the corruption into a new hash.
	addr := tr.Layout.DataStart() + 64
	m.Write(addr, []byte{0xBA, 0xD0})
	if err := tr.WriteData(64, []byte{1}); err == nil {
		t.Fatal("partial write over tampered chunk succeeded")
	}
}

func TestReadDetectsReplay(t *testing.T) {
	tr, _ := newTestTree(t, 1024)
	adv := mem.NewAdversary(tr.Memory())
	tr.SetMemory(adv)

	snap := adv.Snapshot(tr.Layout.DataStart(), 64)
	if err := tr.WriteData(0, bytes.Repeat([]byte{0x11}, 64)); err != nil {
		t.Fatal(err)
	}
	adv.Replay(snap)
	buf := make([]byte, 8)
	if err := tr.ReadData(0, buf); err == nil {
		t.Fatal("replayed stale data verified")
	}
}

func TestRootPersistence(t *testing.T) {
	tr, m := newTestTree(t, 1024)
	root := tr.Root()
	tr2 := NewTree(tr.Layout, hashalg.MD5{}, m)
	tr2.SetRoot(root)
	if err := tr2.VerifyAll(); err != nil {
		t.Fatalf("resumed tree does not verify: %v", err)
	}
	// Mutating the returned root copy must not affect the tree.
	root[0] ^= 1
	if err := tr2.VerifyAll(); err != nil {
		t.Fatal("Root() returned aliased storage")
	}
}

func TestProofRoundTrip(t *testing.T) {
	tr, _ := newTestTree(t, 4096)
	for c := uint64(0); c < tr.Layout.TotalChunks; c++ {
		p := tr.Prove(c)
		if err := CheckProof(tr.Layout, hashalg.MD5{}, tr.Root(), p); err != nil {
			t.Fatalf("proof for chunk %d rejected: %v", c, err)
		}
	}
}

func TestProofTamperRejected(t *testing.T) {
	tr, _ := newTestTree(t, 4096)
	p := tr.Prove(tr.Layout.TotalChunks - 1)
	p.Chunks[0][5] ^= 1
	if CheckProof(tr.Layout, hashalg.MD5{}, tr.Root(), p) == nil {
		t.Fatal("tampered proof accepted")
	}
}

func TestProofWrongRootRejected(t *testing.T) {
	tr, _ := newTestTree(t, 4096)
	p := tr.Prove(7)
	root := tr.Root()
	root[3] ^= 1
	if CheckProof(tr.Layout, hashalg.MD5{}, root, p) == nil {
		t.Fatal("proof accepted under wrong root")
	}
}

func TestProofMalformedRejected(t *testing.T) {
	tr, _ := newTestTree(t, 4096)
	good := tr.Prove(7)

	bad := &Proof{Chunk: 7}
	if CheckProof(tr.Layout, hashalg.MD5{}, tr.Root(), bad) == nil {
		t.Error("empty proof accepted")
	}
	truncated := &Proof{Chunk: good.Chunk, Chunks: good.Chunks[:1], Path: good.Path[:1]}
	if CheckProof(tr.Layout, hashalg.MD5{}, tr.Root(), truncated) == nil {
		t.Error("truncated proof accepted")
	}
	short := &Proof{Chunk: good.Chunk, Chunks: [][]byte{good.Chunks[0][:10]}, Path: good.Path[:1]}
	if CheckProof(tr.Layout, hashalg.MD5{}, tr.Root(), short) == nil {
		t.Error("short-chunk proof accepted")
	}
}

// TestRandomWritesKeepTreeConsistent is the main functional property: any
// sequence of writes through the tree keeps VerifyAll passing and reads
// return the latest data.
func TestRandomWritesKeepTreeConsistent(t *testing.T) {
	tr, _ := newTestTree(t, 2048)
	shadow := make([]byte, 2048)
	buf := make([]byte, 2048)
	if err := tr.ReadData(0, buf); err != nil {
		t.Fatal(err)
	}
	copy(shadow, buf)

	check := func(off uint16, val byte, n uint8) bool {
		start := uint64(off) % 2048
		length := uint64(n)%64 + 1
		if start+length > 2048 {
			length = 2048 - start
		}
		payload := bytes.Repeat([]byte{val}, int(length))
		if err := tr.WriteData(start, payload); err != nil {
			return false
		}
		copy(shadow[start:start+length], payload)
		got := make([]byte, length)
		if err := tr.ReadData(start, got); err != nil {
			return false
		}
		return bytes.Equal(got, shadow[start:start+length]) && tr.VerifyAll() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTamperErrorMessage(t *testing.T) {
	e := &TamperError{Chunk: 3, Want: []byte{1}, Got: []byte{2}}
	if e.Error() == "" {
		t.Error("empty error message")
	}
}
