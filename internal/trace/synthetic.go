package trace

// Profile parameterizes a synthetic workload. All fractions are in [0,1].
type Profile struct {
	Name string

	// Instruction mix. Load+Store+FP+Mul+Branch must be ≤ 1; the
	// remainder is 1-cycle integer work.
	Load, Store, FP, Mul, Branch float64

	// WorkingSet is the total data footprint. HotSet is a small
	// high-locality region (locals, top of stack, hot globals) receiving
	// HotFrac of all accesses.
	WorkingSet uint64
	HotSet     uint64
	HotFrac    float64

	// Of the remaining "cold" accesses, SeqFrac stream through the
	// working set with SeqStride bytes between touches, distributed over
	// Streams concurrent cursors (vector codes sweep several arrays).
	SeqFrac   float64
	SeqStride uint64
	Streams   int

	// ChaseFrac of cold accesses are pointer chases: the address depends
	// on the previous load's value, serializing misses (mcf's lists).
	// Chases wander inside a ChaseRegion-byte window (default: the whole
	// working set) that relocates every ~131072 chases — real pointer codes
	// chase within an active sub-structure, not uniformly over 190 MB.
	ChaseFrac   float64
	ChaseRegion uint64

	// ScatterFrac of cold accesses are isolated random touches across the
	// whole working set — hash-table probes, sparse index lookups. They
	// miss without bringing useful neighbours, which is what makes
	// multi-block chunks (the m scheme) pay for sibling fetches.
	ScatterFrac float64

	// Remaining cold accesses walk random regions: the generator picks a
	// random ColdRegion-byte window in the working set and issues ColdRun
	// accesses inside it before jumping — real programs touch records,
	// not uniformly random words, and this spatial locality is what lets
	// cached tree nodes be reused. Defaults: 2 KiB windows, 12 accesses.
	ColdRegion uint64
	ColdRun    int

	// DepNear is the probability an instruction depends on a result 1–4
	// instructions back; DepFar adds a second dependency 5–32 back.
	DepNear, DepFar float64

	// Mispredict is the branch misprediction rate.
	Mispredict float64

	// CodeSet is the instruction footprint driving the L1 I-cache.
	CodeSet uint64

	// CryptoEvery, when non-zero, emits one cryptographic (signing)
	// instruction every N dynamic instructions. Crypto instructions are
	// the §5.8 barriers: they wait for all outstanding integrity checks.
	// The paper notes they are "very infrequent" (every few seconds) and
	// excludes them from steady-state measurement; the default is 0.
	CryptoEvery uint64
}

// Synthetic generates a deterministic instruction stream from a Profile.
type Synthetic struct {
	p          Profile
	rng        *RNG
	pc         uint64
	streams    []uint64
	nextStrm   int
	sinceLoad  uint32
	count      uint64
	regionBase uint64
	runLeft    int
	chaseBase  uint64
	chaseLeft  int
}

// NewSynthetic builds a generator for profile p with the given seed.
func NewSynthetic(p Profile, seed uint64) *Synthetic {
	if p.WorkingSet == 0 {
		p.WorkingSet = 1 << 20
	}
	if p.HotSet == 0 {
		p.HotSet = 16 << 10
	}
	if p.CodeSet == 0 {
		p.CodeSet = 64 << 10
	}
	if p.SeqStride == 0 {
		p.SeqStride = 8
	}
	if p.Streams <= 0 {
		p.Streams = 1
	}
	if p.ColdRegion == 0 {
		p.ColdRegion = 2 << 10
	}
	if p.ColdRegion > p.WorkingSet {
		p.ColdRegion = p.WorkingSet
	}
	if p.ColdRun <= 0 {
		p.ColdRun = 12
	}
	if p.ChaseRegion == 0 || p.ChaseRegion > p.WorkingSet {
		p.ChaseRegion = p.WorkingSet
	}
	g := &Synthetic{p: p, rng: NewRNG(seed)}
	g.streams = make([]uint64, p.Streams)
	span := p.WorkingSet / uint64(p.Streams)
	for i := range g.streams {
		// Spread stream cursors through the working set so concurrent
		// sweeps touch distinct regions, like distinct arrays. The phase
		// within each span is randomized: evenly spaced cursors would
		// alias to the same cache set and thrash in lockstep, which real
		// arrays (with headers, padding, different shapes) do not.
		g.streams[i] = span*uint64(i) + g.rng.Uint64()%span
	}
	return g
}

// Name implements Generator.
func (g *Synthetic) Name() string { return g.p.Name }

const wordAlign = ^uint64(7)

// skewed draws an offset in [0, size) with a front-weighted quadratic
// distribution. Real hot regions are not uniformly hot — a few structures
// dominate — so losing part of the cache to hash lines degrades hit rates
// gradually instead of falling off a capacity cliff.
func skewed(rng *RNG, size uint64) uint64 {
	r := rng.Float64()
	return uint64(r * r * float64(size))
}

// dataAddr produces the next load/store address and reports whether it is
// a serialized pointer chase.
func (g *Synthetic) dataAddr() (addr uint64, chase bool) {
	p := &g.p
	r := g.rng.Float64()
	if r < p.HotFrac {
		return skewed(g.rng, p.HotSet) & wordAlign, false
	}
	r = g.rng.Float64()
	switch {
	case r < p.SeqFrac:
		i := g.nextStrm
		g.nextStrm = (g.nextStrm + 1) % len(g.streams)
		g.streams[i] = (g.streams[i] + p.SeqStride) % p.WorkingSet
		return g.streams[i] & wordAlign, false
	case r < p.SeqFrac+p.ChaseFrac:
		if g.chaseLeft == 0 {
			g.chaseBase = g.rng.Uint64() % (p.WorkingSet - p.ChaseRegion + 1)
			g.chaseLeft = 1 << 17
		}
		g.chaseLeft--
		return (g.chaseBase + skewed(g.rng, p.ChaseRegion)) & wordAlign, true
	case r < p.SeqFrac+p.ChaseFrac+p.ScatterFrac:
		return (g.rng.Uint64() % p.WorkingSet) & wordAlign, false
	default:
		if g.runLeft == 0 {
			// Region popularity is front-skewed: block popularity in real
			// programs is Zipf-like, so caches hold a graded hot front
			// rather than facing a uniform working set that falls off a
			// capacity cliff when hash lines take their share.
			g.regionBase = skewed(g.rng, p.WorkingSet-p.ColdRegion+1)
			g.runLeft = p.ColdRun
		}
		g.runLeft--
		// Walk the region sequentially: programs scan records and
		// structs, they do not sample them uniformly. The resulting
		// spatial locality is what lets cached hash-tree nodes be reused
		// across adjacent misses.
		off := (uint64(p.ColdRun-1-g.runLeft) * 8) % p.ColdRegion
		return (g.regionBase + off) & wordAlign, false
	}
}

// Next implements Generator.
func (g *Synthetic) Next(ins *Instruction) {
	p := &g.p
	*ins = Instruction{}
	g.count++
	g.sinceLoad++

	// Program counter: mostly sequential, jumping on taken branches.
	g.pc += 4
	if g.pc >= p.CodeSet {
		g.pc = 0
	}
	ins.PC = g.pc

	if p.CryptoEvery != 0 && g.count%p.CryptoEvery == 0 {
		ins.Op = OpCrypto
		return
	}

	r := g.rng.Float64()
	switch {
	case r < p.Load:
		ins.Op = OpLoad
	case r < p.Load+p.Store:
		ins.Op = OpStore
	case r < p.Load+p.Store+p.FP:
		ins.Op = OpFP
	case r < p.Load+p.Store+p.FP+p.Mul:
		ins.Op = OpMul
	case r < p.Load+p.Store+p.FP+p.Mul+p.Branch:
		ins.Op = OpBranch
	default:
		ins.Op = OpInt
	}

	switch ins.Op {
	case OpLoad, OpStore:
		addr, chase := g.dataAddr()
		ins.Addr = addr
		if chase && g.sinceLoad < 64 {
			// The chased address came out of the previous load.
			ins.Dep1 = g.sinceLoad
		}
		if ins.Op == OpLoad {
			g.sinceLoad = 0
		}
	case OpBranch:
		if g.rng.Float64() < p.Mispredict {
			ins.Mispredict = true
		}
		if g.rng.Float64() < 0.4 {
			// Taken branch: usually a short local jump (loops, if/else),
			// occasionally a far call into the rest of the code footprint.
			if g.rng.Float64() < 0.9 {
				delta := g.rng.Uint64() % 2048
				g.pc = (g.pc + p.CodeSet - delta) % p.CodeSet &^ 3
			} else {
				g.pc = (g.rng.Uint64() % p.CodeSet) &^ 3
			}
		}
	}

	// Register dependencies create the dataflow limiting ILP.
	if ins.Dep1 == 0 && g.rng.Float64() < p.DepNear {
		ins.Dep1 = uint32(1 + g.rng.Intn(4))
	}
	if g.rng.Float64() < p.DepFar {
		ins.Dep2 = uint32(5 + g.rng.Intn(28))
	}
	if uint64(ins.Dep1) > g.count-1 {
		ins.Dep1 = 0
	}
	if uint64(ins.Dep2) > g.count-1 {
		ins.Dep2 = 0
	}
}
