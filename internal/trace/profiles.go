package trace

// Profiles for the nine SPEC CPU2000 benchmarks the paper simulates
// (§6.3). Parameters are tuned to reproduce each benchmark's published
// qualitative behaviour on the paper's cache configurations:
//
//   - gcc, gzip: modest working sets with strong locality — low L2 miss
//     traffic, small verification overhead.
//   - mcf: enormous pointer-chasing working set, very high L2 miss
//     traffic, low ILP — the worst case for hash-cache contention at
//     256 KB.
//   - twolf, vpr: ~1–2 MB working sets that fit a 4 MB L2 but thrash a
//     256 KB one — the benchmarks whose Figure 4 miss rate inflates under
//     hash caching.
//   - vortex: database-ish mix, many stores, moderate miss traffic.
//   - applu, swim: streaming FP over ~190 MB arrays — bandwidth-bound,
//     the ~10× victims of the naive scheme.
//   - art: smaller FP working set streamed repeatedly — bandwidth-hungry
//     below 4 MB.
var (
	GCC = Profile{
		Name: "gcc",
		Load: 0.24, Store: 0.11, Mul: 0.02, Branch: 0.18,
		WorkingSet: 16 << 20, HotSet: 32 << 10, HotFrac: 0.965,
		SeqFrac: 0.20, SeqStride: 16, Streams: 2, ScatterFrac: 0.003,
		ColdRegion: 1 << 10, ColdRun: 96,
		DepNear: 0.45, DepFar: 0.15, Mispredict: 0.055,
		CodeSet: 96 << 10,
	}
	Gzip = Profile{
		Name: "gzip",
		Load: 0.21, Store: 0.09, Mul: 0.01, Branch: 0.16,
		WorkingSet: 8 << 20, HotSet: 32 << 10, HotFrac: 0.982,
		SeqFrac: 0.50, SeqStride: 8, Streams: 2, ScatterFrac: 0.003,
		ColdRegion: 2 << 10, ColdRun: 128,
		DepNear: 0.40, DepFar: 0.12, Mispredict: 0.07,
		CodeSet: 64 << 10,
	}
	MCF = Profile{
		Name: "mcf",
		Load: 0.32, Store: 0.09, Mul: 0.01, Branch: 0.19,
		WorkingSet: 190 << 20, HotSet: 32 << 10, HotFrac: 0.76,
		SeqFrac: 0.05, ChaseFrac: 0.45, ChaseRegion: 448 << 10, ScatterFrac: 0.008,
		ColdRegion: 2 << 10, ColdRun: 256,
		DepNear: 0.50, DepFar: 0.20, Mispredict: 0.08,
		CodeSet: 32 << 10,
	}
	Twolf = Profile{
		Name: "twolf",
		Load: 0.27, Store: 0.11, Mul: 0.03, Branch: 0.15,
		WorkingSet: 160 << 10, HotSet: 32 << 10, HotFrac: 0.72,
		SeqFrac: 0.05, SeqStride: 16, Streams: 2, ChaseFrac: 0.10, ScatterFrac: 0.04,
		ColdRegion: 1 << 10, ColdRun: 32,
		DepNear: 0.45, DepFar: 0.18, Mispredict: 0.08,
		CodeSet: 96 << 10,
	}
	Vortex = Profile{
		Name: "vortex",
		Load: 0.27, Store: 0.14, Mul: 0.01, Branch: 0.16,
		WorkingSet: 48 << 20, HotSet: 48 << 10, HotFrac: 0.955,
		SeqFrac: 0.20, SeqStride: 32, Streams: 2, ScatterFrac: 0.015,
		ColdRegion: 8 << 10, ColdRun: 96,
		DepNear: 0.40, DepFar: 0.12, Mispredict: 0.025,
		CodeSet: 96 << 10,
	}
	VPR = Profile{
		Name: "vpr",
		Load: 0.29, Store: 0.11, Mul: 0.02, Branch: 0.13,
		WorkingSet: 192 << 10, HotSet: 32 << 10, HotFrac: 0.75,
		SeqFrac: 0.05, SeqStride: 16, Streams: 2, ChaseFrac: 0.08, ScatterFrac: 0.04,
		ColdRegion: 1 << 10, ColdRun: 24,
		DepNear: 0.45, DepFar: 0.18, Mispredict: 0.07,
		CodeSet: 96 << 10,
	}
	Applu = Profile{
		Name: "applu",
		Load: 0.30, Store: 0.12, FP: 0.34, Branch: 0.04,
		WorkingSet: 180 << 20, HotSet: 32 << 10, HotFrac: 0.84,
		SeqFrac: 0.92, SeqStride: 8, Streams: 6, ScatterFrac: 0.008,
		DepNear: 0.30, DepFar: 0.10, Mispredict: 0.01,
		CodeSet: 96 << 10,
	}
	Art = Profile{
		Name: "art",
		Load: 0.33, Store: 0.05, FP: 0.30, Branch: 0.10,
		WorkingSet: 5 << 20, HotSet: 16 << 10, HotFrac: 0.78,
		SeqFrac: 0.92, SeqStride: 8, Streams: 4, ScatterFrac: 0.008,
		DepNear: 0.35, DepFar: 0.10, Mispredict: 0.02,
		CodeSet: 32 << 10,
	}
	Swim = Profile{
		Name: "swim",
		Load: 0.28, Store: 0.16, FP: 0.34, Branch: 0.03,
		WorkingSet: 190 << 20, HotSet: 16 << 10, HotFrac: 0.83,
		SeqFrac: 0.94, ScatterFrac: 0.01, SeqStride: 8, Streams: 8,
		DepNear: 0.28, DepFar: 0.08, Mispredict: 0.01,
		CodeSet: 32 << 10,
	}
)

// Benchmarks lists the paper's nine workloads in its plotting order.
var Benchmarks = []Profile{GCC, Gzip, MCF, Twolf, Vortex, VPR, Applu, Art, Swim}

// ByName returns the benchmark profile with the given name.
func ByName(name string) (Profile, bool) {
	for _, p := range Benchmarks {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Uniform returns a profile performing uniformly random loads and stores
// over a working set — a stress generator for tests.
func Uniform(name string, workingSet uint64) Profile {
	return Profile{
		Name: name,
		Load: 0.30, Store: 0.15, Branch: 0.10,
		WorkingSet: workingSet, HotSet: 8 << 10, HotFrac: 0,
		ColdRegion: 64, ColdRun: 1,
		DepNear: 0.3, Mispredict: 0.05,
	}
}

// Stream returns a pure streaming profile for tests.
func Stream(name string, workingSet uint64, stride uint64) Profile {
	return Profile{
		Name: name,
		Load: 0.30, Store: 0.15,
		WorkingSet: workingSet, HotSet: 8 << 10, HotFrac: 0,
		SeqFrac: 1.0, SeqStride: stride, Streams: 2,
		DepNear: 0.2,
	}
}
