// Package trace generates the synthetic instruction streams that stand in
// for the paper's nine SPEC CPU2000 benchmarks. Real Alpha binaries cannot
// be replayed here, so each benchmark is modeled as a parameterized
// generator reproducing the traits the paper's analysis depends on:
// working-set size and locality (L2 miss rate), streaming versus
// pointer-chasing access (bandwidth demand and memory-level parallelism),
// instruction mix and dependency density (ILP), and branch behaviour.
package trace

// Op classifies an instruction for the timing model.
type Op uint8

// Instruction kinds.
const (
	OpInt    Op = iota // 1-cycle integer ALU
	OpMul              // 3-cycle multiply
	OpFP               // 4-cycle floating point
	OpLoad             // memory load
	OpStore            // memory store
	OpBranch           // 1-cycle branch (may mispredict)
	OpCrypto           // cryptographic instruction: §5.8 barrier, waits for all checks
	numOps
)

// String returns a short mnemonic.
func (o Op) String() string {
	switch o {
	case OpInt:
		return "int"
	case OpMul:
		return "mul"
	case OpFP:
		return "fp"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	case OpCrypto:
		return "crypto"
	}
	return "?"
}

// Instruction is one dynamic instruction. Dep1/Dep2 are backward distances
// to producing instructions (0 = no dependency): instruction i reads the
// results of instructions i-Dep1 and i-Dep2.
type Instruction struct {
	PC         uint64 // instruction address (drives the L1 I-cache)
	Addr       uint64 // data address for loads and stores
	Dep1, Dep2 uint32
	Op         Op
	Mispredict bool // branch that the predictor will miss
}

// Generator produces an instruction stream. Implementations are
// deterministic for a given seed so experiments are reproducible.
type Generator interface {
	// Name identifies the workload (benchmark name).
	Name() string
	// Next fills in the next dynamic instruction.
	Next(ins *Instruction)
}

// RNG is a small deterministic xorshift64* generator, so traces do not
// depend on math/rand ordering across Go releases.
type RNG struct {
	s uint64
}

// NewRNG seeds a generator; a zero seed is replaced with a fixed constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{s: seed}
}

// Uint64 returns the next pseudo-random value.
func (r *RNG) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}
