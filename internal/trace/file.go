package trace

// Trace files let workloads be recorded once and replayed byte-for-byte —
// the same methodology as distributing SimpleScalar EIO traces. The format
// is a compact varint encoding:
//
//	magic "MVTR1\n"
//	per instruction:
//	    1 byte   op (low 3 bits) | mispredict flag (bit 3)
//	    uvarint  pc
//	    uvarint  addr  (loads/stores only)
//	    uvarint  dep1, dep2

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

const fileMagic = "MVTR1\n"

// Writer streams instructions to a trace file.
type Writer struct {
	w     *bufio.Writer
	wrote bool
	n     uint64
}

// NewWriter wraps w; the magic header is emitted with the first record.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one instruction.
func (t *Writer) Write(ins *Instruction) error {
	if !t.wrote {
		if _, err := t.w.WriteString(fileMagic); err != nil {
			return err
		}
		t.wrote = true
	}
	head := byte(ins.Op) & 0x07
	if ins.Mispredict {
		head |= 0x08
	}
	if err := t.w.WriteByte(head); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := t.w.Write(buf[:n])
		return err
	}
	if err := put(ins.PC); err != nil {
		return err
	}
	if ins.Op == OpLoad || ins.Op == OpStore {
		if err := put(ins.Addr); err != nil {
			return err
		}
	}
	if err := put(uint64(ins.Dep1)); err != nil {
		return err
	}
	if err := put(uint64(ins.Dep2)); err != nil {
		return err
	}
	t.n++
	return nil
}

// Count returns the number of instructions written.
func (t *Writer) Count() uint64 { return t.n }

// Flush drains buffered records to the underlying writer.
func (t *Writer) Flush() error { return t.w.Flush() }

// Record captures n instructions from gen into w.
func Record(w io.Writer, gen Generator, n uint64) error {
	tw := NewWriter(w)
	var ins Instruction
	for i := uint64(0); i < n; i++ {
		gen.Next(&ins)
		if err := tw.Write(&ins); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// Reader streams instructions from a trace file.
type Reader struct {
	r      *bufio.Reader
	header bool
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Read fills ins with the next record. It returns io.EOF cleanly at the
// end of the trace.
func (t *Reader) Read(ins *Instruction) error {
	if !t.header {
		magic := make([]byte, len(fileMagic))
		if _, err := io.ReadFull(t.r, magic); err != nil {
			return fmt.Errorf("trace: reading magic: %w", err)
		}
		if string(magic) != fileMagic {
			return fmt.Errorf("trace: bad magic %q", magic)
		}
		t.header = true
	}
	head, err := t.r.ReadByte()
	if err != nil {
		return err // io.EOF here is the clean end of trace
	}
	*ins = Instruction{Op: Op(head & 0x07), Mispredict: head&0x08 != 0}
	if ins.Op >= numOps {
		return fmt.Errorf("trace: invalid opcode %d", ins.Op)
	}
	get := func() (uint64, error) { return binary.ReadUvarint(t.r) }
	if ins.PC, err = get(); err != nil {
		return corrupt(err)
	}
	if ins.Op == OpLoad || ins.Op == OpStore {
		if ins.Addr, err = get(); err != nil {
			return corrupt(err)
		}
	}
	d1, err := get()
	if err != nil {
		return corrupt(err)
	}
	d2, err := get()
	if err != nil {
		return corrupt(err)
	}
	ins.Dep1, ins.Dep2 = uint32(d1), uint32(d2)
	return nil
}

// corrupt maps an EOF in the middle of a record to a hard error.
func corrupt(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("trace: truncated record: %w", io.ErrUnexpectedEOF)
	}
	return err
}

// ReadAll decodes an entire trace.
func ReadAll(r io.Reader) ([]Instruction, error) {
	tr := NewReader(r)
	var out []Instruction
	for {
		var ins Instruction
		err := tr.Read(&ins)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, ins)
	}
}

// Replay is a Generator over a recorded instruction slice, wrapping
// around at the end so any simulation length can be driven.
type Replay struct {
	name string
	ins  []Instruction
	i    int
}

// NewReplay builds a generator replaying ins in order.
func NewReplay(name string, ins []Instruction) *Replay {
	if len(ins) == 0 {
		panic("trace: cannot replay an empty trace")
	}
	return &Replay{name: name, ins: ins}
}

// Name implements Generator.
func (r *Replay) Name() string { return r.name }

// Next implements Generator.
func (r *Replay) Next(ins *Instruction) {
	*ins = r.ins[r.i]
	r.i++
	if r.i == len(r.ins) {
		r.i = 0
	}
}
