package trace

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds gave the same first value")
	}
	// Zero seed must still work.
	if NewRNG(0).Uint64() == 0 {
		t.Error("zero seed produced zero")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
		if n := r.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %d", n)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewSynthetic(GCC, 5)
	b := NewSynthetic(GCC, 5)
	var ia, ib Instruction
	for i := 0; i < 10000; i++ {
		a.Next(&ia)
		b.Next(&ib)
		if ia != ib {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, ia, ib)
		}
	}
}

func TestAddressesInBounds(t *testing.T) {
	for _, p := range Benchmarks {
		g := NewSynthetic(p, 1)
		var ins Instruction
		for i := 0; i < 20000; i++ {
			g.Next(&ins)
			if ins.Op == OpLoad || ins.Op == OpStore {
				if ins.Addr >= p.WorkingSet {
					t.Fatalf("%s: address %#x outside working set %#x", p.Name, ins.Addr, p.WorkingSet)
				}
				if ins.Addr%8 != 0 {
					t.Fatalf("%s: unaligned address %#x", p.Name, ins.Addr)
				}
			}
			if ins.PC >= p.CodeSet {
				t.Fatalf("%s: PC %#x outside code set", p.Name, ins.PC)
			}
		}
	}
}

func TestInstructionMixMatchesProfile(t *testing.T) {
	p := GCC
	g := NewSynthetic(p, 1)
	var ins Instruction
	const n = 200000
	counts := map[Op]int{}
	for i := 0; i < n; i++ {
		g.Next(&ins)
		counts[ins.Op]++
	}
	checks := []struct {
		op   Op
		want float64
	}{
		{OpLoad, p.Load}, {OpStore, p.Store}, {OpBranch, p.Branch}, {OpMul, p.Mul},
	}
	for _, c := range checks {
		got := float64(counts[c.op]) / n
		if got < c.want*0.9 || got > c.want*1.1 {
			t.Errorf("%v fraction %f, want ~%f", c.op, got, c.want)
		}
	}
}

func TestDependencyDistancesValid(t *testing.T) {
	g := NewSynthetic(MCF, 2)
	var ins Instruction
	for i := uint64(0); i < 50000; i++ {
		g.Next(&ins)
		if uint64(ins.Dep1) > i || uint64(ins.Dep2) > i {
			t.Fatalf("instruction %d depends beyond program start (%d, %d)", i, ins.Dep1, ins.Dep2)
		}
	}
}

func TestChaseSerializesLoads(t *testing.T) {
	p := Profile{
		Name: "chase", Load: 1.0,
		WorkingSet: 1 << 20, HotFrac: 0, ChaseFrac: 1.0,
	}
	g := NewSynthetic(p, 1)
	var ins Instruction
	deps := 0
	for i := 0; i < 1000; i++ {
		g.Next(&ins)
		if ins.Dep1 != 0 {
			deps++
		}
	}
	if deps < 900 {
		t.Errorf("only %d/1000 chased loads carry a dependency", deps)
	}
}

func TestStreamsAreSequential(t *testing.T) {
	p := Stream("s", 1<<20, 8)
	p.Streams = 1
	g := NewSynthetic(p, 1)
	var ins Instruction
	var last uint64
	first := true
	for i := 0; i < 1000; i++ {
		g.Next(&ins)
		if ins.Op != OpLoad && ins.Op != OpStore {
			continue
		}
		if !first && ins.Addr != last+8 && ins.Addr != 0 { // wrap allowed
			t.Fatalf("stream jumped from %#x to %#x", last, ins.Addr)
		}
		last = ins.Addr
		first = false
	}
}

func TestRegionalWalkIsLocal(t *testing.T) {
	p := Uniform("u", 1<<24)
	p.ColdRegion = 1 << 10
	p.ColdRun = 32
	g := NewSynthetic(p, 9)
	var ins Instruction
	var addrs []uint64
	for len(addrs) < 64 {
		g.Next(&ins)
		if ins.Op == OpLoad || ins.Op == OpStore {
			addrs = append(addrs, ins.Addr)
		}
	}
	// Within one 32-access run, addresses must stay within the region.
	for i := 1; i < 32; i++ {
		d := int64(addrs[i]) - int64(addrs[i-1])
		if d < 0 {
			d = -d
		}
		if uint64(d) > p.ColdRegion {
			t.Fatalf("access %d jumped %d bytes within a run", i, d)
		}
	}
}

func TestSkewedFrontWeighted(t *testing.T) {
	r := NewRNG(4)
	const size = 1 << 20
	front := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if skewed(r, size) < size/4 {
			front++
		}
	}
	// Quadratic skew: P(x < size/4) = 1/2.
	if float64(front)/n < 0.45 || float64(front)/n > 0.55 {
		t.Errorf("front quarter got %d/%d draws, want ~50%%", front, n)
	}
}

func TestSkewedInRange(t *testing.T) {
	r := NewRNG(8)
	check := func(sz uint32) bool {
		size := uint64(sz)%(1<<20) + 1
		v := skewed(r, size)
		return v < size
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	for _, p := range Benchmarks {
		got, ok := ByName(p.Name)
		if !ok || got.Name != p.Name {
			t.Errorf("ByName(%q) failed", p.Name)
		}
	}
	if _, ok := ByName("doom"); ok {
		t.Error("ByName(doom) succeeded")
	}
	if len(Benchmarks) != 9 {
		t.Errorf("expected the paper's nine benchmarks, got %d", len(Benchmarks))
	}
}

func TestProfileFractionsSane(t *testing.T) {
	for _, p := range Benchmarks {
		if sum := p.Load + p.Store + p.FP + p.Mul + p.Branch; sum > 1.0 {
			t.Errorf("%s: instruction mix sums to %f", p.Name, sum)
		}
		if p.HotFrac < 0 || p.HotFrac > 1 {
			t.Errorf("%s: HotFrac %f", p.Name, p.HotFrac)
		}
		if cold := p.SeqFrac + p.ChaseFrac + p.ScatterFrac; cold > 1.0 {
			t.Errorf("%s: cold fractions sum to %f", p.Name, cold)
		}
		if p.WorkingSet == 0 || p.CodeSet == 0 {
			t.Errorf("%s: zero working or code set", p.Name)
		}
	}
}

func TestOpString(t *testing.T) {
	names := map[Op]string{
		OpInt: "int", OpMul: "mul", OpFP: "fp",
		OpLoad: "load", OpStore: "store", OpBranch: "branch",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, op.String(), want)
		}
	}
	if Op(99).String() != "?" {
		t.Error("unknown op name")
	}
}

func TestCryptoEveryEmitsBarriers(t *testing.T) {
	p := Uniform("crypto", 1<<20)
	p.CryptoEvery = 100
	g := NewSynthetic(p, 1)
	var ins Instruction
	crypto := 0
	for i := 0; i < 10_000; i++ {
		g.Next(&ins)
		if ins.Op == OpCrypto {
			crypto++
		}
	}
	if crypto != 100 {
		t.Errorf("emitted %d crypto instructions in 10k, want 100", crypto)
	}
}
