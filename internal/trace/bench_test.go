package trace

import (
	"bytes"
	"testing"
)

func BenchmarkSyntheticNext(b *testing.B) {
	g := NewSynthetic(GCC, 1)
	var ins Instruction
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next(&ins)
	}
}

func BenchmarkTraceEncode(b *testing.B) {
	g := NewSynthetic(MCF, 1)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var ins Instruction
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next(&ins)
		if err := w.Write(&ins); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceDecode(b *testing.B) {
	g := NewSynthetic(MCF, 1)
	var buf bytes.Buffer
	if err := Record(&buf, g, 100_000); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)) / 100_000)
	r := NewReader(bytes.NewReader(data))
	var ins Instruction
	for i := 0; i < b.N; i++ {
		if err := r.Read(&ins); err != nil {
			r = NewReader(bytes.NewReader(data)) // wrap
		}
	}
}
