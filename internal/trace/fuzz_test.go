package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the trace decoder: it must reject or
// decode them without panicking, and everything it decodes must re-encode
// to a stream that decodes identically.
func FuzzReader(f *testing.F) {
	// Seed with a real trace and a few corruptions of it.
	var buf bytes.Buffer
	if err := Record(&buf, NewSynthetic(GCC, 1), 50); err != nil {
		f.Fatal(err)
	}
	seed := buf.Bytes()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte("MVTR1\n"))
	f.Add([]byte("garbage"))
	bad := append([]byte(nil), seed...)
	bad[10] ^= 0xFF
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var decoded []Instruction
		for {
			var ins Instruction
			err := r.Read(&ins)
			if err == io.EOF {
				break
			}
			if err != nil {
				return // rejection is fine; panics are not
			}
			decoded = append(decoded, ins)
			if len(decoded) > 10000 {
				break
			}
		}
		if len(decoded) == 0 {
			return
		}
		// Round-trip what we decoded.
		var out bytes.Buffer
		w := NewWriter(&out)
		for i := range decoded {
			if err := w.Write(&decoded[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		again, err := ReadAll(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding a re-encoded trace failed: %v", err)
		}
		if len(again) != len(decoded) {
			t.Fatalf("round trip length %d != %d", len(again), len(decoded))
		}
		for i := range again {
			if again[i] != decoded[i] {
				t.Fatalf("round trip instruction %d differs", i)
			}
		}
	})
}
