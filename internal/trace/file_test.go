package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestFileRoundTrip(t *testing.T) {
	gen := NewSynthetic(MCF, 11)
	var buf bytes.Buffer
	if err := Record(&buf, gen, 5000); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5000 {
		t.Fatalf("decoded %d instructions, want 5000", len(got))
	}
	// The decoded trace must equal a fresh generation with the same seed.
	ref := NewSynthetic(MCF, 11)
	var ins Instruction
	for i, g := range got {
		ref.Next(&ins)
		if g != ins {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, g, ins)
		}
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	check := func(records []struct {
		Op         uint8
		PC, Addr   uint32
		Dep1, Dep2 uint16
		Mis        bool
	}) bool {
		if len(records) == 0 {
			return true
		}
		var ins []Instruction
		for _, r := range records {
			ins = append(ins, Instruction{
				Op:         Op(r.Op % uint8(numOps)),
				PC:         uint64(r.PC),
				Addr:       uint64(r.Addr),
				Dep1:       uint32(r.Dep1),
				Dep2:       uint32(r.Dep2),
				Mispredict: r.Mis,
			})
		}
		// Non-memory ops do not carry addresses.
		for i := range ins {
			if ins[i].Op != OpLoad && ins[i].Op != OpStore {
				ins[i].Addr = 0
			}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i := range ins {
			if err := w.Write(&ins[i]); err != nil {
				return false
			}
		}
		if w.Count() != uint64(len(ins)) {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(ins) {
			return false
		}
		for i := range got {
			if got[i] != ins[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOTATRACE")))
	var ins Instruction
	if err := r.Read(&ins); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReaderRejectsTruncation(t *testing.T) {
	gen := NewSynthetic(GCC, 1)
	var buf bytes.Buffer
	if err := Record(&buf, gen, 10); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-2] // chop mid-record
	_, err := ReadAll(bytes.NewReader(data))
	if err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestReaderRejectsBadOpcode(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("MVTR1\n")
	buf.WriteByte(0x07) // opcode 7 is out of range
	buf.WriteByte(0x00) // pc
	buf.WriteByte(0x00) // dep1
	buf.WriteByte(0x00) // dep2
	_, err := ReadAll(&buf)
	if err == nil {
		t.Fatal("invalid opcode accepted")
	}
}

func TestReplayLoops(t *testing.T) {
	ins := []Instruction{{Op: OpInt, PC: 4}, {Op: OpLoad, Addr: 8}}
	r := NewReplay("loop", ins)
	if r.Name() != "loop" {
		t.Error("name")
	}
	var got Instruction
	for i := 0; i < 5; i++ {
		r.Next(&got)
		if got != ins[i%2] {
			t.Fatalf("iteration %d: %+v", i, got)
		}
	}
}

func TestReplayEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty replay did not panic")
		}
	}()
	NewReplay("x", nil)
}

func TestReadAllEmptyStream(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream should fail (no magic)")
	}
}

func TestRecordedTraceDrivesSimulationIdentically(t *testing.T) {
	// A replayed trace must produce the identical instruction stream as
	// the live generator — verified instruction-by-instruction above, and
	// here through the wrap-around path.
	gen := NewSynthetic(Gzip, 3)
	var buf bytes.Buffer
	if err := Record(&buf, gen, 100); err != nil {
		t.Fatal(err)
	}
	recorded, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rp := NewReplay("gzip-trace", recorded)
	var a Instruction
	for i := 0; i < 250; i++ {
		rp.Next(&a)
		if a != recorded[i%100] {
			t.Fatalf("wrap-around replay diverged at %d", i)
		}
	}
	var _ io.Reader = &buf
}
