// Package prefetch implements a delta-correlation prefetch engine for the
// integrity layer's chunk-access stream. A pattern table keyed by the most
// recent chunk-address delta learns recurring stride sequences; once an
// entry's confidence crosses the configured threshold the prefetcher emits
// a prediction for the next chunk, and the integrity layer pulls that
// chunk's uncached tree ancestors into the cache ahead of the demand miss.
//
// The engine is deliberately timing-honest and bounded:
//
//   - Predictions are emitted, never queued: the caller issues a prefetch
//     only when the bus is idle and the in-flight budget has room, and
//     drops it otherwise (lowest-priority traffic).
//   - The in-flight budget is tracked by completion time, so a prefetch
//     occupies a slot exactly while its modeled bus/DRAM transfer is
//     outstanding.
//   - The whole engine is a pure function of its observation sequence: no
//     clocks, no randomness. Identical access streams produce identical
//     emission sequences, which is what keeps prefetch-on simulations
//     deterministic and byte-identical on delivered data.
//
// A nil *Prefetcher is the disabled state: every method is a nil-receiver
// no-op, so the prefetch-off path costs nothing (the same contract the
// telemetry layer uses).
package prefetch

import "fmt"

// Config selects and sizes the prefetch engine. The zero value (Enabled
// false) disables prefetching entirely.
type Config struct {
	// Enabled turns the engine on. All other fields are ignored (and not
	// validated) when false.
	Enabled bool
	// TableSize is the number of pattern-table entries; must be a power of
	// two. Each entry is a (delta → next delta, confidence) correlation.
	TableSize int
	// Threshold is the confidence an entry needs before its prediction is
	// emitted. Higher values trade coverage for accuracy.
	Threshold uint8
	// MaxInFlight bounds the number of outstanding prefetches; a
	// prediction arriving with the budget full is dropped, never queued.
	MaxInFlight int
	// MaxBusWait is how many cycles of pending bus backlog a prefetch may
	// queue behind before it is dropped instead. Predictions arrive right
	// after demand misses, while the bus is still draining that miss, so a
	// strictly-idle rule would starve the engine; a bounded wait lets the
	// prefetch slot in behind the tail of the current transfer while still
	// shedding under real contention (it is the lowest-priority traffic).
	MaxBusWait uint64
}

// DefaultConfig returns the engine sizing used by the benchmarks: a
// 256-entry table, confidence threshold 2, 4 outstanding prefetches, and
// up to 200 cycles of bus backlog tolerated before a prediction is shed.
func DefaultConfig() Config {
	return Config{TableSize: 256, Threshold: 2, MaxInFlight: 4, MaxBusWait: 200}
}

// Validate checks the configuration. A disabled config is always valid.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.TableSize <= 0 || c.TableSize&(c.TableSize-1) != 0 {
		return fmt.Errorf("prefetch: TableSize must be a positive power of two, got %d", c.TableSize)
	}
	if c.Threshold == 0 {
		return fmt.Errorf("prefetch: Threshold must be at least 1")
	}
	if c.MaxInFlight <= 0 {
		return fmt.Errorf("prefetch: MaxInFlight must be positive, got %d", c.MaxInFlight)
	}
	return nil
}

// Stats counts the engine's decisions. Issued = Useful + Late + predictions
// whose target was never demanded before falling out of the matching
// window; Dropped* predictions never touched the bus.
type Stats struct {
	Observed        uint64 // demand chunk accesses seen
	Predicted       uint64 // table hits above threshold
	Issued          uint64 // predictions that became bus traffic
	Useful          uint64 // issued prefetches whose target was demanded after completion
	Late            uint64 // issued prefetches whose target was demanded before completion
	DroppedResident uint64 // predictions whose ancestors were already cached
	DroppedBudget   uint64 // predictions dropped with the in-flight budget full
	DroppedBus      uint64 // predictions dropped because the bus was busy
}

// entry is one pattern-table correlation: "after stride tag came stride
// delta, conf times in a row (saturating)".
type entry struct {
	tag   int64
	delta int64
	conf  uint8
}

// pending tracks an issued prefetch for useful/late accounting.
type pending struct {
	chunk uint64
	done  uint64
}

// Prefetcher is the delta-correlation engine. Methods are not safe for
// concurrent use; each simulated machine owns its own instance (the shard
// store builds one per shard).
type Prefetcher struct {
	cfg   Config
	table []entry

	prevChunk uint64
	prevDelta int64
	havePrev  bool
	haveDelta bool

	inflight []uint64  // completion times of outstanding prefetches
	matching []pending // recently issued predictions awaiting their demand access

	stat Stats
}

// New returns an engine for cfg, or nil (the disabled no-op) when cfg is
// disabled. Callers should Validate cfg first; New trusts it.
func New(cfg Config) *Prefetcher {
	if !cfg.Enabled {
		return nil
	}
	return &Prefetcher{
		cfg:      cfg,
		table:    make([]entry, cfg.TableSize),
		inflight: make([]uint64, 0, cfg.MaxInFlight),
		matching: make([]pending, 0, 4*cfg.MaxInFlight),
	}
}

// slot hashes a delta into the pattern table.
func (p *Prefetcher) slot(delta int64) *entry {
	h := uint64(delta) * 0x9E3779B97F4A7C15
	return &p.table[h>>32&uint64(len(p.table)-1)]
}

// Observe feeds one demand chunk access at cycle now. It trains the table
// on the completed (previous delta → current delta) transition, settles
// useful/late accounting for any matching outstanding prediction, and
// returns the predicted next chunk when the table's confidence for the
// current delta has crossed the threshold. Safe (and free) on nil.
func (p *Prefetcher) Observe(now, chunk uint64) (predicted uint64, ok bool) {
	if p == nil {
		return 0, false
	}
	p.stat.Observed++

	// Settle any issued prediction this demand access fulfills.
	for i := range p.matching {
		if p.matching[i].chunk == chunk {
			if now >= p.matching[i].done {
				p.stat.Useful++
			} else {
				p.stat.Late++
			}
			p.matching = append(p.matching[:i], p.matching[i+1:]...)
			break
		}
	}

	if !p.havePrev {
		p.prevChunk, p.havePrev = chunk, true
		return 0, false
	}
	delta := int64(chunk) - int64(p.prevChunk)
	if delta == 0 {
		// Same-chunk re-access (retry loops, sibling blocks of one chunk):
		// carries no stride information and must not dilute the table.
		return 0, false
	}

	// Train: the stride that followed prevDelta turned out to be delta.
	if p.haveDelta {
		e := p.slot(p.prevDelta)
		switch {
		case e.tag == p.prevDelta && e.delta == delta:
			if e.conf < 255 {
				e.conf++
			}
		case e.conf > 0:
			e.conf--
		default:
			*e = entry{tag: p.prevDelta, delta: delta, conf: 1}
		}
	}
	p.prevChunk, p.prevDelta, p.haveDelta = chunk, delta, true

	// Predict: what stride usually follows the one we just completed?
	if e := p.slot(delta); e.tag == delta && e.conf >= p.cfg.Threshold {
		next := int64(chunk) + e.delta
		if next >= 0 {
			p.stat.Predicted++
			return uint64(next), true
		}
	}
	return 0, false
}

// InFlight returns the number of prefetches still outstanding at cycle
// now, compacting completed slots. Zero on nil.
func (p *Prefetcher) InFlight(now uint64) int {
	if p == nil {
		return 0
	}
	live := p.inflight[:0]
	for _, done := range p.inflight {
		if done > now {
			live = append(live, done)
		}
	}
	p.inflight = live
	return len(live)
}

// BudgetFull reports whether issuing another prefetch at cycle now would
// exceed MaxInFlight. Always false on nil.
func (p *Prefetcher) BudgetFull(now uint64) bool {
	return p != nil && p.InFlight(now) >= p.cfg.MaxInFlight
}

// Launched records that the prediction for chunk was issued and its
// modeled transfer completes at cycle done. No-op on nil.
func (p *Prefetcher) Launched(chunk, done uint64) {
	if p == nil {
		return
	}
	p.stat.Issued++
	p.inflight = append(p.inflight, done)
	if len(p.matching) == cap(p.matching) && cap(p.matching) > 0 {
		copy(p.matching, p.matching[1:])
		p.matching = p.matching[:len(p.matching)-1]
	}
	p.matching = append(p.matching, pending{chunk: chunk, done: done})
}

// DropResident, DropBudget and DropBus record the caller's drop decisions.
// No-ops on nil.
func (p *Prefetcher) DropResident() {
	if p != nil {
		p.stat.DroppedResident++
	}
}

// DropBudget records a prediction dropped with the in-flight budget full.
func (p *Prefetcher) DropBudget() {
	if p != nil {
		p.stat.DroppedBudget++
	}
}

// DropBus records a prediction dropped because the bus was busy.
func (p *Prefetcher) DropBus() {
	if p != nil {
		p.stat.DroppedBus++
	}
}

// MaxBusWait returns the configured bus-backlog tolerance. Zero on nil.
func (p *Prefetcher) MaxBusWait() uint64 {
	if p == nil {
		return 0
	}
	return p.cfg.MaxBusWait
}

// Stats returns a copy of the counters. Zero value on nil.
func (p *Prefetcher) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	return p.stat
}

// ResetStats zeroes the counters without forgetting learned patterns or
// outstanding prefetches, mirroring Machine.ResetStats warm-up semantics.
func (p *Prefetcher) ResetStats() {
	if p != nil {
		p.stat = Stats{}
	}
}
