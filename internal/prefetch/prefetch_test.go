package prefetch

import (
	"math/rand"
	"testing"
)

// emission is one externally visible decision the engine made, used to
// compare two runs for determinism.
type emission struct {
	at    uint64
	chunk uint64
}

// drive feeds the engine a seeded access stream (a mix of strided runs and
// random jumps, like a blended workload) through the same issue discipline
// the integrity layer uses, and records every emission. maxSeen returns
// the highest in-flight count ever observed after a launch.
func drive(t *testing.T, seed int64, cfg Config) (ems []emission, maxSeen int) {
	t.Helper()
	p := New(cfg)
	if p == nil {
		t.Fatal("New returned nil for an enabled config")
	}
	rng := rand.New(rand.NewSource(seed))
	now := uint64(0)
	chunk := uint64(rng.Intn(1 << 20))
	for i := 0; i < 20000; i++ {
		now += uint64(1 + rng.Intn(50))
		// Mostly strided runs with occasional random jumps; stride length
		// and direction change every so often.
		switch rng.Intn(10) {
		case 0:
			chunk = uint64(rng.Intn(1 << 20))
		default:
			chunk += uint64(1 + rng.Intn(3))
		}
		pred, ok := p.Observe(now, chunk)
		if !ok {
			continue
		}
		if p.BudgetFull(now) {
			p.DropBudget()
			continue
		}
		// Model a fixed-latency transfer; the real caller uses bus timing.
		p.Launched(pred, now+200)
		ems = append(ems, emission{at: now, chunk: pred})
		if n := p.InFlight(now); n > maxSeen {
			maxSeen = n
		}
	}
	return ems, maxSeen
}

// TestDeterministicEmissions pins the purity contract: the same seeded
// access stream produces the identical emission sequence, which is what
// keeps prefetch-on simulations byte-identical run to run.
func TestDeterministicEmissions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Enabled = true
	for _, seed := range []int64{1, 7, 42, 12345} {
		a, _ := drive(t, seed, cfg)
		b, _ := drive(t, seed, cfg)
		if len(a) == 0 {
			t.Fatalf("seed %d: strided stream produced no emissions", seed)
		}
		if len(a) != len(b) {
			t.Fatalf("seed %d: emission counts differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: emission %d differs: %+v vs %+v", seed, i, a[i], b[i])
			}
		}
	}
}

// TestBudgetNeverExceeded drives the engine under the caller's issue
// discipline and asserts the in-flight count never exceeds MaxInFlight,
// for several budget sizes.
func TestBudgetNeverExceeded(t *testing.T) {
	for _, budget := range []int{1, 2, 4, 8} {
		cfg := DefaultConfig()
		cfg.Enabled = true
		cfg.MaxInFlight = budget
		_, maxSeen := drive(t, 99, cfg)
		if maxSeen > budget {
			t.Fatalf("budget %d: observed %d in flight", budget, maxSeen)
		}
		if maxSeen == 0 {
			t.Fatalf("budget %d: no prefetch ever in flight", budget)
		}
	}
}

// TestStridePrediction checks the core correlation: a pure stride stream
// must start predicting chunk+stride once confidence crosses the
// threshold, and every prediction must be correct.
func TestStridePrediction(t *testing.T) {
	for _, stride := range []int64{1, 3, -2} {
		cfg := DefaultConfig()
		cfg.Enabled = true
		p := New(cfg)
		chunk := int64(1000)
		var predictions, correct int
		for i := 0; i < 100; i++ {
			chunk += stride
			pred, ok := p.Observe(uint64(i*10), uint64(chunk))
			if ok {
				predictions++
				if int64(pred) == chunk+stride {
					correct++
				}
			}
		}
		if predictions < 90 {
			t.Fatalf("stride %d: only %d predictions over 100 accesses", stride, predictions)
		}
		if correct != predictions {
			t.Fatalf("stride %d: %d of %d predictions wrong", stride, predictions-correct, predictions)
		}
	}
}

// TestSameChunkSuppressed pins the delta-0 rule: re-accessing one chunk
// (retry loops, sibling blocks) must neither train nor predict.
func TestSameChunkSuppressed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Enabled = true
	p := New(cfg)
	for i := 0; i < 50; i++ {
		if _, ok := p.Observe(uint64(i), 7); ok {
			t.Fatal("same-chunk stream produced a prediction")
		}
	}
	if got := p.Stats().Predicted; got != 0 {
		t.Fatalf("same-chunk stream recorded %d predictions", got)
	}
}

// TestUsefulLateAccounting checks the completion-time split: a demand
// access after the prefetch completes counts Useful, before counts Late.
func TestUsefulLateAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Enabled = true
	p := New(cfg)
	p.Launched(10, 100)
	p.Launched(20, 100)
	p.Observe(150, 10) // after done: useful
	p.Observe(50, 20)  // before done: late
	st := p.Stats()
	if st.Useful != 1 || st.Late != 1 {
		t.Fatalf("useful=%d late=%d, want 1/1", st.Useful, st.Late)
	}
}

// TestNilPrefetcherIsInert pins the disabled contract: every method on a
// nil engine is a no-op returning zero values.
func TestNilPrefetcherIsInert(t *testing.T) {
	var p *Prefetcher
	if _, ok := p.Observe(1, 2); ok {
		t.Fatal("nil prefetcher predicted")
	}
	if p.BudgetFull(1) || p.InFlight(1) != 0 {
		t.Fatal("nil prefetcher reported in-flight work")
	}
	p.Launched(1, 2)
	p.DropResident()
	p.DropBudget()
	p.DropBus()
	p.ResetStats()
	if p.Stats() != (Stats{}) {
		t.Fatal("nil prefetcher accumulated stats")
	}
	if New(Config{}) != nil {
		t.Fatal("New for a disabled config must return nil")
	}
}

// TestValidate covers the config gate.
func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("disabled config must validate: %v", err)
	}
	good := DefaultConfig()
	good.Enabled = true
	if err := good.Validate(); err != nil {
		t.Fatalf("default config must validate: %v", err)
	}
	for _, bad := range []Config{
		{Enabled: true, TableSize: 0, Threshold: 2, MaxInFlight: 4},
		{Enabled: true, TableSize: 100, Threshold: 2, MaxInFlight: 4},
		{Enabled: true, TableSize: 256, Threshold: 0, MaxInFlight: 4},
		{Enabled: true, TableSize: 256, Threshold: 2, MaxInFlight: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("config %+v validated", bad)
		}
	}
}
