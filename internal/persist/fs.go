package persist

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FS is the slice of filesystem behaviour the persistence layer needs,
// factored out so the chaos crash campaign and the unit tests can wrap it
// with fault injection: kill points that fail (possibly after a partial
// write) and then fail everything — a process death — and transient
// errors that succeed on retry. Production code uses OS (the real disk).
type FS interface {
	// OpenFile opens name with the given flags and permissions.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// MkdirAll creates name and any missing parents.
	MkdirAll(name string, perm os.FileMode) error
	// ReadDir lists the directory entries of name.
	ReadDir(name string) ([]fs.DirEntry, error)
	// SyncDir fsyncs the directory itself, making renames and file
	// creations durable.
	SyncDir(name string) error
}

// File is the per-file surface: sequential writes plus whole-file reads,
// which is all the WAL, segments and manifest need.
type File interface {
	Write(p []byte) (int, error)
	ReadAt(p []byte, off int64) (int, error)
	Sync() error
	Truncate(size int64) error
	Close() error
	Stat() (os.FileInfo, error)
}

// OS is the passthrough FS over the real disk.
type OS struct{}

type osFile struct{ *os.File }

// OpenFile implements FS.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Rename implements FS.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OS) MkdirAll(name string, perm os.FileMode) error { return os.MkdirAll(name, perm) }

// ReadDir implements FS.
func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// SyncDir implements FS.
func (OS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ErrKilled is the terminal error a FaultFS returns at and after its kill
// point — the moment the simulated process dies. It is permanent: the
// retry machinery never retries it, exactly as a real crash gives the
// dying process no second attempt.
var ErrKilled = errors.New("persist: killed at injected crash point")

// ErrTransient wraps injected transient I/O failures; the retry machinery
// backs off and retries these.
var ErrTransient = errors.New("persist: transient I/O fault")

// Kill stages name the commit-protocol windows a FaultFS can die in. A
// stage is inferred from the operation kind and the file it targets, so
// campaigns can aim a kill between the WAL append and the checkpoint,
// mid-segment-write, or mid-manifest-rename without knowing the store's
// internal operation schedule.
const (
	StageWALWrite       = "wal-write"       // appending a root record
	StageWALSync        = "wal-sync"        // making the append durable
	StageSegWrite       = "seg-write"       // writing a checkpoint segment
	StageSegSync        = "seg-sync"        // making a segment durable
	StageManifestWrite  = "manifest-write"  // writing MANIFEST.tmp
	StageManifestRename = "manifest-rename" // the atomic commit rename
	// StageBetween kills on the first segment operation but WITHOUT the
	// torn partial write: the crash window after the WAL intent is fully
	// durable and before a single checkpoint byte lands.
	StageBetween = "between-wal-checkpoint"
	StageAny     = "any" // any mutating operation
)

// KillRule arms a FaultFS: die at the (After+1)-th mutating operation
// matching Stage. A write-stage kill first commits a prefix of the buffer
// — the torn write a real crash leaves — before failing.
type KillRule struct {
	Stage string
	After int
}

// FaultFS wraps an FS with deterministic fault injection. It is safe for
// the single-goroutine access pattern the store guarantees; the mutex only
// protects the campaign's bookkeeping against inspection from tests.
type FaultFS struct {
	inner FS

	mu sync.Mutex

	// kill configuration and state.
	rule    KillRule
	armed   bool
	matched int
	killed  bool

	// transient-fault injection: the next Transient mutating operations
	// fail once each with ErrTransient before succeeding on retry.
	transient int

	// Ops counts mutating operations (writes, syncs, renames, removes,
	// truncates) observed so far, killed or not.
	Ops int
}

// NewFaultFS wraps inner (nil means the real disk).
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OS{}
	}
	return &FaultFS{inner: inner}
}

// Kill arms the kill rule. Stage "" means the FS never dies.
func (f *FaultFS) Kill(rule KillRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rule = rule
	f.armed = rule.Stage != ""
	f.matched = 0
}

// FailTransient makes the next n mutating operations fail once each with
// ErrTransient; a retried operation succeeds.
func (f *FaultFS) FailTransient(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.transient += n
}

// Killed reports whether the kill point fired.
func (f *FaultFS) Killed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.killed
}

// stageOf classifies a mutating operation on a file path into a kill
// stage.
func stageOf(op, name string) string {
	base := filepath.Base(name)
	switch {
	case base == walName:
		if op == "sync" {
			return StageWALSync
		}
		return StageWALWrite
	case strings.HasPrefix(base, segPrefix):
		if op == "sync" {
			return StageSegSync
		}
		return StageSegWrite
	case base == manifestName+".tmp" || base == manifestName:
		if op == "rename" {
			return StageManifestRename
		}
		return StageManifestWrite
	}
	return ""
}

// check gates one mutating operation: it returns ErrKilled permanently
// once the kill point fires, ErrTransient while transient faults are
// queued, and nil otherwise. torn reports whether a killing write should
// commit a partial prefix first.
func (f *FaultFS) check(op, name string) (torn bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.Ops++
	if f.killed {
		return false, ErrKilled
	}
	if f.armed {
		stage := stageOf(op, name)
		match := f.rule.Stage == StageAny || (stage != "" && stage == f.rule.Stage)
		torn := op == "write"
		if f.rule.Stage == StageBetween {
			match = stage == StageSegWrite
			torn = false
		}
		if match {
			if f.matched == f.rule.After {
				f.killed = true
				return torn, ErrKilled
			}
			f.matched++
		}
	}
	if f.transient > 0 {
		f.transient--
		return false, fmt.Errorf("%w (%s %s)", ErrTransient, op, filepath.Base(name))
	}
	return false, nil
}

// OpenFile implements FS. Opens are not kill points (a dying process's
// opens either happened or did not; the interesting windows are writes and
// syncs), but once killed everything fails.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f.mu.Lock()
	killed := f.killed
	f.mu.Unlock()
	if killed {
		return nil, ErrKilled
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: inner}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	if _, err := f.check("rename", newname); err != nil {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if _, err := f.check("remove", name); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(name string, perm os.FileMode) error {
	f.mu.Lock()
	killed := f.killed
	f.mu.Unlock()
	if killed {
		return ErrKilled
	}
	return f.inner.MkdirAll(name, perm)
}

// ReadDir implements FS. Reads never kill — recovery runs on a live
// process.
func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) { return f.inner.ReadDir(name) }

// SyncDir implements FS.
func (f *FaultFS) SyncDir(name string) error {
	if _, err := f.check("sync", filepath.Join(name, manifestName)); err != nil {
		return err
	}
	return f.inner.SyncDir(name)
}

// faultFile threads every mutating file operation through the owning
// FaultFS's gate.
type faultFile struct {
	fs    *FaultFS
	name  string
	inner File
}

func (f *faultFile) Write(p []byte) (int, error) {
	torn, err := f.fs.check("write", f.name)
	if err != nil {
		if torn && len(p) > 1 {
			// The dying write commits a prefix: the torn record/segment a
			// real crash leaves mid-sector.
			n, _ := f.inner.Write(p[:len(p)/2])
			return n, err
		}
		return 0, err
	}
	return f.inner.Write(p)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }

func (f *faultFile) Sync() error {
	if _, err := f.fs.check("sync", f.name); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if _, err := f.fs.check("write", f.name); err != nil {
		return err
	}
	return f.inner.Truncate(size)
}

func (f *faultFile) Close() error { return f.inner.Close() }

func (f *faultFile) Stat() (os.FileInfo, error) { return f.inner.Stat() }

// readFile loads a whole file through an FS.
func readFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, info.Size())
	n, err := f.ReadAt(buf, 0)
	if err != nil && n != len(buf) {
		return nil, err
	}
	return buf[:n], nil
}

// listSegments returns the segment file names in dir, sorted.
func listSegments(fsys FS, dir string) ([]string, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), segPrefix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
