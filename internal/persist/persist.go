// Package persist makes the verification engine's protected state durable
// and crash-consistent. A checkpoint serializes each machine's complete
// authenticated state — data chunks, interior tree chunks with every
// stored hash/MAC record (scheme i's stamp bits live inside those record
// bytes), and the secure root register — into per-shard segment files,
// committed atomically by a manifest rename and sealed by a write-ahead
// log of root transitions. Recovery replays the WAL, restores the last
// committed snapshot, re-verifies it against the sealed root with the
// engine itself, and classifies the outcome: recovered-clean,
// recovered-torn (a crash mid-checkpoint, resolved deterministically by
// rolling forward or back), or violation (on-disk tampering or a
// rollback/replay of committed state — detected, never silently accepted).
//
// Two trust layers stack: checksums on every structure give crash
// consistency (they catch torn writes and bit rot), and the engine's own
// verification walk over the restored image against the WAL-sealed root
// gives adversarial integrity — a forged image that passes every checksum
// still cannot produce the sealed root.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"

	"memverify/internal/core"
	"memverify/internal/shard"
)

// Options configures a Store.
type Options struct {
	// Dir is the on-disk directory holding the WAL, manifest and
	// segments.
	Dir string
	// FS overrides the filesystem — the chaos campaign's fault-injection
	// hook. nil means the real disk.
	FS FS
	// AnchorPath, when set, names a file in EXTERNAL trusted storage
	// anchoring the WAL tail: the store rewrites it after every WAL
	// append, and recovery refuses a directory whose history trails or
	// forks from it — closing the whole-directory-replay hole (DESIGN
	// §10) that in-directory sealing cannot. The path should live outside
	// Dir (a different failure/trust domain); a replayed-but-internally-
	// consistent directory whose anchor disagrees classifies as
	// violation.
	AnchorPath string
	// Retry bounds the exponential backoff on transient I/O failures.
	Retry RetryPolicy
	// Policy selects degradation after retry exhaustion, mirroring
	// core.Config.ViolationPolicy: "halt" (or empty) poisons the store —
	// every later Checkpoint fails fast with ErrStoreFailed — while
	// "record" counts the failure and lets the next checkpoint try again.
	Policy string
	// OnEvent, when set, fires once per externally significant protocol
	// transition with an Event* kind, the epoch it concerns and a short
	// detail string. It runs synchronously on the goroutine driving the
	// checkpoint or recovery — the flight-recorder feed.
	OnEvent func(kind string, epoch uint64, detail string)
}

// Event kinds passed to Options.OnEvent. The strings deliberately match
// the obs package's flight-recorder taxonomy so drivers can pass them
// through verbatim.
const (
	// EventIntent: the WAL intent record for a new epoch was fsynced —
	// epoch numbering has advanced even if the process now dies.
	EventIntent = "checkpoint-intent"
	// EventCommit: the manifest rename landed — the new epoch is the
	// recovery target from here on.
	EventCommit = "checkpoint-commit"
	// EventSeal: the WAL commit record was fsynced — the checkpoint is
	// fully sealed.
	EventSeal = "checkpoint-seal"
	// EventRecovery: a recovery classified; detail holds the outcome.
	EventRecovery = "recovery"
	// EventRetryExhausted: an I/O operation failed even after the
	// bounded-backoff retries.
	EventRetryExhausted = "retry-exhausted"
)

// note fires the OnEvent hook when present.
func (o Options) note(kind string, epoch uint64, detail string) {
	if o.OnEvent != nil {
		o.OnEvent(kind, epoch, detail)
	}
}

// ErrStoreFailed reports a store poisoned by an exhausted-retry I/O
// failure under the halt policy.
var ErrStoreFailed = errors.New("persist: store failed a checkpoint under the halt policy")

// Source is the state provider a checkpoint drains: one machine, or one
// machine per shard. WithMachine must run f with exclusive access to
// shard i's machine at a quiesced point (no in-flight operations).
type Source interface {
	NumShards() int
	// MachineConfig returns the PER-MACHINE configuration (after any
	// shard split) — the basis of the config fingerprint.
	MachineConfig() core.Config
	WithMachine(i int, f func(*core.Machine) error) error
}

// MachineSource adapts a single machine.
type MachineSource struct{ M *core.Machine }

// NumShards implements Source.
func (s MachineSource) NumShards() int { return 1 }

// MachineConfig implements Source.
func (s MachineSource) MachineConfig() core.Config { return s.M.Cfg }

// WithMachine implements Source.
func (s MachineSource) WithMachine(i int, f func(*core.Machine) error) error {
	if i != 0 {
		return fmt.Errorf("persist: machine source has one shard, asked for %d", i)
	}
	return f(s.M)
}

// StoreSource adapts a sharded store: WithMachine runs on the shard's
// worker goroutine after its queue has drained, so the snapshot sees a
// quiesced machine.
type StoreSource struct{ S *shard.Store }

// NumShards implements Source.
func (s StoreSource) NumShards() int { return s.S.Shards() }

// MachineConfig implements Source.
func (s StoreSource) MachineConfig() core.Config {
	var cfg core.Config
	s.S.WithShard(0, func(m *core.Machine) { cfg = m.Cfg })
	return cfg
}

// WithMachine implements Source.
func (s StoreSource) WithMachine(i int, f func(*core.Machine) error) error {
	var err error
	s.S.WithShard(i, func(m *core.Machine) { err = f(m) })
	return err
}

// Fingerprint condenses the configuration facets the on-disk format
// depends on into the 64-bit value sealed in every WAL record, segment
// and manifest: scheme, hash algorithm and record size, block and chunk
// geometry, per-machine protected size, and shard count. Cache geometry,
// latencies and workload knobs are deliberately excluded — they change
// timing, not state — so a snapshot taken under one cache configuration
// restores under another. Recovering under a different fingerprint fails
// loudly: the bytes would be reinterpreted under the wrong tree geometry.
func Fingerprint(cfg core.Config, shards int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) { binary.LittleEndian.PutUint64(b[:], v); h.Write(b[:]) }
	h.Write([]byte(cfg.Scheme))
	h.Write([]byte{0})
	h.Write([]byte(cfg.HashAlg))
	h.Write([]byte{0})
	put(uint64(cfg.HashSize))
	put(uint64(cfg.L2Block))
	put(uint64(cfg.ChunkBlocks))
	put(cfg.ProtectedBytes)
	put(uint64(shards))
	return h.Sum64()
}

// Store is the checkpoint side of the persistence layer. It is
// single-goroutine: callers serialize Checkpoint with their own workload
// barriers (a checkpoint is itself a commit point).
type Store struct {
	dir     string
	fsys    FS
	wal     *wal
	retry   *retrier
	policy  string
	onEvent func(kind string, epoch uint64, detail string)

	epoch      uint64 // last epoch this store sealed an intent for
	committed  uint64 // last epoch this store sealed a commit for
	anchorPath string // external trusted-storage anchor ("" = disabled)
	shards     int    // fixed at the first checkpoint
	fp         uint64
	failed     bool

	stats Stats
}

// Open prepares dir for checkpointing, creating it if needed. An existing
// WAL is scanned so epoch numbering continues across restarts; a torn
// final record (the signature of a crash mid-append) is truncated away
// before new appends. Open does NOT restore state — that is Recover's
// job; Open is called after recovery (or on a fresh directory).
func Open(opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OS{}
	}
	if opts.Dir == "" {
		return nil, errors.New("persist: Options.Dir is required")
	}
	if err := fsys.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: opts.Dir, fsys: fsys, policy: opts.Policy, onEvent: opts.OnEvent}
	s.retry = newRetrier(opts.Retry, &s.stats)
	if s.onEvent != nil {
		s.retry.onExhausted = func(err error) {
			s.onEvent(EventRetryExhausted, s.epoch, err.Error())
		}
	}

	scan, err := scanWAL(fsys, opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("persist: open: %w", err)
	}
	if scan.TornTail {
		if err := truncateWAL(fsys, opts.Dir, scan.TailBytes); err != nil {
			return nil, fmt.Errorf("persist: repairing torn WAL tail: %w", err)
		}
	}
	for _, rec := range scan.Records {
		if rec.Epoch > s.epoch {
			s.epoch = rec.Epoch
		}
		if rec.Type == recCommit && rec.Epoch > s.committed {
			s.committed = rec.Epoch
		}
		s.fp = rec.Fingerprint
		s.shards = int(rec.Shards)
	}
	if opts.AnchorPath != "" {
		s.anchorPath = opts.AnchorPath
		a, aerr := readAnchor(fsys, opts.AnchorPath)
		if aerr != nil {
			return nil, fmt.Errorf("persist: open: anchor: %w", aerr)
		}
		cur := anchorFromWAL(scan.Records)
		if a != nil {
			intents := map[uint64][16]byte{}
			for _, rec := range scan.Records {
				if rec.Type == recIntent {
					intents[rec.Epoch] = rec.RootDigest
				}
			}
			if err := validateAnchor(a, cur.Intent, cur.Commit, intents); err != nil {
				return nil, fmt.Errorf("persist: open: anchor: %w", err)
			}
		}
		// Enrollment on a fresh (or newly anchored) directory, and healing
		// of the one-epoch lag a crash between WAL fsync and anchor write
		// leaves behind.
		if a == nil || *a != *cur {
			if err := writeAnchor(fsys, opts.AnchorPath, cur); err != nil {
				return nil, fmt.Errorf("persist: open: anchor: %w", err)
			}
		}
	}
	w, err := openWAL(fsys, opts.Dir)
	if err != nil {
		return nil, err
	}
	s.wal = w
	return s, nil
}

// truncateWAL chops the log at off, discarding a torn tail.
func truncateWAL(fsys FS, dir string, off int64) error {
	f, err := fsys.OpenFile(filepath.Join(dir, walName), os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	err = f.Truncate(off)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close releases the WAL handle. The store must not be used afterwards.
func (s *Store) Close() error { return s.wal.Close() }

// Stats returns a copy of the counters.
func (s *Store) Stats() Stats { return s.stats }

// Epoch returns the last epoch an intent was sealed for.
func (s *Store) Epoch() uint64 { return s.epoch }

// Checkpoint drains src to a commit point and persists epoch s.Epoch()+1:
//
//  1. SaveState every shard (an implicit Flush barrier per machine).
//  2. Seal the INTENT record in the WAL (fsync).
//  3. Write one segment file per shard (fsync each). Names encode the
//     epoch, so the previous epoch's segments are never touched.
//  4. Commit: write MANIFEST.tmp, fsync, rename over MANIFEST, fsync
//     the directory.
//  5. Seal the COMMIT record in the WAL (fsync).
//  6. Garbage-collect segments of older epochs.
//
// A crash before step 4's rename leaves the previous epoch fully intact;
// a crash after it leaves the new epoch recoverable (roll-forward). The
// intent/commit pair lets recovery tell a torn checkpoint from a
// rolled-back committed one — see the WAL format comment.
//
// Transient I/O errors are retried with bounded backoff; exhaustion
// degrades per Options.Policy. An error from SaveState itself (halted
// machine, non-persistable config) aborts before anything is written.
func (s *Store) Checkpoint(src Source) (uint64, error) {
	if s.failed {
		return 0, ErrStoreFailed
	}
	start := time.Now()
	epoch, err := s.checkpoint(src)
	s.stats.CheckpointNanos += uint64(time.Since(start))
	if err != nil {
		s.stats.CheckpointFails++
		if s.policy != "record" && !errors.Is(err, ErrKilled) {
			// Halt (the default): poison the store. A kill is not a
			// store failure — the process is gone either way.
			s.failed = true
		}
		return 0, err
	}
	s.stats.Checkpoints++
	return epoch, nil
}

func (s *Store) checkpoint(src Source) (uint64, error) {
	n := src.NumShards()
	cfg := src.MachineConfig()
	fp := Fingerprint(cfg, n)
	if s.shards == 0 {
		s.shards, s.fp = n, fp
	}
	if n != s.shards || fp != s.fp {
		return 0, fmt.Errorf("persist: source fingerprint %016x (%d shards) does not match the store's %016x (%d shards)",
			fp, n, s.fp, s.shards)
	}

	imgs := make([][]byte, n)
	roots := make([][]byte, n)
	for i := 0; i < n; i++ {
		i := i
		if err := src.WithMachine(i, func(m *core.Machine) error {
			var err error
			imgs[i], roots[i], err = m.SaveState()
			return err
		}); err != nil {
			return 0, fmt.Errorf("persist: snapshot shard %d: %w", i, err)
		}
	}

	epoch := s.epoch + 1
	digest := rootDigest(epoch, roots)
	rec := walRecord{Type: recIntent, Epoch: epoch, Fingerprint: fp, Shards: uint32(n), RootDigest: digest}
	if err := s.wal.append(rec, s.retry); err != nil {
		return 0, err
	}
	s.stats.WALRecords++
	s.stats.BytesWritten += walRecordSize
	// The intent is sealed: from here on, epoch numbering has advanced
	// even if the checkpoint dies — recovery resolves the tear.
	s.epoch = epoch
	if s.anchorPath != "" {
		if err := writeAnchor(s.fsys, s.anchorPath, &anchor{Intent: epoch, Commit: s.committed, Digest: digest}); err != nil {
			return 0, fmt.Errorf("persist: anchor: %w", err)
		}
	}
	if s.onEvent != nil {
		s.onEvent(EventIntent, epoch, "WAL intent sealed")
	}

	for i := 0; i < n; i++ {
		seg := &segment{Epoch: epoch, Shard: uint32(i), Fingerprint: fp, Root: roots[i], Image: imgs[i]}
		buf := seg.encode()
		if err := s.writeFileSync(filepath.Join(s.dir, segName(epoch, i)), buf); err != nil {
			return 0, fmt.Errorf("persist: segment %d: %w", i, err)
		}
		s.stats.BytesWritten += uint64(len(buf))
	}

	man := &manifest{Epoch: epoch, Fingerprint: fp, Shards: uint32(n)}
	mbuf := man.encode()
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	if err := s.writeFileSync(tmp, mbuf); err != nil {
		return 0, fmt.Errorf("persist: manifest: %w", err)
	}
	if err := s.retry.do(func() error {
		return s.fsys.Rename(tmp, filepath.Join(s.dir, manifestName))
	}); err != nil {
		return 0, fmt.Errorf("persist: manifest commit: %w", err)
	}
	if err := s.retry.do(func() error { return s.fsys.SyncDir(s.dir) }); err != nil {
		return 0, fmt.Errorf("persist: manifest commit: %w", err)
	}
	s.stats.BytesWritten += uint64(len(mbuf))
	if s.onEvent != nil {
		s.onEvent(EventCommit, epoch, "manifest renamed")
	}

	rec.Type = recCommit
	if err := s.wal.append(rec, s.retry); err != nil {
		return 0, err
	}
	s.stats.WALRecords++
	s.stats.BytesWritten += walRecordSize
	s.committed = epoch
	if s.anchorPath != "" {
		if err := writeAnchor(s.fsys, s.anchorPath, &anchor{Intent: epoch, Commit: epoch, Digest: digest}); err != nil {
			return 0, fmt.Errorf("persist: anchor: %w", err)
		}
	}
	if s.onEvent != nil {
		s.onEvent(EventSeal, epoch, "WAL commit sealed")
	}

	s.gc(epoch)
	return epoch, nil
}

// writeFileSync creates (truncating) name with data and fsyncs it, under
// the retry policy. The whole write is retried from scratch on a
// transient failure — segments are rewritten idempotently.
func (s *Store) writeFileSync(name string, data []byte) error {
	return s.retry.do(func() error {
		f, err := s.fsys.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(data); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	})
}

// gc removes segments of epochs other than keep. Failures are ignored —
// the checkpoint is already committed and stray old segments are inert
// (recovery reads only the manifest's epoch).
func (s *Store) gc(keep uint64) {
	names, err := listSegments(s.fsys, s.dir)
	if err != nil {
		return
	}
	prefix := fmt.Sprintf("%s%06d-", segPrefix, keep)
	for _, name := range names {
		if len(name) < len(prefix) || name[:len(prefix)] != prefix {
			_ = s.fsys.Remove(filepath.Join(s.dir, name))
		}
	}
}
