package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
)

// The write-ahead log is a flat file of fixed-size sealed root records.
// Each committed epoch contributes a PAIR of records:
//
//	intent  — appended and fsynced BEFORE any segment or manifest write:
//	          "epoch E with root digest R is being checkpointed".
//	commit  — appended and fsynced AFTER the manifest rename lands:
//	          "epoch E is fully on disk".
//
// The pair closes the rollback window a single record would leave open.
// With only intent records, a crash between the WAL append and the
// checkpoint is indistinguishable from an adversary rolling the snapshot
// back one epoch — both present a WAL one epoch ahead of the manifest.
// With the pair, recovery accepts the older snapshot as a torn crash only
// when the lost epoch has no commit seal; a sealed epoch whose snapshot
// has regressed is a replay attack and classifies as a violation.
//
// Record layout (walRecordSize bytes, little-endian):
//
//	[0:4]   magic "MVWA"
//	[4]     type (1 = intent, 2 = commit)
//	[5:13]  epoch
//	[13:21] config fingerprint (scheme, hash, geometry, size, shards)
//	[21:25] shard count
//	[25:41] root digest: FNV-128 over epoch ∥ each shard's root record
//	[41:49] FNV-1a 64 checksum of bytes [0:41]
const (
	walName       = "wal.log"
	manifestName  = "MANIFEST"
	segPrefix     = "seg-"
	walRecordSize = 49

	recIntent byte = 1
	recCommit byte = 2
)

var walMagic = [4]byte{'M', 'V', 'W', 'A'}

// walRecord is one decoded sealed root record.
type walRecord struct {
	Type        byte
	Epoch       uint64
	Fingerprint uint64
	Shards      uint32
	RootDigest  [16]byte
}

// encode serializes the record, computing the trailing checksum.
func (r *walRecord) encode() []byte {
	buf := make([]byte, walRecordSize)
	copy(buf[0:4], walMagic[:])
	buf[4] = r.Type
	binary.LittleEndian.PutUint64(buf[5:13], r.Epoch)
	binary.LittleEndian.PutUint64(buf[13:21], r.Fingerprint)
	binary.LittleEndian.PutUint32(buf[21:25], r.Shards)
	copy(buf[25:41], r.RootDigest[:])
	binary.LittleEndian.PutUint64(buf[41:49], checksum64(buf[:41]))
	return buf
}

// decodeWALRecord parses one record, verifying magic and checksum.
func decodeWALRecord(buf []byte) (walRecord, error) {
	var r walRecord
	if len(buf) != walRecordSize {
		return r, fmt.Errorf("persist: WAL record is %d bytes, want %d", len(buf), walRecordSize)
	}
	if [4]byte(buf[0:4]) != walMagic {
		return r, errors.New("persist: WAL record has bad magic")
	}
	if got, want := checksum64(buf[:41]), binary.LittleEndian.Uint64(buf[41:49]); got != want {
		return r, errors.New("persist: WAL record checksum mismatch")
	}
	r.Type = buf[4]
	if r.Type != recIntent && r.Type != recCommit {
		return r, fmt.Errorf("persist: WAL record has unknown type %d", r.Type)
	}
	r.Epoch = binary.LittleEndian.Uint64(buf[5:13])
	r.Fingerprint = binary.LittleEndian.Uint64(buf[13:21])
	r.Shards = binary.LittleEndian.Uint32(buf[21:25])
	copy(r.RootDigest[:], buf[25:41])
	return r, nil
}

// rootDigest condenses an epoch's per-shard root records into the fixed
// 16-byte digest sealed in the WAL: FNV-128 over the epoch number followed
// by each shard's root bytes in shard order. Binding the epoch in blocks
// cross-epoch digest splicing even for identical roots.
func rootDigest(epoch uint64, roots [][]byte) [16]byte {
	h := fnv.New128a()
	var eb [8]byte
	binary.LittleEndian.PutUint64(eb[:], epoch)
	h.Write(eb[:])
	for _, r := range roots {
		h.Write(r)
	}
	var d [16]byte
	h.Sum(d[:0])
	return d
}

// checksum64 is the FNV-1a 64 integrity checksum used by every on-disk
// structure. It protects against corruption and torn writes, not against
// an adversary — adversarial integrity comes from re-verifying the
// restored image against the sealed root with the engine itself.
func checksum64(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p)
	return h.Sum64()
}

// Checksum64 exposes the on-disk checksum function for tooling and the
// chaos campaign's forgery leg (which recomputes a file's checksum after
// tampering to prove checksums alone are not integrity).
func Checksum64(p []byte) uint64 { return checksum64(p) }

// WALRecordSize is the fixed size of one sealed WAL record, exported for
// tooling and campaigns that truncate the log at record boundaries.
const WALRecordSize = walRecordSize

// walScan is the result of reading the log back.
type walScan struct {
	// Records holds every well-formed record in file order.
	Records []walRecord
	// TornTail is true when the file ended in a partial or
	// checksum-corrupt final record — the signature of a crash during an
	// append. The torn tail is ignored (the record never committed).
	TornTail bool
	// TailBytes is the byte offset of the valid prefix; a repair pass may
	// truncate the file here.
	TailBytes int64
}

// scanWAL reads and validates the log. A malformed record anywhere but
// the tail is NOT crash damage — appends are sequential, so a crash can
// only tear the last record — and is reported as an error the caller
// classifies as a violation (WAL tampering).
func scanWAL(fsys FS, dir string) (walScan, error) {
	var s walScan
	buf, err := readFile(fsys, filepath.Join(dir, walName))
	if err != nil {
		if os.IsNotExist(err) {
			return s, nil
		}
		return s, err
	}
	n := len(buf) / walRecordSize
	for i := 0; i < n; i++ {
		rec, err := decodeWALRecord(buf[i*walRecordSize : (i+1)*walRecordSize])
		if err != nil {
			if i == n-1 && len(buf)%walRecordSize == 0 {
				// Corrupt FINAL record: indistinguishable from a torn
				// append that happened to reach full length.
				s.TornTail = true
				s.TailBytes = int64(i * walRecordSize)
				return s, nil
			}
			return s, fmt.Errorf("persist: WAL record %d: %w", i, err)
		}
		s.Records = append(s.Records, rec)
	}
	if len(buf)%walRecordSize != 0 {
		// Trailing partial record: a torn append.
		s.TornTail = true
	}
	s.TailBytes = int64(n * walRecordSize)
	return s, nil
}

// wal manages the append side of the log.
type wal struct {
	fsys FS
	dir  string
	f    File
}

// openWAL opens (creating if needed) the log for appending.
func openWAL(fsys FS, dir string) (*wal, error) {
	f, err := fsys.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{fsys: fsys, dir: dir, f: f}, nil
}

// append writes one sealed record and makes it durable.
func (w *wal) append(rec walRecord, retry *retrier) error {
	buf := rec.encode()
	if err := retry.do(func() error {
		_, err := w.f.Write(buf)
		return err
	}); err != nil {
		return fmt.Errorf("persist: WAL append: %w", err)
	}
	if err := retry.do(w.f.Sync); err != nil {
		return fmt.Errorf("persist: WAL sync: %w", err)
	}
	return nil
}

func (w *wal) Close() error { return w.f.Close() }
