package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"memverify/internal/core"
	"memverify/internal/shard"
)

// Outcome classifies a recovery.
type Outcome string

const (
	// OutcomeFresh: no WAL and no manifest — nothing was ever persisted.
	OutcomeFresh Outcome = "fresh"
	// OutcomeClean: the last committed epoch restored and re-verified
	// bit-exactly against its sealed root.
	OutcomeClean Outcome = "recovered-clean"
	// OutcomeTorn: a crash interrupted a checkpoint; the tear was
	// resolved deterministically (roll forward to the intended epoch when
	// its segments all landed, roll back to the previous committed epoch
	// otherwise) and the resolved state re-verified against its sealed
	// root.
	OutcomeTorn Outcome = "recovered-torn"
	// OutcomeViolation: the on-disk state is inconsistent in a way no
	// crash can produce, or the restored image fails engine verification
	// against the sealed root — tampering, rollback or replay. The state
	// must not be trusted.
	OutcomeViolation Outcome = "violation"
)

// Recovery reports what recovery found and did.
type Recovery struct {
	Outcome Outcome
	// Epoch is the epoch the store was restored to (0 for fresh, or for
	// a violation where no state was restored).
	Epoch uint64
	// IntentEpoch, CommitEpoch and ManifestEpoch are the raw markers the
	// classification ran on: the highest sealed intent, the highest
	// sealed commit, and the manifest's epoch (0 = absent).
	IntentEpoch, CommitEpoch, ManifestEpoch uint64
	// RolledForward is set when a torn checkpoint was completed from its
	// surviving segments rather than rolled back.
	RolledForward bool
	// WALRepaired is set when recovery rewrote the log (truncated a torn
	// tail or dangling intent, or appended a repair commit).
	WALRepaired bool
	// Detail is a human-readable explanation, set for torn and violation
	// outcomes.
	Detail string
	// Roots holds the restored per-shard root records (nil unless the
	// outcome restored state).
	Roots [][]byte
	// Violations counts engine violations raised while re-verifying the
	// restored image against the sealed root.
	Violations int
	// Elapsed is the wall time the recovery took, including the engine
	// re-verification for RecoverMachine/RecoverStore.
	Elapsed time.Duration
}

// finish stamps the recovery's wall time and fires the OnEvent hook with
// its classification. Safe on a nil rec (hard-error paths).
func finishRecovery(opts Options, rec *Recovery, start time.Time) {
	if rec == nil {
		return
	}
	rec.Elapsed = time.Since(start)
	detail := string(rec.Outcome)
	if rec.Detail != "" {
		detail += ": " + rec.Detail
	}
	opts.note(EventRecovery, rec.Epoch, detail)
}

// errFingerprint marks the loud config-mismatch failure.
var errFingerprint = errors.New("persist: config fingerprint mismatch")

// IsFingerprintMismatch reports whether err is the loud failure for
// recovering under a different scheme/geometry than the store was written
// with.
func IsFingerprintMismatch(err error) bool { return errors.Is(err, errFingerprint) }

// RecoverMachine builds a machine from cfg and restores the last
// committed state in opts.Dir into it, re-verifying the restored image
// against the WAL-sealed root through the engine itself. The returned
// Recovery classifies what happened; on OutcomeViolation the machine is
// returned fresh (nothing restored) so the caller can inspect it, but its
// state is NOT the persisted state.
//
// A hard error (unreadable directory, fingerprint mismatch, invalid cfg)
// is returned as err with a nil machine.
func RecoverMachine(opts Options, cfg core.Config) (*core.Machine, *Recovery, error) {
	start := time.Now()
	rec, imgs, roots, err := recoverState(opts, Fingerprint(cfg, 1), 1)
	if err != nil {
		return nil, nil, err
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		return nil, nil, err
	}
	if imgs != nil {
		if err := m.RestoreState(imgs[0], roots[0]); err != nil {
			return nil, nil, err
		}
		verifyRestored(rec, m)
		rec.Roots = [][]byte{m.Root()}
	}
	finishRecovery(opts, rec, start)
	return m, rec, nil
}

// RecoverStore is RecoverMachine for a sharded store: each shard's
// segment restores into its machine on that shard's worker goroutine, and
// re-verification runs through Store.VerifyAll, so one tampered shard is
// contained — healthy shards restore and verify clean, and under the halt
// policy only the violated shard halts.
func RecoverStore(opts Options, scfg shard.Config) (*shard.Store, *Recovery, error) {
	if scfg.Shards < 1 {
		return nil, nil, fmt.Errorf("persist: need at least one shard, got %d", scfg.Shards)
	}
	start := time.Now()
	per := scfg.Machine
	per.ProtectedBytes = scfg.Machine.ProtectedBytes / uint64(scfg.Shards)
	rec, imgs, roots, err := recoverState(opts, Fingerprint(per, scfg.Shards), scfg.Shards)
	if err != nil {
		return nil, nil, err
	}
	s, err := shard.New(scfg)
	if err != nil {
		return nil, nil, err
	}
	if imgs != nil {
		for i := 0; i < scfg.Shards; i++ {
			i := i
			var rerr error
			s.WithShard(i, func(m *core.Machine) { rerr = m.RestoreState(imgs[i], roots[i]) })
			if rerr != nil {
				s.Close()
				return nil, nil, rerr
			}
		}
		before := len(s.Violations())
		verr := s.VerifyAll()
		rec.Violations = len(s.Violations()) - before
		if rec.Violations > 0 || verr != nil {
			rec.Outcome = OutcomeViolation
			rec.Detail = "restored image fails engine verification against the sealed root"
		} else {
			rec.Roots = make([][]byte, scfg.Shards)
			for i := range rec.Roots {
				i := i
				s.WithShard(i, func(m *core.Machine) { rec.Roots[i] = m.Root() })
			}
		}
	}
	finishRecovery(opts, rec, start)
	return s, rec, nil
}

// verifyRestored re-reads every protected block of a single machine
// through the verification engine — the adversarial half of recovery. The
// restored root register came from the WAL; any image that cannot
// reproduce it (stale snapshot, flipped tree node, spliced segment) fails
// here even though every file checksum passed.
func verifyRestored(rec *Recovery, m *core.Machine) {
	before := m.Sys.Stat.Violations
	bs := uint64(m.Cfg.L2Block)
	buf := make([]byte, bs)
	span := m.ProgSpan()
	var failed bool
	for off := uint64(0); off < span; off += bs {
		n := bs
		if off+n > span {
			n = span - off
		}
		if err := m.LoadBytes(off, buf[:n]); err != nil {
			failed = true // halt policy tripped; the cause is counted below
			break
		}
	}
	if !failed && m.Cfg.Speculative {
		if err := m.Barrier(); err != nil {
			failed = true
		}
	}
	rec.Violations = int(m.Sys.Stat.Violations - before)
	if rec.Violations > 0 || failed {
		rec.Outcome = OutcomeViolation
		rec.Detail = "restored image fails engine verification against the sealed root"
	}
}

// Recover runs the filesystem-level half of recovery without building any
// machine: WAL replay, torn-state resolution and checksum validation. It
// returns the classification and, for restorable outcomes, leaves the
// directory normalized (torn WAL tails truncated, roll-forwards
// committed). Most callers want RecoverMachine/RecoverStore, which add
// the engine re-verification; Recover alone is the dry-run used by tests
// and tooling.
func Recover(opts Options, cfg core.Config, shards int) (*Recovery, error) {
	if shards < 1 {
		shards = 1
	}
	start := time.Now()
	rec, _, _, err := recoverState(opts, Fingerprint(cfg, shards), shards)
	finishRecovery(opts, rec, start)
	return rec, err
}

// recoverState classifies the on-disk state and loads the epoch it
// resolves to. It returns nil images for outcomes that restore nothing
// (fresh, torn-to-empty, violation).
//
// The classification runs on three markers: I (highest sealed intent
// epoch), C (highest sealed commit epoch) and M (the manifest's epoch).
// The checkpoint protocol (intent → segments → manifest rename → commit)
// and recovery's own normalization guarantee that a pure crash history
// only ever presents I-C ∈ {0,1} and I-M ∈ {0,1} with C ≤ I; every other
// configuration is unreachable by crashes and classifies as a violation:
//
//	M == I, C == I    clean — the normal committed state.
//	M == I, C == I-1  torn — died between manifest rename and commit
//	                  seal; roll forward by appending the commit.
//	M == I-1, C == I-1
//	                  torn — died between intent seal and manifest
//	                  rename. If every epoch-I segment landed intact and
//	                  their roots reproduce the intent digest, complete
//	                  the checkpoint (roll forward); otherwise discard
//	                  the partial epoch and roll back to M.
//	M == I-1, C == I  violation — epoch I was sealed committed but the
//	                  manifest regressed: rollback of committed state.
//	M < I-1           violation — snapshot older than any crash window
//	                  can explain (stale-snapshot replay).
//	M > I             violation — snapshot ahead of the log: the WAL was
//	                  truncated to hide committed epochs.
//	C > I             violation — a commit without its intent.
//
// A torn FINAL WAL record is a crash artifact (appends are sequential)
// and is truncated; a malformed INTERIOR record cannot result from a
// crash and classifies as a violation. The commit record of an epoch must
// carry the same root digest as its intent; disagreement is tampering.
func recoverState(opts Options, expectFP uint64, expectShards int) (*Recovery, [][]byte, [][]byte, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OS{}
	}
	if opts.Dir == "" {
		return nil, nil, nil, errors.New("persist: Options.Dir is required")
	}
	rec := &Recovery{Outcome: OutcomeFresh}
	violation := func(detail string) (*Recovery, [][]byte, [][]byte, error) {
		rec.Outcome = OutcomeViolation
		rec.Detail = detail
		return rec, nil, nil, nil
	}

	// 1. Replay the WAL.
	scan, err := scanWAL(fsys, opts.Dir)
	if err != nil {
		if _, statErr := fsys.ReadDir(opts.Dir); statErr != nil {
			return rec, nil, nil, nil // no directory at all: fresh
		}
		return violation(fmt.Sprintf("WAL replay failed: %v", err))
	}
	if scan.TornTail {
		if err := truncateWAL(fsys, opts.Dir, scan.TailBytes); err != nil {
			return nil, nil, nil, fmt.Errorf("persist: truncating torn WAL tail: %w", err)
		}
		rec.WALRepaired = true
	}
	intents := map[uint64][16]byte{}
	var I, C uint64
	var commitDigests = map[uint64][16]byte{}
	for idx, r := range scan.Records {
		if r.Fingerprint != expectFP {
			return nil, nil, nil, fmt.Errorf("%w: WAL record %d sealed under %016x, recovering under %016x",
				errFingerprint, idx, r.Fingerprint, expectFP)
		}
		if int(r.Shards) != expectShards {
			return nil, nil, nil, fmt.Errorf("%w: WAL record %d sealed %d shards, recovering %d",
				errFingerprint, idx, r.Shards, expectShards)
		}
		switch r.Type {
		case recIntent:
			intents[r.Epoch] = r.RootDigest
			if r.Epoch > I {
				I = r.Epoch
			}
		case recCommit:
			commitDigests[r.Epoch] = r.RootDigest
			if r.Epoch > C {
				C = r.Epoch
			}
		}
	}
	rec.IntentEpoch, rec.CommitEpoch = I, C

	// 1b. Check the external trusted-storage anchor before classifying:
	// the classification table only sees the directory's own (internally
	// consistent) story, so a complete replayed copy passes it — the
	// anchor is what pins the directory to the history this deployment
	// actually lived. The anchor may lag by one epoch (crash between WAL
	// fsync and anchor rewrite); any trailing or forked directory is a
	// violation regardless of how clean it looks.
	useAnchor := opts.AnchorPath != ""
	var anch *anchor
	if useAnchor {
		a, aerr := readAnchor(fsys, opts.AnchorPath)
		if aerr != nil {
			return violation(fmt.Sprintf("trusted anchor unreadable: %v", aerr))
		}
		if a == nil && len(scan.Records) > 0 {
			return violation("persisted state exists but the trusted anchor is absent: cannot exclude whole-directory replay")
		}
		if a != nil {
			if err := validateAnchor(a, I, C, intents); err != nil {
				return violation(err.Error())
			}
		}
		anch = a
	}

	// 2. Read the manifest.
	var M uint64
	mbuf, err := readFile(fsys, filepath.Join(opts.Dir, manifestName))
	switch {
	case err == nil:
		man, derr := decodeManifest(mbuf)
		if derr != nil {
			// The manifest is replaced atomically; no crash leaves it
			// malformed.
			return violation(fmt.Sprintf("manifest corrupt: %v", derr))
		}
		if man.Fingerprint != expectFP || int(man.Shards) != expectShards {
			return nil, nil, nil, fmt.Errorf("%w: manifest sealed under %016x/%d shards, recovering under %016x/%d",
				errFingerprint, man.Fingerprint, man.Shards, expectFP, expectShards)
		}
		M = man.Epoch
	case os.IsNotExist(err):
		M = 0
	default:
		return nil, nil, nil, err
	}
	rec.ManifestEpoch = M

	// 3. Classify.
	if I == 0 && C == 0 {
		if M != 0 {
			return violation("snapshot present but the WAL is empty: log truncated")
		}
		return rec, nil, nil, nil // fresh
	}
	if C > I {
		return violation(fmt.Sprintf("commit sealed for epoch %d without its intent", C))
	}
	for e, d := range commitDigests {
		id, ok := intents[e]
		if !ok {
			return violation(fmt.Sprintf("commit sealed for epoch %d without its intent", e))
		}
		if id != d {
			return violation(fmt.Sprintf("epoch %d intent and commit disagree on the root digest", e))
		}
	}
	if M > I {
		return violation(fmt.Sprintf("manifest at epoch %d but the WAL ends at %d: log truncated to hide committed epochs", M, I))
	}

	target := uint64(0)
	switch {
	case M == I && C == I:
		rec.Outcome = OutcomeClean
		target = I
	case M == I && C == I-1:
		// Died after the manifest rename, before the commit seal: the
		// checkpoint is fully on disk. Complete it.
		rec.Outcome = OutcomeTorn
		rec.Detail = fmt.Sprintf("crash between manifest commit and WAL seal of epoch %d; commit repaired", I)
		target = I
		if err := appendRepairCommit(fsys, opts.Dir, I, expectFP, expectShards, intents[I]); err != nil {
			return nil, nil, nil, err
		}
		rec.WALRepaired = true
		if useAnchor {
			if err := writeAnchor(fsys, opts.AnchorPath, &anchor{Intent: I, Commit: I, Digest: intents[I]}); err != nil {
				return nil, nil, nil, fmt.Errorf("persist: anchor: %w", err)
			}
		}
	case M == I-1 && C == I-1:
		// Died between the intent seal and the manifest rename. Epoch I
		// was never committed, so both resolutions are honest; which one
		// applies is decided by what landed.
		segs, loadErr := loadSegments(fsys, opts.Dir, I, expectFP, expectShards)
		if loadErr == nil && segmentsMatch(I, segs, intents[I]) {
			rec.Outcome = OutcomeTorn
			rec.RolledForward = true
			rec.Detail = fmt.Sprintf("crash before manifest commit of epoch %d; all segments landed, rolled forward", I)
			target = I
			if err := commitManifest(fsys, opts.Dir, I, expectFP, expectShards); err != nil {
				return nil, nil, nil, err
			}
			if err := appendRepairCommit(fsys, opts.Dir, I, expectFP, expectShards, intents[I]); err != nil {
				return nil, nil, nil, err
			}
			rec.WALRepaired = true
			if useAnchor {
				if err := writeAnchor(fsys, opts.AnchorPath, &anchor{Intent: I, Commit: I, Digest: intents[I]}); err != nil {
					return nil, nil, nil, fmt.Errorf("persist: anchor: %w", err)
				}
			}
		} else {
			rec.Outcome = OutcomeTorn
			rec.Detail = fmt.Sprintf("crash during checkpoint of epoch %d; partial epoch discarded, rolled back to %d", I, M)
			target = M
			// Lower the anchor to the post-rollback history BEFORE the WAL
			// rewrite: the dangling intent is honest crash damage (it has
			// no commit seal and the anchor itself vouched for epoch I), so
			// the regression is legitimate here and nowhere else. Dying
			// between the two writes leaves the directory one epoch ahead
			// of the anchor — the accepted crash window — and the next
			// recovery redoes the rollback.
			if useAnchor {
				var keep []walRecord
				for _, r := range scan.Records {
					if r.Epoch != I {
						keep = append(keep, r)
					}
				}
				if err := writeAnchor(fsys, opts.AnchorPath, anchorFromWAL(keep)); err != nil {
					return nil, nil, nil, fmt.Errorf("persist: anchor: %w", err)
				}
			}
			// Drop the dangling intent so the log re-converges to
			// I == C == M; without this, a second crash would stack
			// dangling intents into a state indistinguishable from
			// stale-snapshot tampering.
			if err := truncateDanglingIntent(fsys, opts.Dir, I); err != nil {
				return nil, nil, nil, err
			}
			rec.WALRepaired = true
		}
	case M < I-1 || (M == I-1 && C == I):
		if C > M {
			return violation(fmt.Sprintf("epoch %d is sealed committed but the snapshot is at epoch %d: rollback/replay of committed state", C, M))
		}
		return violation(fmt.Sprintf("snapshot at epoch %d lags the WAL at %d beyond any crash window: stale-snapshot replay", M, I))
	default:
		return violation(fmt.Sprintf("unclassifiable on-disk state (intent %d, commit %d, manifest %d)", I, C, M))
	}
	rec.Epoch = target

	// Heal the anchor's one-epoch crash-window lag on the clean path (the
	// repair paths above already rewrote it).
	if useAnchor && rec.Outcome == OutcomeClean {
		if cur := anchorFromWAL(scan.Records); anch == nil || *anch != *cur {
			if err := writeAnchor(fsys, opts.AnchorPath, cur); err != nil {
				return nil, nil, nil, fmt.Errorf("persist: anchor: %w", err)
			}
		}
	}

	if target == 0 {
		// Rolled back past the first checkpoint: restorable state is the
		// initial (empty) tree, which the caller builds fresh.
		return rec, nil, nil, nil
	}

	// 4. Load and validate the target epoch's segments against the sealed
	// root digest.
	segs, err := loadSegments(fsys, opts.Dir, target, expectFP, expectShards)
	if err != nil {
		return violation(fmt.Sprintf("epoch %d: %v", target, err))
	}
	intentDigest, ok := intents[target]
	if !ok {
		return violation(fmt.Sprintf("epoch %d has no sealed intent record", target))
	}
	if !segmentsMatch(target, segs, intentDigest) {
		return violation(fmt.Sprintf("epoch %d segment roots do not reproduce the sealed root digest", target))
	}
	imgs := make([][]byte, expectShards)
	roots := make([][]byte, expectShards)
	for i, s := range segs {
		imgs[i], roots[i] = s.Image, s.Root
	}
	return rec, imgs, roots, nil
}

// loadSegments reads and checksums every shard segment of epoch e.
func loadSegments(fsys FS, dir string, e uint64, fp uint64, shards int) ([]*segment, error) {
	segs := make([]*segment, shards)
	for i := 0; i < shards; i++ {
		buf, err := readFile(fsys, filepath.Join(dir, segName(e, i)))
		if err != nil {
			return nil, fmt.Errorf("segment %d missing or unreadable: %w", i, err)
		}
		s, err := decodeSegment(buf)
		if err != nil {
			return nil, fmt.Errorf("segment %d: %w", i, err)
		}
		if s.Epoch != e || s.Shard != uint32(i) || s.Fingerprint != fp {
			return nil, fmt.Errorf("segment %d labeled epoch %d shard %d fp %016x, want epoch %d shard %d fp %016x",
				i, s.Epoch, s.Shard, s.Fingerprint, e, i, fp)
		}
		segs[i] = s
	}
	return segs, nil
}

// segmentsMatch recomputes the root digest over the segments' roots and
// compares it to the WAL's sealed digest.
func segmentsMatch(e uint64, segs []*segment, sealed [16]byte) bool {
	roots := make([][]byte, len(segs))
	for i, s := range segs {
		roots[i] = s.Root
	}
	return rootDigest(e, roots) == sealed
}

// appendRepairCommit seals the commit record recovery decided epoch e has
// earned (roll-forward repair).
func appendRepairCommit(fsys FS, dir string, e, fp uint64, shards int, digest [16]byte) error {
	w, err := openWAL(fsys, dir)
	if err != nil {
		return err
	}
	defer w.Close()
	rec := walRecord{Type: recCommit, Epoch: e, Fingerprint: fp, Shards: uint32(shards), RootDigest: digest}
	r := newRetrier(RetryPolicy{}, &Stats{})
	return w.append(rec, r)
}

// commitManifest writes and atomically installs the manifest for epoch e
// (the roll-forward completion of a torn checkpoint).
func commitManifest(fsys FS, dir string, e, fp uint64, shards int) error {
	man := &manifest{Epoch: e, Fingerprint: fp, Shards: uint32(shards)}
	buf := man.encode()
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// truncateDanglingIntent rewrites the WAL without the records of epoch e —
// the intent of a checkpoint recovery rolled back. Records are rewritten
// rather than truncated by offset because a repair commit from an earlier
// recovery may follow the dangling intent.
func truncateDanglingIntent(fsys FS, dir string, e uint64) error {
	scan, err := scanWAL(fsys, dir)
	if err != nil {
		return err
	}
	name := filepath.Join(dir, walName)
	tmp := name + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	for _, r := range scan.Records {
		if r.Epoch == e {
			continue
		}
		if _, err := f.Write(r.encode()); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, name); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}
