package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// The anchor closes the whole-directory-replay hole (DESIGN §10): the WAL
// seals roots against in-place tampering, but an adversary who restores a
// complete older COPY of the directory — WAL, manifest and segments
// together — presents a fully self-consistent history and recovery alone
// cannot tell it from the real one. The anchor is a tiny record in
// EXTERNAL trusted storage (persist.Options.AnchorPath — a TPM NVRAM
// slot, a different failure domain, an operator-controlled file) that the
// directory must stay ahead of:
//
//	I_a  highest intent epoch whose WAL append was observed
//	C_a  highest commit epoch whose WAL append was observed
//	D_a  the root digest sealed in epoch I_a's intent record
//
// The store rewrites the anchor after every WAL append, so at recovery
// the directory's (I, C) may legitimately lead the anchor by at most one
// (the process can die between the WAL fsync and the anchor write) and
// must never trail it. A replayed directory trails; a forked history
// (same epoch number, different roots) disagrees with D_a. Both classify
// as violation.
//
// File layout (anchorSize bytes, little-endian):
//
//	[0:4]   magic "MVAN"
//	[4:12]  I_a
//	[12:20] C_a
//	[20:36] D_a
//	[36:44] FNV-1a 64 checksum of bytes [0:36]
const (
	anchorSize = 44
)

var anchorMagic = [4]byte{'M', 'V', 'A', 'N'}

// anchor is the decoded trusted-storage record.
type anchor struct {
	Intent uint64
	Commit uint64
	Digest [16]byte
}

func (a *anchor) encode() []byte {
	buf := make([]byte, anchorSize)
	copy(buf[0:4], anchorMagic[:])
	binary.LittleEndian.PutUint64(buf[4:12], a.Intent)
	binary.LittleEndian.PutUint64(buf[12:20], a.Commit)
	copy(buf[20:36], a.Digest[:])
	binary.LittleEndian.PutUint64(buf[36:44], checksum64(buf[:36]))
	return buf
}

func decodeAnchor(buf []byte) (*anchor, error) {
	if len(buf) != anchorSize {
		return nil, fmt.Errorf("persist: anchor is %d bytes, want %d", len(buf), anchorSize)
	}
	if [4]byte(buf[0:4]) != anchorMagic {
		return nil, errors.New("persist: anchor has bad magic")
	}
	if got, want := checksum64(buf[:36]), binary.LittleEndian.Uint64(buf[36:44]); got != want {
		return nil, errors.New("persist: anchor checksum mismatch")
	}
	a := &anchor{
		Intent: binary.LittleEndian.Uint64(buf[4:12]),
		Commit: binary.LittleEndian.Uint64(buf[12:20]),
	}
	copy(a.Digest[:], buf[20:36])
	return a, nil
}

// readAnchor loads the anchor at path. A missing file returns (nil, nil)
// — absence is classified by the caller, not here.
func readAnchor(fsys FS, path string) (*anchor, error) {
	buf, err := readFile(fsys, path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	return decodeAnchor(buf)
}

// writeAnchor atomically replaces the anchor at path (tmp + fsync +
// rename + parent-dir sync). The anchor models trusted storage, so the
// write is not routed through the retry/fault machinery: a failure is a
// hard error.
func writeAnchor(fsys FS, path string, a *anchor) error {
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(a.encode()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// anchorFromWAL computes the anchor a directory's current WAL earns.
func anchorFromWAL(records []walRecord) *anchor {
	a := &anchor{}
	for _, r := range records {
		switch r.Type {
		case recIntent:
			if r.Epoch >= a.Intent {
				a.Intent = r.Epoch
				a.Digest = r.RootDigest
			}
		case recCommit:
			if r.Epoch > a.Commit {
				a.Commit = r.Epoch
			}
		}
	}
	return a
}

// validateAnchor checks the directory's WAL markers against the trusted
// anchor. I and C are the scanned max intent/commit epochs; intents maps
// intent epoch → sealed digest. The anchor may LAG the directory by one
// epoch on each marker (the crash window between a WAL fsync and the
// anchor rewrite) but the directory must never trail the anchor, and the
// anchored intent epoch's digest must match — a trailing or disagreeing
// directory is a replayed or forked history.
func validateAnchor(a *anchor, I, C uint64, intents map[uint64][16]byte) error {
	switch {
	case I < a.Intent:
		return fmt.Errorf("directory intent epoch %d trails the trusted anchor at %d: whole-directory replay", I, a.Intent)
	case I > a.Intent+1:
		return fmt.Errorf("directory intent epoch %d leads the trusted anchor at %d beyond the one-epoch crash window", I, a.Intent)
	case C < a.Commit:
		return fmt.Errorf("directory commit epoch %d trails the trusted anchor at %d: whole-directory replay", C, a.Commit)
	case C > a.Commit+1:
		return fmt.Errorf("directory commit epoch %d leads the trusted anchor at %d beyond the one-epoch crash window", C, a.Commit)
	}
	if a.Intent > 0 {
		d, ok := intents[a.Intent]
		if !ok {
			return fmt.Errorf("trusted anchor seals intent epoch %d but the WAL has no such intent: forked or replayed history", a.Intent)
		}
		if d != a.Digest {
			return fmt.Errorf("intent epoch %d root digest disagrees with the trusted anchor: forked history", a.Intent)
		}
	}
	return nil
}
