package persist

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"memverify/internal/core"
)

// anchorPaths returns a store dir and an anchor path in a SEPARATE
// directory — the anchor models external trusted storage, so the replay
// tests can restore the whole store directory without touching it.
func anchorPaths(t *testing.T) (dir, anchorPath string) {
	t.Helper()
	return t.TempDir(), filepath.Join(t.TempDir(), "anchor")
}

// snapshotDir copies every file in dir into a map — the whole-directory
// stash the replay attack restores.
func snapshotDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = buf
	}
	return out
}

// restoreDir wipes dir and reinstalls the stash — a byte-exact replay of
// the older directory, WAL included.
func restoreDir(t *testing.T, dir string, stash map[string][]byte) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
			t.Fatal(err)
		}
	}
	for name, buf := range stash {
		if err := os.WriteFile(filepath.Join(dir, name), buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// anchoredEpochs runs n checkpoint rounds in dir with the anchor enabled
// and returns the machine.
func anchoredEpochs(t *testing.T, dir, anchorPath string, cfg core.Config, seed int64, n int) *core.Machine {
	t.Helper()
	m := newMachine(t, cfg)
	rng := rand.New(rand.NewSource(seed))
	st := openStore(t, Options{Dir: dir, AnchorPath: anchorPath, Retry: fastRetry})
	for i := 0; i < n; i++ {
		writeN(t, m, rng, 16)
		if _, err := st.Checkpoint(MachineSource{m}); err != nil {
			t.Fatalf("checkpoint %d: %v", i+1, err)
		}
	}
	return m
}

func TestAnchorCleanRoundtrip(t *testing.T) {
	cfg := testConfig(core.SchemeCached, "full")
	dir, anchorPath := anchorPaths(t)
	m := anchoredEpochs(t, dir, anchorPath, cfg, 7, 2)

	r, rec, err := RecoverMachine(Options{Dir: dir, AnchorPath: anchorPath}, cfg)
	if err != nil {
		t.Fatalf("RecoverMachine: %v", err)
	}
	if rec.Outcome != OutcomeClean || rec.Epoch != 2 {
		t.Fatalf("outcome %s epoch %d (%s), want clean epoch 2", rec.Outcome, rec.Epoch, rec.Detail)
	}
	if !bytes.Equal(r.Root(), m.Root()) {
		t.Fatal("recovered root differs")
	}
	// Continuing through Open with the same anchor must keep working.
	st := openStore(t, Options{Dir: dir, AnchorPath: anchorPath, Retry: fastRetry})
	writeN(t, r, rand.New(rand.NewSource(8)), 8)
	if _, err := st.Checkpoint(MachineSource{r}); err != nil {
		t.Fatalf("post-recovery checkpoint: %v", err)
	}
}

// TestAnchorDetectsWholeDirectoryReplay is the DESIGN §10 hole, closed:
// a byte-exact copy of the epoch-1 directory (WAL and all) is internally
// consistent and recovers CLEAN without the anchor — with the anchor it
// must classify as violation.
func TestAnchorDetectsWholeDirectoryReplay(t *testing.T) {
	cfg := testConfig(core.SchemeCached, "full")
	dir, anchorPath := anchorPaths(t)

	m := newMachine(t, cfg)
	rng := rand.New(rand.NewSource(11))
	st := openStore(t, Options{Dir: dir, AnchorPath: anchorPath, Retry: fastRetry})
	writeN(t, m, rng, 16)
	if _, err := st.Checkpoint(MachineSource{m}); err != nil {
		t.Fatal(err)
	}
	stash := snapshotDir(t, dir)
	writeN(t, m, rng, 16)
	if _, err := st.Checkpoint(MachineSource{m}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	restoreDir(t, dir, stash)

	// Without the anchor the replay is undetectable — the documented hole.
	_, recNo, err := RecoverMachine(Options{Dir: dir}, cfg)
	if err != nil {
		t.Fatalf("RecoverMachine without anchor: %v", err)
	}
	if recNo.Outcome != OutcomeClean || recNo.Epoch != 1 {
		t.Fatalf("replayed dir without anchor: %s epoch %d, want clean epoch 1 (the hole this test documents)",
			recNo.Outcome, recNo.Epoch)
	}

	// With the anchor it is a violation, and nothing is restored.
	_, rec, err := RecoverMachine(Options{Dir: dir, AnchorPath: anchorPath}, cfg)
	if err != nil {
		t.Fatalf("RecoverMachine with anchor: %v", err)
	}
	if rec.Outcome != OutcomeViolation {
		t.Fatalf("replayed dir with anchor: outcome %s (%s), want violation", rec.Outcome, rec.Detail)
	}

	// Open must refuse the replayed directory too — the daemon restart
	// path cannot silently re-bless it.
	if _, err := Open(Options{Dir: dir, AnchorPath: anchorPath, Retry: fastRetry}); err == nil {
		t.Fatal("Open accepted a replayed directory against the anchor")
	}
}

// TestAnchorDetectsWipedDirectory: deleting the whole directory (restart
// from scratch) while the anchor says committed epochs exist is a replay
// to epoch 0.
func TestAnchorDetectsWipedDirectory(t *testing.T) {
	cfg := testConfig(core.SchemeCached, "full")
	dir, anchorPath := anchorPaths(t)
	anchoredEpochs(t, dir, anchorPath, cfg, 13, 1)
	restoreDir(t, dir, map[string][]byte{})

	_, rec, err := RecoverMachine(Options{Dir: dir, AnchorPath: anchorPath}, cfg)
	if err != nil {
		t.Fatalf("RecoverMachine: %v", err)
	}
	if rec.Outcome != OutcomeViolation {
		t.Fatalf("wiped dir: outcome %s (%s), want violation", rec.Outcome, rec.Detail)
	}
}

// TestAnchorAbsentWithState: state on disk but no anchor file means the
// trusted side cannot vouch for the history — violation, not silent
// enrollment, on the recovery path.
func TestAnchorAbsentWithState(t *testing.T) {
	cfg := testConfig(core.SchemeCached, "full")
	dir, anchorPath := anchorPaths(t)
	anchoredEpochs(t, dir, anchorPath, cfg, 17, 1)
	if err := os.Remove(anchorPath); err != nil {
		t.Fatal(err)
	}
	_, rec, err := RecoverMachine(Options{Dir: dir, AnchorPath: anchorPath}, cfg)
	if err != nil {
		t.Fatalf("RecoverMachine: %v", err)
	}
	if rec.Outcome != OutcomeViolation {
		t.Fatalf("absent anchor: outcome %s (%s), want violation", rec.Outcome, rec.Detail)
	}
}

// TestAnchorCorrupt: an unreadable anchor is a violation — trusted
// storage disagreeing with itself is never ignored.
func TestAnchorCorrupt(t *testing.T) {
	cfg := testConfig(core.SchemeCached, "full")
	dir, anchorPath := anchorPaths(t)
	anchoredEpochs(t, dir, anchorPath, cfg, 19, 1)
	if err := os.WriteFile(anchorPath, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := RecoverMachine(Options{Dir: dir, AnchorPath: anchorPath}, cfg)
	if err != nil {
		t.Fatalf("RecoverMachine: %v", err)
	}
	if rec.Outcome != OutcomeViolation {
		t.Fatalf("corrupt anchor: outcome %s (%s), want violation", rec.Outcome, rec.Detail)
	}
}

// TestAnchorLagWindowAccepted: the process can die between a WAL fsync
// and the anchor rewrite, leaving the directory one epoch ahead of the
// anchor. That window is honest and must recover clean (and heal the
// anchor).
func TestAnchorLagWindowAccepted(t *testing.T) {
	cfg := testConfig(core.SchemeCached, "full")
	dir, anchorPath := anchorPaths(t)

	m := newMachine(t, cfg)
	rng := rand.New(rand.NewSource(23))
	st := openStore(t, Options{Dir: dir, AnchorPath: anchorPath, Retry: fastRetry})
	writeN(t, m, rng, 16)
	if _, err := st.Checkpoint(MachineSource{m}); err != nil {
		t.Fatal(err)
	}
	epoch1Anchor, err := os.ReadFile(anchorPath)
	if err != nil {
		t.Fatal(err)
	}
	writeN(t, m, rng, 16)
	if _, err := st.Checkpoint(MachineSource{m}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Roll the anchor back one epoch — the crash-window state.
	if err := os.WriteFile(anchorPath, epoch1Anchor, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := RecoverMachine(Options{Dir: dir, AnchorPath: anchorPath}, cfg)
	if err != nil {
		t.Fatalf("RecoverMachine: %v", err)
	}
	if rec.Outcome != OutcomeClean || rec.Epoch != 2 {
		t.Fatalf("lagging anchor: outcome %s epoch %d (%s), want clean epoch 2", rec.Outcome, rec.Epoch, rec.Detail)
	}
	// Healed: a second recovery must see anchor == directory.
	a, err := readAnchor(OS{}, anchorPath)
	if err != nil || a == nil {
		t.Fatalf("anchor after heal: %v / %v", a, err)
	}
	if a.Intent != 2 || a.Commit != 2 {
		t.Fatalf("anchor not healed: intent %d commit %d, want 2/2", a.Intent, a.Commit)
	}
}

// TestAnchorDetectsForkedHistory: a directory with the SAME epoch
// numbers but different contents (a parallel universe built from a
// different write history) disagrees with the anchored root digest.
func TestAnchorDetectsForkedHistory(t *testing.T) {
	cfg := testConfig(core.SchemeCached, "full")
	dir, anchorPath := anchorPaths(t)
	anchoredEpochs(t, dir, anchorPath, cfg, 29, 1)

	// Build the fork in a second directory (no anchor), same epoch count.
	forkDir := t.TempDir()
	fm := newMachine(t, cfg)
	fst := openStore(t, Options{Dir: forkDir, Retry: fastRetry})
	writeN(t, fm, rand.New(rand.NewSource(31)), 16)
	if _, err := fst.Checkpoint(MachineSource{fm}); err != nil {
		t.Fatal(err)
	}
	fst.Close()
	restoreDir(t, dir, snapshotDir(t, forkDir))

	_, rec, err := RecoverMachine(Options{Dir: dir, AnchorPath: anchorPath}, cfg)
	if err != nil {
		t.Fatalf("RecoverMachine: %v", err)
	}
	if rec.Outcome != OutcomeViolation {
		t.Fatalf("forked history: outcome %s (%s), want violation", rec.Outcome, rec.Detail)
	}
}

// TestAnchorSurvivesRollbackRepair: a torn checkpoint rolled back
// rewrites the WAL (truncateDanglingIntent); the anchor must follow the
// repair so the NEXT recovery still agrees — and the post-repair
// directory must not read as a replay.
func TestAnchorSurvivesRollbackRepair(t *testing.T) {
	cfg := testConfig(core.SchemeCached, "full")
	dir, anchorPath := anchorPaths(t)

	m := newMachine(t, cfg)
	rng := rand.New(rand.NewSource(37))
	ffs := NewFaultFS(nil)
	st := openStore(t, Options{Dir: dir, FS: ffs, AnchorPath: anchorPath, Retry: fastRetry})
	writeN(t, m, rng, 16)
	if _, err := st.Checkpoint(MachineSource{m}); err != nil {
		t.Fatal(err)
	}
	ffs.Kill(KillRule{Stage: StageBetween})
	writeN(t, m, rng, 16)
	if _, err := st.Checkpoint(MachineSource{m}); err == nil {
		t.Fatal("checkpoint survived kill")
	}

	_, rec1, err := RecoverMachine(Options{Dir: dir, AnchorPath: anchorPath}, cfg)
	if err != nil {
		t.Fatalf("first recovery: %v", err)
	}
	if rec1.Outcome != OutcomeTorn || rec1.Epoch != 1 {
		t.Fatalf("first recovery: %s epoch %d (%s), want torn epoch 1", rec1.Outcome, rec1.Epoch, rec1.Detail)
	}
	_, rec2, err := RecoverMachine(Options{Dir: dir, AnchorPath: anchorPath}, cfg)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if rec2.Outcome != OutcomeClean || rec2.Epoch != 1 {
		t.Fatalf("second recovery: %s epoch %d (%s), want clean epoch 1", rec2.Outcome, rec2.Epoch, rec2.Detail)
	}
}

func TestAnchorEncodeDecode(t *testing.T) {
	a := &anchor{Intent: 12, Commit: 11}
	for i := range a.Digest {
		a.Digest[i] = byte(i * 3)
	}
	got, err := decodeAnchor(a.encode())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *a {
		t.Fatalf("roundtrip: %+v != %+v", got, a)
	}
	buf := a.encode()
	buf[25] ^= 1
	if _, err := decodeAnchor(buf); err == nil {
		t.Fatal("corrupt anchor decoded")
	}
}
