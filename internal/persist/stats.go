package persist

import (
	"errors"
	"fmt"
	"time"

	"memverify/internal/telemetry"
)

// RetryPolicy bounds the exponential backoff applied to transient
// persistence I/O failures.
type RetryPolicy struct {
	// Attempts is the total number of tries per operation (>= 1). 0
	// selects the default of 4.
	Attempts int
	// BaseDelay is the sleep before the first retry; each subsequent
	// retry doubles it. 0 selects 1ms. Campaigns set this to a nanosecond
	// so a 200-injection run doesn't sleep its way through CI.
	BaseDelay time.Duration
	// MaxDelay caps the doubled delay. 0 selects 100ms.
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	return p
}

// Stats counts the persistence layer's activity. All fields are
// monotonic; Fill publishes them under the persist.* namespace.
type Stats struct {
	Checkpoints     uint64 // completed checkpoints
	CheckpointFails uint64 // checkpoints abandoned on error
	BytesWritten    uint64 // segment + manifest + WAL payload bytes
	WALRecords      uint64 // sealed records appended (intent + commit)
	Retries         uint64 // individual I/O retries after transient errors
	RetryExhausted  uint64 // operations that failed even after retrying
	Recoveries      uint64 // recovery attempts
	RecoveredClean  uint64 // outcome: recovered-clean
	RecoveredTorn   uint64 // outcome: recovered-torn
	Violations      uint64 // outcome: violation
	CheckpointNanos uint64 // wall time inside Checkpoint
	RecoveryNanos   uint64 // wall time inside Recover
}

// Fill publishes the counters into a telemetry registry under persist.*.
func (s *Stats) Fill(reg *telemetry.Registry) {
	reg.Add("persist.checkpoints", s.Checkpoints)
	reg.Add("persist.checkpoint_fails", s.CheckpointFails)
	reg.Add("persist.bytes_written", s.BytesWritten)
	reg.Add("persist.wal_records", s.WALRecords)
	reg.Add("persist.retries", s.Retries)
	reg.Add("persist.retry_exhausted", s.RetryExhausted)
	reg.Add("persist.recoveries", s.Recoveries)
	reg.Add("persist.recovered_clean", s.RecoveredClean)
	reg.Add("persist.recovered_torn", s.RecoveredTorn)
	reg.Add("persist.violations", s.Violations)
	reg.Add("persist.checkpoint_nanos", s.CheckpointNanos)
	reg.Add("persist.recovery_nanos", s.RecoveryNanos)
}

// NoteRecovery folds one recovery's classification and wall time into
// the counters — drivers call it on the Stats block they publish so
// recovery latency shows up as persist.recovery_nanos over
// persist.recoveries.
func (s *Stats) NoteRecovery(rec *Recovery) {
	if rec == nil {
		return
	}
	s.Recoveries++
	s.RecoveryNanos += uint64(rec.Elapsed)
	switch rec.Outcome {
	case OutcomeClean:
		s.RecoveredClean++
	case OutcomeTorn:
		s.RecoveredTorn++
	case OutcomeViolation:
		s.Violations++
	}
}

// retrier applies the policy to one operation at a time, charging retries
// to the shared stats block.
type retrier struct {
	policy RetryPolicy
	stats  *Stats
	sleep  func(time.Duration) // swapped out by tests
	// onExhausted fires after an operation burned every attempt.
	onExhausted func(error)
}

func newRetrier(policy RetryPolicy, stats *Stats) *retrier {
	return &retrier{policy: policy.withDefaults(), stats: stats, sleep: time.Sleep}
}

// do runs op, retrying transient failures with bounded exponential
// backoff. ErrKilled is never retried: it models the process dying, and a
// dead process does not get a second attempt. The final error is returned
// unwrapped-compatible (errors.Is sees the cause) once attempts are
// exhausted.
func (r *retrier) do(op func() error) error {
	delay := r.policy.BaseDelay
	var err error
	for attempt := 0; attempt < r.policy.Attempts; attempt++ {
		if attempt > 0 {
			r.stats.Retries++
			r.sleep(delay)
			delay *= 2
			if delay > r.policy.MaxDelay {
				delay = r.policy.MaxDelay
			}
		}
		if err = op(); err == nil {
			return nil
		}
		if errors.Is(err, ErrKilled) {
			return err
		}
	}
	r.stats.RetryExhausted++
	if r.onExhausted != nil {
		r.onExhausted(err)
	}
	return fmt.Errorf("persist: %d attempts exhausted: %w", r.policy.Attempts, err)
}
