package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Segment files hold one shard's complete protected-state image for one
// epoch: the data chunks AND the interior tree chunks (every stored
// hash/MAC record, including scheme i's stamped records), plus the shard's
// root record. Names encode epoch and shard (seg-%06d-%03d.dat), so a
// checkpoint never overwrites the previous epoch's segments — the commit
// point is the manifest rename, and old segments are garbage-collected
// only after the commit record is sealed.
//
// Layout (little-endian):
//
//	[0:4]    magic "MVSG"
//	[4:12]   epoch
//	[12:16]  shard index
//	[16:24]  config fingerprint
//	[24:28]  root length
//	[...]    root bytes
//	[...:+8] image length
//	[...]    image bytes
//	[...:+8] FNV-1a 64 checksum of everything above
var segMagic = [4]byte{'M', 'V', 'S', 'G'}

// segment is one decoded segment file.
type segment struct {
	Epoch       uint64
	Shard       uint32
	Fingerprint uint64
	Root        []byte
	Image       []byte
}

func segName(epoch uint64, shard int) string {
	return fmt.Sprintf("%s%06d-%03d.dat", segPrefix, epoch, shard)
}

func (s *segment) encode() []byte {
	n := 4 + 8 + 4 + 8 + 4 + len(s.Root) + 8 + len(s.Image) + 8
	buf := make([]byte, 0, n)
	buf = append(buf, segMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, s.Epoch)
	buf = binary.LittleEndian.AppendUint32(buf, s.Shard)
	buf = binary.LittleEndian.AppendUint64(buf, s.Fingerprint)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Root)))
	buf = append(buf, s.Root...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.Image)))
	buf = append(buf, s.Image...)
	buf = binary.LittleEndian.AppendUint64(buf, checksum64(buf))
	return buf
}

// decodeSegment parses and checksums a segment file. Any malformation —
// torn write, flipped byte, truncation — is one error class here; the
// recovery layer decides whether that means "torn crash" or "tampering"
// from the WAL context.
func decodeSegment(buf []byte) (*segment, error) {
	const fixed = 4 + 8 + 4 + 8 + 4
	if len(buf) < fixed+8+8 {
		return nil, errors.New("persist: segment truncated")
	}
	if [4]byte(buf[0:4]) != segMagic {
		return nil, errors.New("persist: segment has bad magic")
	}
	body, sum := buf[:len(buf)-8], binary.LittleEndian.Uint64(buf[len(buf)-8:])
	if checksum64(body) != sum {
		return nil, errors.New("persist: segment checksum mismatch")
	}
	s := &segment{
		Epoch:       binary.LittleEndian.Uint64(buf[4:12]),
		Shard:       binary.LittleEndian.Uint32(buf[12:16]),
		Fingerprint: binary.LittleEndian.Uint64(buf[16:24]),
	}
	rl := int(binary.LittleEndian.Uint32(buf[24:28]))
	if fixed+rl+8 > len(body) {
		return nil, errors.New("persist: segment root length out of range")
	}
	s.Root = buf[fixed : fixed+rl]
	il := binary.LittleEndian.Uint64(buf[fixed+rl : fixed+rl+8])
	if uint64(fixed+rl+8)+il != uint64(len(body)) {
		return nil, errors.New("persist: segment image length out of range")
	}
	s.Image = buf[fixed+rl+8 : len(buf)-8]
	return s, nil
}

// The manifest is the checkpoint's commit point: a tiny fixed-size file
// naming the current epoch, replaced atomically (write tmp, fsync, rename,
// fsync dir). Whichever manifest the rename left in place determines which
// epoch's segments are live.
//
// Layout: magic "MVMF", epoch u64, fingerprint u64, shard count u32,
// checksum u64.
var manifestMagic = [4]byte{'M', 'V', 'M', 'F'}

const manifestSize = 4 + 8 + 8 + 4 + 8

type manifest struct {
	Epoch       uint64
	Fingerprint uint64
	Shards      uint32
}

func (m *manifest) encode() []byte {
	buf := make([]byte, 0, manifestSize)
	buf = append(buf, manifestMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, m.Fingerprint)
	buf = binary.LittleEndian.AppendUint32(buf, m.Shards)
	buf = binary.LittleEndian.AppendUint64(buf, checksum64(buf))
	return buf
}

func decodeManifest(buf []byte) (*manifest, error) {
	if len(buf) != manifestSize {
		return nil, fmt.Errorf("persist: manifest is %d bytes, want %d", len(buf), manifestSize)
	}
	if [4]byte(buf[0:4]) != manifestMagic {
		return nil, errors.New("persist: manifest has bad magic")
	}
	if checksum64(buf[:manifestSize-8]) != binary.LittleEndian.Uint64(buf[manifestSize-8:]) {
		return nil, errors.New("persist: manifest checksum mismatch")
	}
	return &manifest{
		Epoch:       binary.LittleEndian.Uint64(buf[4:12]),
		Fingerprint: binary.LittleEndian.Uint64(buf[12:20]),
		Shards:      binary.LittleEndian.Uint32(buf[20:24]),
	}, nil
}
