package persist

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"memverify/internal/core"
	"memverify/internal/shard"
	"memverify/internal/trace"
)

// testConfig builds a small functional machine configuration.
func testConfig(scheme core.Scheme, hashMode string) core.Config {
	cfg := core.DefaultConfig()
	cfg.Scheme = scheme
	cfg.Functional = true
	cfg.HashAlg = "fnv128"
	cfg.HashMode = hashMode
	cfg.ViolationPolicy = "record"
	cfg.ProtectedBytes = 16 << 10
	cfg.L2Size = 8 << 10
	cfg.Benchmark = trace.Uniform("persist", cfg.ProtectedBytes/2)
	cfg.Benchmark.CodeSet = 4 << 10
	if scheme == core.SchemeMulti || scheme == core.SchemeIncr {
		cfg.ChunkBlocks = 2
	}
	return cfg
}

// fastRetry keeps test backoff sleeps negligible.
var fastRetry = RetryPolicy{Attempts: 3, BaseDelay: 1, MaxDelay: 1}

// writeN performs n deterministic random writes against m.
func writeN(t *testing.T, m *core.Machine, rng *rand.Rand, n int) {
	t.Helper()
	span := m.ProgSpan()
	buf := make([]byte, 64)
	for i := 0; i < n; i++ {
		rng.Read(buf)
		off := (rng.Uint64() % (span - 64)) &^ 7
		if err := m.StoreBytes(off, buf); err != nil {
			t.Fatalf("store: %v", err)
		}
	}
}

func newMachine(t *testing.T, cfg core.Config) *core.Machine {
	t.Helper()
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m
}

func openStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestCheckpointRecoverRoundtrip(t *testing.T) {
	for _, scheme := range []core.Scheme{core.SchemeNaive, core.SchemeCached, core.SchemeMulti, core.SchemeIncr} {
		t.Run(string(scheme), func(t *testing.T) {
			cfg := testConfig(scheme, "full")
			dir := t.TempDir()
			m := newMachine(t, cfg)
			rng := rand.New(rand.NewSource(7))
			writeN(t, m, rng, 48)

			st := openStore(t, Options{Dir: dir, Retry: fastRetry})
			epoch, err := st.Checkpoint(MachineSource{m})
			if err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			if epoch != 1 {
				t.Fatalf("epoch = %d, want 1", epoch)
			}
			wantRoot := m.Root()

			// Read back the whole region for the bytes comparison.
			want := make([]byte, m.ProgSpan())
			if err := m.LoadBytes(0, want); err != nil {
				t.Fatalf("reference read: %v", err)
			}

			r, rec, err := RecoverMachine(Options{Dir: dir}, cfg)
			if err != nil {
				t.Fatalf("RecoverMachine: %v", err)
			}
			if rec.Outcome != OutcomeClean {
				t.Fatalf("outcome = %s (%s), want clean", rec.Outcome, rec.Detail)
			}
			if rec.Epoch != 1 {
				t.Fatalf("recovered epoch = %d, want 1", rec.Epoch)
			}
			if !bytes.Equal(r.Root(), wantRoot) {
				t.Fatalf("recovered root %x != checkpointed root %x", r.Root(), wantRoot)
			}
			got := make([]byte, r.ProgSpan())
			if err := r.LoadBytes(0, got); err != nil {
				t.Fatalf("recovered read: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("recovered data differs from checkpointed data")
			}
		})
	}
}

func TestCheckpointRecoverStore(t *testing.T) {
	scfg := shard.Config{Machine: testConfig(core.SchemeCached, "full"), Shards: 4}
	scfg.Machine.ProtectedBytes = 64 << 10
	dir := t.TempDir()

	s, err := shard.New(scfg)
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	buf := make([]byte, 64)
	for i := 0; i < 128; i++ {
		rng.Read(buf)
		off := rng.Uint64() % (s.Span() - 64)
		if err := s.StoreBytes(off, buf); err != nil {
			t.Fatalf("store: %v", err)
		}
	}
	st := openStore(t, Options{Dir: dir, Retry: fastRetry})
	if _, err := st.Checkpoint(StoreSource{s}); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	wantRoots := make([][]byte, s.Shards())
	for i := range wantRoots {
		i := i
		s.WithShard(i, func(m *core.Machine) { wantRoots[i] = m.Root() })
	}
	want := make([]byte, s.Span())
	if err := s.LoadBytes(0, want); err != nil {
		t.Fatalf("reference read: %v", err)
	}
	s.Close()

	r, rec, err := RecoverStore(Options{Dir: dir}, scfg)
	if err != nil {
		t.Fatalf("RecoverStore: %v", err)
	}
	defer r.Close()
	if rec.Outcome != OutcomeClean {
		t.Fatalf("outcome = %s (%s), want clean", rec.Outcome, rec.Detail)
	}
	for i, want := range wantRoots {
		if !bytes.Equal(rec.Roots[i], want) {
			t.Fatalf("shard %d root mismatch", i)
		}
	}
	got := make([]byte, r.Span())
	if err := r.LoadBytes(0, got); err != nil {
		t.Fatalf("recovered read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered store data differs")
	}
}

// checkpointEpochs runs rounds of write→checkpoint, returning the root
// sealed at each epoch (index 0 = epoch 1).
func checkpointEpochs(t *testing.T, dir string, cfg core.Config, rounds int) ([][]byte, *core.Machine) {
	t.Helper()
	m := newMachine(t, cfg)
	st := openStore(t, Options{Dir: dir, Retry: fastRetry})
	rng := rand.New(rand.NewSource(11))
	var roots [][]byte
	for i := 0; i < rounds; i++ {
		writeN(t, m, rng, 24)
		if _, err := st.Checkpoint(MachineSource{m}); err != nil {
			t.Fatalf("checkpoint %d: %v", i+1, err)
		}
		roots = append(roots, m.Root())
	}
	return roots, m
}

func TestRecoveryEdgeCases(t *testing.T) {
	cfg := testConfig(core.SchemeCached, "full")

	type tc struct {
		name    string
		prep    func(t *testing.T, dir string) // after 2 committed epochs
		outcome Outcome
		epoch   uint64
	}
	cases := []tc{
		{
			name:    "clean",
			prep:    func(t *testing.T, dir string) {},
			outcome: OutcomeClean,
			epoch:   2,
		},
		{
			name: "torn-partial-final-record",
			prep: func(t *testing.T, dir string) {
				// A torn append: half a record of garbage at the tail.
				f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				f.Write(make([]byte, walRecordSize/2))
				f.Close()
			},
			outcome: OutcomeClean, // tail discarded; committed state intact
			epoch:   2,
		},
		{
			name: "checksum-corrupt-final-record",
			prep: func(t *testing.T, dir string) {
				name := filepath.Join(dir, walName)
				buf, err := os.ReadFile(name)
				if err != nil {
					t.Fatal(err)
				}
				buf[len(buf)-1] ^= 0xff // flip inside the final checksum
				os.WriteFile(name, buf, 0o644)
			},
			// The final record is the epoch-2 commit; with it gone the
			// state reads as "died before sealing the commit" and rolls
			// forward.
			outcome: OutcomeTorn,
			epoch:   2,
		},
		{
			name: "checksum-corrupt-interior-record",
			prep: func(t *testing.T, dir string) {
				name := filepath.Join(dir, walName)
				buf, err := os.ReadFile(name)
				if err != nil {
					t.Fatal(err)
				}
				buf[walRecordSize/2] ^= 0xff // first record's payload
				os.WriteFile(name, buf, 0o644)
			},
			outcome: OutcomeViolation,
		},
		{
			name: "segment-bitflip",
			prep: func(t *testing.T, dir string) {
				name := filepath.Join(dir, segName(2, 0))
				buf, err := os.ReadFile(name)
				if err != nil {
					t.Fatal(err)
				}
				buf[len(buf)/2] ^= 1
				os.WriteFile(name, buf, 0o644)
			},
			outcome: OutcomeViolation,
		},
		{
			name: "segment-missing",
			prep: func(t *testing.T, dir string) {
				os.Remove(filepath.Join(dir, segName(2, 0)))
			},
			outcome: OutcomeViolation,
		},
		{
			name: "wal-truncated-to-empty",
			prep: func(t *testing.T, dir string) {
				os.Truncate(filepath.Join(dir, walName), 0)
			},
			outcome: OutcomeViolation,
		},
		{
			name: "wal-truncated-one-epoch",
			prep: func(t *testing.T, dir string) {
				// Chop the log back to epoch 1 while the snapshot is at
				// epoch 2: hiding committed epochs.
				os.Truncate(filepath.Join(dir, walName), 2*walRecordSize)
			},
			outcome: OutcomeViolation,
		},
		{
			name: "manifest-corrupt",
			prep: func(t *testing.T, dir string) {
				name := filepath.Join(dir, manifestName)
				buf, err := os.ReadFile(name)
				if err != nil {
					t.Fatal(err)
				}
				buf[5] ^= 0xff
				os.WriteFile(name, buf, 0o644)
			},
			outcome: OutcomeViolation,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			roots, _ := checkpointEpochs(t, dir, cfg, 2)
			c.prep(t, dir)
			m, rec, err := RecoverMachine(Options{Dir: dir}, cfg)
			if err != nil {
				t.Fatalf("RecoverMachine: %v", err)
			}
			if rec.Outcome != c.outcome {
				t.Fatalf("outcome = %s (%s), want %s", rec.Outcome, rec.Detail, c.outcome)
			}
			if c.outcome != OutcomeViolation {
				if rec.Epoch != c.epoch {
					t.Fatalf("epoch = %d, want %d", rec.Epoch, c.epoch)
				}
				if !bytes.Equal(m.Root(), roots[c.epoch-1]) {
					t.Fatalf("recovered root differs from the sealed epoch-%d root", c.epoch)
				}
			}
		})
	}
}

func TestRecoverFresh(t *testing.T) {
	cfg := testConfig(core.SchemeCached, "full")
	for _, sub := range []struct {
		name string
		prep func(t *testing.T, dir string)
	}{
		{"empty-dir", func(t *testing.T, dir string) {}},
		{"empty-wal-file", func(t *testing.T, dir string) {
			os.WriteFile(filepath.Join(dir, walName), nil, 0o644)
		}},
	} {
		t.Run(sub.name, func(t *testing.T) {
			dir := t.TempDir()
			sub.prep(t, dir)
			_, rec, err := RecoverMachine(Options{Dir: dir}, cfg)
			if err != nil {
				t.Fatalf("RecoverMachine: %v", err)
			}
			if rec.Outcome != OutcomeFresh {
				t.Fatalf("outcome = %s, want fresh", rec.Outcome)
			}
		})
	}
}

func TestFingerprintMismatchFailsLoudly(t *testing.T) {
	cfg := testConfig(core.SchemeCached, "full")
	dir := t.TempDir()
	checkpointEpochs(t, dir, cfg, 1)

	other := testConfig(core.SchemeMulti, "full")
	_, _, err := RecoverMachine(Options{Dir: dir}, other)
	if err == nil || !IsFingerprintMismatch(err) {
		t.Fatalf("recovering under a different scheme: err = %v, want fingerprint mismatch", err)
	}

	// Same scheme, different geometry.
	geo := cfg
	geo.ProtectedBytes *= 2
	geo.Benchmark = trace.Uniform("persist", geo.ProtectedBytes/2)
	geo.Benchmark.CodeSet = 4 << 10
	_, _, err = RecoverMachine(Options{Dir: dir}, geo)
	if err == nil || !IsFingerprintMismatch(err) {
		t.Fatalf("recovering under different geometry: err = %v, want fingerprint mismatch", err)
	}
}

func TestStaleSnapshotReplayDetected(t *testing.T) {
	cfg := testConfig(core.SchemeCached, "full")
	dir := t.TempDir()

	m := newMachine(t, cfg)
	st := openStore(t, Options{Dir: dir, Retry: fastRetry})
	rng := rand.New(rand.NewSource(5))

	writeN(t, m, rng, 24)
	if _, err := st.Checkpoint(MachineSource{m}); err != nil {
		t.Fatal(err)
	}
	// Stash the epoch-1 snapshot (a valid, fully committed state).
	man1, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	seg1, err := os.ReadFile(filepath.Join(dir, segName(1, 0)))
	if err != nil {
		t.Fatal(err)
	}

	writeN(t, m, rng, 24)
	if _, err := st.Checkpoint(MachineSource{m}); err != nil {
		t.Fatal(err)
	}

	// Replay attack: reinstall the stale-but-internally-valid epoch-1
	// snapshot over the committed epoch-2 one, leaving the WAL alone.
	os.WriteFile(filepath.Join(dir, manifestName), man1, 0o644)
	os.WriteFile(filepath.Join(dir, segName(1, 0)), seg1, 0o644)
	os.Remove(filepath.Join(dir, segName(2, 0)))

	_, rec, err := RecoverMachine(Options{Dir: dir}, cfg)
	if err != nil {
		t.Fatalf("RecoverMachine: %v", err)
	}
	if rec.Outcome != OutcomeViolation {
		t.Fatalf("stale snapshot replay: outcome = %s (%s), want violation", rec.Outcome, rec.Detail)
	}
}

// TestKillPointProperty is the seeded property test: a checkpoint→kill→
// recover cycle at ANY kill point yields a root byte-identical to some
// committed epoch of an uninterrupted reference run — never a novel root,
// never a silent violation — across all persistable schemes × hash modes.
func TestKillPointProperty(t *testing.T) {
	stages := []string{
		StageWALWrite, StageWALSync, StageBetween,
		StageSegWrite, StageSegSync,
		StageManifestWrite, StageManifestRename,
	}
	schemes := []core.Scheme{core.SchemeNaive, core.SchemeCached, core.SchemeMulti, core.SchemeIncr}
	modes := []string{"full", "memo"}
	for _, scheme := range schemes {
		for _, mode := range modes {
			for _, stage := range stages {
				t.Run(string(scheme)+"/"+mode+"/"+stage, func(t *testing.T) {
					killPointCycle(t, scheme, mode, stage)
				})
			}
		}
	}
}

func killPointCycle(t *testing.T, scheme core.Scheme, mode, stage string) {
	cfg := testConfig(scheme, mode)
	dir := t.TempDir()

	// Reference: uninterrupted run, roots per epoch (epoch 0 = initial).
	ref := newMachine(t, cfg)
	refRng := rand.New(rand.NewSource(42))
	refRoots := [][]byte{ref.Root()}
	for i := 0; i < 3; i++ {
		writeN(t, ref, refRng, 16)
		ref.Flush()
		refRoots = append(refRoots, ref.Root())
	}

	// Victim: same workload, checkpoint each round, killed during the
	// SECOND checkpoint.
	ffs := NewFaultFS(nil)
	m := newMachine(t, cfg)
	rng := rand.New(rand.NewSource(42))
	st := openStore(t, Options{Dir: dir, FS: ffs, Retry: fastRetry})

	writeN(t, m, rng, 16)
	if _, err := st.Checkpoint(MachineSource{m}); err != nil {
		t.Fatalf("checkpoint 1: %v", err)
	}
	if !bytes.Equal(m.Root(), refRoots[1]) {
		t.Fatalf("victim and reference diverged before the kill")
	}

	ffs.Kill(KillRule{Stage: stage})
	writeN(t, m, rng, 16)
	_, err := st.Checkpoint(MachineSource{m})
	if !ffs.Killed() {
		t.Skipf("stage %s not reached in this protocol phase", stage)
	}
	if err == nil {
		t.Fatalf("checkpoint survived its kill point")
	}

	// Restart: recover from the real directory with a clean FS.
	r, rec, err := RecoverMachine(Options{Dir: dir}, cfg)
	if err != nil {
		t.Fatalf("RecoverMachine: %v", err)
	}
	if rec.Outcome == OutcomeViolation {
		t.Fatalf("clean kill/restart classified as violation: %s", rec.Detail)
	}
	if rec.Outcome == OutcomeFresh {
		t.Fatalf("committed epoch 1 lost: recovery says fresh")
	}
	if rec.Epoch != 1 && rec.Epoch != 2 {
		t.Fatalf("recovered to epoch %d, want 1 or 2", rec.Epoch)
	}
	if !bytes.Equal(r.Root(), refRoots[rec.Epoch]) {
		t.Fatalf("recovered root is not byte-identical to the reference epoch-%d root", rec.Epoch)
	}

	// The recovered machine must be fully usable: resume the workload and
	// checkpoint again through a fresh store.
	st2 := openStore(t, Options{Dir: dir, Retry: fastRetry})
	writeN(t, r, rand.New(rand.NewSource(43)), 8)
	if _, err := st2.Checkpoint(MachineSource{r}); err != nil {
		t.Fatalf("post-recovery checkpoint: %v", err)
	}
	_, rec2, err := RecoverMachine(Options{Dir: dir}, cfg)
	if err != nil || rec2.Outcome != OutcomeClean {
		t.Fatalf("post-recovery state not clean: %v / %+v", err, rec2)
	}
}

// TestDoubleCrashRollback stacks two torn checkpoints: recovery must
// normalize the WAL after the first so the second still reads as a crash,
// not as tampering.
func TestDoubleCrashRollback(t *testing.T) {
	cfg := testConfig(core.SchemeCached, "full")
	dir := t.TempDir()

	m := newMachine(t, cfg)
	rng := rand.New(rand.NewSource(9))
	{
		ffs := NewFaultFS(nil)
		st := openStore(t, Options{Dir: dir, FS: ffs, Retry: fastRetry})
		writeN(t, m, rng, 16)
		if _, err := st.Checkpoint(MachineSource{m}); err != nil {
			t.Fatal(err)
		}
		ffs.Kill(KillRule{Stage: StageBetween})
		writeN(t, m, rng, 16)
		if _, err := st.Checkpoint(MachineSource{m}); err == nil {
			t.Fatal("checkpoint survived kill")
		}
	}
	r1, rec1, err := RecoverMachine(Options{Dir: dir}, cfg)
	if err != nil || rec1.Outcome != OutcomeTorn || rec1.Epoch != 1 {
		t.Fatalf("first crash: %v / %+v", err, rec1)
	}
	{
		ffs := NewFaultFS(nil)
		st := openStore(t, Options{Dir: dir, FS: ffs, Retry: fastRetry})
		ffs.Kill(KillRule{Stage: StageBetween})
		writeN(t, r1, rand.New(rand.NewSource(10)), 16)
		if _, err := st.Checkpoint(MachineSource{r1}); err == nil {
			t.Fatal("checkpoint survived kill")
		}
	}
	_, rec2, err := RecoverMachine(Options{Dir: dir}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Outcome != OutcomeTorn || rec2.Epoch != 1 {
		t.Fatalf("second crash: outcome %s epoch %d (%s), want torn epoch 1", rec2.Outcome, rec2.Epoch, rec2.Detail)
	}
}

func TestRetryBackoff(t *testing.T) {
	cfg := testConfig(core.SchemeCached, "full")

	t.Run("transient-recovers", func(t *testing.T) {
		dir := t.TempDir()
		ffs := NewFaultFS(nil)
		m := newMachine(t, cfg)
		st := openStore(t, Options{Dir: dir, FS: ffs, Retry: fastRetry})
		writeN(t, m, rand.New(rand.NewSource(1)), 16)
		ffs.FailTransient(2)
		if _, err := st.Checkpoint(MachineSource{m}); err != nil {
			t.Fatalf("checkpoint with transient faults: %v", err)
		}
		if got := st.Stats().Retries; got < 2 {
			t.Fatalf("Retries = %d, want >= 2", got)
		}
		if st.Stats().RetryExhausted != 0 {
			t.Fatalf("RetryExhausted = %d, want 0", st.Stats().RetryExhausted)
		}
	})

	t.Run("exhaustion-halt-policy", func(t *testing.T) {
		dir := t.TempDir()
		ffs := NewFaultFS(nil)
		m := newMachine(t, cfg)
		st := openStore(t, Options{Dir: dir, FS: ffs, Retry: RetryPolicy{Attempts: 2, BaseDelay: 1, MaxDelay: 1}, Policy: "halt"})
		writeN(t, m, rand.New(rand.NewSource(1)), 16)
		ffs.FailTransient(100)
		if _, err := st.Checkpoint(MachineSource{m}); err == nil {
			t.Fatal("checkpoint succeeded despite exhausted retries")
		}
		if st.Stats().RetryExhausted == 0 {
			t.Fatal("RetryExhausted not counted")
		}
		if _, err := st.Checkpoint(MachineSource{m}); !errors.Is(err, ErrStoreFailed) {
			t.Fatalf("poisoned store: err = %v, want ErrStoreFailed", err)
		}
	})

	t.Run("exhaustion-record-policy", func(t *testing.T) {
		dir := t.TempDir()
		ffs := NewFaultFS(nil)
		m := newMachine(t, cfg)
		st := openStore(t, Options{Dir: dir, FS: ffs, Retry: RetryPolicy{Attempts: 2, BaseDelay: 1, MaxDelay: 1}, Policy: "record"})
		writeN(t, m, rand.New(rand.NewSource(1)), 16)
		ffs.FailTransient(100)
		if _, err := st.Checkpoint(MachineSource{m}); err == nil {
			t.Fatal("checkpoint succeeded despite exhausted retries")
		}
		ffs.FailTransient(-100) // drain the queue the failed run left
		if _, err := st.Checkpoint(MachineSource{m}); err != nil {
			t.Fatalf("record policy must allow the next checkpoint: %v", err)
		}
		if st.Stats().CheckpointFails != 1 || st.Stats().Checkpoints != 1 {
			t.Fatalf("stats = %+v", st.Stats())
		}
	})
}

func TestPersistRejectsUnsupportedConfigs(t *testing.T) {
	base := testConfig(core.SchemeBase, "full")
	base.Scheme = core.SchemeBase
	m := newMachine(t, base)
	if _, _, err := m.SaveState(); err == nil {
		t.Fatal("base scheme must not persist")
	}
	timing := testConfig(core.SchemeCached, "timing")
	mt := newMachine(t, timing)
	if _, _, err := mt.SaveState(); err == nil {
		t.Fatal("timing hash mode must not persist")
	}
}

func TestWALRecordRoundtrip(t *testing.T) {
	rec := walRecord{Type: recCommit, Epoch: 77, Fingerprint: 0xdeadbeef, Shards: 4}
	copy(rec.RootDigest[:], bytes.Repeat([]byte{0xab}, 16))
	got, err := decodeWALRecord(rec.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != rec {
		t.Fatalf("roundtrip mismatch: %+v != %+v", got, rec)
	}
	buf := rec.encode()
	buf[10] ^= 1
	if _, err := decodeWALRecord(buf); err == nil {
		t.Fatal("corrupt record decoded")
	}
}

func TestSegmentRoundtrip(t *testing.T) {
	s := &segment{Epoch: 3, Shard: 1, Fingerprint: 42, Root: []byte{1, 2, 3, 4}, Image: bytes.Repeat([]byte{9}, 512)}
	got, err := decodeSegment(s.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 3 || got.Shard != 1 || got.Fingerprint != 42 ||
		!bytes.Equal(got.Root, s.Root) || !bytes.Equal(got.Image, s.Image) {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	buf := s.encode()
	buf[len(buf)/2] ^= 1
	if _, err := decodeSegment(buf); err == nil {
		t.Fatal("corrupt segment decoded")
	}
}
