// Package lamport implements Lamport one-time signatures over the
// repository's own SHA-1, providing the "processor secret that signs
// results" primitive of the paper's certified-execution application
// (§4.1) without any external cryptography.
//
// A key signs exactly one message. The secure processor of the paper
// derives a fresh program-bound key per execution (a collision-resistant
// combination of its secret and the program), which matches one-time
// semantics well.
package lamport

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"memverify/internal/hashalg"
)

const (
	// HashSize is the digest size of the underlying hash (SHA-1).
	HashSize = 20
	// Bits is the number of message-digest bits, each consuming one
	// secret pair.
	Bits = HashSize * 8
)

// PrivateKey holds the 2×Bits secret preimages.
type PrivateKey struct {
	used bool
	sk   [Bits][2][]byte
	pk   *PublicKey
}

// PublicKey holds the hashes of the preimages.
type PublicKey struct {
	pk [Bits][2][]byte
}

// Signature reveals one preimage per message-digest bit.
type Signature struct {
	sig [Bits][]byte
}

// GenerateKey derives a deterministic one-time key pair from seed — in
// the paper's setting, the processor's secret combined with the program
// hash (the "key that is unique to the processor-program pair").
func GenerateKey(seed []byte) *PrivateKey {
	alg := hashalg.SHA1{}
	priv := &PrivateKey{pk: &PublicKey{}}
	for i := 0; i < Bits; i++ {
		for b := 0; b < 2; b++ {
			material := make([]byte, 0, len(seed)+10)
			material = append(material, seed...)
			var idx [8]byte
			binary.LittleEndian.PutUint64(idx[:], uint64(i))
			material = append(material, idx[:]...)
			material = append(material, byte(b), 0x4C)
			priv.sk[i][b] = alg.Sum(material)
			priv.pk.pk[i][b] = alg.Sum(priv.sk[i][b])
		}
	}
	return priv
}

// Public returns the verification key.
func (k *PrivateKey) Public() *PublicKey { return k.pk }

// Sign signs message. A second call fails: revealing preimages for two
// different digests would let a forger mix and match.
func (k *PrivateKey) Sign(message []byte) (*Signature, error) {
	if k.used {
		return nil, fmt.Errorf("lamport: one-time key already used")
	}
	k.used = true
	alg := hashalg.SHA1{}
	digest := alg.Sum(message)
	var sig Signature
	for i := 0; i < Bits; i++ {
		bit := (digest[i/8] >> (7 - uint(i%8))) & 1
		sig.sig[i] = k.sk[i][bit]
	}
	return &sig, nil
}

// Verify reports whether sig authenticates message under pk.
func (pk *PublicKey) Verify(message []byte, sig *Signature) bool {
	if sig == nil {
		return false
	}
	alg := hashalg.SHA1{}
	digest := alg.Sum(message)
	for i := 0; i < Bits; i++ {
		bit := (digest[i/8] >> (7 - uint(i%8))) & 1
		if sig.sig[i] == nil || !bytes.Equal(alg.Sum(sig.sig[i]), pk.pk[i][bit]) {
			return false
		}
	}
	return true
}

// Marshal flattens the public key for publication (e.g., by the
// processor's manufacturer).
func (pk *PublicKey) Marshal() []byte {
	out := make([]byte, 0, Bits*2*HashSize)
	for i := 0; i < Bits; i++ {
		out = append(out, pk.pk[i][0]...)
		out = append(out, pk.pk[i][1]...)
	}
	return out
}

// UnmarshalPublicKey parses a Marshal output.
func UnmarshalPublicKey(data []byte) (*PublicKey, error) {
	if len(data) != Bits*2*HashSize {
		return nil, fmt.Errorf("lamport: public key must be %d bytes, got %d", Bits*2*HashSize, len(data))
	}
	pk := &PublicKey{}
	for i := 0; i < Bits; i++ {
		off := i * 2 * HashSize
		pk.pk[i][0] = append([]byte(nil), data[off:off+HashSize]...)
		pk.pk[i][1] = append([]byte(nil), data[off+HashSize:off+2*HashSize]...)
	}
	return pk, nil
}

// MarshalSignature flattens a signature for transmission.
func (s *Signature) Marshal() []byte {
	out := make([]byte, 0, Bits*HashSize)
	for i := 0; i < Bits; i++ {
		out = append(out, s.sig[i]...)
	}
	return out
}

// UnmarshalSignature parses a Marshal output.
func UnmarshalSignature(data []byte) (*Signature, error) {
	if len(data) != Bits*HashSize {
		return nil, fmt.Errorf("lamport: signature must be %d bytes, got %d", Bits*HashSize, len(data))
	}
	s := &Signature{}
	for i := 0; i < Bits; i++ {
		s.sig[i] = append([]byte(nil), data[i*HashSize:(i+1)*HashSize]...)
	}
	return s, nil
}
