package lamport

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSignVerify(t *testing.T) {
	k := GenerateKey([]byte("processor-secret|program-hash"))
	msg := []byte("the computed result is 42")
	sig, err := k.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Public().Verify(msg, sig) {
		t.Fatal("valid signature rejected")
	}
}

func TestWrongMessageRejected(t *testing.T) {
	k := GenerateKey([]byte("seed"))
	sig, _ := k.Sign([]byte("result A"))
	if k.Public().Verify([]byte("result B"), sig) {
		t.Fatal("signature verified a different message")
	}
}

func TestTamperedSignatureRejected(t *testing.T) {
	k := GenerateKey([]byte("seed"))
	msg := []byte("message")
	sig, _ := k.Sign(msg)
	sig.sig[7][3] ^= 1
	if k.Public().Verify(msg, sig) {
		t.Fatal("tampered signature accepted")
	}
	if k.Public().Verify(msg, nil) {
		t.Fatal("nil signature accepted")
	}
}

func TestOneTimeUse(t *testing.T) {
	k := GenerateKey([]byte("seed"))
	if _, err := k.Sign([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Sign([]byte("second")); err == nil {
		t.Fatal("second signature with a one-time key succeeded")
	}
}

func TestKeySeparation(t *testing.T) {
	k1 := GenerateKey([]byte("program-1"))
	k2 := GenerateKey([]byte("program-2"))
	msg := []byte("result")
	sig, _ := k1.Sign(msg)
	if k2.Public().Verify(msg, sig) {
		t.Fatal("signature verified under a different program's key")
	}
}

func TestDeterministicKeyGen(t *testing.T) {
	a := GenerateKey([]byte("seed")).Public().Marshal()
	b := GenerateKey([]byte("seed")).Public().Marshal()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different keys")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	k := GenerateKey([]byte("seed"))
	msg := []byte("round trip")
	sig, _ := k.Sign(msg)

	pk2, err := UnmarshalPublicKey(k.Public().Marshal())
	if err != nil {
		t.Fatal(err)
	}
	sig2, err := UnmarshalSignature(sig.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !pk2.Verify(msg, sig2) {
		t.Fatal("marshalled key/signature pair rejected")
	}
	if _, err := UnmarshalPublicKey([]byte{1}); err == nil {
		t.Error("short public key accepted")
	}
	if _, err := UnmarshalSignature([]byte{1}); err == nil {
		t.Error("short signature accepted")
	}
}

func TestVerifyPropertyRandomMessages(t *testing.T) {
	check := func(seed, msg []byte) bool {
		k := GenerateKey(seed)
		sig, err := k.Sign(msg)
		if err != nil {
			return false
		}
		return k.Public().Verify(msg, sig)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
