package lamport_test

import (
	"fmt"

	"memverify/internal/lamport"
)

// Example runs the §4.1 signing flow: a program-bound one-time key signs
// a computation's result; the verifier holds only the public key.
func Example() {
	key := lamport.GenerateKey([]byte("processor-secret|program-hash"))
	sig, err := key.Sign([]byte("result=42"))
	if err != nil {
		panic(err)
	}
	fmt.Println("verifies:", key.Public().Verify([]byte("result=42"), sig))
	fmt.Println("rejects other message:", !key.Public().Verify([]byte("result=43"), sig))

	// One-time semantics: a second signature is refused.
	_, err = key.Sign([]byte("another"))
	fmt.Println("second use refused:", err != nil)
	// Output:
	// verifies: true
	// rejects other message: true
	// second use refused: true
}
