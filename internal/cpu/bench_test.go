package cpu

import (
	"testing"

	"memverify/internal/trace"
)

// BenchmarkSimulationRate measures how many instructions per second the
// timing model itself processes against a perfect memory.
func BenchmarkSimulationRate(b *testing.B) {
	mem := &fixedMem{fetchLat: 1, loadLat: 1, storeLat: 1}
	c := New(DefaultConfig(), mem)
	gen := trace.NewSynthetic(trace.GCC, 1)
	b.SetBytes(1) // report per-instruction cost as B/s ~ instr/s
	b.ResetTimer()
	c.Run(gen, uint64(b.N))
}

// BenchmarkSimulationRateMemoryBound measures the same with 100-cycle
// memory, exercising the window bookkeeping harder.
func BenchmarkSimulationRateMemoryBound(b *testing.B) {
	mem := &fixedMem{fetchLat: 1, loadLat: 100, storeLat: 1}
	c := New(DefaultConfig(), mem)
	gen := trace.NewSynthetic(trace.Swim, 1)
	b.SetBytes(1)
	b.ResetTimer()
	c.Run(gen, uint64(b.N))
}
