// Package cpu is the trace-driven superscalar timing model standing in
// for SimpleScalar's out-of-order simulator. It is a timestamp dataflow
// model: each dynamic instruction's fetch, issue and commit cycles are
// derived from its producers' completion times under the machine's
// structural constraints — fetch and commit bandwidth, a finite register
// update unit (RUU) window, a finite load/store queue, and branch
// misprediction refetch. Loads take their latency from the memory
// hierarchy at their issue cycle, so cache misses, bus contention and
// hash-unit back-pressure all flow into IPC.
//
// Deliberate simplifications versus sim-outorder (documented in
// DESIGN.md): there is no MSHR cap beyond bus serialization and no
// speculative wrong-path memory traffic. Neither affects the *relative*
// IPC of the verification schemes, which is what the paper's figures
// report.
package cpu

import "memverify/internal/trace"

// Config sets the core's widths, window sizes and latencies (Table 1).
type Config struct {
	FetchWidth        int    // instructions fetched per cycle
	IssueWidth        int    // instructions entering execution per cycle (0 = unbounded)
	CommitWidth       int    // instructions committed per cycle
	RUUSize           int    // register update unit (instruction window)
	LSQSize           int    // load/store queue entries
	DecodeDepth       uint64 // front-end pipeline stages between fetch and issue
	MispredictPenalty uint64 // refetch penalty after a mispredicted branch
	MulLatency        uint64
	FPLatency         uint64
	CryptoLatency     uint64 // on-chip signing latency for OpCrypto barriers
}

// DefaultConfig returns the paper's core: 4-wide, RUU 128, LSQ 64.
func DefaultConfig() Config {
	return Config{
		FetchWidth:        4,
		IssueWidth:        4,
		CommitWidth:       4,
		RUUSize:           128,
		LSQSize:           64,
		DecodeDepth:       2,
		MispredictPenalty: 3,
		MulLatency:        3,
		FPLatency:         4,
		CryptoLatency:     100,
	}
}

// MemPort is the memory hierarchy as the core sees it. Each call returns
// the cycle at which the access completes. Fetch is an instruction fetch
// (L1 I-cache), Load a data read, and Store a committed store entering
// the hierarchy.
type MemPort interface {
	Fetch(now uint64, pc uint64) uint64
	Load(now uint64, addr uint64) uint64
	Store(now uint64, addr uint64) uint64
}

// BarrierPort is optionally implemented by hierarchies that run integrity
// checks in the background. Barrier returns the cycle by which every check
// issued so far has completed — the §5.8 requirement that cryptographic
// instructions not expose results before preceding checks pass.
type BarrierPort interface {
	Barrier(now uint64) uint64
}

// Result summarizes a run.
type Result struct {
	Instructions uint64
	Cycles       uint64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	Mispredicts  uint64
}

// IPC returns committed instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// CPU is a single simulated core. It is not safe for concurrent use.
type CPU struct {
	cfg Config
	mem MemPort

	ring      uint64
	done      []uint64 // result-ready cycle per instruction (ring)
	commit    []uint64 // commit cycle per instruction (ring)
	fetch     []uint64 // fetch cycle per instruction (ring)
	lsqRing   uint64
	memCommit []uint64 // commit cycle per memory op (ring)

	// Issue-bandwidth regulator: slots consumed per cycle over a sliding
	// window.
	issueCycle []uint64
	issueUsed  []uint16

	// Persistent machine state across Run calls, so a warm-up run can be
	// followed by a measured run without resetting the pipeline clock.
	count     uint64 // dynamic instructions processed so far
	nMem      uint64 // memory operations processed so far
	refetchAt uint64 // front-end squash point from the last misprediction
	fetchDone uint64 // completion of the most recent fetch (I-miss stall)
}

// New builds a core over the given memory hierarchy.
func New(cfg Config, mem MemPort) *CPU {
	if cfg.FetchWidth <= 0 || cfg.CommitWidth <= 0 || cfg.RUUSize <= 0 || cfg.LSQSize <= 0 {
		panic("cpu: widths and window sizes must be positive")
	}
	ring := nextPow2(uint64(2 * cfg.RUUSize))
	if ring < 128 {
		ring = 128
	}
	lsqRing := nextPow2(uint64(2 * cfg.LSQSize))
	return &CPU{
		cfg:        cfg,
		mem:        mem,
		ring:       ring,
		done:       make([]uint64, ring),
		commit:     make([]uint64, ring),
		fetch:      make([]uint64, ring),
		lsqRing:    lsqRing,
		memCommit:  make([]uint64, lsqRing),
		issueCycle: make([]uint64, issueWindow),
		issueUsed:  make([]uint16, issueWindow),
	}
}

// issueWindow bounds how far ahead issue slots are tracked; it only needs
// to exceed the largest plausible burst of same-cycle ready instructions.
const issueWindow = 1 << 14

// issueSlot returns the first cycle at or after ready with spare issue
// bandwidth, and consumes one slot there.
func (c *CPU) issueSlot(ready uint64) uint64 {
	w := c.cfg.IssueWidth
	if w <= 0 {
		return ready
	}
	for cyc := ready; ; cyc++ {
		i := cyc & (issueWindow - 1)
		if c.issueCycle[i] != cyc {
			c.issueCycle[i] = cyc
			c.issueUsed[i] = 0
		}
		if int(c.issueUsed[i]) < w {
			c.issueUsed[i]++
			return cyc
		}
	}
}

func nextPow2(v uint64) uint64 {
	n := uint64(1)
	for n < v {
		n <<= 1
	}
	return n
}

// Run executes n instructions from gen and returns the timing result for
// this increment. Run may be called repeatedly; pipeline state, the cycle
// clock and window occupancy persist, so the second call measures
// steady-state behaviour over a warm machine.
func (c *CPU) Run(gen trace.Generator, n uint64) Result {
	var (
		res Result
		ins trace.Instruction
	)
	cfg := &c.cfg
	fw := uint64(cfg.FetchWidth)
	cw := uint64(cfg.CommitWidth)
	ruu := uint64(cfg.RUUSize)
	lsq := uint64(cfg.LSQSize)

	var startCycle uint64
	if c.count > 0 {
		startCycle = c.commit[(c.count-1)%c.ring]
	}
	end := c.count + n
	for ; c.count < end; c.count++ {
		i := c.count
		gen.Next(&ins)

		// Fetch: the issue slot is bounded by fetch bandwidth, the RUU
		// window (a slot frees when instruction i-RUU commits), any
		// pending refetch after a mispredicted branch, and the in-order
		// front end draining the previous fetch (an I-cache miss stalls
		// fetch; a pipelined hit does not).
		ft := c.refetchAt
		if i >= fw {
			if t := c.fetch[(i-fw)%c.ring] + 1; t > ft {
				ft = t
			}
		}
		if i >= ruu {
			if t := c.commit[(i-ruu)%c.ring]; t > ft {
				ft = t
			}
		}
		if c.fetchDone > 0 && c.fetchDone-1 > ft {
			ft = c.fetchDone - 1
		}
		c.fetch[i%c.ring] = ft
		fd := c.mem.Fetch(ft, ins.PC)
		c.fetchDone = fd

		// Issue: after decode, once producers have completed and — for
		// memory ops — an LSQ entry is free.
		ready := fd + cfg.DecodeDepth
		if ins.Dep1 != 0 && uint64(ins.Dep1) <= i {
			if t := c.done[(i-uint64(ins.Dep1))%c.ring]; t > ready {
				ready = t
			}
		}
		if ins.Dep2 != 0 && uint64(ins.Dep2) <= i {
			if t := c.done[(i-uint64(ins.Dep2))%c.ring]; t > ready {
				ready = t
			}
		}

		var dn uint64
		isMem := ins.Op == trace.OpLoad || ins.Op == trace.OpStore
		if isMem && c.nMem >= lsq {
			if t := c.memCommit[(c.nMem-lsq)%c.lsqRing]; t > ready {
				ready = t
			}
		}
		ready = c.issueSlot(ready)
		switch ins.Op {
		case trace.OpLoad:
			dn = c.mem.Load(ready, ins.Addr)
			res.Loads++
		case trace.OpStore:
			// The store's address/data are ready; the memory write
			// happens at commit from the store buffer.
			dn = ready + 1
			res.Stores++
		case trace.OpMul:
			dn = ready + cfg.MulLatency
		case trace.OpFP:
			dn = ready + cfg.FPLatency
		case trace.OpBranch:
			dn = ready + 1
			res.Branches++
		case trace.OpCrypto:
			// §5.8: the signature must not leave the chip before every
			// preceding check has completed — crypto ops are barriers.
			dn = ready
			if bp, ok := c.mem.(BarrierPort); ok {
				dn = bp.Barrier(ready)
			}
			dn += cfg.CryptoLatency
		default:
			dn = ready + 1
		}
		c.done[i%c.ring] = dn

		// Commit: in order, bounded by commit bandwidth.
		ct := dn
		if i > 0 {
			if t := c.commit[(i-1)%c.ring]; t > ct {
				ct = t
			}
		}
		if i >= cw {
			if t := c.commit[(i-cw)%c.ring] + 1; t > ct {
				ct = t
			}
		}
		c.commit[i%c.ring] = ct

		if isMem {
			c.memCommit[c.nMem%c.lsqRing] = ct
			c.nMem++
			if ins.Op == trace.OpStore {
				c.mem.Store(ct, ins.Addr)
			}
		}
		if ins.Op == trace.OpBranch && ins.Mispredict {
			res.Mispredicts++
			if t := dn + cfg.MispredictPenalty; t > c.refetchAt {
				c.refetchAt = t
			}
		}
	}
	res.Instructions = n
	if n > 0 {
		res.Cycles = c.commit[(end-1)%c.ring] - startCycle
	}
	return res
}
