package cpu

import (
	"testing"

	"memverify/internal/trace"
)

// fixedMem is a MemPort with constant latencies.
type fixedMem struct {
	fetchLat, loadLat, storeLat uint64
	loads, stores, fetches      uint64
}

func (m *fixedMem) Fetch(now, pc uint64) uint64 { m.fetches++; return now + m.fetchLat }
func (m *fixedMem) Load(now, a uint64) uint64   { m.loads++; return now + m.loadLat }
func (m *fixedMem) Store(now, a uint64) uint64  { m.stores++; return now + m.storeLat }

// scripted replays a fixed instruction slice.
type scripted struct {
	ins []trace.Instruction
	i   int
}

func (s *scripted) Name() string { return "scripted" }
func (s *scripted) Next(out *trace.Instruction) {
	*out = s.ins[s.i%len(s.ins)]
	s.i++
}

func run(t *testing.T, cfg Config, ins []trace.Instruction, n uint64, mem MemPort) Result {
	t.Helper()
	if mem == nil {
		mem = &fixedMem{fetchLat: 1, loadLat: 1, storeLat: 1}
	}
	c := New(cfg, mem)
	return c.Run(&scripted{ins: ins}, n)
}

func TestIndependentIntStreamHitsWidth(t *testing.T) {
	res := run(t, DefaultConfig(), []trace.Instruction{{Op: trace.OpInt}}, 10000, nil)
	if ipc := res.IPC(); ipc < 3.5 || ipc > 4.01 {
		t.Errorf("independent stream IPC = %f, want ~4 (commit width)", ipc)
	}
}

func TestSerialChainLimitsIPC(t *testing.T) {
	// Every instruction depends on its predecessor: one per cycle at best.
	res := run(t, DefaultConfig(), []trace.Instruction{{Op: trace.OpInt, Dep1: 1}}, 10000, nil)
	if ipc := res.IPC(); ipc > 1.01 {
		t.Errorf("serial chain IPC = %f, want <= 1", ipc)
	}
}

func TestFPLatencyChain(t *testing.T) {
	cfg := DefaultConfig()
	res := run(t, cfg, []trace.Instruction{{Op: trace.OpFP, Dep1: 1}}, 10000, nil)
	want := 1.0 / float64(cfg.FPLatency)
	if ipc := res.IPC(); ipc > want*1.05 {
		t.Errorf("dependent FP chain IPC = %f, want ~%f", ipc, want)
	}
}

func TestLoadLatencyChain(t *testing.T) {
	mem := &fixedMem{fetchLat: 1, loadLat: 100, storeLat: 1}
	res := run(t, DefaultConfig(), []trace.Instruction{{Op: trace.OpLoad, Dep1: 1}}, 2000, mem)
	if ipc := res.IPC(); ipc > 0.011 {
		t.Errorf("dependent 100-cycle loads IPC = %f, want ~0.01", ipc)
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	// Independent loads should overlap up to the window/LSQ limit.
	mem := &fixedMem{fetchLat: 1, loadLat: 100, storeLat: 1}
	res := run(t, DefaultConfig(), []trace.Instruction{{Op: trace.OpLoad}}, 5000, mem)
	if ipc := res.IPC(); ipc < 0.3 {
		t.Errorf("independent loads IPC = %f: no memory-level parallelism", ipc)
	}
}

func TestRUULimitsOverlap(t *testing.T) {
	mem := &fixedMem{fetchLat: 1, loadLat: 200, storeLat: 1}
	big := DefaultConfig()
	small := DefaultConfig()
	small.RUUSize = 8
	small.LSQSize = 4
	rBig := run(t, big, []trace.Instruction{{Op: trace.OpLoad}}, 4000, mem)
	mem2 := &fixedMem{fetchLat: 1, loadLat: 200, storeLat: 1}
	c := New(small, mem2)
	rSmall := c.Run(&scripted{ins: []trace.Instruction{{Op: trace.OpLoad}}}, 4000)
	if rSmall.IPC() >= rBig.IPC() {
		t.Errorf("small window IPC %f >= big window IPC %f", rSmall.IPC(), rBig.IPC())
	}
}

func TestMispredictsReduceIPC(t *testing.T) {
	clean := []trace.Instruction{{Op: trace.OpBranch}, {Op: trace.OpInt}, {Op: trace.OpInt}, {Op: trace.OpInt}}
	dirty := []trace.Instruction{{Op: trace.OpBranch, Mispredict: true}, {Op: trace.OpInt}, {Op: trace.OpInt}, {Op: trace.OpInt}}
	rc := run(t, DefaultConfig(), clean, 8000, nil)
	rd := run(t, DefaultConfig(), dirty, 8000, nil)
	if rd.IPC() >= rc.IPC() {
		t.Errorf("mispredicting IPC %f >= clean IPC %f", rd.IPC(), rc.IPC())
	}
	if rd.Mispredicts == 0 || rc.Mispredicts != 0 {
		t.Errorf("mispredict counters: clean %d dirty %d", rc.Mispredicts, rd.Mispredicts)
	}
}

func TestStoresRetireThroughPort(t *testing.T) {
	mem := &fixedMem{fetchLat: 1, loadLat: 1, storeLat: 1}
	res := run(t, DefaultConfig(), []trace.Instruction{{Op: trace.OpStore}}, 1000, mem)
	if mem.stores != 1000 {
		t.Errorf("port saw %d stores, want 1000", mem.stores)
	}
	if res.Stores != 1000 {
		t.Errorf("result counted %d stores", res.Stores)
	}
}

func TestResultCounters(t *testing.T) {
	ins := []trace.Instruction{
		{Op: trace.OpLoad}, {Op: trace.OpStore}, {Op: trace.OpBranch}, {Op: trace.OpInt},
	}
	res := run(t, DefaultConfig(), ins, 4000, nil)
	if res.Instructions != 4000 {
		t.Errorf("Instructions = %d", res.Instructions)
	}
	if res.Loads != 1000 || res.Stores != 1000 || res.Branches != 1000 {
		t.Errorf("counters: %+v", res)
	}
	if res.Cycles == 0 || res.IPC() == 0 {
		t.Error("no cycles recorded")
	}
	var empty Result
	if empty.IPC() != 0 {
		t.Error("IPC of empty result should be 0")
	}
}

func TestRunContinuation(t *testing.T) {
	mem := &fixedMem{fetchLat: 1, loadLat: 50, storeLat: 1}
	c := New(DefaultConfig(), mem)
	gen := &scripted{ins: []trace.Instruction{{Op: trace.OpLoad}, {Op: trace.OpInt, Dep1: 1}}}
	r1 := c.Run(gen, 3000)
	r2 := c.Run(gen, 3000)
	if r2.Cycles == 0 {
		t.Fatal("continuation run recorded no cycles")
	}
	// The second segment of a steady workload should cost about the same
	// as the first (cycle accounting must not double-count the warm-up).
	ratio := float64(r2.Cycles) / float64(r1.Cycles)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("segment cycle ratio %f, want ~1", ratio)
	}
}

func TestFetchLatencyMatters(t *testing.T) {
	fast := &fixedMem{fetchLat: 1, loadLat: 1, storeLat: 1}
	slow := &fixedMem{fetchLat: 20, loadLat: 1, storeLat: 1}
	rf := run(t, DefaultConfig(), []trace.Instruction{{Op: trace.OpInt}}, 4000, fast)
	rs := run(t, DefaultConfig(), []trace.Instruction{{Op: trace.OpInt}}, 4000, slow)
	if rs.IPC() >= rf.IPC() {
		t.Errorf("slow fetch IPC %f >= fast fetch IPC %f", rs.IPC(), rf.IPC())
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero widths did not panic")
		}
	}()
	New(Config{}, &fixedMem{})
}

func TestIssueWidthBounds(t *testing.T) {
	// Unbounded issue with wide fetch/commit lets bursts exceed 4/cycle;
	// the issue regulator must hold the line.
	wide := DefaultConfig()
	wide.FetchWidth = 8
	wide.CommitWidth = 8
	wide.IssueWidth = 2
	res := run(t, wide, []trace.Instruction{{Op: trace.OpInt}}, 10000, nil)
	if ipc := res.IPC(); ipc > 2.01 {
		t.Errorf("IPC %f exceeds the 2-wide issue stage", ipc)
	}
}

func TestIssueWidthZeroMeansUnbounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IssueWidth = 0
	res := run(t, cfg, []trace.Instruction{{Op: trace.OpInt}}, 10000, nil)
	if ipc := res.IPC(); ipc < 3.5 {
		t.Errorf("unbounded issue IPC %f, want ~4 (commit-limited)", ipc)
	}
}

// barrierMem reports a fixed outstanding-check horizon.
type barrierMem struct {
	fixedMem
	horizon uint64
}

func (m *barrierMem) Barrier(now uint64) uint64 {
	if m.horizon > now {
		return m.horizon
	}
	return now
}

func TestCryptoBarrierWaitsForChecks(t *testing.T) {
	mem := &barrierMem{fixedMem: fixedMem{fetchLat: 1, loadLat: 1, storeLat: 1}, horizon: 50_000}
	cfg := DefaultConfig()
	c := New(cfg, mem)
	gen := &scripted{ins: []trace.Instruction{{Op: trace.OpCrypto}}}
	res := c.Run(gen, 1)
	if res.Cycles < 50_000+cfg.CryptoLatency {
		t.Errorf("crypto instruction committed at %d, before the %d-cycle check horizon",
			res.Cycles, 50_000)
	}
	// Without a BarrierPort, crypto ops just take their latency.
	plain := &fixedMem{fetchLat: 1, loadLat: 1, storeLat: 1}
	c2 := New(cfg, plain)
	res2 := c2.Run(&scripted{ins: []trace.Instruction{{Op: trace.OpCrypto}}}, 1)
	if res2.Cycles > cfg.CryptoLatency+20 {
		t.Errorf("crypto without barrier port took %d cycles", res2.Cycles)
	}
}
