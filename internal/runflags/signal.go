package runflags

import (
	"os"
	"os/signal"
	"syscall"
	"time"
)

// NotifyInterrupt registers for SIGINT/SIGTERM and returns the delivery
// channel plus a stop function releasing the registration. Drivers use it
// for graceful shutdown: on delivery they record the signal in the flight
// recorder and return through their normal teardown (deferred closes and
// flight dump) instead of dying in the runtime's default handler.
func NotifyInterrupt() (<-chan os.Signal, func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return ch, func() { signal.Stop(ch) }
}

// Linger blocks for d or until SIGINT/SIGTERM, whichever comes first, and
// returns the signal that cut the wait short (nil on natural expiry).
// This is the signal-aware replacement for the bare time.Sleep a driver
// would otherwise park in while keeping its ops surface scrapeable: a
// signal during the window returns control to the caller so deferred
// closes and the flight dump still run.
func Linger(d time.Duration) os.Signal {
	if d <= 0 {
		return nil
	}
	ch, stop := NotifyInterrupt()
	defer stop()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case sig := <-ch:
		return sig
	case <-t.C:
		return nil
	}
}
