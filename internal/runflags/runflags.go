// Package runflags bundles the observability flags every driver binary
// shares — -trace, -metrics, -cpuprofile and -memprofile — together with
// the recorder/registry construction and file write-out they imply, so
// cmd/simulate, cmd/figures, cmd/loadgen and cmd/chaos plumb one helper
// instead of four copies of the same boilerplate.
package runflags

import (
	"flag"

	"memverify/internal/profiling"
	"memverify/internal/telemetry"
)

// Flags holds the registered observability flag values. Construct with
// Add before flag.Parse; read only after it.
type Flags struct {
	trace   *string
	metrics *string
	prof    *profiling.Flags
}

// Add registers -trace and -metrics on the default flag set, plus
// -cpuprofile / -memprofile via internal/profiling. Call before
// flag.Parse.
func Add() *Flags {
	return &Flags{
		trace:   flag.String("trace", "", "write a Chrome trace-event JSON of the run (open in Perfetto)"),
		metrics: flag.String("metrics", "", "write a deterministic JSON metrics snapshot of the run"),
		prof:    profiling.AddFlags(),
	}
}

// TracePath / MetricsPath return the flag values ("" when unset).
func (f *Flags) TracePath() string   { return *f.trace }
func (f *Flags) MetricsPath() string { return *f.metrics }

// TelemetryEnabled reports whether either telemetry output was requested
// — the condition under which a run needs a recorder attached.
func (f *Flags) TelemetryEnabled() bool { return *f.trace != "" || *f.metrics != "" }

// StartProfiling begins CPU profiling when -cpuprofile was given and
// returns the stop function finalizing both profiles; defer it in main.
func (f *Flags) StartProfiling() (stop func(), err error) { return f.prof.Start() }

// NewRecorder returns a telemetry recorder with the default event
// capacity when either telemetry output is requested, else nil (the
// disabled fast path — attach the nil recorder freely).
func (f *Flags) NewRecorder() *telemetry.Recorder {
	if !f.TelemetryEnabled() {
		return nil
	}
	return telemetry.NewRecorder(telemetry.DefaultEventCap)
}

// NewRecorders returns n recorders (one per shard/machine) when either
// telemetry output is requested, else a nil slice.
func (f *Flags) NewRecorders(n int) []*telemetry.Recorder {
	if !f.TelemetryEnabled() {
		return nil
	}
	recs := make([]*telemetry.Recorder, n)
	for i := range recs {
		recs[i] = telemetry.NewRecorder(telemetry.DefaultEventCap)
	}
	return recs
}

// NewRegistry returns a metrics registry when -metrics was given, else
// nil.
func (f *Flags) NewRegistry() *telemetry.Registry {
	if *f.metrics == "" {
		return nil
	}
	return telemetry.NewRegistry()
}

// WriteTrace writes the given traces to the -trace path (merging
// multiple traces into one Chrome export, one process per trace). No-op
// when -trace was not given.
func (f *Flags) WriteTrace(traces ...*telemetry.Trace) error {
	if *f.trace == "" {
		return nil
	}
	return telemetry.WriteTraceFiles(*f.trace, traces...)
}

// WriteMetrics writes reg to the -metrics path. No-op when -metrics was
// not given.
func (f *Flags) WriteMetrics(reg *telemetry.Registry) error {
	if *f.metrics == "" {
		return nil
	}
	return telemetry.WriteMetricsFile(*f.metrics, reg)
}
