// Package runflags bundles the observability flags every driver binary
// shares — -trace, -metrics, -cpuprofile, -memprofile, and the live ops
// surface's -ops-listen / -sample-every / -flight — together with the
// recorder/registry/server construction and file write-out they imply,
// so cmd/simulate, cmd/figures, cmd/loadgen and cmd/chaos plumb one
// helper instead of four copies of the same boilerplate.
package runflags

import (
	"flag"
	"fmt"
	"os"
	"time"

	"memverify/internal/obs"
	"memverify/internal/profiling"
	"memverify/internal/telemetry"
)

// Flags holds the registered observability flag values. Construct with
// Add before flag.Parse; read only after it.
type Flags struct {
	trace       *string
	metrics     *string
	opsListen   *string
	sampleEvery *time.Duration
	flight      *string
	prof        *profiling.Flags
}

// Add registers -trace and -metrics on the default flag set, plus
// -cpuprofile / -memprofile via internal/profiling and the live ops
// flags -ops-listen, -sample-every and -flight. Call before flag.Parse.
func Add() *Flags {
	return &Flags{
		trace:   flag.String("trace", "", "write a Chrome trace-event JSON of the run (open in Perfetto)"),
		metrics: flag.String("metrics", "", "write a deterministic JSON metrics snapshot of the run"),
		opsListen: flag.String("ops-listen", "",
			"serve live ops HTTP on this address (/metrics, /vars, /healthz, /readyz, /flightrecord, /trace, /debug/pprof); use 127.0.0.1:0 for an ephemeral port"),
		sampleEvery: flag.Duration("sample-every", obs.DefaultSampleEvery,
			"telemetry sampling interval for the ops server's windowed rates"),
		flight: flag.String("flight", "",
			"dump the flight recorder (violations, checkpoints, recoveries) to this JSON file on exit"),
		prof: profiling.AddFlags(),
	}
}

// TracePath / MetricsPath return the flag values ("" when unset).
func (f *Flags) TracePath() string   { return *f.trace }
func (f *Flags) MetricsPath() string { return *f.metrics }

// OpsListen returns the -ops-listen address ("" when the ops surface is
// disabled); SampleEvery the -sample-every interval; FlightPath the
// -flight dump path ("" when disabled).
func (f *Flags) OpsListen() string          { return *f.opsListen }
func (f *Flags) SampleEvery() time.Duration { return *f.sampleEvery }
func (f *Flags) FlightPath() string         { return *f.flight }

// OpsEnabled reports whether the live ops surface was requested. When
// false, no server, sampler or flight recorder is constructed — the
// disabled path stays allocation-free.
func (f *Flags) OpsEnabled() bool { return *f.opsListen != "" }

// NewFlightRecorder returns a flight recorder when either the ops server
// or a -flight dump was requested, else nil (Record on nil is free).
func (f *Flags) NewFlightRecorder() *obs.FlightRecorder {
	if *f.opsListen == "" && *f.flight == "" {
		return nil
	}
	return obs.NewFlightRecorder(obs.DefaultFlightEvents)
}

// DumpFlight writes the recorder to the -flight path (no-op when the
// flag is unset), logging rather than failing the run on error — the
// dump is post-mortem evidence, not an output artifact.
func (f *Flags) DumpFlight(fr *obs.FlightRecorder) {
	if *f.flight == "" {
		return
	}
	if err := fr.DumpFile(*f.flight); err != nil {
		fmt.Fprintln(os.Stderr, "flight dump:", err)
	}
}

// StartOps starts the ops HTTP server when -ops-listen was given,
// completing opts with the flag-derived listen address and sampling
// interval and logging the bound URL to stderr. Returns nil (with no
// error) when the surface is disabled — every obs.Server method is
// nil-safe, so callers thread the result unconditionally.
func (f *Flags) StartOps(opts obs.Options) (*obs.Server, error) {
	if *f.opsListen == "" {
		return nil, nil
	}
	opts.Listen = *f.opsListen
	opts.SampleEvery = *f.sampleEvery
	if opts.Logf == nil {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	return obs.Start(opts)
}

// TelemetryEnabled reports whether either telemetry output was requested
// — the condition under which a run needs a recorder attached.
func (f *Flags) TelemetryEnabled() bool { return *f.trace != "" || *f.metrics != "" }

// StartProfiling begins CPU profiling when -cpuprofile was given and
// returns the stop function finalizing both profiles; defer it in main.
func (f *Flags) StartProfiling() (stop func(), err error) { return f.prof.Start() }

// NewRecorder returns a telemetry recorder with the default event
// capacity when either telemetry output is requested, else nil (the
// disabled fast path — attach the nil recorder freely).
func (f *Flags) NewRecorder() *telemetry.Recorder {
	if !f.TelemetryEnabled() {
		return nil
	}
	return telemetry.NewRecorder(telemetry.DefaultEventCap)
}

// NewRecorders returns n recorders (one per shard/machine) when either
// telemetry output is requested, else a nil slice.
func (f *Flags) NewRecorders(n int) []*telemetry.Recorder {
	if !f.TelemetryEnabled() {
		return nil
	}
	recs := make([]*telemetry.Recorder, n)
	for i := range recs {
		recs[i] = telemetry.NewRecorder(telemetry.DefaultEventCap)
	}
	return recs
}

// NewRegistry returns a metrics registry when -metrics was given, else
// nil.
func (f *Flags) NewRegistry() *telemetry.Registry {
	if *f.metrics == "" {
		return nil
	}
	return telemetry.NewRegistry()
}

// WriteTrace writes the given traces to the -trace path (merging
// multiple traces into one Chrome export, one process per trace). No-op
// when -trace was not given.
func (f *Flags) WriteTrace(traces ...*telemetry.Trace) error {
	if *f.trace == "" {
		return nil
	}
	return telemetry.WriteTraceFiles(*f.trace, traces...)
}

// WriteMetrics writes reg to the -metrics path. No-op when -metrics was
// not given.
func (f *Flags) WriteMetrics(reg *telemetry.Registry) error {
	if *f.metrics == "" {
		return nil
	}
	return telemetry.WriteMetricsFile(*f.metrics, reg)
}
