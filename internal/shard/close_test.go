package shard

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"memverify/internal/core"
	"memverify/internal/telemetry"
)

// TestCloseRacesSubmittersAndSampler is the teardown-ordering pin for the
// network-service path: many goroutines submitting batches and a sampler
// snapshotting metrics while Close lands mid-flight. Under -race this
// catches double-close and send-on-closed-queue; functionally it asserts
// every batch either completes clean or reports ErrClosed — never panics
// or hangs — and that metrics stay readable afterwards.
func TestCloseRacesSubmittersAndSampler(t *testing.T) {
	for round := 0; round < 4; round++ {
		s, err := New(Config{Machine: storeCfg(core.SchemeCached), Shards: 4, QueueDepth: 4})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})

		// Submitters: small batches over the whole span, racing the close.
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				buf := bytes.Repeat([]byte{byte(w)}, 128)
				got := make([]byte, 128)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					b := s.NewBatch()
					off := uint64(w*1024+i*64) % s.Span()
					b.Store(off, buf)
					b.Load(off, got)
					if err := b.Wait(); err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("worker %d: unexpected batch error: %v", w, err)
						}
						return
					}
				}
			}(w)
		}
		// Sampler: the obs.Server fill path, snapshotting during close.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				reg := telemetry.NewRegistry()
				s.FillRegistry(reg)
				_, _, _ = s.Health()
			}
		}()

		time.Sleep(2 * time.Millisecond)
		s.Close()
		close(stop)
		wg.Wait()

		// Post-close the store must still answer samplers.
		if agg := s.Metrics(); agg.Shards != 4 {
			t.Fatalf("post-close aggregate shard count %d", agg.Shards)
		}
		if err := s.StoreBytes(0, []byte{1}); !errors.Is(err, ErrClosed) {
			t.Fatalf("post-close submit: %v, want ErrClosed", err)
		}
	}
}

// TestConcurrentClose: Close from many goroutines at once is idempotent
// and every call returns only after the workers exited.
func TestConcurrentClose(t *testing.T) {
	s, err := New(Config{Machine: storeCfg(core.SchemeCached), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Close()
		}()
	}
	wg.Wait()
	for _, w := range s.shards {
		select {
		case <-w.exited:
		default:
			t.Fatal("Close returned before worker exit")
		}
	}
}

// TestTrySubmitBusy pins the queue-full pushback contract: with a shard's
// worker wedged and its queue full, TryStore returns ErrBusy immediately
// (nothing enqueued), and succeeds again once the queue drains.
func TestTrySubmitBusy(t *testing.T) {
	const depth = 4
	s, err := New(Config{Machine: storeCfg(core.SchemeCached), Shards: 2, QueueDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Wedge shard 0's worker on a control call so the queue backs up.
	started := make(chan struct{})
	gate := make(chan struct{})
	blocked := make(chan struct{})
	go func() {
		s.WithShard(0, func(*core.Machine) {
			close(started)
			<-gate
		})
		close(blocked)
	}()
	<-started

	// Fill shard 0's queue to capacity behind the wedged call.
	fill := s.NewBatch()
	for i := 0; i < depth; i++ {
		if err := fill.TryStore(uint64(i*64), []byte{byte(i)}); err != nil {
			t.Fatalf("fill op %d rejected with room in the queue: %v", i, err)
		}
	}

	b := s.NewBatch()
	start := time.Now()
	if err := b.TryStore(0, []byte{0xAA}); !errors.Is(err, ErrBusy) {
		t.Fatalf("TryStore on full queue: %v, want ErrBusy", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("ErrBusy took %v; pushback must not block", d)
	}
	if err := b.Wait(); err != nil {
		t.Fatalf("empty batch after ErrBusy: %v (ErrBusy must enqueue nothing)", err)
	}

	// Shard 1 is idle: pushback is per-shard, not store-wide.
	if err := b.TryStore(s.ShardSpan(), []byte{0xBB}); err != nil {
		t.Fatalf("TryStore on idle neighbor shard: %v", err)
	}
	if err := b.Wait(); err != nil {
		t.Fatal(err)
	}

	close(gate)
	<-blocked
	if err := fill.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := b.TryStore(0, []byte{0xCC}); err != nil {
		t.Fatalf("TryStore after drain: %v", err)
	}
	if err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	var got [1]byte
	if err := s.LoadBytes(0, got[:]); err != nil || got[0] != 0xCC {
		t.Fatalf("post-drain readback: %v, byte %#x", err, got[0])
	}
}
