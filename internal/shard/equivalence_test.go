package shard

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"memverify/internal/core"
)

// TestCrossShardEquivalence replays one operation log against a sharded
// store and a single reference machine for every scheme, hash-execution
// mode and shard count: per-operation results and the final region
// contents must be byte-identical regardless of how the region is
// partitioned. Offsets stay below both spans so the two address maps
// never alias differently.
func TestCrossShardEquivalence(t *testing.T) {
	schemes := []core.Scheme{core.SchemeNaive, core.SchemeCached, core.SchemeMulti, core.SchemeIncr}
	modes := []string{"full", "timing", "memo"}
	counts := []int{1, 2, 8}
	for _, scheme := range schemes {
		for _, mode := range modes {
			for _, n := range counts {
				t.Run(fmt.Sprintf("%s/%s/n%d", scheme, mode, n), func(t *testing.T) {
					cfg := storeCfg(scheme)
					cfg.HashMode = mode
					s, err := New(Config{Machine: cfg, Shards: n})
					if err != nil {
						t.Fatal(err)
					}
					defer s.Close()
					ref, err := core.NewMachine(cfg)
					if err != nil {
						t.Fatal(err)
					}

					span := s.Span()
					if rs := ref.ProgSpan(); rs < span {
						span = rs
					}
					rng := rand.New(rand.NewSource(7))
					for op := 0; op < 150; op++ {
						length := 1 + rng.Intn(300)
						off := rng.Uint64() % (span - uint64(length))
						if rng.Intn(2) == 0 {
							p := make([]byte, length)
							rng.Read(p)
							if err := s.StoreBytes(off, p); err != nil {
								t.Fatalf("op %d: store %v", op, err)
							}
							if err := ref.StoreBytes(off, p); err != nil {
								t.Fatalf("op %d: ref store %v", op, err)
							}
							continue
						}
						got := make([]byte, length)
						want := make([]byte, length)
						if err := s.LoadBytes(off, got); err != nil {
							t.Fatalf("op %d: load %v", op, err)
						}
						if err := ref.LoadBytes(off, want); err != nil {
							t.Fatalf("op %d: ref load %v", op, err)
						}
						if !bytes.Equal(got, want) {
							t.Fatalf("op %d: read at %d diverged", op, off)
						}
					}

					if err := s.Flush(); err != nil {
						t.Fatal(err)
					}
					ref.Flush()
					got := make([]byte, span)
					want := make([]byte, span)
					if err := s.LoadBytes(0, got); err != nil {
						t.Fatal(err)
					}
					if err := ref.LoadBytes(0, want); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("final contents diverge at %d (shard %d)", i, s.ShardFor(uint64(i)))
							}
						}
					}
					if vs := s.Violations(); len(vs) != 0 {
						t.Fatalf("clean replay produced %d violations", len(vs))
					}
				})
			}
		}
	}
}

// TestConcurrentSubmittersConverge drives the store from many goroutines
// over disjoint stripes, then checks the contents against each stripe's
// mirror — the pipelined path must end at the same bytes the serial
// bookkeeping predicts.
func TestConcurrentSubmittersConverge(t *testing.T) {
	s, err := New(Config{Machine: storeCfg(core.SchemeCached), Shards: 4, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const workers = 8
	span := s.Span()
	stripe := span / workers
	mirrors := make([][]byte, workers)
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			base := uint64(w) * stripe
			mirror := make([]byte, stripe)
			mirrors[w] = mirror
			rng := rand.New(rand.NewSource(int64(100 + w)))
			b := s.NewBatch()
			for op := 0; op < 60; op++ {
				length := 1 + rng.Intn(256)
				off := rng.Uint64() % (stripe - uint64(length))
				p := make([]byte, length)
				rng.Read(p)
				b.Store(base+off, p)
				copy(mirror[off:], p)
				if op%10 == 9 { // pipeline in bursts of 10
					if err := b.Wait(); err != nil {
						done <- err
						return
					}
				}
			}
			done <- b.Wait()
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := s.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		got := make([]byte, stripe)
		if err := s.LoadBytes(uint64(w)*stripe, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, mirrors[w]) {
			t.Fatalf("stripe %d diverged from its mirror", w)
		}
	}
}
