// Package shard provides a concurrent, sharded verification store: a
// protected region partitioned across N independent core.Machine
// instances, each with its own hash tree, L2, bus and DRAM, fronted by a
// router that maps addresses to shards. Every shard is driven by a single
// worker goroutine draining a bounded request queue, which preserves the
// machines' single-threaded contract while letting callers submit
// asynchronously and pipeline across shards.
//
// The model is the natural scale-out of the paper's single-machine design:
// each shard verifies a smaller region, so its tree is shallower and its
// (private) L2 holds a larger fraction of the tree — the cache-ability
// lever of §5.3 applied per shard. Aggregated metrics sum the per-shard
// counters and recompute derived rates, mirroring how the paper reports a
// single machine.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"memverify/internal/cache"
	"memverify/internal/core"
	"memverify/internal/integrity"
	"memverify/internal/stats"
	"memverify/internal/telemetry"
)

// Config describes a sharded store. Machine is the template configuration:
// its ProtectedBytes is the TOTAL protected size, divided evenly across
// Shards (so each machine protects ProtectedBytes/Shards and the benchmark
// footprint must fit in one shard's region). The template must be
// functional — the store serves real bytes.
type Config struct {
	Machine core.Config

	// Shards is the number of independent machines (>= 1).
	Shards int

	// QueueDepth bounds each shard's request queue; submits block when the
	// queue is full (backpressure). Defaults to 64.
	QueueDepth int

	// Recorders, when non-nil, attaches one telemetry recorder per shard
	// (len must equal Shards). Each shard's trace renders as its own
	// process in the merged Chrome export (telemetry.WriteChromeTraces).
	Recorders []*telemetry.Recorder

	// OnViolation, when set, fires once per detected violation with the
	// shard it hit, the violation itself and whether the halt policy took
	// the shard down. It runs on the detecting shard's worker goroutine
	// (outside the store lock) and must not call back into the store —
	// it exists so a driver can feed a flight recorder the moment the
	// evidence appears rather than at end of run.
	OnViolation func(shard int, v *integrity.ViolationError, halted bool)
}

// Violation is one detected integrity violation attributed to a shard.
type Violation struct {
	Shard int
	Err   *integrity.ViolationError
}

// request is one unit of work on a shard's queue: either a byte transfer
// belonging to a Batch, or a control call with its own completion channel.
type request struct {
	off   uint64
	data  []byte
	write bool
	batch *Batch

	call func(*core.Machine) error
	done chan<- error
}

type worker struct {
	s      *Store
	idx    int
	m      *core.Machine
	reqs   chan request
	exited chan struct{}
}

// ErrClosed is reported (wrapped with the target shard) by operations
// submitted after — or racing with — Close. A network front-end sees it
// when a request lands on a store that is shutting down.
var ErrClosed = errors.New("store closed")

// ErrBusy is reported by TryLoad/TryStore when the target shard's bounded
// queue is full: nothing was enqueued and the caller may retry or shed the
// operation. It is the queue-full pushback a slow client is mapped onto.
var ErrBusy = errors.New("shard queue full")

// Store routes byte operations across the shards and aggregates their
// results. Submits, barriers and Close may run from many goroutines:
// operations racing with Close either complete normally or fail with
// ErrClosed — they never panic or write to a closed queue.
type Store struct {
	shards    []*worker
	shardSpan uint64 // bytes of program data per shard
	span      uint64 // total program data bytes
	halt      bool   // template policy is "halt"
	spec      bool   // template runs the speculative pipeline

	// closeMu orders queue sends against Close: senders hold it for read
	// around the channel send, Close holds it for write while flipping
	// closed and closing the queues, so a send never races the close.
	closeMu sync.RWMutex
	closed  bool

	ops   atomic.Uint64
	bytes atomic.Uint64

	onViolation func(shard int, v *integrity.ViolationError, halted bool)

	mu         sync.Mutex
	violations []Violation
	halted     []bool
}

// New assembles a store of cfg.Shards machines. Shard i owns global
// offsets [i*ShardSpan, (i+1)*ShardSpan).
func New(cfg Config) (*Store, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: need at least one shard, got %d", cfg.Shards)
	}
	if !cfg.Machine.Functional {
		return nil, fmt.Errorf("shard: the store serves real bytes; Machine.Functional is required")
	}
	if cfg.Recorders != nil && len(cfg.Recorders) != cfg.Shards {
		return nil, fmt.Errorf("shard: %d recorders for %d shards", len(cfg.Recorders), cfg.Shards)
	}
	per := cfg.Machine
	per.ProtectedBytes = cfg.Machine.ProtectedBytes / uint64(cfg.Shards)
	if per.ProtectedBytes == 0 {
		return nil, fmt.Errorf("shard: %d bytes split %d ways leaves nothing to protect",
			cfg.Machine.ProtectedBytes, cfg.Shards)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 64
	}

	s := &Store{
		shards:      make([]*worker, cfg.Shards),
		halt:        cfg.Machine.ViolationPolicy == "halt",
		spec:        cfg.Machine.Speculative,
		halted:      make([]bool, cfg.Shards),
		onViolation: cfg.OnViolation,
	}
	for i := range s.shards {
		c := per
		if cfg.Recorders != nil {
			// A distinct benchmark name per shard names the trace process.
			c.Telemetry = cfg.Recorders[i]
			c.Benchmark.Name = fmt.Sprintf("%s.s%d", per.Benchmark.Name, i)
		}
		m, err := core.NewMachine(c)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		i := i
		m.ObserveViolations(func(v *integrity.ViolationError) { s.noteViolation(i, v) })
		s.shards[i] = &worker{s: s, idx: i, m: m, reqs: make(chan request, depth), exited: make(chan struct{})}
	}
	s.shardSpan = s.shards[0].m.ProgSpan()
	s.span = s.shardSpan * uint64(cfg.Shards)
	for _, w := range s.shards {
		go w.run()
	}
	return s, nil
}

// run drains one shard's queue on its dedicated goroutine — the only
// goroutine that ever touches the shard's machine while the store is open.
func (w *worker) run() {
	defer close(w.exited)
	for req := range w.reqs {
		if req.call != nil {
			req.done <- req.call(w.m)
			continue
		}
		var err error
		if req.write {
			err = w.m.StoreBytes(req.off, req.data)
		} else {
			err = w.m.LoadBytes(req.off, req.data)
		}
		if err != nil {
			req.batch.note(w.s.wrap(w.idx, err))
		}
		req.batch.wg.Done()
	}
}

// noteViolation is every machine's violation observer; it runs on the
// owning shard's worker goroutine. The OnViolation hook fires after the
// store lock is released.
func (s *Store) noteViolation(i int, v *integrity.ViolationError) {
	s.mu.Lock()
	s.violations = append(s.violations, Violation{Shard: i, Err: v})
	if s.halt {
		s.halted[i] = true
	}
	s.mu.Unlock()
	if s.onViolation != nil {
		s.onViolation(i, v, s.halt)
	}
}

// Shards returns the shard count; Span the total program data bytes;
// ShardSpan the bytes each shard serves.
func (s *Store) Shards() int       { return len(s.shards) }
func (s *Store) Span() uint64      { return s.span }
func (s *Store) ShardSpan() uint64 { return s.shardSpan }

// ShardFor returns the shard owning global offset off (offsets wrap
// modulo Span, mirroring Machine.ProgAddr).
func (s *Store) ShardFor(off uint64) int { return int((off % s.span) / s.shardSpan) }

// ShardRange returns the global offset range [lo, hi) shard i owns.
func (s *Store) ShardRange(i int) (lo, hi uint64) {
	return uint64(i) * s.shardSpan, uint64(i+1) * s.shardSpan
}

// Batch collects asynchronously submitted operations; Wait blocks for all
// of them and returns their joined errors. A batch may be reused after
// Wait returns. Operations on the same address (same shard) complete in
// submission order; operations on different shards are concurrent.
type Batch struct {
	s  *Store
	wg sync.WaitGroup

	mu      sync.Mutex
	errs    []error
	touched []bool // shards this batch has submitted to since the last Wait
}

// NewBatch starts an empty batch.
func (s *Store) NewBatch() *Batch {
	return &Batch{s: s, touched: make([]bool, len(s.shards))}
}

func (b *Batch) note(err error) {
	b.mu.Lock()
	b.errs = append(b.errs, err)
	b.mu.Unlock()
}

// Load submits a verified read of len(p) bytes at global offset off. p
// must stay untouched until Wait returns. If the store is closed the
// failure surfaces (wrapped ErrClosed) from Wait.
func (b *Batch) Load(off uint64, p []byte) { b.s.submit(b, off, p, false) }

// Store submits a write of p at global offset off.
func (b *Batch) Store(off uint64, p []byte) { b.s.submit(b, off, p, true) }

// TryLoad is Load without blocking on a full queue: if the first target
// shard's queue cannot take the request immediately it returns ErrBusy
// and nothing is enqueued — the caller may retry or shed. Once the first
// span is accepted, spans spilling into neighbor shards submit normally
// (blocking), so an accepted operation always completes. A closed store
// returns the wrapped ErrClosed (also recorded in the batch).
func (b *Batch) TryLoad(off uint64, p []byte) error { return b.s.trySubmit(b, off, p, false) }

// TryStore is Store with TryLoad's queue-full semantics.
func (b *Batch) TryStore(off uint64, p []byte) error { return b.s.trySubmit(b, off, p, true) }

// Wait blocks until every submitted operation completed and returns the
// joined per-shard errors (each wrapped with the shard that produced it;
// errors.Is(err, core.ErrHalted) still works through the wrapping). When
// the store runs the speculative pipeline, Wait is also an epoch barrier:
// it joins a Machine.Barrier on every shard this batch touched, so any
// violation a speculatively delivered load deferred surfaces here rather
// than silently escaping the batch.
func (b *Batch) Wait() error {
	b.wg.Wait()
	b.mu.Lock()
	errs := b.errs
	b.errs = nil
	var joins []int
	if b.s.spec {
		for i, t := range b.touched {
			if t {
				joins = append(joins, i)
				b.touched[i] = false
			}
		}
	}
	b.mu.Unlock()
	for _, i := range joins {
		sh := i
		if err := b.s.do(sh, func(m *core.Machine) error { return m.Barrier() }); err != nil {
			errs = append(errs, b.s.wrap(sh, err))
		}
	}
	return errors.Join(errs...)
}

// send enqueues req on shard i, blocking while the queue is full. It
// returns ErrClosed (and enqueues nothing) if the store closed first; it
// never writes to a closed channel because Close flips the flag and
// closes the queues under the write lock.
func (s *Store) send(i int, req request) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	s.shards[i].reqs <- req
	return nil
}

// trySend is send without blocking: a full queue returns ErrBusy.
func (s *Store) trySend(i int, req request) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	select {
	case s.shards[i].reqs <- req:
		return nil
	default:
		return ErrBusy
	}
}

// submit routes one operation, splitting spans that cross shard
// boundaries. Blocks when a target queue is full (backpressure). A closed
// store records the wrapped ErrClosed in the batch (surfacing from Wait)
// and drops the remaining spans.
func (s *Store) submit(b *Batch, off uint64, p []byte, write bool) {
	s.ops.Add(1)
	s.bytes.Add(uint64(len(p)))
	for len(p) > 0 {
		off %= s.span
		sh := int(off / s.shardSpan)
		local := off - uint64(sh)*s.shardSpan
		n := s.shardSpan - local
		if n > uint64(len(p)) {
			n = uint64(len(p))
		}
		b.wg.Add(1)
		if s.spec {
			b.mu.Lock()
			b.touched[sh] = true
			b.mu.Unlock()
		}
		if err := s.send(sh, request{off: local, data: p[:n:n], write: write, batch: b}); err != nil {
			b.wg.Done()
			b.note(s.wrap(sh, err))
			return
		}
		off += n
		p = p[n:]
	}
}

// trySubmit implements TryLoad/TryStore: the first span must be accepted
// without blocking (ErrBusy means nothing happened), the rest submit
// normally.
func (s *Store) trySubmit(b *Batch, off uint64, p []byte, write bool) error {
	first := true
	total := uint64(len(p))
	for len(p) > 0 {
		off %= s.span
		sh := int(off / s.shardSpan)
		local := off - uint64(sh)*s.shardSpan
		n := s.shardSpan - local
		if n > uint64(len(p)) {
			n = uint64(len(p))
		}
		b.wg.Add(1)
		if s.spec {
			b.mu.Lock()
			b.touched[sh] = true
			b.mu.Unlock()
		}
		req := request{off: local, data: p[:n:n], write: write, batch: b}
		var err error
		if first {
			err = s.trySend(sh, req)
		} else {
			err = s.send(sh, req)
		}
		if err != nil {
			b.wg.Done()
			if first && errors.Is(err, ErrBusy) {
				return ErrBusy
			}
			werr := s.wrap(sh, err)
			b.note(werr)
			return werr
		}
		if first {
			s.ops.Add(1)
			s.bytes.Add(total)
			first = false
		}
		off += n
		p = p[n:]
	}
	return nil
}

// LoadBytes is the synchronous form of Batch.Load: submit, wait, return.
func (s *Store) LoadBytes(off uint64, p []byte) error {
	b := s.NewBatch()
	b.Load(off, p)
	return b.Wait()
}

// StoreBytes is the synchronous form of Batch.Store.
func (s *Store) StoreBytes(off uint64, p []byte) error {
	b := s.NewBatch()
	b.Store(off, p)
	return b.Wait()
}

// do runs f on shard i's worker goroutine and returns its error. After
// Close the workers are gone and f runs directly — the store stays
// readable for metrics; the exited wait makes the inline run safe even
// when do races the close (the worker has fully drained by then).
func (s *Store) do(i int, f func(*core.Machine) error) error {
	done := make(chan error, 1)
	if err := s.send(i, request{call: f, done: done}); err != nil {
		<-s.shards[i].exited
		return f(s.shards[i].m)
	}
	return <-done
}

// doAll runs f on every shard concurrently (or directly, after Close) and
// joins the per-shard errors, each wrapped with its shard index.
func (s *Store) doAll(f func(int, *core.Machine) error) error {
	n := len(s.shards)
	errs := make([]error, n)
	dones := make([]chan error, n)
	for i, w := range s.shards {
		i, m := i, w.m
		dones[i] = make(chan error, 1)
		if err := s.send(i, request{call: func(*core.Machine) error { return f(i, m) }, done: dones[i]}); err != nil {
			<-w.exited
			dones[i] <- f(i, m)
		}
	}
	for i := range dones {
		errs[i] = s.wrap(i, <-dones[i])
	}
	return errors.Join(errs...)
}

func (s *Store) wrap(i int, err error) error {
	if err == nil {
		return nil
	}
	lo, hi := s.ShardRange(i)
	return fmt.Errorf("shard %d [%#x,%#x): %w", i, lo, hi, err)
}

// Barrier runs Machine.Barrier on every shard concurrently and joins the
// results: it blocks until no shard has an outstanding speculative check,
// ends each shard's epoch, and returns the first deferred violation of
// each shard that had one (wrapped with its shard index). In blocking
// mode it is a cheap no-op epoch advance.
func (s *Store) Barrier() error {
	return s.doAll(func(_ int, m *core.Machine) error { return m.Barrier() })
}

// Flush drains every shard's dirty cached state through its engine — the
// cross-shard cryptographic barrier (§5.8 per shard, all shards reaching
// it before Flush returns).
func (s *Store) Flush() error {
	return s.doAll(func(_ int, m *core.Machine) error {
		m.Flush()
		return nil
	})
}

// VerifyAll flushes and then re-reads every protected block of every
// shard through the verification engine. A violation (or a halted shard)
// surfaces as that shard's wrapped error; healthy shards verify clean
// regardless — one halted shard never wedges its neighbors.
func (s *Store) VerifyAll() error {
	return s.doAll(func(_ int, m *core.Machine) error {
		m.Flush()
		bs := uint64(m.Cfg.L2Block)
		buf := make([]byte, bs)
		span := m.ProgSpan()
		for off := uint64(0); off < span; off += bs {
			n := bs
			if off+n > span {
				n = span - off
			}
			if err := m.LoadBytes(off, buf[:n]); err != nil {
				return err
			}
		}
		// Speculatively delivered re-reads defer their verdicts; the
		// epoch barrier forces every outstanding check to resolve so a
		// tampered shard cannot verify clean.
		if m.Cfg.Speculative {
			return m.Barrier()
		}
		return nil
	})
}

// WithShard runs f against shard i's machine on that shard's worker
// goroutine, after every previously enqueued request on that shard has
// drained — the safe way to attach an adversary or inspect machine state
// while the store is live.
func (s *Store) WithShard(i int, f func(*core.Machine)) {
	_ = s.do(i, func(m *core.Machine) error { f(m); return nil })
}

// Violations returns every violation detected so far, in detection order,
// each attributed to its shard.
func (s *Store) Violations() []Violation {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Violation, len(s.violations))
	copy(out, s.violations)
	return out
}

// Halted reports whether shard i tripped the halt policy.
func (s *Store) Halted(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.halted[i]
}

// Health returns the store's liveness counts: total shards, shards the
// halt policy took down, and violations on record. Safe to call from any
// goroutine while the store serves — the /healthz source.
func (s *Store) Health() (shards, haltedShards, violations int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, h := range s.halted {
		if h {
			haltedShards++
		}
	}
	return len(s.shards), haltedShards, len(s.violations)
}

// Close shuts the workers down after draining their queues and waits for
// them to exit. The store stays readable for metrics (do/doAll run
// inline); further submits fail with ErrClosed via Batch.Wait. Close is
// idempotent and safe to race with submits, barriers and samplers: a
// racing operation either lands before the close (and drains) or observes
// ErrClosed — never a send on a closed queue.
func (s *Store) Close() {
	s.closeMu.Lock()
	already := s.closed
	s.closed = true
	if !already {
		for _, w := range s.shards {
			close(w.reqs)
		}
	}
	s.closeMu.Unlock()
	for _, w := range s.shards {
		<-w.exited
	}
}

// Aggregate is the store-wide view of the per-shard metrics.
type Aggregate struct {
	Shards   int
	PerShard []core.Metrics
	// Total sums the per-shard counters and recomputes derived rates
	// (core.MergeMetrics); cycles are total machine-cycles of work, not
	// wall time — the shards' clocks are independent.
	Total core.Metrics
	// PathExtras merges the shards' read-path extra-blocks histograms
	// (nil when no shard observed a verified read path).
	PathExtras *stats.Histogram
	// OpsSubmitted and BytesSubmitted count caller-level operations
	// (before boundary splitting).
	OpsSubmitted   uint64
	BytesSubmitted uint64
}

// Metrics snapshots every shard (on its own worker, so in-flight requests
// drain first) and aggregates.
func (s *Store) Metrics() Aggregate {
	n := len(s.shards)
	per := make([]core.Metrics, n)
	hists := make([]*stats.Histogram, n)
	_ = s.doAll(func(i int, m *core.Machine) error {
		per[i] = m.Snapshot()
		if h := m.Sys.PathExtras; h != nil {
			hists[i] = h.Clone()
		}
		return nil
	})
	agg := Aggregate{
		Shards:         n,
		PerShard:       per,
		Total:          core.MergeMetrics(per...),
		OpsSubmitted:   s.ops.Load(),
		BytesSubmitted: s.bytes.Load(),
	}
	for _, h := range hists {
		if h == nil {
			continue
		}
		if agg.PathExtras == nil {
			agg.PathExtras = h
		} else {
			agg.PathExtras.Merge(h)
		}
	}
	return agg
}

// FillRegistry snapshots every shard into reg and returns the aggregate.
// Counters, histograms and series accumulate across shards (in shard
// order, so the output is deterministic); the scalar gauges are then
// overwritten with store-wide values so they describe the whole store
// rather than the last shard filled.
func (s *Store) FillRegistry(reg *telemetry.Registry) Aggregate {
	n := len(s.shards)
	per := make([]core.Metrics, n)
	hists := make([]*stats.Histogram, n)
	var dataLines, hashLines, totalLines uint64
	var vcLines, vcCapLines uint64
	for i := 0; i < n; i++ {
		_ = s.do(i, func(m *core.Machine) error {
			mt := m.Snapshot()
			per[i] = mt
			if h := m.Sys.PathExtras; h != nil {
				hists[i] = h.Clone()
			}
			m.FillRegistry(reg, &mt)
			dataLines += uint64(m.L2.ResidentLinesClass(cache.Data))
			hashLines += uint64(m.L2.ResidentLinesClass(cache.Hash))
			totalLines += uint64(m.Cfg.L2Size / m.Cfg.L2Block)
			if m.VC != nil {
				vcLines += uint64(m.VC.ResidentLinesClass(cache.Hash))
				vcCapLines += uint64(m.Cfg.VerifyCacheLines)
			}
			return nil
		})
	}
	agg := Aggregate{
		Shards:         n,
		PerShard:       per,
		Total:          core.MergeMetrics(per...),
		OpsSubmitted:   s.ops.Load(),
		BytesSubmitted: s.bytes.Load(),
	}
	for _, h := range hists {
		if h == nil {
			continue
		}
		if agg.PathExtras == nil {
			agg.PathExtras = h
		} else {
			agg.PathExtras.Merge(h)
		}
	}
	reg.Add("shard.count", uint64(n))
	reg.Add("shard.ops_submitted", agg.OpsSubmitted)
	reg.Add("shard.bytes_submitted", agg.BytesSubmitted)

	// Liveness: violations is a counter (the record only grows); halted
	// shards and the per-shard halt flags are levels. shard.s<i>.halted
	// gives a scrape per-shard attribution without labels.
	s.mu.Lock()
	haltedShards := 0
	for i, h := range s.halted {
		v := 0.0
		if h {
			v = 1.0
			haltedShards++
		}
		reg.SetGauge(fmt.Sprintf("shard.s%d.halted", i), v)
	}
	reg.Add("shard.violations", uint64(len(s.violations)))
	s.mu.Unlock()
	reg.SetGauge("shard.halted_shards", float64(haltedShards))

	t := &agg.Total
	reg.SetGauge("cpu.ipc", t.IPC)
	reg.SetGauge("l2.data_miss_rate", t.DataMissRate)
	reg.SetGauge("l2.hash_miss_rate", t.L2HashMissRate)
	reg.SetGauge("bus.utilization", t.BusUtilization)
	reg.SetGauge("integrity.extra_per_miss", t.ExtraPerMiss)
	// Per-shard fills leave the last shard's residency levels in the
	// gauges; overwrite them with store-wide sums.
	reg.SetGauge("l2.resident_lines_data", float64(dataLines))
	reg.SetGauge("l2.resident_lines_hash", float64(hashLines))
	if totalLines > 0 {
		reg.SetGauge("l2.hash_residency", float64(hashLines)/float64(totalLines))
	}
	if vcCapLines > 0 {
		reg.SetGauge("vc.hit_rate", t.VCHitRate)
		reg.SetGauge("vc.resident_lines", float64(vcLines))
		reg.SetGauge("vc.occupancy", float64(vcLines)/float64(vcCapLines))
	}
	if t.PrefetchStats.Issued > 0 {
		reg.SetGauge("prefetch.accuracy",
			float64(t.PrefetchStats.Useful)/float64(t.PrefetchStats.Issued))
	}
	return agg
}
