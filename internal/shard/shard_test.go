package shard

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"memverify/internal/core"
	"memverify/internal/telemetry"
	"memverify/internal/trace"
)

// storeCfg returns a quick functional template whose 2 MiB region splits
// evenly across up to 8 shards while still fitting the benchmark
// footprint in one shard.
func storeCfg(scheme core.Scheme) core.Config {
	cfg := core.DefaultConfig()
	cfg.Scheme = scheme
	cfg.Benchmark = trace.Uniform("shardtest", 32<<10)
	cfg.Benchmark.CodeSet = 4 << 10
	cfg.ProtectedBytes = 2 << 20
	cfg.L2Size = 32 << 10
	cfg.Functional = true
	if scheme == core.SchemeMulti || scheme == core.SchemeIncr {
		cfg.ChunkBlocks = 2
	}
	return cfg
}

func TestNewRejectsBadConfigs(t *testing.T) {
	good := storeCfg(core.SchemeCached)
	if _, err := New(Config{Machine: good, Shards: 0}); err == nil {
		t.Error("zero shards accepted")
	}
	nf := good
	nf.Functional = false
	if _, err := New(Config{Machine: nf, Shards: 2}); err == nil {
		t.Error("non-functional template accepted")
	}
	if _, err := New(Config{Machine: good, Shards: 2, Recorders: make([]*telemetry.Recorder, 3)}); err == nil {
		t.Error("recorder/shard count mismatch accepted")
	}
	tiny := good
	tiny.ProtectedBytes = 4
	if _, err := New(Config{Machine: tiny, Shards: 8}); err == nil {
		t.Error("empty per-shard region accepted")
	}
}

func TestShardRouting(t *testing.T) {
	s, err := New(Config{Machine: storeCfg(core.SchemeCached), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Shards() != 4 {
		t.Fatalf("Shards() = %d", s.Shards())
	}
	if s.Span() != 4*s.ShardSpan() {
		t.Fatalf("span %d != 4 * shard span %d", s.Span(), s.ShardSpan())
	}
	var prevHi uint64
	for i := 0; i < 4; i++ {
		lo, hi := s.ShardRange(i)
		if lo != prevHi || hi != lo+s.ShardSpan() {
			t.Errorf("shard %d range [%d,%d) not contiguous after %d", i, lo, hi, prevHi)
		}
		if s.ShardFor(lo) != i || s.ShardFor(hi-1) != i {
			t.Errorf("shard %d range endpoints route to %d / %d", i, s.ShardFor(lo), s.ShardFor(hi-1))
		}
		prevHi = hi
	}
	if s.ShardFor(s.Span()) != 0 {
		t.Error("offsets past the span should wrap to shard 0")
	}
}

// TestRoundTripAcrossBoundaries drives writes that stay inside one shard,
// straddle a shard boundary, and wrap past the end of the span, then
// reads the whole region back and compares against a flat mirror.
func TestRoundTripAcrossBoundaries(t *testing.T) {
	s, err := New(Config{Machine: storeCfg(core.SchemeCached), Shards: 4, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	span := s.Span()
	mirror := make([]byte, span)
	rng := rand.New(rand.NewSource(42))

	offs := []uint64{0, s.ShardSpan() - 5, 2*s.ShardSpan() - 1, span - 3}
	for i := 0; i < 64; i++ {
		offs = append(offs, rng.Uint64()%span)
	}
	for _, off := range offs {
		p := make([]byte, 1+rng.Intn(200))
		rng.Read(p)
		if err := s.StoreBytes(off, p); err != nil {
			t.Fatalf("store at %d: %v", off, err)
		}
		for i, b := range p {
			mirror[(off+uint64(i))%span] = b
		}
	}

	got := make([]byte, span)
	b := s.NewBatch()
	const chunk = 32 << 10
	for off := uint64(0); off < span; off += chunk {
		end := off + chunk
		if end > span {
			end = span
		}
		b.Load(off, got[off:end])
	}
	if err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mirror) {
		for i := range got {
			if got[i] != mirror[i] {
				t.Fatalf("contents diverge at offset %d (shard %d): got %#x want %#x",
					i, s.ShardFor(uint64(i)), got[i], mirror[i])
			}
		}
	}
}

// TestBatchOrderingPerAddress pins the pipelining contract: operations on
// one address land on one shard's FIFO queue, so a batch of writes to the
// same offset completes in submission order.
func TestBatchOrderingPerAddress(t *testing.T) {
	s, err := New(Config{Machine: storeCfg(core.SchemeCached), Shards: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b := s.NewBatch()
	for v := byte(1); v <= 50; v++ {
		b.Store(100, []byte{v})
	}
	if err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	var got [1]byte
	if err := s.LoadBytes(100, got[:]); err != nil {
		t.Fatal(err)
	}
	if got[0] != 50 {
		t.Errorf("last write wins expected 50, got %d", got[0])
	}
}

func TestVerifyAllAndMetrics(t *testing.T) {
	s, err := New(Config{Machine: storeCfg(core.SchemeCached), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p := bytes.Repeat([]byte{0x5a}, 4096)
	for i := 0; i < 4; i++ {
		lo, _ := s.ShardRange(i)
		if err := s.StoreBytes(lo, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.VerifyAll(); err != nil {
		t.Fatalf("clean store failed verification: %v", err)
	}
	agg := s.Metrics()
	if agg.Shards != 4 || len(agg.PerShard) != 4 {
		t.Fatalf("aggregate shard count %d / %d", agg.Shards, len(agg.PerShard))
	}
	if agg.Total.IntegrityStats.Checks == 0 {
		t.Error("no verifications counted after VerifyAll")
	}
	var sum uint64
	for _, mt := range agg.PerShard {
		sum += mt.IntegrityStats.Checks
	}
	if agg.Total.IntegrityStats.Checks != sum {
		t.Errorf("total checks %d != per-shard sum %d", agg.Total.IntegrityStats.Checks, sum)
	}
	if agg.Total.Violations != 0 {
		t.Errorf("clean store reports %d violations", agg.Total.Violations)
	}
	if agg.OpsSubmitted != 4 || agg.BytesSubmitted != 4*4096 {
		t.Errorf("submitted %d ops / %d bytes, want 4 / %d", agg.OpsSubmitted, agg.BytesSubmitted, 4*4096)
	}
}

// TestTamperIsolation attaches an adversary to one shard's memory under
// the halt policy: that shard must detect and halt, its neighbors must
// keep verifying clean, and the fan-in must attribute every violation to
// the tampered shard.
func TestTamperIsolation(t *testing.T) {
	cfg := storeCfg(core.SchemeCached)
	cfg.ViolationPolicy = "halt"
	s, err := New(Config{Machine: cfg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p := bytes.Repeat([]byte{0x77}, 1024)
	for i := 0; i < 4; i++ {
		lo, _ := s.ShardRange(i)
		if err := s.StoreBytes(lo, p); err != nil {
			t.Fatal(err)
		}
	}

	const victim = 2
	s.WithShard(victim, func(m *core.Machine) {
		m.EvictProtected()
		m.Adversary().Corrupt(m.ProgAddr(0), 0xFF)
	})

	lo, _ := s.ShardRange(victim)
	buf := make([]byte, 1024)
	err = s.LoadBytes(lo, buf)
	if err == nil {
		t.Fatal("tampered shard read did not fail")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("shard %d", victim)) {
		t.Errorf("error not attributed to shard %d: %v", victim, err)
	}
	if err := s.LoadBytes(lo, buf); !errors.Is(err, core.ErrHalted) {
		t.Errorf("second read on halted shard: %v, want ErrHalted", err)
	}

	for i := 0; i < 4; i++ {
		if i == victim {
			continue
		}
		nlo, _ := s.ShardRange(i)
		if err := s.LoadBytes(nlo, buf); err != nil {
			t.Errorf("neighbor shard %d false positive: %v", i, err)
		}
		if s.Halted(i) {
			t.Errorf("neighbor shard %d halted", i)
		}
	}
	if !s.Halted(victim) {
		t.Error("tampered shard not halted")
	}
	vs := s.Violations()
	if len(vs) == 0 {
		t.Fatal("no violations recorded")
	}
	for _, v := range vs {
		if v.Shard != victim {
			t.Errorf("violation attributed to shard %d, want %d", v.Shard, victim)
		}
		if v.Err == nil {
			t.Error("violation without cause")
		}
	}
	if err := s.VerifyAll(); err == nil {
		t.Error("VerifyAll succeeded with a halted shard")
	} else if !errors.Is(err, core.ErrHalted) {
		t.Errorf("VerifyAll error lost ErrHalted: %v", err)
	}
}

// TestCloseDrainsAndKeepsMetrics: Close waits for queued work, metrics
// remain readable, further submits fail with ErrClosed.
func TestCloseDrainsAndKeepsMetrics(t *testing.T) {
	s, err := New(Config{Machine: storeCfg(core.SchemeCached), Shards: 2, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := s.NewBatch()
	for i := 0; i < 32; i++ {
		b.Store(uint64(i)*64, bytes.Repeat([]byte{byte(i)}, 64))
	}
	if err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	agg := s.Metrics()
	if agg.BytesSubmitted != 32*64 {
		t.Errorf("post-close metrics lost bytes: %d", agg.BytesSubmitted)
	}
	if err := s.VerifyAll(); err != nil {
		t.Errorf("post-close VerifyAll: %v", err)
	}
	if err := s.StoreBytes(0, []byte{1}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit on closed store: %v, want ErrClosed", err)
	}
}

// TestPerShardRecorders checks the telemetry wiring: each shard renders
// as its own named process in the merged Chrome export.
func TestPerShardRecorders(t *testing.T) {
	recs := []*telemetry.Recorder{telemetry.NewRecorder(256), telemetry.NewRecorder(256)}
	s, err := New(Config{Machine: storeCfg(core.SchemeCached), Shards: 2, Recorders: recs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.StoreBytes(0, bytes.Repeat([]byte{1}, 256)); err != nil {
		t.Fatal(err)
	}
	if err := s.StoreBytes(s.ShardSpan(), bytes.Repeat([]byte{2}, 256)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTraces(&buf, recs[0].Trace, recs[1].Trace); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for i := 0; i < 2; i++ {
		want := fmt.Sprintf(`"name":"c/shardtest.s%d"`, i)
		if !strings.Contains(out, want) {
			t.Errorf("merged trace missing process %s", want)
		}
	}
	if _, err := telemetry.ValidateChromeTrace(strings.NewReader(out)); err != nil {
		t.Errorf("merged shard trace invalid: %v", err)
	}
}

// TestFillRegistryAggregates: counters accumulate across shards and the
// gauges describe the merged store.
func TestFillRegistryAggregates(t *testing.T) {
	s, err := New(Config{Machine: storeCfg(core.SchemeCached), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.StoreBytes(0, bytes.Repeat([]byte{9}, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	agg := s.FillRegistry(reg)
	var out bytes.Buffer
	if err := reg.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	j := out.String()
	if !strings.Contains(j, `"shard.count"`) {
		t.Error("registry missing shard.count")
	}
	if agg.Total.IntegrityStats.Checks == 0 {
		t.Error("aggregate lost integrity checks")
	}
}

// TestSpeculativeBatchCommit pins the async-commit contract: with a
// speculative template, Batch.Wait joins an epoch barrier on every shard
// the batch touched, so a tamper under in-flight batch traffic surfaces
// from Wait itself — never from a later unrelated operation — and the
// aggregate carries the merged pipeline counters.
func TestSpeculativeBatchCommit(t *testing.T) {
	cfg := storeCfg(core.SchemeNaive)
	cfg.Speculative = true
	s, err := New(Config{Machine: cfg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := bytes.Repeat([]byte{0x42}, 1024)
	seed := s.NewBatch()
	for i := 0; i < 4; i++ {
		lo, _ := s.ShardRange(i)
		seed.Store(lo, p)
	}
	if err := seed.Wait(); err != nil {
		t.Fatalf("clean seeding batch: %v", err)
	}

	const victim = 1
	s.WithShard(victim, func(m *core.Machine) {
		m.EvictProtected()
		m.Adversary().Corrupt(m.ProgAddr(16), 0xEE)
	})

	b := s.NewBatch()
	buf := make([][]byte, 4)
	for i := 0; i < 4; i++ {
		lo, _ := s.ShardRange(i)
		buf[i] = make([]byte, 1024)
		b.Load(lo, buf[i])
	}
	err = b.Wait()
	if err == nil {
		t.Fatal("batch over a tampered shard committed clean")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("shard %d", victim)) {
		t.Errorf("violation not attributed to shard %d: %v", victim, err)
	}
	for i := 0; i < 4; i++ {
		if i != victim && !bytes.Equal(buf[i], p) {
			t.Errorf("healthy shard %d delivered wrong bytes", i)
		}
	}

	agg := s.Metrics()
	if agg.Total.Spec.Checks == 0 {
		t.Error("aggregate lost speculative check counters")
	}
	if agg.Total.Spec.Barriers == 0 {
		t.Error("batch commits recorded no epoch barriers")
	}
	if agg.Total.Violations == 0 {
		t.Error("aggregate lost the detected violation")
	}

	// The healthy shards still verify clean afterwards.
	for i := 0; i < 4; i++ {
		if i == victim {
			continue
		}
		lo, _ := s.ShardRange(i)
		if err := s.LoadBytes(lo, make([]byte, 1024)); err != nil {
			t.Errorf("neighbor shard %d false positive after commit: %v", i, err)
		}
	}
}
