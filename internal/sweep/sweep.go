// Package sweep runs batches of independent simulations across CPU cores.
//
// The figure suite is embarrassingly parallel — every data point is one
// core.Run over its own machine, trace generator and counters — but its
// output is order-sensitive: tables, CSV rows and progress lines must come
// out in the exact order the points were submitted, regardless of which
// worker finishes first. The pool therefore separates execution from
// delivery: workers claim jobs from an atomic counter and park results in
// indexed slots, while the submitting goroutine alone walks the slots in
// submission order and fires the caller's callback. Serial and parallel
// runs of the same batch are byte-identical.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"

	"memverify/internal/core"
	"memverify/internal/telemetry"
)

// Pool executes batches of simulation configurations. The zero value is not
// usable; construct with New. A Pool carries no per-batch state and may be
// reused for any number of Run calls, but a single Pool must not run
// batches from multiple goroutines at once.
type Pool struct {
	workers int

	// Meter, when non-nil, receives live progress: one StartBatch per Run
	// and one Tick per delivered result. Ticks fire from the delivering
	// goroutine in submission order, so the progress line is deterministic
	// in count (timing text aside) for serial and parallel runs alike.
	Meter *telemetry.Meter
}

// New builds a pool. workers <= 0 selects GOMAXPROCS (all available
// cores); workers == 1 runs every batch serially on the calling goroutine,
// which is the reference behaviour the parallel path must reproduce.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the worker count the pool resolved at construction.
func (p *Pool) Workers() int { return p.workers }

// Run executes every configuration and returns the metrics in input order.
// onResult, if non-nil, observes each result in submission order — element
// i is always delivered before element i+1, from the calling goroutine —
// so streaming output (tables, CSV, progress ticks) is deterministic.
//
// The first configuration error aborts the batch: Run returns that error,
// onResult is not called for the failed index or any later one, and
// in-flight jobs are left to finish quietly. Results already delivered
// stay delivered — exactly the prefix a serial run would have produced.
func (p *Pool) Run(cfgs []core.Config, onResult func(i int, cfg core.Config, mt core.Metrics)) ([]core.Metrics, error) {
	out := make([]core.Metrics, len(cfgs))
	if len(cfgs) == 0 {
		return out, nil
	}
	p.Meter.StartBatch(len(cfgs))
	if p.workers == 1 || len(cfgs) == 1 {
		for i, cfg := range cfgs {
			mt, err := core.Run(cfg)
			if err != nil {
				return nil, err
			}
			out[i] = mt
			if onResult != nil {
				onResult(i, cfg, mt)
			}
			p.Meter.Tick()
		}
		return out, nil
	}

	errs := make([]error, len(cfgs))
	done := make([]bool, len(cfgs))
	exited := false
	var (
		mu   sync.Mutex
		cond = sync.Cond{L: &mu}
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)

	nw := p.workers
	if nw > len(cfgs) {
		nw = len(cfgs)
	}
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func() {
			defer wg.Done()
			for {
				// stop is checked before claiming, so a claimed slot is
				// always published — the invariant the consumer's wait
				// relies on. Jobs are claimed in submission order, so when
				// a failure at slot j raises stop, every slot before j has
				// already been claimed and will complete: the consumer
				// still delivers the exact prefix a serial run would have.
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(cfgs) {
					return
				}
				mt, err := core.Run(cfgs[i])
				if err != nil {
					stop.Store(true)
				}
				mu.Lock()
				out[i], errs[i], done[i] = mt, err, true
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	// Wake the consumer once the last worker leaves, so a wait on a slot
	// that will never be claimed (abort path) cannot sleep forever.
	exitWake := make(chan struct{})
	go func() {
		wg.Wait()
		mu.Lock()
		exited = true
		cond.Broadcast()
		mu.Unlock()
		close(exitWake)
	}()

	// Deliver results in submission order from this goroutine only. The
	// callback runs outside the lock so a slow Observer never blocks the
	// workers' result hand-off.
	var firstErr error
	for i := range cfgs {
		mu.Lock()
		for !done[i] && !exited {
			cond.Wait()
		}
		finished := done[i]
		err := errs[i]
		mu.Unlock()
		if !finished {
			break
		}
		if err != nil {
			firstErr = err
			break
		}
		if onResult != nil {
			onResult(i, cfgs[i], out[i])
		}
		p.Meter.Tick()
	}
	stop.Store(true)
	<-exitWake
	if firstErr == nil {
		// The consumer may have bailed on an unclaimed slot whose cause
		// was a later-indexed failure recorded by a racing worker.
		for _, e := range errs {
			if e != nil {
				firstErr = e
				break
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
