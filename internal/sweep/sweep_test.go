package sweep

import (
	"fmt"
	"reflect"
	"testing"

	"memverify/internal/core"
	"memverify/internal/trace"
)

// quickCfg returns a fast timing-only configuration whose metrics vary
// with the seed, so result misplacement is detectable.
func quickCfg(scheme core.Scheme, seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Scheme = scheme
	cfg.Benchmark = trace.Uniform(fmt.Sprintf("sweep-%d", seed), 256<<10)
	cfg.Benchmark.CodeSet = 16 << 10
	cfg.Instructions = 5_000
	cfg.Warmup = 1_000
	cfg.Seed = seed
	cfg.L2Size = 64 << 10
	return cfg
}

func batch(n int) []core.Config {
	schemes := []core.Scheme{core.SchemeBase, core.SchemeNaive, core.SchemeCached}
	cfgs := make([]core.Config, n)
	for i := range cfgs {
		cfgs[i] = quickCfg(schemes[i%len(schemes)], uint64(i+1))
	}
	return cfgs
}

// TestParallelMatchesSerial checks metrics and callback order are identical
// between one worker and many, on a batch larger than the worker count.
func TestParallelMatchesSerial(t *testing.T) {
	cfgs := batch(12)

	type event struct {
		i  int
		mt core.Metrics
	}
	run := func(workers int) ([]core.Metrics, []event) {
		var evs []event
		out, err := New(workers).Run(cfgs, func(i int, _ core.Config, mt core.Metrics) {
			evs = append(evs, event{i, mt})
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out, evs
	}

	serialOut, serialEvs := run(1)
	for _, workers := range []int{2, 4, 16} {
		parOut, parEvs := run(workers)
		if !reflect.DeepEqual(serialOut, parOut) {
			t.Errorf("workers=%d: metrics differ from serial run", workers)
		}
		if !reflect.DeepEqual(serialEvs, parEvs) {
			t.Errorf("workers=%d: callback sequence differs from serial run", workers)
		}
	}
	for i, ev := range serialEvs {
		if ev.i != i {
			t.Fatalf("callback %d delivered index %d", i, ev.i)
		}
	}
}

// TestWorkerResolution checks the worker-count knob semantics.
func TestWorkerResolution(t *testing.T) {
	if got := New(0).Workers(); got < 1 {
		t.Errorf("New(0).Workers() = %d, want >= 1", got)
	}
	if got := New(-3).Workers(); got < 1 {
		t.Errorf("New(-3).Workers() = %d, want >= 1", got)
	}
	if got := New(7).Workers(); got != 7 {
		t.Errorf("New(7).Workers() = %d, want 7", got)
	}
}

// TestEmptyBatch checks a zero-length batch completes without touching the
// callback.
func TestEmptyBatch(t *testing.T) {
	out, err := New(4).Run(nil, func(int, core.Config, core.Metrics) {
		t.Error("callback fired on empty batch")
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("Run(nil) = %v, %v", out, err)
	}
}

// TestErrorAbort checks a failing configuration surfaces its error, that
// no result at or after the failure is delivered, and that the callback
// prefix stays in submission order.
func TestErrorAbort(t *testing.T) {
	const bad = 5
	cfgs := batch(10)
	cfgs[bad].Scheme = "bogus"

	for _, workers := range []int{1, 4} {
		var delivered []int
		out, err := New(workers).Run(cfgs, func(i int, _ core.Config, _ core.Metrics) {
			delivered = append(delivered, i)
		})
		if err == nil {
			t.Fatalf("workers=%d: bad config did not fail", workers)
		}
		if out != nil {
			t.Errorf("workers=%d: got results despite error", workers)
		}
		for j, i := range delivered {
			if i != j {
				t.Fatalf("workers=%d: delivery order %v", workers, delivered)
			}
		}
		if len(delivered) > bad {
			t.Errorf("workers=%d: delivered %d results past the failing index %d",
				workers, len(delivered), bad)
		}
		if workers == 1 && len(delivered) != bad {
			t.Errorf("workers=1: delivered %d results, want the full prefix %d",
				len(delivered), bad)
		}
	}
}

// TestPoolReuse runs several batches through one pool.
func TestPoolReuse(t *testing.T) {
	p := New(4)
	cfgs := batch(4)
	first, err := p.Run(cfgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.Run(cfgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("pool reuse changed results")
	}
}
