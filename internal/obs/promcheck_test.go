package obs

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"memverify/internal/stats"
	"memverify/internal/telemetry"
)

func validate(t *testing.T, text string) (*Scrape, error) {
	t.Helper()
	return ValidateExposition(strings.NewReader(text))
}

func TestValidateExpositionAcceptsOwnOutput(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Add("a.count", 3)
	reg.SetGauge("b.level", -1.5)
	h := stats.NewHistogram(10, 100)
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	reg.MergeHistogram("c.dist", h)
	var buf bytes.Buffer
	if err := WriteExposition(&buf, reg, map[string]float64{"ops_per_sec": 12.5}); err != nil {
		t.Fatal(err)
	}
	sc, err := ValidateExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("own exposition rejected: %v\n%s", err, buf.String())
	}
	if len(sc.Families) != 4 {
		t.Errorf("families = %v, want 4", sc.Order)
	}
	if f := sc.Families["memverify_c_dist"]; f == nil || f.Type != "histogram" {
		t.Errorf("histogram family missing: %+v", sc.Order)
	}
}

func TestValidateExpositionRejections(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{
			"sample without TYPE",
			"memverify_orphan 1\n",
			"no preceding # TYPE",
		},
		{
			"TYPE without HELP",
			"# TYPE memverify_x counter\nmemverify_x 1\n",
			"TYPE but no HELP",
		},
		{
			"HELP without TYPE",
			"# HELP memverify_x h\nmemverify_x 1\n",
			"HELP but no TYPE",
		},
		{
			"duplicate TYPE",
			"# HELP memverify_x h\n# TYPE memverify_x counter\n# TYPE memverify_x counter\nmemverify_x 1\n",
			"duplicate TYPE",
		},
		{
			"duplicate sample",
			"# HELP memverify_x h\n# TYPE memverify_x counter\nmemverify_x 1\nmemverify_x 2\n",
			"duplicate sample",
		},
		{
			"illegal name",
			"# HELP memverify_x h\n# TYPE memverify_x counter\n0bad 1\n",
			"illegal metric name",
		},
		{
			"non-contiguous family",
			"# HELP memverify_a h\n# TYPE memverify_a counter\n" +
				"# HELP memverify_b h\n# TYPE memverify_b counter\n" +
				"memverify_a 1\nmemverify_b 1\nmemverify_a 2\n",
			"not contiguous",
		},
		{
			"trailing timestamp",
			"# HELP memverify_x h\n# TYPE memverify_x counter\nmemverify_x 1 1712345678\n",
			"trailing fields",
		},
		{
			"histogram buckets not cumulative",
			"# HELP memverify_h h\n# TYPE memverify_h histogram\n" +
				"memverify_h_bucket{le=\"1\"} 5\nmemverify_h_bucket{le=\"2\"} 3\n" +
				"memverify_h_bucket{le=\"+Inf\"} 5\nmemverify_h_sum 9\nmemverify_h_count 5\n",
			"cumulative bucket counts decrease",
		},
		{
			"histogram le out of order",
			"# HELP memverify_h h\n# TYPE memverify_h histogram\n" +
				"memverify_h_bucket{le=\"2\"} 1\nmemverify_h_bucket{le=\"1\"} 2\n" +
				"memverify_h_bucket{le=\"+Inf\"} 2\nmemverify_h_sum 3\nmemverify_h_count 2\n",
			"not strictly increasing",
		},
		{
			"histogram missing +Inf",
			"# HELP memverify_h h\n# TYPE memverify_h histogram\n" +
				"memverify_h_bucket{le=\"1\"} 1\nmemverify_h_sum 1\nmemverify_h_count 1\n",
			"missing le=\"+Inf\"",
		},
		{
			"histogram count mismatch",
			"# HELP memverify_h h\n# TYPE memverify_h histogram\n" +
				"memverify_h_bucket{le=\"+Inf\"} 3\nmemverify_h_sum 4\nmemverify_h_count 2\n",
			"_count 2 != +Inf bucket 3",
		},
	}
	for _, tc := range cases {
		_, err := validate(t, tc.text)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestCompareScrapes(t *testing.T) {
	base := "# HELP memverify_ops h\n# TYPE memverify_ops counter\nmemverify_ops %d\n" +
		"# HELP memverify_util h\n# TYPE memverify_util gauge\nmemverify_util %g\n"
	mk := func(t *testing.T, ops int, util float64) *Scrape {
		sc, err := ValidateExposition(strings.NewReader(
			strings.ReplaceAll(strings.ReplaceAll(base, "%d", itoa(ops)), "%g", ftoa(util))))
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	first := mk(t, 100, 0.9)
	second := mk(t, 250, 0.1)
	if err := CompareScrapes(first, second); err != nil {
		t.Errorf("advancing counter + moving gauge rejected: %v", err)
	}
	if err := CompareScrapes(second, first); err == nil {
		t.Error("backwards counter accepted")
	}

	// A counter family that disappears is a validator failure.
	onlyGauge, err := ValidateExposition(strings.NewReader(
		"# HELP memverify_util h\n# TYPE memverify_util gauge\nmemverify_util 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareScrapes(first, onlyGauge); err == nil {
		t.Error("disappearing counter family accepted")
	}
}

func itoa(v int) string     { return strconv.Itoa(v) }
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
