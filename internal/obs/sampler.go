// Package obs is the live operations surface over the simulator's
// telemetry: a periodic sampler that turns the cumulative counters of a
// telemetry.Registry into windowed rates and rolling quantiles, an HTTP
// ops server exposing Prometheus text metrics, health endpoints, pprof
// and on-demand trace capture, and a crash flight recorder that preserves
// high-significance events (violations, checkpoints, recoveries) for
// post-mortems.
//
// The layering contract: obs depends only on internal/telemetry and
// internal/stats. Drivers (cmd/loadgen and friends) glue their stores in
// through three closures — a Fill func that snapshots live counters into
// a fresh registry, a HealthFunc, and an optional trace-capture func —
// so the package never imports the engine and the engine never imports
// the package. With no ops flags set nothing here is constructed, which
// is what keeps the disabled path allocation-free.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"memverify/internal/telemetry"
)

// DefaultSampleEvery is the sampling cadence when none is configured.
const DefaultSampleEvery = time.Second

// DefaultRingPoints bounds each time-series ring: at one sample per
// second, 512 points is ~8.5 minutes of history per metric.
const DefaultRingPoints = 512

// Derived series names — the windowed signals the sampler computes on
// top of the raw counter rates. Each is a bounded ring queryable with
// Series/Latest/Quantile and exported as sampler_* gauges in /metrics.
const (
	// SeriesOpsPerSec / SeriesBytesPerSec: caller-level operation and byte
	// throughput over the last window (rate of shard.ops_submitted /
	// shard.bytes_submitted).
	SeriesOpsPerSec   = "ops_per_sec"
	SeriesBytesPerSec = "bytes_per_sec"
	// SeriesViolationsPerSec: integrity violations detected per second.
	SeriesViolationsPerSec = "violations_per_sec"
	// SeriesBusUtilization: the bus.utilization gauge, sampled.
	SeriesBusUtilization = "bus_utilization"
	// SeriesSpecWindowPeak: the speculative pipeline's high-water mark of
	// in-flight checks (spec.pending_peak, sampled as a level).
	SeriesSpecWindowPeak = "spec_window_peak"
	// SeriesCheckpointLatency / SeriesRecoveryLatency: mean nanoseconds
	// per checkpoint / recovery completed inside the window (delta of
	// persist.*_nanos over delta of completions).
	SeriesCheckpointLatency = "checkpoint_latency_nanos"
	SeriesRecoveryLatency   = "recovery_latency_nanos"
)

// Point is one sampled value.
type Point struct {
	At    time.Time
	Value float64
}

// ring is a bounded time-series buffer; the newest points win.
type ring struct {
	buf  []Point
	n    int // points ever pushed
	next int
}

func newRing(points int) *ring { return &ring{buf: make([]Point, 0, points)} }

func (r *ring) push(p Point) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, p)
	} else {
		r.buf[r.next] = p
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.n++
}

// points returns the retained points oldest-first (a copy).
func (r *ring) points() []Point {
	out := make([]Point, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Sample is one sampling round's output, delivered to OnSample.
type Sample struct {
	At      time.Time
	Elapsed time.Duration // since the previous sample (0 on the first)
	// Counters holds the cumulative counter values of this snapshot;
	// Rates their per-second deltas since the previous sample (absent on
	// the first round). Gauges are the snapshot's gauges verbatim, and
	// Derived the named series documented on the Series* constants.
	Counters map[string]uint64
	Rates    map[string]float64
	Gauges   map[string]float64
	Derived  map[string]float64
}

// Sampler periodically snapshots a live registry (via the driver's Fill
// closure) and maintains bounded per-metric time-series rings of windowed
// rates, sampled gauges and derived signals. Scraping (/metrics, /vars)
// and sampling share one mutex, so a scrape always sees a complete,
// consistent round.
type Sampler struct {
	fill   func(*telemetry.Registry)
	every  time.Duration
	points int

	// OnSample, when non-nil, receives every completed round (outside the
	// sampler lock). Set before Start. The loadgen progress line hangs off
	// this.
	OnSample func(Sample)

	now func() time.Time // injectable clock for tests

	mu           sync.Mutex
	last         *telemetry.Registry
	prevAt       time.Time
	prevCounters map[string]uint64
	series       map[string]*ring
	rounds       uint64

	startOnce sync.Once
	stopOnce  sync.Once
	stopped   atomic.Bool
	stop      chan struct{}
	done      chan struct{}
}

// NewSampler returns a sampler snapshotting through fill every interval
// (<= 0 selects DefaultSampleEvery) into rings of the given point count
// (<= 0 selects DefaultRingPoints). fill runs on the sampler goroutine
// (and on scrape-triggered SampleNow callers) and must be safe to call
// concurrently with the workload — the sharded store's FillRegistry
// routes through the shard workers, which satisfies that.
func NewSampler(fill func(*telemetry.Registry), every time.Duration, points int) *Sampler {
	if every <= 0 {
		every = DefaultSampleEvery
	}
	if points <= 0 {
		points = DefaultRingPoints
	}
	return &Sampler{
		fill:   fill,
		every:  every,
		points: points,
		now:    time.Now,
		series: map[string]*ring{},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Every returns the sampling interval.
func (s *Sampler) Every() time.Duration { return s.every }

// Start launches the ticker goroutine. Nil-safe; calling twice is a
// no-op.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			tick := time.NewTicker(s.every)
			defer tick.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-tick.C:
					s.SampleNow()
				}
			}
		}()
	})
}

// Stop halts the ticker goroutine and waits for it to exit. Nil-safe and
// idempotent. After Stop the rings and the last snapshot remain readable
// but SampleNow becomes a no-op — Fill must never run once the driver
// has started tearing its store down, even from a late scrape.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.stopped.Store(true)
	s.stopOnce.Do(func() { close(s.stop) })
	s.startOnce.Do(func() { close(s.done) }) // never started: unblock the wait
	<-s.done
}

// SampleNow performs one sampling round immediately and returns it.
// Nil-safe (returns a zero Sample); a no-op after Stop.
func (s *Sampler) SampleNow() Sample {
	if s == nil || s.fill == nil || s.stopped.Load() {
		return Sample{}
	}
	reg := telemetry.NewRegistry()
	s.fill(reg)
	at := s.now()

	s.mu.Lock()
	sm := Sample{
		At:       at,
		Counters: map[string]uint64{},
		Rates:    map[string]float64{},
		Gauges:   map[string]float64{},
		Derived:  map[string]float64{},
	}
	reg.EachCounter(func(name string, v uint64) { sm.Counters[name] = v })
	reg.EachGauge(func(name string, v float64) { sm.Gauges[name] = v })

	first := s.rounds == 0
	if !first {
		sm.Elapsed = at.Sub(s.prevAt)
	}
	sec := sm.Elapsed.Seconds()
	if !first && sec > 0 {
		for name, cur := range sm.Counters {
			prev, ok := s.prevCounters[name]
			if !ok || cur < prev {
				// A counter that appeared mid-run (or a source reset)
				// has no meaningful window; skip this round for it.
				continue
			}
			sm.Rates[name] = float64(cur-prev) / sec
		}
		sm.Derived[SeriesOpsPerSec] = sm.Rates["shard.ops_submitted"]
		sm.Derived[SeriesBytesPerSec] = sm.Rates["shard.bytes_submitted"]
		sm.Derived[SeriesViolationsPerSec] = sm.Rates["integrity.violations"]
		if dn := delta(sm.Counters, s.prevCounters, "persist.checkpoint_nanos"); dn > 0 {
			if dc := delta(sm.Counters, s.prevCounters, "persist.checkpoints"); dc > 0 {
				sm.Derived[SeriesCheckpointLatency] = float64(dn) / float64(dc)
			}
		}
		if dn := delta(sm.Counters, s.prevCounters, "persist.recovery_nanos"); dn > 0 {
			if dc := delta(sm.Counters, s.prevCounters, "persist.recoveries"); dc > 0 {
				sm.Derived[SeriesRecoveryLatency] = float64(dn) / float64(dc)
			}
		}
	}
	// Level signals exist from the first round.
	if v, ok := sm.Gauges["bus.utilization"]; ok {
		sm.Derived[SeriesBusUtilization] = v
	}
	if v, ok := sm.Counters["spec.pending_peak"]; ok {
		sm.Derived[SeriesSpecWindowPeak] = float64(v)
	}

	for name, v := range sm.Rates {
		s.push("rate."+name, Point{At: at, Value: v})
	}
	for name, v := range sm.Gauges {
		s.push("gauge."+name, Point{At: at, Value: v})
	}
	for name, v := range sm.Derived {
		s.push(name, Point{At: at, Value: v})
	}

	s.last = reg
	s.prevAt = at
	s.prevCounters = sm.Counters
	s.rounds++
	cb := s.OnSample
	s.mu.Unlock()

	if cb != nil {
		cb(sm)
	}
	return sm
}

func delta(cur, prev map[string]uint64, name string) uint64 {
	c, p := cur[name], prev[name]
	if c < p {
		return 0
	}
	return c - p
}

// push must run under s.mu.
func (s *Sampler) push(name string, p Point) {
	r, ok := s.series[name]
	if !ok {
		r = newRing(s.points)
		s.series[name] = r
	}
	r.push(p)
}

// Rounds returns the number of completed sampling rounds.
func (s *Sampler) Rounds() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rounds
}

// Series returns the retained points of the named series oldest-first
// (a copy), or nil. Raw counter rates live under "rate.<counter>",
// sampled gauges under "gauge.<gauge>", derived signals under their
// Series* names.
func (s *Sampler) Series(name string) []Point {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.series[name]
	if !ok {
		return nil
	}
	return r.points()
}

// Latest returns the newest point of the named series (ok == false when
// the series is empty or unknown).
func (s *Sampler) Latest(name string) (v float64, ok bool) {
	pts := s.Series(name)
	if len(pts) == 0 {
		return 0, false
	}
	return pts[len(pts)-1].Value, true
}

// Quantile returns the q-quantile (0 <= q <= 1, nearest-rank) over the
// named series' retained window — the "rolling quantile" of the ops
// surface. ok is false when the series is empty.
func (s *Sampler) Quantile(name string, q float64) (v float64, ok bool) {
	pts := s.Series(name)
	if len(pts) == 0 {
		return 0, false
	}
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.Value
	}
	sort.Float64s(vals)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	i := int(q * float64(len(vals)-1))
	return vals[i], true
}

// SnapshotInto merges the most recent full registry snapshot into dst and
// reports whether a snapshot existed. The merge runs under the sampler
// lock; dst must be private to the caller.
func (s *Sampler) SnapshotInto(dst *telemetry.Registry) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last == nil {
		return false
	}
	s.last.MergeInto(dst)
	return true
}

// DerivedGauges returns the sampler block for the Prometheus exposition:
// for every derived series with data, its latest value plus rolling p50
// and p99 under "<name>_p50" / "<name>_p99".
func (s *Sampler) DerivedGauges() map[string]float64 {
	out := map[string]float64{}
	if s == nil {
		return out
	}
	for _, name := range []string{
		SeriesOpsPerSec, SeriesBytesPerSec, SeriesViolationsPerSec,
		SeriesBusUtilization, SeriesSpecWindowPeak,
		SeriesCheckpointLatency, SeriesRecoveryLatency,
	} {
		if v, ok := s.Latest(name); ok {
			out[name] = v
			if p, ok := s.Quantile(name, 0.50); ok {
				out[name+"_p50"] = p
			}
			if p, ok := s.Quantile(name, 0.99); ok {
				out[name+"_p99"] = p
			}
		}
	}
	return out
}
