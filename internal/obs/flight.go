package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// FlightSchema identifies the dump layout for downstream tooling.
const FlightSchema = "memverify-flight-v1"

// Flight-recorder event kinds. The taxonomy is deliberately small: only
// state transitions an operator would page on (or want as post-mortem
// evidence) belong here — per-access events live in the telemetry trace.
const (
	// EvViolation: one detected integrity violation, attributed to its
	// shard and barrier epoch. Detail carries the engine's message.
	EvViolation = "violation"
	// EvShardHalt: a shard tripped the halt policy and stopped serving.
	EvShardHalt = "shard-halt"
	// EvBarrier: an explicit cross-shard barrier (Flush/VerifyAll/Barrier)
	// committed.
	EvBarrier = "barrier"
	// EvCheckpointIntent / EvCheckpointCommit / EvCheckpointSeal: the
	// persistence commit protocol's three externally visible transitions —
	// intent record fsynced, manifest renamed, commit record fsynced.
	EvCheckpointIntent = "checkpoint-intent"
	EvCheckpointCommit = "checkpoint-commit"
	EvCheckpointSeal   = "checkpoint-seal"
	// EvRecovery: a recovery classified (detail holds the outcome).
	EvRecovery = "recovery"
	// EvRetryExhausted: a persistence I/O operation failed even after the
	// bounded-backoff retries.
	EvRetryExhausted = "retry-exhausted"
	// EvKill: the process is dying at an injected crash point (loadgen
	// -kill-after); recorded immediately before the dump.
	EvKill = "kill"
	// EvRunStart / EvRunEnd bracket a driver's traffic phase.
	EvRunStart = "run-start"
	EvRunEnd   = "run-end"
	// EvTamper: a driver deliberately corrupted a shard (the must-fail
	// legs); present so a dump distinguishes injected faults from found
	// ones.
	EvTamper = "tamper"
	// EvCampaign: one chaos campaign's summary line.
	EvCampaign = "campaign"
	// EvSignal: the process received SIGINT/SIGTERM and is shutting down
	// gracefully; recorded before the flight dump so a signal-path dump is
	// distinguishable from a natural run end.
	EvSignal = "signal"
)

// FlightEvent is one recorded high-significance event. Shard is -1 when
// the event is not attributable to a shard; Epoch is 0 when no barrier
// epoch applies.
type FlightEvent struct {
	Seq       uint64
	WallNanos int64
	Kind      string
	Shard     int
	Epoch     uint64
	Detail    string
}

// FlightRecorder is a bounded, concurrency-safe ring of FlightEvents —
// the crash flight recorder. The newest events win. A nil recorder is the
// disabled state: Record on nil is a no-op, so drivers thread one
// unconditionally.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []FlightEvent
	seq  uint64
	now  func() time.Time
}

// DefaultFlightEvents bounds the recorder at roughly 64 KiB of retained
// evidence — enough for thousands of checkpoints around a crash.
const DefaultFlightEvents = 1024

// NewFlightRecorder returns a recorder retaining at most capacity events
// (<= 0 selects DefaultFlightEvents).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightEvents
	}
	return &FlightRecorder{ring: make([]FlightEvent, 0, capacity), now: time.Now}
}

// Record appends one event. Safe from any goroutine, and free on a nil
// recorder.
func (f *FlightRecorder) Record(kind string, shard int, epoch uint64, detail string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	ev := FlightEvent{
		Seq:       f.seq,
		WallNanos: f.now().UnixNano(),
		Kind:      kind,
		Shard:     shard,
		Epoch:     epoch,
		Detail:    detail,
	}
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, ev)
	} else {
		f.ring[f.seq%uint64(cap(f.ring))] = ev
	}
	f.seq++
	f.mu.Unlock()
}

// Events returns the retained events oldest-first (a copy). Nil-safe.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, 0, len(f.ring))
	if len(f.ring) < cap(f.ring) {
		out = append(out, f.ring...)
	} else {
		head := int(f.seq % uint64(cap(f.ring)))
		out = append(out, f.ring[head:]...)
		out = append(out, f.ring[:head]...)
	}
	return out
}

// Total returns the number of events ever recorded; Dropped how many the
// ring overwrote.
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// Dropped returns how many events the bounded ring discarded.
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq - uint64(len(f.ring))
}

// WriteJSON dumps the retained events as deterministic sorted-key JSON
// (keys sorted within every object, no map iteration). Nil-safe: a nil
// recorder writes an empty dump.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	evs := f.Events()
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pr("{\n  \"dropped\": %d,\n  \"events\": [", f.Dropped())
	for i, ev := range evs {
		if i > 0 {
			pr(",")
		}
		pr("\n    {\"detail\": %q, \"epoch\": %d, \"kind\": %q, \"seq\": %d, \"shard\": %d, \"wall_nanos\": %d}",
			ev.Detail, ev.Epoch, ev.Kind, ev.Seq, ev.Shard, ev.WallNanos)
	}
	pr("\n  ],\n  \"schema\": %q,\n  \"total\": %d\n}\n", FlightSchema, f.Total())
	return err
}

// DumpFile writes the dump to path (truncating). Nil-safe no-op when the
// recorder is nil AND path is empty; a nil recorder with a path still
// writes an empty dump so post-mortem tooling always finds a file.
func (f *FlightRecorder) DumpFile(path string) error {
	if path == "" {
		return nil
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := f.WriteJSON(file)
	cerr := file.Close()
	if werr != nil {
		return fmt.Errorf("writing flight record %s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("writing flight record %s: %w", path, cerr)
	}
	return nil
}
