package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"memverify/internal/telemetry"
)

// Options configures the ops server. Everything beyond Listen is
// optional: endpoints whose closure is absent answer 404 with a hint
// instead of being silently wrong.
type Options struct {
	// Listen is the TCP address to bind, e.g. "127.0.0.1:9090" or
	// "127.0.0.1:0" for an ephemeral port (CI uses :0 and greps the
	// logged URL).
	Listen string
	// Fill snapshots the driver's live counters into a fresh registry.
	// It runs on the sampler goroutine and on scrape handlers and must be
	// safe to call concurrently with the workload.
	Fill func(*telemetry.Registry)
	// SampleEvery / RingPoints configure the sampler (zero selects
	// DefaultSampleEvery / DefaultRingPoints). No sampler is created when
	// Fill is nil.
	SampleEvery time.Duration
	RingPoints  int
	// OnSample, when set, receives every completed sampling round — the
	// loadgen progress line.
	OnSample func(Sample)
	// Health produces liveness snapshots for /healthz and /readyz. When
	// nil both endpoints report healthy (the driver has no failure modes
	// wired).
	Health HealthFunc
	// Flight is dumped by /flightrecord. A nil recorder serves an empty
	// dump.
	Flight *FlightRecorder
	// CaptureTrace captures a bounded tail (last `cycles` simulated
	// cycles, 0 = everything retained) of the live traces for
	// /trace?cycles=N. It must do its own synchronization (the shard
	// store runs Tail on the owning workers). Nil means tracing is off.
	CaptureTrace func(cycles uint64) ([]*telemetry.Trace, error)
	// Logf, when set, receives one line per lifecycle event (listen URL,
	// shutdown). The drivers pass a stderr logger.
	Logf func(format string, args ...any)
}

// Server is the live ops surface: /metrics, /vars, /healthz, /readyz,
// /flightrecord, /trace and /debug/pprof over one listener, with the
// sampler (when configured) ticking underneath.
type Server struct {
	opts    Options
	sampler *Sampler
	ln      net.Listener
	http    *http.Server

	mu        sync.Mutex
	published *telemetry.Registry
}

// Start binds the listener, starts the sampler (when Fill is given) and
// serves in the background. The returned server's Addr reports the bound
// address.
func Start(opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", opts.Listen, err)
	}
	s, mux := NewEmbedded(opts)
	s.ln = ln
	s.http = &http.Server{Handler: mux}
	go s.http.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	s.logf("ops: listening on http://%s", ln.Addr())
	return s, nil
}

// NewEmbedded builds the ops surface without binding a listener: the
// returned handler serves the same endpoint set as Start and the sampler
// (when Fill is given) is already ticking. A daemon that owns its own
// listener (memverifyd) mounts the handler on its mux; Addr reports ""
// and Close only stops the sampler.
func NewEmbedded(opts Options) (*Server, http.Handler) {
	s := &Server{opts: opts}
	if opts.Fill != nil {
		s.sampler = NewSampler(opts.Fill, opts.SampleEvery, opts.RingPoints)
		s.sampler.OnSample = opts.OnSample
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/vars", s.handleVars)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/flightrecord", s.handleFlight)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.sampler.Start()
	return s, mux
}

func (s *Server) logf(format string, args ...any) {
	if s != nil && s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Addr returns the bound address (host:port). Nil-safe.
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Sampler returns the server's sampler (nil when Fill was not given).
// Nil-safe.
func (s *Server) Sampler() *Sampler {
	if s == nil {
		return nil
	}
	return s.sampler
}

// StopSampling halts the sampler goroutine without shutting the HTTP
// surface down — the drivers call this before tearing the store down, so
// no fill races the teardown while /metrics keeps serving the last (or
// published) snapshot. Nil-safe.
func (s *Server) StopSampling() {
	if s == nil {
		return
	}
	s.sampler.Stop()
}

// Publish installs the run's final authoritative registry: from now on
// /metrics and /vars serve it instead of the sampler's last snapshot
// (the sampler's derived gauges stay visible). Drivers publish after the
// store closed and the end-of-run registry is complete. Nil-safe.
func (s *Server) Publish(reg *telemetry.Registry) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.published = reg
	s.mu.Unlock()
}

// Close stops the sampler and the HTTP server (when the server owns one —
// embedded surfaces only stop the sampler). Nil-safe.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.sampler.Stop()
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}

// snapshot returns the registry to serve: the published final state when
// set, otherwise a merge of the sampler's most recent snapshot (taking
// one eagerly if none exists yet so the first scrape is never empty).
func (s *Server) snapshot() *telemetry.Registry {
	s.mu.Lock()
	published := s.published
	s.mu.Unlock()
	out := telemetry.NewRegistry()
	if published != nil {
		published.MergeInto(out)
		return out
	}
	if s.sampler != nil {
		if !s.sampler.SnapshotInto(out) {
			s.sampler.SampleNow()
			s.sampler.SnapshotInto(out)
		}
	}
	return out
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := WriteExposition(w, reg, s.sampler.DerivedGauges()); err != nil {
		s.logf("ops: /metrics: %v", err)
	}
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	reg := s.snapshot()
	w.Header().Set("Content-Type", "application/json")
	if err := reg.WriteJSON(w); err != nil {
		s.logf("ops: /vars: %v", err)
	}
}

func (s *Server) health() Health {
	if s.opts.Health == nil {
		return Health{}
	}
	return s.opts.Health()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	w.Header().Set("Content-Type", "application/json")
	if h.State() == Unhealthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	h.WriteJSON(w) //nolint:errcheck // best-effort body
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	w.Header().Set("Content-Type", "application/json")
	if !h.Ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	h.WriteJSON(w) //nolint:errcheck // best-effort body
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.opts.Flight.WriteJSON(w); err != nil {
		s.logf("ops: /flightrecord: %v", err)
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.opts.CaptureTrace == nil {
		http.Error(w, "tracing not enabled for this run (pass -trace or -metrics to attach recorders)",
			http.StatusNotFound)
		return
	}
	cycles := uint64(0)
	if q := r.URL.Query().Get("cycles"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad cycles %q: %v", q, err), http.StatusBadRequest)
			return
		}
		cycles = v
	}
	traces, err := s.opts.CaptureTrace(cycles)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := telemetry.WriteChromeTraces(w, traces...); err != nil {
		s.logf("ops: /trace: %v", err)
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "memverify ops endpoints:\n"+
		"  /metrics       Prometheus text exposition (registry + sampler)\n"+
		"  /vars          full registry snapshot as sorted-key JSON\n"+
		"  /healthz       liveness (503 when every shard halted)\n"+
		"  /readyz        readiness (503 during recovery or full halt)\n"+
		"  /flightrecord  flight-recorder dump as JSON\n"+
		"  /trace?cycles=N  Chrome trace of the last N simulated cycles\n"+
		"  /debug/pprof/  Go runtime profiles\n")
}
