package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"memverify/internal/stats"
	"memverify/internal/telemetry"
)

// MetricPrefix namespaces every exported metric; internal registry names
// like "shard.ops_submitted" become "memverify_shard_ops_submitted".
const MetricPrefix = "memverify_"

// SamplerPrefix namespaces the sampler's derived signals (rates and
// rolling quantiles), e.g. "memverify_sampler_ops_per_sec_p99".
const SamplerPrefix = MetricPrefix + "sampler_"

// PromName maps an internal metric name to its Prometheus exposition
// name: prefixed and with every character outside [a-zA-Z0-9_:] replaced
// by '_'. The prefix guarantees a legal first character.
func PromName(name string) string {
	var b strings.Builder
	b.WriteString(MetricPrefix)
	for _, c := range name {
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':' {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promFloat prints a sample value the way Prometheus expects: decimal
// with no exponent surprises, +Inf/-Inf/NaN spelled out.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// WriteExposition writes the registry snapshot (plus the sampler's
// derived gauges, which may be nil) in Prometheus text exposition format
// (version 0.0.4): one HELP + TYPE header per family, families sorted by
// exposition name, histogram families with cumulative le buckets, _sum
// and _count. Series are not exported — per-window arrays have no
// Prometheus shape; they remain available from /vars. Two internal names
// colliding after sanitation is an error (it means a metric was named
// carelessly), not a silent overwrite.
func WriteExposition(w io.Writer, reg *telemetry.Registry, sampler map[string]float64) error {
	type family struct {
		orig string // internal name, for HELP
		typ  string // counter | gauge | histogram
		emit func(pr func(format string, args ...any), name string)
	}
	fams := map[string]family{}
	var firstErr error
	add := func(promName string, f family) {
		if prev, ok := fams[promName]; ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("obs: metric names %q and %q both export as %q",
					prev.orig, f.orig, promName)
			}
			return
		}
		fams[promName] = f
	}

	if reg != nil {
		reg.EachCounter(func(name string, v uint64) {
			add(PromName(name), family{orig: name, typ: "counter",
				emit: func(pr func(string, ...any), n string) { pr("%s %d\n", n, v) }})
		})
		reg.EachGauge(func(name string, v float64) {
			add(PromName(name), family{orig: name, typ: "gauge",
				emit: func(pr func(string, ...any), n string) { pr("%s %s\n", n, promFloat(v)) }})
		})
		reg.EachHistogram(func(name string, h *stats.Histogram) {
			hc := h.Clone() // detach from the registry before the handler writes
			add(PromName(name), family{orig: name, typ: "histogram",
				emit: func(pr func(string, ...any), n string) { emitHistogram(pr, n, hc) }})
		})
	}
	for name, v := range sampler {
		v := v
		promName := SamplerPrefix + strings.TrimPrefix(PromName(name), MetricPrefix)
		add(promName, family{orig: "sampler " + name, typ: "gauge",
			emit: func(pr func(string, ...any), n string) { pr("%s %s\n", n, promFloat(v)) }})
	}
	if firstErr != nil {
		return firstErr
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)

	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, n := range names {
		f := fams[n]
		pr("# HELP %s memverify %s %s\n", n, f.typ, escapeHelp(f.orig))
		pr("# TYPE %s %s\n", n, f.typ)
		f.emit(pr, n)
	}
	return err
}

// emitHistogram writes one histogram family: cumulative counts at each
// upper bound, the mandatory +Inf bucket, then _sum and _count.
func emitHistogram(pr func(format string, args ...any), name string, h *stats.Histogram) {
	bounds := h.Bounds()
	buckets := h.Buckets()
	cum := uint64(0)
	for i, b := range bounds {
		cum += buckets[i]
		pr("%s_bucket{le=\"%d\"} %d\n", name, b, cum)
	}
	pr("%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
	pr("%s_sum %d\n", name, h.Sum())
	pr("%s_count %d\n", name, h.Count())
}
