package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memverify/internal/telemetry"
)

func startTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	opts.Listen = "127.0.0.1:0"
	srv, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func get(t *testing.T, srv *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + srv.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerMetricsAndVars(t *testing.T) {
	var ops atomic.Uint64
	ops.Store(1234)
	srv := startTestServer(t, Options{
		Fill: func(reg *telemetry.Registry) {
			reg.Add("shard.ops_submitted", ops.Load())
			reg.SetGauge("bus.utilization", 0.5)
		},
		SampleEvery: time.Hour, // scrape-triggered sampling only
	})

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics HTTP %d", code)
	}
	sc, err := ValidateExposition(strings.NewReader(body))
	if err != nil {
		t.Fatalf("live /metrics fails validation: %v\n%s", err, body)
	}
	if _, ok := sc.Families["memverify_shard_ops_submitted"]; !ok {
		t.Errorf("counter family missing from scrape: %v", sc.Order)
	}

	code, body = get(t, srv, "/vars")
	if code != http.StatusOK || !strings.Contains(body, `"shard.ops_submitted": 1234`) {
		t.Errorf("/vars HTTP %d body %s", code, body)
	}

	// A published registry takes over the scrape surface.
	final := telemetry.NewRegistry()
	final.Add("shard.ops_submitted", 999999)
	srv.Publish(final)
	_, body = get(t, srv, "/vars")
	if !strings.Contains(body, `"shard.ops_submitted": 999999`) {
		t.Errorf("published registry not served: %s", body)
	}
}

func TestServerHealthTransitions(t *testing.T) {
	var mu sync.Mutex
	h := Health{Shards: 4}
	srv := startTestServer(t, Options{
		Health: func() Health {
			mu.Lock()
			defer mu.Unlock()
			return h
		},
	})

	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status": "healthy"`) {
		t.Errorf("healthy: HTTP %d %s", code, body)
	}

	mu.Lock()
	h.HaltedShards, h.PendingViolations = 1, 1
	mu.Unlock()
	code, body = get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status": "degraded"`) {
		t.Errorf("degraded (tamper containment keeps serving): HTTP %d %s", code, body)
	}
	if code, _ := get(t, srv, "/readyz"); code != http.StatusOK {
		t.Errorf("degraded store must stay ready, got HTTP %d", code)
	}

	mu.Lock()
	h.HaltedShards = 4
	mu.Unlock()
	code, body = get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"status": "unhealthy"`) {
		t.Errorf("unhealthy: HTTP %d %s", code, body)
	}
	if code, _ := get(t, srv, "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("fully halted store reported ready, HTTP %d", code)
	}
}

func TestServerFlightAndTrace(t *testing.T) {
	fr := NewFlightRecorder(16)
	fr.Record(EvViolation, 2, 77, "tampered line")
	srv := startTestServer(t, Options{Flight: fr})

	code, body := get(t, srv, "/flightrecord")
	if code != http.StatusOK || !strings.Contains(body, `"kind": "violation", "seq": 0, "shard": 2`) {
		t.Errorf("/flightrecord HTTP %d %s", code, body)
	}

	// No CaptureTrace wired: /trace explains how to enable it.
	code, body = get(t, srv, "/trace")
	if code != http.StatusNotFound || !strings.Contains(body, "-trace") {
		t.Errorf("/trace without capture: HTTP %d %s", code, body)
	}
}

func TestServerTraceCapture(t *testing.T) {
	tr := telemetry.NewTrace(64)
	tr.Emit(telemetry.TrackIntegrity, telemetry.KindTreeWalk, 10, 20, 0, 0)
	srv := startTestServer(t, Options{
		CaptureTrace: func(cycles uint64) ([]*telemetry.Trace, error) {
			return []*telemetry.Trace{tr.Tail(cycles)}, nil
		},
	})
	code, body := get(t, srv, "/trace?cycles=100")
	if code != http.StatusOK || !strings.Contains(body, "traceEvents") {
		t.Errorf("/trace HTTP %d %s", code, body)
	}
	if code, _ := get(t, srv, "/trace?cycles=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad cycles accepted: HTTP %d", code)
	}
	capErr := fmt.Errorf("workers busy")
	srv2 := startTestServer(t, Options{
		CaptureTrace: func(cycles uint64) ([]*telemetry.Trace, error) { return nil, capErr },
	})
	if code, _ := get(t, srv2, "/trace"); code != http.StatusInternalServerError {
		t.Errorf("capture error not surfaced: HTTP %d", code)
	}
}

func TestServerStopSamplingKeepsServing(t *testing.T) {
	var fills atomic.Uint64
	srv := startTestServer(t, Options{
		Fill: func(reg *telemetry.Registry) {
			fills.Add(1)
			reg.Add("c", 1)
		},
		SampleEvery: time.Hour,
	})
	get(t, srv, "/metrics") // eager first sample
	n := fills.Load()
	srv.StopSampling()
	if code, _ := get(t, srv, "/metrics"); code != http.StatusOK {
		t.Errorf("/metrics after StopSampling: HTTP %d", code)
	}
	if fills.Load() != n {
		t.Errorf("fill ran after StopSampling (%d -> %d) — races store teardown", n, fills.Load())
	}
}
