package obs

import (
	"fmt"
	"io"
)

// HealthState is the store-wide liveness verdict the /healthz endpoint
// reports.
type HealthState int

const (
	// Healthy: every shard serving, no violations on record, no recovery
	// in progress.
	Healthy HealthState = iota
	// Degraded: the store still serves, but something an operator must
	// look at happened — at least one (but not every) shard halted, a
	// violation is on record, or a recovery is in progress.
	Degraded
	// Unhealthy: the store no longer serves — every shard halted (or the
	// health source itself is gone).
	Unhealthy
)

// String returns the state's wire name.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	default:
		return "unhealthy"
	}
}

// Health is one liveness snapshot, produced by the driver's HealthFunc on
// every /healthz or /readyz request.
type Health struct {
	Shards            int
	HaltedShards      int
	PendingViolations int
	Recovering        bool
	Detail            string
}

// HealthFunc produces a liveness snapshot. It runs on HTTP handler
// goroutines and must be safe to call concurrently with the workload.
type HealthFunc func() Health

// State classifies the snapshot: unhealthy when every shard halted,
// degraded on any partial halt, pending violation or in-flight recovery,
// healthy otherwise.
func (h Health) State() HealthState {
	switch {
	case h.Shards > 0 && h.HaltedShards >= h.Shards:
		return Unhealthy
	case h.HaltedShards > 0 || h.PendingViolations > 0 || h.Recovering:
		return Degraded
	default:
		return Healthy
	}
}

// Ready reports whether the store should receive traffic: it must not be
// mid-recovery and at least one shard must still serve. A degraded store
// remains ready — tamper containment means the surviving shards answer.
func (h Health) Ready() bool {
	if h.Recovering {
		return false
	}
	return !(h.Shards > 0 && h.HaltedShards >= h.Shards)
}

// MergeHealth folds per-tenant snapshots into one service-wide snapshot:
// shard/halt/violation counts sum, Recovering ORs, and non-empty details
// concatenate in argument order. With per-tenant halt containment the
// merged State() reads as the service contract: degraded while some
// tenant (but not every shard) is halted, unhealthy only when every shard
// of every tenant is down.
func MergeHealth(hs ...Health) Health {
	var out Health
	for _, h := range hs {
		out.Shards += h.Shards
		out.HaltedShards += h.HaltedShards
		out.PendingViolations += h.PendingViolations
		out.Recovering = out.Recovering || h.Recovering
		if h.Detail != "" {
			if out.Detail != "" {
				out.Detail += "; "
			}
			out.Detail += h.Detail
		}
	}
	return out
}

// WriteJSON writes the snapshot as deterministic sorted-key JSON — the
// /healthz and /readyz response body.
func (h Health) WriteJSON(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"{\"detail\": %q, \"halted_shards\": %d, \"pending_violations\": %d, \"ready\": %t, \"recovering\": %t, \"shards\": %d, \"status\": %q}\n",
		h.Detail, h.HaltedShards, h.PendingViolations, h.Ready(), h.Recovering, h.Shards, h.State())
	return err
}
