package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// SampleLine is one parsed exposition sample.
type SampleLine struct {
	Name   string // full sample name (may carry _bucket/_sum/_count)
	Labels string // raw label block without braces, "" when absent
	Value  float64
}

// Key identifies the sample within its scrape (name plus labels).
func (s SampleLine) Key() string {
	if s.Labels == "" {
		return s.Name
	}
	return s.Name + "{" + s.Labels + "}"
}

// Family is one parsed metric family: its TYPE, HELP and samples in
// exposition order.
type Family struct {
	Name    string
	Type    string // counter | gauge | histogram | summary | untyped
	Help    string
	Samples []SampleLine
}

// Scrape is one parsed and structurally validated exposition.
type Scrape struct {
	Families map[string]*Family
	Order    []string // family names in exposition order
}

// Family sample-name suffixes that fold into their base family.
var histSuffixes = []string{"_bucket", "_sum", "_count"}

func isLegalMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// ValidateExposition parses a Prometheus text exposition (version 0.0.4)
// and enforces the structural rules the repo's /metrics endpoint promises:
//
//   - every sample belongs to a family announced by a # TYPE line, and
//     every family has exactly one HELP and one TYPE (HELP first);
//   - metric names use only [a-zA-Z0-9_:] and don't start with a digit;
//   - a family's samples are contiguous and no (name, labels) pair
//     repeats;
//   - histogram families carry cumulative non-decreasing le buckets, a
//     mandatory le="+Inf" bucket, and _count equal to the +Inf bucket.
//
// It returns the parsed scrape for CompareScrapes.
func ValidateExposition(r io.Reader) (*Scrape, error) {
	sc := &Scrape{Families: map[string]*Family{}}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var last *Family // family of the previous sample line, for contiguity
	closed := map[string]bool{}
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseMeta(sc, line, lineNo); err != nil {
				return nil, err
			}
			continue
		}
		sample, err := parseSample(line, lineNo)
		if err != nil {
			return nil, err
		}
		fam := familyFor(sc, sample.Name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, sample.Name)
		}
		if last != nil && fam != last {
			if closed[fam.Name] {
				return nil, fmt.Errorf("line %d: family %q samples are not contiguous", lineNo, fam.Name)
			}
			closed[last.Name] = true
		}
		last = fam
		fam.Samples = append(fam.Samples, sample)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	for _, name := range sc.Order {
		if err := validateFamily(sc.Families[name]); err != nil {
			return nil, err
		}
	}
	return sc, nil
}

func parseMeta(sc *Scrape, line string, lineNo int) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // free comment, ignored per spec
	}
	name := fields[2]
	if !isLegalMetricName(name) {
		return fmt.Errorf("line %d: illegal metric name %q", lineNo, name)
	}
	fam := sc.Families[name]
	if fields[1] == "HELP" {
		if fam != nil && fam.Help != "" {
			return fmt.Errorf("line %d: duplicate HELP for %q", lineNo, name)
		}
		if fam == nil {
			fam = &Family{Name: name}
			sc.Families[name] = fam
			sc.Order = append(sc.Order, name)
		}
		if len(fields) == 4 {
			fam.Help = fields[3]
		} else {
			fam.Help = " " // present but empty
		}
		return nil
	}
	// TYPE
	if fam != nil && fam.Type != "" {
		return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
	}
	if fam != nil && len(fam.Samples) > 0 {
		return fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, name)
	}
	if fam == nil {
		fam = &Family{Name: name}
		sc.Families[name] = fam
		sc.Order = append(sc.Order, name)
	}
	switch t := fields[3]; t {
	case "counter", "gauge", "histogram", "summary", "untyped":
		fam.Type = t
	default:
		return fmt.Errorf("line %d: unknown TYPE %q for %q", lineNo, fields[3], name)
	}
	return nil
}

func parseSample(line string, lineNo int) (SampleLine, error) {
	var s SampleLine
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("line %d: malformed sample %q", lineNo, line)
	} else {
		s.Name = rest[:i]
		if rest[i] == '{' {
			end := strings.LastIndex(rest, "}")
			if end < i {
				return s, fmt.Errorf("line %d: unterminated label block in %q", lineNo, line)
			}
			s.Labels = rest[i+1 : end]
			rest = strings.TrimSpace(rest[end+1:])
		} else {
			rest = strings.TrimSpace(rest[i+1:])
		}
	}
	if !isLegalMetricName(s.Name) {
		return s, fmt.Errorf("line %d: illegal metric name %q", lineNo, s.Name)
	}
	// A sample may carry a trailing timestamp; the repo never writes one,
	// so reject it to keep scrapes deterministic.
	if strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("line %d: unexpected trailing fields in %q", lineNo, line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("line %d: bad sample value %q: %v", lineNo, rest, err)
	}
	s.Value = v
	return s, nil
}

// familyFor resolves a sample name to its announced family: exact match
// first, then the histogram suffixes against a histogram/summary family.
func familyFor(sc *Scrape, name string) *Family {
	if f, ok := sc.Families[name]; ok {
		return f
	}
	for _, suf := range histSuffixes {
		base, ok := strings.CutSuffix(name, suf)
		if !ok {
			continue
		}
		if f, ok := sc.Families[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
			return f
		}
	}
	return nil
}

func validateFamily(f *Family) error {
	if f.Type == "" {
		return fmt.Errorf("family %q has HELP but no TYPE", f.Name)
	}
	if f.Help == "" {
		return fmt.Errorf("family %q has TYPE but no HELP", f.Name)
	}
	seen := map[string]bool{}
	for _, s := range f.Samples {
		if seen[s.Key()] {
			return fmt.Errorf("family %q: duplicate sample %q", f.Name, s.Key())
		}
		seen[s.Key()] = true
	}
	if f.Type == "histogram" {
		return validateHistogram(f)
	}
	if len(f.Samples) == 0 {
		return fmt.Errorf("family %q has no samples", f.Name)
	}
	return nil
}

func validateHistogram(f *Family) error {
	prev := math.Inf(-1)
	prevCount := -1.0
	infCount, count := -1.0, -1.0
	hasSum := false
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := labelValue(s.Labels, "le")
			if !ok {
				return fmt.Errorf("family %q: bucket sample without le label", f.Name)
			}
			bound := math.Inf(1)
			if le != "+Inf" {
				v, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("family %q: bad le %q", f.Name, le)
				}
				bound = v
			}
			if bound <= prev {
				return fmt.Errorf("family %q: le buckets not strictly increasing at le=%q", f.Name, le)
			}
			if s.Value < prevCount {
				return fmt.Errorf("family %q: cumulative bucket counts decrease at le=%q", f.Name, le)
			}
			prev, prevCount = bound, s.Value
			if le == "+Inf" {
				infCount = s.Value
			}
		case f.Name + "_sum":
			hasSum = true
		case f.Name + "_count":
			count = s.Value
		default:
			return fmt.Errorf("family %q: unexpected sample %q", f.Name, s.Name)
		}
	}
	if infCount < 0 {
		return fmt.Errorf("family %q: missing le=\"+Inf\" bucket", f.Name)
	}
	if !hasSum || count < 0 {
		return fmt.Errorf("family %q: missing _sum or _count", f.Name)
	}
	if count != infCount {
		return fmt.Errorf("family %q: _count %v != +Inf bucket %v", f.Name, count, infCount)
	}
	return nil
}

// labelValue extracts one label's unquoted value from a raw label block.
func labelValue(labels, key string) (string, bool) {
	for _, part := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || k != key {
			continue
		}
		v = strings.TrimSpace(v)
		if len(v) >= 2 && v[0] == '"' && v[len(v)-1] == '"' {
			return v[1 : len(v)-1], true
		}
		return v, true
	}
	return "", false
}

// CompareScrapes enforces cross-scrape invariants between an earlier and
// a later scrape of the same process: counter samples and histogram
// _bucket/_count/_sum samples never decrease, and no counter family
// disappears. Gauges (including the sampler block) may move freely.
func CompareScrapes(prev, cur *Scrape) error {
	names := make([]string, 0, len(prev.Families))
	for name := range prev.Families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pf := prev.Families[name]
		if pf.Type != "counter" && pf.Type != "histogram" {
			continue
		}
		cf, ok := cur.Families[name]
		if !ok {
			return fmt.Errorf("counter family %q disappeared between scrapes", name)
		}
		curVals := map[string]float64{}
		for _, s := range cf.Samples {
			curVals[s.Key()] = s.Value
		}
		for _, s := range pf.Samples {
			cv, ok := curVals[s.Key()]
			if !ok {
				return fmt.Errorf("sample %q disappeared between scrapes", s.Key())
			}
			if cv < s.Value {
				return fmt.Errorf("sample %q went backwards between scrapes: %v -> %v",
					s.Key(), s.Value, cv)
			}
		}
	}
	return nil
}
