package obs

import (
	"testing"
	"time"

	"memverify/internal/core"
	"memverify/internal/shard"
	"memverify/internal/telemetry"
	"memverify/internal/trace"
)

// benchStore builds a small functional sharded store — the same shape the
// loadgen drives — so the benchmark measures the ops surface's cost on
// the real Fill path (FillRegistry routed through the shard workers).
func benchStore(b *testing.B) *shard.Store {
	b.Helper()
	cfg := core.DefaultConfig()
	cfg.Scheme = core.SchemeCached
	cfg.Benchmark = trace.Uniform("obsbench", 32<<10)
	cfg.Benchmark.CodeSet = 4 << 10
	cfg.ProtectedBytes = 1 << 20
	cfg.L2Size = 32 << 10
	cfg.Functional = true
	cfg.HashMode = "memo"
	s, err := shard.New(shard.Config{Machine: cfg, Shards: 2})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func driveOps(b *testing.B, s *shard.Store) {
	b.Helper()
	buf := make([]byte, 64)
	span := s.Span()
	for i := 0; i < b.N; i++ {
		off := (uint64(i) * 8192) % (span - 64)
		if err := s.StoreBytes(off, buf); err != nil {
			b.Fatal(err)
		}
		if err := s.LoadBytes(off, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreOpsBaseline is the reference: store traffic with the ops
// surface disabled (nothing constructed — the production default).
func BenchmarkStoreOpsBaseline(b *testing.B) {
	s := benchStore(b)
	defer s.Close()
	b.ResetTimer()
	driveOps(b, s)
}

// BenchmarkStoreOpsEnabledUnscraped is the overhead gate's shape: the
// sampler ticks against the live store at the default cadence but nobody
// scrapes. Compare against BenchmarkStoreOpsBaseline; ci.sh enforces the
// ≤2% wall-clock budget on the loadgen equivalent.
func BenchmarkStoreOpsEnabledUnscraped(b *testing.B) {
	s := benchStore(b)
	defer s.Close()
	sampler := NewSampler(func(reg *telemetry.Registry) { s.FillRegistry(reg) },
		DefaultSampleEvery, DefaultRingPoints)
	sampler.Start()
	b.ResetTimer()
	driveOps(b, s)
	b.StopTimer()
	sampler.Stop()
}

// BenchmarkSamplerRound prices one sampling round (fill + rate/ring
// update) against a registry of typical size, independent of cadence.
func BenchmarkSamplerRound(b *testing.B) {
	s := benchStore(b)
	defer s.Close()
	sampler := NewSampler(func(reg *telemetry.Registry) { s.FillRegistry(reg) },
		time.Hour, DefaultRingPoints)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sampler.SampleNow()
	}
}
