package obs

import (
	"sync"

	"memverify/internal/telemetry"
)

// LockedRegistry is a mutex-guarded accumulating registry for drivers
// whose engines run on arbitrary goroutines (the figure sweep's parallel
// runners, the chaos orchestrator's campaign children): each finished
// unit of work merges its end-of-run registry in, and the sampler's Fill
// closure snapshots the accumulated state. This is the bridge between
// the repo's fill-once-at-end registries and the live scrape surface for
// drivers that have no shard workers to route a live fill through.
type LockedRegistry struct {
	mu  sync.Mutex
	reg *telemetry.Registry
}

// NewLockedRegistry returns an empty accumulator.
func NewLockedRegistry() *LockedRegistry {
	return &LockedRegistry{reg: telemetry.NewRegistry()}
}

// Merge folds src into the accumulator (counters add, gauges overwrite,
// histograms merge, series append). Nil-safe on both sides.
func (l *LockedRegistry) Merge(src *telemetry.Registry) {
	if l == nil || src == nil {
		return
	}
	l.mu.Lock()
	src.MergeInto(l.reg)
	l.mu.Unlock()
}

// Add accumulates a counter directly — for driver-level progress
// counters (runs completed, campaigns finished) with no engine registry
// behind them. Nil-safe.
func (l *LockedRegistry) Add(name string, d uint64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.reg.Add(name, d)
	l.mu.Unlock()
}

// SetGauge records a point-in-time value. Nil-safe.
func (l *LockedRegistry) SetGauge(name string, v float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.reg.SetGauge(name, v)
	l.mu.Unlock()
}

// Fill merges the accumulated state into dst under the lock — the shape
// the sampler's Fill closure wants. Nil-safe.
func (l *LockedRegistry) Fill(dst *telemetry.Registry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.reg.MergeInto(dst)
	l.mu.Unlock()
}
