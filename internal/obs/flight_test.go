package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderRingBounds(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		fr.Record(EvBarrier, i, uint64(i), "e")
	}
	evs := fr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Seq != want {
			t.Errorf("events[%d].Seq = %d, want %d (oldest-first, newest win)", i, ev.Seq, want)
		}
	}
	if fr.Total() != 10 || fr.Dropped() != 6 {
		t.Errorf("total/dropped = %d/%d, want 10/6", fr.Total(), fr.Dropped())
	}
}

func TestFlightRecorderJSONDeterministic(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.now = func() time.Time { return time.Unix(5, 500) }
	fr.Record(EvViolation, 1, 313, "hash mismatch addr=0x40")
	fr.Record(EvShardHalt, 1, 313, "halt policy tripped")

	var a, b strings.Builder
	if err := fr.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := fr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two dumps of the same recorder differ")
	}
	want := `{
  "dropped": 0,
  "events": [
    {"detail": "hash mismatch addr=0x40", "epoch": 313, "kind": "violation", "seq": 0, "shard": 1, "wall_nanos": 5000000500},
    {"detail": "halt policy tripped", "epoch": 313, "kind": "shard-halt", "seq": 1, "shard": 1, "wall_nanos": 5000000500}
  ],
  "schema": "memverify-flight-v1",
  "total": 2
}
`
	if a.String() != want {
		t.Errorf("dump layout:\n got %s want %s", a.String(), want)
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(EvKill, -1, 0, "no-op")
	if evs := fr.Events(); evs != nil {
		t.Errorf("nil recorder has events: %+v", evs)
	}
	path := filepath.Join(t.TempDir(), "flight.json")
	if err := fr.DumpFile(path); err != nil {
		t.Fatalf("nil recorder dump: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("nil recorder with a path must still write a dump: %v", err)
	}
	if !strings.Contains(string(data), FlightSchema) {
		t.Errorf("empty dump missing schema: %s", data)
	}
	if err := fr.DumpFile(""); err != nil {
		t.Errorf("empty path: %v", err)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(64)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				fr.Record(EvCheckpointCommit, g, uint64(i), "c")
				fr.Events()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if fr.Total() != 800 {
		t.Errorf("total = %d, want 800", fr.Total())
	}
}
