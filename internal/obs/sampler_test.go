package obs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memverify/internal/telemetry"
)

// scriptedClock returns a now() that yields base, base+step, base+2*step...
func scriptedClock(base time.Time, step time.Duration) func() time.Time {
	var calls int64
	return func() time.Time {
		n := atomic.AddInt64(&calls, 1) - 1
		return base.Add(time.Duration(n) * step)
	}
}

func TestSamplerWindowedRates(t *testing.T) {
	var ops, ckpts, ckptNanos uint64
	fill := func(reg *telemetry.Registry) {
		reg.Add("shard.ops_submitted", ops)
		reg.Add("persist.checkpoints", ckpts)
		reg.Add("persist.checkpoint_nanos", ckptNanos)
		reg.SetGauge("bus.utilization", 0.25)
	}
	s := NewSampler(fill, time.Second, 16)
	s.now = scriptedClock(time.Unix(1000, 0), 2*time.Second)

	ops = 100
	first := s.SampleNow()
	if len(first.Rates) != 0 || first.Elapsed != 0 {
		t.Fatalf("first round must have no window: %+v", first)
	}
	if got := first.Derived[SeriesBusUtilization]; got != 0.25 {
		t.Fatalf("bus utilization level missing on first round: %v", got)
	}

	// 1000 more ops and 2 checkpoints totalling 3ms over a 2s window.
	ops, ckpts, ckptNanos = 1100, 2, 3_000_000
	sm := s.SampleNow()
	if sm.Elapsed != 2*time.Second {
		t.Fatalf("elapsed = %v, want 2s", sm.Elapsed)
	}
	if got := sm.Rates["shard.ops_submitted"]; got != 500 {
		t.Errorf("ops rate = %v, want 500", got)
	}
	if got := sm.Derived[SeriesOpsPerSec]; got != 500 {
		t.Errorf("derived ops/sec = %v, want 500", got)
	}
	if got := sm.Derived[SeriesCheckpointLatency]; got != 1_500_000 {
		t.Errorf("checkpoint latency = %v, want 1.5e6 ns", got)
	}

	if v, ok := s.Latest(SeriesOpsPerSec); !ok || v != 500 {
		t.Errorf("Latest(ops_per_sec) = %v, %t", v, ok)
	}
	if pts := s.Series("rate.shard.ops_submitted"); len(pts) != 1 || pts[0].Value != 500 {
		t.Errorf("rate series = %+v", pts)
	}
	if s.Rounds() != 2 {
		t.Errorf("rounds = %d, want 2", s.Rounds())
	}
}

func TestSamplerSkipsAppearingAndResetCounters(t *testing.T) {
	round := 0
	fill := func(reg *telemetry.Registry) {
		switch round {
		case 0:
			reg.Add("steady", 10)
			reg.Add("resetting", 100)
		default:
			reg.Add("steady", 20)
			reg.Add("resetting", 5) // went backwards: source reset
			reg.Add("appeared", 7)  // no previous value
		}
	}
	s := NewSampler(fill, time.Second, 16)
	s.now = scriptedClock(time.Unix(2000, 0), time.Second)
	s.SampleNow()
	round = 1
	sm := s.SampleNow()
	if got := sm.Rates["steady"]; got != 10 {
		t.Errorf("steady rate = %v, want 10", got)
	}
	if _, ok := sm.Rates["resetting"]; ok {
		t.Errorf("reset counter produced a rate: %+v", sm.Rates)
	}
	if _, ok := sm.Rates["appeared"]; ok {
		t.Errorf("appearing counter produced a rate: %+v", sm.Rates)
	}
}

func TestRingWraparound(t *testing.T) {
	r := newRing(3)
	for i := 0; i < 5; i++ {
		r.push(Point{Value: float64(i)})
	}
	pts := r.points()
	if len(pts) != 3 {
		t.Fatalf("retained %d points, want 3", len(pts))
	}
	for i, want := range []float64{2, 3, 4} {
		if pts[i].Value != want {
			t.Errorf("points[%d] = %v, want %v (oldest-first)", i, pts[i].Value, want)
		}
	}
}

func TestSamplerRingBoundedAcrossRounds(t *testing.T) {
	var ops uint64
	s := NewSampler(func(reg *telemetry.Registry) { reg.Add("c", ops) }, time.Second, 4)
	s.now = scriptedClock(time.Unix(3000, 0), time.Second)
	for i := 0; i < 10; i++ {
		ops += 100
		s.SampleNow()
	}
	pts := s.Series("rate.c")
	if len(pts) != 4 {
		t.Fatalf("series retained %d points, want ring bound 4", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if !pts[i].At.After(pts[i-1].At) {
			t.Errorf("points not oldest-first: %+v", pts)
		}
	}
}

func TestSamplerQuantile(t *testing.T) {
	vals := []uint64{10, 90, 40, 20, 30, 70, 50, 80, 60, 100}
	var cum uint64
	i := 0
	s := NewSampler(func(reg *telemetry.Registry) {
		if i < len(vals) {
			cum += vals[i]
		}
		reg.Add("c", cum)
	}, time.Second, 32)
	s.now = scriptedClock(time.Unix(4000, 0), time.Second)
	s.SampleNow() // priming round, no rate
	for i = 0; i < len(vals); i++ {
		s.SampleNow()
	}
	// The rate series now holds exactly vals (1s windows).
	if v, ok := s.Quantile("rate.c", 0.50); !ok || v != 50 {
		t.Errorf("p50 = %v, %t; want 50 (nearest rank over 10..100)", v, ok)
	}
	if v, ok := s.Quantile("rate.c", 0.99); !ok || v != 90 {
		t.Errorf("p99 = %v, %t; want 90 (nearest rank, n=10)", v, ok)
	}
	if v, ok := s.Quantile("rate.c", 1); !ok || v != 100 {
		t.Errorf("p100 = %v, %t; want 100", v, ok)
	}
	if _, ok := s.Quantile("missing", 0.5); ok {
		t.Error("quantile over unknown series reported ok")
	}
}

func TestSamplerStopMakesSampleNowNoop(t *testing.T) {
	var fills atomic.Uint64
	s := NewSampler(func(reg *telemetry.Registry) { fills.Add(1) }, time.Hour, 4)
	s.SampleNow()
	s.Stop()
	if sm := s.SampleNow(); sm.Counters != nil {
		t.Errorf("SampleNow after Stop returned a live sample: %+v", sm)
	}
	if fills.Load() != 1 {
		t.Errorf("fill ran %d times, want 1 — fills after Stop race store teardown", fills.Load())
	}
	s.Stop() // idempotent
}

func TestSamplerSnapshotInto(t *testing.T) {
	s := NewSampler(func(reg *telemetry.Registry) {
		reg.Add("c", 42)
		reg.SetGauge("g", 2.5)
	}, time.Second, 4)
	dst := telemetry.NewRegistry()
	if s.SnapshotInto(dst) {
		t.Fatal("snapshot reported before any round")
	}
	s.SampleNow()
	if !s.SnapshotInto(dst) {
		t.Fatal("no snapshot after a round")
	}
	if dst.Counter("c") != 42 {
		t.Errorf("snapshot counter = %d, want 42", dst.Counter("c"))
	}
}

// TestSamplerConcurrentScrape exercises the scrape surface while the
// ticker goroutine samples; run under -race this is the locking proof.
func TestSamplerConcurrentScrape(t *testing.T) {
	var ops atomic.Uint64
	s := NewSampler(func(reg *telemetry.Registry) {
		reg.Add("shard.ops_submitted", ops.Load())
	}, time.Millisecond, 32)
	s.Start()
	defer s.Stop()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ops.Add(17)
				s.Series("rate.shard.ops_submitted")
				s.Quantile(SeriesOpsPerSec, 0.99)
				s.DerivedGauges()
				dst := telemetry.NewRegistry()
				s.SnapshotInto(dst)
			}
		}()
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()
	if s.Rounds() == 0 {
		t.Error("ticker never sampled")
	}
}

// TestDisabledPathZeroAlloc pins the contract that a run without ops
// flags allocates nothing on these paths: every nil-receiver method the
// drivers call unconditionally must be free.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var fr *FlightRecorder
	var s *Sampler
	var srv *Server
	allocs := testing.AllocsPerRun(100, func() {
		fr.Record(EvViolation, 3, 17, "detail")
		fr.Events()
		s.SampleNow()
		s.Rounds()
		srv.StopSampling()
		srv.Publish(nil)
		srv.Addr()
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %v per op, want 0", allocs)
	}
}
