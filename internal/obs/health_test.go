package obs

import (
	"strings"
	"testing"
)

func TestHealthStateTransitions(t *testing.T) {
	cases := []struct {
		name  string
		h     Health
		state HealthState
		ready bool
	}{
		{"all serving", Health{Shards: 4}, Healthy, true},
		{"no shards wired", Health{}, Healthy, true},
		{"one of four halted", Health{Shards: 4, HaltedShards: 1}, Degraded, true},
		{"three of four halted", Health{Shards: 4, HaltedShards: 3}, Degraded, true},
		{"pending violation", Health{Shards: 4, PendingViolations: 2}, Degraded, true},
		{"recovering", Health{Shards: 4, Recovering: true}, Degraded, false},
		{"every shard halted", Health{Shards: 4, HaltedShards: 4}, Unhealthy, false},
		{"single shard halted", Health{Shards: 1, HaltedShards: 1}, Unhealthy, false},
	}
	for _, tc := range cases {
		if got := tc.h.State(); got != tc.state {
			t.Errorf("%s: state = %v, want %v", tc.name, got, tc.state)
		}
		if got := tc.h.Ready(); got != tc.ready {
			t.Errorf("%s: ready = %t, want %t", tc.name, got, tc.ready)
		}
	}
}

func TestHealthWriteJSON(t *testing.T) {
	h := Health{Shards: 4, HaltedShards: 1, PendingViolations: 1, Detail: "tamper"}
	var b strings.Builder
	if err := h.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	want := `{"detail": "tamper", "halted_shards": 1, "pending_violations": 1, "ready": true, "recovering": false, "shards": 4, "status": "degraded"}` + "\n"
	if b.String() != want {
		t.Errorf("health JSON:\n got %s want %s", b.String(), want)
	}
}
