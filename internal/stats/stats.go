// Package stats provides lightweight counters, rate helpers and fixed-width
// table formatting shared by the simulator and the benchmark harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Ratio returns a/b as a float, or 0 when b is zero.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Percent returns 100*a/b, or 0 when b is zero.
func Percent(a, b uint64) float64 { return 100 * Ratio(a, b) }

// Histogram is a simple bucketed histogram over non-negative integer samples.
type Histogram struct {
	buckets []uint64 // bucket i counts samples in [bounds[i-1], bounds[i])
	bounds  []uint64 // ascending upper bounds; last bucket is overflow
	count   uint64
	sum     uint64
	max     uint64
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds. Samples greater than or equal to the last bound land in an
// overflow bucket.
func NewHistogram(bounds ...uint64) *Histogram {
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{
		buckets: make([]uint64, len(b)+1),
		bounds:  b,
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v < h.bounds[i] })
	h.buckets[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean of all samples, or 0 with no samples.
func (h *Histogram) Mean() float64 { return Ratio(h.sum, h.count) }

// Max returns the largest sample observed.
func (h *Histogram) Max() uint64 { return h.max }

// Bucket returns the count of samples in bucket i (len(bounds)+1 buckets).
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Sum returns the sum of all samples observed.
func (h *Histogram) Sum() uint64 { return h.sum }

// Bounds returns the ascending bucket upper bounds (a copy).
func (h *Histogram) Bounds() []uint64 {
	out := make([]uint64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// Buckets returns the per-bucket counts (a copy); the final entry is the
// overflow bucket.
func (h *Histogram) Buckets() []uint64 {
	out := make([]uint64, len(h.buckets))
	copy(out, h.buckets)
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the bucket containing the target rank. Samples in the overflow
// bucket are treated as spanning [last bound, max]. It returns 0 with no
// samples; q is clamped to [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	cum := 0.0
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next || i == len(h.buckets)-1 {
			lo := 0.0
			if i > 0 {
				lo = float64(h.bounds[i-1])
			}
			hi := float64(h.max)
			if i < len(h.bounds) {
				hi = float64(h.bounds[i])
			}
			if hi < lo {
				hi = lo // max below last bound (overflow bucket empty case)
			}
			frac := (rank - cum) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			v := lo + frac*(hi-lo)
			if v > float64(h.max) {
				v = float64(h.max)
			}
			return v
		}
		cum = next
	}
	return float64(h.max)
}

// Merge folds other's samples into h. Both histograms must share identical
// bucket bounds; Merge panics otherwise, because silently re-bucketing
// would corrupt the distribution. A nil other is a no-op.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	if len(h.bounds) != len(other.bounds) {
		panic("stats: merging histograms with different bounds")
	}
	for i, b := range other.bounds {
		if h.bounds[i] != b {
			panic("stats: merging histograms with different bounds")
		}
	}
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Clone returns an independent copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{
		buckets: make([]uint64, len(h.buckets)),
		bounds:  make([]uint64, len(h.bounds)),
		count:   h.count,
		sum:     h.sum,
		max:     h.max,
	}
	copy(c.buckets, h.buckets)
	copy(c.bounds, h.bounds)
	return c
}

// Table accumulates rows of labeled numeric cells and renders them as an
// aligned plain-text table, the way the figure harness prints paper figures.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	decimal int
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header, decimal: 3}
}

// SetPrecision sets the number of fractional digits used by AddRow for
// float64 cells. The default is 3.
func (t *Table) SetPrecision(d int) { t.decimal = d }

// AddRow appends a row. Cells may be string, float64, int, uint64 or
// anything else fmt can print with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			if math.IsNaN(v) {
				row[i] = "-"
			} else {
				row[i] = fmt.Sprintf("%.*f", t.decimal, v)
			}
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// GeoMean returns the geometric mean of vs, ignoring non-positive values.
// It returns 0 if no positive values are present.
func GeoMean(vs []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
