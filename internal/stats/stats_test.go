package stats

import (
	"math"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Error("Reset failed")
	}
}

func TestRatioPercent(t *testing.T) {
	if Ratio(1, 4) != 0.25 {
		t.Error("Ratio(1,4)")
	}
	if Ratio(1, 0) != 0 {
		t.Error("Ratio by zero should be 0")
	}
	if Percent(1, 4) != 25 {
		t.Error("Percent(1,4)")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 100)
	for _, v := range []uint64{1, 5, 9, 10, 50, 99, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Bucket(0) != 3 { // <10
		t.Errorf("bucket 0 = %d, want 3", h.Bucket(0))
	}
	if h.Bucket(1) != 3 { // 10..99
		t.Errorf("bucket 1 = %d, want 3", h.Bucket(1))
	}
	if h.Bucket(2) != 2 { // >=100
		t.Errorf("bucket 2 = %d, want 2", h.Bucket(2))
	}
	if h.Max() != 1000 {
		t.Errorf("Max = %d", h.Max())
	}
	want := float64(1+5+9+10+50+99+100+1000) / 8
	if h.Mean() != want {
		t.Errorf("Mean = %f, want %f", h.Mean(), want)
	}
}

func TestHistogramUnsortedBounds(t *testing.T) {
	h := NewHistogram(100, 10) // bounds given out of order
	h.Observe(5)
	if h.Bucket(0) != 1 {
		t.Error("bounds were not sorted")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("My Title", "name", "value")
	tb.AddRow("alpha", 1.23456)
	tb.AddRow("b", 42)
	tb.AddRow("nan", math.NaN())
	out := tb.String()
	for _, want := range []string{"My Title", "name", "alpha", "1.235", "42", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "-") {
		t.Error("NaN should render as -")
	}
}

func TestTablePrecision(t *testing.T) {
	tb := NewTable("", "v")
	tb.SetPrecision(1)
	tb.AddRow(2.718)
	if !strings.Contains(tb.String(), "2.7") || strings.Contains(tb.String(), "2.718") {
		t.Errorf("precision not applied:\n%s", tb.String())
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %f, want 4", g)
	}
	if g := GeoMean([]float64{-1, 0}); g != 0 {
		t.Errorf("GeoMean of non-positives = %f, want 0", g)
	}
	if g := GeoMean([]float64{5, -1}); math.Abs(g-5) > 1e-9 {
		t.Errorf("GeoMean ignores non-positives: %f", g)
	}
}
