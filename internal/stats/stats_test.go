package stats

import (
	"math"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Error("Reset failed")
	}
}

func TestRatioPercent(t *testing.T) {
	if Ratio(1, 4) != 0.25 {
		t.Error("Ratio(1,4)")
	}
	if Ratio(1, 0) != 0 {
		t.Error("Ratio by zero should be 0")
	}
	if Percent(1, 4) != 25 {
		t.Error("Percent(1,4)")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 100)
	for _, v := range []uint64{1, 5, 9, 10, 50, 99, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Bucket(0) != 3 { // <10
		t.Errorf("bucket 0 = %d, want 3", h.Bucket(0))
	}
	if h.Bucket(1) != 3 { // 10..99
		t.Errorf("bucket 1 = %d, want 3", h.Bucket(1))
	}
	if h.Bucket(2) != 2 { // >=100
		t.Errorf("bucket 2 = %d, want 2", h.Bucket(2))
	}
	if h.Max() != 1000 {
		t.Errorf("Max = %d", h.Max())
	}
	want := float64(1+5+9+10+50+99+100+1000) / 8
	if h.Mean() != want {
		t.Errorf("Mean = %f, want %f", h.Mean(), want)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram(10)
	h.Observe(10) // exactly at the last bound lands in overflow
	h.Observe(1 << 40)
	if h.Bucket(0) != 0 || h.Bucket(1) != 2 {
		t.Fatalf("buckets = %v, want all samples in overflow", h.Buckets())
	}
	if h.Max() != 1<<40 {
		t.Fatalf("Max = %d", h.Max())
	}
	// Overflow-bucket quantiles interpolate between the last bound and max.
	if q := h.Quantile(1); q != float64(1<<40) {
		t.Fatalf("Quantile(1) = %v, want max", q)
	}
	if q := h.Quantile(0); q < 10 || q > float64(1<<40) {
		t.Fatalf("Quantile(0) = %v, outside overflow span", q)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := NewHistogram(10, 20)
	for i := 0; i < 10; i++ {
		h.Observe(5)  // bucket [0,10)
		h.Observe(15) // bucket [10,20)
	}
	// Median rank falls exactly at the bucket boundary.
	if q := h.Quantile(0.5); q != 10 {
		t.Fatalf("Quantile(0.5) = %v, want 10", q)
	}
	// Rank 15 of 20 → 5 samples into the 10-wide second bucket.
	if q := h.Quantile(0.75); q != 15 {
		t.Fatalf("Quantile(0.75) = %v, want 15", q)
	}
	// Quantile never exceeds the observed max, even mid-bucket.
	if q := h.Quantile(1); q > float64(h.Max()) {
		t.Fatalf("Quantile(1) = %v exceeds max %d", q, h.Max())
	}
	// Out-of-range q clamps; empty histogram returns 0.
	if q := h.Quantile(2); q != h.Quantile(1) {
		t.Fatalf("q>1 not clamped: %v", q)
	}
	if q := NewHistogram(10).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram Quantile = %v, want 0", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(10, 100)
	b := NewHistogram(10, 100)
	a.Observe(5)
	a.Observe(50)
	b.Observe(50)
	b.Observe(500)
	a.Merge(b)
	if a.Count() != 4 || a.Sum() != 605 || a.Max() != 500 {
		t.Fatalf("merged count/sum/max = %d/%d/%d", a.Count(), a.Sum(), a.Max())
	}
	if a.Bucket(0) != 1 || a.Bucket(1) != 2 || a.Bucket(2) != 1 {
		t.Fatalf("merged buckets = %v", a.Buckets())
	}
	// b is untouched.
	if b.Count() != 2 {
		t.Fatalf("merge mutated source: count %d", b.Count())
	}
	// Merging a nil histogram is a no-op.
	a.Merge(nil)
	if a.Count() != 4 {
		t.Fatal("nil merge changed counts")
	}
	// Mismatched bounds must panic rather than silently re-bucket.
	defer func() {
		if recover() == nil {
			t.Fatal("merge with different bounds did not panic")
		}
	}()
	a.Merge(NewHistogram(7))
}

func TestHistogramClone(t *testing.T) {
	h := NewHistogram(10)
	h.Observe(3)
	c := h.Clone()
	c.Observe(4)
	if h.Count() != 1 || c.Count() != 2 {
		t.Fatalf("clone not independent: %d/%d", h.Count(), c.Count())
	}
	if b := h.Bounds(); len(b) != 1 || b[0] != 10 {
		t.Fatalf("Bounds = %v", b)
	}
}

func TestHistogramUnsortedBounds(t *testing.T) {
	h := NewHistogram(100, 10) // bounds given out of order
	h.Observe(5)
	if h.Bucket(0) != 1 {
		t.Error("bounds were not sorted")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("My Title", "name", "value")
	tb.AddRow("alpha", 1.23456)
	tb.AddRow("b", 42)
	tb.AddRow("nan", math.NaN())
	out := tb.String()
	for _, want := range []string{"My Title", "name", "alpha", "1.235", "42", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "-") {
		t.Error("NaN should render as -")
	}
}

func TestTablePrecision(t *testing.T) {
	tb := NewTable("", "v")
	tb.SetPrecision(1)
	tb.AddRow(2.718)
	if !strings.Contains(tb.String(), "2.7") || strings.Contains(tb.String(), "2.718") {
		t.Errorf("precision not applied:\n%s", tb.String())
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %f, want 4", g)
	}
	if g := GeoMean([]float64{-1, 0}); g != 0 {
		t.Errorf("GeoMean of non-positives = %f, want 0", g)
	}
	if g := GeoMean([]float64{5, -1}); math.Abs(g-5) > 1e-9 {
		t.Errorf("GeoMean ignores non-positives: %f", g)
	}
}
