package hashalg

import (
	"encoding/binary"
	"math"
)

// MD5 implements the MD5 message-digest algorithm of RFC 1321 from scratch.
// The zero value is ready to use; MD5 values are stateless.
type MD5 struct{}

// Name implements Algorithm.
func (MD5) Name() string { return "md5" }

// Size implements Algorithm. MD5 digests are 16 bytes.
func (MD5) Size() int { return 16 }

// Sum implements Algorithm.
func (m MD5) Sum(data []byte) []byte { return m.AppendSum(nil, data) }

// AppendSum implements Algorithm. The digest state lives on the stack, so
// the call allocates only when dst lacks spare capacity.
func (MD5) AppendSum(dst, data []byte) []byte {
	d := md5State{s: md5Init}
	d.write(data)
	s := d.checkSum()
	return append(dst, s[:]...)
}

// md5K is the table K[i] = floor(2^32 * |sin(i+1)|) from RFC 1321 §3.4.
var md5K = func() [64]uint32 {
	var k [64]uint32
	for i := range k {
		k[i] = uint32(math.Floor(math.Abs(math.Sin(float64(i+1))) * (1 << 32)))
	}
	return k
}()

// md5S holds the per-round left-rotate amounts.
var md5S = [64]uint{
	7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
	5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
	4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
	6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
}

const md5BlockSize = 64

type md5State struct {
	s   [4]uint32
	x   [md5BlockSize]byte
	nx  int
	len uint64
}

var md5Init = [4]uint32{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476}

func newMD5State() *md5State {
	return &md5State{s: md5Init}
}

func (d *md5State) write(p []byte) {
	d.len += uint64(len(p))
	if d.nx > 0 {
		n := copy(d.x[d.nx:], p)
		d.nx += n
		if d.nx == md5BlockSize {
			d.block(d.x[:])
			d.nx = 0
		}
		p = p[n:]
	}
	for len(p) >= md5BlockSize {
		d.block(p[:md5BlockSize])
		p = p[md5BlockSize:]
	}
	if len(p) > 0 {
		d.nx = copy(d.x[:], p)
	}
}

func (d *md5State) checkSum() [16]byte {
	// Padding: a 1 bit, zeros, then the 64-bit little-endian bit length.
	bitLen := d.len << 3
	var pad [md5BlockSize + 8]byte
	pad[0] = 0x80
	padLen := 56 - int(d.len%64)
	if padLen <= 0 {
		padLen += 64
	}
	binary.LittleEndian.PutUint64(pad[padLen:], bitLen)
	d.write(pad[:padLen+8])
	var out [16]byte
	for i, v := range d.s {
		binary.LittleEndian.PutUint32(out[i*4:], v)
	}
	return out
}

func rotl32(x uint32, n uint) uint32 { return x<<n | x>>(32-n) }

func (d *md5State) block(p []byte) {
	var m [16]uint32
	for i := range m {
		m[i] = binary.LittleEndian.Uint32(p[i*4:])
	}
	a, b, c, dd := d.s[0], d.s[1], d.s[2], d.s[3]
	for i := 0; i < 64; i++ {
		var f uint32
		var g int
		switch {
		case i < 16:
			f = (b & c) | (^b & dd)
			g = i
		case i < 32:
			f = (dd & b) | (^dd & c)
			g = (5*i + 1) % 16
		case i < 48:
			f = b ^ c ^ dd
			g = (3*i + 5) % 16
		default:
			f = c ^ (b | ^dd)
			g = (7 * i) % 16
		}
		tmp := dd
		dd = c
		c = b
		b = b + rotl32(a+f+md5K[i]+m[g], md5S[i])
		a = tmp
	}
	d.s[0] += a
	d.s[1] += b
	d.s[2] += c
	d.s[3] += dd
}
