package hashalg

import "encoding/binary"

// Tag fills dst with the timing-only hash engine's deterministic chunk
// tag: the stand-in bytes the integrity engines store in place of a real
// digest when digest execution is switched off (the simulator analogue of
// SimpleScalar's functional/timing split — the hash unit still charges its
// full pipeline latency and occupancy, but no digest arithmetic runs).
//
// The tag is a splitmix64 stream seeded by the chunk index: O(len(dst))
// work with two multiplications per 8 bytes, deterministic across runs,
// and distinct per chunk so stored records remain distinguishable in
// memory dumps. It has no cryptographic strength whatsoever, which is why
// timing-only execution is only legal while the adversary layer is inert.
func Tag(chunk uint64, dst []byte) {
	x := chunk ^ 0x9e3779b97f4a7c15
	var word [8]byte
	for i := 0; i < len(dst); i += 8 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		binary.LittleEndian.PutUint64(word[:], z)
		copy(dst[i:], word[:])
	}
}
