package hashalg

import "encoding/binary"

// Feistel is a 128-bit block cipher built from a keyed hash in a
// Luby–Rackoff construction. Four rounds of a (pseudo)random round
// function yield a strong pseudorandom permutation, which is all the
// XOR-MAC of §5.5 requires of its encryption step E_k2.
type Feistel struct {
	alg    Algorithm
	rounds int
	// subkeys holds one precomputed round key per round, derived from the
	// user key so that round functions are independent.
	subkeys [][]byte
}

// NewFeistel derives a 4-round 128-bit Feistel cipher from key using alg as
// the round function's keyed hash.
func NewFeistel(alg Algorithm, key []byte) *Feistel {
	const rounds = 4
	f := &Feistel{alg: alg, rounds: rounds}
	for r := 0; r < rounds; r++ {
		material := make([]byte, 0, len(key)+8)
		material = append(material, key...)
		var idx [8]byte
		binary.LittleEndian.PutUint64(idx[:], uint64(r)|0xFE15<<32)
		material = append(material, idx[:]...)
		f.subkeys = append(f.subkeys, alg.Sum(material))
	}
	return f
}

// round computes the 64-bit round function F(subkey, half).
func (f *Feistel) round(r int, half uint64) uint64 {
	buf := make([]byte, 0, len(f.subkeys[r])+8)
	buf = append(buf, f.subkeys[r]...)
	var h [8]byte
	binary.LittleEndian.PutUint64(h[:], half)
	buf = append(buf, h[:]...)
	d := f.alg.Sum(buf)
	return binary.LittleEndian.Uint64(d[:8])
}

// Encrypt applies the permutation to a 128-bit block.
func (f *Feistel) Encrypt(block [16]byte) [16]byte {
	l := binary.LittleEndian.Uint64(block[:8])
	r := binary.LittleEndian.Uint64(block[8:])
	for i := 0; i < f.rounds; i++ {
		l, r = r, l^f.round(i, r)
	}
	var out [16]byte
	binary.LittleEndian.PutUint64(out[:8], l)
	binary.LittleEndian.PutUint64(out[8:], r)
	return out
}

// Decrypt inverts Encrypt.
func (f *Feistel) Decrypt(block [16]byte) [16]byte {
	l := binary.LittleEndian.Uint64(block[:8])
	r := binary.LittleEndian.Uint64(block[8:])
	for i := f.rounds - 1; i >= 0; i-- {
		l, r = r^f.round(i, l), l
	}
	var out [16]byte
	binary.LittleEndian.PutUint64(out[:8], l)
	binary.LittleEndian.PutUint64(out[8:], r)
	return out
}
