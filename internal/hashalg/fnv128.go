package hashalg

import "encoding/binary"

// FNV128 is a fast non-cryptographic 128-bit hash used to keep long timing
// sweeps cheap. It runs two independent 64-bit FNV-1a streams with distinct
// offset bases and concatenates them. It is collision resistant enough for
// a simulator's integrity bookkeeping (tamper tests still fail loudly on
// any real corruption) but must never be presented as cryptographic.
type FNV128 struct{}

// Name implements Algorithm.
func (FNV128) Name() string { return "fnv128" }

// Size implements Algorithm. The digest is 16 bytes.
func (FNV128) Size() int { return 16 }

const (
	fnvOffset64  = 0xcbf29ce484222325
	fnvPrime64   = 0x100000001b3
	fnvOffsetAlt = 0x6c62272e07bb0142 // high half of the FNV-1a 128-bit offset basis
)

// Sum implements Algorithm.
func (f FNV128) Sum(data []byte) []byte { return f.AppendSum(nil, data) }

// AppendSum implements Algorithm.
func (FNV128) AppendSum(dst, data []byte) []byte {
	h1 := uint64(fnvOffset64)
	h2 := uint64(fnvOffsetAlt)
	for _, b := range data {
		h1 = (h1 ^ uint64(b)) * fnvPrime64
		h2 = (h2 ^ uint64(b^0x5a)) * fnvPrime64
	}
	// Final avalanche so that short inputs differing in trailing zeros
	// still diffuse into every output byte.
	h1 = mix64(h1)
	h2 = mix64(h2 ^ h1)
	dst = binary.LittleEndian.AppendUint64(dst, h1)
	return binary.LittleEndian.AppendUint64(dst, h2)
}

// mix64 is the SplitMix64 finalizer.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
