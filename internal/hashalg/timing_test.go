package hashalg

import (
	"bytes"
	"testing"
)

func TestTagDeterministic(t *testing.T) {
	a := make([]byte, 20)
	b := make([]byte, 20)
	Tag(7, a)
	Tag(7, b)
	if !bytes.Equal(a, b) {
		t.Fatalf("Tag(7) not deterministic: %x vs %x", a, b)
	}
	if bytes.Equal(a, make([]byte, 20)) {
		t.Fatal("Tag(7) produced all zeros")
	}
}

func TestTagDistinctPerChunk(t *testing.T) {
	seen := map[string]uint64{}
	buf := make([]byte, 16)
	for c := uint64(0); c < 1000; c++ {
		Tag(c, buf)
		if prev, dup := seen[string(buf)]; dup {
			t.Fatalf("chunks %d and %d share tag %x", prev, c, buf)
		}
		seen[string(buf)] = c
	}
}

func TestTagPrefixStable(t *testing.T) {
	// A shorter destination receives a prefix of the longer stream, so the
	// tag for a given chunk is well-defined independent of record length.
	long := make([]byte, 24)
	short := make([]byte, 16)
	Tag(42, long)
	Tag(42, short)
	if !bytes.Equal(long[:16], short) {
		t.Fatalf("16-byte tag %x is not a prefix of 24-byte tag %x", short, long)
	}
}

func TestTagOddLength(t *testing.T) {
	// MACSize and digest sizes are not multiples of 8; the final partial
	// word must fill the tail without writing past it.
	buf := make([]byte, 21)
	buf[20] = 0xAA
	Tag(3, buf[:20])
	if buf[20] != 0xAA {
		t.Fatal("Tag wrote past the destination")
	}
	tail := buf[16:20]
	if bytes.Equal(tail, make([]byte, 4)) {
		t.Fatalf("tail bytes not filled: %x", buf[:20])
	}
}
