package hashalg

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestStreamingMatchesOneShot splits random input at random points and
// checks the streaming digest equals the one-shot Sum for both
// algorithms.
func TestStreamingMatchesOneShot(t *testing.T) {
	type alg struct {
		name    string
		oneShot Algorithm
		stream  func() Digest
	}
	algs := []alg{
		{"md5", MD5{}, NewMD5},
		{"sha1", SHA1{}, NewSHA1},
	}
	for _, a := range algs {
		a := a
		t.Run(a.name, func(t *testing.T) {
			check := func(data []byte, cuts []uint8) bool {
				d := a.stream()
				rest := data
				for _, c := range cuts {
					if len(rest) == 0 {
						break
					}
					n := int(c) % (len(rest) + 1)
					d.Write(rest[:n])
					rest = rest[n:]
				}
				d.Write(rest)
				return bytes.Equal(d.Sum(nil), a.oneShot.Sum(data))
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSumDoesNotDisturbState interleaves Sum calls with writes.
func TestSumDoesNotDisturbState(t *testing.T) {
	d := NewMD5()
	d.Write([]byte("hello "))
	mid := d.Sum(nil)
	d.Write([]byte("world"))
	final := d.Sum(nil)
	if bytes.Equal(mid, final) {
		t.Fatal("digest did not change after more input")
	}
	want := MD5{}.Sum([]byte("hello world"))
	if !bytes.Equal(final, want) {
		t.Fatal("Sum mid-stream corrupted the state")
	}
	if !bytes.Equal(mid, MD5{}.Sum([]byte("hello "))) {
		t.Fatal("mid-stream Sum wrong")
	}
}

func TestDigestReset(t *testing.T) {
	d := NewSHA1()
	d.Write([]byte("garbage"))
	d.Reset()
	d.Write([]byte("abc"))
	if !bytes.Equal(d.Sum(nil), SHA1{}.Sum([]byte("abc"))) {
		t.Fatal("Reset did not restore initial state")
	}
}

func TestDigestSumAppends(t *testing.T) {
	d := NewMD5()
	d.Write([]byte("x"))
	prefix := []byte{1, 2, 3}
	out := d.Sum(prefix)
	if !bytes.Equal(out[:3], prefix) {
		t.Fatal("Sum did not append to the prefix")
	}
	if len(out) != 3+d.Size() {
		t.Fatalf("Sum length %d", len(out))
	}
}

func TestDigestSizes(t *testing.T) {
	if NewMD5().Size() != 16 || NewMD5().BlockSize() != 64 {
		t.Error("md5 geometry")
	}
	if NewSHA1().Size() != 20 || NewSHA1().BlockSize() != 64 {
		t.Error("sha1 geometry")
	}
}

func TestNewDigestRegistry(t *testing.T) {
	for _, name := range []string{"md5", "sha1", "fnv128"} {
		d, err := NewDigest(name)
		if err != nil {
			t.Fatalf("NewDigest(%q): %v", name, err)
		}
		d.Write([]byte("abc"))
		a, _ := New(name)
		if !bytes.Equal(d.Sum(nil), a.Sum([]byte("abc"))) {
			t.Errorf("%s: streaming != one-shot", name)
		}
		d.Reset()
		d.Write([]byte("xyz"))
		if !bytes.Equal(d.Sum(nil), a.Sum([]byte("xyz"))) {
			t.Errorf("%s: reset misbehaved", name)
		}
	}
	if _, err := NewDigest("nope"); err == nil {
		t.Error("unknown digest accepted")
	}
}
