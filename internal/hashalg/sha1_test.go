package hashalg

import (
	"bytes"
	cryptosha1 "crypto/sha1"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
)

// rfc3174Vectors are from RFC 3174 §7.3 plus FIPS 180 examples.
var rfc3174Vectors = []struct{ in, out string }{
	{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
	{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq", "84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
	{strings.Repeat("a", 1000000), "34aa973cd4c4daa4f61eeb2bdbad27316534016f"},
	{strings.Repeat("0123456701234567012345670123456701234567012345670123456701234567", 10), "dea356a2cddd90c7a7ecedc5ebb563934f460452"},
	{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
}

func TestSHA1RFC3174Vectors(t *testing.T) {
	var s SHA1
	for _, v := range rfc3174Vectors {
		got := hex.EncodeToString(s.Sum([]byte(v.in)))
		if got != v.out {
			t.Errorf("SHA1(%.20q... len %d) = %s, want %s", v.in, len(v.in), got, v.out)
		}
	}
}

func TestSHA1MatchesStdlib(t *testing.T) {
	var s SHA1
	f := func(data []byte) bool {
		want := cryptosha1.Sum(data)
		return bytes.Equal(s.Sum(data), want[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSHA1AllLengthsAroundBlockBoundary(t *testing.T) {
	var s SHA1
	data := make([]byte, 200)
	for i := range data {
		data[i] = byte(i * 13)
	}
	for n := 0; n <= len(data); n++ {
		want := cryptosha1.Sum(data[:n])
		if got := s.Sum(data[:n]); !bytes.Equal(got, want[:]) {
			t.Fatalf("length %d: got %x want %x", n, got, want)
		}
	}
}

func TestSHA1Properties(t *testing.T) {
	var s SHA1
	if s.Size() != 20 {
		t.Errorf("Size() = %d, want 20", s.Size())
	}
	if s.Name() != "sha1" {
		t.Errorf("Name() = %q", s.Name())
	}
}

func TestNewRegistry(t *testing.T) {
	for _, name := range []string{"md5", "sha1", "fnv128"} {
		a, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, a.Name())
		}
		if got := a.Sum([]byte("x")); len(got) != a.Size() {
			t.Errorf("%s: digest length %d != Size %d", name, len(got), a.Size())
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("New(nope) succeeded, want error")
	}
}

func TestTruncate(t *testing.T) {
	d := []byte{1, 2, 3, 4, 5}
	got := Truncate(d, 3)
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Truncate = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Truncate beyond length did not panic")
		}
	}()
	Truncate(d, 6)
}
