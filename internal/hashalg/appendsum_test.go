package hashalg

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func allAlgorithms() []Algorithm { return []Algorithm{MD5{}, SHA1{}, FNV128{}} }

// TestAppendSumMatchesSum checks the two entry points agree on arbitrary
// inputs and arbitrary destination prefixes.
func TestAppendSumMatchesSum(t *testing.T) {
	for _, a := range allAlgorithms() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			f := func(prefix, data []byte) bool {
				got := a.AppendSum(append([]byte(nil), prefix...), data)
				want := append(append([]byte(nil), prefix...), a.Sum(data)...)
				return bytes.Equal(got, want)
			}
			if err := quick.Check(f, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestAppendSumNoAlloc asserts the append path allocates nothing once the
// destination has capacity — the contract the integrity engines' scratch
// buffers rely on.
func TestAppendSumNoAlloc(t *testing.T) {
	data := make([]byte, 64)
	for _, a := range allAlgorithms() {
		dst := make([]byte, 0, a.Size())
		allocs := testing.AllocsPerRun(100, func() {
			dst = a.AppendSum(dst[:0], data)
		})
		if allocs != 0 {
			t.Errorf("%s: AppendSum allocated %.1f times per call, want 0", a.Name(), allocs)
		}
	}
}

// TestAppendSumFreshDst checks Sum's freshly-allocated promise holds when
// built on AppendSum: successive results must not alias.
func TestAppendSumFreshDst(t *testing.T) {
	for _, a := range allAlgorithms() {
		d1 := a.Sum([]byte("first"))
		d2 := a.Sum([]byte("second"))
		save := append([]byte(nil), d1...)
		copy(d2, make([]byte, len(d2))) // clobber the second digest
		if !bytes.Equal(d1, save) {
			t.Errorf("%s: Sum results alias each other", a.Name())
		}
	}
}

// TestAlgorithmConcurrentUse hammers one Algorithm value from many
// goroutines at once — the concurrency-safety requirement the interface
// documents, and what the parallel sweep engine depends on when worker
// machines share stateless algorithm values.
func TestAlgorithmConcurrentUse(t *testing.T) {
	const (
		goroutines = 16
		iters      = 200
	)
	inputs := make([][]byte, 8)
	for i := range inputs {
		inputs[i] = bytes.Repeat([]byte{byte(i + 1)}, 32+i*17)
	}
	for _, a := range allAlgorithms() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			want := make([][]byte, len(inputs))
			for i, in := range inputs {
				want[i] = a.Sum(in)
			}
			var wg sync.WaitGroup
			errs := make(chan string, goroutines)
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					dst := make([]byte, 0, a.Size())
					for i := 0; i < iters; i++ {
						k := (g + i) % len(inputs)
						dst = a.AppendSum(dst[:0], inputs[k])
						if !bytes.Equal(dst, want[k]) {
							select {
							case errs <- a.Name() + ": concurrent AppendSum diverged":
							default:
							}
							return
						}
						if !bytes.Equal(a.Sum(inputs[k]), want[k]) {
							select {
							case errs <- a.Name() + ": concurrent Sum diverged":
							default:
							}
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Error(e)
			}
		})
	}
}
