package hashalg

import (
	"testing"
	"testing/quick"
)

func TestFeistelRoundTrip(t *testing.T) {
	f := NewFeistel(MD5{}, []byte("key"))
	check := func(block [16]byte) bool {
		return f.Decrypt(f.Encrypt(block)) == block
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestFeistelInverseRoundTrip(t *testing.T) {
	f := NewFeistel(SHA1{}, []byte("another key"))
	check := func(block [16]byte) bool {
		return f.Encrypt(f.Decrypt(block)) == block
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestFeistelPermutes(t *testing.T) {
	f := NewFeistel(MD5{}, []byte("key"))
	var zero [16]byte
	if f.Encrypt(zero) == zero {
		t.Error("Encrypt(0) == 0: suspicious identity")
	}
	a := f.Encrypt([16]byte{1})
	b := f.Encrypt([16]byte{2})
	if a == b {
		t.Error("distinct plaintexts encrypted to the same ciphertext")
	}
}

func TestFeistelKeySeparation(t *testing.T) {
	f1 := NewFeistel(MD5{}, []byte("key-1"))
	f2 := NewFeistel(MD5{}, []byte("key-2"))
	var block [16]byte
	for i := range block {
		block[i] = byte(i)
	}
	if f1.Encrypt(block) == f2.Encrypt(block) {
		t.Error("different keys produced the same ciphertext")
	}
}

func TestFeistelDeterministic(t *testing.T) {
	block := [16]byte{9, 8, 7}
	a := NewFeistel(MD5{}, []byte("k")).Encrypt(block)
	b := NewFeistel(MD5{}, []byte("k")).Encrypt(block)
	if a != b {
		t.Error("same key/plaintext gave different ciphertexts")
	}
}

// TestFeistelDiffusion checks that a single plaintext bit flip changes
// both halves of the ciphertext with 4 rounds.
func TestFeistelDiffusion(t *testing.T) {
	f := NewFeistel(MD5{}, []byte("diffusion"))
	var base [16]byte
	c0 := f.Encrypt(base)
	flipped := base
	flipped[15] ^= 1 // flip a bit in the right half
	c1 := f.Encrypt(flipped)
	leftChanged, rightChanged := false, false
	for i := 0; i < 8; i++ {
		if c0[i] != c1[i] {
			leftChanged = true
		}
		if c0[8+i] != c1[8+i] {
			rightChanged = true
		}
	}
	if !leftChanged || !rightChanged {
		t.Errorf("poor diffusion: left changed %v, right changed %v", leftChanged, rightChanged)
	}
}
