package hashalg

import "testing"

func benchAlg(b *testing.B, a Algorithm, n int) {
	data := make([]byte, n)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Sum(data)
	}
}

// benchAppend measures the zero-allocation digest path: the destination
// buffer is reused across iterations, so steady state must report
// 0 allocs/op for every algorithm.
func benchAppend(b *testing.B, a Algorithm, n int) {
	data := make([]byte, n)
	dst := make([]byte, 0, a.Size())
	b.SetBytes(int64(n))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = a.AppendSum(dst[:0], data)
	}
}

func BenchmarkSHA1Chunk64(b *testing.B)   { benchAlg(b, SHA1{}, 64) }
func BenchmarkFNV128Chunk64(b *testing.B) { benchAlg(b, FNV128{}, 64) }
func BenchmarkMD5Chunk4K(b *testing.B)    { benchAlg(b, MD5{}, 4096) }

func BenchmarkSHA1AppendChunk64(b *testing.B)   { benchAppend(b, SHA1{}, 64) }
func BenchmarkFNV128AppendChunk64(b *testing.B) { benchAppend(b, FNV128{}, 64) }
func BenchmarkMD5AppendChunk64(b *testing.B)    { benchAppend(b, MD5{}, 64) }
func BenchmarkMD5AppendChunk4K(b *testing.B)    { benchAppend(b, MD5{}, 4096) }

func BenchmarkXorMACCompute(b *testing.B) {
	m := NewXorMAC(MD5{}, []byte("key"))
	blocks := macBlocks(2, 64, 1)
	b.SetBytes(128)
	for i := 0; i < b.N; i++ {
		m.Compute(blocks, 0)
	}
}

func BenchmarkXorMACUpdate(b *testing.B) {
	m := NewXorMAC(MD5{}, []byte("key"))
	blocks := macBlocks(2, 64, 1)
	tag := m.Compute(blocks, 0)
	newBlock := macBlocks(1, 64, 9)[0]
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		tag = m.Update(tag, 0, blocks[0], newBlock)
		blocks[0], newBlock = newBlock, blocks[0]
	}
}

func BenchmarkFeistelEncrypt(b *testing.B) {
	f := NewFeistel(MD5{}, []byte("key"))
	var block [16]byte
	for i := 0; i < b.N; i++ {
		block = f.Encrypt(block)
	}
}
