package hashalg

import "encoding/binary"

// MACSize is the XOR-MAC tag length in bytes (128 bits, matching the
// paper's stored hash length, so MAC records drop into the same tree
// slots as ordinary hashes).
const MACSize = 16

// MaxMACBlocks is the largest number of cache blocks one chunk may span
// under the incremental scheme: one timestamp bit per block is packed into
// the tag's final byte.
const MaxMACBlocks = 8

// XorMAC is the incremental MAC of §5.5, after Bellare, Guérin and Rogaway:
//
//	M_{k1,k2}(m_1..m_n) = E_{k2}( h_{k1}(1, m_1, b_1) ⊕ … ⊕ h_{k1}(n, m_n, b_n) )
//
// where b_i is the 1-bit per-block timestamp the paper adds to defeat the
// two replay attacks analyzed in §5.5: the stamp flips on every write-back
// and is hashed into the block's term, so an unchecked "old value" read
// during an update can never cancel against a current term.
//
// Storage format: the 15 low bytes of the accumulator carry the XOR of the
// per-block terms (whose 16th byte is zeroed); the 16th byte carries the
// packed timestamp bits. The whole 16-byte record is encrypted with a
// Feistel PRP, so tags remain MACSize bytes and the stored timestamps are
// themselves authenticated.
//
// A tag can be updated for a single block change without touching the
// other blocks: decrypt, XOR out the old term, XOR in the new term, flip
// the stamp bit, re-encrypt — constant work, which is what lets the `i`
// scheme's write-back skip fetching the rest of the chunk.
type XorMAC struct {
	alg Algorithm
	k1  []byte
	e   *Feistel

	// Timestamps toggles folding the stamp bits into the per-block terms.
	// It exists so tests can demonstrate the paper's two attacks against
	// the unstamped variant; production use must leave it true.
	Timestamps bool
}

// NewXorMAC builds an XOR-MAC over alg (which supplies both the term hash
// h and the Feistel round function) keyed with key.
func NewXorMAC(alg Algorithm, key []byte) *XorMAC {
	k1 := alg.Sum(append([]byte("xormac-h|"), key...))
	k2 := alg.Sum(append([]byte("xormac-e|"), key...))
	return &XorMAC{alg: alg, k1: k1, e: NewFeistel(alg, k2), Timestamps: true}
}

// term computes h_{k1}(index, block, stamp), truncated to MACSize bytes
// with the final byte cleared (that byte is reserved for the packed
// timestamps in the accumulator).
func (m *XorMAC) term(index int, block []byte, stamp bool) [MACSize]byte {
	buf := make([]byte, 0, len(m.k1)+9+len(block))
	buf = append(buf, m.k1...)
	var ix [8]byte
	binary.LittleEndian.PutUint64(ix[:], uint64(index))
	buf = append(buf, ix[:]...)
	if m.Timestamps && stamp {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = append(buf, block...)
	d := m.alg.Sum(buf)
	var out [MACSize]byte
	copy(out[:], d)
	out[MACSize-1] = 0
	return out
}

func bit(stamps byte, i int) bool { return stamps&(1<<uint(i)) != 0 }

// Compute produces the tag over blocks with the given packed timestamp
// bits (bit i belongs to block i). len(blocks) must not exceed
// MaxMACBlocks.
func (m *XorMAC) Compute(blocks [][]byte, stamps byte) [MACSize]byte {
	if len(blocks) > MaxMACBlocks {
		panic("hashalg: too many blocks for one XOR-MAC record")
	}
	var acc [MACSize]byte
	for i, b := range blocks {
		t := m.term(i, b, bit(stamps, i))
		for j := 0; j < MACSize-1; j++ {
			acc[j] ^= t[j]
		}
	}
	acc[MACSize-1] = stamps
	return m.e.Encrypt(acc)
}

// Stamps decrypts the tag and returns the authenticated packed timestamp
// bits stored inside it.
func (m *XorMAC) Stamps(tag [MACSize]byte) byte {
	acc := m.e.Decrypt(tag)
	return acc[MACSize-1]
}

// Verify reports whether tag authenticates blocks under the timestamps the
// tag itself carries.
func (m *XorMAC) Verify(tag [MACSize]byte, blocks [][]byte) bool {
	return m.Compute(blocks, m.Stamps(tag)) == tag
}

// Update derives the tag after block index changes from oldBlock to
// newBlock, flipping that block's timestamp bit. It performs a constant
// amount of work independent of the number of blocks. oldBlock is the
// value read back from (untrusted) memory; the stamped terms guarantee a
// lying read cannot yield a tag that later verifies, per §5.5.
func (m *XorMAC) Update(tag [MACSize]byte, index int, oldBlock, newBlock []byte) [MACSize]byte {
	acc := m.e.Decrypt(tag)
	stamps := acc[MACSize-1]
	oldT := m.term(index, oldBlock, bit(stamps, index))
	newT := m.term(index, newBlock, !bit(stamps, index))
	for j := 0; j < MACSize-1; j++ {
		acc[j] ^= oldT[j] ^ newT[j]
	}
	acc[MACSize-1] = stamps ^ (1 << uint(index))
	return m.e.Encrypt(acc)
}
