// Package hashalg implements the cryptographic primitives the secure
// processor's hash unit models: MD5 (RFC 1321) and SHA-1 (RFC 3174) built
// from scratch, a fast non-cryptographic 128-bit hash for long timing
// sweeps, and the incremental XOR-MAC of Bellare, Guérin and Rogaway used
// by the paper's `i` scheme (§5.5).
//
// The paper's hash unit truncates every digest to a fixed "hash length"
// (128 bits in Table 1); Algorithm implementations here expose their native
// digest and callers truncate via Truncate.
package hashalg

import "fmt"

// Algorithm computes a one-shot digest over a byte slice. Implementations
// must be safe for concurrent use by multiple goroutines: every method may
// be called from many goroutines at once with no external locking, which
// in practice means implementations are stateless values whose per-call
// state lives on the stack.
type Algorithm interface {
	// Name returns a short identifier such as "md5" or "sha1".
	Name() string
	// Size returns the digest length in bytes.
	Size() int
	// Sum returns the digest of data in a freshly allocated slice the
	// caller owns; successive calls never alias each other's results.
	Sum(data []byte) []byte
	// AppendSum appends the digest of data to dst and returns the
	// extended slice, allocating nothing when dst has Size() spare
	// capacity. It is the hot-path form of Sum: the result aliases dst's
	// backing array (not internal state), so — like Sum — concurrent
	// calls are safe as long as each goroutine supplies its own dst.
	AppendSum(dst, data []byte) []byte
}

// New returns the algorithm registered under name: "md5", "sha1" or
// "fnv128". It returns an error for unknown names.
func New(name string) (Algorithm, error) {
	switch name {
	case "md5":
		return MD5{}, nil
	case "sha1":
		return SHA1{}, nil
	case "fnv128":
		return FNV128{}, nil
	}
	return nil, fmt.Errorf("hashalg: unknown algorithm %q", name)
}

// Truncate returns the first n bytes of digest, which must be at least n
// bytes long. It is how the secure processor reduces a native digest to the
// tree's fixed hash length.
func Truncate(digest []byte, n int) []byte {
	if len(digest) < n {
		panic(fmt.Sprintf("hashalg: cannot truncate %d-byte digest to %d bytes", len(digest), n))
	}
	return digest[:n]
}
