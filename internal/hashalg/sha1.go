package hashalg

import "encoding/binary"

// SHA1 implements the SHA-1 secure hash algorithm of RFC 3174 from scratch.
// The zero value is ready to use; SHA1 values are stateless.
type SHA1 struct{}

// Name implements Algorithm.
func (SHA1) Name() string { return "sha1" }

// Size implements Algorithm. SHA-1 digests are 20 bytes.
func (SHA1) Size() int { return 20 }

// Sum implements Algorithm.
func (s SHA1) Sum(data []byte) []byte { return s.AppendSum(nil, data) }

// AppendSum implements Algorithm. The digest state lives on the stack, so
// the call allocates only when dst lacks spare capacity.
func (SHA1) AppendSum(dst, data []byte) []byte {
	d := sha1State{h: sha1Init}
	d.write(data)
	s := d.checkSum()
	return append(dst, s[:]...)
}

const sha1BlockSize = 64

type sha1State struct {
	h   [5]uint32
	x   [sha1BlockSize]byte
	nx  int
	len uint64
}

var sha1Init = [5]uint32{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0}

func newSHA1State() *sha1State {
	return &sha1State{h: sha1Init}
}

func (d *sha1State) write(p []byte) {
	d.len += uint64(len(p))
	if d.nx > 0 {
		n := copy(d.x[d.nx:], p)
		d.nx += n
		if d.nx == sha1BlockSize {
			d.block(d.x[:])
			d.nx = 0
		}
		p = p[n:]
	}
	for len(p) >= sha1BlockSize {
		d.block(p[:sha1BlockSize])
		p = p[sha1BlockSize:]
	}
	if len(p) > 0 {
		d.nx = copy(d.x[:], p)
	}
}

func (d *sha1State) checkSum() [20]byte {
	bitLen := d.len << 3
	var pad [sha1BlockSize + 8]byte
	pad[0] = 0x80
	padLen := 56 - int(d.len%64)
	if padLen <= 0 {
		padLen += 64
	}
	binary.BigEndian.PutUint64(pad[padLen:], bitLen)
	d.write(pad[:padLen+8])
	var out [20]byte
	for i, v := range d.h {
		binary.BigEndian.PutUint32(out[i*4:], v)
	}
	return out
}

func (d *sha1State) block(p []byte) {
	var w [80]uint32
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint32(p[i*4:])
	}
	for i := 16; i < 80; i++ {
		w[i] = rotl32(w[i-3]^w[i-8]^w[i-14]^w[i-16], 1)
	}
	a, b, c, dd, e := d.h[0], d.h[1], d.h[2], d.h[3], d.h[4]
	for i := 0; i < 80; i++ {
		var f, k uint32
		switch {
		case i < 20:
			f = (b & c) | (^b & dd)
			k = 0x5a827999
		case i < 40:
			f = b ^ c ^ dd
			k = 0x6ed9eba1
		case i < 60:
			f = (b & c) | (b & dd) | (c & dd)
			k = 0x8f1bbcdc
		default:
			f = b ^ c ^ dd
			k = 0xca62c1d6
		}
		tmp := rotl32(a, 5) + f + e + k + w[i]
		e = dd
		dd = c
		c = rotl32(b, 30)
		b = a
		a = tmp
	}
	d.h[0] += a
	d.h[1] += b
	d.h[2] += c
	d.h[3] += dd
	d.h[4] += e
}
