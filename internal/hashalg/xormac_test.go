package hashalg

import (
	"testing"
	"testing/quick"
)

func macBlocks(n, bs int, seed byte) [][]byte {
	blocks := make([][]byte, n)
	for i := range blocks {
		b := make([]byte, bs)
		for j := range b {
			b[j] = seed + byte(i*31+j)
		}
		blocks[i] = b
	}
	return blocks
}

func TestXorMACVerify(t *testing.T) {
	m := NewXorMAC(MD5{}, []byte("key"))
	blocks := macBlocks(4, 64, 1)
	tag := m.Compute(blocks, 0b0101)
	if !m.Verify(tag, blocks) {
		t.Fatal("tag does not verify its own blocks")
	}
	if m.Stamps(tag) != 0b0101 {
		t.Fatalf("Stamps = %08b, want 0101", m.Stamps(tag))
	}
}

func TestXorMACDetectsBlockTampering(t *testing.T) {
	m := NewXorMAC(MD5{}, []byte("key"))
	blocks := macBlocks(4, 64, 1)
	tag := m.Compute(blocks, 0)
	for i := range blocks {
		for _, bit := range []int{0, 13, 511} {
			mod := macBlocks(4, 64, 1)
			mod[i][bit/8] ^= 1 << (bit % 8)
			if m.Verify(tag, mod) {
				t.Errorf("tampering block %d bit %d went undetected", i, bit)
			}
		}
	}
}

func TestXorMACDetectsBlockSwap(t *testing.T) {
	m := NewXorMAC(MD5{}, []byte("key"))
	blocks := macBlocks(2, 64, 7)
	tag := m.Compute(blocks, 0)
	swapped := [][]byte{blocks[1], blocks[0]}
	if m.Verify(tag, swapped) {
		t.Error("swapping blocks went undetected (index not bound into terms)")
	}
}

func TestXorMACDetectsStampTampering(t *testing.T) {
	m := NewXorMAC(MD5{}, []byte("key"))
	blocks := macBlocks(2, 64, 3)
	tagA := m.Compute(blocks, 0b01)
	tagB := m.Compute(blocks, 0b00)
	if tagA == tagB {
		t.Error("stamps not bound into the tag")
	}
	if m.Verify(tagB, blocks) != true {
		t.Error("tagB should verify (stamps travel inside the tag)")
	}
}

// TestXorMACUpdateEquivalence is the central incremental property: updating
// one block's contribution must produce exactly the tag a from-scratch
// computation over the new blocks and flipped stamp would.
func TestXorMACUpdateEquivalence(t *testing.T) {
	m := NewXorMAC(MD5{}, []byte("key"))
	check := func(a, b, c [8]byte, idx uint8, stamps byte) bool {
		i := int(idx) % 3
		blocks := [][]byte{a[:], b[:], c[:]}
		tag := m.Compute(blocks, stamps)

		newBlock := make([]byte, 8)
		copy(newBlock, blocks[i])
		newBlock[0] ^= 0xff
		updated := m.Update(tag, i, blocks[i], newBlock)

		after := [][]byte{a[:], b[:], c[:]}
		after[i] = newBlock
		want := m.Compute(after, stamps^(1<<uint(i)))
		return updated == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestXorMACRepeatedUpdates(t *testing.T) {
	m := NewXorMAC(SHA1{}, []byte("key2"))
	blocks := macBlocks(4, 32, 9)
	tag := m.Compute(blocks, 0)
	// Write back block 2 five times; the stamp must flip each time and the
	// tag must track the evolving contents.
	cur := blocks[2]
	for round := 0; round < 5; round++ {
		next := append([]byte(nil), cur...)
		next[round] ^= 0xA5
		tag = m.Update(tag, 2, cur, next)
		cur = next
		blocks[2] = cur
		if !m.Verify(tag, blocks) {
			t.Fatalf("round %d: tag no longer verifies", round)
		}
		wantStamp := byte(0)
		if round%2 == 0 {
			wantStamp = 1 << 2
		}
		if m.Stamps(tag)&(1<<2) != wantStamp {
			t.Fatalf("round %d: stamp bit = %08b", round, m.Stamps(tag))
		}
	}
}

// TestXorMACReplayAttackOnePredictedValue reproduces the first attack of
// §5.5: during write-back the old value is read from memory *unchecked*;
// the adversary answers with the (correctly predicted) new value and drops
// the write, leaving the old value in memory. Without per-block timestamps
// the old and new terms cancel and stale data verifies; with them the
// attack is detected.
func TestXorMACReplayAttackOnePredictedValue(t *testing.T) {
	dOld := macBlocks(1, 64, 1)[0]
	dNew := macBlocks(1, 64, 2)[0]

	for _, stamped := range []bool{false, true} {
		m := NewXorMAC(MD5{}, []byte("key"))
		m.Timestamps = stamped
		tag := m.Compute([][]byte{dOld}, 0)
		// Honest processor updates the tag; adversary's unchecked read
		// returned dNew (the prediction) instead of dOld.
		tag = m.Update(tag, 0, dNew, dNew)
		// Memory still holds dOld. Does it verify?
		passed := m.Verify(tag, [][]byte{dOld})
		if stamped && passed {
			t.Error("timestamps enabled: stale value verified (attack succeeded)")
		}
		if !stamped && !passed {
			t.Error("timestamps disabled: attack should succeed, demonstrating the vulnerability")
		}
	}
}

// TestXorMACInjectionAttackUnchangedValue reproduces the second attack of
// §5.5: the written-back value equals the old one, and the adversary lies
// at the unchecked read with a value of its choosing, which then verifies
// from memory — unless timestamps are in the terms.
func TestXorMACInjectionAttackUnchangedValue(t *testing.T) {
	dOld := macBlocks(1, 64, 1)[0]
	evil := macBlocks(1, 64, 66)[0]

	for _, stamped := range []bool{false, true} {
		m := NewXorMAC(MD5{}, []byte("key"))
		m.Timestamps = stamped
		tag := m.Compute([][]byte{dOld}, 0)
		// Write-back of an unchanged value; the unchecked read returns the
		// adversary's chosen block.
		tag = m.Update(tag, 0, evil, dOld)
		// The adversary stores its block in memory.
		passed := m.Verify(tag, [][]byte{evil})
		if stamped && passed {
			t.Error("timestamps enabled: injected value verified (attack succeeded)")
		}
		if !stamped && !passed {
			t.Error("timestamps disabled: attack should succeed, demonstrating the vulnerability")
		}
	}
}

func TestXorMACMaxBlocks(t *testing.T) {
	m := NewXorMAC(MD5{}, []byte("key"))
	blocks := macBlocks(MaxMACBlocks, 16, 4)
	tag := m.Compute(blocks, 0xFF)
	if !m.Verify(tag, blocks) {
		t.Error("8-block tag does not verify")
	}
	defer func() {
		if recover() == nil {
			t.Error("Compute over 9 blocks did not panic")
		}
	}()
	m.Compute(macBlocks(9, 16, 4), 0)
}

func TestXorMACKeySeparation(t *testing.T) {
	blocks := macBlocks(2, 64, 5)
	t1 := NewXorMAC(MD5{}, []byte("k1")).Compute(blocks, 0)
	t2 := NewXorMAC(MD5{}, []byte("k2")).Compute(blocks, 0)
	if t1 == t2 {
		t.Error("different keys produced identical tags")
	}
	if NewXorMAC(MD5{}, []byte("k2")).Verify(t1, blocks) {
		t.Error("tag verified under the wrong key")
	}
}
