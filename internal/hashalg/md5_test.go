package hashalg

import (
	"bytes"
	cryptomd5 "crypto/md5"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// rfc1321Vectors are the test suite from RFC 1321 appendix A.5.
var rfc1321Vectors = []struct{ in, out string }{
	{"", "d41d8cd98f00b204e9800998ecf8427e"},
	{"a", "0cc175b9c0f1b6a831c399e269772661"},
	{"abc", "900150983cd24fb0d6963f7d28e17f72"},
	{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
	{"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"},
	{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789", "d174ab98d277d9f5a5611c2c9f419d9f"},
	{"12345678901234567890123456789012345678901234567890123456789012345678901234567890", "57edf4a22be3c955ac49da2e2107b67a"},
}

func TestMD5RFC1321Vectors(t *testing.T) {
	var m MD5
	for _, v := range rfc1321Vectors {
		got := hex.EncodeToString(m.Sum([]byte(v.in)))
		if got != v.out {
			t.Errorf("MD5(%q) = %s, want %s", v.in, got, v.out)
		}
	}
}

func TestMD5MatchesStdlib(t *testing.T) {
	var m MD5
	f := func(data []byte) bool {
		want := cryptomd5.Sum(data)
		return bytes.Equal(m.Sum(data), want[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMD5AllLengthsAroundBlockBoundary(t *testing.T) {
	var m MD5
	data := make([]byte, 200)
	for i := range data {
		data[i] = byte(i * 7)
	}
	for n := 0; n <= len(data); n++ {
		want := cryptomd5.Sum(data[:n])
		if got := m.Sum(data[:n]); !bytes.Equal(got, want[:]) {
			t.Fatalf("length %d: got %x want %x", n, got, want)
		}
	}
}

func TestMD5Properties(t *testing.T) {
	var m MD5
	if m.Size() != 16 {
		t.Errorf("Size() = %d, want 16", m.Size())
	}
	if m.Name() != "md5" {
		t.Errorf("Name() = %q", m.Name())
	}
	a := m.Sum([]byte("hello"))
	b := m.Sum([]byte("hello"))
	if !bytes.Equal(a, b) {
		t.Error("MD5 not deterministic")
	}
	c := m.Sum([]byte("hellp"))
	if bytes.Equal(a, c) {
		t.Error("single-character change did not alter digest")
	}
}

func BenchmarkMD5Chunk64(b *testing.B) {
	var m MD5
	data := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		m.Sum(data)
	}
}
