package hashalg

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestFNV128Basics(t *testing.T) {
	var f FNV128
	if f.Size() != 16 {
		t.Errorf("Size() = %d, want 16", f.Size())
	}
	if f.Name() != "fnv128" {
		t.Errorf("Name() = %q", f.Name())
	}
	if got := f.Sum([]byte("abc")); len(got) != 16 {
		t.Errorf("digest length %d", len(got))
	}
}

func TestFNV128Deterministic(t *testing.T) {
	var f FNV128
	check := func(data []byte) bool {
		return bytes.Equal(f.Sum(data), f.Sum(data))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFNV128SingleBitAvalanche verifies that flipping any single bit of a
// 64-byte chunk changes the digest — the property the simulator's tamper
// tests rely on.
func TestFNV128SingleBitAvalanche(t *testing.T) {
	var f FNV128
	base := make([]byte, 64)
	for i := range base {
		base[i] = byte(i)
	}
	want := f.Sum(base)
	for i := 0; i < len(base)*8; i++ {
		mod := append([]byte(nil), base...)
		mod[i/8] ^= 1 << (i % 8)
		if bytes.Equal(f.Sum(mod), want) {
			t.Fatalf("flipping bit %d left digest unchanged", i)
		}
	}
}

// TestFNV128TrailingZeros checks that inputs differing only in length of a
// zero suffix produce distinct digests (weakness of plain XOR folding that
// the finalizer must prevent).
func TestFNV128TrailingZeros(t *testing.T) {
	var f FNV128
	seen := make(map[string]int)
	buf := make([]byte, 128)
	for n := 0; n <= len(buf); n++ {
		d := string(f.Sum(buf[:n]))
		if prev, dup := seen[d]; dup {
			t.Fatalf("lengths %d and %d collide", prev, n)
		}
		seen[d] = n
	}
}

func TestFNV128NoQuickCollisions(t *testing.T) {
	var f FNV128
	seen := make(map[string][]byte)
	check := func(data []byte) bool {
		d := string(f.Sum(data))
		if prev, ok := seen[d]; ok {
			return bytes.Equal(prev, data)
		}
		seen[d] = append([]byte(nil), data...)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
