package hashalg

// Digest is an incremental hash computation over a byte stream, the
// hash.Hash subset the repository needs: the hash unit digests cache
// blocks as bus beats arrive, and applications (e.g. cmd/memtree) hash
// files larger than memory. Implementations are not safe for concurrent
// use.
type Digest interface {
	// Write absorbs more input. It never fails.
	Write(p []byte) (int, error)
	// Sum appends the current digest to b and returns the result. It does
	// not change the underlying state, so more data can be written after.
	Sum(b []byte) []byte
	// Reset restores the initial state.
	Reset()
	// Size returns the digest length in bytes.
	Size() int
	// BlockSize returns the algorithm's internal block size.
	BlockSize() int
}

// NewMD5 returns a streaming MD5 computation.
func NewMD5() Digest { return &md5Digest{state: newMD5State()} }

type md5Digest struct {
	state *md5State
}

func (d *md5Digest) Write(p []byte) (int, error) {
	d.state.write(p)
	return len(p), nil
}

func (d *md5Digest) Sum(b []byte) []byte {
	// Checksum on a copy so further writes continue from this state.
	cp := *d.state
	s := cp.checkSum()
	return append(b, s[:]...)
}

func (d *md5Digest) Reset()         { d.state = newMD5State() }
func (d *md5Digest) Size() int      { return 16 }
func (d *md5Digest) BlockSize() int { return md5BlockSize }

// NewSHA1 returns a streaming SHA-1 computation.
func NewSHA1() Digest { return &sha1Digest{state: newSHA1State()} }

type sha1Digest struct {
	state *sha1State
}

func (d *sha1Digest) Write(p []byte) (int, error) {
	d.state.write(p)
	return len(p), nil
}

func (d *sha1Digest) Sum(b []byte) []byte {
	cp := *d.state
	s := cp.checkSum()
	return append(b, s[:]...)
}

func (d *sha1Digest) Reset()         { d.state = newSHA1State() }
func (d *sha1Digest) Size() int      { return 20 }
func (d *sha1Digest) BlockSize() int { return sha1BlockSize }

// NewDigest returns a streaming computation for a registered algorithm
// name ("md5" or "sha1"; fnv128 is one-shot only).
func NewDigest(name string) (Digest, error) {
	switch name {
	case "md5":
		return NewMD5(), nil
	case "sha1":
		return NewSHA1(), nil
	}
	a, err := New(name)
	if err != nil {
		return nil, err
	}
	return &bufferedDigest{alg: a}, nil
}

// bufferedDigest adapts a one-shot Algorithm to the Digest interface by
// buffering input; suitable only for bounded inputs (the simulator's
// chunks are 64–512 bytes).
type bufferedDigest struct {
	alg Algorithm
	buf []byte
}

func (d *bufferedDigest) Write(p []byte) (int, error) {
	d.buf = append(d.buf, p...)
	return len(p), nil
}

func (d *bufferedDigest) Sum(b []byte) []byte { return append(b, d.alg.Sum(d.buf)...) }
func (d *bufferedDigest) Reset()              { d.buf = d.buf[:0] }
func (d *bufferedDigest) Size() int           { return d.alg.Size() }
func (d *bufferedDigest) BlockSize() int      { return 1 }
