package hashalg_test

import (
	"encoding/hex"
	"fmt"

	"memverify/internal/hashalg"
)

// Example computes a one-shot digest with each from-scratch algorithm.
func Example() {
	fmt.Println("md5 ", hex.EncodeToString(hashalg.MD5{}.Sum([]byte("abc"))))
	fmt.Println("sha1", hex.EncodeToString(hashalg.SHA1{}.Sum([]byte("abc"))))
	// Output:
	// md5  900150983cd24fb0d6963f7d28e17f72
	// sha1 a9993e364706816aba3e25717850c26c9cd0d89d
}

// ExampleXorMAC shows the incremental MAC of §5.5: one block of a chunk
// changes and the tag is updated in constant work, with the 1-bit
// timestamp flipping to defeat replay of the unchecked old-value read.
func ExampleXorMAC() {
	mac := hashalg.NewXorMAC(hashalg.MD5{}, []byte("processor key"))
	blockA := make([]byte, 64)
	blockB := make([]byte, 64)
	tag := mac.Compute([][]byte{blockA, blockB}, 0)

	// Write-back of block 0: constant-work update, stamp bit 0 flips.
	newA := append([]byte(nil), blockA...)
	newA[0] = 0xEE
	tag = mac.Update(tag, 0, blockA, newA)

	fmt.Println("verifies new contents:", mac.Verify(tag, [][]byte{newA, blockB}))
	fmt.Println("rejects stale contents:", !mac.Verify(tag, [][]byte{blockA, blockB}))
	fmt.Printf("stamps: %02b\n", mac.Stamps(tag))
	// Output:
	// verifies new contents: true
	// rejects stale contents: true
	// stamps: 01
}

// ExampleNewDigest streams data through the SHA-1 implementation.
func ExampleNewDigest() {
	d, _ := hashalg.NewDigest("sha1")
	d.Write([]byte("a"))
	d.Write([]byte("bc"))
	fmt.Println(hex.EncodeToString(d.Sum(nil)))
	// Output:
	// a9993e364706816aba3e25717850c26c9cd0d89d
}
