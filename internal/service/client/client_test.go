package client

import (
	"bytes"
	"errors"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"memverify/internal/core"
	"memverify/internal/obs"
	"memverify/internal/service"
	"memverify/internal/shard"
	"memverify/internal/trace"
)

func testMachine(scheme core.Scheme, policy string) core.Config {
	cfg := core.DefaultConfig()
	cfg.Scheme = scheme
	cfg.Functional = true
	cfg.ProtectedBytes = 256 << 10
	cfg.L2Size = 32 << 10
	cfg.HashAlg = "fnv128"
	cfg.ViolationPolicy = policy
	cfg.Benchmark = trace.Uniform("client", 16<<10)
	cfg.Benchmark.CodeSet = 4 << 10
	if scheme == core.SchemeMulti || scheme == core.SchemeIncr {
		cfg.ChunkBlocks = 2
	}
	return cfg
}

func startService(t *testing.T, cfg service.Config) (*service.Service, *httptest.Server) {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return svc, ts
}

// TestRemoteMatchesLocal drives the same deterministic mirror-checked
// workload through a local shard.Store and through the wire, and demands
// byte-identical reads: the service layer must be a transparent window
// onto the same verified-memory semantics.
func TestRemoteMatchesLocal(t *testing.T) {
	for _, scheme := range []core.Scheme{core.SchemeCached, core.SchemeIncr} {
		t.Run(string(scheme), func(t *testing.T) {
			mcfg := testMachine(scheme, "record")
			scfg := shard.Config{Machine: mcfg, Shards: 2}

			local, err := shard.New(scfg)
			if err != nil {
				t.Fatal(err)
			}
			defer local.Close()

			_, ts := startService(t, service.Config{Tenants: []service.TenantConfig{
				{Name: "alpha", Store: scfg},
			}})
			c, err := Dial(ts.URL, "alpha")
			if err != nil {
				t.Fatalf("Dial: %v", err)
			}
			defer c.Close()
			if c.Span() != local.Span() || c.Shards() != local.Shards() {
				t.Fatalf("remote geometry span=%d shards=%d, local span=%d shards=%d",
					c.Span(), c.Shards(), local.Span(), local.Shards())
			}

			rng := rand.New(rand.NewSource(7))
			span := local.Span()
			lb, rb := local.NewBatch(), c.NewBatch()
			type read struct{ loc, rem []byte }
			var reads []read
			for op := 0; op < 400; op++ {
				length := 1 + rng.Intn(200)
				off := rng.Uint64() % (span - uint64(length))
				if rng.Intn(2) == 0 {
					p := make([]byte, length)
					rng.Read(p)
					lb.Store(off, p)
					rb.Store(off, p)
				} else {
					r := read{loc: make([]byte, length), rem: make([]byte, length)}
					lb.Load(off, r.loc)
					rb.Load(off, r.rem)
					reads = append(reads, r)
				}
				if (op+1)%16 == 0 {
					if err := lb.Wait(); err != nil {
						t.Fatalf("local Wait: %v", err)
					}
					if err := rb.Wait(); err != nil {
						t.Fatalf("remote Wait: %v", err)
					}
					for i, r := range reads {
						if !bytes.Equal(r.loc, r.rem) {
							t.Fatalf("read %d diverged: local %x..., remote %x...", i, r.loc[:4], r.rem[:4])
						}
					}
					reads = reads[:0]
				}
			}
			if err := lb.Wait(); err != nil {
				t.Fatal(err)
			}
			if err := rb.Wait(); err != nil {
				t.Fatal(err)
			}
			if err := local.VerifyAll(); err != nil {
				t.Errorf("local VerifyAll: %v", err)
			}
			if err := c.Verify(); err != nil {
				t.Errorf("remote Verify: %v", err)
			}
		})
	}
}

// TestTenantTamperIsolation is the containment contract end to end: a
// tampered halt-policy tenant 503s, its neighbor keeps serving clean, and
// the merged health degrades without going unhealthy.
func TestTenantTamperIsolation(t *testing.T) {
	mcfg := testMachine(core.SchemeCached, "halt")
	svc, ts := startService(t, service.Config{
		Tenants: []service.TenantConfig{
			{Name: "victim", Store: shard.Config{Machine: mcfg, Shards: 2}},
			{Name: "bystander", Store: shard.Config{Machine: mcfg, Shards: 2}},
		},
		AllowTamper: true,
	})
	victim, err := Dial(ts.URL, "victim")
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	bystander, err := Dial(ts.URL, "bystander")
	if err != nil {
		t.Fatal(err)
	}
	defer bystander.Close()

	for _, c := range []*Client{victim, bystander} {
		if err := c.StoreBytes(0, bytes.Repeat([]byte{0x11}, 128)); err != nil {
			t.Fatalf("seed write: %v", err)
		}
	}

	if err := victim.Tamper(0, 0, 0xFF); err != nil {
		t.Fatalf("Tamper: %v", err)
	}
	verr := victim.Verify()
	if verr == nil {
		t.Fatal("tampered tenant verified clean")
	}
	var apiErr *service.APIError
	if !errors.As(verr, &apiErr) || apiErr.Status != 503 {
		t.Fatalf("tampered verify error %v, want a 503 APIError", verr)
	}
	if apiErr.Kind != service.KindViolation && apiErr.Kind != service.KindHalted {
		t.Errorf("tampered verify kind %q", apiErr.Kind)
	}
	if apiErr.Tenant != "victim" {
		t.Errorf("violation attributed to %q, want victim", apiErr.Tenant)
	}

	// The halted shard refuses further traffic on the victim...
	err = victim.LoadBytes(0, make([]byte, 8))
	if !errors.As(err, &apiErr) || apiErr.Status != 503 {
		t.Fatalf("post-tamper victim read: %v, want 503", err)
	}
	// ...while the bystander still serves, mirror-clean.
	got := make([]byte, 128)
	if err := bystander.LoadBytes(0, got); err != nil {
		t.Fatalf("bystander read after neighbor tamper: %v", err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{0x11}, 128)) {
		t.Error("bystander bytes corrupted")
	}
	if err := bystander.Verify(); err != nil {
		t.Errorf("bystander Verify: %v", err)
	}

	if st := svc.Health().State(); st != obs.Degraded {
		t.Errorf("service health %v, want degraded (one tenant down, one serving)", st)
	}
}

// TestPersistedTenantSurvivesRestart checkpoints through the wire, tears
// the whole service down, rebuilds it from the same directories and
// demands the bytes (and epoch) back.
func TestPersistedTenantSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	tenantCfg := func() service.TenantConfig {
		return service.TenantConfig{
			Name:       "durable",
			Store:      shard.Config{Machine: testMachine(core.SchemeCached, "record"), Shards: 2},
			PersistDir: filepath.Join(dir, "durable"),
			AnchorPath: filepath.Join(dir, "anchors", "durable.anchor"),
		}
	}

	svc, err := service.New(service.Config{Tenants: []service.TenantConfig{tenantCfg()}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	c, err := Dial(ts.URL, "durable")
	if err != nil {
		t.Fatal(err)
	}

	want := make([]byte, 4096)
	rand.New(rand.NewSource(3)).Read(want)
	if err := c.StoreBytes(500, want); err != nil {
		t.Fatal(err)
	}
	epoch, err := c.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if epoch != 1 {
		t.Fatalf("first checkpoint sealed epoch %d, want 1", epoch)
	}
	c.Close()
	ts.Close()
	svc.Close()

	svc2, err := service.New(service.Config{Tenants: []service.TenantConfig{tenantCfg()}})
	if err != nil {
		t.Fatalf("reopening service: %v", err)
	}
	defer svc2.Close()
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()
	c2, err := Dial(ts2.URL, "durable")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Info().Epoch != 1 {
		t.Errorf("recovered epoch %d, want 1", c2.Info().Epoch)
	}
	got := make([]byte, len(want))
	if err := c2.LoadBytes(500, got); err != nil {
		t.Fatalf("post-recovery read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("persisted bytes did not survive the restart")
	}
	if err := c2.Verify(); err != nil {
		t.Errorf("post-recovery Verify: %v", err)
	}
}

// TestClientRetriesBusy pins the 429 path: a batch that hits a saturated
// tenant retries within its budget and eventually lands.
func TestClientRetriesBusy(t *testing.T) {
	svc, ts := startService(t, service.Config{
		Tenants: []service.TenantConfig{
			{Name: "tiny", Store: shard.Config{Machine: testMachine(core.SchemeCached, "record"), Shards: 1, QueueDepth: 2}},
		},
		AdmitTimeout: 20 * time.Millisecond,
	})
	c, err := Dial(ts.URL, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Saturate, then free capacity from another goroutine while the
	// client retries.
	release := svc.HoldAdmission("tiny")
	done := make(chan error, 1)
	go func() { done <- c.StoreBytes(0, []byte{1, 2, 3}) }()
	go func() {
		// Let at least one 429 round-trip happen before freeing capacity.
		deadline := time.Now().Add(2 * time.Second)
		for svc.Rejected("tiny") == 0 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		release()
	}()
	if err := <-done; err != nil {
		t.Fatalf("retried batch failed: %v", err)
	}
	if svc.Rejected("tiny") == 0 {
		t.Error("batch never saw a 429 — the saturation setup is broken")
	}
}
