// Package client is the Go client for the memverifyd batch protocol
// (internal/service): it dials a tenant, discovers its geometry from
// GET /v1/tenants, and exposes the same batch surface as a local
// shard.Store — NewBatch/Load/Store/Wait plus Flush, Verify, Checkpoint
// and Tamper — so drivers like loadgen run unchanged over the wire.
//
// A Client is safe for concurrent use; each worker owns its Batches. The
// underlying transport pools keep-alive connections, so N workers with
// in-flight batches hold ~N connections. 429 (admission backpressure) is
// retried internally with capped exponential backoff; every other error
// surfaces as a *service.APIError the caller can inspect.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"memverify/internal/service"
)

// Client addresses one tenant of one memverifyd instance.
type Client struct {
	hc     *http.Client
	base   string // e.g. "http://127.0.0.1:8380", no trailing slash
	tenant string
	info   service.TenantInfo

	// RetryBudget bounds how long Wait keeps retrying 429 responses
	// before surfacing the busy error. Defaults to 30s.
	RetryBudget time.Duration
}

// Dial normalizes base (host:port or full URL), fetches the tenant
// listing and binds to the named tenant. It fails fast on an unknown
// tenant or unreachable daemon.
func Dial(base, tenant string) (*Client, error) {
	base = strings.TrimRight(base, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{
		base:   base,
		tenant: tenant,
		hc: &http.Client{
			Transport: &http.Transport{
				// The default MaxIdleConnsPerHost (2) would serialize a
				// hundred workers onto two keep-alive connections; size
				// the pool for concurrent-load use.
				MaxIdleConns:        512,
				MaxIdleConnsPerHost: 256,
				IdleConnTimeout:     90 * time.Second,
			},
			Timeout: 5 * time.Minute,
		},
		RetryBudget: 30 * time.Second,
	}
	infos, err := c.Tenants()
	if err != nil {
		return nil, err
	}
	for _, info := range infos {
		if info.Name == tenant {
			c.info = info
			return c, nil
		}
	}
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
	}
	return nil, fmt.Errorf("client: tenant %q not hosted (have %s)", tenant, strings.Join(names, ", "))
}

// Tenants fetches the live tenant listing.
func (c *Client) Tenants() ([]service.TenantInfo, error) {
	resp, err := c.hc.Get(c.base + "/v1/tenants")
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var infos []service.TenantInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, fmt.Errorf("client: decoding tenant listing: %w", err)
	}
	return infos, nil
}

// Info returns the tenant's geometry as discovered at Dial time.
func (c *Client) Info() service.TenantInfo { return c.info }

// Span, Shards, ShardSpan and ShardFor mirror shard.Store's addressing
// surface so remote and local targets are interchangeable.
func (c *Client) Span() uint64      { return c.info.Span }
func (c *Client) Shards() int       { return c.info.Shards }
func (c *Client) ShardSpan() uint64 { return c.info.ShardSpan }
func (c *Client) ShardFor(off uint64) int {
	return int((off % c.info.Span) / c.info.ShardSpan)
}

// Close releases pooled connections.
func (c *Client) Close() { c.hc.CloseIdleConnections() }

// Batch buffers operations locally; Wait ships them as one request. Like
// shard.Batch, same-address operations within a batch apply in
// submission order (the server submits them to the owning shard's FIFO
// queue in op order) and a batch is reusable after Wait.
type Batch struct {
	c   *Client
	ops []service.Op
}

// NewBatch starts an empty batch.
func (c *Client) NewBatch() *Batch { return &Batch{c: c} }

// Load buffers a verified read of len(p) bytes at global offset off; p is
// filled when Wait succeeds and must stay untouched until then.
func (b *Batch) Load(off uint64, p []byte) {
	b.ops = append(b.ops, service.Op{Off: off, Data: p})
}

// Store buffers a write of p at global offset off. p is copied — the
// caller may reuse the buffer immediately.
func (b *Batch) Store(off uint64, p []byte) {
	b.ops = append(b.ops, service.Op{Write: true, Off: off, Data: append([]byte(nil), p...)})
}

// Wait ships the buffered batch, fills every Load destination and resets
// the batch for reuse. 429 responses are retried with capped backoff
// within the client's RetryBudget; other failures return the decoded
// *service.APIError (or the transport error).
func (b *Batch) Wait() error {
	if len(b.ops) == 0 {
		return nil
	}
	ops := b.ops
	b.ops = b.ops[:0]
	body := service.EncodeRequest(ops)
	url := b.c.base + "/v1/t/" + b.c.tenant + "/batch"

	deadline := time.Now().Add(b.c.RetryBudget)
	backoff := 5 * time.Millisecond
	for {
		resp, err := b.c.hc.Post(url, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		if resp.StatusCode == http.StatusOK {
			err := service.DecodeResponse(resp.Body, ops)
			drain(resp)
			return err
		}
		apiErr := decodeError(resp)
		drain(resp)
		if resp.StatusCode != http.StatusTooManyRequests || time.Now().After(deadline) {
			return apiErr
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 250*time.Millisecond {
			backoff = 250 * time.Millisecond
		}
	}
}

// LoadBytes is the synchronous form of Batch.Load.
func (c *Client) LoadBytes(off uint64, p []byte) error {
	b := c.NewBatch()
	b.Load(off, p)
	return b.Wait()
}

// StoreBytes is the synchronous form of Batch.Store.
func (c *Client) StoreBytes(off uint64, p []byte) error {
	b := c.NewBatch()
	b.Store(off, p)
	return b.Wait()
}

// Flush drains the tenant's dirty cached state — the remote
// cryptographic barrier.
func (c *Client) Flush() error { return c.post("flush", "") }

// Verify re-reads the tenant's whole region through the verification
// engine; a violation (or halted shard) returns the 503 APIError.
func (c *Client) Verify() error { return c.post("verify", "") }

// Checkpoint seals one persistence epoch and returns it.
func (c *Client) Checkpoint() (uint64, error) {
	var out struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := c.postJSON("checkpoint", "", &out); err != nil {
		return 0, err
	}
	return out.Epoch, nil
}

// Tamper corrupts one byte of the tenant's protected memory (the shard's
// cached copy is evicted first so the corruption is visible). The daemon
// must have been started with tampering allowed.
func (c *Client) Tamper(shard int, off uint64, xor byte) error {
	return c.post("tamper", fmt.Sprintf("?shard=%d&off=%d&xor=%d", shard, off, xor))
}

func (c *Client) post(endpoint, query string) error {
	return c.postJSON(endpoint, query, nil)
}

func (c *Client) postJSON(endpoint, query string, out any) error {
	url := c.base + "/v1/t/" + c.tenant + "/" + endpoint + query
	resp, err := c.hc.Post(url, "", nil)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("client: decoding %s response: %w", endpoint, err)
		}
	}
	return nil
}

// decodeError turns a non-200 response into its *service.APIError; bodies
// that are not the JSON envelope degrade to a generic error of the same
// status.
func decodeError(resp *http.Response) error {
	apiErr := &service.APIError{Status: resp.StatusCode, Kind: service.KindInternal}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if err := json.Unmarshal(body, apiErr); err != nil || apiErr.Msg == "" {
		apiErr.Msg = fmt.Sprintf("http %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return apiErr
}

// drain consumes the rest of the body so the connection returns to the
// keep-alive pool.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)) //nolint:errcheck // pool hygiene
	resp.Body.Close()
}
