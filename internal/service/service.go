package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"memverify/internal/core"
	"memverify/internal/integrity"
	"memverify/internal/obs"
	"memverify/internal/persist"
	"memverify/internal/shard"
	"memverify/internal/telemetry"
)

// TenantConfig describes one protected region the service hosts: its own
// sharded store (scheme, hash mode, violation policy, geometry all
// per-tenant) and, optionally, its own persistence directory and trusted
// anchor.
type TenantConfig struct {
	// Name addresses the tenant on the wire (/v1/t/{name}/...). Names
	// must match [a-z0-9][a-z0-9_]* so they embed directly into metric
	// names without sanitization collisions.
	Name string

	// Store is the tenant's full shard configuration. Machine.Functional
	// is required (the service serves real bytes).
	Store shard.Config

	// PersistDir, when set, checkpoints the tenant through
	// internal/persist and recovers it at service start. AnchorPath
	// names the tenant's external trusted-storage anchor (see
	// persist.Options.AnchorPath); PersistPolicy is persist's
	// degradation policy ("halt" or "record").
	PersistDir    string
	AnchorPath    string
	PersistPolicy string
}

// Config assembles a Service.
type Config struct {
	Tenants []TenantConfig

	// AdmitTimeout bounds how long a batch waits for admission when the
	// tenant's queue capacity (shards × queue depth) is exhausted before
	// the service sheds it with 429. Zero selects one second.
	AdmitTimeout time.Duration

	// MaxBatchOps / MaxBatchBytes bound one request (zero selects the
	// protocol defaults).
	MaxBatchOps   int
	MaxBatchBytes int

	// AllowTamper arms POST /v1/t/{name}/tamper — the adversary endpoint
	// the tamper legs use. Off by default: a production surface must not
	// expose a corruption primitive.
	AllowTamper bool

	// Flight, when set, receives violation, halt and recovery events as
	// they happen.
	Flight *obs.FlightRecorder

	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

// tenant is one hosted region: the store, its admission semaphore, and
// the optional persistence handle.
type tenant struct {
	name  string
	cfg   TenantConfig
	store *shard.Store
	sem   *sem

	// persistMu serializes checkpoints (a checkpoint is a quiesced
	// commit point; concurrent checkpoints would interleave epochs).
	persistMu sync.Mutex
	pstore    *persist.Store
	recovery  *persist.Recovery

	// statsMu guards pstats, a snapshot of the persistence counters the
	// sampler reads: taken at build time and after every checkpoint, so
	// Fill never races the checkpoint path's live counters.
	statsMu sync.Mutex
	pstats  persist.Stats

	// failed marks a tenant whose recovery classified as violation: the
	// persisted state must not be trusted, so every request is refused
	// with 503/violation until an operator intervenes. The other tenants
	// are unaffected — recovery containment, same shape as halt
	// containment.
	failed atomic.Bool

	batches  atomic.Uint64
	ops      atomic.Uint64
	bytes    atomic.Uint64
	rejected atomic.Uint64
}

// Service hosts the tenants behind one HTTP handler.
type Service struct {
	cfg     Config
	tenants map[string]*tenant
	order   []string // sorted tenant names, for deterministic iteration
}

// New builds the tenants — recovering any persisted ones — and returns
// the service. A tenant whose recovery classifies as violation is kept
// (listed, health-visible) but refuses requests; a hard error (bad
// config, unreadable directory, fingerprint mismatch) fails New.
func New(cfg Config) (*Service, error) {
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("service: no tenants configured")
	}
	if cfg.AdmitTimeout <= 0 {
		cfg.AdmitTimeout = time.Second
	}
	s := &Service{cfg: cfg, tenants: make(map[string]*tenant, len(cfg.Tenants))}
	for _, tc := range cfg.Tenants {
		if err := checkTenantName(tc.Name); err != nil {
			s.Close()
			return nil, err
		}
		if _, dup := s.tenants[tc.Name]; dup {
			s.Close()
			return nil, fmt.Errorf("service: duplicate tenant %q", tc.Name)
		}
		t, err := s.buildTenant(tc)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("service: tenant %s: %w", tc.Name, err)
		}
		s.tenants[tc.Name] = t
		s.order = append(s.order, tc.Name)
	}
	sort.Strings(s.order)
	return s, nil
}

func checkTenantName(name string) error {
	if name == "" {
		return fmt.Errorf("service: empty tenant name")
	}
	for i, r := range name {
		ok := r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' && i > 0
		if !ok {
			return fmt.Errorf("service: tenant name %q: want [a-z0-9][a-z0-9_]*", name)
		}
	}
	return nil
}

func (s *Service) buildTenant(tc TenantConfig) (*tenant, error) {
	t := &tenant{name: tc.Name, cfg: tc}
	scfg := tc.Store
	name := tc.Name
	fr := s.cfg.Flight
	prev := scfg.OnViolation
	scfg.OnViolation = func(sh int, v *integrity.ViolationError, halted bool) {
		if fr != nil {
			fr.Record(obs.EvViolation, sh, v.Epoch, fmt.Sprintf("tenant %s: %s", name, v.Error()))
			if halted {
				fr.Record(obs.EvShardHalt, sh, v.Epoch, fmt.Sprintf("tenant %s: halt policy tripped", name))
			}
		}
		if prev != nil {
			prev(sh, v, halted)
		}
	}

	if tc.PersistDir == "" {
		st, err := shard.New(scfg)
		if err != nil {
			return nil, err
		}
		t.store = st
	} else {
		popts := persist.Options{
			Dir:        tc.PersistDir,
			AnchorPath: tc.AnchorPath,
			Policy:     tc.PersistPolicy,
			OnEvent: func(kind string, epoch uint64, detail string) {
				if fr != nil {
					fr.Record(kind, -1, epoch, "tenant "+name+": "+detail)
				}
			},
		}
		st, rec, err := persist.RecoverStore(popts, scfg)
		if err != nil {
			return nil, err
		}
		t.store, t.recovery = st, rec
		s.logf("service: tenant %s: recovery outcome=%s epoch=%d", name, rec.Outcome, rec.Epoch)
		if rec.Outcome == persist.OutcomeViolation {
			// The directory (or its anchor) is lying; keep the tenant
			// visible but refuse to serve from it.
			t.failed.Store(true)
			s.logf("service: tenant %s: REFUSING SERVICE: %s", name, rec.Detail)
		} else {
			ps, err := persist.Open(popts)
			if err != nil {
				st.Close()
				return nil, err
			}
			t.pstore = ps
			t.pstats.NoteRecovery(rec)
		}
	}
	depth := scfg.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	t.sem = newSem(t.store.Shards() * depth)
	return t, nil
}

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Tenants returns the tenant names in sorted order.
func (s *Service) Tenants() []string { return append([]string(nil), s.order...) }

// Checkpoint seals one epoch for every persisted, serving tenant and
// joins the per-tenant errors. Tenants without persistence are skipped.
func (s *Service) Checkpoint() error {
	var errs []error
	for _, name := range s.order {
		t := s.tenants[name]
		if t.pstore == nil || t.failed.Load() {
			continue
		}
		if _, err := t.checkpoint(); err != nil {
			errs = append(errs, fmt.Errorf("tenant %s: %w", name, err))
		}
	}
	return errors.Join(errs...)
}

func (t *tenant) checkpoint() (uint64, error) {
	t.persistMu.Lock()
	defer t.persistMu.Unlock()
	epoch, err := t.pstore.Checkpoint(persist.StoreSource{S: t.store})
	st := t.pstore.Stats()
	t.statsMu.Lock()
	t.pstats = st
	t.statsMu.Unlock()
	return epoch, err
}

// HoldAdmission drains one tenant's whole admission capacity and returns
// a release function: while held, every batch on that tenant sheds with
// 429 after the admission window — the quiesce primitive (drain a tenant
// before maintenance, or saturate it deterministically in tests).
// Release is idempotent. Unknown tenants get a no-op.
func (s *Service) HoldAdmission(name string) func() {
	t, ok := s.tenants[name]
	if !ok {
		return func() {}
	}
	held, _ := t.sem.acquire(t.sem.cap, s.cfg.AdmitTimeout)
	var once sync.Once
	return func() { once.Do(func() { t.sem.release(held) }) }
}

// Rejected returns how many batches the tenant has shed with 429 (0 for
// unknown tenants).
func (s *Service) Rejected(name string) uint64 {
	t, ok := s.tenants[name]
	if !ok {
		return 0
	}
	return t.rejected.Load()
}

// Close shuts every tenant down: stores drain and close, persistence
// handles close. It does not checkpoint — callers wanting a final sealed
// epoch call Checkpoint first, while the stores still serve.
func (s *Service) Close() {
	for _, t := range s.tenants {
		if t.store != nil {
			t.store.Close()
		}
		if t.pstore != nil {
			t.pstore.Close() //nolint:errcheck // teardown
		}
	}
}

// Health merges the per-tenant snapshots: degraded while any tenant has a
// halted shard (or refused recovery), unhealthy only when every shard of
// every tenant is down — the per-tenant containment contract, readable
// from one probe.
func (s *Service) Health() obs.Health {
	hs := make([]obs.Health, 0, len(s.order))
	for _, name := range s.order {
		t := s.tenants[name]
		n, halted, viol := t.store.Health()
		h := obs.Health{Shards: n, HaltedShards: halted, PendingViolations: viol}
		if t.failed.Load() {
			// A refused tenant serves nothing: all of its shards count
			// as down so one failed tenant degrades (not kills) the
			// service.
			h.HaltedShards = n
			h.Detail = fmt.Sprintf("tenant %s: recovery violation, refusing service", name)
		} else if halted > 0 {
			h.Detail = fmt.Sprintf("tenant %s: %d/%d shards halted", name, halted, n)
		}
		hs = append(hs, h)
	}
	return obs.MergeHealth(hs...)
}

// Fill snapshots the whole service into reg: every tenant's store
// (counters accumulate across tenants, like across shards), every
// persistence layer, service-level admission counters and per-tenant
// attribution gauges.
func (s *Service) Fill(reg *telemetry.Registry) {
	var batches, ops, bytes, rejected uint64
	for _, name := range s.order {
		t := s.tenants[name]
		t.store.FillRegistry(reg)
		if t.pstore != nil {
			t.statsMu.Lock()
			st := t.pstats
			t.statsMu.Unlock()
			st.Fill(reg)
		}
		n, halted, viol := t.store.Health()
		failed := 0.0
		if t.failed.Load() {
			failed, halted = 1.0, n
		}
		p := "service.tenant." + name
		reg.SetGauge(p+".halted_shards", float64(halted))
		reg.SetGauge(p+".failed", failed)
		reg.Add(p+".violations", uint64(viol))
		reg.Add(p+".batches", t.batches.Load())
		reg.Add(p+".ops", t.ops.Load())
		reg.Add(p+".rejected", t.rejected.Load())
		batches += t.batches.Load()
		ops += t.ops.Load()
		bytes += t.bytes.Load()
		rejected += t.rejected.Load()
	}
	reg.Add("service.tenants", uint64(len(s.order)))
	reg.Add("service.batches", batches)
	reg.Add("service.ops", ops)
	reg.Add("service.bytes", bytes)
	reg.Add("service.rejected", rejected)
}

// Handler returns the /v1 API surface. Mount it on the daemon's mux next
// to the obs surface.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	mux.HandleFunc("POST /v1/t/{tenant}/batch", s.tenantHandler((*Service).handleBatch))
	mux.HandleFunc("POST /v1/t/{tenant}/flush", s.tenantHandler((*Service).handleFlush))
	mux.HandleFunc("POST /v1/t/{tenant}/verify", s.tenantHandler((*Service).handleVerify))
	mux.HandleFunc("POST /v1/t/{tenant}/checkpoint", s.tenantHandler((*Service).handleCheckpoint))
	mux.HandleFunc("POST /v1/t/{tenant}/tamper", s.tenantHandler((*Service).handleTamper))
	return mux
}

// tenantHandler resolves {tenant} and applies the containment gate every
// endpoint shares: unknown names 404, refused (recovery-violation)
// tenants 503 — before any work happens.
func (s *Service) tenantHandler(f func(*Service, http.ResponseWriter, *http.Request, *tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		t, ok := s.tenants[name]
		if !ok {
			writeError(w, &APIError{Status: http.StatusNotFound, Kind: KindUnknownTenant,
				Tenant: name, Msg: "unknown tenant"})
			return
		}
		if t.failed.Load() {
			writeError(w, &APIError{Status: http.StatusServiceUnavailable, Kind: KindViolation,
				Tenant: name, Msg: "tenant refused service: persisted state failed recovery verification"})
			return
		}
		f(s, w, r, t)
	}
}

// TenantInfo is one entry of GET /v1/tenants — everything a client needs
// to address the tenant (span, shard geometry) plus its live containment
// state.
type TenantInfo struct {
	Name         string `json:"name"`
	Scheme       string `json:"scheme"`
	HashMode     string `json:"hash_mode"`
	Policy       string `json:"policy"`
	Shards       int    `json:"shards"`
	Span         uint64 `json:"span"`
	ShardSpan    uint64 `json:"shard_span"`
	HaltedShards int    `json:"halted_shards"`
	Violations   int    `json:"violations"`
	Failed       bool   `json:"failed"`
	Persisted    bool   `json:"persisted"`
	Epoch        uint64 `json:"epoch,omitempty"`
}

func (s *Service) info(t *tenant) TenantInfo {
	n, halted, viol := t.store.Health()
	m := t.cfg.Store.Machine
	hm := m.HashMode
	if hm == "" {
		hm = "full"
	}
	pol := m.ViolationPolicy
	if pol == "" {
		pol = "record"
	}
	info := TenantInfo{
		Name:         t.name,
		Scheme:       string(m.Scheme),
		HashMode:     hm,
		Policy:       pol,
		Shards:       n,
		Span:         t.store.Span(),
		ShardSpan:    t.store.ShardSpan(),
		HaltedShards: halted,
		Violations:   viol,
		Failed:       t.failed.Load(),
		Persisted:    t.pstore != nil || t.cfg.PersistDir != "",
	}
	if t.pstore != nil {
		info.Epoch = t.pstore.Epoch()
	}
	return info
}

func (s *Service) handleTenants(w http.ResponseWriter, r *http.Request) {
	infos := make([]TenantInfo, 0, len(s.order))
	for _, name := range s.order {
		infos = append(infos, s.info(s.tenants[name]))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(infos) //nolint:errcheck // best-effort body
}

// classify maps a store error onto the wire contract.
func classify(t *tenant, err error) *APIError {
	switch {
	case errors.Is(err, core.ErrHalted):
		return &APIError{Status: http.StatusServiceUnavailable, Kind: KindHalted,
			Tenant: t.name, Msg: err.Error()}
	case errors.Is(err, shard.ErrClosed):
		return &APIError{Status: http.StatusServiceUnavailable, Kind: KindClosed,
			Tenant: t.name, Msg: err.Error()}
	}
	var ve *integrity.ViolationError
	if errors.As(err, &ve) {
		return &APIError{Status: http.StatusServiceUnavailable, Kind: KindViolation,
			Tenant: t.name, Msg: err.Error()}
	}
	return &APIError{Status: http.StatusInternalServerError, Kind: KindInternal,
		Tenant: t.name, Msg: err.Error()}
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request, t *tenant) {
	ops, err := DecodeRequest(r.Body, s.cfg.MaxBatchOps, s.cfg.MaxBatchBytes)
	if err != nil {
		writeError(w, &APIError{Status: http.StatusBadRequest, Kind: KindBadRequest,
			Tenant: t.name, Msg: err.Error()})
		return
	}
	if len(ops) == 0 {
		w.Header().Set("Content-Type", "application/octet-stream")
		EncodeResponse(w, ops) //nolint:errcheck // empty batch
		return
	}

	// Admission: one token per op against the tenant's queue capacity.
	// All-or-nothing — a batch that cannot be admitted within the window
	// is shed whole, so a client never sees a half-applied batch from
	// backpressure alone.
	tokens, ok := t.sem.acquire(len(ops), s.cfg.AdmitTimeout)
	if !ok {
		t.rejected.Add(1)
		writeError(w, &APIError{Status: http.StatusTooManyRequests, Kind: KindBusy,
			Tenant: t.name, Msg: fmt.Sprintf("admission timed out after %s (queue capacity %d)",
				s.cfg.AdmitTimeout, t.sem.cap)})
		return
	}
	defer t.sem.release(tokens)

	_, _, vBefore := t.store.Health()
	b := t.store.NewBatch()
	var nbytes uint64
	for i := range ops {
		nbytes += uint64(len(ops[i].Data))
		if ops[i].Write {
			b.Store(ops[i].Off, ops[i].Data)
		} else {
			b.Load(ops[i].Off, ops[i].Data)
		}
	}
	werr := b.Wait()
	t.batches.Add(1)
	t.ops.Add(uint64(len(ops)))
	t.bytes.Add(nbytes)
	if werr != nil {
		writeError(w, classify(t, werr))
		return
	}
	// Under the record policy a violated read returns no error; the
	// violation count is the evidence. A batch that observed one must not
	// report success — the bytes it carried are not trustworthy.
	if _, _, vAfter := t.store.Health(); vAfter > vBefore {
		writeError(w, &APIError{Status: http.StatusServiceUnavailable, Kind: KindViolation,
			Tenant: t.name, Msg: fmt.Sprintf("%d integrity violation(s) detected during the batch", vAfter-vBefore)})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := EncodeResponse(w, ops); err != nil {
		s.logf("service: tenant %s: writing batch response: %v", t.name, err)
	}
}

func (s *Service) handleFlush(w http.ResponseWriter, r *http.Request, t *tenant) {
	if err := t.store.Flush(); err != nil {
		writeError(w, classify(t, err))
		return
	}
	writeOK(w, map[string]any{"ok": true})
}

func (s *Service) handleVerify(w http.ResponseWriter, r *http.Request, t *tenant) {
	_, _, vBefore := t.store.Health()
	err := t.store.VerifyAll()
	_, _, vAfter := t.store.Health()
	switch {
	case err != nil:
		writeError(w, classify(t, err))
	case vAfter > vBefore:
		writeError(w, &APIError{Status: http.StatusServiceUnavailable, Kind: KindViolation,
			Tenant: t.name, Msg: fmt.Sprintf("%d integrity violation(s) detected during verification", vAfter-vBefore)})
	default:
		writeOK(w, map[string]any{"ok": true, "violations": 0})
	}
}

func (s *Service) handleCheckpoint(w http.ResponseWriter, r *http.Request, t *tenant) {
	if t.pstore == nil {
		writeError(w, &APIError{Status: http.StatusBadRequest, Kind: KindBadRequest,
			Tenant: t.name, Msg: "tenant has no persistence configured"})
		return
	}
	epoch, err := t.checkpoint()
	if err != nil {
		writeError(w, classify(t, err))
		return
	}
	writeOK(w, map[string]any{"ok": true, "epoch": epoch})
}

// handleTamper corrupts one shard's protected memory — the adversary
// primitive the tamper legs drive remotely. Refused unless the service
// was armed with AllowTamper.
func (s *Service) handleTamper(w http.ResponseWriter, r *http.Request, t *tenant) {
	if !s.cfg.AllowTamper {
		writeError(w, &APIError{Status: http.StatusForbidden, Kind: KindForbidden,
			Tenant: t.name, Msg: "tamper endpoint not armed (start the service with tampering allowed)"})
		return
	}
	q := r.URL.Query()
	sh, err := queryInt(q.Get("shard"), 0)
	if err != nil || sh < 0 || sh >= t.store.Shards() {
		writeError(w, &APIError{Status: http.StatusBadRequest, Kind: KindBadRequest,
			Tenant: t.name, Msg: fmt.Sprintf("bad shard %q (store has %d)", q.Get("shard"), t.store.Shards())})
		return
	}
	off, err := queryInt(q.Get("off"), 0)
	if err != nil || off < 0 {
		writeError(w, &APIError{Status: http.StatusBadRequest, Kind: KindBadRequest,
			Tenant: t.name, Msg: fmt.Sprintf("bad off %q", q.Get("off"))})
		return
	}
	xor, err := queryInt(q.Get("xor"), 0xFF)
	if err != nil || xor < 0 || xor > 0xFF {
		writeError(w, &APIError{Status: http.StatusBadRequest, Kind: KindBadRequest,
			Tenant: t.name, Msg: fmt.Sprintf("bad xor %q", q.Get("xor"))})
		return
	}
	t.store.WithShard(sh, func(m *core.Machine) {
		m.EvictProtected()
		m.Adversary().Corrupt(m.ProgAddr(uint64(off)), byte(xor))
	})
	if s.cfg.Flight != nil {
		s.cfg.Flight.Record(obs.EvTamper, sh, 0,
			fmt.Sprintf("tenant %s: injected corruption at offset %d", t.name, off))
	}
	writeOK(w, map[string]any{"ok": true, "shard": sh, "off": off})
}

func queryInt(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(strings.TrimSpace(s))
	return v, err
}

func writeOK(w http.ResponseWriter, body map[string]any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(body) //nolint:errcheck // best-effort body
}
