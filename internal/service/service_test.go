package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"memverify/internal/core"
	"memverify/internal/obs"
	"memverify/internal/shard"
	"memverify/internal/trace"
)

// testMachine is a small functional machine for service tests.
func testMachine(scheme core.Scheme, policy string) core.Config {
	cfg := core.DefaultConfig()
	cfg.Scheme = scheme
	cfg.Functional = true
	cfg.ProtectedBytes = 256 << 10
	cfg.L2Size = 32 << 10
	cfg.HashAlg = "fnv128"
	cfg.ViolationPolicy = policy
	cfg.Benchmark = trace.Uniform("service", 16<<10)
	cfg.Benchmark.CodeSet = 4 << 10
	if scheme == core.SchemeMulti || scheme == core.SchemeIncr {
		cfg.ChunkBlocks = 2
	}
	return cfg
}

func testTenant(name string, scheme core.Scheme, policy string, shards int) TenantConfig {
	return TenantConfig{
		Name:  name,
		Store: shard.Config{Machine: testMachine(scheme, policy), Shards: shards},
	}
}

func newTestService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return svc, ts
}

func postBatch(t *testing.T, url, tenant string, ops []Op) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/t/"+tenant+"/batch", "application/octet-stream",
		bytes.NewReader(EncodeRequest(ops)))
	if err != nil {
		t.Fatalf("POST batch: %v", err)
	}
	return resp
}

func errKind(t *testing.T, resp *http.Response) string {
	t.Helper()
	var e APIError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decoding error envelope: %v", err)
	}
	return e.Kind
}

func TestServiceBatchRoundtrip(t *testing.T) {
	_, ts := newTestService(t, Config{Tenants: []TenantConfig{
		testTenant("alpha", core.SchemeCached, "record", 2),
	}})

	payload := []byte("verified bytes over the wire")
	ops := []Op{
		{Write: true, Off: 100, Data: payload},
		{Off: 100, Data: make([]byte, len(payload))},
	}
	resp := postBatch(t, ts.URL, "alpha", ops)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if err := DecodeResponse(resp.Body, ops); err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if !bytes.Equal(ops[1].Data, payload) {
		t.Fatalf("read %q, wrote %q", ops[1].Data, payload)
	}
}

func TestServiceUnknownTenantAndBadRequest(t *testing.T) {
	_, ts := newTestService(t, Config{Tenants: []TenantConfig{
		testTenant("alpha", core.SchemeCached, "record", 1),
	}})

	resp := postBatch(t, ts.URL, "ghost", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown tenant: status %d, want 404", resp.StatusCode)
	}
	if k := errKind(t, resp); k != KindUnknownTenant {
		t.Errorf("unknown tenant kind %q", k)
	}

	bad, err := http.Post(ts.URL+"/v1/t/alpha/batch", "application/octet-stream",
		strings.NewReader("this is not MVB1"))
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", bad.StatusCode)
	}
	if k := errKind(t, bad); k != KindBadRequest {
		t.Errorf("garbage body kind %q", k)
	}
}

func TestServiceTamperGate(t *testing.T) {
	_, ts := newTestService(t, Config{Tenants: []TenantConfig{
		testTenant("alpha", core.SchemeCached, "record", 1),
	}})
	resp, err := http.Post(ts.URL+"/v1/t/alpha/tamper", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unarmed tamper: status %d, want 403", resp.StatusCode)
	}
	if k := errKind(t, resp); k != KindForbidden {
		t.Errorf("unarmed tamper kind %q", k)
	}
}

// TestServiceRecordPolicyViolationSurfaces pins the record-policy
// containment path: the machine records and continues, but the batch that
// observed the violation must still fail with 503/violation — tampered
// bytes never report success.
func TestServiceRecordPolicyViolationSurfaces(t *testing.T) {
	svc, ts := newTestService(t, Config{
		Tenants:     []TenantConfig{testTenant("alpha", core.SchemeCached, "record", 2)},
		AllowTamper: true,
	})

	seed := []Op{{Write: true, Off: 0, Data: bytes.Repeat([]byte{0x5A}, 64)}}
	resp := postBatch(t, ts.URL, "alpha", seed)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed write: status %d", resp.StatusCode)
	}

	tam, err := http.Post(ts.URL+"/v1/t/alpha/tamper?shard=0&off=0&xor=255", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	tam.Body.Close()
	if tam.StatusCode != http.StatusOK {
		t.Fatalf("tamper: status %d", tam.StatusCode)
	}

	read := []Op{{Off: 0, Data: make([]byte, 64)}}
	resp = postBatch(t, ts.URL, "alpha", read)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tampered read: status %d, want 503", resp.StatusCode)
	}
	if k := errKind(t, resp); k != KindViolation {
		t.Errorf("tampered read kind %q, want %q", k, KindViolation)
	}
	if st := svc.Health().State(); st != obs.Degraded {
		t.Errorf("health after violation: %v, want degraded", st)
	}
}

// TestServiceBackpressureBoundedLatency pins the 429 contract: with the
// tenant's whole admission capacity held, a batch is shed with 429 within
// (roughly) AdmitTimeout — never parked unboundedly — all-or-nothing, and
// admission recovers once capacity frees.
func TestServiceBackpressureBoundedLatency(t *testing.T) {
	admit := 100 * time.Millisecond
	svc, ts := newTestService(t, Config{
		Tenants:      []TenantConfig{testTenant("alpha", core.SchemeCached, "record", 1)},
		AdmitTimeout: admit,
	})
	tn := svc.tenants["alpha"]
	held, ok := tn.sem.acquire(tn.sem.cap, time.Second)
	if !ok {
		t.Fatal("could not drain the admission semaphore")
	}

	ops := []Op{{Write: true, Off: 0, Data: []byte{0xEE}}}
	start := time.Now()
	resp := postBatch(t, ts.URL, "alpha", ops)
	elapsed := time.Since(start)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated batch: status %d, want 429", resp.StatusCode)
	}
	if k := errKind(t, resp); k != KindBusy {
		t.Errorf("saturated batch kind %q, want %q", k, KindBusy)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if elapsed > 10*admit {
		t.Errorf("shed took %v — not bounded by the %v admission window", elapsed, admit)
	}
	if tn.rejected.Load() == 0 {
		t.Error("rejection not counted")
	}

	// All-or-nothing: the shed write must not have landed.
	tn.sem.release(held)
	check := []Op{{Off: 0, Data: make([]byte, 1)}}
	resp2 := postBatch(t, ts.URL, "alpha", check)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-release read: status %d", resp2.StatusCode)
	}
	if err := DecodeResponse(resp2.Body, check); err != nil {
		t.Fatal(err)
	}
	if check[0].Data[0] != 0 {
		t.Errorf("shed batch leaked a write: read %#x", check[0].Data[0])
	}
}

func TestServiceTenantListing(t *testing.T) {
	_, ts := newTestService(t, Config{Tenants: []TenantConfig{
		testTenant("alpha", core.SchemeCached, "record", 2),
		testTenant("bravo", core.SchemeIncr, "halt", 1),
	}})
	resp, err := http.Get(ts.URL + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []TenantInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "bravo" {
		t.Fatalf("listing %+v", infos)
	}
	if infos[0].Shards != 2 || infos[0].Span == 0 || infos[0].ShardSpan != infos[0].Span/2 {
		t.Errorf("alpha geometry %+v", infos[0])
	}
	if infos[1].Scheme != "i" || infos[1].Policy != "halt" {
		t.Errorf("bravo config %+v", infos[1])
	}
}

func TestServiceRejectsBadTenantNames(t *testing.T) {
	for _, name := range []string{"", "CAPS", "has space", "-lead", "_lead", "a.b"} {
		_, err := New(Config{Tenants: []TenantConfig{
			testTenant(name, core.SchemeCached, "record", 1),
		}})
		if err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
	_, err := New(Config{Tenants: []TenantConfig{
		testTenant("dup", core.SchemeCached, "record", 1),
		testTenant("dup", core.SchemeCached, "record", 1),
	}})
	if err == nil {
		t.Error("duplicate tenant accepted")
	}
}

func TestParseTenants(t *testing.T) {
	base := testTenant("", core.SchemeCached, "record", 2)
	tcs, err := ParseTenants("alpha, bravo:scheme=i;policy=halt;shards=4, charlie:queue=8;spec=true", base)
	if err != nil {
		t.Fatalf("ParseTenants: %v", err)
	}
	if len(tcs) != 3 {
		t.Fatalf("parsed %d tenants, want 3", len(tcs))
	}
	a, b, c := tcs[0], tcs[1], tcs[2]
	if a.Name != "alpha" || a.Store.Machine.Scheme != core.SchemeCached || a.Store.Shards != 2 {
		t.Errorf("alpha %+v", a)
	}
	if b.Store.Machine.Scheme != core.SchemeIncr || b.Store.Machine.ViolationPolicy != "halt" ||
		b.Store.Shards != 4 || b.Store.Machine.ChunkBlocks != 2 {
		t.Errorf("bravo %+v", b.Store)
	}
	if c.Store.QueueDepth != 8 || !c.Store.Machine.Speculative {
		t.Errorf("charlie %+v", c.Store)
	}
	// Overrides must not leak between tenants.
	if a.Store.Machine.ViolationPolicy != "record" || a.Store.Machine.Speculative {
		t.Errorf("override leaked into alpha: %+v", a.Store.Machine)
	}

	for _, bad := range []string{"", "  ", "x:shards=zero", "x:nope=1", "x:shards", "Bad Name"} {
		if _, err := ParseTenants(bad, base); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
