package service

import (
	"bytes"
	"testing"
)

func TestProtocolRoundtrip(t *testing.T) {
	ops := []Op{
		{Write: true, Off: 0x10, Data: []byte{1, 2, 3, 4}},
		{Off: 0x10, Data: make([]byte, 4)},
		{Write: true, Off: 1 << 30, Data: []byte{0xAA}},
		{Off: 7, Data: make([]byte, 0)},
	}
	wire := EncodeRequest(ops)
	got, err := DecodeRequest(bytes.NewReader(wire), 0, 0)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i].Write != ops[i].Write || got[i].Off != ops[i].Off || len(got[i].Data) != len(ops[i].Data) {
			t.Errorf("op %d: got %+v, want %+v", i, got[i], ops[i])
		}
		if ops[i].Write && !bytes.Equal(got[i].Data, ops[i].Data) {
			t.Errorf("op %d: write payload corrupted", i)
		}
	}

	// Fill the decoded reads as the server would, then round-trip the
	// response back into the original read buffers.
	copy(got[1].Data, []byte{9, 8, 7, 6})
	var resp bytes.Buffer
	if err := EncodeResponse(&resp, got); err != nil {
		t.Fatalf("EncodeResponse: %v", err)
	}
	if err := DecodeResponse(&resp, ops); err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if !bytes.Equal(ops[1].Data, []byte{9, 8, 7, 6}) {
		t.Errorf("read payload did not round-trip: %v", ops[1].Data)
	}
}

func TestProtocolRejectsMalformed(t *testing.T) {
	good := EncodeRequest([]Op{{Write: true, Off: 1, Data: []byte{1}}})
	cases := map[string][]byte{
		"empty":           {},
		"bad magic":       append([]byte("XXXX"), good[4:]...),
		"truncated ops":   good[:len(good)-1],
		"truncated count": good[:6],
	}
	for name, wire := range cases {
		if _, err := DecodeRequest(bytes.NewReader(wire), 0, 0); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}

	// Unknown op kind.
	bad := append([]byte(nil), good...)
	bad[8] = 7
	if _, err := DecodeRequest(bytes.NewReader(bad), 0, 0); err == nil {
		t.Error("unknown kind: decoded without error")
	}

	// Limits: op count and total payload.
	many := make([]Op, 10)
	for i := range many {
		many[i] = Op{Off: uint64(i), Data: make([]byte, 8)}
	}
	if _, err := DecodeRequest(bytes.NewReader(EncodeRequest(many)), 5, 0); err == nil {
		t.Error("op-count limit not enforced")
	}
	if _, err := DecodeRequest(bytes.NewReader(EncodeRequest(many)), 0, 16); err == nil {
		t.Error("payload limit not enforced")
	}
}

func TestProtocolResponseMismatch(t *testing.T) {
	ops := []Op{{Off: 0, Data: make([]byte, 4)}}
	var resp bytes.Buffer
	if err := EncodeResponse(&resp, ops); err != nil {
		t.Fatal(err)
	}
	two := []Op{{Off: 0, Data: make([]byte, 4)}, {Off: 4, Data: make([]byte, 4)}}
	if err := DecodeResponse(&resp, two); err == nil {
		t.Error("op-count mismatch: decoded without error")
	}
}
