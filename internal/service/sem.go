package service

import (
	"sync"
	"time"
)

// sem is a weighted FIFO admission semaphore: each tenant gets one, sized
// to its store's total queue capacity (shards × queue depth), and every
// batch must acquire one token per operation before submitting. This maps
// connection-level backpressure onto the bounded shard queues: a slow or
// flooding client waits at admission for at most the configured timeout
// and then gets an explicit 429 — bounded client-visible latency — rather
// than parking unboundedly deep in the store's channels or buffering
// without limit in the server.
//
// FIFO ordering keeps admission fair: a large batch at the head of the
// queue cannot be starved by a stream of small ones.
type sem struct {
	mu      sync.Mutex
	cap     int
	avail   int
	waiters []*semWaiter
}

type semWaiter struct {
	n     int
	ready chan struct{} // closed by release when granted
	done  bool          // granted or abandoned (under mu)
}

func newSem(capacity int) *sem {
	if capacity < 1 {
		capacity = 1
	}
	return &sem{cap: capacity, avail: capacity}
}

// acquire takes n tokens, waiting at most timeout. Requests larger than
// the whole capacity are clamped to it (they admit alone, they don't
// deadlock). Returns the number of tokens actually taken (to release
// later) and whether the acquire succeeded; on false nothing is held.
func (s *sem) acquire(n int, timeout time.Duration) (int, bool) {
	if n < 1 {
		n = 1
	}
	if n > s.cap {
		n = s.cap
	}
	s.mu.Lock()
	if len(s.waiters) == 0 && s.avail >= n {
		s.avail -= n
		s.mu.Unlock()
		return n, true
	}
	w := &semWaiter{n: n, ready: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()

	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-w.ready:
		return n, true
	case <-t.C:
	}
	s.mu.Lock()
	if w.done {
		// release granted us between the timeout firing and the lock:
		// keep the grant rather than unwinding it.
		s.mu.Unlock()
		return n, true
	}
	w.done = true // abandoned; release skips it
	s.mu.Unlock()
	return 0, false
}

// release returns n tokens and grants queued waiters in FIFO order.
func (s *sem) release(n int) {
	if n < 1 {
		return
	}
	s.mu.Lock()
	s.avail += n
	if s.avail > s.cap {
		s.avail = s.cap
	}
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		if w.done {
			s.waiters = s.waiters[1:]
			continue
		}
		if s.avail < w.n {
			break
		}
		s.avail -= w.n
		w.done = true
		close(w.ready)
		s.waiters = s.waiters[1:]
	}
	s.mu.Unlock()
}
