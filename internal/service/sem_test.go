package service

import (
	"testing"
	"time"
)

func TestSemAcquireRelease(t *testing.T) {
	s := newSem(8)
	n, ok := s.acquire(5, time.Second)
	if !ok || n != 5 {
		t.Fatalf("acquire(5) = %d, %t", n, ok)
	}
	if _, ok := s.acquire(4, 10*time.Millisecond); ok {
		t.Fatal("acquire(4) with 3 available should time out")
	}
	s.release(5)
	if n, ok := s.acquire(8, time.Second); !ok || n != 8 {
		t.Fatalf("full capacity not restored after timeout+release: %d, %t", n, ok)
	}
	s.release(8)
}

func TestSemClampsOversizeRequests(t *testing.T) {
	s := newSem(4)
	n, ok := s.acquire(100, time.Second)
	if !ok || n != 4 {
		t.Fatalf("oversize acquire = %d, %t; want clamped to 4", n, ok)
	}
	s.release(n)
}

// TestSemFIFO pins fairness: a large waiter at the head of the queue is
// not starved by a small request that arrives later.
func TestSemFIFO(t *testing.T) {
	s := newSem(4)
	if _, ok := s.acquire(4, time.Second); !ok {
		t.Fatal("initial drain failed")
	}
	order := make(chan string, 2)
	aQueued := make(chan struct{})
	go func() {
		close(aQueued)
		if _, ok := s.acquire(3, 5*time.Second); !ok {
			t.Error("waiter A timed out")
		}
		order <- "A"
	}()
	<-aQueued
	time.Sleep(20 * time.Millisecond) // let A reach the waiter queue
	go func() {
		if _, ok := s.acquire(1, 5*time.Second); !ok {
			t.Error("waiter B timed out")
		}
		order <- "B"
	}()
	time.Sleep(20 * time.Millisecond)

	// One token frees: enough for B, but A is at the head — nobody runs.
	s.release(1)
	select {
	case who := <-order:
		t.Fatalf("%s ran on a 1-token release with a 3-token waiter at the head", who)
	case <-time.After(50 * time.Millisecond):
	}
	// Two more free A (3 available), whose release then frees B.
	s.release(2)
	if who := <-order; who != "A" {
		t.Fatalf("first grant went to %s, want A", who)
	}
	s.release(3)
	if who := <-order; who != "B" {
		t.Fatalf("second grant went to %s, want B", who)
	}
}

// TestSemTimeoutAbandonsCleanly checks an abandoned waiter neither holds
// tokens nor blocks later grants.
func TestSemTimeoutAbandonsCleanly(t *testing.T) {
	s := newSem(2)
	if _, ok := s.acquire(2, time.Second); !ok {
		t.Fatal("drain failed")
	}
	if _, ok := s.acquire(2, 10*time.Millisecond); ok {
		t.Fatal("acquire on an empty sem should time out")
	}
	s.release(2)
	if n, ok := s.acquire(2, time.Second); !ok || n != 2 {
		t.Fatalf("abandoned waiter leaked tokens: %d, %t", n, ok)
	}
	s.release(2)
}
