// Package service is the networked front-end over a set of sharded
// verification stores: a multi-tenant HTTP service speaking a compact
// binary batch protocol, with per-tenant integrity containment (one
// tenant's violation 503s only that tenant), admission-controlled
// backpressure mapped onto the bounded shard queues, and optional
// crash-consistent persistence per tenant.
//
// The wire protocol is deliberately small. A batch request is
//
//	"MVB1" | nops(u32) | op*
//	op    = kind(u8: 0=read, 1=write) | off(u64) | len(u32) | payload (writes only)
//
// and a successful response is
//
//	"MVR1" | nops(u32) | payload*   (read payloads, in op order)
//
// all integers little-endian. Every non-200 response carries a JSON error
// envelope {"error": ..., "kind": ..., "tenant": ...}; the kind strings
// and status codes are the containment contract (see APIError).
package service

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Wire magics: batch request and batch response, version 1.
var (
	reqMagic  = [4]byte{'M', 'V', 'B', '1'}
	respMagic = [4]byte{'M', 'V', 'R', '1'}
)

// Op is one operation of a batch. For writes Data is the payload; for
// reads Data is the destination buffer whose length is the read size
// (DecodeRequest allocates it server-side, the client passes the caller's
// buffer so DecodeResponse fills it in place).
type Op struct {
	Write bool
	Off   uint64
	Data  []byte
}

// Default request bounds; Config can override.
const (
	DefaultMaxBatchOps   = 8192
	DefaultMaxBatchBytes = 8 << 20
)

const opHeaderSize = 1 + 8 + 4

// EncodeRequest renders ops into the MVB1 wire form.
func EncodeRequest(ops []Op) []byte {
	n := 8
	for _, op := range ops {
		n += opHeaderSize
		if op.Write {
			n += len(op.Data)
		}
	}
	buf := make([]byte, 0, n)
	buf = append(buf, reqMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ops)))
	for _, op := range ops {
		kind := byte(0)
		if op.Write {
			kind = 1
		}
		buf = append(buf, kind)
		buf = binary.LittleEndian.AppendUint64(buf, op.Off)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(op.Data)))
		if op.Write {
			buf = append(buf, op.Data...)
		}
	}
	return buf
}

// DecodeRequest parses an MVB1 request, allocating destination buffers
// for reads, and enforces the op-count and total-payload bounds (<= 0
// selects the defaults).
func DecodeRequest(r io.Reader, maxOps, maxBytes int) ([]Op, error) {
	if maxOps <= 0 {
		maxOps = DefaultMaxBatchOps
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBatchBytes
	}
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("request header: %w", err)
	}
	if [4]byte(hdr[:4]) != reqMagic {
		return nil, fmt.Errorf("bad request magic %q (want %q)", hdr[:4], reqMagic[:])
	}
	nops := int(binary.LittleEndian.Uint32(hdr[4:]))
	if nops > maxOps {
		return nil, fmt.Errorf("%d ops exceeds the per-batch limit %d", nops, maxOps)
	}
	ops := make([]Op, 0, nops)
	total := 0
	var oh [opHeaderSize]byte
	for i := 0; i < nops; i++ {
		if _, err := io.ReadFull(r, oh[:]); err != nil {
			return nil, fmt.Errorf("op %d header: %w", i, err)
		}
		op := Op{
			Write: oh[0] != 0,
			Off:   binary.LittleEndian.Uint64(oh[1:9]),
		}
		if oh[0] > 1 {
			return nil, fmt.Errorf("op %d: unknown kind %d", i, oh[0])
		}
		length := int(binary.LittleEndian.Uint32(oh[9:13]))
		if total += length; total > maxBytes {
			return nil, fmt.Errorf("batch payload exceeds the %d-byte limit", maxBytes)
		}
		op.Data = make([]byte, length)
		if op.Write {
			if _, err := io.ReadFull(r, op.Data); err != nil {
				return nil, fmt.Errorf("op %d payload: %w", i, err)
			}
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// EncodeResponse writes the MVR1 success response for ops: the header and
// then every read op's (now filled) buffer, in op order.
func EncodeResponse(w io.Writer, ops []Op) error {
	var hdr [8]byte
	copy(hdr[:4], respMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(ops)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, op := range ops {
		if op.Write {
			continue
		}
		if _, err := w.Write(op.Data); err != nil {
			return err
		}
	}
	return nil
}

// DecodeResponse parses an MVR1 response against the ops that produced
// it, filling each read op's Data buffer in place.
func DecodeResponse(r io.Reader, ops []Op) error {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("response header: %w", err)
	}
	if [4]byte(hdr[:4]) != respMagic {
		return fmt.Errorf("bad response magic %q (want %q)", hdr[:4], respMagic[:])
	}
	if got := int(binary.LittleEndian.Uint32(hdr[4:])); got != len(ops) {
		return fmt.Errorf("response covers %d ops, batch submitted %d", got, len(ops))
	}
	for i := range ops {
		if ops[i].Write {
			continue
		}
		if _, err := io.ReadFull(r, ops[i].Data); err != nil {
			return fmt.Errorf("read op %d payload: %w", i, err)
		}
	}
	return nil
}

// Error kinds carried in the JSON envelope. They are the machine-readable
// half of the containment contract: a client distinguishes "this tenant
// is compromised" (violation/halted) from "slow down" (busy) from "the
// service is going away" (closed) without parsing prose.
const (
	KindViolation     = "violation"      // 503: integrity violation detected
	KindHalted        = "halted"         // 503: the tenant's halt policy tripped
	KindClosed        = "closed"         // 503: store shutting down
	KindBusy          = "busy"           // 429: admission timed out, retry later
	KindUnknownTenant = "unknown-tenant" // 404
	KindBadRequest    = "bad-request"    // 400
	KindForbidden     = "forbidden"      // 403: tamper endpoint not armed
	KindInternal      = "internal"       // 500
)

// APIError is the JSON error envelope every non-200 response carries. The
// client returns it from Batch.Wait and friends, so callers can inspect
// Kind and Status programmatically.
type APIError struct {
	Status int    `json:"-"`
	Kind   string `json:"kind"`
	Tenant string `json:"tenant,omitempty"`
	Msg    string `json:"error"`
}

func (e *APIError) Error() string {
	if e.Tenant != "" {
		return fmt.Sprintf("service: %s (%s, tenant %s, http %d)", e.Msg, e.Kind, e.Tenant, e.Status)
	}
	return fmt.Sprintf("service: %s (%s, http %d)", e.Msg, e.Kind, e.Status)
}

// writeError emits the envelope with its status code.
func writeError(w http.ResponseWriter, e *APIError) {
	w.Header().Set("Content-Type", "application/json")
	if e.Status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(e.Status)
	json.NewEncoder(w).Encode(e) //nolint:errcheck // best-effort body
}
