package service

import (
	"fmt"
	"strconv"
	"strings"

	"memverify/internal/core"
)

// ParseTenants expands a tenant spec string into per-tenant configs. The
// spec is a comma-separated list of
//
//	name[:key=value[;key=value]...]
//
// where each tenant starts from the base config (deep enough a copy that
// overrides never leak between tenants) and overrides any of:
//
//	scheme    verification scheme (naive, c, m, i)
//	shards    shard count
//	protected total protected bytes
//	l2        per-shard L2 bytes
//	policy    violation policy (record, halt, retry)
//	hashmode  digest execution (full, timing, memo)
//	alg       hash algorithm (md5, sha1, fnv128)
//	chunk     L2 blocks per hash chunk
//	queue     per-shard queue depth
//	spec      speculative pipeline (true/false)
//
// e.g. "alpha,bravo:scheme=i;policy=halt,charlie:shards=8".
// Persistence placement (PersistDir/AnchorPath) is the daemon's concern —
// it derives per-tenant paths from its -persist root after parsing.
func ParseTenants(spec string, base TenantConfig) ([]TenantConfig, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("service: empty tenant spec")
	}
	var out []TenantConfig
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		tc := base
		name, opts, _ := strings.Cut(part, ":")
		tc.Name = strings.TrimSpace(name)
		if err := checkTenantName(tc.Name); err != nil {
			return nil, err
		}
		if opts != "" {
			if err := applyTenantOpts(&tc, opts); err != nil {
				return nil, fmt.Errorf("service: tenant %s: %w", tc.Name, err)
			}
		}
		// Scheme-dependent chunk defaulting, matching the loadgen CLI: m
		// and i need multi-block chunks unless the spec pinned one.
		m := &tc.Store.Machine
		if m.ChunkBlocks <= 1 && (m.Scheme == core.SchemeMulti || m.Scheme == core.SchemeIncr) {
			m.ChunkBlocks = 2
		}
		out = append(out, tc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("service: empty tenant spec")
	}
	return out, nil
}

func applyTenantOpts(tc *TenantConfig, opts string) error {
	for _, kv := range strings.Split(opts, ";") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("option %q: want key=value", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		m := &tc.Store.Machine
		switch key {
		case "scheme":
			m.Scheme = core.Scheme(val)
		case "shards":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return fmt.Errorf("shards=%q: want a positive integer", val)
			}
			tc.Store.Shards = n
		case "protected":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || n == 0 {
				return fmt.Errorf("protected=%q: want positive bytes", val)
			}
			m.ProtectedBytes = n
		case "l2":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return fmt.Errorf("l2=%q: want positive bytes", val)
			}
			m.L2Size = n
		case "policy":
			m.ViolationPolicy = val
		case "hashmode":
			m.HashMode = val
		case "alg":
			m.HashAlg = val
		case "chunk":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return fmt.Errorf("chunk=%q: want a positive integer", val)
			}
			m.ChunkBlocks = n
		case "queue":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return fmt.Errorf("queue=%q: want a positive integer", val)
			}
			tc.Store.QueueDepth = n
		case "spec":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return fmt.Errorf("spec=%q: want a boolean", val)
			}
			m.Speculative = b
		default:
			return fmt.Errorf("unknown option %q", key)
		}
	}
	return nil
}
