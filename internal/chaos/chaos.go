// Package chaos is a deterministic, seeded fault-injection campaign engine
// for the memory-integrity simulator. A campaign mounts randomized physical
// attacks — bit flips, burst corruption, snapshot replay, address splicing,
// dropped write-backs, and (optionally) transient bus glitches — against
// data blocks, tree-node chunks, and stored hash/MAC records of a live
// functional machine, and measures whether and how fast the verification
// scheme detects each one.
//
// Determinism is a hard requirement: every random choice flows from one
// trace.RNG seeded by Config.Seed, each injection runs on a fresh machine,
// and reports contain no map iteration or wall-clock state, so identical
// seeds produce byte-identical CSV and JSON reports. That makes a campaign
// usable as a CI regression gate.
//
// The paper's detection claim (§3, §5.8) is about *persistent* tampering of
// external memory that the processor subsequently consumes. A campaign is
// engineered so every injection is consumable and detection is decidable:
//
//   - The machine's protected state is flushed and invalidated before the
//     injection, so the tamper lands post-eviction — a dirty cached copy
//     cannot silently heal memory afterwards.
//   - Post-injection program stores never touch the tampered chunk (or the
//     splice partner), so a legitimate overwrite cannot neutralize the
//     tamper before anything reads it.
//   - If the random post-injection traffic never happens to read through
//     the tampered bytes, a final deadline sweep re-evicts everything and
//     loads straight through them, forcing the verification path over the
//     corruption.
//
// Under those rules every tree scheme must detect every persistent
// injection: Outcome "missed" is a real bug in the verification machinery,
// and the campaign's summary is asserted on in CI.
package chaos

import (
	"bytes"
	"fmt"

	"memverify/internal/core"
	"memverify/internal/prefetch"
	"memverify/internal/telemetry"
	"memverify/internal/trace"
)

// Attack kinds. Stored as strings so reports read without a legend.
const (
	KindBitFlip   = "bit-flip"
	KindBurst     = "burst"
	KindReplay    = "replay"
	KindSplice    = "splice"
	KindDropWrite = "drop-write"
	KindGlitch    = "glitch" // transient; only with Config.IncludeTransient
)

// Attack targets.
const (
	TargetData   = "data"   // a program data chunk
	TargetNode   = "node"   // an interior tree-node chunk on a data path
	TargetRecord = "record" // the stored hash/MAC record of a data chunk
)

// Injection outcomes.
const (
	OutcomeDetectedLive  = "detected-live"  // flagged by random post-injection traffic
	OutcomeDetectedSweep = "detected-sweep" // flagged by the deadline sweep
	OutcomeTransient     = "transient"      // glitch suppressed by PolicyRetry re-fetch
	OutcomeMissed        = "missed"         // never flagged — a verification bug
)

// Config parameterizes one campaign. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	Seed     uint64
	Scheme   core.Scheme
	HashMode string // "full" or "memo" ("timing" is illegal under attack)
	Policy   string // "record", "halt" or "retry"

	// Injections is the number of fault injections to run. Each runs on a
	// fresh machine so earlier corruption cannot mask later detection.
	Injections int

	// WarmAccesses program stores/loads run before each injection so the
	// tamper lands in state the machine actually uses; PostAccesses random
	// accesses run after it, measuring live detection latency.
	WarmAccesses int
	PostAccesses int

	// Machine sizing. Small regions keep thousand-injection campaigns fast
	// while still exercising multi-level trees.
	ProtectedBytes uint64
	L2Size         int

	// IncludeTransient adds glitch injections — transient bus faults that
	// corrupt a bounded number of reads while stored memory stays clean.
	// Only meaningful with Policy "retry", which can tell them apart from
	// persistent tampering; under other policies a glitch is recorded as a
	// plain violation.
	IncludeTransient bool

	// Prefetch enables the tree-ancestor prefetcher on every injection's
	// machine, and VerifyCacheLines/VerifyCacheAssoc give tree nodes a
	// dedicated cache — the campaign legs proving the performance features
	// never weaken detection.
	Prefetch         bool
	VerifyCacheLines int
	VerifyCacheAssoc int

	// Speculative runs every injection's machine with the speculative
	// verification pipeline (data delivered before its check resolves),
	// and BarrierEvery > 0 interleaves a Machine.Barrier every that many
	// post-injection accesses — the campaign leg proving speculative
	// delivery never weakens detection: every verdict is forced to
	// resolve at the barrier, so a tamper can never outlive the epoch
	// that consumed it.
	Speculative  bool
	BarrierEvery int

	// Telemetry, when non-nil, attaches the recorder to every injection's
	// machine (cmd/chaos -trace/-metrics). Each injection runs on a fresh
	// machine, so each shows up as its own process in the exported trace.
	// A recorder is single-goroutine; campaigns already run serially.
	Telemetry *telemetry.Recorder
}

// DefaultConfig returns a campaign sized for CI: a 3-level tree over a
// 64 KiB protected region with an 8 KiB L2, so chunks actually leave the
// cache and every attack class has room to land.
func DefaultConfig(scheme core.Scheme) Config {
	return Config{
		Seed:           1,
		Scheme:         scheme,
		HashMode:       "full",
		Policy:         "record",
		Injections:     100,
		WarmAccesses:   24,
		PostAccesses:   24,
		ProtectedBytes: 64 << 10,
		L2Size:         8 << 10,
	}
}

// machineConfig builds the simulator configuration for one injection.
func (c Config) machineConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Scheme = c.Scheme
	cfg.Functional = true
	cfg.HashAlg = "fnv128" // fastest algorithm; 16-byte records satisfy scheme i
	cfg.HashMode = c.HashMode
	cfg.ViolationPolicy = c.Policy
	cfg.ProtectedBytes = c.ProtectedBytes
	cfg.L2Size = c.L2Size
	cfg.Benchmark = trace.Uniform("chaos", c.ProtectedBytes/2)
	cfg.Benchmark.CodeSet = 4 << 10
	if c.Scheme == core.SchemeMulti || c.Scheme == core.SchemeIncr {
		cfg.ChunkBlocks = 2
	}
	if c.Prefetch {
		cfg.Prefetch = prefetch.DefaultConfig()
		cfg.Prefetch.Enabled = true
	}
	cfg.VerifyCacheLines = c.VerifyCacheLines
	cfg.VerifyCacheAssoc = c.VerifyCacheAssoc
	cfg.Speculative = c.Speculative
	cfg.Telemetry = c.Telemetry
	return cfg
}

// kinds returns the persistent attack-kind rotation for the campaign.
func (c Config) kinds() []string {
	ks := []string{KindBitFlip, KindBurst, KindReplay, KindSplice, KindDropWrite}
	if c.IncludeTransient {
		ks = append(ks, KindGlitch)
	}
	return ks
}

// targetsFor lists the targets an attack kind can aim at. Splice needs two
// chunks whose contents the campaign controls, so it stays on data;
// glitches stay on data so exactly one read path consumes the fault.
func targetsFor(kind string) []string {
	switch kind {
	case KindSplice, KindGlitch:
		return []string{TargetData}
	default:
		return []string{TargetData, TargetNode, TargetRecord}
	}
}

// Run executes the campaign and returns its report. The error is
// configuration-level (an unbuildable machine); per-injection results are
// in the report.
func Run(cfg Config) (*Report, error) {
	if cfg.Injections <= 0 {
		return nil, fmt.Errorf("chaos: Injections must be positive")
	}
	if cfg.Scheme == core.SchemeBase {
		return nil, fmt.Errorf("chaos: the base scheme has no verification to campaign against")
	}
	rng := trace.NewRNG(cfg.Seed)
	rep := &Report{
		Seed:         cfg.Seed,
		Scheme:       string(cfg.Scheme),
		HashMode:     cfg.HashMode,
		Policy:       cfg.Policy,
		Speculative:  cfg.Speculative,
		BarrierEvery: cfg.BarrierEvery,
	}
	kinds := cfg.kinds()
	for i := 0; i < cfg.Injections; i++ {
		kind := kinds[i%len(kinds)]
		targets := targetsFor(kind)
		target := targets[rng.Intn(len(targets))]
		inj, err := runInjection(cfg, i, kind, target, rng)
		if err != nil {
			return nil, fmt.Errorf("chaos: injection %d (%s/%s): %w", i, kind, target, err)
		}
		rep.Injections = append(rep.Injections, *inj)
	}
	rep.summarize()
	return rep, nil
}

// CleanViolations runs the campaign's access pattern — warm traffic, the
// full eviction barrier, post traffic, and the deadline sweep — with no
// adversary attached, and returns the number of violations flagged. Any
// nonzero result is a false positive in the verification machinery.
func CleanViolations(cfg Config) (uint64, error) {
	m, err := core.NewMachine(cfg.machineConfig())
	if err != nil {
		return 0, err
	}
	rng := trace.NewRNG(cfg.Seed)
	span := m.ProgSpan()
	blk := uint64(m.Cfg.L2Block)
	for i := 0; i < cfg.WarmAccesses+cfg.PostAccesses; i++ {
		off := rng.Uint64() % span
		if rng.Intn(2) == 0 {
			if err := m.StoreBytes(off, []byte{byte(rng.Uint64())}); err != nil {
				return 0, err
			}
		} else {
			if err := m.LoadBytes(off, make([]byte, 1)); err != nil &&
				m.Sys.Stat.Violations == 0 {
				return 0, err
			}
		}
		if i == cfg.WarmAccesses {
			m.EvictProtected()
		}
		if cfg.Speculative && cfg.BarrierEvery > 0 && (i+1)%cfg.BarrierEvery == 0 {
			// A clean campaign's barriers must never surface a verdict;
			// any they do bumps Stat.Violations and trips the gate below.
			_ = m.Barrier()
		}
	}
	m.EvictProtected()
	if err := m.LoadBytes(0, make([]byte, blk)); err != nil && m.Sys.Stat.Violations == 0 {
		return 0, err
	}
	if cfg.Speculative {
		_ = m.Barrier()
	}
	return m.Sys.Stat.Violations, nil
}

// campaignState is the per-injection working set.
type campaignState struct {
	cfg Config
	m   *core.Machine
	rng *trace.RNG

	span uint64 // program data span for ProgAddr offsets
	blk  uint64

	// tamperAddr/tamperSize is the memory region the attack corrupted (or
	// whose reads it subverts); observed/healed track adversary-bus
	// traffic overlapping it.
	tamperAddr uint64
	tamperSize uint64
	observed   bool
	healed     bool

	// excluded lists the chunks post-injection stores must avoid, so a
	// legitimate overwrite cannot neutralize the tamper.
	excluded []uint64

	// sweepOff is the program data offset whose load path is guaranteed to
	// read through the corruption during the deadline sweep.
	sweepOff uint64
}

// runInjection performs one complete injection lifecycle on a fresh machine.
func runInjection(cfg Config, id int, kind, target string, rng *trace.RNG) (*Injection, error) {
	m, err := core.NewMachine(cfg.machineConfig())
	if err != nil {
		return nil, err
	}
	st := &campaignState{cfg: cfg, m: m, rng: rng, span: m.ProgSpan(), blk: uint64(m.Cfg.L2Block)}

	// Warm traffic: make the protected region live state, not just the
	// initialization image.
	for i := 0; i < cfg.WarmAccesses; i++ {
		off := rng.Uint64() % st.span
		if rng.Intn(2) == 0 {
			if err := m.StoreBytes(off, []byte{byte(rng.Uint64())}); err != nil {
				return nil, err
			}
		} else {
			if err := m.LoadBytes(off, make([]byte, 1)); err != nil {
				return nil, fmt.Errorf("clean warm load flagged a violation: %w", err)
			}
		}
	}

	inj := &Injection{ID: id, Kind: kind, Target: target}
	if err := st.inject(inj); err != nil {
		return nil, err
	}

	if kind == KindGlitch {
		st.resolveGlitch(inj)
		return inj, nil
	}

	st.observe(inj)
	return inj, nil
}

// dataOffInChunk returns a program data offset whose address lands in a
// uniformly chosen data chunk, plus that chunk's index.
func (st *campaignState) dataOffInChunk() (off uint64, chunk uint64) {
	off = st.rng.Uint64() % st.span
	chunk = st.m.Layout.ChunkOf(st.m.ProgAddr(off))
	return off, chunk
}

// chunkSpanOff returns a data offset such that offsets [off, off+n) stay
// inside one chunk.
func (st *campaignState) chunkSpanOff(n uint64) uint64 {
	cs := uint64(st.m.Layout.ChunkSize)
	for {
		off := st.rng.Uint64() % st.span
		a := st.m.ProgAddr(off)
		if a%cs+n <= cs && off+n <= st.span {
			return off
		}
	}
}

// nonzeroMask returns a uniformly random nonzero byte.
func (st *campaignState) nonzeroMask() byte {
	for {
		if b := byte(st.rng.Uint64()); b != 0 {
			return b
		}
	}
}

// inject mounts the chosen attack. On return the machine's protected state
// is fully evicted, the tamper is live in (or on the read path of) external
// memory, and st's bookkeeping describes it.
func (st *campaignState) inject(inj *Injection) error {
	m := st.m
	lay := m.Layout
	cs := uint64(lay.ChunkSize)

	// Pick the victim: a data chunk, plus the attacked region within the
	// tree derived from it. sweepOff always maps to a data address whose
	// verification path covers the corruption.
	dataOff, dataChunk := st.dataOffInChunk()
	st.sweepOff = dataOff - dataOff%st.blk
	victimChunk := dataChunk
	var victimAddr, victimSize uint64
	switch inj.Target {
	case TargetData:
		victimAddr, victimSize = lay.ChunkAddr(dataChunk), cs
	case TargetNode:
		// PathToRoot excludes the data chunk itself: every entry is an
		// interior ancestor, up to and including the top chunk.
		path := lay.PathToRoot(dataChunk)
		victimChunk = path[st.rng.Intn(len(path))]
		victimAddr, victimSize = lay.ChunkAddr(victimChunk), cs
	case TargetRecord:
		slot, ok := lay.HashAddr(dataChunk)
		if !ok {
			return fmt.Errorf("data chunk %d has no stored record", dataChunk)
		}
		victimChunk = lay.ChunkOf(slot)
		victimAddr, victimSize = slot, uint64(lay.HashSize)
	}
	inj.Chunk = victimChunk
	inj.Addr = victimAddr
	st.excluded = append(st.excluded, dataChunk)
	st.tamperAddr, st.tamperSize = victimAddr, victimSize

	adv := m.Adversary()
	switch inj.Kind {
	case KindBitFlip:
		m.EvictProtected()
		adv.Corrupt(victimAddr+st.rng.Uint64()%victimSize, st.nonzeroMask())

	case KindBurst:
		m.EvictProtected()
		n := uint64(2 + st.rng.Intn(14))
		if n > victimSize {
			n = victimSize
		}
		mask := make([]byte, n)
		for i := range mask {
			mask[i] = byte(st.rng.Uint64())
		}
		mask[st.rng.Intn(int(n))] = st.nonzeroMask() // at least one real flip
		adv.CorruptBurst(victimAddr+st.rng.Uint64()%(victimSize-n+1), mask)

	case KindReplay:
		// Snapshot the victim chunk, change it legitimately, then replay
		// the stale bytes. For data the change is a direct store; for tree
		// targets it is the record update a store underneath forces.
		base := lay.ChunkAddr(victimChunk)
		if err := m.StoreBytes(dataOff-dataOff%st.blk, bytes.Repeat([]byte{0xA5}, int(st.blk))); err != nil {
			return err
		}
		m.EvictProtected()
		snap := adv.Snapshot(base, cs)
		if err := m.StoreBytes(dataOff-dataOff%st.blk, bytes.Repeat([]byte{0x5A}, int(st.blk))); err != nil {
			return err
		}
		m.EvictProtected()
		adv.Replay(snap)
		st.tamperAddr, st.tamperSize = base, cs

	case KindSplice:
		// Write distinct patterns into two different chunks, then answer
		// reads of the first with the second's bytes.
		dstOff := st.chunkSpanOff(st.blk)
		dst := lay.ChunkOf(m.ProgAddr(dstOff))
		var srcOff uint64
		var src uint64
		for {
			srcOff = st.chunkSpanOff(st.blk)
			src = lay.ChunkOf(m.ProgAddr(srcOff))
			if src != dst {
				break
			}
		}
		if err := m.StoreBytes(dstOff, bytes.Repeat([]byte{0x11}, int(st.blk))); err != nil {
			return err
		}
		if err := m.StoreBytes(srcOff, bytes.Repeat([]byte{0xEE}, int(st.blk))); err != nil {
			return err
		}
		m.EvictProtected()
		adv.Splice(lay.ChunkAddr(dst), lay.ChunkAddr(src), cs)
		inj.Chunk = dst
		inj.Addr = lay.ChunkAddr(dst)
		st.tamperAddr, st.tamperSize = lay.ChunkAddr(dst), cs
		st.excluded = []uint64{dst, src}
		st.sweepOff = dstOff - dstOff%st.blk

	case KindDropWrite:
		// Drop the engine's writes to the victim region, then force a
		// legitimate update through it: memory keeps the stale bytes while
		// the surviving writes cover the new state.
		adv.DropWrites(victimAddr, victimSize)
		if err := m.StoreBytes(dataOff-dataOff%st.blk, bytes.Repeat([]byte{0xC3}, int(st.blk))); err != nil {
			return err
		}
		m.EvictProtected()

	case KindGlitch:
		m.EvictProtected()
		adv.Glitch(victimAddr, victimSize, st.nonzeroMask(), 1)

	default:
		return fmt.Errorf("unknown attack kind %q", inj.Kind)
	}

	// Arm the observation hooks after the injection's own setup traffic so
	// they describe only post-injection consumption.
	adv.OnRead = func(addr uint64, n int) {
		if addr < st.tamperAddr+st.tamperSize && addr+uint64(n) > st.tamperAddr {
			st.observed = true
		}
	}
	adv.OnWrite = func(addr uint64, n int) {
		if addr < st.tamperAddr+st.tamperSize && addr+uint64(n) > st.tamperAddr {
			st.healed = true
		}
	}
	return nil
}

// tamperResident reports whether the tampered block is currently cached —
// in the L2 or, for tree nodes under a dedicated verification cache, the VC.
func (st *campaignState) tamperResident() bool {
	ba := st.m.L2.BlockAddr(st.tamperAddr)
	if st.m.L2.Peek(ba) != nil {
		return true
	}
	return st.m.VC != nil && st.m.VC.Peek(ba) != nil
}

// excludedChunk reports whether a program data offset's chunk is off-limits
// for post-injection stores.
func (st *campaignState) excludedChunk(off uint64) bool {
	c := st.m.Layout.ChunkOf(st.m.ProgAddr(off))
	for _, e := range st.excluded {
		if c == e {
			return true
		}
	}
	return false
}

// observe drives random post-injection traffic, then the deadline sweep,
// classifying the outcome and measuring detection latency.
func (st *campaignState) observe(inj *Injection) {
	m := st.m
	injectCycle := m.Now()
	baseViol := m.Sys.Stat.Violations

	detected := func() bool { return m.Sys.Stat.Violations > baseViol }

	for i := 0; i < st.cfg.PostAccesses && !detected(); i++ {
		off := st.rng.Uint64() % st.span
		if st.rng.Intn(2) == 0 && !st.excludedChunk(off) {
			// Store errors are expected under the halt policy once a prior
			// access detected the tamper; detection is what we measure.
			_ = m.StoreBytes(off, []byte{byte(st.rng.Uint64())})
		} else {
			_ = m.LoadBytes(off, make([]byte, 1))
		}
		inj.Accesses++
		if !detected() && st.tamperResident() {
			inj.ResidentAccesses++
		}
		// Barrier-placement leg: force every outstanding speculative
		// verdict to resolve every BarrierEvery accesses. Detection is
		// still classified from the Stat counters (which bump at walk
		// time), so the barrier must never change the outcome — only
		// when the deferred policy (halt) engages.
		if st.cfg.Speculative && st.cfg.BarrierEvery > 0 &&
			inj.Accesses%st.cfg.BarrierEvery == 0 {
			_ = m.Barrier()
		}
	}
	if detected() {
		inj.Outcome = OutcomeDetectedLive
		inj.LatencyAccesses = inj.Accesses
		inj.LatencyCycles = m.Now() - injectCycle
	} else {
		// Deadline sweep: force the verification path straight through the
		// corruption. Flush-side detection (e.g. the naive scheme verifying
		// a path during eviction) counts the same as load-side.
		m.EvictProtected()
		if !detected() {
			_ = m.LoadBytes(st.sweepOff, make([]byte, st.blk))
		}
		// Final epoch barrier: nothing the sweep delivered speculatively
		// may carry an unresolved verdict past classification.
		if st.cfg.Speculative {
			_ = m.Barrier()
		}
		if detected() {
			inj.Outcome = OutcomeDetectedSweep
			inj.LatencyAccesses = inj.Accesses + 1
			inj.LatencyCycles = m.Now() - injectCycle
		} else {
			inj.Outcome = OutcomeMissed
		}
	}
	inj.Observed = st.observed
	inj.Healed = st.healed
	st.fillStats(inj)
}

// resolveGlitch consumes a transient glitch synchronously: one verified
// load through the glitched region. Under PolicyRetry the re-fetch sees
// clean memory and suppresses the violation (outcome "transient"); under
// other policies the glitch is indistinguishable from tampering and is
// recorded as a detection.
func (st *campaignState) resolveGlitch(inj *Injection) {
	m := st.m
	injectCycle := m.Now()
	baseViol := m.Sys.Stat.Violations
	_ = m.LoadBytes(st.sweepOff, make([]byte, st.blk))
	inj.Accesses = 1
	switch {
	case m.Sys.Stat.Violations > baseViol:
		inj.Outcome = OutcomeDetectedLive
		inj.LatencyAccesses = 1
		inj.LatencyCycles = m.Now() - injectCycle
	case m.Sys.Stat.RetriesTransient > 0:
		inj.Outcome = OutcomeTransient
	default:
		// The glitched read never reached a verifier (it should have: the
		// sweep offset reads through the glitch region). Treat as missed so
		// the gate trips.
		inj.Outcome = OutcomeMissed
	}
	inj.Observed = st.observed
	inj.Healed = st.healed
	st.fillStats(inj)
}

// fillStats copies the machine's retry counters into the injection row.
func (st *campaignState) fillStats(inj *Injection) {
	s := st.m.Sys.Stat
	inj.Retries = s.Retries
	inj.RetriesTransient = s.RetriesTransient
	inj.RetriesPersistent = s.RetriesPersistent
}
