package chaos

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"memverify/internal/core"
	"memverify/internal/persist"
	"memverify/internal/shard"
	"memverify/internal/trace"
)

// The crash campaign is the kill/restart sibling of the in-memory
// tampering campaign: each injection runs a seeded workload that
// checkpoints through internal/persist, then either kills the simulated
// process at a protocol stage (via persist.FaultFS) or tampers with the
// on-disk state before restart, and asserts the recovery contract —
// every clean kill/restart reproduces the exact pre-crash committed root
// (possibly the earlier epoch when the tear rolled back), and every
// on-disk tampering or rollback/replay attempt is classified a violation.

// Crash injection kinds.
const (
	// CrashKill dies at a seeded protocol stage and restarts: the clean
	// leg. Recovery must NOT report a violation and must reproduce a
	// sealed root bit-exactly.
	CrashKill = "kill"
	// CrashTamperSegment flips one byte of a committed segment file; the
	// checksum layer must refuse it.
	CrashTamperSegment = "tamper-segment"
	// CrashForgeSegment flips one image byte AND recomputes the file
	// checksum — a forgery the crash-consistency layer cannot see. Only
	// the engine's verification walk against the WAL-sealed root catches
	// it: the adversarial leg that separates checksums from integrity.
	CrashForgeSegment = "forge-segment"
	// CrashTruncateWAL chops committed epochs off the log while leaving
	// the newer snapshot in place.
	CrashTruncateWAL = "truncate-wal"
	// CrashStaleSnapshot reinstalls an older, internally valid snapshot
	// over the committed one — the cross-restart replay attack.
	CrashStaleSnapshot = "stale-snapshot"
	// CrashReplayDir reinstalls a byte-exact copy of the ENTIRE older
	// directory — WAL, manifest and segments together — a replay no
	// in-directory check can see (the copy is fully self-consistent).
	// These legs run with persist.Options.AnchorPath pointing at a file
	// outside the directory: the external trusted-storage anchor must
	// classify the replay as a violation.
	CrashReplayDir = "replay-dir"
)

// killStages is the protocol-stage rotation for CrashKill legs.
var killStages = []string{
	persist.StageWALWrite,
	persist.StageWALSync,
	persist.StageBetween,
	persist.StageSegWrite,
	persist.StageSegSync,
	persist.StageManifestWrite,
	persist.StageManifestRename,
}

// crashKinds is the per-leg rotation: three kills (cycling through the
// seven stages across legs) for every five tamper legs.
var crashKinds = []string{
	CrashKill, CrashTamperSegment, CrashKill, CrashForgeSegment,
	CrashKill, CrashTruncateWAL, CrashStaleSnapshot, CrashReplayDir,
}

// CrashConfig configures a crash campaign. The zero value is not usable;
// start from DefaultCrashConfig.
type CrashConfig struct {
	Seed     uint64
	Scheme   core.Scheme
	HashMode string
	Policy   string

	// Injections is the number of kill/tamper legs.
	Injections int

	// Shards selects the persistence source: 1 runs a single machine,
	// >1 runs the sharded concurrent store (per-shard segments, manifest
	// commit, per-shard halt containment on recovery).
	Shards int

	// ProtectedBytes is the TOTAL protected region (split across Shards);
	// L2Size the per-machine cache.
	ProtectedBytes uint64
	L2Size         int

	// WritesPerRound is the number of 64-byte stores between checkpoints.
	WritesPerRound int

	// Dir is the scratch root for the per-leg store directories; ""
	// creates a temp dir and removes it afterwards.
	Dir string
}

// DefaultCrashConfig returns a small, fast campaign for scheme.
func DefaultCrashConfig(scheme core.Scheme) CrashConfig {
	return CrashConfig{
		Seed:           1,
		Scheme:         scheme,
		HashMode:       "full",
		Policy:         "record",
		Injections:     50,
		Shards:         1,
		ProtectedBytes: 16 << 10,
		L2Size:         8 << 10,
		WritesPerRound: 24,
	}
}

// machineCrashConfig builds the per-machine simulator configuration.
func (c CrashConfig) machineCrashConfig() core.Config {
	per := c.ProtectedBytes / uint64(c.Shards)
	cfg := core.DefaultConfig()
	cfg.Scheme = c.Scheme
	cfg.Functional = true
	cfg.HashAlg = "fnv128"
	cfg.HashMode = c.HashMode
	cfg.ViolationPolicy = c.Policy
	cfg.ProtectedBytes = c.ProtectedBytes
	cfg.L2Size = c.L2Size
	cfg.Benchmark = trace.Uniform("crash", per/2)
	cfg.Benchmark.CodeSet = per / 4
	if c.Scheme == core.SchemeMulti || c.Scheme == core.SchemeIncr {
		cfg.ChunkBlocks = 2
	}
	return cfg
}

// CrashInjection is one leg of a crash campaign.
type CrashInjection struct {
	ID   int    `json:"id"`
	Kind string `json:"kind"`
	// Stage is the kill stage for CrashKill legs, "" otherwise.
	Stage string `json:"stage,omitempty"`
	// Outcome is the recovery classification (persist.Outcome).
	Outcome string `json:"outcome"`
	// Epoch is the epoch recovery restored to.
	Epoch uint64 `json:"epoch"`
	// Detected: a tamper leg classified as a violation.
	Detected bool `json:"detected"`
	// ExactRoot: a clean recovery whose restored roots are byte-identical
	// to the sealed roots of the recovered epoch.
	ExactRoot bool   `json:"exact_root"`
	Detail    string `json:"detail,omitempty"`
}

// CrashSummary aggregates a crash campaign.
type CrashSummary struct {
	Total   int `json:"total"`
	Kills   int `json:"kills"`
	Tampers int `json:"tampers"`

	// CleanRecoveries counts kill legs that recovered without a
	// violation AND reproduced the exact sealed root.
	CleanRecoveries int `json:"clean_recoveries"`
	// FalsePositives counts kill legs classified as violations — clean
	// crashes misread as attacks. The gate requires zero.
	FalsePositives int `json:"false_positives"`
	// RootMismatches counts kill legs that recovered "cleanly" to a root
	// that matches no sealed epoch. The gate requires zero.
	RootMismatches int `json:"root_mismatches"`
	// Detected counts tamper legs classified as violations; Missed the
	// rest. The gate requires Missed == 0.
	Detected int `json:"detected"`
	Missed   int `json:"missed"`

	// DetectionRate is Detected / Tampers.
	DetectionRate float64 `json:"detection_rate"`
}

// CrashReport is a full crash-campaign result; identical configs produce
// byte-identical reports.
type CrashReport struct {
	Seed     uint64 `json:"seed"`
	Scheme   string `json:"scheme"`
	HashMode string `json:"hash_mode"`
	Policy   string `json:"policy"`
	Shards   int    `json:"shards"`

	Injections []CrashInjection `json:"injections"`
	Summary    CrashSummary     `json:"summary"`
}

// MarshalJSON pins float formatting so reports are byte-stable (see
// Summary.MarshalJSON).
func (s CrashSummary) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"clean_recoveries":%d,"detected":%d,"detection_rate":%.6f,`+
		`"false_positives":%d,"kills":%d,"missed":%d,"root_mismatches":%d,`+
		`"tampers":%d,"total":%d}`,
		s.CleanRecoveries, s.Detected, s.DetectionRate,
		s.FalsePositives, s.Kills, s.Missed, s.RootMismatches,
		s.Tampers, s.Total)
	return b.Bytes(), nil
}

func (r *CrashReport) summarize() {
	var s CrashSummary
	for _, inj := range r.Injections {
		s.Total++
		if inj.Kind == CrashKill {
			s.Kills++
			switch {
			case inj.Outcome == string(persist.OutcomeViolation):
				s.FalsePositives++
			case inj.ExactRoot:
				s.CleanRecoveries++
			default:
				s.RootMismatches++
			}
		} else {
			s.Tampers++
			if inj.Detected {
				s.Detected++
			} else {
				s.Missed++
			}
		}
	}
	if s.Tampers > 0 {
		s.DetectionRate = float64(s.Detected) / float64(s.Tampers)
	}
	r.Summary = s
}

// WriteCSV writes one header line plus one line per leg.
func (r *CrashReport) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "id,scheme,hash_mode,policy,shards,kind,stage,outcome,epoch,detected,exact_root"); err != nil {
		return err
	}
	for _, inj := range r.Injections {
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%s,%d,%s,%s,%s,%d,%t,%t\n",
			inj.ID, r.Scheme, r.HashMode, r.Policy, r.Shards,
			inj.Kind, inj.Stage, inj.Outcome, inj.Epoch, inj.Detected, inj.ExactRoot); err != nil {
			return err
		}
	}
	return nil
}

// RunCrash executes a crash campaign: Injections independent
// checkpoint→crash→recover cycles, each in a fresh store directory.
func RunCrash(cfg CrashConfig) (*CrashReport, error) {
	if cfg.Injections <= 0 {
		return nil, fmt.Errorf("chaos: crash campaign needs at least one injection")
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	root := cfg.Dir
	if root == "" {
		var err error
		root, err = os.MkdirTemp("", "chaos-crash-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(root)
	}
	rep := &CrashReport{
		Seed:     cfg.Seed,
		Scheme:   string(cfg.Scheme),
		HashMode: cfg.HashMode,
		Policy:   cfg.Policy,
		Shards:   cfg.Shards,
	}
	kills := 0
	for id := 0; id < cfg.Injections; id++ {
		kind := crashKinds[id%len(crashKinds)]
		stage := ""
		if kind == CrashKill {
			stage = killStages[kills%len(killStages)]
			kills++
		}
		inj, err := runCrashLeg(cfg, id, kind, stage, filepath.Join(root, fmt.Sprintf("leg-%04d", id)))
		if err != nil {
			return nil, fmt.Errorf("chaos: crash leg %d (%s): %w", id, kind, err)
		}
		rep.Injections = append(rep.Injections, *inj)
	}
	rep.summarize()
	return rep, nil
}

// crashSource abstracts the single-machine and sharded-store legs.
type crashSource interface {
	persist.Source
	write(rng *rand.Rand, n int) error
	roots() [][]byte
	close()
}

type machineLeg struct{ m *core.Machine }

func (l machineLeg) NumShards() int             { return 1 }
func (l machineLeg) MachineConfig() core.Config { return l.m.Cfg }
func (l machineLeg) WithMachine(i int, f func(*core.Machine) error) error {
	return f(l.m)
}
func (l machineLeg) write(rng *rand.Rand, n int) error {
	span := l.m.ProgSpan()
	buf := make([]byte, 64)
	for i := 0; i < n; i++ {
		rng.Read(buf)
		off := rng.Uint64() % (span - 64)
		if err := l.m.StoreBytes(off, buf); err != nil {
			return err
		}
	}
	return nil
}
func (l machineLeg) roots() [][]byte { return [][]byte{l.m.Root()} }
func (l machineLeg) close()          {}

type storeLeg struct{ s *shard.Store }

func (l storeLeg) NumShards() int             { return l.s.Shards() }
func (l storeLeg) MachineConfig() core.Config { return persist.StoreSource{S: l.s}.MachineConfig() }
func (l storeLeg) WithMachine(i int, f func(*core.Machine) error) error {
	return persist.StoreSource{S: l.s}.WithMachine(i, f)
}
func (l storeLeg) write(rng *rand.Rand, n int) error {
	span := l.s.Span()
	buf := make([]byte, 64)
	for i := 0; i < n; i++ {
		rng.Read(buf)
		off := rng.Uint64() % (span - 64)
		if err := l.s.StoreBytes(off, buf); err != nil {
			return err
		}
	}
	return nil
}
func (l storeLeg) roots() [][]byte {
	out := make([][]byte, l.s.Shards())
	for i := range out {
		i := i
		l.s.WithShard(i, func(m *core.Machine) { out[i] = m.Root() })
	}
	return out
}
func (l storeLeg) close() { l.s.Close() }

// runCrashLeg runs one injection in its own directory.
func runCrashLeg(cfg CrashConfig, id int, kind, stage, dir string) (*CrashInjection, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	mcfg := cfg.machineCrashConfig()
	var src crashSource
	if cfg.Shards > 1 {
		s, err := shard.New(shard.Config{Machine: mcfg, Shards: cfg.Shards})
		if err != nil {
			return nil, err
		}
		src = storeLeg{s}
	} else {
		m, err := core.NewMachine(mcfg)
		if err != nil {
			return nil, err
		}
		src = machineLeg{m}
	}
	defer src.close()

	// The campaign's fast retry policy: backoff sleeps would otherwise
	// dominate a 200-leg CI run.
	retry := persist.RetryPolicy{Attempts: 3, BaseDelay: 1, MaxDelay: 1}
	ffs := persist.NewFaultFS(nil)
	// Replay-dir legs anchor the WAL tail OUTSIDE the store directory —
	// the external trusted storage the whole-directory replay cannot
	// reach.
	anchorPath := ""
	if kind == CrashReplayDir {
		anchorPath = dir + ".anchor"
		defer os.Remove(anchorPath)
	}
	st, err := persist.Open(persist.Options{Dir: dir, FS: ffs, Retry: retry, Policy: cfg.Policy, AnchorPath: anchorPath})
	if err != nil {
		return nil, err
	}
	defer st.Close()

	rng := rand.New(rand.NewSource(int64(cfg.Seed)<<20 ^ int64(id)))
	inj := &CrashInjection{ID: id, Kind: kind, Stage: stage}

	// Epoch 1: committed cleanly on every leg.
	if err := src.write(rng, cfg.WritesPerRound); err != nil {
		return nil, err
	}
	if _, err := st.Checkpoint(src); err != nil {
		return nil, fmt.Errorf("checkpoint 1: %w", err)
	}
	sealed := map[uint64][][]byte{1: src.roots()}
	if kind == CrashStaleSnapshot {
		// The adversary stashes the committed epoch-1 snapshot now; the
		// GC of checkpoint 2 would otherwise delete its segments.
		if err := stashClean(dir); err != nil {
			return nil, err
		}
	}
	if kind == CrashReplayDir {
		// The adversary copies the WHOLE committed directory — WAL
		// included — to a location of their own for later replay.
		if err := stashWholeDir(dir, dir+".stash"); err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir + ".stash")
	}

	// Epoch 2: killed or committed, depending on the leg kind.
	if err := src.write(rng, cfg.WritesPerRound); err != nil {
		return nil, err
	}
	if kind == CrashKill {
		ffs.Kill(persist.KillRule{Stage: stage})
	}
	_, cerr := st.Checkpoint(src)
	switch kind {
	case CrashKill:
		if cerr == nil || !ffs.Killed() {
			return nil, fmt.Errorf("kill stage %s never fired", stage)
		}
		// The roots the killed checkpoint INTENDED to seal: SaveState
		// flushed the machines before the first disk write, so their live
		// roots are exactly the epoch-2 candidates.
		sealed[2] = src.roots()
	default:
		if cerr != nil {
			return nil, fmt.Errorf("checkpoint 2: %w", cerr)
		}
		sealed[2] = src.roots()
		if err := applyDiskTamper(cfg, kind, dir, id); err != nil {
			return nil, err
		}
	}

	// Restart: recover with a clean filesystem, as a rebooted process
	// would.
	rec, roots, err := recoverLeg(cfg, mcfg, dir, anchorPath)
	if err != nil {
		return nil, err
	}
	inj.Outcome = string(rec.Outcome)
	inj.Epoch = rec.Epoch
	inj.Detail = rec.Detail
	inj.Detected = rec.Outcome == persist.OutcomeViolation
	if !inj.Detected {
		want, ok := sealed[rec.Epoch]
		inj.ExactRoot = ok && rootsEqual(roots, want)
	}
	return inj, nil
}

// recoverLeg dispatches recovery by source shape and returns the restored
// per-shard roots.
func recoverLeg(cfg CrashConfig, mcfg core.Config, dir, anchorPath string) (*persist.Recovery, [][]byte, error) {
	if cfg.Shards > 1 {
		s, rec, err := persist.RecoverStore(persist.Options{Dir: dir, AnchorPath: anchorPath}, shard.Config{Machine: mcfg, Shards: cfg.Shards})
		if err != nil {
			return nil, nil, err
		}
		defer s.Close()
		return rec, rec.Roots, nil
	}
	m, rec, err := persist.RecoverMachine(persist.Options{Dir: dir, AnchorPath: anchorPath}, mcfg)
	if err != nil {
		return nil, nil, err
	}
	if rec.Outcome == persist.OutcomeViolation {
		return rec, nil, nil
	}
	return rec, [][]byte{m.Root()}, nil
}

func rootsEqual(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// applyDiskTamper mutates the committed on-disk state for a tamper leg.
// Epoch 2 is committed at this point; the tamper targets it (or, for the
// replay, reinstalls epoch 1's surviving... — see each kind).
func applyDiskTamper(cfg CrashConfig, kind, dir string, id int) error {
	shardIdx := id % cfg.Shards
	switch kind {
	case CrashTamperSegment:
		return flipSegmentByte(dir, 2, shardIdx, false)
	case CrashForgeSegment:
		return flipSegmentByte(dir, 2, shardIdx, true)
	case CrashTruncateWAL:
		// Keep epoch 1's intent+commit, drop epoch 2's: the snapshot now
		// leads the log — committed epochs hidden.
		return os.Truncate(filepath.Join(dir, "wal.log"), 2*persist.WALRecordSize)
	case CrashStaleSnapshot:
		return staleSnapshotSwap(cfg, dir)
	case CrashReplayDir:
		return replayWholeDir(dir, dir+".stash")
	}
	return fmt.Errorf("unknown tamper kind %q", kind)
}

// flipSegmentByte flips one byte in the middle of a segment's image. With
// forge, the file's trailing FNV checksum is recomputed so every
// crash-consistency check passes and only the engine's root walk can
// refuse the state.
func flipSegmentByte(dir string, epoch uint64, shardIdx int, forge bool) error {
	name := filepath.Join(dir, fmt.Sprintf("seg-%06d-%03d.dat", epoch, shardIdx))
	buf, err := os.ReadFile(name)
	if err != nil {
		return err
	}
	if len(buf) < 64 {
		return fmt.Errorf("segment %s too short to tamper", name)
	}
	buf[len(buf)/2] ^= 0x01
	if forge {
		binary.LittleEndian.PutUint64(buf[len(buf)-8:], persist.Checksum64(buf[:len(buf)-8]))
	}
	return os.WriteFile(name, buf, 0o644)
}

// staleSnapshotSwap is the replay attack: the internally valid epoch-1
// snapshot the adversary stashed (stashClean, before checkpoint 2's GC
// deleted it) is reinstalled over the committed epoch-2 one, with the WAL
// left alone — recovery must notice the snapshot regressed past a sealed
// commit.
func staleSnapshotSwap(cfg CrashConfig, dir string) error {
	stash := filepath.Join(dir, "stash")
	ents, err := os.ReadDir(stash)
	if err != nil {
		return fmt.Errorf("stale-snapshot leg has no stash: %w", err)
	}
	// Remove epoch-2 segments, then restore the stashed epoch-1 files.
	cur, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range cur {
		if !e.IsDir() && len(e.Name()) > 4 && e.Name()[:4] == "seg-" {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	for _, e := range ents {
		buf, err := os.ReadFile(filepath.Join(stash, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), buf, 0o644); err != nil {
			return err
		}
	}
	return os.RemoveAll(stash)
}

// stashWholeDir copies EVERY file of dir into stash — the adversary
// snapshotting the complete directory, write-ahead log included.
func stashWholeDir(dir, stash string) error {
	if err := os.MkdirAll(stash, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(stash, e.Name()), buf, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// replayWholeDir wipes dir and reinstalls the stashed copy byte-exactly —
// the whole-directory replay. The resulting directory passes every
// internal consistency check; only the external anchor can refuse it.
func replayWholeDir(dir, stash string) error {
	cur, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range cur {
		if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
			return err
		}
	}
	ents, err := os.ReadDir(stash)
	if err != nil {
		return fmt.Errorf("replay-dir leg has no stash: %w", err)
	}
	for _, e := range ents {
		buf, err := os.ReadFile(filepath.Join(stash, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), buf, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// stashClean copies the manifest and segment files into dir/stash — the
// adversary snapshotting a valid committed state for later replay.
func stashClean(dir string) error {
	stash := filepath.Join(dir, "stash")
	if err := os.MkdirAll(stash, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || (name != "MANIFEST" && (len(name) < 4 || name[:4] != "seg-")) {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(stash, name), buf, 0o644); err != nil {
			return err
		}
	}
	return nil
}
