//go:build race

package chaos

// raceEnabled lets tests skip thousand-injection campaigns under the race
// detector, where they would dominate CI time without adding coverage.
const raceEnabled = true
