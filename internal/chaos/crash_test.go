package chaos

import (
	"bytes"
	"encoding/json"
	"testing"

	"memverify/internal/core"
)

// testCrashConfig shrinks the campaign for test runtime: 16 legs cover
// every kind (including replay-dir) at least twice and six of the seven
// kill stages.
func testCrashConfig(scheme core.Scheme) CrashConfig {
	cfg := DefaultCrashConfig(scheme)
	cfg.Injections = 16
	return cfg
}

func assertCrashGates(t *testing.T, rep *CrashReport) {
	t.Helper()
	s := rep.Summary
	if s.FalsePositives != 0 {
		t.Errorf("%d clean kill/restart cycles classified as violations", s.FalsePositives)
	}
	if s.RootMismatches != 0 {
		t.Errorf("%d clean recoveries failed to reproduce the sealed root", s.RootMismatches)
	}
	if s.Missed != 0 {
		t.Errorf("%d on-disk tampering legs went undetected", s.Missed)
	}
	if s.Tampers > 0 && s.DetectionRate != 1.0 {
		t.Errorf("detection rate %.4f, want 1.0", s.DetectionRate)
	}
	if s.Kills == 0 || s.Tampers == 0 {
		t.Errorf("degenerate campaign: %d kills, %d tampers", s.Kills, s.Tampers)
	}
	for _, inj := range rep.Injections {
		if inj.Kind == CrashKill && inj.Epoch != 1 && inj.Epoch != 2 {
			t.Errorf("leg %d (%s@%s): recovered to epoch %d, want 1 or 2", inj.ID, inj.Kind, inj.Stage, inj.Epoch)
		}
	}
}

func TestCrashCampaignAllSchemes(t *testing.T) {
	for _, scheme := range []core.Scheme{core.SchemeNaive, core.SchemeCached, core.SchemeMulti, core.SchemeIncr} {
		t.Run(string(scheme), func(t *testing.T) {
			rep, err := RunCrash(testCrashConfig(scheme))
			if err != nil {
				t.Fatalf("RunCrash: %v", err)
			}
			assertCrashGates(t, rep)
		})
	}
}

func TestCrashCampaignDeterministic(t *testing.T) {
	cfg := testCrashConfig(core.SchemeCached)
	cfg.Injections = 7
	var out [2]bytes.Buffer
	for i := range out {
		rep, err := RunCrash(cfg)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		enc := json.NewEncoder(&out[i])
		if err := enc.Encode(rep); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Fatal("identical crash configs produced different reports")
	}
}

// TestCrashCampaignReplayDirDetected pins the anchor leg specifically:
// every whole-directory replay must classify as a violation — without
// the external anchor these directories are internally flawless.
func TestCrashCampaignReplayDirDetected(t *testing.T) {
	rep, err := RunCrash(testCrashConfig(core.SchemeCached))
	if err != nil {
		t.Fatalf("RunCrash: %v", err)
	}
	var legs int
	for _, inj := range rep.Injections {
		if inj.Kind != CrashReplayDir {
			continue
		}
		legs++
		if !inj.Detected {
			t.Errorf("leg %d: whole-directory replay went undetected (outcome %s)", inj.ID, inj.Outcome)
		}
	}
	if legs == 0 {
		t.Fatal("campaign ran no replay-dir legs")
	}
}

func TestCrashCampaignShardedStore(t *testing.T) {
	cfg := testCrashConfig(core.SchemeCached)
	cfg.Shards = 4
	cfg.ProtectedBytes = 64 << 10
	rep, err := RunCrash(cfg)
	if err != nil {
		t.Fatalf("RunCrash: %v", err)
	}
	assertCrashGates(t, rep)
}

func TestCrashCampaignHaltPolicy(t *testing.T) {
	cfg := testCrashConfig(core.SchemeCached)
	cfg.Policy = "halt"
	cfg.Injections = 7
	rep, err := RunCrash(cfg)
	if err != nil {
		t.Fatalf("RunCrash: %v", err)
	}
	assertCrashGates(t, rep)
}
