package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Injection is one row of a campaign report: what was attacked, what
// happened, and how fast.
type Injection struct {
	ID     int    `json:"id"`
	Kind   string `json:"kind"`
	Target string `json:"target"`
	Chunk  uint64 `json:"chunk"`
	Addr   uint64 `json:"addr"`

	Outcome string `json:"outcome"`

	// Accesses is how many post-injection program accesses ran; the
	// latency fields are set only for detected outcomes. LatencyCycles is
	// measured on the machine's cycle clock from the moment of injection.
	Accesses        int    `json:"accesses"`
	LatencyAccesses int    `json:"latency_accesses"`
	LatencyCycles   uint64 `json:"latency_cycles"`

	// ResidentAccesses counts post-injection accesses during which the
	// tampered block sat in the L2 while the violation was still
	// unflagged — the cache-residency undetected window.
	ResidentAccesses int `json:"resident_accesses"`

	// Observed/Healed report whether post-injection bus traffic read from
	// or wrote over the tampered region before classification.
	Observed bool `json:"observed"`
	Healed   bool `json:"healed"`

	// Retry-policy counters at classification time.
	Retries           uint64 `json:"retries"`
	RetriesTransient  uint64 `json:"retries_transient"`
	RetriesPersistent uint64 `json:"retries_persistent"`
}

// Summary aggregates a campaign.
type Summary struct {
	Total         int     `json:"total"`
	DetectedLive  int     `json:"detected_live"`
	DetectedSweep int     `json:"detected_sweep"`
	Transient     int     `json:"transient"`
	Missed        int     `json:"missed"`
	DetectionRate float64 `json:"detection_rate"` // detected / persistent injections

	MeanLatencyAccesses float64 `json:"mean_latency_accesses"`
	MeanLatencyCycles   float64 `json:"mean_latency_cycles"`
	MaxResidentWindow   int     `json:"max_resident_window"`
}

// Report is one campaign's full result. Identical Config seeds produce
// byte-identical reports: every field is deterministic and serialization
// never iterates a map.
type Report struct {
	Seed     uint64 `json:"seed"`
	Scheme   string `json:"scheme"`
	HashMode string `json:"hash_mode"`
	Policy   string `json:"policy"`
	// Speculative campaigns record their pipeline mode and barrier
	// cadence so a report is self-describing; both omit from blocking
	// campaigns to keep historical report bytes stable.
	Speculative  bool `json:"speculative,omitempty"`
	BarrierEvery int  `json:"barrier_every,omitempty"`

	Injections []Injection `json:"injections"`
	Summary    Summary     `json:"summary"`
}

// summarize recomputes the Summary from the injection rows.
func (r *Report) summarize() {
	var s Summary
	var latAcc, latCyc uint64
	for _, inj := range r.Injections {
		s.Total++
		switch inj.Outcome {
		case OutcomeDetectedLive:
			s.DetectedLive++
		case OutcomeDetectedSweep:
			s.DetectedSweep++
		case OutcomeTransient:
			s.Transient++
		case OutcomeMissed:
			s.Missed++
		}
		if inj.Outcome == OutcomeDetectedLive || inj.Outcome == OutcomeDetectedSweep {
			latAcc += uint64(inj.LatencyAccesses)
			latCyc += inj.LatencyCycles
		}
		if inj.ResidentAccesses > s.MaxResidentWindow {
			s.MaxResidentWindow = inj.ResidentAccesses
		}
	}
	detected := s.DetectedLive + s.DetectedSweep
	if persistent := s.Total - s.Transient; persistent > 0 {
		s.DetectionRate = float64(detected) / float64(persistent)
	}
	if detected > 0 {
		s.MeanLatencyAccesses = float64(latAcc) / float64(detected)
		s.MeanLatencyCycles = float64(latCyc) / float64(detected)
	}
	r.Summary = s
}

// WriteCSV writes one header line plus one line per injection.
func (r *Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w,
		"id,scheme,hash_mode,policy,kind,target,chunk,addr,outcome,accesses,latency_accesses,latency_cycles,resident_accesses,observed,healed,retries,retries_transient,retries_persistent"); err != nil {
		return err
	}
	for _, inj := range r.Injections {
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%s,%s,%s,%d,%d,%s,%d,%d,%d,%d,%t,%t,%d,%d,%d\n",
			inj.ID, r.Scheme, r.HashMode, r.Policy, inj.Kind, inj.Target,
			inj.Chunk, inj.Addr, inj.Outcome, inj.Accesses,
			inj.LatencyAccesses, inj.LatencyCycles, inj.ResidentAccesses,
			inj.Observed, inj.Healed,
			inj.Retries, inj.RetriesTransient, inj.RetriesPersistent); err != nil {
			return err
		}
	}
	return nil
}

// MarshalJSON emits the summary with alphabetically sorted keys and fixed
// %.6f float formatting, so reports are byte-stable across Go versions
// (encoding/json's shortest-float rendering is not part of its
// compatibility promise) and diff cleanly between campaigns.
func (s Summary) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"detected_live":%d,"detected_sweep":%d,"detection_rate":%.6f,`+
		`"max_resident_window":%d,"mean_latency_accesses":%.6f,"mean_latency_cycles":%.6f,`+
		`"missed":%d,"total":%d,"transient":%d}`,
		s.DetectedLive, s.DetectedSweep, s.DetectionRate,
		s.MaxResidentWindow, s.MeanLatencyAccesses, s.MeanLatencyCycles,
		s.Missed, s.Total, s.Transient)
	return b.Bytes(), nil
}

// UnmarshalJSON is the inverse of the custom marshaler; it restores the
// round-trip property encoding/json gave the plain struct.
func (s *Summary) UnmarshalJSON(data []byte) error {
	type plain Summary // drop the methods to avoid recursion
	var p plain
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	*s = Summary(p)
	return nil
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
