package chaos

import (
	"bytes"
	"fmt"
	"testing"

	"memverify/internal/core"
)

// treeSchemes are the verification schemes a campaign attacks.
var treeSchemes = []core.Scheme{core.SchemeNaive, core.SchemeCached, core.SchemeMulti, core.SchemeIncr}

// TestCampaignDeterministic pins the CI-gate property that identical seeds
// produce byte-identical reports.
func TestCampaignDeterministic(t *testing.T) {
	cfg := DefaultConfig(core.SchemeCached)
	cfg.Injections = 20
	cfg.IncludeTransient = true
	cfg.Policy = "retry"

	var out [2]bytes.Buffer
	for i := range out {
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if err := rep.WriteCSV(&out[i]); err != nil {
			t.Fatalf("csv %d: %v", i, err)
		}
		if err := rep.WriteJSON(&out[i]); err != nil {
			t.Fatalf("json %d: %v", i, err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Fatalf("identical seeds produced different reports")
	}

	cfg.Seed = 2
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var other bytes.Buffer
	if err := rep.WriteCSV(&other); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(out[0].Bytes(), other.Bytes()) {
		t.Fatalf("different seeds produced identical campaigns")
	}
}

// TestCampaignCI is the seeded regression gate CI runs under the race
// detector: a small campaign per scheme and hash mode must detect every
// persistent injection with zero misses.
func TestCampaignCI(t *testing.T) {
	for _, scheme := range treeSchemes {
		for _, mode := range []string{"full", "memo"} {
			t.Run(fmt.Sprintf("%s-%s", scheme, mode), func(t *testing.T) {
				cfg := DefaultConfig(scheme)
				cfg.HashMode = mode
				cfg.Injections = 15
				rep, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				assertAllDetected(t, rep)
			})
		}
	}
}

// TestCampaignAcceptance is the issue's headline claim: at least 1000
// injections per tree scheme, 100% detection of post-eviction tampering.
// Skipped in -short mode and under the race detector (TestCampaignCI
// covers those configurations with a smaller budget).
func TestCampaignAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("thousand-injection campaign skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("thousand-injection campaign skipped under the race detector")
	}
	for _, scheme := range treeSchemes {
		t.Run(string(scheme), func(t *testing.T) {
			cfg := DefaultConfig(scheme)
			cfg.Injections = 1000
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertAllDetected(t, rep)
			if got := rep.Summary.DetectionRate; got != 1.0 {
				t.Fatalf("detection rate = %v, want 1.0", got)
			}
		})
	}
}

// TestCampaignTransient pins the retry policy's classification: glitches
// (clean memory, corrupted transfer) resolve as transient without flagging
// a violation, while persistent tampering still trips detection with the
// persistent retry counter advancing.
func TestCampaignTransient(t *testing.T) {
	for _, scheme := range treeSchemes {
		t.Run(string(scheme), func(t *testing.T) {
			cfg := DefaultConfig(scheme)
			cfg.Policy = "retry"
			cfg.IncludeTransient = true
			cfg.Injections = 60
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertAllDetected(t, rep)
			if rep.Summary.Transient == 0 {
				t.Fatalf("campaign with IncludeTransient classified no glitch as transient")
			}
			var persistent uint64
			for _, inj := range rep.Injections {
				if inj.Outcome == OutcomeTransient {
					if inj.RetriesTransient == 0 {
						t.Fatalf("injection %d: transient outcome without a transient retry", inj.ID)
					}
					if inj.RetriesPersistent != 0 {
						t.Fatalf("injection %d: transient outcome with persistent retries", inj.ID)
					}
				}
				persistent += inj.RetriesPersistent
			}
			if persistent == 0 {
				t.Fatalf("retry policy never classified a persistent tamper")
			}
		})
	}
}

// TestCampaignPrefetchAndVerifyCache is the security side of the
// prefetch/dedicated-cache feature: with the ancestor prefetcher and a
// dedicated verification cache both enabled, every tree scheme must still
// detect every persistent injection, and the clean-run side must stay
// free of false positives.
func TestCampaignPrefetchAndVerifyCache(t *testing.T) {
	for _, scheme := range treeSchemes {
		t.Run(string(scheme), func(t *testing.T) {
			cfg := DefaultConfig(scheme)
			cfg.Injections = 15
			cfg.Prefetch = true
			cfg.VerifyCacheLines = 32
			cfg.VerifyCacheAssoc = 4
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertAllDetected(t, rep)
			if n, err := CleanViolations(cfg); err != nil {
				t.Fatal(err)
			} else if n != 0 {
				t.Fatalf("clean run flagged %d violations with prefetch+VC", n)
			}
		})
	}
}

// TestCampaignHaltPolicy checks that a campaign runs to completion under
// the halt policy: detection latencies are still measured (the first
// violation is what halts), and nothing is missed.
func TestCampaignHaltPolicy(t *testing.T) {
	cfg := DefaultConfig(core.SchemeCached)
	cfg.Policy = "halt"
	cfg.Injections = 15
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertAllDetected(t, rep)
}

// TestCleanViolations asserts the false-positive side of the gate: the
// campaign's full access pattern with no adversary flags nothing, for
// every scheme and hash mode.
func TestCleanViolations(t *testing.T) {
	for _, scheme := range treeSchemes {
		for _, mode := range []string{"full", "memo"} {
			t.Run(fmt.Sprintf("%s-%s", scheme, mode), func(t *testing.T) {
				cfg := DefaultConfig(scheme)
				cfg.HashMode = mode
				n, err := CleanViolations(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if n != 0 {
					t.Fatalf("clean run flagged %d violations", n)
				}
			})
		}
	}
}

// assertAllDetected fails the test if any persistent injection was missed.
func assertAllDetected(t *testing.T, rep *Report) {
	t.Helper()
	for _, inj := range rep.Injections {
		if inj.Outcome == OutcomeMissed {
			t.Errorf("injection %d (%s/%s, chunk %d, addr %#x) was missed",
				inj.ID, inj.Kind, inj.Target, inj.Chunk, inj.Addr)
		}
		if inj.Healed {
			t.Errorf("injection %d (%s/%s): tampered region healed by program traffic (campaign invariant broken)",
				inj.ID, inj.Kind, inj.Target)
		}
	}
	if rep.Summary.Missed != 0 {
		t.Fatalf("%d/%d injections missed", rep.Summary.Missed, rep.Summary.Total)
	}
}
