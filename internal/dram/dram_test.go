package dram

import (
	"testing"

	"memverify/internal/bus"
)

func TestReadTiming(t *testing.T) {
	b := bus.New(8, 5)
	d := New(80, b)
	critical, done := d.Read(0, 64, bus.Data)
	if critical != 85 {
		t.Errorf("critical word at %d, want 85 (80 latency + 1 beat)", critical)
	}
	if done != 120 {
		t.Errorf("block done at %d, want 120 (80 + 8 beats)", done)
	}
}

func TestWriteIsPosted(t *testing.T) {
	b := bus.New(8, 5)
	d := New(80, b)
	done := d.Write(10, 64, bus.Data)
	if done != 50 {
		t.Errorf("write drained at %d, want 50 (no DRAM latency on posted writes)", done)
	}
}

func TestReadsQueueOnBus(t *testing.T) {
	b := bus.New(8, 5)
	d := New(80, b)
	_, done1 := d.Read(0, 64, bus.Data)
	crit2, _ := d.Read(0, 64, bus.Hash)
	if crit2 != done1+5 {
		t.Errorf("second read critical %d, want %d", crit2, done1+5)
	}
}

func TestCounters(t *testing.T) {
	b := bus.New(8, 5)
	d := New(80, b)
	d.Read(0, 64, bus.Data)
	d.Read(0, 64, bus.Data)
	d.Write(0, 64, bus.Data)
	if d.Reads() != 2 || d.Writes() != 1 || d.Accesses() != 3 {
		t.Errorf("counters: r %d w %d a %d", d.Reads(), d.Writes(), d.Accesses())
	}
	d.ResetCounters()
	if d.Accesses() != 0 {
		t.Error("ResetCounters failed")
	}
}

func TestNewNilBusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with nil bus did not panic")
		}
	}()
	New(80, nil)
}
