// Package dram models the external DRAM's access timing: a fixed
// first-chunk latency (80 CPU cycles in Table 1) followed by a streaming
// transfer over the shared memory bus.
package dram

import (
	"memverify/internal/bus"
	"memverify/internal/telemetry"
)

// DRAM is the timing model for the off-chip memory. Functional contents
// live in mem.Memory; DRAM only answers "when".
type DRAM struct {
	// FirstChunkLatency is the cycles from request to the first data beat
	// being available at the DRAM pins.
	FirstChunkLatency uint64
	// Bus carries every transfer; nil is not allowed.
	Bus *bus.Bus
	// Tel, when non-nil, receives one event per DRAM transaction.
	Tel *telemetry.Trace

	reads, writes uint64
}

// New returns a DRAM model with the given access latency in CPU cycles.
func New(firstChunkLatency uint64, b *bus.Bus) *DRAM {
	if b == nil {
		panic("dram: nil bus")
	}
	return &DRAM{FirstChunkLatency: firstChunkLatency, Bus: b}
}

// Read schedules a block read of n bytes requested at cycle now.
// It returns the cycle at which the critical first word is available to
// the requester and the cycle the full block has arrived.
func (d *DRAM) Read(now uint64, n int, class bus.Class) (critical, done uint64) {
	d.reads++
	critical, done = d.Bus.Reserve(now+d.FirstChunkLatency, n, class)
	d.Tel.Emit(telemetry.TrackDRAM, telemetry.KindDRAMRead, now, done, uint64(n), 0)
	return critical, done
}

// Write schedules a block write of n bytes issued at cycle now and returns
// the cycle the write has fully drained onto the bus. Writes are posted:
// the requester does not wait for the DRAM array update.
func (d *DRAM) Write(now uint64, n int, class bus.Class) (done uint64) {
	d.writes++
	_, done = d.Bus.Reserve(now, n, class)
	d.Tel.Emit(telemetry.TrackDRAM, telemetry.KindDRAMWrite, now, done, uint64(n), 0)
	return done
}

// Reads returns the number of read transactions issued.
func (d *DRAM) Reads() uint64 { return d.reads }

// Writes returns the number of write transactions issued.
func (d *DRAM) Writes() uint64 { return d.writes }

// Accesses returns reads + writes.
func (d *DRAM) Accesses() uint64 { return d.reads + d.writes }

// ResetCounters zeroes the transaction counters for post-warm-up
// measurement.
func (d *DRAM) ResetCounters() { d.reads, d.writes = 0, 0 }
