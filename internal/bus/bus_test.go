package bus

import "testing"

func TestBeats(t *testing.T) {
	b := New(8, 5)
	cases := []struct {
		bytes int
		beats uint64
	}{{1, 1}, {8, 1}, {9, 2}, {64, 8}, {65, 9}, {128, 16}}
	for _, c := range cases {
		if got := b.Beats(c.bytes); got != c.beats {
			t.Errorf("Beats(%d) = %d, want %d", c.bytes, got, c.beats)
		}
	}
}

func TestReserveIdleBus(t *testing.T) {
	b := New(8, 5)
	first, done := b.Reserve(100, 64, Data)
	if first != 105 {
		t.Errorf("first beat at %d, want 105", first)
	}
	if done != 140 {
		t.Errorf("done at %d, want 140 (8 beats x 5 cycles)", done)
	}
}

func TestReserveQueues(t *testing.T) {
	b := New(8, 5)
	_, done1 := b.Reserve(0, 64, Data)
	first2, done2 := b.Reserve(0, 64, Hash)
	if first2 != done1+5 {
		t.Errorf("second transfer first beat %d, want %d", first2, done1+5)
	}
	if done2 != done1+40 {
		t.Errorf("second transfer done %d, want %d", done2, done1+40)
	}
	if b.FreeAt() != done2 {
		t.Errorf("FreeAt %d, want %d", b.FreeAt(), done2)
	}
}

func TestReserveAfterIdleGap(t *testing.T) {
	b := New(8, 5)
	b.Reserve(0, 8, Data)
	first, _ := b.Reserve(1000, 8, Data)
	if first != 1005 {
		t.Errorf("transfer after idle gap starts at %d, want 1005", first)
	}
}

func TestClassAccounting(t *testing.T) {
	b := New(8, 5)
	b.Reserve(0, 64, Data)
	b.Reserve(0, 128, Hash)
	b.Reserve(0, 64, Data)
	if b.Bytes(Data) != 128 {
		t.Errorf("data bytes %d, want 128", b.Bytes(Data))
	}
	if b.Bytes(Hash) != 128 {
		t.Errorf("hash bytes %d, want 128", b.Bytes(Hash))
	}
	if b.TotalBytes() != 256 {
		t.Errorf("total bytes %d, want 256", b.TotalBytes())
	}
}

func TestUtilization(t *testing.T) {
	b := New(8, 5)
	b.Reserve(0, 64, Data) // 40 busy cycles
	if got := b.Utilization(80); got != 0.5 {
		t.Errorf("Utilization = %f, want 0.5", got)
	}
	if got := b.Utilization(0); got != 0 {
		t.Errorf("Utilization(0) = %f, want 0", got)
	}
}

func TestResetCounters(t *testing.T) {
	b := New(8, 5)
	b.Reserve(0, 64, Data)
	free := b.FreeAt()
	b.ResetCounters()
	if b.TotalBytes() != 0 || b.BusyCycles() != 0 {
		t.Error("counters not reset")
	}
	if b.FreeAt() != free {
		t.Error("ResetCounters must not rewind the schedule")
	}
}

func TestWindowAccountingSplitsAcrossBoundaries(t *testing.T) {
	b := New(8, 5)
	b.SetWindow(100)
	// 64 bytes = 8 beats x 5 cycles: busy [90, 130) straddles the first
	// window boundary — 10 cycles land in window 0, 30 in window 1.
	b.Reserve(90, 64, Data)
	want := []uint64{10, 30}
	got := b.Windows()
	if len(got) != len(want) {
		t.Fatalf("Windows() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Windows() = %v, want %v", got, want)
		}
	}
}

func TestWindowAccountingSkipsIdleWindows(t *testing.T) {
	b := New(8, 5)
	b.SetWindow(50)
	b.Reserve(0, 8, Data)   // busy [0, 5) → window 0
	b.Reserve(200, 8, Data) // busy [200, 205) → window 4; 1-3 stay idle
	got := b.Windows()
	want := []uint64{5, 0, 0, 0, 5}
	if len(got) != len(want) {
		t.Fatalf("Windows() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Windows() = %v, want %v", got, want)
		}
	}
	// Window busy cycles must sum to the bus's total busy cycles.
	var sum uint64
	for _, v := range got {
		sum += v
	}
	if sum != b.BusyCycles() {
		t.Errorf("window sum %d != BusyCycles %d", sum, b.BusyCycles())
	}
}

func TestWindowAccountingSpanningManyWindows(t *testing.T) {
	b := New(8, 5)
	b.SetWindow(10)
	b.Reserve(5, 64, Hash) // busy [5, 45): 5 + 10 + 10 + 10 + 5
	want := []uint64{5, 10, 10, 10, 5}
	got := b.Windows()
	if len(got) != len(want) {
		t.Fatalf("Windows() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Windows() = %v, want %v", got, want)
		}
	}
}

func TestWindowDisabledByDefaultAndOnReset(t *testing.T) {
	b := New(8, 5)
	b.Reserve(0, 64, Data)
	if b.WindowCycles() != 0 || len(b.Windows()) != 0 {
		t.Error("window accounting must be off by default")
	}
	b.SetWindow(100)
	b.Reserve(0, 64, Data)
	if len(b.Windows()) == 0 {
		t.Fatal("no windows accumulated after SetWindow")
	}
	b.ResetCounters()
	if len(b.Windows()) != 0 {
		t.Error("ResetCounters must drop accumulated windows")
	}
	if b.WindowCycles() != 100 {
		t.Error("ResetCounters must not change the window width")
	}
	b.SetWindow(0)
	if b.WindowCycles() != 0 {
		t.Error("SetWindow(0) must disable accounting")
	}
}

func TestWindowsReturnsCopy(t *testing.T) {
	b := New(8, 5)
	b.SetWindow(100)
	b.Reserve(0, 8, Data)
	w := b.Windows()
	w[0] = 999
	if b.Windows()[0] == 999 {
		t.Error("Windows() must return a copy")
	}
}

func TestClassString(t *testing.T) {
	if Data.String() != "data" || Hash.String() != "hash" {
		t.Error("class names wrong")
	}
	if Class(99).String() != "unknown" {
		t.Error("unknown class name wrong")
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0, 0) did not panic")
		}
	}()
	New(0, 0)
}
