// Package bus models the shared split-transaction memory bus of the
// simulated machine: 8 bytes wide at 200 MHz on a 1 GHz core, i.e. one
// beat per 5 CPU cycles and 1.6 GB/s of peak bandwidth. The L2 cache and
// the hash unit share it (§6.3: "All structures that access the main
// memory including a L2 cache and the hash unit share the same bus"), so
// hash traffic steals bandwidth from the application exactly as in the
// paper's bandwidth-pollution analysis (§6.4.2).
package bus

import "memverify/internal/telemetry"

// Class labels bus traffic for the bandwidth-accounting figures.
type Class int

const (
	// Data is program data moved for the L2 (fills and write-backs).
	Data Class = iota
	// Hash is integrity traffic: tree-node chunks, MAC reads and updates.
	Hash
	numClasses
)

// String returns "data" or "hash".
func (c Class) String() string {
	switch c {
	case Data:
		return "data"
	case Hash:
		return "hash"
	}
	return "unknown"
}

// Bus is a single shared data bus with back-to-back beat scheduling. The
// address bus is modeled implicitly (requests are pipelined and never the
// bottleneck at these rates, matching sim-outorder's bus model).
type Bus struct {
	// BeatBytes is the width of one bus beat in bytes (8 in Table 1).
	BeatBytes int
	// CyclesPerBeat is CPU cycles per beat (5 for 200 MHz on a 1 GHz core).
	CyclesPerBeat uint64

	// Tel, when non-nil, receives one bus-grant event per Reserve.
	Tel *telemetry.Trace

	freeAt uint64
	bytes  [numClasses]uint64
	busy   uint64 // total cycles the bus spent transferring

	// Occupancy-window accounting, active only when windowCycles > 0:
	// windows[i] holds the busy cycles in [i*w, (i+1)*w).
	windowCycles uint64
	windows      []uint64
}

// New returns a bus with the given beat geometry.
func New(beatBytes int, cyclesPerBeat uint64) *Bus {
	if beatBytes <= 0 || cyclesPerBeat == 0 {
		panic("bus: beat geometry must be positive")
	}
	return &Bus{BeatBytes: beatBytes, CyclesPerBeat: cyclesPerBeat}
}

// Beats returns the number of beats needed to move n bytes.
func (b *Bus) Beats(n int) uint64 {
	return uint64((n + b.BeatBytes - 1) / b.BeatBytes)
}

// Reserve schedules a transfer of n bytes that may start no earlier than
// earliest. It returns the cycle the first beat completes (critical word)
// and the cycle the last beat completes. The bus is occupied for the whole
// transfer; concurrent requesters queue.
func (b *Bus) Reserve(earliest uint64, n int, class Class) (first, done uint64) {
	start := earliest
	if b.freeAt > start {
		start = b.freeAt
	}
	beats := b.Beats(n)
	first = start + b.CyclesPerBeat
	done = start + beats*b.CyclesPerBeat
	b.freeAt = done
	b.bytes[class] += uint64(n)
	b.busy += beats * b.CyclesPerBeat
	if b.windowCycles > 0 {
		b.accountWindows(start, done)
	}
	b.Tel.Emit(telemetry.TrackBus, telemetry.KindBusGrant, start, done, uint64(n), uint64(class))
	return first, done
}

// SetWindow enables per-window occupancy accounting with the given window
// width in cycles (0 disables it and drops accumulated windows). Each
// window records how many of its cycles the bus spent transferring.
func (b *Bus) SetWindow(cycles uint64) {
	b.windowCycles = cycles
	b.windows = nil
}

// Windows returns the per-window busy-cycle series accumulated so far (a
// copy). Trailing all-idle windows that no transfer has reached yet are
// absent.
func (b *Bus) Windows() []uint64 {
	out := make([]uint64, len(b.windows))
	copy(out, b.windows)
	return out
}

// WindowCycles returns the configured window width (0 when disabled).
func (b *Bus) WindowCycles() uint64 { return b.windowCycles }

// accountWindows spreads the busy interval [start, done) across the
// fixed-width occupancy windows it touches.
func (b *Bus) accountWindows(start, done uint64) {
	w := b.windowCycles
	for start < done {
		idx := start / w
		for uint64(len(b.windows)) <= idx {
			b.windows = append(b.windows, 0)
		}
		windowEnd := (idx + 1) * w
		chunk := done
		if windowEnd < chunk {
			chunk = windowEnd
		}
		b.windows[idx] += chunk - start
		start = chunk
	}
}

// FreeAt returns the cycle at which the bus next becomes idle.
func (b *Bus) FreeAt() uint64 { return b.freeAt }

// Bytes returns the bytes moved for a class so far.
func (b *Bus) Bytes(class Class) uint64 { return b.bytes[class] }

// TotalBytes returns all bytes moved on the bus.
func (b *Bus) TotalBytes() uint64 {
	var t uint64
	for _, v := range b.bytes {
		t += v
	}
	return t
}

// BusyCycles returns the cycles during which the bus was transferring.
func (b *Bus) BusyCycles() uint64 { return b.busy }

// Utilization returns busy cycles divided by elapsed cycles.
func (b *Bus) Utilization(elapsed uint64) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(b.busy) / float64(elapsed)
}

// CountOnly records traffic bytes without reserving bus time (diagnostic).
func (b *Bus) CountOnly(n int, class Class) {
	b.bytes[class] += uint64(n)
}

// ResetCounters zeroes the traffic counters (but not the schedule state),
// so measurements can start after a warm-up period.
func (b *Bus) ResetCounters() {
	b.bytes = [numClasses]uint64{}
	b.busy = 0
	b.windows = nil
}
