// Package profiling wires the conventional -cpuprofile / -memprofile
// flags into the command-line tools, so the simulator's hot paths can be
// inspected with `go tool pprof` without ad-hoc instrumentation.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the registered profiling flag values.
type Flags struct {
	cpu *string
	mem *string
}

// AddFlags registers -cpuprofile and -memprofile on the default flag set.
// Call before flag.Parse.
func AddFlags() *Flags {
	return &Flags{
		cpu: flag.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: flag.String("memprofile", "", "write an allocation profile to this file on exit"),
	}
}

// Start begins CPU profiling when requested and returns a stop function
// that finalizes both profiles. Defer it in main; error exit paths that
// bypass the defer simply lose the profile, which is fine — a failed run
// is not worth profiling.
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if *f.cpu != "" {
		cpuFile, err = os.Create(*f.cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			}
		}
		if *f.mem != "" {
			mf, err := os.Create(*f.mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC() // flush recently freed objects so live-heap numbers are accurate
			if err := pprof.Lookup("allocs").WriteTo(mf, 0); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			if err := mf.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
