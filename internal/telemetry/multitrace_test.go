package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestWriteChromeTracesMergesProcesses pins the per-shard export: each
// trace renders as its own process (disjoint pid range, BeginProcess names
// preserved in argument order) and the merged document still passes the
// nesting/monotonicity validator.
func TestWriteChromeTracesMergesProcesses(t *testing.T) {
	mk := func(name string, base uint64) *Trace {
		tr := NewTrace(64)
		tr.BeginProcess(name)
		for i := uint64(0); i < 5; i++ {
			tr.Emit(TrackL2, KindL2Read, base+10*i, base+10*i+4, i, 0)
			tr.Emit(TrackBus, KindBusGrant, base+10*i, base+10*i+8, 64, 1)
		}
		return tr
	}
	traces := []*Trace{mk("shard0", 0), mk("shard1", 100), mk("shard2", 50)}

	var buf bytes.Buffer
	if err := WriteChromeTraces(&buf, traces...); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for pid, name := range []string{"shard0", "shard1", "shard2"} {
		want := fmt.Sprintf(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":"%s"}}`, pid, name)
		if !strings.Contains(out, want) {
			t.Errorf("merged trace missing process metadata for %s (pid %d)", name, pid)
		}
	}
	spans, err := ValidateChromeTrace(strings.NewReader(out))
	if err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	if spans != 30 {
		t.Errorf("merged trace has %d spans, want 30", spans)
	}
}

// TestWriteChromeTracesSingleMatchesMethod keeps the single-trace method
// byte-identical to the variadic path, and an empty call still emits a
// parseable (metadata-only) document like the empty-trace case always has.
func TestWriteChromeTracesSingleMatchesMethod(t *testing.T) {
	tr := NewTrace(16)
	tr.BeginProcess("m")
	tr.Emit(TrackDRAM, KindDRAMRead, 0, 7, 64, 0)

	var a, b bytes.Buffer
	if err := tr.WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTraces(&b, tr); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("method and variadic exports differ")
	}

	var empty bytes.Buffer
	if err := WriteChromeTraces(&empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), `"process_name"`) {
		t.Error("empty export lost its metadata skeleton")
	}
}
