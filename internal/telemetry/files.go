package telemetry

import (
	"fmt"
	"os"
)

// WriteTraceFile exports the trace as Chrome trace-event JSON at path —
// the -trace flag of the commands. An empty trace still produces a file
// (with metadata only) so downstream tooling never has to special-case.
func WriteTraceFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := t.WriteChromeTrace(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("writing trace %s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("writing trace %s: %w", path, cerr)
	}
	return nil
}

// WriteTraceFiles exports several traces (one per shard) into a single
// Chrome trace file at path, each trace as its own process.
func WriteTraceFiles(path string, traces ...*Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := WriteChromeTraces(f, traces...)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("writing trace %s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("writing trace %s: %w", path, cerr)
	}
	return nil
}

// WriteMetricsFile writes the registry snapshot as deterministic JSON at
// path — the -metrics flag of the commands.
func WriteMetricsFile(path string, reg *Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := reg.WriteJSON(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("writing metrics %s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("writing metrics %s: %w", path, cerr)
	}
	return nil
}
