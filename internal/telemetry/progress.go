package telemetry

import (
	"fmt"
	"io"
	"time"
)

// Meter prints live sweep progress — points completed, per-point
// throughput and an ETA — to a terminal-ish writer, redrawing one line
// with carriage returns. A nil *Meter is the disabled state: every method
// is a nil-receiver no-op and never reads the clock, so sweeps without
// -progress stay deterministic and allocation-free.
type Meter struct {
	w         io.Writer
	label     string
	total     int
	done      int
	start     time.Time
	lastDraw  time.Time
	drawEvery time.Duration
}

// NewMeter returns a meter writing to w (normally os.Stderr) under the
// given label.
func NewMeter(w io.Writer, label string) *Meter {
	return &Meter{w: w, label: label, drawEvery: 200 * time.Millisecond}
}

// StartBatch announces n more points of upcoming work. Figure sweeps call
// it once per figure; totals accumulate so the ETA covers everything
// announced so far.
func (m *Meter) StartBatch(n int) {
	if m == nil {
		return
	}
	if m.start.IsZero() {
		m.start = time.Now()
	}
	m.total += n
	m.draw(false)
}

// Tick records one completed point and redraws (throttled).
func (m *Meter) Tick() {
	if m == nil {
		return
	}
	m.done++
	m.draw(false)
}

// Finish forces a final draw and terminates the progress line.
func (m *Meter) Finish() {
	if m == nil {
		return
	}
	m.draw(true)
	fmt.Fprintln(m.w)
}

func (m *Meter) draw(force bool) {
	now := time.Now()
	if !force && m.done != m.total && now.Sub(m.lastDraw) < m.drawEvery {
		return
	}
	m.lastDraw = now
	elapsed := now.Sub(m.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(m.done) / elapsed
	}
	eta := "--"
	if rate > 0 && m.done < m.total {
		eta = fmtDuration(time.Duration(float64(m.total-m.done)/rate) * time.Second)
	} else if m.done >= m.total {
		eta = "done"
	}
	fmt.Fprintf(m.w, "\r%s: %d/%d points  %.2f pts/s  eta %s   ",
		m.label, m.done, m.total, rate, eta)
}

func fmtDuration(d time.Duration) string {
	if d >= time.Hour {
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	}
	if d >= time.Minute {
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	}
	return fmt.Sprintf("%ds", int(d.Seconds()))
}
