package telemetry

import "testing"

func TestTailCutsByCycleWindow(t *testing.T) {
	tr := NewTrace(16)
	tr.BeginProcess("m0")
	tr.Emit(TrackL2, KindL2Read, 0, 100, 1, 0)
	tr.Emit(TrackL2, KindL2Read, 500, 600, 2, 0)
	tr.Emit(TrackL2, KindL2Read, 900, 1000, 3, 0)

	tail := tr.Tail(400)
	if got := tail.Len(); got != 2 {
		t.Fatalf("Tail(400) kept %d events, want 2 (ends 600 and 1000)", got)
	}
	evs, _ := tail.retained()
	if evs[0].A != 2 || evs[1].A != 3 {
		t.Fatalf("Tail kept wrong events: %+v", evs)
	}
	if len(tail.procs) != 1 || tail.procs[0].Name != "m0" {
		t.Fatalf("Tail lost the process mark: %+v", tail.procs)
	}

	if got := tr.Tail(0).Len(); got != 3 {
		t.Fatalf("Tail(0) kept %d events, want all 3", got)
	}
	if (*Trace)(nil).Tail(10) != nil {
		t.Fatal("nil trace Tail must stay nil")
	}
}

func TestTailAfterRingWrap(t *testing.T) {
	tr := NewTrace(4)
	tr.BeginProcess("m0")
	for i := uint64(0); i < 10; i++ {
		tr.Emit(TrackL2, KindL2Read, i*100, i*100+50, i, 0)
	}
	tail := tr.Tail(0)
	if got := tail.Len(); got != 4 {
		t.Fatalf("wrapped Tail kept %d events, want 4", got)
	}
	evs, _ := tail.retained()
	for i, ev := range evs {
		if want := uint64(6 + i); ev.A != want {
			t.Fatalf("event %d is A=%d, want %d (oldest-first after wrap)", i, ev.A, want)
		}
	}
}

func TestMergeInto(t *testing.T) {
	src := NewRegistry()
	src.Add("a", 3)
	src.SetGauge("g", 1.5)
	src.AppendSeries("s", 1, 2)

	dst := NewRegistry()
	dst.Add("a", 1)
	dst.Add("b", 7)
	src.MergeInto(dst)

	if dst.Counter("a") != 4 || dst.Counter("b") != 7 {
		t.Fatalf("counters after merge: a=%d b=%d", dst.Counter("a"), dst.Counter("b"))
	}
	if dst.gauges["g"] != 1.5 {
		t.Fatalf("gauge after merge: %v", dst.gauges["g"])
	}
	if len(dst.series["s"]) != 2 {
		t.Fatalf("series after merge: %v", dst.series["s"])
	}
	// The source must be untouched.
	if src.Counter("a") != 3 || src.Counter("b") != 0 {
		t.Fatalf("merge mutated the source: a=%d b=%d", src.Counter("a"), src.Counter("b"))
	}
}
