package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// chromeEvent mirrors the subset of the Chrome trace-event schema the
// validator checks.
type chromeEvent struct {
	Ph   string          `json:"ph"`
	Pid  int64           `json:"pid"`
	Tid  int64           `json:"tid"`
	Ts   *float64        `json:"ts"`
	Dur  *float64        `json:"dur"`
	Name string          `json:"name"`
	Args json.RawMessage `json:"args"`
}

// ValidateChromeTrace checks that r holds well-formed Chrome trace-event
// JSON as this package emits it: the document parses, every span ("X")
// event carries ts and dur, per (pid, tid) timestamps are monotonically
// non-decreasing, and spans on one thread are well-nested (containment is
// fine, partial overlap is not — Perfetto renders partial overlaps as
// garbage). It returns the number of span events on success.
func ValidateChromeTrace(r io.Reader) (spans int, err error) {
	spans, _, err = ValidateChromeTraceLanes(r)
	return spans, err
}

// ValidateChromeTraceLanes is ValidateChromeTrace plus lane accounting: it
// resolves each thread's name from its "thread_name" metadata event and
// returns span counts keyed by lane name ("L2", "integrity", "prefetch",
// ...; a multi-lane track's "bus/3" counts under "bus"). Spans on threads
// with no thread_name metadata validate but count toward no lane. The
// prefetch lane carries one engine's strictly sequential launches, so its
// spans must additionally be disjoint — the nesting the other lanes allow
// would mean two prefetches in flight on one row, which the exporter's
// clamp is supposed to prevent.
func ValidateChromeTraceLanes(r io.Reader) (spans int, lanes map[string]int, err error) {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return 0, nil, fmt.Errorf("trace does not parse: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return 0, nil, fmt.Errorf("trace has no events")
	}

	type key struct{ pid, tid int64 }
	type span struct{ begin, end float64 }
	threads := map[key][]span{}
	names := map[key]string{}
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "thread_name" {
				continue
			}
			var args struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(ev.Args, &args); err != nil || args.Name == "" {
				return 0, nil, fmt.Errorf("event %d: thread_name metadata without a name", i)
			}
			names[key{ev.Pid, ev.Tid}] = args.Name
		case "X":
			if ev.Ts == nil || ev.Dur == nil {
				return 0, nil, fmt.Errorf("event %d (%q): X event missing ts or dur", i, ev.Name)
			}
			if *ev.Dur < 0 {
				return 0, nil, fmt.Errorf("event %d (%q): negative dur", i, ev.Name)
			}
			k := key{ev.Pid, ev.Tid}
			threads[k] = append(threads[k], span{*ev.Ts, *ev.Ts + *ev.Dur})
			spans++
		default:
			return 0, nil, fmt.Errorf("event %d (%q): unexpected phase %q", i, ev.Name, ev.Ph)
		}
	}
	if spans == 0 {
		return 0, nil, fmt.Errorf("trace has no span events")
	}

	keys := make([]key, 0, len(threads))
	for k := range threads {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].tid < keys[j].tid
	})
	lanes = map[string]int{}
	for _, k := range keys {
		name := names[k]
		lane := name
		if i := strings.IndexByte(lane, '/'); i >= 0 {
			lane = lane[:i]
		}
		sps := threads[k]
		if lane != "" {
			lanes[lane] += len(sps)
		}
		// File order per thread must already be monotonic in ts.
		for i := 1; i < len(sps); i++ {
			if sps[i].begin < sps[i-1].begin {
				return 0, nil, fmt.Errorf("pid %d tid %d (%s): timestamps not monotonic (%v after %v)",
					k.pid, k.tid, name, sps[i].begin, sps[i-1].begin)
			}
		}
		if lane == "prefetch" {
			for i := 1; i < len(sps); i++ {
				if sps[i].begin < sps[i-1].end {
					return 0, nil, fmt.Errorf("pid %d tid %d (%s): prefetch spans overlap ([%v,%v) after [%v,%v))",
						k.pid, k.tid, name, sps[i].begin, sps[i].end, sps[i-1].begin, sps[i-1].end)
				}
			}
			continue
		}
		// Well-nesting: walk a stack of open spans; each new span must
		// either start after the top ends, or end within it.
		var stack []span
		for _, s := range sps {
			for len(stack) > 0 && stack[len(stack)-1].end <= s.begin {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && s.end > stack[len(stack)-1].end {
				return 0, nil, fmt.Errorf("pid %d tid %d (%s): span [%v,%v) partially overlaps [%v,%v)",
					k.pid, k.tid, name, s.begin, s.end,
					stack[len(stack)-1].begin, stack[len(stack)-1].end)
			}
			stack = append(stack, s)
		}
	}
	return spans, lanes, nil
}

// ValidateMetrics checks a metrics snapshot against the
// memverify-metrics-v1 schema: section types are right, histogram
// bounds/buckets lengths are consistent (len(buckets) == len(bounds)+1),
// and each histogram's count equals the sum of its buckets.
func ValidateMetrics(r io.Reader) error {
	var doc struct {
		Schema   string                    `json:"schema"`
		Counters map[string]uint64         `json:"counters"`
		Gauges   map[string]float64        `json:"gauges"`
		Hists    map[string]map[string]any `json:"histograms"`
		Series   map[string][]uint64       `json:"series"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("metrics do not parse: %w", err)
	}
	if doc.Schema != MetricsSchema {
		return fmt.Errorf("schema is %q, want %q", doc.Schema, MetricsSchema)
	}
	for _, name := range sortedKeys(doc.Hists) {
		h := doc.Hists[name]
		bounds, ok := h["bounds"].([]any)
		if !ok {
			return fmt.Errorf("histogram %q: missing bounds", name)
		}
		buckets, ok := h["buckets"].([]any)
		if !ok {
			return fmt.Errorf("histogram %q: missing buckets", name)
		}
		if len(buckets) != len(bounds)+1 {
			return fmt.Errorf("histogram %q: %d buckets for %d bounds (want bounds+1)",
				name, len(buckets), len(bounds))
		}
		count, ok := h["count"].(float64)
		if !ok {
			return fmt.Errorf("histogram %q: missing count", name)
		}
		sum := 0.0
		for _, b := range buckets {
			n, ok := b.(float64)
			if !ok || n < 0 {
				return fmt.Errorf("histogram %q: non-numeric bucket", name)
			}
			sum += n
		}
		if sum != count {
			return fmt.Errorf("histogram %q: bucket sum %v != count %v", name, sum, count)
		}
	}
	return nil
}
