// Package telemetry is the simulator's observability layer: a bounded,
// cycle-accurate event trace exportable as Chrome trace-event JSON (loads
// in Perfetto / chrome://tracing), a metrics registry that snapshots
// per-component counters and latency histograms to deterministic JSON, and
// a live progress meter for long figure sweeps.
//
// The overhead contract is the load-bearing design constraint: every
// instrumented component holds a *Trace (or *stats.Histogram probe) that
// is nil by default, and every emission entry point is a nil-receiver
// no-op, so a simulation with telemetry disabled allocates nothing and
// runs within 2% of an uninstrumented build. The alloc half of the
// contract is pinned by TestDisabledEmissionZeroAllocs; the throughput
// half is tracked by scripts/bench_telemetry.sh → BENCH_telemetry.json.
//
// A Trace is deliberately single-goroutine (like the machines it
// observes): enabling tracing on a figure sweep forces the sweep serial,
// which also keeps trace output byte-identical run to run.
package telemetry

import "memverify/internal/stats"

// Track identifies the component that emitted an event — one row group
// per track in the exported trace.
type Track uint8

// The instrumented components, in display order.
const (
	TrackL2        Track = iota // L2 accesses from the memory hierarchy
	TrackIntegrity              // tree-ancestor walks and write-backs
	TrackHash                   // hash-unit jobs
	TrackBus                    // bus grants
	TrackDRAM                   // DRAM transactions
	TrackPrefetch               // tree-ancestor prefetches
	TrackSpec                   // speculative background checks
	numTracks
)

// trackNames are the thread names the Chrome exporter writes.
var trackNames = [numTracks]string{"L2", "integrity", "hash-unit", "bus", "dram", "prefetch", "speculative"}

// String returns the track's display name.
func (t Track) String() string {
	if int(t) < len(trackNames) {
		return trackNames[t]
	}
	return "unknown"
}

// Kind identifies what happened during an event's [Begin, End) span.
type Kind uint8

// Event kinds. The A/B argument meaning is per kind, documented here and
// rendered into Chrome "args" by the exporter.
const (
	// KindL2Read / KindL2Write: an L2 data access. A = address, B = 1 on
	// a miss (the span then covers the whole fill) and 0 on a hit.
	KindL2Read Kind = iota
	KindL2Write
	// KindTreeWalk: one ReadAndCheckChunk — record fetch, image compose,
	// background verification. A = chunk index, B = extra integrity block
	// reads the walk issued.
	KindTreeWalk
	// KindWriteBack: a dirty protected line draining through the engine.
	// A = chunk index, B = 0 (hash scheme) or 1 (incremental MAC update).
	KindWriteBack
	// KindHashJob: one chunk through the hash pipeline. A = bytes hashed.
	KindHashJob
	// KindBusGrant: one reserved transfer. A = bytes, B = class (0 data,
	// 1 hash).
	KindBusGrant
	// KindDRAMRead / KindDRAMWrite: one DRAM transaction. A = bytes.
	KindDRAMRead
	KindDRAMWrite
	// KindPrefetch: one issued tree-ancestor prefetch, spanning issue to
	// modeled transfer completion. A = predicted chunk, B = the ancestor
	// chunk whose record block the prefetch pulled in.
	KindPrefetch
	// KindSpecCheck: one speculative background verification, spanning
	// the data's speculative delivery to the check's completion. A = the
	// checked chunk, B = outstanding checks at delivery time.
	KindSpecCheck
	numKinds
)

var kindNames = [numKinds]string{
	"l2-read", "l2-write", "tree-walk", "write-back",
	"hash-job", "bus-grant", "dram-read", "dram-write",
	"prefetch", "spec-check",
}

// String returns the kind's display name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one cycle-timestamped span. Events are fixed-size values so the
// ring buffer never allocates after construction.
type Event struct {
	Track Track
	Kind  Kind
	Begin uint64 // cycle the operation started
	End   uint64 // cycle it completed (>= Begin)
	A, B  uint64 // per-kind arguments, see the Kind constants
}

// procMark records that every event emitted at sequence >= Seq belongs to
// the named process (one process per simulated machine).
type procMark struct {
	Seq  uint64
	Name string
}

// DefaultEventCap is the default ring capacity: at ~48 bytes per event it
// bounds a trace at roughly 50 MB however long the run is; the newest
// events win.
const DefaultEventCap = 1 << 20

// Trace is a bounded ring-buffer event sink. A nil *Trace is the disabled
// state: Emit and BeginProcess on nil are no-ops, which is what makes the
// nil-sink fast path free. A non-nil Trace must only be used from one
// goroutine at a time.
type Trace struct {
	ring  []Event
	seq   uint64 // total events ever emitted
	procs []procMark
}

// NewTrace returns a trace retaining at most cap events (the most recent
// ones); cap <= 0 selects DefaultEventCap.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &Trace{ring: make([]Event, 0, capacity)}
}

// Emit records one event. Safe (and free) on a nil trace.
func (t *Trace) Emit(track Track, kind Kind, begin, end, a, b uint64) {
	if t == nil {
		return
	}
	ev := Event{Track: track, Kind: kind, Begin: begin, End: end, A: a, B: b}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.seq%uint64(cap(t.ring))] = ev
	}
	t.seq++
}

// BeginProcess marks the start of a new simulated machine: every event
// emitted from here until the next BeginProcess belongs to it. Traces with
// no process marks export everything under one "machine" process.
func (t *Trace) BeginProcess(name string) {
	if t == nil {
		return
	}
	t.procs = append(t.procs, procMark{Seq: t.seq, Name: name})
}

// Len returns the number of retained events; Total the number ever
// emitted; Dropped how many the ring overwrote.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Total returns the number of events ever emitted.
func (t *Trace) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.seq
}

// Dropped returns how many events the bounded ring discarded.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.seq - uint64(len(t.ring))
}

// Tail returns a new trace holding the retained events whose spans end
// within the last `cycles` simulated cycles (relative to the newest
// retained event's End); cycles == 0 keeps every retained event. Process
// marks are carried over so each event stays attributed to the machine
// that emitted it. Tail is the /trace?cycles=N capture primitive: it
// copies, so the returned trace is safe to export while the original
// keeps recording — provided Tail itself runs on the goroutine that owns
// the original (the shard worker, for a live store). A nil receiver
// returns nil.
func (t *Trace) Tail(cycles uint64) *Trace {
	if t == nil {
		return nil
	}
	evs, firstSeq := t.retained()
	var maxEnd uint64
	for _, ev := range evs {
		if ev.End > maxEnd {
			maxEnd = ev.End
		}
	}
	cut := uint64(0)
	if cycles > 0 && maxEnd > cycles {
		cut = maxEnd - cycles
	}
	out := NewTrace(len(evs) + 1)
	// Walk the process marks alongside the events: proc is the name in
	// effect at the current sequence number, emitted into the copy the
	// first time an event under it survives the cut.
	pi := 0
	proc, procPending := "", false
	for pi < len(t.procs) && t.procs[pi].Seq <= firstSeq {
		proc, procPending = t.procs[pi].Name, true
		pi++
	}
	for i, ev := range evs {
		seq := firstSeq + uint64(i)
		for pi < len(t.procs) && t.procs[pi].Seq <= seq {
			proc, procPending = t.procs[pi].Name, true
			pi++
		}
		if ev.End < cut {
			continue
		}
		if procPending && proc != "" {
			out.BeginProcess(proc)
			procPending = false
		}
		out.Emit(ev.Track, ev.Kind, ev.Begin, ev.End, ev.A, ev.B)
	}
	return out
}

// retained returns the kept events oldest-first along with the sequence
// number of the first one.
func (t *Trace) retained() (evs []Event, firstSeq uint64) {
	if t == nil || len(t.ring) == 0 {
		return nil, 0
	}
	firstSeq = t.seq - uint64(len(t.ring))
	if len(t.ring) < cap(t.ring) {
		return t.ring, firstSeq
	}
	// Ring is full: oldest entry sits at seq % cap.
	out := make([]Event, 0, len(t.ring))
	head := int(t.seq % uint64(cap(t.ring)))
	out = append(out, t.ring[head:]...)
	out = append(out, t.ring[:head]...)
	return out, firstSeq
}

// Probes are the latency/occupancy histograms the instrumented components
// feed when telemetry is enabled. Individual histogram pointers are handed
// to the components; nil pointers (the default everywhere) disable the
// observation site.
type Probes struct {
	// VerifyOverhead distributes, per verified demand read, the cycles
	// between the data being ready for speculative use and its background
	// check completing — the per-access verification overhead of §5.8.
	VerifyOverhead *stats.Histogram
	// ReadBufOcc / WriteBufOcc distribute the number of busy hash-buffer
	// entries observed at each job's arrival (Figure 7's pressure).
	ReadBufOcc  *stats.Histogram
	WriteBufOcc *stats.Histogram
	// SpecOcc distributes the speculative pipeline's outstanding checks
	// observed at each admission; SpecOverlap the per-check cycles of
	// verify latency hidden behind the processor (check completion minus
	// speculative delivery). Both stay empty in blocking mode.
	SpecOcc     *stats.Histogram
	SpecOverlap *stats.Histogram
}

// NewProbes returns probes with bucket bounds sized for the simulator's
// cycle and buffer scales.
func NewProbes() *Probes {
	return &Probes{
		VerifyOverhead: stats.NewHistogram(25, 50, 100, 200, 400, 800, 1600, 3200),
		ReadBufOcc:     stats.NewHistogram(1, 2, 4, 8, 16, 32),
		WriteBufOcc:    stats.NewHistogram(1, 2, 4, 8, 16, 32),
		SpecOcc:        stats.NewHistogram(1, 2, 4, 8, 16, 32, 64),
		SpecOverlap:    stats.NewHistogram(25, 50, 100, 200, 400, 800, 1600, 3200),
	}
}

// DefaultBusWindowCycles is the default bus-utilization window width.
const DefaultBusWindowCycles = 10_000

// Recorder bundles one machine's (or one serial sweep's) telemetry: the
// event trace, the probe histograms and the bus-window configuration.
// A nil *Recorder disables everything.
type Recorder struct {
	Trace  *Trace
	Probes *Probes
	// BusWindowCycles enables windowed bus-occupancy accounting when > 0.
	BusWindowCycles uint64
}

// NewRecorder returns a recorder with a trace of the given capacity
// (<= 0 selects DefaultEventCap), fresh probes and default bus windows.
func NewRecorder(eventCap int) *Recorder {
	return &Recorder{
		Trace:           NewTrace(eventCap),
		Probes:          NewProbes(),
		BusWindowCycles: DefaultBusWindowCycles,
	}
}

// FillRegistry adds the recorder's own observations — trace volume and the
// probe histograms — to a registry snapshot.
func (r *Recorder) FillRegistry(reg *Registry) {
	if r == nil {
		return
	}
	if r.Trace != nil {
		reg.Add("trace.events_total", r.Trace.Total())
		reg.Add("trace.events_dropped", r.Trace.Dropped())
	}
	if p := r.Probes; p != nil {
		reg.MergeHistogram("integrity.verify_overhead_cycles", p.VerifyOverhead)
		reg.MergeHistogram("hash.read_buffer_occupancy", p.ReadBufOcc)
		reg.MergeHistogram("hash.write_buffer_occupancy", p.WriteBufOcc)
		reg.MergeHistogram("spec.pending_occupancy", p.SpecOcc)
		reg.MergeHistogram("spec.verify_overlap_cycles", p.SpecOverlap)
	}
}
