package telemetry

import (
	"fmt"
	"io"
	"sort"

	"memverify/internal/stats"
)

// MetricsSchema identifies the snapshot layout; the validator and any
// downstream tooling key off it.
const MetricsSchema = "memverify-metrics-v1"

// Registry collects a run's counters, gauges, histograms and series and
// snapshots them as deterministic JSON: keys sorted, floats printed with
// fixed %.6f formatting, no map iteration feeding the encoder. Components
// don't write to a Registry during simulation — it is filled once at the
// end of a run from their counters and the Recorder's probes, so it is
// entirely off the hot path.
type Registry struct {
	counters map[string]uint64
	gauges   map[string]float64
	hists    map[string]*stats.Histogram
	series   map[string][]uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]uint64{},
		gauges:   map[string]float64{},
		hists:    map[string]*stats.Histogram{},
		series:   map[string][]uint64{},
	}
}

// Add accumulates d into the named counter.
func (r *Registry) Add(name string, d uint64) { r.counters[name] += d }

// Counter returns the named counter's value (0 if absent).
func (r *Registry) Counter(name string) uint64 { return r.counters[name] }

// SetGauge records a point-in-time float value, replacing any previous one.
func (r *Registry) SetGauge(name string, v float64) { r.gauges[name] = v }

// MergeHistogram folds h into the named histogram (cloning on first use so
// the registry owns its data). A nil or empty h is a no-op.
func (r *Registry) MergeHistogram(name string, h *stats.Histogram) {
	if h == nil {
		return
	}
	if have, ok := r.hists[name]; ok {
		have.Merge(h)
	} else {
		r.hists[name] = h.Clone()
	}
}

// Histogram returns the named histogram, or nil.
func (r *Registry) Histogram(name string) *stats.Histogram { return r.hists[name] }

// AppendSeries extends the named sample series (e.g. per-window bus busy
// cycles) in order.
func (r *Registry) AppendSeries(name string, vs ...uint64) {
	r.series[name] = append(r.series[name], vs...)
}

// EachCounter visits every counter in sorted name order.
func (r *Registry) EachCounter(f func(name string, v uint64)) {
	for _, name := range sortedKeys(r.counters) {
		f(name, r.counters[name])
	}
}

// EachGauge visits every gauge in sorted name order.
func (r *Registry) EachGauge(f func(name string, v float64)) {
	for _, name := range sortedKeys(r.gauges) {
		f(name, r.gauges[name])
	}
}

// EachHistogram visits every histogram in sorted name order. The
// histogram is the registry's own — treat it as read-only.
func (r *Registry) EachHistogram(f func(name string, h *stats.Histogram)) {
	for _, name := range sortedKeys(r.hists) {
		f(name, r.hists[name])
	}
}

// EachSeries visits every series in sorted name order. The slice is the
// registry's own — treat it as read-only.
func (r *Registry) EachSeries(f func(name string, vs []uint64)) {
	for _, name := range sortedKeys(r.series) {
		f(name, r.series[name])
	}
}

// MergeInto folds this registry's contents into dst: counters accumulate,
// gauges overwrite, histograms merge, series append. The receiver is left
// untouched — the scrape path uses MergeInto to clone a live registry
// under its owner's lock before serializing without it.
func (r *Registry) MergeInto(dst *Registry) {
	for name, v := range r.counters {
		dst.counters[name] += v
	}
	for name, v := range r.gauges {
		dst.gauges[name] = v
	}
	for name, h := range r.hists {
		dst.MergeHistogram(name, h)
	}
	for name, vs := range r.series {
		dst.series[name] = append(dst.series[name], vs...)
	}
}

// WriteJSON writes the snapshot. The layout is fixed:
//
//	{
//	  "schema": "memverify-metrics-v1",
//	  "counters": {name: uint, ...},        // sorted by name
//	  "gauges": {name: float, ...},         // sorted, %.6f
//	  "histograms": {name: {bounds, buckets, count, max, mean, p50, p90, p99, sum}, ...},
//	  "series": {name: [uint, ...], ...}
//	}
func (r *Registry) WriteJSON(w io.Writer) error {
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pr("{\n  \"schema\": %q,\n", MetricsSchema)

	pr("  \"counters\": {")
	for i, name := range sortedKeys(r.counters) {
		pr("%s\n    %q: %d", comma(i), name, r.counters[name])
	}
	pr("\n  },\n")

	pr("  \"gauges\": {")
	for i, name := range sortedKeys(r.gauges) {
		pr("%s\n    %q: %.6f", comma(i), name, r.gauges[name])
	}
	pr("\n  },\n")

	pr("  \"histograms\": {")
	for i, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		pr("%s\n    %q: {\"bounds\": %s, \"buckets\": %s, \"count\": %d, \"max\": %d, "+
			"\"mean\": %.6f, \"p50\": %.6f, \"p90\": %.6f, \"p99\": %.6f, \"sum\": %d}",
			comma(i), name, uintList(h.Bounds()), uintList(h.Buckets()),
			h.Count(), h.Max(), h.Mean(), h.Quantile(0.50), h.Quantile(0.90),
			h.Quantile(0.99), h.Sum())
	}
	pr("\n  },\n")

	pr("  \"series\": {")
	for i, name := range sortedKeys(r.series) {
		pr("%s\n    %q: %s", comma(i), name, uintList(r.series[name]))
	}
	pr("\n  }\n}\n")
	return err
}

func comma(i int) string {
	if i == 0 {
		return ""
	}
	return ","
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func uintList(vs []uint64) string {
	out := []byte{'['}
	for i, v := range vs {
		if i > 0 {
			out = append(out, ',')
		}
		out = fmt.Appendf(out, "%d", v)
	}
	return string(append(out, ']'))
}
