package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"memverify/internal/stats"
)

func TestRingRetention(t *testing.T) {
	tr := NewTrace(4)
	for i := uint64(0); i < 10; i++ {
		tr.Emit(TrackBus, KindBusGrant, i, i+1, i, 0)
	}
	if tr.Total() != 10 || tr.Len() != 4 || tr.Dropped() != 6 {
		t.Fatalf("total=%d len=%d dropped=%d, want 10/4/6", tr.Total(), tr.Len(), tr.Dropped())
	}
	evs, firstSeq := tr.retained()
	if firstSeq != 6 {
		t.Fatalf("firstSeq = %d, want 6", firstSeq)
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Begin != want {
			t.Fatalf("retained[%d].Begin = %d, want %d (oldest-first order broken)", i, ev.Begin, want)
		}
	}
}

func TestNilTraceIsNoop(t *testing.T) {
	var tr *Trace
	tr.Emit(TrackL2, KindL2Read, 0, 1, 2, 3) // must not panic
	tr.BeginProcess("x")
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil trace reported nonzero state")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil export: %v", err)
	}
}

// TestDisabledEmissionZeroAllocs pins the nil-sink fast path: emitting
// into disabled telemetry must not allocate. This is the alloc half of the
// overhead contract in the package comment.
func TestDisabledEmissionZeroAllocs(t *testing.T) {
	var tr *Trace
	var m *Meter
	if n := testing.AllocsPerRun(1000, func() {
		tr.Emit(TrackBus, KindBusGrant, 1, 2, 3, 4)
		tr.BeginProcess("p")
		m.StartBatch(1)
		m.Tick()
		m.Finish()
	}); n != 0 {
		t.Fatalf("disabled emission allocates %v allocs/op, want 0", n)
	}
}

// TestEnabledEmissionZeroAllocsSteadyState pins that a warm ring never
// allocates per event either — the cost of -trace is bounded by the ring.
func TestEnabledEmissionZeroAllocsSteadyState(t *testing.T) {
	tr := NewTrace(64)
	for i := uint64(0); i < 64; i++ {
		tr.Emit(TrackBus, KindBusGrant, i, i+1, 0, 0)
	}
	if n := testing.AllocsPerRun(1000, func() {
		tr.Emit(TrackBus, KindBusGrant, 1, 2, 3, 4)
	}); n != 0 {
		t.Fatalf("warm ring emission allocates %v allocs/op, want 0", n)
	}
}

func emitSample(tr *Trace) {
	tr.BeginProcess("machine-a")
	tr.Emit(TrackL2, KindL2Read, 10, 60, 0x1000, 1)
	tr.Emit(TrackIntegrity, KindTreeWalk, 12, 55, 3, 2)
	tr.Emit(TrackHash, KindHashJob, 20, 40, 64, 0)
	tr.Emit(TrackBus, KindBusGrant, 15, 25, 64, 0)
	tr.Emit(TrackBus, KindBusGrant, 25, 35, 20, 1)
	tr.Emit(TrackDRAM, KindDRAMRead, 15, 35, 64, 0)
	// Overlapping L2 spans force a second lane.
	tr.Emit(TrackL2, KindL2Read, 30, 80, 0x2000, 1)
	tr.Emit(TrackL2, KindL2Write, 40, 45, 0x3000, 0)
	tr.BeginProcess("machine-b")
	tr.Emit(TrackL2, KindL2Read, 5, 9, 0x4000, 0)
}

func TestChromeExportValidatesAndIsDeterministic(t *testing.T) {
	tr := NewTrace(0)
	emitSample(tr)
	var a, b bytes.Buffer
	if err := tr.WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repeated export of the same trace differs")
	}
	spans, err := ValidateChromeTrace(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatalf("exported trace fails validation: %v\n%s", err, a.String())
	}
	if spans != 9 {
		t.Fatalf("validator saw %d spans, want 9", spans)
	}
	for _, want := range []string{`"machine-a"`, `"machine-b"`, `"L2"`, `"bus"`, `"tree-walk"`, `"class":"hash"`} {
		if !strings.Contains(a.String(), want) {
			t.Fatalf("export missing %s:\n%s", want, a.String())
		}
	}
}

func TestChromeExportRingWrap(t *testing.T) {
	tr := NewTrace(8)
	for i := uint64(0); i < 100; i++ {
		tr.Emit(TrackBus, KindBusGrant, i*10, i*10+5, 64, 0)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	spans, err := ValidateChromeTrace(&buf)
	if err != nil {
		t.Fatalf("wrapped trace fails validation: %v", err)
	}
	if spans != 8 {
		t.Fatalf("wrapped trace has %d spans, want 8", spans)
	}
}

func TestValidatorRejectsBadTraces(t *testing.T) {
	cases := map[string]string{
		"not json":      `{"traceEvents":[`,
		"no events":     `{"traceEvents":[]}`,
		"missing dur":   `{"traceEvents":[{"ph":"X","pid":0,"tid":0,"ts":1,"name":"x"}]}`,
		"bad phase":     `{"traceEvents":[{"ph":"B","pid":0,"tid":0,"ts":1,"name":"x"}]}`,
		"non-monotonic": `{"traceEvents":[{"ph":"X","pid":0,"tid":0,"ts":10,"dur":1,"name":"a"},{"ph":"X","pid":0,"tid":0,"ts":5,"dur":1,"name":"b"}]}`,
		"partial overlap": `{"traceEvents":[
			{"ph":"X","pid":0,"tid":0,"ts":0,"dur":10,"name":"a"},
			{"ph":"X","pid":0,"tid":0,"ts":5,"dur":10,"name":"b"}]}`,
	}
	for name, doc := range cases {
		if _, err := ValidateChromeTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: validator accepted invalid trace", name)
		}
	}
	// Containment on one thread is legal nesting.
	ok := `{"traceEvents":[
		{"ph":"X","pid":0,"tid":0,"ts":0,"dur":10,"name":"outer"},
		{"ph":"X","pid":0,"tid":0,"ts":2,"dur":3,"name":"inner"},
		{"ph":"X","pid":0,"tid":0,"ts":6,"dur":4,"name":"inner2"}]}`
	if _, err := ValidateChromeTrace(strings.NewReader(ok)); err != nil {
		t.Errorf("validator rejected well-nested trace: %v", err)
	}
}

func TestRegistryJSONDeterministicAndValid(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Add("z.last", 3)
		r.Add("a.first", 1)
		r.Add("a.first", 1)
		r.SetGauge("util", 0.3333333)
		h := stats.NewHistogram(10, 100)
		h.Observe(5)
		h.Observe(50)
		h.Observe(500)
		r.MergeHistogram("lat", h)
		r.AppendSeries("bus.windows", 1, 2, 3)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("registry JSON not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	if err := ValidateMetrics(bytes.NewReader(a.Bytes())); err != nil {
		t.Fatalf("registry snapshot fails schema validation: %v\n%s", err, a.String())
	}
	out := a.String()
	if strings.Index(out, `"a.first"`) > strings.Index(out, `"z.last"`) {
		t.Fatal("counter keys not sorted")
	}
	if !strings.Contains(out, `"a.first": 2`) {
		t.Fatalf("Add did not accumulate:\n%s", out)
	}
	if !strings.Contains(out, `"util": 0.333333`) {
		t.Fatalf("gauge not fixed-format:\n%s", out)
	}
}

func TestValidateMetricsRejectsBadSnapshots(t *testing.T) {
	cases := map[string]string{
		"bad schema": `{"schema":"other","counters":{},"gauges":{},"histograms":{},"series":{}}`,
		"bucket/bound mismatch": `{"schema":"memverify-metrics-v1","counters":{},"gauges":{},
			"histograms":{"h":{"bounds":[1,2],"buckets":[1,2],"count":3,"max":0,"mean":0,"p50":0,"p90":0,"p99":0,"sum":0}},"series":{}}`,
		"count mismatch": `{"schema":"memverify-metrics-v1","counters":{},"gauges":{},
			"histograms":{"h":{"bounds":[1],"buckets":[1,1],"count":3,"max":0,"mean":0,"p50":0,"p90":0,"p99":0,"sum":0}},"series":{}}`,
	}
	for name, doc := range cases {
		if err := ValidateMetrics(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: validator accepted invalid metrics", name)
		}
	}
}

func TestMeter(t *testing.T) {
	var buf bytes.Buffer
	m := NewMeter(&buf, "fig5")
	m.StartBatch(2)
	m.Tick()
	m.Tick()
	m.Finish()
	out := buf.String()
	if !strings.Contains(out, "fig5: 2/2 points") {
		t.Fatalf("meter output missing completion line: %q", out)
	}
	if !strings.Contains(out, "pts/s") || !strings.Contains(out, "eta done") {
		t.Fatalf("meter output missing rate/eta: %q", out)
	}
}

func TestRecorderFillRegistry(t *testing.T) {
	rec := NewRecorder(16)
	rec.Trace.Emit(TrackHash, KindHashJob, 0, 10, 64, 0)
	rec.Probes.VerifyOverhead.Observe(120)
	reg := NewRegistry()
	rec.FillRegistry(reg)
	if reg.Counter("trace.events_total") != 1 {
		t.Fatal("trace totals not filled")
	}
	if h := reg.Histogram("integrity.verify_overhead_cycles"); h == nil || h.Count() != 1 {
		t.Fatal("probe histogram not merged")
	}
	// Nil recorder must be a no-op.
	var nilRec *Recorder
	nilRec.FillRegistry(reg)
}

func TestValidatorLaneAccounting(t *testing.T) {
	doc := `{"traceEvents":[
		{"ph":"M","pid":0,"tid":0,"name":"thread_name","args":{"name":"prefetch/0"}},
		{"ph":"M","pid":0,"tid":1,"name":"thread_name","args":{"name":"bus"}},
		{"ph":"X","pid":0,"tid":0,"ts":0,"dur":5,"name":"prefetch"},
		{"ph":"X","pid":0,"tid":0,"ts":5,"dur":5,"name":"prefetch"},
		{"ph":"X","pid":0,"tid":1,"ts":0,"dur":10,"name":"grant"},
		{"ph":"X","pid":0,"tid":2,"ts":0,"dur":1,"name":"anon"}]}`
	spans, lanes, err := ValidateChromeTraceLanes(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if spans != 4 {
		t.Fatalf("got %d spans, want 4", spans)
	}
	// The "/0" lane suffix aggregates under its track name; the unnamed
	// thread's span validates but belongs to no lane.
	if lanes["prefetch"] != 2 || lanes["bus"] != 1 || len(lanes) != 2 {
		t.Fatalf("lane accounting wrong: %v", lanes)
	}
}

func TestValidatorRejectsOverlappingPrefetchSpans(t *testing.T) {
	// Containment is legal nesting on every other lane, but the prefetch
	// lane is one engine's sequential launches: overlap means the
	// exporter's monotonic clamp broke.
	doc := `{"traceEvents":[
		{"ph":"M","pid":0,"tid":0,"name":"thread_name","args":{"name":"prefetch"}},
		{"ph":"X","pid":0,"tid":0,"ts":0,"dur":10,"name":"prefetch"},
		{"ph":"X","pid":0,"tid":0,"ts":2,"dur":3,"name":"prefetch"}]}`
	if _, _, err := ValidateChromeTraceLanes(strings.NewReader(doc)); err == nil {
		t.Fatal("validator accepted overlapping prefetch spans")
	}
	onBus := strings.ReplaceAll(doc, "prefetch", "bus")
	if _, _, err := ValidateChromeTraceLanes(strings.NewReader(onBus)); err != nil {
		t.Fatalf("validator rejected contained bus spans: %v", err)
	}
}

func TestValidatorExportedPrefetchLane(t *testing.T) {
	tr := NewTrace(64)
	tr.Emit(TrackPrefetch, KindPrefetch, 10, 20, 1, 2)
	tr.Emit(TrackPrefetch, KindPrefetch, 20, 35, 3, 4)
	tr.Emit(TrackBus, KindBusGrant, 0, 50, 64, 0)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	_, lanes, err := ValidateChromeTraceLanes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if lanes["prefetch"] != 2 {
		t.Fatalf("exported prefetch lane has %d spans, want 2: %v", lanes["prefetch"], lanes)
	}
}
