package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// laneBase spaces the tid ranges of different tracks: track t's lanes are
// tids t*laneBase, t*laneBase+1, ... Keeping tids disjoint per track makes
// each track a distinct named row group in Perfetto.
const laneBase = 256

// exportEvent is an Event annotated with the process and lane it renders
// into.
type exportEvent struct {
	Event
	seq  uint64
	pid  int
	lane int
}

// WriteChromeTrace exports the retained events as Chrome trace-event JSON
// ("JSON object format"): one process per BeginProcess mark, one thread
// group per track, and — because spans on a single timeline row must nest —
// overlapping spans within a track are spread across sub-lanes by a greedy
// interval partition, so every emitted thread carries strictly
// non-overlapping, timestamp-sorted events. The output is deterministic:
// no map iteration feeds the encoder.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTraces(w, t)
}

// WriteChromeTraces merges several traces into one Chrome trace-event
// file, giving each trace its own disjoint pid range — the per-shard
// export of the shard store, where every shard owns a single-goroutine
// Trace and renders as one process. Traces contribute their BeginProcess
// marks in argument order, so pids (and Perfetto's process sort) follow
// shard order.
func WriteChromeTraces(w io.Writer, traces ...*Trace) error {
	type proc struct{ name string }
	var procs []proc
	var out []exportEvent
	for _, t := range traces {
		evs, firstSeq := t.retained()

		// Resolve this trace's process names. Marks made before the
		// retained window still apply: the latest mark at or before
		// firstSeq owns the window start.
		base := len(procs)
		marks := []procMark(nil)
		if t != nil {
			marks = t.procs
		}
		pidAt := func(seq uint64) int { return base }
		if len(marks) > 0 {
			for _, m := range marks {
				procs = append(procs, proc{name: m.Name})
			}
			pidAt = func(seq uint64) int {
				// Last mark with Seq <= seq; events before the first mark
				// fold into it.
				i := sort.Search(len(marks), func(i int) bool { return marks[i].Seq > seq })
				if i == 0 {
					return base
				}
				return base + i - 1
			}
		} else {
			procs = append(procs, proc{name: "machine"})
		}
		for i, ev := range evs {
			out = append(out, exportEvent{Event: ev, seq: firstSeq + uint64(i), pid: pidAt(firstSeq + uint64(i))})
		}
	}
	if len(procs) == 0 {
		procs = []proc{{name: "machine"}}
	}

	// Greedy lane assignment per (pid, track): sort by begin time, place
	// each span on the first lane whose previous span has ended.
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.pid != b.pid {
			return a.pid < b.pid
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Begin != b.Begin {
			return a.Begin < b.Begin
		}
		if a.End != b.End {
			return a.End > b.End // longer span first so shorter ones nest
		}
		return a.seq < b.seq
	})
	type groupKey struct {
		pid   int
		track Track
	}
	laneEnds := map[groupKey][]uint64{}
	usedLanes := map[groupKey]int{}
	for i := range out {
		ev := &out[i]
		key := groupKey{ev.pid, ev.Track}
		ends := laneEnds[key]
		lane := -1
		for l, end := range ends {
			if end <= ev.Begin {
				lane = l
				break
			}
		}
		if lane < 0 {
			lane = len(ends)
			ends = append(ends, 0)
		}
		ends[lane] = ev.End
		laneEnds[key] = ends
		ev.lane = lane
		if lane+1 > usedLanes[key] {
			usedLanes[key] = lane + 1
		}
	}

	if _, err := fmt.Fprintf(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) error {
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}

	// Metadata: process names, then thread names for every used lane,
	// in deterministic (pid, track, lane) order.
	for pid, p := range procs {
		if err := emit(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%q}}`, pid, p.name); err != nil {
			return err
		}
		if err := emit(`{"ph":"M","pid":%d,"tid":0,"name":"process_sort_index","args":{"sort_index":%d}}`, pid, pid); err != nil {
			return err
		}
		for tr := Track(0); tr < numTracks; tr++ {
			n := usedLanes[groupKey{pid, tr}]
			for lane := 0; lane < n; lane++ {
				tid := int(tr)*laneBase + lane
				name := tr.String()
				if n > 1 {
					name = fmt.Sprintf("%s/%d", tr, lane)
				}
				if err := emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%q}}`, pid, tid, name); err != nil {
					return err
				}
				if err := emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`, pid, tid, tid); err != nil {
					return err
				}
			}
		}
	}

	// Complete ("X") events. Timestamps are simulated cycles presented as
	// microseconds — 1 cycle == 1 us keeps Perfetto's zoom math exact.
	// Re-sort into per-(pid,tid) timestamp order so each thread's stream
	// is monotonic in the file as well.
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.pid != b.pid {
			return a.pid < b.pid
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.lane != b.lane {
			return a.lane < b.lane
		}
		if a.Begin != b.Begin {
			return a.Begin < b.Begin
		}
		return a.seq < b.seq
	})
	for i := range out {
		ev := &out[i]
		tid := int(ev.Track)*laneBase + ev.lane
		if err := emit(`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"name":%q,"args":{%s}}`,
			ev.pid, tid, ev.Begin, ev.End-ev.Begin, ev.Kind.String(), eventArgs(&ev.Event)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// eventArgs renders an event's A/B payload with per-kind field names.
func eventArgs(ev *Event) string {
	switch ev.Kind {
	case KindL2Read, KindL2Write:
		return fmt.Sprintf(`"addr":%d,"miss":%d`, ev.A, ev.B)
	case KindTreeWalk:
		return fmt.Sprintf(`"chunk":%d,"extra_reads":%d`, ev.A, ev.B)
	case KindWriteBack:
		return fmt.Sprintf(`"chunk":%d,"incremental":%d`, ev.A, ev.B)
	case KindHashJob:
		return fmt.Sprintf(`"bytes":%d`, ev.A)
	case KindBusGrant:
		cls := "data"
		if ev.B != 0 {
			cls = "hash"
		}
		return fmt.Sprintf(`"bytes":%d,"class":%q`, ev.A, cls)
	case KindDRAMRead, KindDRAMWrite:
		return fmt.Sprintf(`"bytes":%d`, ev.A)
	case KindPrefetch:
		return fmt.Sprintf(`"chunk":%d,"ancestor":%d`, ev.A, ev.B)
	}
	return fmt.Sprintf(`"a":%d,"b":%d`, ev.A, ev.B)
}
