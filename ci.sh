#!/usr/bin/env bash
# Repository gate: build everything, vet, and run the full test suite under
# the race detector (the parallel sweep engine makes -race load-bearing).
set -euo pipefail
cd "$(dirname "$0")"

go build ./...
go vet ./...
go test -race ./...

# Cross-mode equivalence: full, timing-only and memoized digest execution
# must produce identical metrics and figure output for every scheme.
go test -run 'HashMode|MemoRig|TimingConstructors|FigureOutputIdentical' \
  ./internal/integrity/ ./internal/core/ ./internal/figures/

# Timing-only smoke sweep: one figure functionally with digests switched
# off — the fast path every functional sweep is expected to use. The 1 GiB
# protected region only validates because timing mode skips the tree.
go run ./cmd/figures -fig5 -n 20000 -warmup 10000 \
  -functional -hashmode timing -protected $((1 << 30)) >/dev/null
echo "timing-only functional sweep OK"

# Adversary gate: every tree scheme must detect every attack class in the
# end-to-end tamper demo (the command exits nonzero on a miss).
go run ./cmd/tamper >/dev/null
echo "tamper gate OK"

# Seeded chaos mini-campaign: 100 fault injections (25 per tree scheme)
# must all be detected with zero false positives on the paired clean runs.
# Identical seeds produce byte-identical reports, so this doubles as a
# determinism regression. The same campaign machinery also runs under the
# race detector as part of `go test -race ./...` above (TestCampaignCI);
# the full thousand-injection acceptance campaign runs race-free here.
go run ./cmd/chaos -n 25 -seed 7 >/dev/null
go test -run 'TestCampaignAcceptance|TestCampaignDeterministic' ./internal/chaos/
echo "chaos campaign gate OK"

# Prefetch gate: tree-ancestor prefetching and the dedicated verification
# cache must be semantically invisible — byte-identical delivered data and
# roots against a prefetch-off shared-L2 machine for every scheme × hash
# mode (race-clean, since the sharded store runs prefetching machines
# concurrently) — and a chaos mini-campaign with both features enabled
# must keep 100% detection with zero clean-run false positives.
go test -race -run 'TestPrefetchEquivalence|TestDeterministicEmissions' \
  ./internal/core/ ./internal/prefetch/
go run ./cmd/chaos -n 25 -seed 11 -prefetch -verify-cache 32 -verify-assoc 4 >/dev/null
echo "prefetch equivalence gate OK"

# Sharded-store gate: the concurrent store must stay race-clean and
# byte-identical to a single machine under every scheme, and the loadgen
# smoke must verify clean traffic (it exits nonzero on any violation or
# mirror mismatch) for all four tree schemes. The tamper leg asserts the
# opposite: a corrupted shard must be detected and fail the run.
go test -race -run 'TestCrossShardEquivalence|TestTamperIsolation|TestConcurrentSubmittersConverge' \
  ./internal/shard/
for scheme in naive c m i; do
  go run ./cmd/loadgen -scheme "$scheme" -shards 4 -workers 2 -ops 2000 >/dev/null
done
if go run ./cmd/loadgen -shards 2 -workers 2 -ops 500 -tamper 1 >/dev/null 2>&1; then
  echo "FAIL: loadgen did not detect the tampered shard" >&2
  exit 1
fi
echo "sharded store gate OK"

# Speculative pipeline gate: speculation must be semantically invisible at
# barriers. The equivalence suite (metrics, delivered data, roots, the
# seeded barrier-interleaving property, halt poisoning, window bounds) and
# the speculative batch-commit test run race-clean; a chaos mini-campaign
# with the pipeline armed and epoch barriers interleaved into the
# post-injection traffic must keep 100% detection with zero clean-run
# false positives (default record policy — halt stops checking at the
# first hit by design); and the loadgen speculative leg must verify clean
# while the tamper leg still fails.
go test -race -run 'TestSpeculative|TestPending' ./internal/core/ ./internal/integrity/ ./internal/shard/
go run ./cmd/chaos -n 25 -seed 13 -speculative -barrier-every 6 >/dev/null
go run ./cmd/loadgen -scheme naive -shards 4 -workers 2 -ops 2000 -speculative >/dev/null
if go run ./cmd/loadgen -shards 2 -workers 2 -ops 500 -speculative -tamper 1 >/dev/null 2>&1; then
  echo "FAIL: speculative loadgen did not detect the tampered shard" >&2
  exit 1
fi
# Gap-closure regression gate: simulated IPC is deterministic, so one
# iteration suffices — speculative naive must stay >= 1.5x blocking
# naive on the throughput workload (measured 3.76x; see BENCH_async.json).
go test -run '^$' -bench 'BenchmarkSpeculative/naive' -benchtime 1x . | awk '
  $1 ~ /^BenchmarkSpeculative\/naive\/blocking(-[0-9]+)?$/    { for (i = 2; i <= NF; i++) if ($i == "naive-IPC") blk = $(i - 1) }
  $1 ~ /^BenchmarkSpeculative\/naive\/speculative(-[0-9]+)?$/ { for (i = 2; i <= NF; i++) if ($i == "naive-IPC") spec = $(i - 1) }
  END {
    if (blk == "" || spec == "") { print "FAIL: benchmark output missing"; exit 1 }
    printf "speculative naive IPC %s vs blocking %s (x%.2f)\n", spec, blk, spec / blk
    if (spec / blk < 1.5) { print "FAIL: speculative naive speedup below 1.5x"; exit 1 }
  }'
echo "speculative pipeline gate OK"

# Persistence gate: the crash-consistency machinery must hold up under the
# race detector, and a seeded 200-leg campaign (50 per tree scheme: kills
# at every commit-protocol stage plus on-disk tampering) must recover every
# clean crash to the exact sealed root and detect every tamper — cmd/chaos
# -crash exits nonzero on any false positive, root mismatch, or miss.
go test -race -run 'TestKillPointProperty|TestRecover|TestDoubleCrash|TestStaleSnapshot|TestCrashCampaign' \
  ./internal/persist/ ./internal/chaos/
go run ./cmd/chaos -crash -n 50 -seed 17 >/dev/null
# End-to-end kill/restart walkthrough: loadgen dies mid-checkpoint (exit 3
# by contract), restart must classify the crash and keep serving; a replayed
# stale snapshot under the sealed WAL must classify as a violation, and a
# clean-recovery expectation on that replay must fail.
ptmp=$(mktemp -d -t memverify-persist.XXXXXX)
lg="$ptmp/loadgen"
go build -o "$lg" ./cmd/loadgen
set +e
"$lg" -scheme c -shards 2 -workers 2 -ops 1500 -checkpoint-every 500 \
  -protected 131072 -persist "$ptmp/store" -kill-after 2 -kill-stage manifest-write >/dev/null 2>&1
status=$?
set -e
if [ "$status" -ne 3 ]; then
  echo "FAIL: loadgen kill point exited $status, want 3" >&2
  exit 1
fi
"$lg" -scheme c -shards 2 -workers 2 -ops 500 -checkpoint-every 500 \
  -protected 131072 -persist "$ptmp/store" -restart >/dev/null
cp -r "$ptmp/store" "$ptmp/stash"
"$lg" -scheme c -shards 2 -workers 2 -ops 500 -checkpoint-every 500 \
  -protected 131072 -persist "$ptmp/store" -restart >/dev/null
rm -f "$ptmp/store"/seg-*
cp "$ptmp/stash"/seg-* "$ptmp/stash/MANIFEST" "$ptmp/store/"
if "$lg" -scheme c -shards 2 -workers 2 -ops 500 -protected 131072 \
  -persist "$ptmp/store" -restart -expect-outcome recovered-clean,recovered-torn >/dev/null 2>&1; then
  echo "FAIL: stale-snapshot replay was accepted as a clean recovery" >&2
  exit 1
fi
"$lg" -scheme c -shards 2 -workers 2 -ops 500 -protected 131072 \
  -persist "$ptmp/store" -restart -expect-outcome violation >/dev/null
rm -rf "$ptmp"
echo "persistence gate OK"

# Hygiene gate: no compiled or executable blob may be tracked. Shell
# scripts are the only files allowed to carry the executable bit, and
# nothing tracked may be an ELF/Mach-O binary.
while IFS= read -r f; do
  case "$f" in *.sh) continue ;; esac
  if [ -x "$f" ]; then
    echo "FAIL: tracked file $f is executable but not a script" >&2
    exit 1
  fi
  if head -c 4 "$f" | grep -q $'^\x7fELF\|^\xcf\xfa\xed\xfe'; then
    echo "FAIL: tracked file $f is a compiled binary" >&2
    exit 1
  fi
done < <(git ls-files)
echo "no tracked binaries OK"

# Telemetry gate: a traced smoke simulation and a traced Figure-5 point
# must produce Chrome trace JSON that parses with well-nested,
# timestamp-monotonic spans on every thread, plus a metrics snapshot
# matching the memverify-metrics-v1 schema (cmd/tracecheck validates both).
tmp=$(mktemp -d -t memverify-telemetry.XXXXXX)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/simulate -scheme c -bench swim -n 30000 \
  -trace "$tmp/sim.trace.json" -metrics "$tmp/sim.metrics.json" >/dev/null
go run ./cmd/tracecheck -min-spans 1000 \
  -trace "$tmp/sim.trace.json" -metrics "$tmp/sim.metrics.json" >/dev/null
go run ./cmd/figures -fig5 -n 10000 -warmup 5000 \
  -trace "$tmp/fig5.trace.json" -metrics "$tmp/fig5.metrics.json" >/dev/null
go run ./cmd/tracecheck -min-spans 1000 \
  -trace "$tmp/fig5.trace.json" -metrics "$tmp/fig5.metrics.json" >/dev/null
# A prefetch-enabled run must populate the prefetch lane, and that lane
# must hold strictly disjoint, monotonic spans (tracecheck enforces the
# stricter overlap-free rule for it).
go run ./cmd/simulate -scheme c -bench gzip -n 50000 -l2 16384 \
  -prefetch -verify-cache 64 -verify-assoc 4 \
  -trace "$tmp/pf.trace.json" -metrics "$tmp/pf.metrics.json" >/dev/null
go run ./cmd/tracecheck -require-lane prefetch \
  -trace "$tmp/pf.trace.json" -metrics "$tmp/pf.metrics.json" >/dev/null
echo "telemetry trace/metrics gate OK"

# Telemetry overhead gate: with no recorder attached the emission sites
# must not allocate (pinned per-site and at whole-run scope) and the
# disabled leg of BenchmarkTelemetryOverhead must stay within 2% of the
# uninstrumented BenchmarkSimulatorThroughput/c on the same workload.
go test -run 'ZeroAllocs|TestDisabledTelemetryAllocsAreConstructionOnly' \
  ./internal/telemetry/ .
# Min over three repetitions: the least-noise estimate for a deterministic
# workload, so shared-machine jitter does not flip the 2% verdict.
go test -run '^$' -bench '(BenchmarkSimulatorThroughput|BenchmarkTelemetryOverhead)/(c$|disabled)' \
  -benchtime 50x -count 3 . | awk '
  $1 ~ /^BenchmarkSimulatorThroughput\/c(-[0-9]+)?$/      { if (base == "" || $3 < base) base = $3 }
  $1 ~ /^BenchmarkTelemetryOverhead\/disabled(-[0-9]+)?$/ { if (dis == "" || $3 < dis) dis = $3 }
  END {
    if (base == "" || dis == "") { print "FAIL: benchmark output missing"; exit 1 }
    delta = (dis - base) / base
    printf "telemetry disabled overhead: base %d ns/op, disabled %d ns/op (%+.1f%%)\n", base, dis, 100 * delta
    if (delta > 0.02) { print "FAIL: disabled telemetry exceeds the 2% overhead budget"; exit 1 }
  }'
echo "telemetry overhead gate OK"

# Live ops gate: a multi-shard loadgen must serve a metricscheck-clean
# Prometheus exposition while traffic runs — structurally legal text
# format, counters monotonic across two scrapes — with /healthz healthy
# and the sampler's progress line on stderr. -ops-listen :0 plus grepping
# the logged URL keeps the gate parallel-safe.
otmp=$(mktemp -d -t memverify-ops.XXXXXX)
go build -o "$otmp/loadgen" ./cmd/loadgen
go build -o "$otmp/metricscheck" ./cmd/metricscheck
ops_url() { # $1: stderr log; prints host:port once the server announced it
  sed -n 's#^ops: listening on http://##p' "$1" | head -1
}
"$otmp/loadgen" -scheme c -shards 4 -workers 2 -ops 300000 \
  -ops-listen 127.0.0.1:0 -sample-every 100ms -ops-linger 15s \
  >/dev/null 2>"$otmp/lg.log" &
lgpid=$!
addr=""
for _ in $(seq 1 200); do
  addr=$(ops_url "$otmp/lg.log")
  [ -n "$addr" ] && break
  sleep 0.05
done
if [ -z "$addr" ]; then
  echo "FAIL: loadgen never logged its ops URL" >&2
  exit 1
fi
"$otmp/metricscheck" -get "http://$addr/healthz" | grep -q '"status": "healthy"' || {
  echo "FAIL: /healthz not healthy on a clean run" >&2; exit 1; }
curl -fsS "http://$addr/metrics" >"$otmp/scrape1.prom"
sleep 0.3
curl -fsS "http://$addr/metrics" >"$otmp/scrape2.prom"
"$otmp/metricscheck" "$otmp/scrape1.prom" >/dev/null
"$otmp/metricscheck" -prev "$otmp/scrape1.prom" "$otmp/scrape2.prom"
curl -fsS "http://$addr/vars" | head -c 1 | grep -q '{' || {
  echo "FAIL: /vars is not JSON" >&2; exit 1; }
grep -q '^loadgen: status ops/sec=' "$otmp/lg.log" || {
  echo "FAIL: no sampler progress line on stderr" >&2; exit 1; }
kill "$lgpid" 2>/dev/null || true
wait "$lgpid" 2>/dev/null || true
# Tamper leg: one corrupted shard of four must flip /healthz to degraded
# (tamper containment — the surviving shards keep serving, so the status
# stays HTTP 200 with a degraded body) and the flight dump must attribute
# the violation to the tampered shard with a nonzero barrier epoch.
"$otmp/loadgen" -shards 4 -workers 2 -ops 1500 -policy halt -speculative -tamper 1 \
  -ops-listen 127.0.0.1:0 -ops-linger 5s -flight "$otmp/flight.json" \
  >/dev/null 2>"$otmp/tamper.log" &
tpid=$!
for _ in $(seq 1 200); do
  grep -q 'ops server lingering' "$otmp/tamper.log" && break
  sleep 0.05
done
taddr=$(ops_url "$otmp/tamper.log")
if [ -z "$taddr" ]; then
  echo "FAIL: tamper loadgen never logged its ops URL" >&2
  exit 1
fi
"$otmp/metricscheck" -get "http://$taddr/healthz" >"$otmp/tamper-health.json" || true
grep -q '"status": "degraded"' "$otmp/tamper-health.json" || {
  echo "FAIL: tampered store /healthz did not report degraded" >&2; exit 1; }
grep -q '"halted_shards": 1' "$otmp/tamper-health.json" || {
  echo "FAIL: tampered store /healthz did not count the halted shard" >&2; exit 1; }
set +e
wait "$tpid"
tstatus=$?
set -e
if [ "$tstatus" -eq 0 ]; then
  echo "FAIL: tamper leg exited 0" >&2
  exit 1
fi
grep -q '"kind": "violation", "seq": [0-9]*, "shard": 1' "$otmp/flight.json" || {
  echo "FAIL: flight dump does not attribute the violation to shard 1" >&2; exit 1; }
grep -q '"kind": "shard-halt"' "$otmp/flight.json" || {
  echo "FAIL: flight dump missing the shard-halt event" >&2; exit 1; }
epoch=$(sed -n 's/.*"epoch": \([0-9][0-9]*\), "kind": "violation".*/\1/p' "$otmp/flight.json" | head -1)
if [ -z "$epoch" ] || [ "$epoch" -eq 0 ]; then
  echo "FAIL: flight-recorded violation has no barrier epoch (got '$epoch')" >&2
  exit 1
fi
rm -rf "$otmp"
echo "live ops gate OK"

# Ops overhead gate: with -ops-listen up but nobody scraping, store
# traffic must stay within 2% of the no-ops baseline. Min over three
# repetitions, same reasoning as the telemetry overhead gate; 30000
# iterations span at least one full sampler tick at the default cadence.
go test -run '^$' -bench 'BenchmarkStoreOps(Baseline|EnabledUnscraped)' \
  -benchtime 30000x -count 3 ./internal/obs/ | awk '
  $1 ~ /^BenchmarkStoreOpsBaseline(-[0-9]+)?$/         { if (base == "" || $3 < base) base = $3 }
  $1 ~ /^BenchmarkStoreOpsEnabledUnscraped(-[0-9]+)?$/ { if (en == "" || $3 < en) en = $3 }
  END {
    if (base == "" || en == "") { print "FAIL: benchmark output missing"; exit 1 }
    delta = (en - base) / base
    printf "ops enabled-unscraped overhead: base %d ns/op, enabled %d ns/op (%+.1f%%)\n", base, en, 100 * delta
    if (delta > 0.02) { print "FAIL: enabled-unscraped ops surface exceeds the 2% overhead budget"; exit 1 }
  }'
echo "ops overhead gate OK"

# Service gate: memverifyd on an ephemeral port must serve mirror-checked
# remote loadgen traffic for every tenant, contain a tampered tenant to
# that tenant (503s for it, clean service and a degraded-not-unhealthy
# /healthz for the rest), survive two metricscheck-clean live scrapes with
# monotonic counters, and dump a flight record with the signal event on
# SIGTERM.
stmp=$(mktemp -d -t memverify-service.XXXXXX)
go build -o "$stmp/memverifyd" ./cmd/memverifyd
go build -o "$stmp/loadgen" ./cmd/loadgen
go build -o "$stmp/metricscheck" ./cmd/metricscheck
"$stmp/memverifyd" -listen 127.0.0.1:0 \
  -tenants 't0,t1:scheme=naive,t2:scheme=m;hashmode=memo,t3:scheme=i;policy=halt' \
  -protected $((1 << 21)) -allow-tamper -sample-every 100ms \
  -flight "$stmp/flight.json" >"$stmp/mvd.log" 2>&1 &
mvdpid=$!
saddr=""
for _ in $(seq 1 200); do
  saddr=$(sed -n 's#^memverifyd: serving on http://\([^ ]*\).*#\1#p' "$stmp/mvd.log" | head -1)
  [ -n "$saddr" ] && break
  sleep 0.05
done
if [ -z "$saddr" ]; then
  echo "FAIL: memverifyd never logged its serving URL" >&2
  exit 1
fi
"$stmp/metricscheck" -get "http://$saddr/healthz" | grep -q '"status": "healthy"' || {
  echo "FAIL: fresh memverifyd /healthz not healthy" >&2; exit 1; }
for tenant in t0 t1 t2 t3; do
  "$stmp/loadgen" -remote "$saddr" -tenant "$tenant" -workers 4 -ops 2000 >/dev/null
done
curl -fsS "http://$saddr/metrics" >"$stmp/scrape1.prom"
"$stmp/metricscheck" "$stmp/scrape1.prom" >/dev/null
sleep 0.3
"$stmp/metricscheck" -url "http://$saddr/metrics" -prev "$stmp/scrape1.prom" >/dev/null
# Tamper leg: corrupting halt-policy tenant t3 must fail its loadgen run...
if "$stmp/loadgen" -remote "$saddr" -tenant t3 -workers 2 -ops 500 -tamper 0 >/dev/null 2>&1; then
  echo "FAIL: remote loadgen did not detect the tampered tenant" >&2
  exit 1
fi
# ...503 its subsequent traffic, degrade (not kill) the service, and leave
# the neighbors serving mirror-clean.
"$stmp/metricscheck" -get "http://$saddr/healthz" >"$stmp/health.json" || true
grep -q '"status": "degraded"' "$stmp/health.json" || {
  echo "FAIL: tampered tenant did not degrade /healthz" >&2; exit 1; }
grep -q 'tenant t3' "$stmp/health.json" || {
  echo "FAIL: /healthz detail does not attribute the halt to tenant t3" >&2; exit 1; }
"$stmp/loadgen" -remote "$saddr" -tenant t0 -workers 2 -ops 500 >/dev/null || {
  echo "FAIL: healthy tenant t0 stopped serving after t3 was tampered" >&2; exit 1; }
kill -TERM "$mvdpid"
set +e
wait "$mvdpid"
mstatus=$?
set -e
if [ "$mstatus" -ne 0 ]; then
  echo "FAIL: memverifyd exited $mstatus on SIGTERM, want a clean 0" >&2
  exit 1
fi
grep -q '"kind": "signal"' "$stmp/flight.json" || {
  echo "FAIL: flight dump missing the SIGTERM signal event" >&2; exit 1; }
grep -q 'shutdown complete' "$stmp/mvd.log" || {
  echo "FAIL: memverifyd did not log a graceful shutdown" >&2; exit 1; }
rm -rf "$stmp"
echo "service gate OK"

# Fuzz smoke: drive the functional machine through interleaved accesses
# and adversary mutations for a few seconds looking for panics or missed
# post-eviction corruption.
go test -fuzz FuzzMachineTamper -fuzztime 10s ./internal/mem/ >/dev/null
echo "machine fuzz smoke OK"
