#!/usr/bin/env bash
# Repository gate: build everything, vet, and run the full test suite under
# the race detector (the parallel sweep engine makes -race load-bearing).
set -euo pipefail
cd "$(dirname "$0")"

go build ./...
go vet ./...
go test -race ./...

# Cross-mode equivalence: full, timing-only and memoized digest execution
# must produce identical metrics and figure output for every scheme.
go test -run 'HashMode|MemoRig|TimingConstructors|FigureOutputIdentical' \
  ./internal/integrity/ ./internal/core/ ./internal/figures/

# Timing-only smoke sweep: one figure functionally with digests switched
# off — the fast path every functional sweep is expected to use. The 1 GiB
# protected region only validates because timing mode skips the tree.
go run ./cmd/figures -fig5 -n 20000 -warmup 10000 \
  -functional -hashmode timing -protected $((1 << 30)) >/dev/null
echo "timing-only functional sweep OK"
