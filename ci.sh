#!/usr/bin/env bash
# Repository gate: build everything, vet, and run the full test suite under
# the race detector (the parallel sweep engine makes -race load-bearing).
set -euo pipefail
cd "$(dirname "$0")"

go build ./...
go vet ./...
go test -race ./...

# Cross-mode equivalence: full, timing-only and memoized digest execution
# must produce identical metrics and figure output for every scheme.
go test -run 'HashMode|MemoRig|TimingConstructors|FigureOutputIdentical' \
  ./internal/integrity/ ./internal/core/ ./internal/figures/

# Timing-only smoke sweep: one figure functionally with digests switched
# off — the fast path every functional sweep is expected to use. The 1 GiB
# protected region only validates because timing mode skips the tree.
go run ./cmd/figures -fig5 -n 20000 -warmup 10000 \
  -functional -hashmode timing -protected $((1 << 30)) >/dev/null
echo "timing-only functional sweep OK"

# Adversary gate: every tree scheme must detect every attack class in the
# end-to-end tamper demo (the command exits nonzero on a miss).
go run ./cmd/tamper >/dev/null
echo "tamper gate OK"

# Seeded chaos mini-campaign: 100 fault injections (25 per tree scheme)
# must all be detected with zero false positives on the paired clean runs.
# Identical seeds produce byte-identical reports, so this doubles as a
# determinism regression. The same campaign machinery also runs under the
# race detector as part of `go test -race ./...` above (TestCampaignCI);
# the full thousand-injection acceptance campaign runs race-free here.
go run ./cmd/chaos -n 25 -seed 7 >/dev/null
go test -run 'TestCampaignAcceptance|TestCampaignDeterministic' ./internal/chaos/
echo "chaos campaign gate OK"

# Fuzz smoke: drive the functional machine through interleaved accesses
# and adversary mutations for a few seconds looking for panics or missed
# post-eviction corruption.
go test -fuzz FuzzMachineTamper -fuzztime 10s ./internal/mem/ >/dev/null
echo "machine fuzz smoke OK"
