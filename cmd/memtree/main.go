// Command memtree exposes the repository's Merkle-tree library as a
// standalone file-integrity utility: build a hash tree over a file, keep
// only the root, and later verify the file — or just one chunk of it,
// with a logarithmic-size inclusion proof — against that root.
//
//	memtree build  -f data.bin -tree data.tree            # prints the root
//	memtree verify -f data.bin -tree data.tree -root <hex>
//	memtree prove  -f data.bin -tree data.tree -chunk 17  # proof on stdout
//	memtree check  -proof proof.json -root <hex>
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"memverify/internal/hashalg"
	"memverify/internal/htree"
	"memverify/internal/mem"
)

const (
	chunkSize = 64
	hashSize  = 16
)

// proofFile is the JSON shape of an exported proof.
type proofFile struct {
	Algorithm string   `json:"algorithm"`
	ChunkSize int      `json:"chunkSize"`
	HashSize  int      `json:"hashSize"`
	DataBytes uint64   `json:"dataBytes"`
	Chunk     uint64   `json:"chunk"`
	Path      []uint64 `json:"path"`
	Chunks    []string `json:"chunks"` // hex
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	dataPath := fs.String("f", "", "data file")
	treePath := fs.String("tree", "", "tree sidecar file")
	rootHex := fs.String("root", "", "expected root hash (hex)")
	chunk := fs.Uint64("chunk", 0, "data chunk index (prove)")
	proofPath := fs.String("proof", "", "proof file (check)")
	algName := fs.String("alg", "sha1", "hash algorithm: md5, sha1, fnv128")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	alg, err := hashalg.New(*algName)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "build":
		tr, _ := load(*dataPath, alg)
		tr.Build()
		if err := os.WriteFile(*treePath, sidecar(tr), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("root %s\n", hex.EncodeToString(tr.Root()))

	case "verify":
		tr, _ := load(*dataPath, alg)
		if err := loadSidecar(tr, *treePath); err != nil {
			fatal(err)
		}
		root, err := hex.DecodeString(*rootHex)
		if err != nil || len(root) != hashSize {
			fatal(fmt.Errorf("need -root as %d hex bytes", hashSize))
		}
		tr.SetRoot(root)
		if err := tr.VerifyAll(); err != nil {
			fatal(fmt.Errorf("INTEGRITY FAILURE: %w", err))
		}
		fmt.Println("ok: every chunk verifies against the root")

	case "prove":
		tr, size := load(*dataPath, alg)
		if err := loadSidecar(tr, *treePath); err != nil {
			fatal(err)
		}
		c := tr.Layout.InteriorChunks + *chunk
		if c >= tr.Layout.TotalChunks {
			fatal(fmt.Errorf("chunk %d out of range (%d data chunks)", *chunk, tr.Layout.DataChunks))
		}
		p := tr.Prove(c)
		out := proofFile{
			Algorithm: *algName, ChunkSize: chunkSize, HashSize: hashSize,
			DataBytes: size, Chunk: p.Chunk, Path: p.Path,
		}
		for _, ch := range p.Chunks {
			out.Chunks = append(out.Chunks, hex.EncodeToString(ch))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}

	case "check":
		raw, err := os.ReadFile(*proofPath)
		if err != nil {
			fatal(err)
		}
		var pf proofFile
		if err := json.Unmarshal(raw, &pf); err != nil {
			fatal(err)
		}
		alg, err := hashalg.New(pf.Algorithm)
		if err != nil {
			fatal(err)
		}
		layout, err := htree.NewLayout(pf.ChunkSize, pf.HashSize, pf.DataBytes)
		if err != nil {
			fatal(err)
		}
		root, err := hex.DecodeString(*rootHex)
		if err != nil || len(root) != pf.HashSize {
			fatal(fmt.Errorf("need -root as %d hex bytes", pf.HashSize))
		}
		proof := &htree.Proof{Chunk: pf.Chunk, Path: pf.Path}
		for _, h := range pf.Chunks {
			b, err := hex.DecodeString(h)
			if err != nil {
				fatal(err)
			}
			proof.Chunks = append(proof.Chunks, b)
		}
		if err := htree.CheckProof(layout, alg, root, proof); err != nil {
			fatal(fmt.Errorf("PROOF REJECTED: %w", err))
		}
		fmt.Printf("ok: chunk %d authenticated against the root\n", pf.Chunk-layout.InteriorChunks)

	default:
		usage()
	}
}

// load builds a tree over the file's contents (tree nodes unpopulated).
func load(path string, alg hashalg.Algorithm) (*htree.Tree, uint64) {
	if path == "" {
		fatal(fmt.Errorf("missing -f"))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	if len(data) == 0 {
		fatal(fmt.Errorf("%s is empty", path))
	}
	layout, err := htree.NewLayout(chunkSize, hashSize, uint64(len(data)))
	if err != nil {
		fatal(err)
	}
	m := mem.NewSparse()
	m.Write(layout.DataStart(), data)
	return htree.NewTree(layout, alg, m), uint64(len(data))
}

// sidecar serializes the interior (hash) chunks.
func sidecar(tr *htree.Tree) []byte {
	out := make([]byte, tr.Layout.DataStart())
	tr.Memory().Read(0, out)
	return out
}

// loadSidecar installs previously built interior chunks.
func loadSidecar(tr *htree.Tree, path string) error {
	if path == "" {
		return fmt.Errorf("missing -tree")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if uint64(len(raw)) != tr.Layout.DataStart() {
		return fmt.Errorf("tree sidecar is %d bytes, want %d", len(raw), tr.Layout.DataStart())
	}
	// Write the interior region into the tree's memory.
	tr.Memory().Write(0, raw)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: memtree build|verify|prove|check [flags]")
	os.Exit(2)
}
