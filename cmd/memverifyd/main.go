// Command memverifyd serves verified memory over HTTP: a multi-tenant
// daemon hosting one sharded verification store (internal/shard) per
// tenant behind the internal/service batch protocol, with the live ops
// surface (/metrics, /vars, /healthz, /readyz, /flightrecord,
// /debug/pprof) mounted on the same listener.
//
// Tenants are declared with -tenants, a comma-separated list of
// name[:key=value[;key=value]...] specs; each tenant gets its own region,
// scheme, hash mode and violation policy, and a violation in one tenant
// 503s only that tenant — the paper's containment story at service
// granularity. With -persist ROOT each tenant checkpoints into
// ROOT/<name> (anchored at ROOT/anchors/<name>.anchor) and recovers at
// boot, so tenants survive kill/restart.
//
// SIGINT/SIGTERM shut the daemon down gracefully: in-flight requests
// drain, sampling stops, persisted tenants seal a final checkpoint, the
// stores close, and the flight recorder dumps to -flight.
//
// Usage:
//
//	memverifyd -listen 127.0.0.1:8380 -tenants "alpha,bravo:policy=halt"
//	memverifyd -listen 127.0.0.1:0 -tenants t0,t1,t2,t3 -persist /var/lib/memverifyd
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"memverify/internal/core"
	"memverify/internal/obs"
	"memverify/internal/prefetch"
	"memverify/internal/runflags"
	"memverify/internal/service"
	"memverify/internal/telemetry"
	"memverify/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "memverifyd:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := core.DefaultConfig()
	listen := flag.String("listen", "127.0.0.1:8380", "TCP address to serve on (127.0.0.1:0 for an ephemeral port)")
	tenants := flag.String("tenants", "t0", "tenant specs: name[:key=val[;key=val]...],... (keys: scheme, shards, protected, l2, policy, hashmode, alg, chunk, queue, spec)")
	scheme := flag.String("scheme", "c", "default verification scheme: naive, c, m, i")
	shards := flag.Int("shards", 4, "default shards per tenant")
	protected := flag.Uint64("protected", 8<<20, "default protected bytes per tenant")
	l2 := flag.Int("l2", 256<<10, "default per-shard L2 size in bytes")
	policy := flag.String("policy", "record", "default violation policy: record, halt, retry")
	hashmode := flag.String("hashmode", "full", "default digest execution: full, timing, memo")
	alg := flag.String("alg", cfg.HashAlg, "default hash algorithm: md5, sha1, fnv128")
	queueDepth := flag.Int("queue-depth", 64, "default per-shard request queue depth")
	pf := flag.Bool("prefetch", false, "enable the tree-ancestor prefetcher on every tenant's machines")
	persistRoot := flag.String("persist", "", "checkpoint every tenant into ROOT/<name>, anchored at ROOT/anchors/<name>.anchor; tenants recover at boot")
	ckptEvery := flag.Duration("checkpoint-every", 0, "seal a checkpoint for every persisted tenant at this interval (0 = only at shutdown)")
	admitTimeout := flag.Duration("admit-timeout", time.Second, "max wait for batch admission before shedding with 429")
	maxOps := flag.Int("max-batch-ops", service.DefaultMaxBatchOps, "max operations per batch request")
	maxBytes := flag.Int("max-batch-bytes", service.DefaultMaxBatchBytes, "max payload bytes per batch request")
	allowTamper := flag.Bool("allow-tamper", false, "arm POST /v1/t/{name}/tamper (test/CI adversary endpoint — never in production)")
	sampleEvery := flag.Duration("sample-every", obs.DefaultSampleEvery, "telemetry sampling interval for the ops surface's windowed rates")
	flight := flag.String("flight", "", "dump the flight recorder to this JSON file on exit")
	flag.Parse()

	logf := func(format string, args ...any) { fmt.Fprintf(os.Stderr, "memverifyd: "+format+"\n", args...) }

	// The default machine template every tenant starts from; specs
	// override per tenant.
	cfg.Scheme = core.Scheme(*scheme)
	cfg.Benchmark = trace.Uniform("memverifyd", 32<<10)
	cfg.Benchmark.CodeSet = 4 << 10
	cfg.ProtectedBytes = *protected
	cfg.L2Size = *l2
	cfg.HashMode = *hashmode
	cfg.HashAlg = *alg
	cfg.ViolationPolicy = *policy
	cfg.Functional = true
	cfg.ChunkBlocks = 1
	if *pf {
		cfg.Prefetch = prefetch.DefaultConfig()
		cfg.Prefetch.Enabled = true
	}
	base := service.TenantConfig{}
	base.Store.Machine = cfg
	base.Store.Shards = *shards
	base.Store.QueueDepth = *queueDepth

	tcs, err := service.ParseTenants(*tenants, base)
	if err != nil {
		return err
	}
	if *persistRoot != "" {
		for i := range tcs {
			tcs[i].PersistDir = filepath.Join(*persistRoot, tcs[i].Name)
			tcs[i].AnchorPath = filepath.Join(*persistRoot, "anchors", tcs[i].Name+".anchor")
		}
	}

	fr := obs.NewFlightRecorder(obs.DefaultFlightEvents)
	defer func() {
		if *flight != "" {
			if err := fr.DumpFile(*flight); err != nil {
				logf("flight dump: %v", err)
			}
		}
	}()

	svc, err := service.New(service.Config{
		Tenants:       tcs,
		AdmitTimeout:  *admitTimeout,
		MaxBatchOps:   *maxOps,
		MaxBatchBytes: *maxBytes,
		AllowTamper:   *allowTamper,
		Flight:        fr,
		Logf:          logf,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	// The ops surface shares the service's listener: one port serves both
	// the batch protocol and the scrape/health/pprof endpoints.
	opsSrv, opsHandler := obs.NewEmbedded(obs.Options{
		Fill:        svc.Fill,
		SampleEvery: *sampleEvery,
		Health:      svc.Health,
		Flight:      fr,
		Logf:        logf,
	})
	defer opsSrv.Close()

	mux := http.NewServeMux()
	mux.Handle("/v1/", svc.Handler())
	mux.Handle("/", opsHandler)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *listen, err)
	}
	httpSrv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logf("serving on http://%s (tenants: %v)", ln.Addr(), svc.Tenants())
	fr.Record(obs.EvRunStart, -1, 0, fmt.Sprintf("listen=%s tenants=%v persist=%q", ln.Addr(), svc.Tenants(), *persistRoot))

	// Periodic checkpoints for persisted tenants.
	ckptDone := make(chan struct{})
	ckptStop := make(chan struct{})
	go func() {
		defer close(ckptDone)
		if *ckptEvery <= 0 || *persistRoot == "" {
			<-ckptStop
			return
		}
		tick := time.NewTicker(*ckptEvery)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if err := svc.Checkpoint(); err != nil {
					logf("periodic checkpoint: %v", err)
				}
			case <-ckptStop:
				return
			}
		}
	}()

	// Block until a signal (or the listener dying underneath us).
	sigCh, stopNotify := runflags.NotifyInterrupt()
	defer stopNotify()
	select {
	case sig := <-sigCh:
		logf("received %s, shutting down", sig)
		fr.Record(obs.EvSignal, -1, 0, fmt.Sprintf("received %s, shutting down", sig))
	case err := <-serveErr:
		close(ckptStop)
		<-ckptDone
		return fmt.Errorf("serve: %w", err)
	}

	// Graceful teardown: stop admitting, drain in-flight requests, stop
	// the sampler (fills must not race the store teardown), seal a final
	// epoch for persisted tenants, close the stores, dump the flight.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logf("shutdown: %v", err)
	}
	close(ckptStop)
	<-ckptDone
	opsSrv.StopSampling()
	if *persistRoot != "" {
		if err := svc.Checkpoint(); err != nil {
			logf("final checkpoint: %v", err)
		} else {
			logf("final checkpoint sealed")
		}
	}
	// Publish a final registry so a post-shutdown scrape (none — the
	// listener is gone) would have been consistent; mainly this exercises
	// the same end-of-run path the other drivers use.
	final := telemetry.NewRegistry()
	svc.Fill(final)
	opsSrv.Publish(final)
	fr.Record(obs.EvRunEnd, -1, 0, "graceful shutdown complete")
	logf("shutdown complete")
	return nil
}
