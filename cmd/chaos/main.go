// Command chaos runs seeded fault-injection campaigns against the
// functional simulator and reports detection rates and latencies per
// verification scheme. Identical seeds produce byte-identical reports, so
// a pinned invocation doubles as a CI regression gate: the command exits
// nonzero if any persistent injection goes undetected or if a clean
// (no-adversary) run flags a violation.
//
// With -crash the campaign targets the persistence layer instead of live
// memory: seeded process kills inside the checkpoint commit protocol plus
// on-disk tampering (segment flips, forged checksums, WAL truncation,
// stale-snapshot replay), gated the same way — every clean kill/restart
// must reproduce the sealed root exactly, every tamper must be detected.
//
// Usage:
//
//	chaos                          # 100 injections per tree scheme
//	chaos -n 1000 -schemes c,i     # bigger campaign, two schemes
//	chaos -policy retry -transient # include transient glitches
//	chaos -crash -n 50 -schemes c  # kill/restart + disk-tamper campaign
//	chaos -csv out.csv -json out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"memverify/internal/chaos"
	"memverify/internal/core"
	"memverify/internal/obs"
	"memverify/internal/runflags"
	"memverify/internal/stats"
	"memverify/internal/telemetry"
)

// errFailed signals gate failures whose messages were already printed.
var errFailed = fmt.Errorf("campaign gates failed")

func main() {
	if err := run(); err != nil {
		if err != errFailed {
			fmt.Fprintln(os.Stderr, "chaos:", err)
		}
		os.Exit(1)
	}
}

func run() error {
	var (
		seed        = flag.Uint64("seed", 1, "campaign RNG seed")
		n           = flag.Int("n", 100, "injections per scheme")
		schemes     = flag.String("schemes", "naive,c,m,i", "comma-separated verification schemes")
		hashMode    = flag.String("hashmode", "full", "hash execution mode: full or memo")
		policy      = flag.String("policy", "record", "violation policy: record, halt or retry")
		warm        = flag.Int("warm", 24, "warm accesses before each injection")
		post        = flag.Int("post", 24, "random accesses after each injection")
		transient   = flag.Bool("transient", false, "include transient glitch injections")
		csvPath     = flag.String("csv", "", "write per-injection rows to this CSV file")
		jsonPath    = flag.String("json", "", "write full reports to this JSON file")
		pf          = flag.Bool("prefetch", false, "enable the tree-ancestor prefetcher on every injection's machine")
		vcLines     = flag.Int("verify-cache", 0, "dedicated verification cache size in L2-block lines (0 = share the L2)")
		vcAssoc     = flag.Int("verify-assoc", 0, "dedicated verification cache associativity (0 = the L2's)")
		spec        = flag.Bool("speculative", false, "run every injection's machine with the speculative verification pipeline")
		barrier     = flag.Int("barrier-every", 0, "with -speculative, interleave an epoch barrier every N post-injection accesses")
		crash       = flag.Bool("crash", false, "run the kill/restart + on-disk tamper campaign against the persistence layer")
		crashShards = flag.Int("crash-shards", 1, "with -crash: shards in each leg's store (1 = single machine)")
		crashDir    = flag.String("crash-dir", "", "with -crash: root directory for per-leg stores (default: a temp dir)")
	)
	rf := runflags.Add()
	flag.Parse()

	stopProf, err := rf.StartProfiling()
	if err != nil {
		return err
	}
	defer stopProf()

	var csvOut, jsonOut *os.File
	if *csvPath != "" {
		if csvOut, err = os.Create(*csvPath); err != nil {
			return err
		}
		defer csvOut.Close()
	}
	if *jsonPath != "" {
		if jsonOut, err = os.Create(*jsonPath); err != nil {
			return err
		}
		defer jsonOut.Close()
	}

	// Campaign legs run on whatever goroutine the chaos engine uses, so the
	// live scrape surface reads a locked accumulator that each completed
	// scheme's summary merges into; the flight recorder keeps one campaign
	// event per scheme for the post-mortem dump.
	fr := rf.NewFlightRecorder()
	defer rf.DumpFlight(fr)
	var lr *obs.LockedRegistry
	if rf.OpsEnabled() {
		lr = obs.NewLockedRegistry()
	}
	srv, err := rf.StartOps(obs.Options{Fill: lr.Fill, Flight: fr})
	if err != nil {
		return err
	}
	defer srv.Close()
	fr.Record(obs.EvRunStart, -1, 0,
		fmt.Sprintf("chaos schemes=%s n=%d crash=%t", *schemes, *n, *crash))
	defer finishOps(srv, lr, fr)

	if *crash {
		return runCrashCampaign(*seed, *n, *schemes, *hashMode, *policy,
			*crashShards, *crashDir, csvOut, jsonOut, rf, lr, fr)
	}

	rec := rf.NewRecorder()
	reg := rf.NewRegistry()

	tbl := stats.NewTable("chaos campaign (seed "+fmt.Sprint(*seed)+")",
		"scheme", "injections", "live", "sweep", "transient", "missed",
		"det rate", "lat (acc)", "lat (cyc)", "clean viol")
	tbl.SetPrecision(2)

	failed := false
	for i, name := range strings.Split(*schemes, ",") {
		scheme := core.Scheme(strings.TrimSpace(name))
		cfg := chaos.DefaultConfig(scheme)
		cfg.Seed = *seed
		cfg.Injections = *n
		cfg.HashMode = *hashMode
		cfg.Policy = *policy
		cfg.WarmAccesses = *warm
		cfg.PostAccesses = *post
		cfg.IncludeTransient = *transient
		cfg.Prefetch = *pf
		cfg.VerifyCacheLines = *vcLines
		cfg.VerifyCacheAssoc = *vcAssoc
		cfg.Speculative = *spec
		cfg.BarrierEvery = *barrier
		cfg.Telemetry = rec

		clean, err := chaos.CleanViolations(cfg)
		if err != nil {
			return fmt.Errorf("%s: clean run: %w", scheme, err)
		}
		rep, err := chaos.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", scheme, err)
		}
		s := rep.Summary
		if reg != nil || lr != nil {
			point := telemetry.NewRegistry()
			pfx := "chaos." + string(scheme) + "."
			point.Add(pfx+"injections", uint64(s.Total))
			point.Add(pfx+"detected_live", uint64(s.DetectedLive))
			point.Add(pfx+"detected_sweep", uint64(s.DetectedSweep))
			point.Add(pfx+"transient", uint64(s.Transient))
			point.Add(pfx+"missed", uint64(s.Missed))
			point.Add(pfx+"clean_violations", uint64(clean))
			point.SetGauge(pfx+"detection_rate", s.DetectionRate)
			if reg != nil {
				point.MergeInto(reg)
			}
			lr.Merge(point)
			lr.Add("chaos.campaigns_done", 1)
		}
		fr.Record(obs.EvCampaign, -1, 0, fmt.Sprintf(
			"scheme=%s injections=%d missed=%d clean_violations=%d",
			scheme, s.Total, s.Missed, clean))
		tbl.AddRow(string(scheme), s.Total, s.DetectedLive, s.DetectedSweep,
			s.Transient, s.Missed, s.DetectionRate,
			s.MeanLatencyAccesses, s.MeanLatencyCycles, clean)
		if s.Missed > 0 {
			fmt.Fprintf(os.Stderr, "FAIL: scheme %s missed %d/%d injections\n", scheme, s.Missed, s.Total)
			failed = true
		}
		if clean != 0 {
			fmt.Fprintf(os.Stderr, "FAIL: scheme %s flagged %d violations on a clean run\n", scheme, clean)
			failed = true
		}
		if csvOut != nil {
			// One header for the whole file; rows carry the scheme column.
			if i == 0 {
				if err := rep.WriteCSV(csvOut); err != nil {
					return err
				}
			} else {
				if err := writeCSVRowsOnly(csvOut, rep.WriteCSV); err != nil {
					return err
				}
			}
		}
		if jsonOut != nil {
			if err := rep.WriteJSON(jsonOut); err != nil {
				return err
			}
		}
	}
	fmt.Print(tbl.String())
	if rec != nil {
		if err := rf.WriteTrace(rec.Trace); err != nil {
			return err
		}
	}
	if reg != nil {
		rec.FillRegistry(reg)
		if err := rf.WriteMetrics(reg); err != nil {
			return err
		}
	}
	if failed {
		return errFailed
	}
	return nil
}

// runCrashCampaign drives the kill/restart + disk-tamper campaign per
// scheme and gates hard: any false positive (clean crash classified as a
// violation), any root mismatch (clean recovery not reproducing the
// sealed root), or any missed tamper fails the run.
func runCrashCampaign(seed uint64, n int, schemes, hashMode, policy string,
	shards int, dir string, csvOut, jsonOut *os.File, rf *runflags.Flags,
	lr *obs.LockedRegistry, fr *obs.FlightRecorder) error {

	reg := rf.NewRegistry()
	tbl := stats.NewTable("crash campaign (seed "+fmt.Sprint(seed)+")",
		"scheme", "legs", "kills", "tampers", "clean rec", "false pos",
		"root mism", "missed", "det rate")
	tbl.SetPrecision(2)

	failed := false
	for i, name := range strings.Split(schemes, ",") {
		scheme := core.Scheme(strings.TrimSpace(name))
		cfg := chaos.DefaultCrashConfig(scheme)
		cfg.Seed = seed
		cfg.Injections = n
		cfg.HashMode = hashMode
		cfg.Policy = policy
		cfg.Shards = shards
		cfg.Dir = dir
		if shards > 1 {
			// Give each shard the single-machine footprint.
			cfg.ProtectedBytes *= uint64(shards)
		}

		rep, err := chaos.RunCrash(cfg)
		if err != nil {
			return fmt.Errorf("%s: crash campaign: %w", scheme, err)
		}
		s := rep.Summary
		if reg != nil || lr != nil {
			point := telemetry.NewRegistry()
			pfx := "crash." + string(scheme) + "."
			point.Add(pfx+"legs", uint64(s.Total))
			point.Add(pfx+"kills", uint64(s.Kills))
			point.Add(pfx+"tampers", uint64(s.Tampers))
			point.Add(pfx+"clean_recoveries", uint64(s.CleanRecoveries))
			point.Add(pfx+"false_positives", uint64(s.FalsePositives))
			point.Add(pfx+"root_mismatches", uint64(s.RootMismatches))
			point.Add(pfx+"missed", uint64(s.Missed))
			point.SetGauge(pfx+"detection_rate", s.DetectionRate)
			if reg != nil {
				point.MergeInto(reg)
			}
			lr.Merge(point)
			lr.Add("chaos.campaigns_done", 1)
		}
		fr.Record(obs.EvCampaign, -1, 0, fmt.Sprintf(
			"crash scheme=%s legs=%d kills=%d tampers=%d missed=%d false_positives=%d",
			scheme, s.Total, s.Kills, s.Tampers, s.Missed, s.FalsePositives))
		tbl.AddRow(string(scheme), s.Total, s.Kills, s.Tampers, s.CleanRecoveries,
			s.FalsePositives, s.RootMismatches, s.Missed, s.DetectionRate)
		if s.FalsePositives > 0 {
			fmt.Fprintf(os.Stderr, "FAIL: scheme %s: %d clean crashes classified as violations\n", scheme, s.FalsePositives)
			failed = true
		}
		if s.RootMismatches > 0 {
			fmt.Fprintf(os.Stderr, "FAIL: scheme %s: %d clean recoveries lost the sealed root\n", scheme, s.RootMismatches)
			failed = true
		}
		if s.Missed > 0 {
			fmt.Fprintf(os.Stderr, "FAIL: scheme %s: %d on-disk tampers undetected\n", scheme, s.Missed)
			failed = true
		}
		if csvOut != nil {
			if i == 0 {
				if err := rep.WriteCSV(csvOut); err != nil {
					return err
				}
			} else {
				if err := writeCSVRowsOnly(csvOut, rep.WriteCSV); err != nil {
					return err
				}
			}
		}
		if jsonOut != nil {
			enc := json.NewEncoder(jsonOut)
			if err := enc.Encode(rep); err != nil {
				return err
			}
		}
	}
	fmt.Print(tbl.String())
	if reg != nil {
		if err := rf.WriteMetrics(reg); err != nil {
			return err
		}
	}
	if failed {
		return errFailed
	}
	return nil
}

// finishOps records the end-of-run flight event and publishes the
// accumulated campaign registry so a lingering scrape (or the -flight
// dump) sees the final state. Every callee is nil-safe, so this is a
// no-op when the ops surface is disabled.
func finishOps(srv *obs.Server, lr *obs.LockedRegistry, fr *obs.FlightRecorder) {
	fr.Record(obs.EvRunEnd, -1, 0, "campaign complete")
	if srv != nil {
		final := telemetry.NewRegistry()
		lr.Fill(final)
		srv.Publish(final)
	}
}

// writeCSVRowsOnly appends a report's rows without repeating the header.
func writeCSVRowsOnly(f *os.File, writeCSV func(w io.Writer) error) error {
	var b strings.Builder
	if err := writeCSV(&b); err != nil {
		return err
	}
	body := b.String()
	if i := strings.IndexByte(body, '\n'); i >= 0 {
		body = body[i+1:]
	}
	_, err := f.WriteString(body)
	return err
}
