// Command chaos runs seeded fault-injection campaigns against the
// functional simulator and reports detection rates and latencies per
// verification scheme. Identical seeds produce byte-identical reports, so
// a pinned invocation doubles as a CI regression gate: the command exits
// nonzero if any persistent injection goes undetected or if a clean
// (no-adversary) run flags a violation.
//
// Usage:
//
//	chaos                          # 100 injections per tree scheme
//	chaos -n 1000 -schemes c,i     # bigger campaign, two schemes
//	chaos -policy retry -transient # include transient glitches
//	chaos -csv out.csv -json out.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"memverify/internal/chaos"
	"memverify/internal/core"
	"memverify/internal/runflags"
	"memverify/internal/stats"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "campaign RNG seed")
		n         = flag.Int("n", 100, "injections per scheme")
		schemes   = flag.String("schemes", "naive,c,m,i", "comma-separated verification schemes")
		hashMode  = flag.String("hashmode", "full", "hash execution mode: full or memo")
		policy    = flag.String("policy", "record", "violation policy: record, halt or retry")
		warm      = flag.Int("warm", 24, "warm accesses before each injection")
		post      = flag.Int("post", 24, "random accesses after each injection")
		transient = flag.Bool("transient", false, "include transient glitch injections")
		csvPath   = flag.String("csv", "", "write per-injection rows to this CSV file")
		jsonPath  = flag.String("json", "", "write full reports to this JSON file")
		pf        = flag.Bool("prefetch", false, "enable the tree-ancestor prefetcher on every injection's machine")
		vcLines   = flag.Int("verify-cache", 0, "dedicated verification cache size in L2-block lines (0 = share the L2)")
		vcAssoc   = flag.Int("verify-assoc", 0, "dedicated verification cache associativity (0 = the L2's)")
		spec      = flag.Bool("speculative", false, "run every injection's machine with the speculative verification pipeline")
		barrier   = flag.Int("barrier-every", 0, "with -speculative, interleave an epoch barrier every N post-injection accesses")
	)
	rf := runflags.Add()
	flag.Parse()

	stopProf, err := rf.StartProfiling()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	var csvOut, jsonOut *os.File
	if *csvPath != "" {
		if csvOut, err = os.Create(*csvPath); err != nil {
			fatal(err)
		}
		defer csvOut.Close()
	}
	if *jsonPath != "" {
		if jsonOut, err = os.Create(*jsonPath); err != nil {
			fatal(err)
		}
		defer jsonOut.Close()
	}

	rec := rf.NewRecorder()
	reg := rf.NewRegistry()

	tbl := stats.NewTable("chaos campaign (seed "+fmt.Sprint(*seed)+")",
		"scheme", "injections", "live", "sweep", "transient", "missed",
		"det rate", "lat (acc)", "lat (cyc)", "clean viol")
	tbl.SetPrecision(2)

	failed := false
	for i, name := range strings.Split(*schemes, ",") {
		scheme := core.Scheme(strings.TrimSpace(name))
		cfg := chaos.DefaultConfig(scheme)
		cfg.Seed = *seed
		cfg.Injections = *n
		cfg.HashMode = *hashMode
		cfg.Policy = *policy
		cfg.WarmAccesses = *warm
		cfg.PostAccesses = *post
		cfg.IncludeTransient = *transient
		cfg.Prefetch = *pf
		cfg.VerifyCacheLines = *vcLines
		cfg.VerifyCacheAssoc = *vcAssoc
		cfg.Speculative = *spec
		cfg.BarrierEvery = *barrier
		cfg.Telemetry = rec

		clean, err := chaos.CleanViolations(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: clean run: %w", scheme, err))
		}
		rep, err := chaos.Run(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", scheme, err))
		}
		s := rep.Summary
		if reg != nil {
			pfx := "chaos." + string(scheme) + "."
			reg.Add(pfx+"injections", uint64(s.Total))
			reg.Add(pfx+"detected_live", uint64(s.DetectedLive))
			reg.Add(pfx+"detected_sweep", uint64(s.DetectedSweep))
			reg.Add(pfx+"transient", uint64(s.Transient))
			reg.Add(pfx+"missed", uint64(s.Missed))
			reg.Add(pfx+"clean_violations", uint64(clean))
			reg.SetGauge(pfx+"detection_rate", s.DetectionRate)
		}
		tbl.AddRow(string(scheme), s.Total, s.DetectedLive, s.DetectedSweep,
			s.Transient, s.Missed, s.DetectionRate,
			s.MeanLatencyAccesses, s.MeanLatencyCycles, clean)
		if s.Missed > 0 {
			fmt.Fprintf(os.Stderr, "FAIL: scheme %s missed %d/%d injections\n", scheme, s.Missed, s.Total)
			failed = true
		}
		if clean != 0 {
			fmt.Fprintf(os.Stderr, "FAIL: scheme %s flagged %d violations on a clean run\n", scheme, clean)
			failed = true
		}
		if csvOut != nil {
			// One header for the whole file; rows carry the scheme column.
			if i == 0 {
				if err := rep.WriteCSV(csvOut); err != nil {
					fatal(err)
				}
			} else {
				if err := writeCSVRowsOnly(csvOut, rep); err != nil {
					fatal(err)
				}
			}
		}
		if jsonOut != nil {
			if err := rep.WriteJSON(jsonOut); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Print(tbl.String())
	if rec != nil {
		if err := rf.WriteTrace(rec.Trace); err != nil {
			fatal(err)
		}
	}
	if reg != nil {
		rec.FillRegistry(reg)
		if err := rf.WriteMetrics(reg); err != nil {
			fatal(err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeCSVRowsOnly appends a report's rows without repeating the header.
func writeCSVRowsOnly(f *os.File, rep *chaos.Report) error {
	var b strings.Builder
	if err := rep.WriteCSV(&b); err != nil {
		return err
	}
	body := b.String()
	if i := strings.IndexByte(body, '\n'); i >= 0 {
		body = body[i+1:]
	}
	_, err := f.WriteString(body)
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chaos:", err)
	os.Exit(1)
}
