// Command tracecheck validates telemetry artifacts produced by the other
// commands' -trace and -metrics flags. It is the CI gate behind the
// observability layer: a trace must parse as Chrome trace-event JSON with
// well-nested, timestamp-monotonic spans on every thread, and a metrics
// snapshot must match the memverify-metrics-v1 schema with internally
// consistent histograms.
//
// Usage:
//
//	tracecheck -trace run.trace.json -metrics run.metrics.json
//	tracecheck -trace run.trace.json -require-lane prefetch,bus
//
// Either file flag may be given alone. -require-lane demands at least one
// span on each named lane (as written in the exporter's thread_name
// metadata; "prefetch" matches "prefetch/0" too). Lane spans are always
// checked for monotonicity and nesting; the prefetch lane must in
// addition be overlap-free. Exits nonzero on the first violation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"memverify/internal/telemetry"
)

func main() {
	tracePath := flag.String("trace", "", "Chrome trace-event JSON file to validate")
	metricsPath := flag.String("metrics", "", "metrics snapshot JSON file to validate")
	minSpans := flag.Int("min-spans", 1, "minimum number of spans the trace must contain")
	requireLanes := flag.String("require-lane", "", "comma-separated lane names that must carry at least one span")
	flag.Parse()

	if *tracePath == "" && *metricsPath == "" {
		fmt.Fprintln(os.Stderr, "tracecheck: nothing to do; pass -trace and/or -metrics")
		os.Exit(2)
	}
	if *requireLanes != "" && *tracePath == "" {
		fmt.Fprintln(os.Stderr, "tracecheck: -require-lane needs -trace")
		os.Exit(2)
	}

	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		spans, lanes, err := telemetry.ValidateChromeTraceLanes(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *tracePath, err))
		}
		if spans < *minSpans {
			fatal(fmt.Errorf("%s: %d spans, want at least %d", *tracePath, spans, *minSpans))
		}
		if *requireLanes != "" {
			for _, lane := range strings.Split(*requireLanes, ",") {
				lane = strings.TrimSpace(lane)
				if lane == "" {
					continue
				}
				if lanes[lane] == 0 {
					fatal(fmt.Errorf("%s: no spans on required lane %q", *tracePath, lane))
				}
				fmt.Printf("lane OK: %s (%d spans)\n", lane, lanes[lane])
			}
		}
		fmt.Printf("trace OK: %s (%d spans)\n", *tracePath, spans)
	}
	if *metricsPath != "" {
		f, err := os.Open(*metricsPath)
		if err != nil {
			fatal(err)
		}
		err = telemetry.ValidateMetrics(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *metricsPath, err))
		}
		fmt.Printf("metrics OK: %s\n", *metricsPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
